// Package rocktm is a faithful software reproduction of the system studied
// in Dice, Lev, Moir and Nussbaum, "Early Experience with a Commercial
// Hardware Transactional Memory Implementation" (ASPLOS 2009): Sun's Rock
// processor's best-effort hardware transactional memory, and the software
// stack the paper builds over it — the TL2 and SkySTM software TMs, the
// HyTM and PhTM hybrids, transactional lock elision, and the benchmarks
// from a shared counter up to a parallel Minimum Spanning Forest.
//
// Because no shipping hardware exposes Rock's chkpt/commit/CPS interface,
// the substrate is a deterministic discrete-event multiprocessor simulator
// (internal/sim): strands with private L1 caches, TLBs and branch
// predictors over a shared L2, scheduled in virtual-time order, with every
// abort cause of the paper's Table 1 produced by the corresponding
// microarchitectural mechanism. Throughput is measured in simulated time,
// so scaling experiments are meaningful on any host.
//
// This package is the public facade: it re-exports the pieces a user needs
// to build and run transactional programs on the simulated machine. The
// deeper layers live in internal/ and are documented there.
//
// A minimal program:
//
//	m := rocktm.NewMachine(rocktm.DefaultConfig(4))
//	counter := m.Mem().AllocLines(8)
//	sys := rocktm.NewPhTM(m, rocktm.NewSkySTM(m))
//	m.Run(func(s *rocktm.Strand) {
//		for i := 0; i < 1000; i++ {
//			sys.Atomic(s, func(c rocktm.Ctx) {
//				c.Store(counter, c.Load(counter)+1)
//			})
//		}
//	})
package rocktm

import (
	"rocktm/internal/core"
	"rocktm/internal/cps"
	"rocktm/internal/graphgen"
	"rocktm/internal/hashtable"
	"rocktm/internal/hytm"
	"rocktm/internal/locktm"
	"rocktm/internal/msf"
	"rocktm/internal/phtm"
	"rocktm/internal/rbtree"
	"rocktm/internal/rock"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
	"rocktm/internal/stm/tl2"
	"rocktm/internal/tle"
)

// ---- Simulated machine ----

// Machine is the simulated Rock-like chip multiprocessor.
type Machine = sim.Machine

// Config describes a machine; see DefaultConfig.
type Config = sim.Config

// Strand is one simulated hardware strand (a software thread in the
// paper's SSE configuration).
type Strand = sim.Strand

// Memory is the shared simulated memory.
type Memory = sim.Memory

// Addr is a word address in simulated memory; Word is its 64-bit content.
type (
	Addr = sim.Addr
	Word = sim.Word
)

// Execution modes (Section 2 of the paper).
const (
	SSE = sim.SSE
	SE  = sim.SE
)

// DefaultConfig returns a Rock-flavoured machine configuration for n
// strands.
func DefaultConfig(n int) Config { return sim.DefaultConfig(n) }

// NewMachine builds a machine.
func NewMachine(cfg Config) *Machine { return sim.New(cfg) }

// ---- Raw best-effort HTM (the rock package) ----

// Txn is the handle for transactional instructions inside a raw hardware
// transaction attempt.
type Txn = rock.Txn

// CPS is the Checkpoint Status register value describing why a hardware
// transaction aborted.
type CPS = cps.Bits

// CPS register bits (Table 1 of the paper).
const (
	EXOG  = cps.EXOG
	COH   = cps.COH
	TCC   = cps.TCC
	INST  = cps.INST
	PREC  = cps.PREC
	ASYNC = cps.ASYNC
	SIZ   = cps.SIZ
	LD    = cps.LD
	ST    = cps.ST
	CTI   = cps.CTI
	FP    = cps.FP
	UCTI  = cps.UCTI
)

// TryHTM executes body as a single best-effort hardware transaction
// attempt, returning whether it committed and, if not, the CPS contents.
func TryHTM(s *Strand, body func(Txn)) (bool, CPS) { return rock.Try(s, body) }

// WarmTLB performs the dummy-CAS TLB warmup idiom over [a, a+words).
func WarmTLB(s *Strand, a Addr, words int) { rock.WarmTLB(s, a, words) }

// ---- The TM programming interface ----

// Ctx is the access interface code sees inside an atomic block; System
// executes atomic blocks (PhTM, HyTM, an STM, TLE, a lock, ...).
type (
	Ctx    = core.Ctx
	System = core.System
	Stats  = core.Stats
)

// PC derives a stable branch-site identifier for Ctx.Branch.
func PC(site string) uint32 { return core.PC(site) }

// ---- Synchronization systems ----

// NewSkySTM builds the SkySTM-flavoured software TM (semi-visible readers;
// HyTM-capable).
func NewSkySTM(m *Machine) *sky.System { return sky.New(m) }

// NewTL2 builds the TL2 software TM (global version clock, invisible
// readers).
func NewTL2(m *Machine) *tl2.System { return tl2.New(m) }

// NewPhTM builds Phased TM over the given STM back end (NewSkySTM or
// NewTL2).
func NewPhTM(m *Machine, back System) *phtm.System {
	return phtm.New(m, back, phtm.DefaultConfig())
}

// NewHyTM builds Hybrid TM over SkySTM.
func NewHyTM(m *Machine) *hytm.System {
	return hytm.New(sky.New(m), hytm.DefaultConfig())
}

// NewOneLock builds the single-global-lock baseline system.
func NewOneLock(m *Machine) *locktm.OneLock { return locktm.NewOneLock(m) }

// NewSeq builds the unprotected sequential baseline.
func NewSeq() *locktm.Seq { return locktm.NewSeq() }

// NewTLE builds transactional lock elision over a fresh spinlock with the
// paper's CPS-guided retry policy (UCTI counts half a failure, unsupported
// instructions give up immediately).
func NewTLE(m *Machine) *tle.System {
	return tle.New("tle", tle.SpinAdapter{L: locktm.NewSpinLock(m.Mem())}, tle.DefaultPolicy())
}

// ---- Transactional data structures ----

// HashTable is the Section 5 transactional chained hash table.
type HashTable = hashtable.Table

// NewHashTable builds a table with nBuckets buckets (a power of two; the
// paper uses 2^17) and the given node capacity.
func NewHashTable(m *Machine, nBuckets, capacity int) *HashTable {
	return hashtable.New(m, nBuckets, capacity)
}

// RBTree is the Section 6 iterative red-black tree.
type RBTree = rbtree.Tree

// NewRBTree builds a tree with the given node capacity.
func NewRBTree(m *Machine, capacity int) *RBTree { return rbtree.New(m, capacity) }

// ---- Minimum Spanning Forest (Section 8) ----

// MSFRunner executes the Kang–Bader parallel MSF algorithm.
type MSFRunner = msf.Runner

// MSF variants: the original algorithm extracts the heap minimum inside
// its main transaction; the optimized variant examines it and extracts
// non-transactionally when the heap leaves the public space anyway.
const (
	MSFOrig = msf.Orig
	MSFOpt  = msf.Opt
)

// Graph is a weighted undirected sparse graph in simulated memory.
type Graph = graphgen.Graph

// NewRoadmap synthesizes a road-network-like graph (a width×height grid
// plus a fraction of random shortcut edges) directly into m's memory — the
// stand-in for the paper's DIMACS Eastern-USA roadmap.
func NewRoadmap(m *Machine, width, height int, extra float64, seed uint64) *Graph {
	return graphgen.Roadmap(m, width, height, extra, seed)
}

// NewMSFRunner lays out the Kang–Bader algorithm's state for graph g under
// system sys.
func NewMSFRunner(m *Machine, g *Graph, sys System, variant msf.Variant) *MSFRunner {
	return msf.NewRunner(m, g, sys, variant)
}
