module rocktm

go 1.23
