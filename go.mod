module rocktm

go 1.22
