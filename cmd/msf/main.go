// Command msf runs the Minimum Spanning Forest benchmark (Section 8) on a
// synthetic road network or a DIMACS .gr file, with any of the paper's
// seven variants, validating the result against sequential Kruskal.
//
//	msf -variant opt-le -threads 8 -dim 128
//	msf -variant orig-sky -threads 4 -dimacs east-usa.gr
//	msf -variant opt-le -threads 8 -mode se
//	msf -variant all -threads 8 -parallel 4   # sweep every variant on the worker pool
package main

import (
	"flag"
	"fmt"
	"os"

	"rocktm/internal/bench"
	"rocktm/internal/core"
	"rocktm/internal/graphgen"
	"rocktm/internal/locktm"
	"rocktm/internal/msf"
	"rocktm/internal/runner"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
	"rocktm/internal/tle"
)

func main() {
	var (
		variant  = flag.String("variant", "opt-le", "seq | {orig,opt}-{sky,lock,le} | all (pool-parallel sweep)")
		threads  = flag.Int("threads", 4, "worker threads")
		dim      = flag.Int("dim", 64, "synthetic grid dimension")
		extra    = flag.Float64("extra", 0.05, "extra shortcut-edge fraction")
		seed     = flag.Uint64("seed", 1, "graph and run seed")
		dimacs   = flag.String("dimacs", "", "DIMACS .gr file instead of a synthetic graph")
		modeStr  = flag.String("mode", "sse", "chip mode: sse | se")
		parallel = flag.Int("parallel", 0, "sweep workers for -variant all (0 = GOMAXPROCS)")
		cacheDir = flag.String("cache-dir", runner.DefaultCacheDir, "result cache directory for -variant all")
		noCache  = flag.Bool("no-cache", false, "recompute every sweep cell")
	)
	flag.Parse()

	if *variant == "all" {
		if *dimacs != "" {
			fatal(fmt.Errorf("-variant all supports synthetic graphs only"))
		}
		mode := sim.SSE
		if *modeStr == "se" {
			mode = sim.SE
		}
		pool := &runner.Pool{Workers: *parallel}
		if !*noCache {
			cache, err := runner.OpenCache(*cacheDir, runner.CacheVersion)
			if err != nil {
				fmt.Fprintf(os.Stderr, "msf: %v (continuing uncached)\n", err)
			} else {
				pool.Cache = cache
				pool.Costs = runner.LoadCostModel(*cacheDir)
			}
		}
		mo := bench.MSFOptions{
			Width: *dim, Height: *dim, Extra: *extra, Seed: *seed,
			Threads: []int{*threads}, Mode: mode, Runner: pool,
		}
		fig, err := bench.MSFSweepFigure(mo, nil)
		if err != nil {
			fatal(err)
		}
		fig.Render(os.Stdout)
		if pool.Costs != nil {
			if err := pool.Costs.Save(); err != nil {
				fmt.Fprintf(os.Stderr, "msf: cost model: %v\n", err)
			}
		}
		if pool.Cache != nil {
			for _, w := range pool.Cache.Warnings() {
				fmt.Fprintf(os.Stderr, "msf: %s\n", w)
			}
		}
		return
	}

	var n int
	var edges []graphgen.Edge
	if *dimacs != "" {
		f, err := os.Open(*dimacs)
		if err != nil {
			fatal(err)
		}
		n, edges, err = graphgen.ReadDIMACS(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		n, edges = graphgen.RoadmapEdges(*dim, *dim, *extra, 1<<20, *seed)
	}
	fmt.Printf("graph: %d vertices, %d undirected edges\n", n, len(edges))

	cfg := sim.DefaultConfig(*threads)
	if *modeStr == "se" {
		cfg.Mode = sim.SE
	}
	cfg.Seed = *seed
	cfg.MaxCycles = 1 << 48
	need := 8*(2*len(edges)+2*n) + 16*n + 1<<21
	cfg.MemWords = 1 << 22
	for cfg.MemWords < need {
		cfg.MemWords <<= 1
	}
	m := sim.New(cfg)
	g := graphgen.Build(m, n, edges)

	var v msf.Variant
	var sys core.System
	switch *variant {
	case "seq":
		v, sys = msf.Orig, locktm.NewSeq()
		if *threads != 1 {
			fatal(fmt.Errorf("seq requires -threads 1"))
		}
	case "orig-sky":
		v, sys = msf.Orig, sky.New(m)
	case "opt-sky":
		v, sys = msf.Opt, sky.New(m)
	case "orig-lock":
		v, sys = msf.Orig, locktm.NewOneLock(m)
	case "opt-lock":
		v, sys = msf.Opt, locktm.NewOneLock(m)
	case "orig-le":
		v, sys = msf.Orig, tle.New("le", tle.SpinAdapter{L: locktm.NewSpinLock(m.Mem())}, tle.DefaultPolicy())
	case "opt-le":
		v, sys = msf.Opt, tle.New("le", tle.SpinAdapter{L: locktm.NewSpinLock(m.Mem())}, tle.DefaultPolicy())
	default:
		fatal(fmt.Errorf("unknown variant %q", *variant))
	}

	r := msf.NewRunner(m, g, sys, v)
	res := r.Run(m)
	if err := r.Validate(res); err != nil {
		fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("msf-%s x%d: weight=%d edges=%d trees=%d\n", *variant, *threads,
		res.TotalWeight, res.Edges, res.Trees)
	fmt.Printf("running time: %.6f simulated seconds (%.0f cycles)\n",
		m.ElapsedSeconds(), float64(m.MaxClock()))
	if st.HWAttempts > 0 {
		fmt.Printf("hardware: %d attempts, %d commits, retry fraction %.2f%%\n",
			st.HWAttempts, st.HWCommits, 100*st.RetryFraction())
	}
	if st.Ops > 0 {
		fmt.Printf("atomic blocks: %d (lock fallbacks: %d = %.3f%%)\n",
			st.Ops, st.LockAcquires, 100*float64(st.LockAcquires)/float64(st.Ops))
	}
	if st.CPSHist != nil && st.CPSHist.Total() > 0 {
		fmt.Printf("failure CPS: %s\n", st.CPSHist)
	}
	fmt.Println("validated against sequential Kruskal: OK")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msf:", err)
	os.Exit(1)
}
