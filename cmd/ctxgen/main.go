// Command ctxgen regenerates the devirtualized core.Ctx kernel copies
// (specialized_gen.go) in the kernel packages. Run it from anywhere inside
// the repository after editing a generic kernel:
//
//	go run rocktm/cmd/ctxgen
//
// The sync tests in the kernel packages fail until the committed files
// match what the generator produces, so drift cannot land silently. See
// internal/ctxgen for the generation rules and docs/PERFORMANCE.md for why
// the copies exist.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"rocktm/internal/ctxgen"
)

func main() {
	root, err := ctxgen.Root(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, spec := range ctxgen.Specs() {
		out, err := ctxgen.Generate(root, spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctxgen: %s: %v\n", spec.Dir, err)
			os.Exit(1)
		}
		path := filepath.Join(root, spec.Dir, spec.Out)
		if err := os.WriteFile(path, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
