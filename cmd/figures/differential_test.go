package main

import (
	"bytes"
	"testing"

	"rocktm/internal/bench"
)

// renderCatalogue renders every experiment in the -exp all catalogue (plus
// the attrib report) under one scheduler, at smoke scale, returning the
// rendered bytes (table + CSV) per experiment name.
func renderCatalogue(t *testing.T, sched string) map[string][]byte {
	t.Helper()
	o := bench.Options{Threads: []int{1, 2}, OpsPerThread: 120, Seed: 1, Sched: sched}
	mo := bench.MSFOptions{Width: 12, Height: 12, Threads: []int{1, 2}, Seed: 1}
	out := map[string][]byte{}
	for _, e := range buildExperiments(o, mo) {
		fig, err := e.run()
		if err != nil {
			t.Fatalf("%s [%s]: %v", e.name, sched, err)
		}
		var buf bytes.Buffer
		fig.Render(&buf)
		fig.CSV(&buf)
		out[e.name] = buf.Bytes()
	}
	rep, err := bench.AttributionReport(o)
	if err != nil {
		t.Fatalf("attrib [%s]: %v", sched, err)
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	rep.CSV(&buf)
	out["attrib"] = buf.Bytes()
	return out
}

// Differential-driver golden test: the continuation driver and the legacy
// coroutine driver must render byte-identical output for every experiment
// in the -exp all catalogue. This is the figure-level counterpart of
// internal/sim's TestGoldenStepDriverIdentity — it catches any workload or
// TM system whose stepped execution diverges from its coroutine execution
// by even one simulated cycle, because cycle counts feed every table.
func TestDifferentialDriverCatalogue(t *testing.T) {
	if testing.Short() {
		t.Skip("differential catalogue render is a long test")
	}
	step := renderCatalogue(t, bench.SchedStep)
	coro := renderCatalogue(t, bench.SchedCoroutine)
	if len(step) != len(coro) {
		t.Fatalf("catalogue size differs: step %d, coroutine %d", len(step), len(coro))
	}
	for name, sb := range step {
		cb, ok := coro[name]
		if !ok {
			t.Errorf("%s: missing from coroutine render", name)
			continue
		}
		if !bytes.Equal(sb, cb) {
			t.Errorf("%s: drivers disagree\n--- step ---\n%s\n--- coroutine ---\n%s", name, sb, cb)
		}
	}
}
