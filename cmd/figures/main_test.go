package main

import (
	"flag"
	"sort"
	"strings"
	"testing"

	"rocktm/internal/bench"
)

var testValid = []string{"fig1a", "fig2b", "attrib", "profile"}

// A typo in -exp must be rejected with the full valid list, never
// silently skipped.
func TestParseExpFlagRejectsUnknown(t *testing.T) {
	_, err := parseExpFlag("fig1a,fgi2b", testValid)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"fgi2b"`) {
		t.Errorf("error does not name the bad experiment: %s", msg)
	}
	for _, name := range testValid {
		if !strings.Contains(msg, name) {
			t.Errorf("error does not list valid name %q: %s", name, msg)
		}
	}
}

func TestParseExpFlagSelection(t *testing.T) {
	sel, err := parseExpFlag("fig1a, attrib", testValid)
	if err != nil {
		t.Fatal(err)
	}
	if !sel["fig1a"] || !sel["attrib"] || sel["fig2b"] {
		t.Fatalf("bad selection: %v", sel)
	}
	if all, err := parseExpFlag("all", testValid); err != nil || all != nil {
		t.Fatalf("-exp all: sel=%v err=%v", all, err)
	}
	if _, err := parseExpFlag(",", testValid); err == nil {
		t.Fatal("empty selection accepted")
	}
}

// Every name the command documents must be accepted, and the reports
// must be included in the valid list.
func TestExperimentNamesIncludeReports(t *testing.T) {
	names := experimentNames([]experiment{{name: "fig1a"}, {name: "fig4"}})
	got := strings.Join(names, " ")
	for _, want := range []string{"fig1a", "fig4", "attrib", "profile"} {
		if !strings.Contains(got, want) {
			t.Errorf("experimentNames missing %q: %v", want, names)
		}
	}
}

// The real catalogue (what -exp list prints) must carry the tail latency
// experiment alongside the legacy figures, and the unknown-name error must
// enumerate it so users discover it from a typo.
func TestCatalogueIncludesTail(t *testing.T) {
	valid := experimentNames(buildExperiments(bench.Options{}, bench.MSFOptions{}))
	set := map[string]bool{}
	for _, n := range valid {
		set[n] = true
	}
	for _, want := range []string{"tail", "fig1a", "fig4", "policy", "attrib", "profile"} {
		if !set[want] {
			t.Errorf("experiment catalogue missing %q: %v", want, valid)
		}
	}
	if _, err := parseExpFlag("tial", valid); err == nil {
		t.Fatal("unknown experiment accepted")
	} else if !strings.Contains(err.Error(), "tail") {
		t.Errorf("unknown-experiment error does not enumerate tail: %v", err)
	}
	if sel, err := parseExpFlag("tail", valid); err != nil || !sel["tail"] {
		t.Fatalf("-exp tail rejected: sel=%v err=%v", sel, err)
	}
}

// The timeline experiment is part of the catalogue, and the valid-name
// list (what -exp list prints) comes out sorted so users can scan it.
func TestCatalogueIncludesTimelineAndIsSorted(t *testing.T) {
	valid := experimentNames(buildExperiments(bench.Options{}, bench.MSFOptions{}))
	if !sort.StringsAreSorted(valid) {
		t.Errorf("-exp list is not sorted: %v", valid)
	}
	set := map[string]bool{}
	for _, n := range valid {
		set[n] = true
	}
	if !set["timeline"] {
		t.Fatalf("experiment catalogue missing \"timeline\": %v", valid)
	}
	if sel, err := parseExpFlag("timeline", valid); err != nil || !sel["timeline"] {
		t.Fatalf("-exp timeline rejected: sel=%v err=%v", sel, err)
	}
	if _, err := parseExpFlag("timelien", valid); err == nil {
		t.Fatal("unknown experiment accepted")
	} else if !strings.Contains(err.Error(), "timeline") {
		t.Errorf("unknown-experiment error does not enumerate timeline: %v", err)
	}
}

// The flag surface carries the timeline exports: -timeline selects the
// output file, -timeline-window the window width.
func TestFlagSurfaceCarriesTimeline(t *testing.T) {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fl := registerFlags(fs)
	for _, name := range []string{"exp", "trace", "timeline", "timeline-window", "latency", "parallel"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
	if err := fs.Parse([]string{"-timeline", "w.csv", "-timeline-window", "4096"}); err != nil {
		t.Fatal(err)
	}
	if *fl.timeline != "w.csv" || *fl.tlWindow != 4096 {
		t.Errorf("parsed timeline=%q window=%d", *fl.timeline, *fl.tlWindow)
	}
}

// The flag surface carries the scheduler selector: -sched parses into
// cliFlags.sched, and both driver names round-trip.
func TestFlagSurfaceCarriesSched(t *testing.T) {
	for _, name := range []string{bench.SchedStep, bench.SchedCoroutine} {
		fs := flag.NewFlagSet("figures", flag.ContinueOnError)
		fl := registerFlags(fs)
		if fs.Lookup("sched") == nil {
			t.Fatal("flag -sched not registered")
		}
		if err := fs.Parse([]string{"-sched", name}); err != nil {
			t.Fatal(err)
		}
		if *fl.sched != name {
			t.Errorf("parsed sched=%q, want %q", *fl.sched, name)
		}
	}
	// Unset means "defer to ROCKTM_SCHED, then the step default".
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fl := registerFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *fl.sched != "" {
		t.Errorf("default sched=%q, want empty", *fl.sched)
	}
}

// The fleet experiment (sharded service tier) is part of the catalogue,
// the list stays sorted, and the unknown-name error enumerates it.
func TestCatalogueIncludesFleet(t *testing.T) {
	valid := experimentNames(buildExperiments(bench.Options{}, bench.MSFOptions{}))
	if !sort.StringsAreSorted(valid) {
		t.Errorf("-exp list is not sorted: %v", valid)
	}
	set := map[string]bool{}
	for _, n := range valid {
		set[n] = true
	}
	if !set["fleet"] {
		t.Fatalf("experiment catalogue missing \"fleet\": %v", valid)
	}
	if sel, err := parseExpFlag("fleet", valid); err != nil || !sel["fleet"] {
		t.Fatalf("-exp fleet rejected: sel=%v err=%v", sel, err)
	}
	if _, err := parseExpFlag("fleeet", valid); err == nil {
		t.Fatal("unknown experiment accepted")
	} else if !strings.Contains(err.Error(), "fleet") {
		t.Errorf("unknown-experiment error does not enumerate fleet: %v", err)
	}
}

// The htmdesign experiment (HTM design-space sweep) is part of the
// catalogue, the list stays sorted, and the unknown-name error
// enumerates it.
func TestCatalogueIncludesHTMDesign(t *testing.T) {
	valid := experimentNames(buildExperiments(bench.Options{}, bench.MSFOptions{}))
	if !sort.StringsAreSorted(valid) {
		t.Errorf("-exp list is not sorted: %v", valid)
	}
	set := map[string]bool{}
	for _, n := range valid {
		set[n] = true
	}
	if !set["htmdesign"] {
		t.Fatalf("experiment catalogue missing \"htmdesign\": %v", valid)
	}
	if sel, err := parseExpFlag("htmdesign", valid); err != nil || !sel["htmdesign"] {
		t.Fatalf("-exp htmdesign rejected: sel=%v err=%v", sel, err)
	}
	if _, err := parseExpFlag("htmdeisgn", valid); err == nil {
		t.Fatal("unknown experiment accepted")
	} else if !strings.Contains(err.Error(), "htmdesign") {
		t.Errorf("unknown-experiment error does not enumerate htmdesign: %v", err)
	}
}
