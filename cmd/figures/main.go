// Command figures regenerates every figure and table of the paper's
// evaluation on the simulated Rock machine.
//
// Usage:
//
//	figures -exp all                 # everything (several minutes)
//	figures -exp fig1a,fig2b         # selected experiments
//	figures -exp fig4 -msf-dim 96    # a bigger roadmap
//	figures -ops 20000               # more operations per thread
//	figures -csv                     # machine-readable output too
//	figures -json                    # one JSON document per figure
//	figures -exp attrib              # Table-4-style abort attribution
//	figures -exp fig1a -trace t.json # Chrome/Perfetto event trace
//
// Experiments: fig1a fig1b fig1ro fig2a fig2b fig3a fig3b counter dcas
// divide inline treemap volano fig4 msfse profile attrib, plus the
// ablations ablate-retry (PhTM retry budget), ablate-ucti (UCTI failure
// weight) and ablate-throttle (adaptive concurrency throttling extension).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rocktm/internal/bench"
	"rocktm/internal/obs"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment names, or 'all'")
		opsFlag  = flag.Int("ops", 4000, "operations per thread")
		thrFlag  = flag.String("threads", "1,2,3,4,6,8,12,16", "thread counts")
		seedFlag = flag.Uint64("seed", 1, "experiment seed")
		csvFlag  = flag.Bool("csv", false, "also emit CSV rows")
		jsonFlag = flag.Bool("json", false, "also emit one JSON document per figure/report")
		traceFlg = flag.String("trace", "", "write a Chrome trace_event JSON file of every timed run")
		msfDim   = flag.Int("msf-dim", 96, "roadmap grid dimension (msf-dim x msf-dim vertices)")
		profOps  = flag.Int("profile-ops", 1500, "operations for the Section 6.1 profile")
	)
	flag.Parse()

	threads, err := parseThreads(*thrFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}
	o := bench.Options{Threads: threads, OpsPerThread: *opsFlag, Seed: *seedFlag}
	var sink *obs.TraceSink
	if *traceFlg != "" {
		sink = &obs.TraceSink{}
		o.Trace = sink
	}
	mo := bench.MSFOptions{Width: *msfDim, Height: *msfDim, Threads: threads, Seed: *seedFlag}

	type experiment struct {
		name string
		run  func() (*bench.Figure, error)
	}
	experiments := []experiment{
		{"counter", func() (*bench.Figure, error) { return bench.CounterFigure(o) }},
		{"dcas", func() (*bench.Figure, error) { return bench.DCASFigure(o) }},
		{"fig1a", func() (*bench.Figure, error) { return bench.Fig1a(o) }},
		{"fig1b", func() (*bench.Figure, error) { return bench.Fig1b(o) }},
		{"fig1ro", func() (*bench.Figure, error) { return bench.Fig1ReadOnly(o) }},
		{"fig2a", func() (*bench.Figure, error) { return bench.Fig2a(o) }},
		{"fig2b", func() (*bench.Figure, error) { return bench.Fig2b(o) }},
		{"fig3a", func() (*bench.Figure, error) { return bench.Fig3a(o) }},
		{"fig3b", func() (*bench.Figure, error) { return bench.Fig3b(o) }},
		{"divide", func() (*bench.Figure, error) { return bench.DivideHashDemo(o) }},
		{"inline", func() (*bench.Figure, error) { return bench.InlineDemo(o) }},
		{"treemap", func() (*bench.Figure, error) { return bench.TreeMapDemo(o) }},
		{"volano", func() (*bench.Figure, error) { return bench.VolanoFigure(o) }},
		{"fig4", func() (*bench.Figure, error) { return bench.Fig4(mo) }},
		{"msfse", func() (*bench.Figure, error) { return bench.SEModeMSF(mo) }},
		{"ablate-retry", func() (*bench.Figure, error) { return bench.AblationRetryBudget(o) }},
		{"ablate-ucti", func() (*bench.Figure, error) { return bench.AblationUCTIWeight(o) }},
		{"ablate-throttle", func() (*bench.Figure, error) { return bench.AblationThrottle(o) }},
	}

	selected := map[string]bool{}
	all := *expFlag == "all"
	for _, name := range strings.Split(*expFlag, ",") {
		selected[strings.TrimSpace(name)] = true
	}

	ran := 0
	for _, e := range experiments {
		if !all && !selected[e.name] {
			continue
		}
		ran++
		fig, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fig.Render(os.Stdout)
		if *csvFlag {
			fig.CSV(os.Stdout)
		}
		if *jsonFlag {
			if err := fig.JSON(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %s: json: %v\n", e.name, err)
				os.Exit(1)
			}
		}
	}
	if all || selected["attrib"] {
		ran++
		rep, err := bench.AttributionReport(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: attrib: %v\n", err)
			os.Exit(1)
		}
		rep.Render(os.Stdout)
		if *csvFlag {
			rep.CSV(os.Stdout)
		}
		if *jsonFlag {
			if err := rep.JSON(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "figures: attrib: json: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if all || selected["profile"] {
		ran++
		fmt.Println("== Section 6.1 transaction-failure analysis (single-thread PhTM vs STM replay) ==")
		for _, line := range bench.ProfileReport(*profOps, nil) {
			fmt.Println(line)
		}
		fmt.Println()
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "figures: no experiment matched %q\n", *expFlag)
		os.Exit(2)
	}
	if sink != nil {
		f, err := os.Create(*traceFlg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		if err := sink.WriteChrome(f); err != nil {
			fmt.Fprintln(os.Stderr, "figures: trace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "figures: trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "figures: wrote %d events from %d runs to %s (load in Perfetto / chrome://tracing)\n",
			sink.Events(), sink.Runs(), *traceFlg)
	}
}

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
