// Command figures regenerates every figure and table of the paper's
// evaluation on the simulated Rock machine.
//
// Usage:
//
//	figures -exp all                 # everything (parallel across host cores)
//	figures -exp list                # list valid experiment names
//	figures -exp fig1a,fig2b         # selected experiments
//	figures -exp fig4 -msf-dim 96    # a bigger roadmap
//	figures -ops 20000               # more operations per thread
//	figures -csv                     # machine-readable output too
//	figures -json                    # one JSON document per figure
//	figures -exp attrib              # Table-4-style abort attribution
//	figures -exp tail                # skew x system latency percentiles
//	figures -latency -exp fig2b      # add p50/p90/p99/p99.9 to any figure
//	figures -exp fig1a -trace t.json # Chrome/Perfetto event trace
//	figures -exp timeline            # windowed timeseries + detectors + SLOs
//	figures -exp fleet               # sharded service tier: router x batching x 2PC
//	figures -exp htmdesign           # HTM design space: design point x workload x policy
//	figures -exp tail -timeline w.json    # window series of any experiment
//	figures -timeline-window 16384   # window width in simulated cycles
//	figures -parallel 8              # worker-pool size (0 = GOMAXPROCS)
//	figures -sched coroutine         # legacy goroutine strand scheduler
//	figures -no-cache                # recompute every cell
//	figures -cache-dir /tmp/rc       # result cache location
//	figures -progress                # per-cell progress/ETA on stderr
//
// Every experiment decomposes into independent deterministic cells (one
// simulated machine per (system, threads) pair) that are scheduled onto
// a host worker pool and memoized in a content-addressed result cache,
// so unchanged figures re-render instantly and interrupted runs resume.
// Parallel output is byte-identical to serial output.
//
// Experiments: fig1a fig1b fig1ro fig2a fig2b fig3a fig3b counter dcas
// divide inline treemap volano fig4 msfse profile attrib, the tail
// latency experiment tail (zipfian skew × system, percentile tables, see
// docs/WORKLOADS.md), the windowed-timeseries experiment timeline
// (pathology detectors + SLO burn rates, see docs/OBSERVABILITY.md), the
// sharded service-tier experiment fleet (router × batching × 2PC over
// the shard-count axis, see docs/SERVICE.md),
// plus the ablations ablate-retry (PhTM retry budget), ablate-ucti (UCTI
// failure weight), ablate-throttle (adaptive concurrency throttling
// extension), policy (retry policy × fault-injection profile, see
// docs/POLICY.md and docs/ABORT-PLAYBOOK.md), and the design-space sweep
// htmdesign (HTM design point × workload × retry policy, see
// docs/HTM-DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"rocktm/internal/bench"
	"rocktm/internal/obs"
	"rocktm/internal/obs/timeseries"
	"rocktm/internal/runner"
)

// experiment is one runnable entry; exactly one of fig/report/lines is
// produced by run.
type experiment struct {
	name string
	run  func() (*bench.Figure, error)
}

// experimentNames returns every valid -exp name, including the two
// non-figure reports, sorted so `-exp list` output is stable and
// scannable regardless of catalogue growth.
func experimentNames(experiments []experiment) []string {
	names := make([]string, 0, len(experiments)+2)
	for _, e := range experiments {
		names = append(names, e.name)
	}
	names = append(names, "attrib", "profile")
	sort.Strings(names)
	return names
}

// parseExpFlag validates a comma-separated -exp value against the valid
// names, returning the selection set (nil means all). Unknown names are
// an error carrying the full valid list, so a typo never silently skips
// an experiment.
func parseExpFlag(value string, valid []string) (map[string]bool, error) {
	if value == "all" {
		return nil, nil
	}
	validSet := map[string]bool{}
	for _, n := range valid {
		validSet[n] = true
	}
	selected := map[string]bool{}
	for _, name := range strings.Split(value, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !validSet[name] {
			return nil, fmt.Errorf("unknown experiment %q; valid names: %s", name, strings.Join(valid, " "))
		}
		selected[name] = true
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no experiments selected; valid names: %s", strings.Join(valid, " "))
	}
	return selected, nil
}

// cliFlags holds every command-line option. Registration happens on an
// explicit FlagSet so tests can assert the flag surface without parsing a
// real command line.
type cliFlags struct {
	exp      *string
	ops      *int
	threads  *string
	seed     *uint64
	csv      *bool
	latency  *bool
	json     *bool
	trace    *string
	timeline *string
	tlWindow *int64
	msfDim   *int
	profOps  *int
	cpuProf  *string
	memProf  *string
	parallel *int
	cacheDir *string
	noCache  *bool
	progress *bool
	cellTime *time.Duration
	sched    *string
}

// registerFlags declares the full flag surface on fs.
func registerFlags(fs *flag.FlagSet) *cliFlags {
	return &cliFlags{
		exp:      fs.String("exp", "all", "comma-separated experiment names, 'all', or 'list'"),
		ops:      fs.Int("ops", 4000, "operations per thread"),
		threads:  fs.String("threads", "1,2,3,4,6,8,12,16", "thread counts"),
		seed:     fs.Uint64("seed", 1, "experiment seed"),
		csv:      fs.Bool("csv", false, "also emit CSV rows"),
		latency:  fs.Bool("latency", false, "record per-operation latency and add p50/p90/p99/p99.9 columns to every workload-driven figure"),
		json:     fs.Bool("json", false, "also emit one JSON document per figure/report"),
		trace:    fs.String("trace", "", "write a Chrome trace_event JSON file of every timed run (forces serial, uncached cells)"),
		timeline: fs.String("timeline", "", "write the windowed timeseries of every timed run to this file (.csv for CSV, else JSON; forces serial, uncached cells)"),
		tlWindow: fs.Int64("timeline-window", 0, "timeseries window width in simulated cycles (0 = default)"),
		msfDim:   fs.Int("msf-dim", 96, "roadmap grid dimension (msf-dim x msf-dim vertices)"),
		profOps:  fs.Int("profile-ops", 1500, "operations for the Section 6.1 profile"),
		cpuProf:  fs.String("cpuprofile", "", "write a pprof CPU profile to this file (forces serial, uncached cells)"),
		memProf:  fs.String("memprofile", "", "write a pprof allocation profile to this file (forces serial, uncached cells)"),
		parallel: fs.Int("parallel", 0, "experiment-cell workers (0 = GOMAXPROCS, 1 = serial)"),
		cacheDir: fs.String("cache-dir", runner.DefaultCacheDir, "content-addressed result cache directory"),
		noCache:  fs.Bool("no-cache", false, "recompute every cell, ignoring and not writing the cache"),
		progress: fs.Bool("progress", false, "report per-cell progress and ETA on stderr"),
		cellTime: fs.Duration("cell-timeout", 0, "per-cell wall-clock budget; an over-budget cell fails alone (0 = none)"),
		sched:    fs.String("sched", "", "strand scheduler: 'step' (continuation driver) or 'coroutine' (legacy goroutine driver); empty defers to ROCKTM_SCHED, then 'step'"),
	}
}

func main() {
	fl := registerFlags(flag.CommandLine)
	flag.Parse()

	// Each experiment cell builds a fresh simulated machine whose word
	// array and cache/TLB state are tens of megabytes of short-lived,
	// pointer-free memory. The default GOGC=100 triggers a collection
	// roughly once per cell for no recoverable benefit; quadrupling the
	// target heap growth cuts several GC cycles from a full run while
	// keeping the peak heap bounded (cells are serialized per worker).
	// An explicit GOGC environment setting still wins.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}

	threads, err := parseThreads(*fl.threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}

	// Scheduler selection feeds bench.Options.Sched; validating here turns a
	// typo into a usage error instead of silently running the default driver.
	// Either driver produces byte-identical figures (the differential golden
	// test pins this), so -sched is a performance/debugging knob, not part of
	// any cell cache key.
	switch *fl.sched {
	case "", bench.SchedStep, bench.SchedCoroutine:
	default:
		fmt.Fprintf(os.Stderr, "figures: -sched must be %q or %q, got %q\n", bench.SchedStep, bench.SchedCoroutine, *fl.sched)
		os.Exit(2)
	}

	// Profiles only make sense on the serial, uncached path: pool workers
	// interleave cells and cache hits run nothing. stopProfiles is invoked
	// explicitly on the exit path (main exits via os.Exit inside a defer,
	// which would skip ordinary deferred profile flushes).
	stopProfiles := func() {}
	if *fl.cpuProf != "" || *fl.memProf != "" {
		if *fl.parallel != 1 || !*fl.noCache {
			fmt.Fprintln(os.Stderr, "figures: profiling forces serial, uncached cell execution")
		}
		*fl.parallel = 1
		*fl.noCache = true
		cpuPath, memPath := *fl.cpuProf, *fl.memProf
		if cpuPath != "" {
			f, err := os.Create(cpuPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(2)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(2)
			}
		}
		stopProfiles = func() {
			if cpuPath != "" {
				pprof.StopCPUProfile()
				fmt.Fprintf(os.Stderr, "figures: wrote CPU profile to %s (go tool pprof %s)\n", cpuPath, cpuPath)
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "figures:", err)
					return
				}
				runtime.GC() // flush the final heap state into the profile
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "figures:", err)
				}
				f.Close()
				fmt.Fprintf(os.Stderr, "figures: wrote allocation profile to %s\n", memPath)
			}
		}
	}

	// The orchestrator: worker pool + result cache + learned cost model.
	pool := &runner.Pool{Workers: *fl.parallel, Timeout: *fl.cellTime}
	if !*fl.noCache {
		cache, err := runner.OpenCache(*fl.cacheDir, runner.CacheVersion)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v (continuing uncached)\n", err)
		} else {
			pool.Cache = cache
			pool.Costs = runner.LoadCostModel(*fl.cacheDir)
		}
	}
	reg := obs.NewRegistry()
	pool.PublishMetrics(reg)
	if *fl.progress {
		pool.OnProgress = func(pr runner.Progress) {
			snap := reg.Snapshot()
			done, _ := snap.Counter("runner", "jobs_done")
			total, _ := snap.Counter("runner", "jobs_total")
			cached, _ := snap.Counter("runner", "jobs_cached")
			failed, _ := snap.Counter("runner", "jobs_failed")
			etaMS, _ := snap.Counter("runner", "eta_ms")
			line := fmt.Sprintf("figures: %d/%d cells (%d cached", done, total, cached)
			if failed > 0 {
				line += fmt.Sprintf(", %d failed", failed)
			}
			line += fmt.Sprintf(") eta %s  last=%s",
				(time.Duration(etaMS) * time.Millisecond).Round(time.Second), pr.Last)
			fmt.Fprintln(os.Stderr, line)
		}
	}

	o := bench.Options{Threads: threads, OpsPerThread: *fl.ops, Seed: *fl.seed, Runner: pool, Latency: *fl.latency, TimelineWindow: *fl.tlWindow, Sched: *fl.sched}
	var sink *obs.TraceSink
	if *fl.trace != "" {
		sink = &obs.TraceSink{}
		o.Trace = sink
		if *fl.parallel != 1 {
			fmt.Fprintln(os.Stderr, "figures: -trace forces serial, uncached cell execution")
		}
	}
	var tlSink *timeseries.Sink
	if *fl.timeline != "" {
		tlSink = &timeseries.Sink{}
		o.Timeline = tlSink
		if *fl.parallel != 1 {
			fmt.Fprintln(os.Stderr, "figures: -timeline forces serial, uncached cell execution")
		}
	}
	mo := bench.MSFOptions{Width: *fl.msfDim, Height: *fl.msfDim, Threads: threads, Seed: *fl.seed, Runner: pool}
	if *fl.trace != "" {
		mo.Runner = nil // MSF cells are untraced; keep them serial too for reproducible trace files
	}

	experiments := buildExperiments(o, mo)
	valid := experimentNames(experiments)

	if *fl.exp == "list" {
		for _, n := range valid {
			fmt.Println(n)
		}
		return
	}
	selected, err := parseExpFlag(*fl.exp, valid)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}
	all := selected == nil

	exitCode := 0
	defer func() {
		finishPool(pool)
		stopProfiles()
		os.Exit(exitCode)
	}()
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format, args...)
		exitCode = 1
	}

	for _, e := range experiments {
		if !all && !selected[e.name] {
			continue
		}
		fig, err := e.run()
		if err != nil {
			fail("figures: %s: %v\n", e.name, err)
			return
		}
		fig.Render(os.Stdout)
		if *fl.csv {
			fig.CSV(os.Stdout)
		}
		if *fl.json {
			if err := fig.JSON(os.Stdout); err != nil {
				fail("figures: %s: json: %v\n", e.name, err)
				return
			}
		}
	}
	if all || selected["attrib"] {
		rep, err := bench.AttributionReport(o)
		if err != nil {
			fail("figures: attrib: %v\n", err)
			return
		}
		rep.Render(os.Stdout)
		if *fl.csv {
			rep.CSV(os.Stdout)
		}
		if *fl.json {
			if err := rep.JSON(os.Stdout); err != nil {
				fail("figures: attrib: json: %v\n", err)
				return
			}
		}
	}
	if all || selected["profile"] {
		fmt.Println("== Section 6.1 transaction-failure analysis (single-thread PhTM vs STM replay) ==")
		for _, line := range bench.ProfileReport(*fl.profOps, nil) {
			fmt.Println(line)
		}
		fmt.Println()
	}
	if sink != nil {
		// When both -trace and -timeline are active, fold each run's window
		// series into its trace process as Perfetto counter tracks, so the
		// line charts render above the matching event timeline.
		if tlSink != nil {
			tlSink.Each(func(label string, s timeseries.Series) {
				sink.AddCounters(label, s.FreqGHz, s.CounterTracks())
			})
		}
		f, err := os.Create(*fl.trace)
		if err != nil {
			fail("figures: %v\n", err)
			return
		}
		if err := sink.WriteChrome(f); err != nil {
			fail("figures: trace: %v\n", err)
			return
		}
		if err := f.Close(); err != nil {
			fail("figures: trace: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "figures: wrote %d events from %d runs to %s (load in Perfetto / chrome://tracing)\n",
			sink.Events(), sink.Runs(), *fl.trace)
	}
	if tlSink != nil {
		f, err := os.Create(*fl.timeline)
		if err != nil {
			fail("figures: %v\n", err)
			return
		}
		write := tlSink.WriteJSON
		if strings.HasSuffix(*fl.timeline, ".csv") {
			write = tlSink.WriteCSV
		}
		if werr := write(f); werr != nil {
			fail("figures: timeline: %v\n", werr)
			return
		}
		if err := f.Close(); err != nil {
			fail("figures: timeline: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "figures: wrote window series of %d runs to %s\n", tlSink.Runs(), *fl.timeline)
	}
}

// buildExperiments assembles the full figure catalogue in display order.
// Factored out of main so tests can assert the catalogue (and therefore
// -exp list and the unknown-name error) includes every documented name.
func buildExperiments(o bench.Options, mo bench.MSFOptions) []experiment {
	return []experiment{
		{"counter", func() (*bench.Figure, error) { return bench.CounterFigure(o) }},
		{"dcas", func() (*bench.Figure, error) { return bench.DCASFigure(o) }},
		{"fig1a", func() (*bench.Figure, error) { return bench.Fig1a(o) }},
		{"fig1b", func() (*bench.Figure, error) { return bench.Fig1b(o) }},
		{"fig1ro", func() (*bench.Figure, error) { return bench.Fig1ReadOnly(o) }},
		{"fig2a", func() (*bench.Figure, error) { return bench.Fig2a(o) }},
		{"fig2b", func() (*bench.Figure, error) { return bench.Fig2b(o) }},
		{"fig3a", func() (*bench.Figure, error) { return bench.Fig3a(o) }},
		{"fig3b", func() (*bench.Figure, error) { return bench.Fig3b(o) }},
		{"divide", func() (*bench.Figure, error) { return bench.DivideHashDemo(o) }},
		{"inline", func() (*bench.Figure, error) { return bench.InlineDemo(o) }},
		{"treemap", func() (*bench.Figure, error) { return bench.TreeMapDemo(o) }},
		{"volano", func() (*bench.Figure, error) { return bench.VolanoFigure(o) }},
		{"tail", func() (*bench.Figure, error) { return bench.TailFigure(o) }},
		{"timeline", func() (*bench.Figure, error) { return bench.TimelineFigure(o) }},
		{"fleet", func() (*bench.Figure, error) { return bench.FleetFigure(o) }},
		{"fig4", func() (*bench.Figure, error) { return bench.Fig4(mo) }},
		{"msfse", func() (*bench.Figure, error) { return bench.SEModeMSF(mo) }},
		{"ablate-retry", func() (*bench.Figure, error) { return bench.AblationRetryBudget(o) }},
		{"ablate-ucti", func() (*bench.Figure, error) { return bench.AblationUCTIWeight(o) }},
		{"ablate-throttle", func() (*bench.Figure, error) { return bench.AblationThrottle(o) }},
		{"policy", func() (*bench.Figure, error) { return bench.PolicyFigure(o) }},
		{"htmdesign", func() (*bench.Figure, error) { return bench.HTMDesignFigure(o) }},
	}
}

// finishPool persists the learned cost model and surfaces any cache
// warnings (corrupted entries fell back to recompute).
func finishPool(pool *runner.Pool) {
	if pool.Costs != nil {
		if err := pool.Costs.Save(); err != nil {
			fmt.Fprintf(os.Stderr, "figures: cost model: %v\n", err)
		}
	}
	if pool.Cache != nil {
		for _, w := range pool.Cache.Warnings() {
			fmt.Fprintf(os.Stderr, "figures: %s\n", w)
		}
	}
}

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
