// Command figures regenerates every figure and table of the paper's
// evaluation on the simulated Rock machine.
//
// Usage:
//
//	figures -exp all                 # everything (parallel across host cores)
//	figures -exp list                # list valid experiment names
//	figures -exp fig1a,fig2b         # selected experiments
//	figures -exp fig4 -msf-dim 96    # a bigger roadmap
//	figures -ops 20000               # more operations per thread
//	figures -csv                     # machine-readable output too
//	figures -json                    # one JSON document per figure
//	figures -exp attrib              # Table-4-style abort attribution
//	figures -exp tail                # skew x system latency percentiles
//	figures -latency -exp fig2b      # add p50/p90/p99/p99.9 to any figure
//	figures -exp fig1a -trace t.json # Chrome/Perfetto event trace
//	figures -parallel 8              # worker-pool size (0 = GOMAXPROCS)
//	figures -no-cache                # recompute every cell
//	figures -cache-dir /tmp/rc       # result cache location
//	figures -progress                # per-cell progress/ETA on stderr
//
// Every experiment decomposes into independent deterministic cells (one
// simulated machine per (system, threads) pair) that are scheduled onto
// a host worker pool and memoized in a content-addressed result cache,
// so unchanged figures re-render instantly and interrupted runs resume.
// Parallel output is byte-identical to serial output.
//
// Experiments: fig1a fig1b fig1ro fig2a fig2b fig3a fig3b counter dcas
// divide inline treemap volano fig4 msfse profile attrib, the tail
// latency experiment tail (zipfian skew × system, percentile tables, see
// docs/WORKLOADS.md), plus the ablations ablate-retry (PhTM retry
// budget), ablate-ucti (UCTI failure weight), ablate-throttle (adaptive
// concurrency throttling extension) and policy (retry policy ×
// fault-injection profile, see docs/POLICY.md and
// docs/ABORT-PLAYBOOK.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"rocktm/internal/bench"
	"rocktm/internal/obs"
	"rocktm/internal/runner"
)

// experiment is one runnable entry; exactly one of fig/report/lines is
// produced by run.
type experiment struct {
	name string
	run  func() (*bench.Figure, error)
}

// experimentNames returns every valid -exp name in display order,
// including the two non-figure reports.
func experimentNames(experiments []experiment) []string {
	names := make([]string, 0, len(experiments)+2)
	for _, e := range experiments {
		names = append(names, e.name)
	}
	names = append(names, "attrib", "profile")
	return names
}

// parseExpFlag validates a comma-separated -exp value against the valid
// names, returning the selection set (nil means all). Unknown names are
// an error carrying the full valid list, so a typo never silently skips
// an experiment.
func parseExpFlag(value string, valid []string) (map[string]bool, error) {
	if value == "all" {
		return nil, nil
	}
	validSet := map[string]bool{}
	for _, n := range valid {
		validSet[n] = true
	}
	selected := map[string]bool{}
	for _, name := range strings.Split(value, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !validSet[name] {
			return nil, fmt.Errorf("unknown experiment %q; valid names: %s", name, strings.Join(valid, " "))
		}
		selected[name] = true
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no experiments selected; valid names: %s", strings.Join(valid, " "))
	}
	return selected, nil
}

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment names, 'all', or 'list'")
		opsFlag  = flag.Int("ops", 4000, "operations per thread")
		thrFlag  = flag.String("threads", "1,2,3,4,6,8,12,16", "thread counts")
		seedFlag = flag.Uint64("seed", 1, "experiment seed")
		csvFlag  = flag.Bool("csv", false, "also emit CSV rows")
		latFlag  = flag.Bool("latency", false, "record per-operation latency and add p50/p90/p99/p99.9 columns to every workload-driven figure")
		jsonFlag = flag.Bool("json", false, "also emit one JSON document per figure/report")
		traceFlg = flag.String("trace", "", "write a Chrome trace_event JSON file of every timed run (forces serial, uncached cells)")
		msfDim   = flag.Int("msf-dim", 96, "roadmap grid dimension (msf-dim x msf-dim vertices)")
		profOps  = flag.Int("profile-ops", 1500, "operations for the Section 6.1 profile")

		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile to this file (forces serial, uncached cells)")
		memProf = flag.String("memprofile", "", "write a pprof allocation profile to this file (forces serial, uncached cells)")

		parallel = flag.Int("parallel", 0, "experiment-cell workers (0 = GOMAXPROCS, 1 = serial)")
		cacheDir = flag.String("cache-dir", runner.DefaultCacheDir, "content-addressed result cache directory")
		noCache  = flag.Bool("no-cache", false, "recompute every cell, ignoring and not writing the cache")
		progress = flag.Bool("progress", false, "report per-cell progress and ETA on stderr")
		cellTime = flag.Duration("cell-timeout", 0, "per-cell wall-clock budget; an over-budget cell fails alone (0 = none)")
	)
	flag.Parse()

	// Each experiment cell builds a fresh simulated machine whose word
	// array and cache/TLB state are tens of megabytes of short-lived,
	// pointer-free memory. The default GOGC=100 triggers a collection
	// roughly once per cell for no recoverable benefit; quadrupling the
	// target heap growth cuts several GC cycles from a full run while
	// keeping the peak heap bounded (cells are serialized per worker).
	// An explicit GOGC environment setting still wins.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}

	threads, err := parseThreads(*thrFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}

	// Profiles only make sense on the serial, uncached path: pool workers
	// interleave cells and cache hits run nothing. stopProfiles is invoked
	// explicitly on the exit path (main exits via os.Exit inside a defer,
	// which would skip ordinary deferred profile flushes).
	stopProfiles := func() {}
	if *cpuProf != "" || *memProf != "" {
		if *parallel != 1 || !*noCache {
			fmt.Fprintln(os.Stderr, "figures: profiling forces serial, uncached cell execution")
		}
		*parallel = 1
		*noCache = true
		cpuPath, memPath := *cpuProf, *memProf
		if cpuPath != "" {
			f, err := os.Create(cpuPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(2)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(2)
			}
		}
		stopProfiles = func() {
			if cpuPath != "" {
				pprof.StopCPUProfile()
				fmt.Fprintf(os.Stderr, "figures: wrote CPU profile to %s (go tool pprof %s)\n", cpuPath, cpuPath)
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "figures:", err)
					return
				}
				runtime.GC() // flush the final heap state into the profile
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "figures:", err)
				}
				f.Close()
				fmt.Fprintf(os.Stderr, "figures: wrote allocation profile to %s\n", memPath)
			}
		}
	}

	// The orchestrator: worker pool + result cache + learned cost model.
	pool := &runner.Pool{Workers: *parallel, Timeout: *cellTime}
	if !*noCache {
		cache, err := runner.OpenCache(*cacheDir, runner.CacheVersion)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v (continuing uncached)\n", err)
		} else {
			pool.Cache = cache
			pool.Costs = runner.LoadCostModel(*cacheDir)
		}
	}
	reg := obs.NewRegistry()
	pool.PublishMetrics(reg)
	if *progress {
		pool.OnProgress = func(pr runner.Progress) {
			snap := reg.Snapshot()
			done, _ := snap.Counter("runner", "jobs_done")
			total, _ := snap.Counter("runner", "jobs_total")
			cached, _ := snap.Counter("runner", "jobs_cached")
			failed, _ := snap.Counter("runner", "jobs_failed")
			etaMS, _ := snap.Counter("runner", "eta_ms")
			line := fmt.Sprintf("figures: %d/%d cells (%d cached", done, total, cached)
			if failed > 0 {
				line += fmt.Sprintf(", %d failed", failed)
			}
			line += fmt.Sprintf(") eta %s  last=%s",
				(time.Duration(etaMS) * time.Millisecond).Round(time.Second), pr.Last)
			fmt.Fprintln(os.Stderr, line)
		}
	}

	o := bench.Options{Threads: threads, OpsPerThread: *opsFlag, Seed: *seedFlag, Runner: pool, Latency: *latFlag}
	var sink *obs.TraceSink
	if *traceFlg != "" {
		sink = &obs.TraceSink{}
		o.Trace = sink
		if *parallel != 1 {
			fmt.Fprintln(os.Stderr, "figures: -trace forces serial, uncached cell execution")
		}
	}
	mo := bench.MSFOptions{Width: *msfDim, Height: *msfDim, Threads: threads, Seed: *seedFlag, Runner: pool}
	if *traceFlg != "" {
		mo.Runner = nil // MSF cells are untraced; keep them serial too for reproducible trace files
	}

	experiments := buildExperiments(o, mo)
	valid := experimentNames(experiments)

	if *expFlag == "list" {
		for _, n := range valid {
			fmt.Println(n)
		}
		return
	}
	selected, err := parseExpFlag(*expFlag, valid)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}
	all := selected == nil

	exitCode := 0
	defer func() {
		finishPool(pool)
		stopProfiles()
		os.Exit(exitCode)
	}()
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format, args...)
		exitCode = 1
	}

	for _, e := range experiments {
		if !all && !selected[e.name] {
			continue
		}
		fig, err := e.run()
		if err != nil {
			fail("figures: %s: %v\n", e.name, err)
			return
		}
		fig.Render(os.Stdout)
		if *csvFlag {
			fig.CSV(os.Stdout)
		}
		if *jsonFlag {
			if err := fig.JSON(os.Stdout); err != nil {
				fail("figures: %s: json: %v\n", e.name, err)
				return
			}
		}
	}
	if all || selected["attrib"] {
		rep, err := bench.AttributionReport(o)
		if err != nil {
			fail("figures: attrib: %v\n", err)
			return
		}
		rep.Render(os.Stdout)
		if *csvFlag {
			rep.CSV(os.Stdout)
		}
		if *jsonFlag {
			if err := rep.JSON(os.Stdout); err != nil {
				fail("figures: attrib: json: %v\n", err)
				return
			}
		}
	}
	if all || selected["profile"] {
		fmt.Println("== Section 6.1 transaction-failure analysis (single-thread PhTM vs STM replay) ==")
		for _, line := range bench.ProfileReport(*profOps, nil) {
			fmt.Println(line)
		}
		fmt.Println()
	}
	if sink != nil {
		f, err := os.Create(*traceFlg)
		if err != nil {
			fail("figures: %v\n", err)
			return
		}
		if err := sink.WriteChrome(f); err != nil {
			fail("figures: trace: %v\n", err)
			return
		}
		if err := f.Close(); err != nil {
			fail("figures: trace: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "figures: wrote %d events from %d runs to %s (load in Perfetto / chrome://tracing)\n",
			sink.Events(), sink.Runs(), *traceFlg)
	}
}

// buildExperiments assembles the full figure catalogue in display order.
// Factored out of main so tests can assert the catalogue (and therefore
// -exp list and the unknown-name error) includes every documented name.
func buildExperiments(o bench.Options, mo bench.MSFOptions) []experiment {
	return []experiment{
		{"counter", func() (*bench.Figure, error) { return bench.CounterFigure(o) }},
		{"dcas", func() (*bench.Figure, error) { return bench.DCASFigure(o) }},
		{"fig1a", func() (*bench.Figure, error) { return bench.Fig1a(o) }},
		{"fig1b", func() (*bench.Figure, error) { return bench.Fig1b(o) }},
		{"fig1ro", func() (*bench.Figure, error) { return bench.Fig1ReadOnly(o) }},
		{"fig2a", func() (*bench.Figure, error) { return bench.Fig2a(o) }},
		{"fig2b", func() (*bench.Figure, error) { return bench.Fig2b(o) }},
		{"fig3a", func() (*bench.Figure, error) { return bench.Fig3a(o) }},
		{"fig3b", func() (*bench.Figure, error) { return bench.Fig3b(o) }},
		{"divide", func() (*bench.Figure, error) { return bench.DivideHashDemo(o) }},
		{"inline", func() (*bench.Figure, error) { return bench.InlineDemo(o) }},
		{"treemap", func() (*bench.Figure, error) { return bench.TreeMapDemo(o) }},
		{"volano", func() (*bench.Figure, error) { return bench.VolanoFigure(o) }},
		{"tail", func() (*bench.Figure, error) { return bench.TailFigure(o) }},
		{"fig4", func() (*bench.Figure, error) { return bench.Fig4(mo) }},
		{"msfse", func() (*bench.Figure, error) { return bench.SEModeMSF(mo) }},
		{"ablate-retry", func() (*bench.Figure, error) { return bench.AblationRetryBudget(o) }},
		{"ablate-ucti", func() (*bench.Figure, error) { return bench.AblationUCTIWeight(o) }},
		{"ablate-throttle", func() (*bench.Figure, error) { return bench.AblationThrottle(o) }},
		{"policy", func() (*bench.Figure, error) { return bench.PolicyFigure(o) }},
	}
}

// finishPool persists the learned cost model and surfaces any cache
// warnings (corrupted entries fell back to recompute).
func finishPool(pool *runner.Pool) {
	if pool.Costs != nil {
		if err := pool.Costs.Save(); err != nil {
			fmt.Fprintf(os.Stderr, "figures: cost model: %v\n", err)
		}
	}
	if pool.Cache != nil {
		for _, w := range pool.Cache.Warnings() {
			fmt.Fprintf(os.Stderr, "figures: %s\n", w)
		}
	}
}

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
