// Command cpstest reproduces the Section 3 experiments: directed tests
// that confirm when transactions abort and what feedback the CPS register
// gives. Each scenario prints the distribution of observed CPS values,
// which can be compared with the paper's descriptions (Table 1 and the
// bullet list in Section 3).
package main

import (
	"flag"
	"fmt"

	"rocktm/internal/cps"
	"rocktm/internal/rock"
	"rocktm/internal/sim"
)

func main() {
	iters := flag.Int("iters", 200, "attempts per scenario")
	flag.Parse()

	fmt.Println("cpstest: CPS register behaviour on the simulated Rock (R2 semantics)")
	fmt.Println()
	saveRestore(*iters)
	divide(*iters)
	traps(*iters)
	loadUnmapped(*iters)
	storeUnmapped(*iters)
	itlbMiss(*iters)
	exogenous(*iters)
	eviction(*iters)
	cacheSet(*iters)
	overflow(*iters)
	coherence(*iters)
	idleLoopCOH()
}

func newMachine(strands int) *sim.Machine {
	cfg := sim.DefaultConfig(strands)
	cfg.MemWords = 1 << 22
	cfg.MaxCycles = 1 << 44
	return sim.New(cfg)
}

func report(name string, h *cps.Histogram, comment string) {
	fmt.Printf("%-14s %s\n", name, h)
	if comment != "" {
		fmt.Printf("               (%s)\n", comment)
	}
	fmt.Println()
}

func saveRestore(iters int) {
	m := newMachine(1)
	h := cps.NewHistogram()
	m.Run(func(s *sim.Strand) {
		for i := 0; i < iters; i++ {
			if ok, c := rock.Try(s, func(t rock.Txn) { t.Call() }); !ok {
				h.Add(c)
			}
		}
	})
	report("save-restore", h, "function calls fail transactions: CPS=INST")
}

func divide(iters int) {
	m := newMachine(1)
	h := cps.NewHistogram()
	m.Run(func(s *sim.Strand) {
		for i := 0; i < iters; i++ {
			if ok, c := rock.Try(s, func(t rock.Txn) { t.Div() }); !ok {
				h.Add(c)
			}
		}
	})
	report("divide", h, "divide instructions are unsupported: CPS=FP")
}

func traps(iters int) {
	m := newMachine(1)
	h := cps.NewHistogram()
	taken := 0
	m.Run(func(s *sim.Strand) {
		for i := 0; i < iters; i++ {
			ok, c := rock.Try(s, func(t rock.Txn) { t.Trap(i%2 == 0) })
			if !ok {
				h.Add(c)
			} else {
				taken++
			}
		}
	})
	report("cond-trap", h, fmt.Sprintf("taken traps abort with TCC; %d untaken traps committed", taken))
}

func loadUnmapped(iters int) {
	m := newMachine(1)
	a := m.Mem().Alloc(sim.PageWords, sim.PageWords)
	h := cps.NewHistogram()
	m.Run(func(s *sim.Strand) {
		for i := 0; i < iters; i++ {
			m.Mem().Remap(a, sim.PageWords)
			if ok, c := rock.Try(s, func(t rock.Txn) { t.Load(a) }); !ok {
				h.Add(c)
			}
		}
	})
	report("dtlb-load", h, "load with no TLB mapping: CPS=LD|PREC")
}

func storeUnmapped(iters int) {
	m := newMachine(1)
	a := m.Mem().Alloc(sim.PageWords, sim.PageWords)
	h := cps.NewHistogram()
	warmed := cps.NewHistogram()
	committedAfterWarm := 0
	m.Run(func(s *sim.Strand) {
		for i := 0; i < iters; i++ {
			m.Mem().Remap(a, sim.PageWords)
			if ok, c := rock.Try(s, func(t rock.Txn) { t.Store(a, 1) }); !ok {
				h.Add(c)
			}
			// Retry after the dummy-CAS TLB warmup.
			rock.WarmTLB(s, a, 1)
			if ok, c := rock.Try(s, func(t rock.Txn) { t.Store(a, 1) }); !ok {
				warmed.Add(c)
			} else {
				committedAfterWarm++
			}
		}
	})
	report("dtlb-store", h, "store with no TLB mapping: CPS=ST, persistent until software warmup")
	report("dtlb-store+warm", warmed,
		fmt.Sprintf("after dummy-CAS warmup %d/%d committed", committedAfterWarm, iters))
}

// itlbMiss reproduces the Section 3 ITLB test: code is copied to freshly
// mmaped memory and executed inside a transaction; with no ITLB mapping
// present the transaction fails with CPS=PREC, and executing the code once
// outside a transaction (warming the ITLB) fixes it.
func itlbMiss(iters int) {
	m := newMachine(1)
	code := m.Mem().Alloc(sim.PageWords, sim.PageWords)
	page := sim.PageOf(code)
	h := cps.NewHistogram()
	warmCommits := 0
	m.Run(func(s *sim.Strand) {
		for i := 0; i < iters; i++ {
			m.Mem().Remap(code, sim.PageWords)
			s.CAS(code, 0, 0) // data mapping back, but the ITLB stays cold
			if ok, c := rock.Try(s, func(t rock.Txn) { t.Exec(page) }); !ok {
				h.Add(c)
			}
			s.Exec(page) // warm the ITLB outside the transaction
			if ok, _ := rock.Try(s, func(t rock.Txn) { t.Exec(page) }); ok {
				warmCommits++
			}
		}
	})
	report("itlb", h, fmt.Sprintf(
		"executing freshly mmaped code in a transaction: CPS=PREC; %d/%d commit after ITLB warmup", warmCommits, iters))
}

// exogenous demonstrates the EXOG smattering every Section 3 test shows:
// with intervening code occasionally running between the abort and the CPS
// read (a context switch), the register reads back EXOG instead of the
// real reason.
func exogenous(iters int) {
	cfg := sim.DefaultConfig(1)
	cfg.MemWords = 1 << 20
	cfg.MaxCycles = 1 << 44
	cfg.ExogProb = 0.05
	m := sim.New(cfg)
	h := cps.NewHistogram()
	m.Run(func(s *sim.Strand) {
		for i := 0; i < iters; i++ {
			if ok, c := rock.Try(s, func(t rock.Txn) { t.Div() }); !ok {
				h.Add(c)
			}
		}
	})
	report("exogenous", h, "a divide test under context-switch pressure: mostly FP, with the usual smattering of EXOG")
}

func eviction(iters int) {
	m := newMachine(1)
	cfg := m.Config()
	lines := cfg.L1Sets*cfg.L1Ways + 64
	a := m.Mem().AllocLines(lines * sim.WordsPerLine)
	h := cps.NewHistogram()
	m.Run(func(s *sim.Strand) {
		for i := 0; i < iters; i++ {
			if ok, c := rock.Try(s, func(t rock.Txn) {
				for j := 0; j < lines; j++ {
					t.Load(a + sim.Addr(j*sim.WordsPerLine))
				}
			}); !ok {
				h.Add(c)
			}
		}
	})
	report("eviction", h, "line-stride loads past L1 capacity: LD (marked line displaced) and SIZ (deferred queue)")
}

func cacheSet(iters int) {
	m := newMachine(1)
	cfg := m.Config()
	stride := cfg.L1Sets * sim.WordsPerLine
	a := m.Mem().Alloc(stride*6, stride)
	h := cps.NewHistogram()
	m.Run(func(s *sim.Strand) {
		for i := 0; i < iters; i++ {
			if ok, c := rock.Try(s, func(t rock.Txn) {
				for j := 0; j < 5; j++ {
					t.Load(a + sim.Addr(j*stride))
				}
			}); !ok {
				h.Add(c)
			}
		}
	})
	report("cache-set", h, "five loads into one 4-way L1 set: CPS=LD")
}

func overflow(iters int) {
	m := newMachine(1)
	a := m.Mem().AllocLines(64 * sim.WordsPerLine)
	cold := cps.NewHistogram()
	warm := cps.NewHistogram()
	m.Run(func(s *sim.Strand) {
		body := func(t rock.Txn) {
			for j := 0; j < 33; j++ {
				t.Store(a+sim.Addr(j*sim.WordsPerLine), 1)
			}
		}
		for i := 0; i < iters; i++ {
			m.Mem().Remap(a, 64*sim.WordsPerLine)
			if ok, c := rock.Try(s, body); !ok {
				cold.Add(c)
			}
			rock.WarmTLB(s, a, 64*sim.WordsPerLine)
			if ok, c := rock.Try(s, body); !ok {
				warm.Add(c)
			}
		}
	})
	report("overflow-cold", cold, "33 stores, no TLB mappings: CPS=ST")
	report("overflow-warm", warm, "33 stores after warmup: bank overflow, CPS=ST|SIZ")
}

func coherence(iters int) {
	for _, threads := range []int{1, 4, 16} {
		m := newMachine(threads)
		a := m.Mem().AllocLines(16 * sim.WordsPerLine)
		h := cps.NewHistogram()
		commits := 0
		m.Run(func(s *sim.Strand) {
			for i := 0; i < iters; i++ {
				ok, c := rock.Try(s, func(t rock.Txn) {
					for j := 0; j < 16; j++ {
						t.Store(a+sim.Addr(j*sim.WordsPerLine), sim.Word(s.ID()))
					}
				})
				if ok {
					commits++
				} else {
					h.Add(c)
					// No backoff, as in the paper's test.
				}
			}
		})
		rate := float64(commits) / float64(threads*iters) * 100
		report(fmt.Sprintf("coherence x%d", threads), h,
			fmt.Sprintf("16 stores to shared lines, no backoff: %.1f%% success; conflicts report COH", rate))
	}
}

func idleLoopCOH() {
	// The paper's surprise: a single-threaded read-only test occasionally
	// fails with COH because another strand (the OS idle loop) displaces
	// L2 lines, back-invalidating transactionally marked L1 lines. Strand
	// 1 below plays the idle loop, sweeping memory.
	mcfg := sim.DefaultConfig(2)
	mcfg.MemWords = 1 << 22
	mcfg.MaxCycles = 1 << 44
	// A small L2 concentrates the displacement pressure the way a long
	//-running idle loop does on the real chip.
	mcfg.L2Sets, mcfg.L2Ways = 256, 8
	m := sim.New(mcfg)
	cfg := m.Config()
	stride := cfg.L1Sets * sim.WordsPerLine
	a := m.Mem().Alloc(stride*4, stride)
	const sweepWords = 1 << 17
	sweep := m.Mem().AllocLines(sweepWords)
	h := cps.NewHistogram()
	m.Run(func(s *sim.Strand) {
		if s.ID() == 0 {
			for i := 0; i < 1200; i++ {
				if ok, c := rock.Try(s, func(t rock.Txn) {
					for j := 0; j < 3; j++ {
						t.Load(a + sim.Addr(j*stride))
					}
					t.Advance(800) // dwell, exposing the window
				}); !ok {
					h.Add(c)
				}
			}
		} else {
			// The "idle loop": streams through a large buffer, evicting L2
			// lines.
			for i := 0; i < 1<<17; i++ {
				s.Load(sweep + sim.Addr((i*sim.WordsPerLine)%sweepWords))
			}
		}
	})
	report("idle-loop", h, "read-only transactions doomed by L2 displacement from a sibling strand: COH")
}
