package rock

import (
	"testing"

	"rocktm/internal/cps"
	"rocktm/internal/sim"
)

func newMachine() *sim.Machine {
	cfg := sim.DefaultConfig(1)
	cfg.MemWords = 1 << 18
	cfg.MaxCycles = 1 << 42
	return sim.New(cfg)
}

func TestTryCommitsAndAborts(t *testing.T) {
	m := newMachine()
	a := m.Mem().AllocLines(8)
	m.Run(func(s *sim.Strand) {
		s.Store(a, 1)
		ok, c := Try(s, func(tx Txn) {
			tx.Store(a, tx.Load(a)+1)
		})
		if !ok || c != 0 {
			t.Fatalf("simple txn failed: %v", c)
		}
		ok, c = Try(s, func(tx Txn) {
			tx.Store(a, 99)
			tx.Abort()
		})
		if ok || c != cps.TCC {
			t.Fatalf("explicit abort = (%v,%v), want (false,TCC)", ok, c)
		}
	})
	if got := m.Mem().Peek(a); got != 2 {
		t.Fatalf("value = %d, want 2 (aborted store must not land)", got)
	}
}

func TestUnwindingStopsAtTry(t *testing.T) {
	m := newMachine()
	m.Run(func(s *sim.Strand) {
		reached := false
		ok, c := Try(s, func(tx Txn) {
			tx.Call() // INST abort: unwinds here
			reached = true
		})
		if ok || reached {
			t.Error("body continued past an aborting instruction")
		}
		if c != cps.INST {
			t.Errorf("CPS = %v, want INST", c)
		}
	})
}

func TestForeignPanicsPropagate(t *testing.T) {
	m := newMachine()
	m.Run(func(s *sim.Strand) {
		defer func() {
			if r := recover(); r == nil {
				t.Error("foreign panic was swallowed by Try")
			}
		}()
		Try(s, func(tx Txn) {
			panic("user bug")
		})
	})
}

func TestWarmTLBMakesStoresCommit(t *testing.T) {
	m := newMachine()
	a := m.Mem().Alloc(sim.PageWords*3, sim.PageWords)
	m.Run(func(s *sim.Strand) {
		m.Mem().Remap(a, sim.PageWords*3)
		ok, c := Try(s, func(tx Txn) { tx.Store(a+sim.PageWords, 5) })
		if ok {
			t.Fatal("store to unmapped page committed")
		}
		if c != cps.ST {
			t.Fatalf("CPS = %v, want ST", c)
		}
		WarmTLB(s, a, sim.PageWords*3)
		ok, c = Try(s, func(tx Txn) { tx.Store(a+sim.PageWords, 5) })
		if !ok {
			t.Fatalf("post-warmup store failed: %v", c)
		}
	})
	if m.Mem().Peek(a+sim.PageWords) != 5 {
		t.Fatal("warmed store did not land")
	}
}

func TestCtxAdapterRoutesEverything(t *testing.T) {
	m := newMachine()
	a := m.Mem().AllocLines(8)
	pc := uint32(77)
	m.Run(func(s *sim.Strand) {
		s.Store(a, 3)
		// A transaction exercising every Ctx operation that can commit.
		ok, c := Try(s, func(tx Txn) {
			cx := Ctx{T: tx}
			if cx.Strand() != s {
				t.Error("Strand() mismatch")
			}
			v := cx.Load(a)
			cx.Branch(pc, v == 3, true)
			cx.Store(a, v+1)
		})
		if !ok {
			t.Fatalf("ctx txn failed: %v", c)
		}
		// Each aborting instruction through the adapter.
		if ok, c := Try(s, func(tx Txn) { Ctx{T: tx}.Div() }); ok || c != cps.FP {
			t.Errorf("Div: (%v,%v)", ok, c)
		}
		if ok, c := Try(s, func(tx Txn) { Ctx{T: tx}.Call() }); ok || c != cps.INST {
			t.Errorf("Call: (%v,%v)", ok, c)
		}
		if ok, c := Try(s, func(tx Txn) { tx.Trap(true) }); ok || c != cps.TCC {
			t.Errorf("Trap: (%v,%v)", ok, c)
		}
	})
	if m.Mem().Peek(a) != 4 {
		t.Fatal("committed ctx store missing")
	}
}

func TestTxnExecITLB(t *testing.T) {
	m := newMachine()
	code := m.Mem().Alloc(sim.PageWords, sim.PageWords)
	page := sim.PageOf(code)
	m.Run(func(s *sim.Strand) {
		m.Mem().Remap(code, sim.PageWords)
		s.CAS(code, 0, 0)
		if ok, c := Try(s, func(tx Txn) { tx.Exec(page) }); ok || c != cps.PREC {
			t.Fatalf("cold ITLB exec = (%v,%v), want (false,PREC)", ok, c)
		}
		s.Exec(page)
		if ok, c := Try(s, func(tx Txn) { tx.Exec(page) }); !ok {
			t.Fatalf("warm ITLB exec failed: %v", c)
		}
	})
}

func TestStackWriteAndAdvanceInsideTxn(t *testing.T) {
	m := newMachine()
	m.Run(func(s *sim.Strand) {
		ok, _ := Try(s, func(tx Txn) {
			tx.StackWrite()
			tx.Advance(25)
		})
		if !ok {
			t.Fatal("stack write / advance aborted the transaction")
		}
	})
}
