// Package rock exposes the simulated Rock processor's best-effort hardware
// transactional memory at the level software sees it: a chkpt instruction
// that begins speculative execution and names a fail address, a commit
// instruction that ends it, and the CPS register that explains failures.
//
// The Go rendering of the fail-address control flow is Try: the body runs
// speculatively, any failing transactional instruction unwinds it (via a
// private panic, matching the hardware discarding all effects), and Try
// returns the CPS contents. Software retry policy — the subject of much of
// the paper — lives above this layer, in internal/policy and the TM
// systems that drive it (see docs/ABORT-PLAYBOOK.md).
package rock

import (
	"rocktm/internal/core"
	"rocktm/internal/cps"
	"rocktm/internal/sim"
)

// txFailed is the private unwind token for a transaction abort.
type txFailed struct{}

// Txn is the handle the transaction body uses for transactional
// instructions. Its methods never return on failure: they unwind to the
// enclosing Try, exactly as control resumes at the chkpt fail address on
// the hardware.
//
// Txn is a one-word value (the strand pointer) passed by value: taking its
// address inside Try used to escape one Txn to the heap per hardware
// attempt, which dominated the allocation profile of the retry loops.
type Txn struct {
	s *sim.Strand
}

// On builds the attempt handle for strand s. It exists so callers that
// cache per-strand hardware contexts (sky.System.HWCtx) can construct the
// value once instead of threading it out of Try.
func On(s *sim.Strand) Txn { return Txn{s: s} }

// Strand returns the underlying strand (for cost accounting helpers).
func (t Txn) Strand() *sim.Strand { return t.s }

// yieldOrFail converts a failed transactional instruction into the right
// unwind token: core.YieldSignal when the instruction was merely
// interrupted by a pending yield under the continuation driver (it never
// executed; the re-run body re-issues it), txFailed for a real abort.
// Under the coroutine driver YieldPending is always false. Journaled
// contexts (StepCtx) never reach this on a yield — they bail their OpLog
// instead, avoiding the panic; this is the backstop for Txn methods
// invoked outside a journaling context.
func (t Txn) yieldOrFail() {
	if t.s.YieldPending() {
		panic(core.YieldSignal{})
	}
	panic(txFailed{})
}

// bailOrFail handles a failed transactional instruction under a journaling
// context: a pending yield bails the log (the body continues poisoned and
// the attempt machine yields at its boundary — no panic), a real abort
// unwinds with txFailed exactly as on the coroutine path.
func (t Txn) bailOrFail(l *core.OpLog) {
	if t.s.YieldPending() {
		l.Bail()
		return
	}
	panic(txFailed{})
}

// Load performs a transactional load.
func (t Txn) Load(a sim.Addr) sim.Word {
	w, ok := t.s.TxLoad(a)
	if !ok {
		t.yieldOrFail()
	}
	return w
}

// Store performs a transactional store (gated until commit).
func (t Txn) Store(a sim.Addr, w sim.Word) {
	if !t.s.TxStore(a, w) {
		t.yieldOrFail()
	}
}

// Branch models a conditional branch at stable site pc. dependsOnLoad marks
// predicates computed from the immediately preceding load (tree walks, list
// traversals), which on Rock can execute before the load resolves and abort
// with UCTI.
func (t Txn) Branch(pc uint32, taken bool, dependsOnLoad bool) {
	if !t.s.TxBranch(pc, taken, dependsOnLoad) {
		t.yieldOrFail()
	}
}

// Abort executes the conventional always-taken trap
// (ta %xcc, %g0 + 15), explicitly aborting with CPS=TCC.
func (t Txn) Abort() {
	t.s.TxAbortTrap()
	t.yieldOrFail()
}

// Call models a function call (register-window save/restore), which aborts
// Rock transactions with CPS=INST.
func (t Txn) Call() {
	t.s.TxSaveRestore()
	t.yieldOrFail()
}

// Div models a divide instruction (unsupported; CPS=FP).
func (t Txn) Div() {
	t.s.TxDiv()
	t.yieldOrFail()
}

// Trap models a conditional trap; if taken the transaction aborts (TCC).
func (t Txn) Trap(taken bool) {
	if !t.s.TxTrap(taken) {
		t.yieldOrFail()
	}
}

// Exec models executing code from the given page (ITLB misses abort).
func (t Txn) Exec(codePage int32) {
	if !t.s.TxExec(codePage) {
		t.yieldOrFail()
	}
}

// StackWrite models a store to the stack (profiled, not store-queued).
func (t Txn) StackWrite() {
	t.s.TxStackWrite()
	if t.s.YieldPending() {
		panic(core.YieldSignal{})
	}
}

// Advance charges pure compute cycles inside the transaction.
func (t Txn) Advance(n int64) {
	t.s.Advance(n)
	if t.s.YieldPending() {
		panic(core.YieldSignal{})
	}
}

// Try executes body as one hardware transaction attempt on strand s.
// It returns (true, 0) if the transaction committed, and (false, cps) with
// the CPS register contents if it aborted for any reason.
func Try(s *sim.Strand, body func(Txn)) (committed bool, status cps.Bits) {
	s.TxBegin()
	if runBody(Txn{s: s}, body) {
		return false, s.CPS()
	}
	if !s.TxCommit() {
		return false, s.CPS()
	}
	return true, 0
}

// runBody executes one attempt body, converting the txFailed unwind panic
// into a boolean. It is a top-level function with a named return so the
// single open-coded defer and its closure stay off the heap (the previous
// inline func literal allocated a closure pair per attempt).
func runBody(t Txn, body func(Txn)) (failed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(txFailed); !ok {
				panic(r)
			}
			failed = true
		}
	}()
	body(t)
	return false
}

// WarmTLB performs the paper's TLB-warmup idiom on every page overlapping
// [a, a+words): a "dummy" compare-and-swap that attempts to change a word
// from zero to zero. This establishes the TLB mapping and write permission
// without modifying data, after which transactional stores to the page can
// succeed.
func WarmTLB(s *sim.Strand, a sim.Addr, words int) {
	if words <= 0 {
		return
	}
	last := a + sim.Addr(words-1)
	for p := sim.PageOf(a); p <= sim.PageOf(last); p++ {
		probe := sim.Addr(p) << sim.PageShift
		if probe < a {
			probe = a
		}
		s.CAS(probe, 0, 0)
	}
}
