package rock

import (
	"rocktm/internal/core"
	"rocktm/internal/sim"
)

// Ctx adapts a hardware transaction to the core.Ctx access interface, so
// data-structure code written once runs unchanged inside HTM. It is
// pointer-shaped (a single strand pointer under the Txn wrapper), so
// converting it to core.Ctx stores the pointer directly in the interface —
// no per-conversion heap allocation.
type Ctx struct {
	T Txn
}

var _ core.Ctx = Ctx{}

// Load implements core.Ctx.
func (c Ctx) Load(a sim.Addr) sim.Word { return c.T.Load(a) }

// Store implements core.Ctx.
func (c Ctx) Store(a sim.Addr, w sim.Word) { c.T.Store(a, w) }

// Branch implements core.Ctx.
func (c Ctx) Branch(pc uint32, taken bool, dependsOnLoad bool) {
	c.T.Branch(pc, taken, dependsOnLoad)
}

// Div implements core.Ctx: a divide instruction aborts Rock transactions
// with CPS=FP.
func (c Ctx) Div() { c.T.Div() }

// Call implements core.Ctx: a function call's save/restore aborts with
// CPS=INST.
func (c Ctx) Call() { c.T.Call() }

// Strand implements core.Ctx.
func (c Ctx) Strand() *sim.Strand { return c.T.Strand() }
