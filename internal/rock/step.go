// Continuation-machine execution of hardware transaction attempts
// (sim.RunStepped). StepCtx journals a body's transactional operations so a
// yield-interrupted body can re-run against its core.OpLog; StepTry is Try
// with every yield point (checkpoint, guard probe, body operation, commit)
// surfaced as a continuation state instead of a deep-stack coroutine yield.
package rock

import (
	"rocktm/internal/core"
	"rocktm/internal/cps"
	"rocktm/internal/sim"
)

// StepCtx is Ctx with its operations journaled for body re-runs under the
// continuation driver. Live operations perform the transactional
// instruction and are recorded; during replay they are served from the log
// without touching the simulator. A pending yield bails the log — the
// interrupted and all subsequent operations return zero, the body runs to
// its (poison-terminating) end, and the attempt machine yields — while a
// real abort still unwinds with the txFailed panic, exactly as on the
// coroutine path.
type StepCtx struct {
	T   Txn
	Log *core.OpLog
}

var _ core.Ctx = StepCtx{}

// Load implements core.Ctx.
func (c StepCtx) Load(a sim.Addr) sim.Word {
	l := c.Log
	if l.Bailed() {
		return 0
	}
	if l.Replaying() {
		w, _ := l.Next()
		return w
	}
	w, ok := c.T.s.TxLoad(a)
	if !ok {
		c.T.bailOrFail(l)
		return 0
	}
	l.Record(w, false)
	return w
}

// Store implements core.Ctx.
func (c StepCtx) Store(a sim.Addr, w sim.Word) {
	l := c.Log
	if l.Bailed() {
		return
	}
	if l.Replaying() {
		l.Next()
		return
	}
	if !c.T.s.TxStore(a, w) {
		c.T.bailOrFail(l)
		return
	}
	l.Record(0, false)
}

// Branch implements core.Ctx.
func (c StepCtx) Branch(pc uint32, taken bool, dependsOnLoad bool) {
	l := c.Log
	if l.Bailed() {
		return
	}
	if l.Replaying() {
		l.Next()
		return
	}
	if !c.T.s.TxBranch(pc, taken, dependsOnLoad) {
		c.T.bailOrFail(l)
		return
	}
	l.Record(0, false)
}

// Abort executes the conventional always-taken abort trap under the
// journaling context (the lock-elision/hybrid conflict idiom). It returns
// normally only when the trap was interrupted by a pending yield (the log
// bailed) or the log is already bailed; otherwise it unwinds txFailed.
func (c StepCtx) Abort() {
	if c.Log.Bailed() {
		return
	}
	c.T.s.TxAbortTrap()
	c.T.bailOrFail(c.Log)
}

// Div implements core.Ctx. Div never completes (divide aborts on Rock), so
// nothing is journaled; it returns normally only on a yield bail.
func (c StepCtx) Div() {
	if c.Log.Bailed() {
		return
	}
	c.T.s.TxDiv()
	c.T.bailOrFail(c.Log)
}

// Call implements core.Ctx. Call never completes (save/restore aborts), so
// nothing is journaled; it returns normally only on a yield bail.
func (c StepCtx) Call() {
	if c.Log.Bailed() {
		return
	}
	c.T.s.TxSaveRestore()
	c.T.bailOrFail(c.Log)
}

// Strand implements core.Ctx.
func (c StepCtx) Strand() *sim.Strand { return c.T.Strand() }

// runStepBody executes one journaled run of an atomic-block body,
// converting the txFailed unwind into a flag: failed means the hardware
// transaction aborted. Yield interruptions do not unwind — they bail the
// body's OpLog and the body returns normally (the caller checks Bailed) —
// but the recover keeps core.YieldSignal working as a backstop for Txn
// methods invoked outside the journaling context.
func runStepBody(run func()) (failed, yielded bool) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case txFailed:
			failed = true
		case core.YieldSignal:
			yielded = true
		default:
			panic(r)
		}
	}()
	run()
	return
}

// Attempt phases of a StepTry.
const (
	tryBegin uint8 = iota
	tryGuard
	tryGuardAbort
	tryBody
	tryCommit
)

// StepTry is one hardware transaction attempt as a continuation machine —
// the resumable equivalent of Try. The optional guard probe reproduces the
// lock-elision/PhTM idiom of reading a sentinel word first and explicitly
// aborting when it is nonzero, and the CPS register is read exactly once
// per failed attempt, after the failure, matching Try's semantics.
type StepTry struct {
	s     *sim.Strand
	run   func() // body under a journaling ctx; unwinds YieldSignal/txFailed
	log   *core.OpLog
	guard sim.Addr
	probe bool
	phase uint8
}

// Init binds the machine to its strand, journal and body runner. A block
// calls Init once and re-arms the same machine for every attempt.
func (t *StepTry) Init(s *sim.Strand, log *core.OpLog, run func()) {
	t.s, t.log, t.run = s, log, run
}

// Arm prepares one hardware attempt. When probe is set, the attempt loads
// guard right after the checkpoint and explicitly aborts if it is nonzero.
func (t *StepTry) Arm(guard sim.Addr, probe bool) {
	t.guard, t.probe = guard, probe
	t.phase = tryBegin
}

// Step advances the attempt. done=false means the strand must yield (the
// driver re-invokes Step after the next grant). Once done, committed and
// status mirror Try's results; status is meaningful only on failure.
func (t *StepTry) Step() (done, committed bool, status cps.Bits) {
	s := t.s
	for {
		switch t.phase {
		case tryBegin:
			s.TxBegin()
			if s.YieldPending() {
				return false, false, 0
			}
			t.log.Reset()
			if t.probe {
				t.phase = tryGuard
			} else {
				t.phase = tryBody
			}
		case tryGuard:
			w, ok := s.TxLoad(t.guard)
			if s.YieldPending() {
				return false, false, 0
			}
			if !ok {
				return true, false, s.CPS()
			}
			if w != 0 {
				t.phase = tryGuardAbort
			} else {
				t.phase = tryBody
			}
		case tryGuardAbort:
			s.TxAbortTrap()
			if s.YieldPending() {
				return false, false, 0
			}
			return true, false, s.CPS()
		case tryBody:
			t.log.Rewind()
			failed, yielded := runStepBody(t.run)
			if yielded || t.log.Bailed() {
				return false, false, 0
			}
			if failed {
				return true, false, s.CPS()
			}
			t.phase = tryCommit
		default: // tryCommit
			if s.TxCommit() {
				return true, true, 0
			}
			if s.YieldPending() {
				return false, false, 0
			}
			return true, false, s.CPS()
		}
	}
}
