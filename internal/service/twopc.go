package service

import (
	"rocktm/internal/core"
	"rocktm/internal/sim"
)

// Two-phase commit over single-shard TM transactions. The coordinator
// (the first op's shard) drives each participant through a *prepare* TM
// transaction — validate the keys, check/claim per-key lock-owner words,
// stage the operation — and then through a *commit* (apply staged ops,
// release owners) or *abort* (release owners, staged words become inert)
// TM transaction. Atomicity inside each shard comes from the shard's own
// TM system; atomicity across shards comes from the owner words: a key
// claimed by transaction T blocks any other transaction's prepare until
// T commits or aborts, and a single-shard op that races a prepared key
// simply sees the pre-transaction table state (staged ops are invisible
// until the commit transaction applies them).
//
// Failure model: the coordinator can crash after any prefix of prepares
// (CoordFailPct in Config; failAfter in RunTxn). Recovery is
// presumed-abort — with no commit decision recorded, every prepared
// participant is driven through the abort transaction, which restores
// exactly the pre-transaction state. Duplicate prepare delivery is
// idempotent: a participant that sees its own txid as owner re-stages
// and acks again.

// Branch sites of the 2PC bodies.
var (
	pcPrepOwner  = core.PC("service.prepare.owner")
	pcAbortOwner = core.PC("service.abort.owner")
)

// participant is one shard's share of a cross-shard transaction.
type participant struct {
	sh  *Shard
	ops []Op
}

// participants groups ops by shard in first-touch order. A transaction
// touching the same shard twice collapses to one participant with both
// ops — one prepare, one commit — not two independent legs.
func (f *Fleet) participants(ops []Op) []participant {
	var parts []participant
	for _, op := range ops {
		id := f.router.Shard(op.Key)
		merged := false
		for i := range parts {
			if parts[i].sh.id == id {
				parts[i].ops = append(parts[i].ops, op)
				merged = true
				break
			}
		}
		if !merged {
			parts = append(parts, participant{sh: f.shards[id], ops: []Op{op}})
		}
	}
	return parts
}

// TxnOutcome is one cross-shard transaction's result.
type TxnOutcome struct {
	// Committed is whether the transaction took effect; an aborted
	// transaction left every shard at its pre-transaction state.
	Committed bool
	// Completed is the fleet cycle the coordinator observed the final ack.
	Completed int64
}

// phase runs body on strand 0 of sh's machine, starting no earlier than
// fleet cycle earliest and no earlier than the shard being free, and
// returns the fleet cycle at which the phase completes. Shard CPU time
// advances by exactly the cycles the body consumed.
func (f *Fleet) phase(sh *Shard, earliest int64, body func(st *sim.Strand)) int64 {
	start := earliest
	if sh.busyUntil > start {
		start = sh.busyUntil
	}
	var dur int64
	sh.m.Run(func(st *sim.Strand) {
		if st.ID() != 0 {
			return
		}
		t0 := st.Clock()
		body(st)
		dur = st.Clock() - t0
	})
	sh.busyUntil = start + dur
	return sh.busyUntil
}

// PrepareShard runs the prepare transaction for txid's ops on shard i,
// dispatched at fleet cycle at: inside one TM transaction it checks every
// key's owner word (free, or already txid — duplicate delivery is
// idempotent), performs a validation read of each key, then claims the
// owners and stages op kind and value in simulated memory. It reports
// whether the participant voted yes and the fleet cycle of the ack.
func (f *Fleet) PrepareShard(i int, at int64, txid uint64, ops []Op) (bool, int64) {
	sh := f.shards[i]
	voted := false
	done := f.phase(sh, at, func(st *sim.Strand) {
		sh.sys.Atomic(st, func(c core.Ctx) {
			ok := true
			for _, op := range ops {
				owner := c.Load(sh.lockOwner + sim.Addr(op.Key))
				c.Branch(pcPrepOwner, owner != 0, true)
				if owner != 0 && uint64(owner) != txid {
					ok = false
					break
				}
			}
			if ok {
				for _, op := range ops {
					sh.tab.Lookup(c, op.Key) // validation read
					c.Store(sh.lockOwner+sim.Addr(op.Key), sim.Word(txid))
					c.Store(sh.stagedOp+sim.Addr(op.Key), sim.Word(op.Kind)+1)
					c.Store(sh.stagedVal+sim.Addr(op.Key), op.Val)
				}
			}
			// Host flag is written unconditionally at the end of the body, so
			// an aborted-and-retried attempt cannot leave a stale vote.
			voted = ok
		})
	})
	return voted, done
}

// CommitShard runs the commit transaction for txid's ops on shard i:
// apply every staged op to the table and release the owner and staged
// words, all in one TM transaction. Insert nodes are preallocated before
// the atomic block (the Session pattern), and losers are returned to the
// pool after it.
func (f *Fleet) CommitShard(i int, at int64, txid uint64, ops []Op) int64 {
	sh := f.shards[i]
	return f.phase(sh, at, func(st *sim.Strand) {
		nodes := make([]sim.Addr, len(ops))
		for j, op := range ops {
			if op.Kind == Insert {
				nodes[j] = sh.tab.AllocNode(st, op.Key, op.Val)
			}
		}
		inserted := make([]bool, len(ops))
		removed := make([]sim.Addr, len(ops))
		sh.sys.Atomic(st, func(c core.Ctx) {
			// Reset host-side results first: the body may retry.
			for j := range ops {
				inserted[j] = false
				removed[j] = 0
			}
			for j, op := range ops {
				switch op.Kind {
				case Lookup:
					sh.tab.Lookup(c, op.Key)
				case Insert:
					inserted[j] = sh.tab.InsertNode(c, op.Key, nodes[j])
				default:
					removed[j] = sh.tab.DeleteNode(c, op.Key)
				}
				c.Store(sh.lockOwner+sim.Addr(op.Key), 0)
				c.Store(sh.stagedOp+sim.Addr(op.Key), 0)
				c.Store(sh.stagedVal+sim.Addr(op.Key), 0)
			}
		})
		for j, op := range ops {
			if op.Kind == Insert && !inserted[j] {
				sh.tab.FreeNode(st, nodes[j])
			}
			if removed[j] != 0 {
				sh.tab.FreeNode(st, removed[j])
			}
		}
	})
}

// AbortShard runs the abort transaction for txid's ops on shard i:
// release every owner word still held by txid. Staged op/value words are
// left behind as inert garbage — semantic shard state is the table plus
// the owner words, and both are exactly their pre-transaction values
// after an abort.
func (f *Fleet) AbortShard(i int, at int64, txid uint64, ops []Op) int64 {
	sh := f.shards[i]
	return f.phase(sh, at, func(st *sim.Strand) {
		sh.sys.Atomic(st, func(c core.Ctx) {
			for _, op := range ops {
				a := sh.lockOwner + sim.Addr(op.Key)
				owner := c.Load(a)
				c.Branch(pcAbortOwner, uint64(owner) == txid, true)
				if uint64(owner) == txid {
					c.Store(a, 0)
				}
			}
		})
	})
}

// crashRecoveryRPCs is the extra round trips a crashed coordinator's
// recovery costs before the presumed-abort pass starts.
const crashRecoveryRPCs = 4

// RunTxn executes one cross-shard transaction whose coordinator is
// dispatched at fleet cycle at. failAfter < 0 is the normal path;
// failAfter = k injects a coordinator crash after k successful prepares
// (k past the participant count crashes after all prepares — still an
// abort, because no commit decision was recorded). Every phase costs one
// RPC each way; phases run sequentially in participant order, so the
// transaction's latency scales with its shard span.
func (f *Fleet) RunTxn(at int64, ops []Op, failAfter int) TxnOutcome {
	txid := f.nextTxn
	f.nextTxn++
	parts := f.participants(ops)
	crash := failAfter >= 0
	limit := len(parts)
	if crash && failAfter < limit {
		limit = failAfter
	}
	tc := at
	prepared := 0
	allYes := true
	for i := 0; i < limit; i++ {
		p := parts[i]
		ok, done := f.PrepareShard(p.sh.id, tc+f.cfg.RPCCycles, txid, p.ops)
		tc = done + f.cfg.RPCCycles
		prepared = i + 1
		if !ok {
			allYes = false
			break
		}
	}
	commit := allYes && !crash && prepared == len(parts)
	if crash {
		tc += crashRecoveryRPCs * f.cfg.RPCCycles
	}
	for i := 0; i < prepared; i++ {
		p := parts[i]
		var done int64
		if commit {
			done = f.CommitShard(p.sh.id, tc+f.cfg.RPCCycles, txid, p.ops)
		} else {
			done = f.AbortShard(p.sh.id, tc+f.cfg.RPCCycles, txid, p.ops)
		}
		tc = done + f.cfg.RPCCycles
	}
	if commit {
		f.committed2PC++
	} else {
		f.aborted2PC++
	}
	return TxnOutcome{Committed: commit, Completed: tc}
}
