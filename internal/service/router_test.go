package service

import "testing"

// Every router must map every key of the keyspace into [0, n) and be a
// pure function of the key.
func TestRoutersCoverAndDeterministic(t *testing.T) {
	const n, keyRange = 4, 1024
	for _, name := range RouterNames() {
		r, err := NewRouter(name, n, keyRange)
		if err != nil {
			t.Fatalf("NewRouter(%q): %v", name, err)
		}
		if r.Shards() != n {
			t.Fatalf("%s: Shards() = %d, want %d", name, r.Shards(), n)
		}
		counts := make([]int, n)
		for k := uint64(0); k < keyRange; k++ {
			s := r.Shard(k)
			if s < 0 || s >= n {
				t.Fatalf("%s: Shard(%d) = %d out of range", name, k, s)
			}
			if again := r.Shard(k); again != s {
				t.Fatalf("%s: Shard(%d) not deterministic: %d then %d", name, k, s, again)
			}
			counts[s]++
		}
		for s, c := range counts {
			if c == 0 {
				t.Errorf("%s: shard %d owns no keys", name, s)
			}
		}
	}
}

// The range router must assign contiguous slices: shard indices are
// non-decreasing in key order.
func TestRangeMapContiguous(t *testing.T) {
	r := NewRangeMap(4, 1000)
	prev := 0
	for k := uint64(0); k < 1000; k++ {
		s := r.Shard(k)
		if s < prev {
			t.Fatalf("range shard decreased at key %d: %d -> %d", k, prev, s)
		}
		prev = s
	}
	if prev != 3 {
		t.Fatalf("last key landed on shard %d, want 3", prev)
	}
}

// The hot-aware router must spread the hottest keys (the lowest key
// values under the zipfian generator) across ALL shards, while the plain
// hash may concentrate them anywhere.
func TestHotAwareSpreadsHotKeys(t *testing.T) {
	const n = 4
	r := NewHotAwareMap(n, 4*n)
	seen := map[int]bool{}
	for k := uint64(0); k < uint64(n); k++ {
		seen[r.Shard(k)] = true
	}
	if len(seen) != n {
		t.Fatalf("first %d hot keys landed on %d shards, want all %d", n, len(seen), n)
	}
	// Cold keys route identically to the plain hash.
	h := NewHashMap(n)
	for k := uint64(4 * n); k < 4*n+100; k++ {
		if r.Shard(k) != h.Shard(k) {
			t.Fatalf("cold key %d: hot-aware %d != hash %d", k, r.Shard(k), h.Shard(k))
		}
	}
}

// Router names are canonical (they enter runner cache keys) and unknown
// names are rejected.
func TestRouterNames(t *testing.T) {
	want := map[string]string{"hash": "hash", "range": "range", "hot": "hot:8"}
	for _, fam := range RouterNames() {
		r, err := NewRouter(fam, 2, 64)
		if err != nil {
			t.Fatalf("NewRouter(%q): %v", fam, err)
		}
		if r.Name() != want[fam] {
			t.Errorf("router %q Name() = %q, want %q", fam, r.Name(), want[fam])
		}
	}
	if _, err := NewRouter("nope", 2, 64); err == nil {
		t.Fatal("unknown router accepted")
	}
}
