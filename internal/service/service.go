// Package service is the sharded transactional service tier: N
// independent simulated Rock machines (each running its own TM system —
// PhTM, TLE, STM or plain locking — over its own key-value store),
// fronted by a deterministic request router with pluggable shard maps,
// per-shard request batching with a batch-size/deadline tradeoff, and
// cross-shard multi-key transactions via a two-phase-commit coordinator
// layered on single-shard TM transactions. It is ROADMAP item 1: the
// layer that turns "which TM system wins on one 16-strand machine" (E23)
// into "which TM system wins as a fleet" (E25).
//
// Time model. Each shard machine keeps its own virtual clock ("shard CPU
// time", advanced only while the machine executes a batch or a 2PC
// phase); the fleet keeps a separate fleet clock in the same cycle units,
// driven by the open-loop arrival process of internal/workload. A batch
// that closes at fleet time t starts executing at max(t, shard.busyUntil)
// and occupies the shard for exactly the machine cycles the batch
// consumed, so queueing delay — the gap between a request's arrival and
// its shard getting to it — is first-class and lands in the measured
// latency, which is what exposes hot-shard collapse. The whole tier is a
// single-goroutine discrete-event loop over seeded streams: a fleet run
// is a pure function of (Config, LoadSpec), which is what lets fleet
// cells ride the runner's content-addressed cache byte-identically.
//
// See docs/SERVICE.md for the layer map, the shard-map reference and a
// worked hot-shard example.
package service

import (
	"fmt"

	"rocktm/internal/core"
	"rocktm/internal/hashtable"
	"rocktm/internal/obs"
	"rocktm/internal/obs/timeseries"
	"rocktm/internal/sim"
	"rocktm/internal/workload"
)

// OpKind is one key-value operation class.
type OpKind uint8

const (
	// Lookup reads a key.
	Lookup OpKind = iota
	// Insert adds key→val (no-op if present).
	Insert
	// Delete removes a key (no-op if absent).
	Delete
)

// Op is one operation of a request. A request with a single op is a
// plain single-shard operation; a request with several ops is a
// multi-key transaction executed atomically across every shard its keys
// route to (via 2PC when more than one leg lands on a shard).
type Op struct {
	Kind OpKind
	Key  uint64
	Val  sim.Word
}

// BatchConfig is the per-shard batching policy: a shard's pending queue
// flushes when it holds MaxSize requests or when the oldest pending
// request has waited MaxDelay cycles — the classic batching tradeoff
// (bigger batches amortize dispatch, the deadline bounds added latency).
type BatchConfig struct {
	MaxSize  int
	MaxDelay int64
}

// SystemBuilder constructs a shard's TM system over its machine.
type SystemBuilder func(m *sim.Machine) core.System

// Config describes a fleet.
type Config struct {
	// Shards is the number of independent simulated machines.
	Shards int
	// Strands is the hardware strand count of each shard machine; batch
	// items spread round-robin across them.
	Strands int
	// KeyRange is the global keyspace [0, KeyRange); the router partitions
	// it across shards.
	KeyRange int
	// Buckets is each shard's hash-table bucket count (power of two).
	Buckets int
	// MemWords sizes each shard machine's memory.
	MemWords int
	// Seed derives every shard machine's seed (folded with the shard ID).
	Seed uint64
	// System builds each shard's TM system.
	System SystemBuilder
	// Router is the shard map; nil defaults to NewHashMap(Shards).
	Router ShardMap
	// Batch is the per-shard batching policy; zero values default to
	// MaxSize 8, MaxDelay 4096 cycles.
	Batch BatchConfig
	// RPCCycles is the one-way coordinator↔participant message cost
	// charged around every 2PC phase; 0 defaults to 500.
	RPCCycles int64
	// CoordFailPct is the percentage of cross-shard transactions whose
	// coordinator crashes after a partial prepare (driving the abort
	// path); rolls come from the load source's dedicated stream.
	CoordFailPct int
	// Faults is the per-shard-machine fault plan (sim.FaultPlan), applied
	// identically to every shard machine.
	Faults sim.FaultPlan
	// Window is the per-shard timeseries window width in cycles (<=0
	// selects timeseries.DefaultWidth).
	Window int64
}

// withDefaults fills the zero-value knobs.
func (cfg Config) withDefaults() Config {
	if cfg.Strands == 0 {
		cfg.Strands = 4
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 1 << 10
	}
	if cfg.MemWords == 0 {
		cfg.MemWords = 1 << 21
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Batch.MaxSize == 0 {
		cfg.Batch.MaxSize = 8
	}
	if cfg.Batch.MaxDelay == 0 {
		cfg.Batch.MaxDelay = 4096
	}
	if cfg.RPCCycles == 0 {
		cfg.RPCCycles = 500
	}
	return cfg
}

// MachineConfig is the exact sim.Config fleet shard id runs under — the
// bench layer digests it into the runner cache key, so it must stay in
// lockstep with what New instantiates.
func MachineConfig(cfg Config, shard int) sim.Config {
	cfg = cfg.withDefaults()
	mc := sim.DefaultConfig(cfg.Strands)
	mc.MemWords = cfg.MemWords
	mc.Seed = cfg.Seed*0x9e3779b9 + uint64(shard)*0x85ebca77 + 1
	mc.MaxCycles = 1 << 46
	mc.Faults = cfg.Faults
	return mc
}

// pending is one queued request with its arrival time.
type pending struct {
	req     *Request
	arrival int64
}

// Shard is one machine of the fleet plus its service-tier state.
type Shard struct {
	id  int
	m   *sim.Machine
	sys core.System
	tab *hashtable.Table
	ses []*hashtable.Session

	// 2PC per-key state in simulated memory: lock owner (txid or 0),
	// staged value and staged op, each KeyRange words.
	lockOwner, stagedVal, stagedOp sim.Addr

	// busyUntil is the fleet cycle at which the shard machine is free.
	busyUntil int64

	lat *obs.LatencyRecorder
	rec *timeseries.Recorder
	ops uint64

	queue   []pending
	closeAt int64
}

// Request is one unit of offered load.
type Request struct {
	id      uint64
	arrival int64
	ops     []Op
}

// Fleet is a running sharded service.
type Fleet struct {
	cfg    Config
	router ShardMap
	shards []*Shard

	lat          *obs.LatencyRecorder
	nextTxn      uint64
	committed2PC uint64
	aborted2PC   uint64
	lastComplete int64
}

// New builds the fleet: Shards machines, each with its own TM system,
// store, 2PC tables and telemetry, prepopulated with every second key of
// the keyspace (each key on the shard the router assigns it).
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("service: Shards must be positive, got %d", cfg.Shards)
	}
	if cfg.KeyRange <= 0 {
		return nil, fmt.Errorf("service: KeyRange must be positive, got %d", cfg.KeyRange)
	}
	if cfg.System == nil {
		return nil, fmt.Errorf("service: Config.System is required")
	}
	router := cfg.Router
	if router == nil {
		router = NewHashMap(cfg.Shards)
	}
	if router.Shards() != cfg.Shards {
		return nil, fmt.Errorf("service: router routes over %d shards, fleet has %d", router.Shards(), cfg.Shards)
	}
	f := &Fleet{cfg: cfg, router: router, lat: obs.NewLatencyRecorder(), nextTxn: 1}
	for i := 0; i < cfg.Shards; i++ {
		m := sim.New(MachineConfig(cfg, i))
		sh := &Shard{
			id:  i,
			m:   m,
			sys: cfg.System(m),
			lat: obs.NewLatencyRecorder(),
			rec: timeseries.NewRecorder(cfg.Window),
		}
		sh.rec.SetFreqGHz(m.Config().Costs.FreqGHz)
		m.AttachEventSink(sh.rec)
		// Capacity: every key can be resident, plus in-flight churn headroom.
		sh.tab = hashtable.New(m, cfg.Buckets, cfg.KeyRange+2*cfg.Strands+64)
		sh.lockOwner = m.Mem().Alloc(cfg.KeyRange, sim.WordsPerLine)
		sh.stagedVal = m.Mem().Alloc(cfg.KeyRange, sim.WordsPerLine)
		sh.stagedOp = m.Mem().Alloc(cfg.KeyRange, sim.WordsPerLine)
		sh.ses = make([]*hashtable.Session, cfg.Strands)
		for s := 0; s < cfg.Strands; s++ {
			sh.ses[s] = sh.tab.NewSession(sh.sys, m.Strand(s))
		}
		f.shards = append(f.shards, sh)
	}
	// The paper's standard half-full prepopulation, split by the router so
	// every shard owns exactly its keys.
	for _, key := range workload.PrepopHalf(cfg.KeyRange) {
		sh := f.shards[router.Shard(key)]
		sh.tab.Prepopulate(sh.m.Mem(), []uint64{key}, 1)
	}
	return f, nil
}

// Shards returns the fleet's shard count.
func (f *Fleet) Shards() int { return len(f.shards) }

// Recycle donates every shard machine's simulated-memory backing to the
// process-wide pool (see sim.Machine.Recycle). Call only after the fleet's
// last use; the shards' simulated memory must not be touched afterwards.
func (f *Fleet) Recycle() {
	for _, sh := range f.shards {
		sh.m.Recycle()
	}
}

// Router returns the fleet's shard map.
func (f *Fleet) Router() ShardMap { return f.router }

// LoadSpec describes the offered load: an open-loop fleet-level arrival
// process over a key distribution and op mix, with a cross-shard
// transaction fraction.
type LoadSpec struct {
	// Requests is the total request count.
	Requests int
	// PctLookup is the lookup percentage; the rest split insert/delete
	// (workload.KVMix semantics).
	PctLookup int
	// Keys is the key distribution over the fleet keyspace.
	Keys workload.Keys
	// Arrival is the fleet-level arrival process (open-loop; a closed-loop
	// zero value makes every request arrive back to back).
	Arrival workload.Arrival
	// CrossPct is the percentage of requests that become two-key
	// multi-shard transactions; the second key draws from the source's
	// dedicated secondary stream, so changing CrossPct never perturbs the
	// primary op/key stream.
	CrossPct int
	// Seed seeds the load source.
	Seed uint64
}

// spec compiles the load into the workload layer's declarative form.
func (l LoadSpec) spec() (workload.Spec, error) {
	sp := workload.KVSpec(l.Keys, l.PctLookup)
	sp.Arrival = l.Arrival
	if err := sp.Validate(); err != nil {
		return sp, err
	}
	if l.Requests <= 0 {
		return sp, fmt.Errorf("service: LoadSpec.Requests must be positive, got %d", l.Requests)
	}
	if l.CrossPct < 0 || l.CrossPct > 100 {
		return sp, fmt.Errorf("service: LoadSpec.CrossPct must be in [0,100], got %d", l.CrossPct)
	}
	return sp, nil
}

// ShardSummary is one shard's end-of-run digest.
type ShardSummary struct {
	Ops uint64             `json:"ops"`
	Lat obs.LatencySummary `json:"latency"`
	// MachineCycles is how far the shard machine's clock advanced — shard
	// CPU time, the utilization numerator.
	MachineCycles int64 `json:"machine_cycles"`
}

// Result is one fleet run's outcome.
type Result struct {
	// Requests is the completed request count (every request completes).
	Requests uint64 `json:"requests"`
	// ElapsedCycles is the fleet cycle of the last completion.
	ElapsedCycles int64 `json:"elapsed_cycles"`
	// Seconds is ElapsedCycles in simulated seconds.
	Seconds float64 `json:"seconds"`
	// Lat is the fleet-wide request-latency digest (queueing included).
	Lat obs.LatencySummary `json:"latency"`
	// Committed2PC and Aborted2PC count cross-shard transaction outcomes;
	// aborts are coordinator crashes or prepare conflicts, and every abort
	// leaves all participants at their pre-transaction state.
	Committed2PC uint64 `json:"committed_2pc"`
	Aborted2PC   uint64 `json:"aborted_2pc"`
	// Shards is the per-shard digest, index = shard ID.
	Shards []ShardSummary `json:"shards"`
	// Series is each shard's windowed timeseries (machine-cycle windows;
	// latencies are recorded at completion with fleet queueing included).
	Series []timeseries.Series `json:"series"`
	// Stats is the merged TM-system statistics across all shards.
	Stats *core.Stats `json:"-"`
}

// Throughput returns fleet requests per microsecond of simulated time.
func (r Result) Throughput() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Requests) / (r.Seconds * 1e6)
}

// Run offers the load to the fleet and returns the run's digest. It may
// be called once per fleet (machines accumulate state).
func (f *Fleet) Run(load LoadSpec) (Result, error) {
	sp, err := load.spec()
	if err != nil {
		return Result{}, err
	}
	compiled, err := sp.Compile()
	if err != nil {
		return Result{}, err
	}
	src := compiled.Source(load.Seed)
	for i := 0; i < load.Requests; i++ {
		at := src.NextArrival()
		opIdx, key := src.Next()
		r := &Request{id: uint64(i), arrival: at}
		kind := opKindOf(opIdx)
		r.ops = append(r.ops, Op{Kind: kind, Key: key, Val: sim.Word(i + 1)})
		if load.CrossPct > 0 && src.ExtraRoll(100) < load.CrossPct {
			r.ops = append(r.ops, Op{Kind: kind, Key: src.ExtraKey(), Val: sim.Word(i + 1)})
		}
		f.flushDue(at)
		f.enqueue(r, at, src)
	}
	f.drain(src)
	return f.result(load), nil
}

// opKindOf maps a workload.KVMix op index to the service op kind.
func opKindOf(idx int) OpKind {
	switch idx {
	case workload.OpInsert:
		return Insert
	case workload.OpDelete:
		return Delete
	}
	return Lookup
}

// enqueue routes a request to its coordinator shard's batch, flushing the
// batch immediately when it reaches MaxSize. The coordinator is the first
// op's shard; a multi-op request rides the same queue and runs its 2PC
// when the batch executes.
func (f *Fleet) enqueue(r *Request, at int64, src *workload.Source) {
	sh := f.shards[f.router.Shard(r.ops[0].Key)]
	if len(sh.queue) == 0 {
		sh.closeAt = at + f.cfg.Batch.MaxDelay
	}
	sh.queue = append(sh.queue, pending{req: r, arrival: at})
	if len(sh.queue) >= f.cfg.Batch.MaxSize {
		f.flush(sh, at, src)
	}
}

// flushDue flushes every batch whose deadline has passed by fleet time t,
// in (deadline, shard ID) order — the deterministic event order.
func (f *Fleet) flushDue(t int64) {
	for {
		var sh *Shard
		for _, s := range f.shards {
			if len(s.queue) == 0 || s.closeAt > t {
				continue
			}
			if sh == nil || s.closeAt < sh.closeAt || (s.closeAt == sh.closeAt && s.id < sh.id) {
				sh = s
			}
		}
		if sh == nil {
			return
		}
		f.flush(sh, sh.closeAt, nil)
	}
}

// drain flushes every remaining batch in (deadline, shard ID) order.
func (f *Fleet) drain(src *workload.Source) {
	for {
		var sh *Shard
		for _, s := range f.shards {
			if len(s.queue) == 0 {
				continue
			}
			if sh == nil || s.closeAt < sh.closeAt || (s.closeAt == sh.closeAt && s.id < sh.id) {
				sh = s
			}
		}
		if sh == nil {
			return
		}
		f.flush(sh, sh.closeAt, src)
	}
}

// flush executes one shard's batch. Single-shard requests run inside one
// machine.Run, spread round-robin across the shard's strands; multi-op
// requests then run their cross-shard transactions sequentially at the
// coordinator. closeTime is the fleet cycle the batch closed; execution
// starts once the shard machine is free.
func (f *Fleet) flush(sh *Shard, closeTime int64, src *workload.Source) {
	batch := sh.queue
	sh.queue = nil
	start := closeTime
	if sh.busyUntil > start {
		start = sh.busyUntil
	}
	var singles, multis []pending
	for _, p := range batch {
		if len(p.req.ops) == 1 {
			singles = append(singles, p)
		} else {
			multis = append(multis, p)
		}
	}
	if len(singles) > 0 {
		strands := f.cfg.Strands
		var dur int64
		sh.m.Run(func(st *sim.Strand) {
			t0 := st.Clock()
			ses := sh.ses[st.ID()]
			for idx := st.ID(); idx < len(singles); idx += strands {
				p := singles[idx]
				op := p.req.ops[0]
				switch op.Kind {
				case Lookup:
					ses.Lookup(op.Key)
				case Insert:
					ses.Insert(op.Key, op.Val)
				default:
					ses.Delete(op.Key)
				}
				off := st.Clock() - t0
				f.complete(sh, st.Clock(), start+off, p.arrival)
			}
			if d := st.Clock() - t0; d > dur {
				dur = d
			}
		})
		sh.busyUntil = start + dur
	} else if sh.busyUntil < start {
		sh.busyUntil = start
	}
	for _, p := range multis {
		failAfter := -1
		if src != nil && f.cfg.CoordFailPct > 0 && src.ExtraRoll(100) < f.cfg.CoordFailPct {
			failAfter = src.ExtraRoll(len(p.req.ops))
		}
		out := f.RunTxn(sh.busyUntil, p.req.ops, failAfter)
		f.complete(sh, sh.m.Strand(0).Clock(), out.Completed, p.arrival)
	}
}

// complete records one request's completion: machineCycle is the shard
// machine clock at completion (the window the latency lands in),
// fleetCycle the completion in fleet time, arrival the request's arrival.
func (f *Fleet) complete(sh *Shard, machineCycle, fleetCycle, arrival int64) {
	lat := fleetCycle - arrival
	sh.lat.Record(lat)
	f.lat.Record(lat)
	sh.rec.RecordLatencyAt(machineCycle, lat)
	sh.ops++
	if fleetCycle > f.lastComplete {
		f.lastComplete = fleetCycle
	}
}

// result assembles the run digest.
func (f *Fleet) result(load LoadSpec) Result {
	res := Result{
		Requests:      uint64(load.Requests),
		ElapsedCycles: f.lastComplete,
		Seconds:       f.shards[0].m.Seconds(f.lastComplete),
		Lat:           f.lat.Summarize(),
		Committed2PC:  f.committed2PC,
		Aborted2PC:    f.aborted2PC,
		Stats:         core.NewStats(),
	}
	for _, sh := range f.shards {
		res.Shards = append(res.Shards, ShardSummary{
			Ops:           sh.ops,
			Lat:           sh.lat.Summarize(),
			MachineCycles: sh.m.MaxClock(),
		})
		res.Series = append(res.Series, sh.rec.Series())
		res.Stats.Merge(sh.sys.Stats())
	}
	return res
}

// ShardState returns shard i's semantic store state — every resident
// key→value binding, read directly (no cycles charged). Together with
// LockOwners it is the state the 2PC abort-path property test compares.
func (f *Fleet) ShardState(i int) map[uint64]sim.Word {
	sh := f.shards[i]
	out := map[uint64]sim.Word{}
	setup := core.Setup{Mem: sh.m.Mem()}
	for k := 0; k < f.cfg.KeyRange; k++ {
		if v, ok := sh.tab.Lookup(setup, uint64(k)); ok {
			out[uint64(k)] = v
		}
	}
	return out
}

// LockOwners returns shard i's nonzero 2PC lock owners (key → txid). A
// quiescent fleet must report none.
func (f *Fleet) LockOwners(i int) map[uint64]uint64 {
	sh := f.shards[i]
	out := map[uint64]uint64{}
	for k := 0; k < f.cfg.KeyRange; k++ {
		if o := sh.m.Mem().Peek(sh.lockOwner + sim.Addr(k)); o != 0 {
			out[uint64(k)] = uint64(o)
		}
	}
	return out
}
