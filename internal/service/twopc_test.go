package service

import (
	"reflect"
	"testing"

	"rocktm/internal/core"
	"rocktm/internal/locktm"
	"rocktm/internal/phtm"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
)

// testFleet builds a small fleet for white-box 2PC tests.
func testFleet(t *testing.T, shards int, router ShardMap, faults sim.FaultPlan, sys SystemBuilder) *Fleet {
	t.Helper()
	if sys == nil {
		sys = func(m *sim.Machine) core.System { return locktm.NewOneLock(m) }
	}
	f, err := New(Config{
		Shards:   shards,
		Strands:  2,
		KeyRange: 128,
		Buckets:  1 << 7,
		MemWords: 1 << 21,
		Seed:     7,
		System:   sys,
		Router:   router,
		Faults:   faults,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

// snapshot captures the semantic state of every shard: table contents
// plus lock-owner words.
func snapshot(f *Fleet) []map[uint64]sim.Word {
	var out []map[uint64]sim.Word
	for i := 0; i < f.Shards(); i++ {
		st := f.ShardState(i)
		for k, o := range f.LockOwners(i) {
			st[k|1<<63] = sim.Word(o) // fold owners in under a disjoint keyspace
		}
		out = append(out, st)
	}
	return out
}

// crossShardOps returns ops guaranteed to span two different shards.
func crossShardOps(f *Fleet, kind OpKind) []Op {
	ops := []Op{{Kind: kind, Key: 0, Val: 99}}
	for k := uint64(1); ; k++ {
		if f.Router().Shard(k) != f.Router().Shard(0) {
			ops = append(ops, Op{Kind: kind, Key: k, Val: 99})
			return ops
		}
	}
}

// A committed cross-shard transaction applies every leg.
func TestTxnCommitAppliesAllLegs(t *testing.T) {
	f := testFleet(t, 2, nil, sim.FaultPlan{}, nil)
	ops := crossShardOps(f, Insert)
	// Make both keys absent so the inserts are observable.
	for _, op := range ops {
		f.RunTxn(0, []Op{{Kind: Delete, Key: op.Key}}, -1)
	}
	out := f.RunTxn(0, ops, -1)
	if !out.Committed {
		t.Fatal("transaction did not commit")
	}
	for _, op := range ops {
		sh := f.Router().Shard(op.Key)
		if v, ok := f.ShardState(sh)[op.Key]; !ok || v != 99 {
			t.Fatalf("key %d on shard %d: got (%d,%v), want (99,true)", op.Key, sh, v, ok)
		}
	}
	for i := 0; i < f.Shards(); i++ {
		if owners := f.LockOwners(i); len(owners) != 0 {
			t.Fatalf("shard %d holds owners after commit: %v", i, owners)
		}
	}
}

// Coordinator crash after a partial prepare must drive the abort path
// and restore the exact pre-transaction state.
func TestCoordinatorCrashAfterPartialPrepare(t *testing.T) {
	f := testFleet(t, 3, nil, sim.FaultPlan{}, nil)
	ops := crossShardOps(f, Insert)
	before := snapshot(f)
	out := f.RunTxn(0, ops, 1) // crash after the first prepare
	if out.Committed {
		t.Fatal("crashed coordinator committed")
	}
	if got := snapshot(f); !reflect.DeepEqual(got, before) {
		t.Fatal("abort did not restore pre-transaction state")
	}
	if f.aborted2PC != 1 || f.committed2PC != 0 {
		t.Fatalf("counts = %d committed / %d aborted, want 0/1", f.committed2PC, f.aborted2PC)
	}
}

// Duplicate prepare delivery is idempotent: a participant that already
// voted yes for a txid votes yes again, and a single abort releases it.
func TestDuplicatePrepareIdempotent(t *testing.T) {
	f := testFleet(t, 2, nil, sim.FaultPlan{}, nil)
	ops := []Op{{Kind: Insert, Key: 3, Val: 5}}
	sh := f.Router().Shard(3)
	const txid = 42
	ok1, done := f.PrepareShard(sh, 0, txid, ops)
	ok2, _ := f.PrepareShard(sh, done, txid, ops)
	if !ok1 || !ok2 {
		t.Fatalf("votes = %v, %v; want yes, yes", ok1, ok2)
	}
	if owners := f.LockOwners(sh); owners[3] != txid {
		t.Fatalf("owner[3] = %v, want %d", owners[3], txid)
	}
	// A different transaction must be refused while the key is claimed.
	if ok, _ := f.PrepareShard(sh, 0, txid+1, ops); ok {
		t.Fatal("conflicting prepare voted yes")
	}
	f.AbortShard(sh, 0, txid, ops)
	if owners := f.LockOwners(sh); len(owners) != 0 {
		t.Fatalf("owners after abort: %v", owners)
	}
}

// A transaction touching the same shard twice collapses to one
// participant with both ops, and still commits both.
func TestSameShardTwiceCollapses(t *testing.T) {
	f := testFleet(t, 2, nil, sim.FaultPlan{}, nil)
	r := f.Router()
	var k1, k2 uint64 = 0, 0
	for k := uint64(1); k2 == 0; k++ {
		if r.Shard(k) == r.Shard(k1) {
			k2 = k
		}
	}
	ops := []Op{{Kind: Insert, Key: k1, Val: 7}, {Kind: Insert, Key: k2, Val: 7}}
	if parts := f.participants(ops); len(parts) != 1 || len(parts[0].ops) != 2 {
		t.Fatalf("participants = %d groups, want 1 with 2 ops", len(parts))
	}
	// Clear both keys, then commit the two-leg same-shard transaction.
	f.RunTxn(0, []Op{{Kind: Delete, Key: k1}}, -1)
	f.RunTxn(0, []Op{{Kind: Delete, Key: k2}}, -1)
	out := f.RunTxn(0, ops, -1)
	if !out.Committed {
		t.Fatal("same-shard transaction did not commit")
	}
	st := f.ShardState(r.Shard(k1))
	if st[k1] != 7 || st[k2] != 7 {
		t.Fatalf("state[%d]=%d state[%d]=%d, want 7 and 7", k1, st[k1], k2, st[k2])
	}
}

// Property: after ANY aborted transaction — whatever the op mix, crash
// point, router or injected machine faults — fleet state equals the
// pre-transaction state exactly. Exercised across routers, TM systems
// (plain lock and PhTM) and an adversarial fault profile.
func TestAbortRestoresStateProperty(t *testing.T) {
	systems := map[string]SystemBuilder{
		"one-lock": func(m *sim.Machine) core.System { return locktm.NewOneLock(m) },
		"phtm":     func(m *sim.Machine) core.System { return phtm.New(m, sky.New(m), phtm.DefaultConfig()) },
	}
	for sysName, sys := range systems {
		for _, routerName := range RouterNames() {
			for _, profile := range []string{"none", "inval"} {
				router, err := NewRouter(routerName, 3, 128)
				if err != nil {
					t.Fatal(err)
				}
				f := testFleet(t, 3, router, sim.FaultProfile(profile), sys)
				rng := uint64(12345)
				next := func(n int) int {
					rng = rng*6364136223846793005 + 1442695040888963407
					return int((rng >> 33) % uint64(n))
				}
				at := int64(0)
				for trial := 0; trial < 25; trial++ {
					nops := 1 + next(3)
					var ops []Op
					for j := 0; j < nops; j++ {
						ops = append(ops, Op{
							Kind: OpKind(next(3)),
							Key:  uint64(next(128)),
							Val:  sim.Word(1000 + trial),
						})
					}
					failAfter := next(nops+2) - 1 // -1 (no crash) .. nops
					before := snapshot(f)
					out := f.RunTxn(at, ops, failAfter)
					at = out.Completed
					if !out.Committed {
						if got := snapshot(f); !reflect.DeepEqual(got, before) {
							t.Fatalf("%s/%s/%s trial %d: aborted txn (failAfter=%d, ops=%v) changed state",
								sysName, routerName, profile, trial, failAfter, ops)
						}
					}
				}
			}
		}
	}
}
