package service

import (
	"encoding/json"
	"testing"

	"rocktm/internal/core"
	"rocktm/internal/locktm"
	"rocktm/internal/sim"
	"rocktm/internal/workload"
)

func testLoad(requests int, crossPct int) LoadSpec {
	return LoadSpec{
		Requests:  requests,
		PctLookup: 50,
		Keys:      workload.Zipfian(128, 0.99),
		Arrival:   workload.Arrival{MeanGap: 400, Seed: 3},
		CrossPct:  crossPct,
		Seed:      11,
	}
}

// Two fleets built from the same Config and offered the same LoadSpec
// must produce byte-identical results — the property that lets fleet
// cells ride the runner cache.
func TestFleetDeterministic(t *testing.T) {
	run := func() Result {
		f := testFleet(t, 2, nil, sim.FaultPlan{}, nil)
		res, err := f.Run(testLoad(200, 20))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, _ := json.Marshal(run())
	b, _ := json.Marshal(run())
	if string(a) != string(b) {
		t.Fatalf("fleet run not deterministic:\n%s\n%s", a, b)
	}
}

// Every request completes, per-shard ops sum to the request count, and
// the fleet is quiescent (no lock owners) after the run.
func TestFleetRunCompletes(t *testing.T) {
	f := testFleet(t, 3, nil, sim.FaultPlan{}, nil)
	res, err := f.Run(testLoad(300, 25))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Requests != 300 {
		t.Fatalf("Requests = %d, want 300", res.Requests)
	}
	var sum uint64
	for _, sh := range res.Shards {
		sum += sh.Ops
	}
	if sum != 300 {
		t.Fatalf("per-shard ops sum to %d, want 300", sum)
	}
	if res.Lat.P50 <= 0 || res.Lat.P999 < res.Lat.P50 {
		t.Fatalf("implausible latency summary: %+v", res.Lat)
	}
	if res.ElapsedCycles <= 0 || res.Seconds <= 0 {
		t.Fatalf("implausible elapsed: %d cycles, %g s", res.ElapsedCycles, res.Seconds)
	}
	if res.Committed2PC == 0 {
		t.Fatal("25%% cross-shard load committed no 2PC transactions")
	}
	for i := 0; i < f.Shards(); i++ {
		if owners := f.LockOwners(i); len(owners) != 0 {
			t.Fatalf("shard %d not quiescent after run: %v", i, owners)
		}
	}
	if len(res.Series) != 3 {
		t.Fatalf("Series count = %d, want 3", len(res.Series))
	}
}

// Changing the cross-shard fraction must not perturb the primary op/key
// stream: the single-op legs of a CrossPct>0 run are the same ops, in
// the same arrival order, as the CrossPct=0 run (stream separation).
func TestCrossFractionDoesNotPerturbPrimaryStream(t *testing.T) {
	trace := func(crossPct int) []Op {
		load := testLoad(100, crossPct)
		sp := workload.KVSpec(load.Keys, load.PctLookup)
		sp.Arrival = load.Arrival
		c, err := sp.Compile()
		if err != nil {
			t.Fatal(err)
		}
		src := c.Source(load.Seed)
		var ops []Op
		for i := 0; i < load.Requests; i++ {
			src.NextArrival()
			opIdx, key := src.Next()
			ops = append(ops, Op{Kind: opKindOf(opIdx), Key: key})
			if crossPct > 0 && src.ExtraRoll(100) < crossPct {
				src.ExtraKey()
			}
		}
		return ops
	}
	a, b := trace(0), trace(40)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("primary stream diverged at request %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// The batch deadline bounds queueing: with a sparse arrival process a
// shard must not sit on a pending request past MaxDelay, so worst-case
// latency stays near MaxDelay plus service time, not near the arrival
// gap.
func TestBatchDeadlineBoundsLatency(t *testing.T) {
	build := func(maxDelay int64) *Fleet {
		f, err := New(Config{
			Shards:   2,
			Strands:  2,
			KeyRange: 128,
			Buckets:  1 << 7,
			MemWords: 1 << 17,
			Seed:     7,
			System:   func(m *sim.Machine) core.System { return locktm.NewOneLock(m) },
			Batch:    BatchConfig{MaxSize: 64, MaxDelay: maxDelay},
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	load := LoadSpec{
		Requests:  64,
		PctLookup: 100,
		Keys:      workload.Uniform(128),
		Arrival:   workload.Arrival{MeanGap: 20000, Seed: 5},
		Seed:      9,
	}
	tight, err := build(1000).Run(load)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := build(100000).Run(load)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Lat.Max >= loose.Lat.Max {
		t.Fatalf("tight deadline max latency %d not below loose %d", tight.Lat.Max, loose.Lat.Max)
	}
	// With gaps (mean 20k) far above the 1k deadline, batches are mostly
	// singletons: no request should wait much past deadline + service.
	if tight.Lat.Max > 1000+5000 {
		t.Fatalf("tight-deadline max latency %d way past deadline+service", tight.Lat.Max)
	}
}

// Under heavy zipfian skew the range router concentrates load while the
// hot-aware router spreads it: the max/min per-shard op imbalance must
// be strictly worse for range than for hot.
func TestHotAwareReducesImbalance(t *testing.T) {
	imbalance := func(name string) float64 {
		router, err := NewRouter(name, 4, 128)
		if err != nil {
			t.Fatal(err)
		}
		f := testFleet(t, 4, router, sim.FaultPlan{}, nil)
		res, err := f.Run(LoadSpec{
			Requests:  400,
			PctLookup: 90,
			Keys:      workload.Zipfian(128, 0.99),
			Arrival:   workload.Arrival{MeanGap: 200, Seed: 3},
			Seed:      11,
		})
		if err != nil {
			t.Fatal(err)
		}
		max, min := uint64(0), ^uint64(0)
		for _, sh := range res.Shards {
			if sh.Ops > max {
				max = sh.Ops
			}
			if sh.Ops < min {
				min = sh.Ops
			}
		}
		if min == 0 {
			min = 1
		}
		return float64(max) / float64(min)
	}
	r, h := imbalance("range"), imbalance("hot")
	if h >= r {
		t.Fatalf("hot-aware imbalance %.2f not below range imbalance %.2f", h, r)
	}
}

// Config validation rejects nonsense.
func TestFleetConfigValidation(t *testing.T) {
	base := Config{
		Shards:   2,
		KeyRange: 64,
		System:   func(m *sim.Machine) core.System { return locktm.NewOneLock(m) },
	}
	bad := base
	bad.Shards = 0
	if _, err := New(bad); err == nil {
		t.Error("Shards=0 accepted")
	}
	bad = base
	bad.KeyRange = 0
	if _, err := New(bad); err == nil {
		t.Error("KeyRange=0 accepted")
	}
	bad = base
	bad.System = nil
	if _, err := New(bad); err == nil {
		t.Error("nil System accepted")
	}
	bad = base
	bad.Router = NewHashMap(3)
	if _, err := New(bad); err == nil {
		t.Error("router/shard mismatch accepted")
	}
	f, err := New(base)
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if _, err := f.Run(LoadSpec{Requests: 0, PctLookup: 50, Keys: workload.Uniform(64)}); err == nil {
		t.Error("Requests=0 accepted")
	}
	if _, err := f.Run(LoadSpec{Requests: 1, PctLookup: 50, Keys: workload.Uniform(64), CrossPct: 101}); err == nil {
		t.Error("CrossPct=101 accepted")
	}
}
