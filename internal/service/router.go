package service

import "fmt"

// ShardMap is the pluggable request router: it deterministically assigns
// every key of the global keyspace to one shard. Implementations must be
// pure functions of the key (no state mutated per call), because the
// router is consulted once per request leg on the fleet's hot path and
// the same mapping is reused to place the prepopulated keys.
type ShardMap interface {
	// Name is the canonical router name ("hash", "range", "hot:K"); it
	// enters the runner cache key, so two routers that can disagree on any
	// key must render differently.
	Name() string
	// Shard maps a key to a shard index in [0, Shards()).
	Shard(key uint64) int
	// Shards is the shard count the map routes over.
	Shards() int
}

// hashMap spreads keys by multiplicative hash — the classic "uniform"
// router. Hot keys land wherever the hash sends them, so a zipfian storm
// concentrates on whichever shard owns rank 0.
type hashMap struct{ n int }

// NewHashMap routes by multiplicative hash over n shards.
func NewHashMap(n int) ShardMap { return hashMap{mustShards(n)} }

func (h hashMap) Name() string { return "hash" }
func (h hashMap) Shards() int  { return h.n }
func (h hashMap) Shard(key uint64) int {
	key *= 0x9e3779b97f4a7c15
	return int((key >> 40) % uint64(h.n))
}

// rangeMap assigns contiguous key ranges — the router of ordered stores
// (range scans stay shard-local). Under zipfian skew it is the worst
// case: the hottest ranks are adjacent keys, so shard 0 owns the entire
// storm.
type rangeMap struct {
	n   int
	per uint64
}

// NewRangeMap routes [0, keyRange) in n contiguous slices.
func NewRangeMap(n, keyRange int) ShardMap {
	if keyRange <= 0 {
		panic("service: range router needs keyRange > 0")
	}
	per := (uint64(keyRange) + uint64(n) - 1) / uint64(mustShards(n))
	if per == 0 {
		per = 1
	}
	return rangeMap{n: n, per: per}
}

func (r rangeMap) Name() string { return "range" }
func (r rangeMap) Shards() int  { return r.n }
func (r rangeMap) Shard(key uint64) int {
	s := int(key / r.per)
	if s >= r.n {
		s = r.n - 1
	}
	return s
}

// hotAwareMap is the hot-shard mitigation router: the top hotKeys keys of
// the keyspace — which under the workload layer's zipfian generator are
// exactly the lowest key values (rank r maps to key Offset+r) — are split
// round-robin across all shards, so no single shard owns the whole storm;
// every other key routes through the plain hash.
type hotAwareMap struct {
	n       int
	hotKeys uint64
	base    hashMap
}

// NewHotAwareMap splits the hotKeys hottest keys round-robin and hashes
// the rest over n shards.
func NewHotAwareMap(n, hotKeys int) ShardMap {
	if hotKeys < 0 {
		panic("service: hot-aware router needs hotKeys >= 0")
	}
	return hotAwareMap{n: mustShards(n), hotKeys: uint64(hotKeys), base: hashMap{n}}
}

func (h hotAwareMap) Name() string { return fmt.Sprintf("hot:%d", h.hotKeys) }
func (h hotAwareMap) Shards() int  { return h.n }
func (h hotAwareMap) Shard(key uint64) int {
	if key < h.hotKeys {
		return int(key % uint64(h.n))
	}
	return h.base.Shard(key)
}

// RouterNames lists the canonical router family names accepted by
// NewRouter, in experiment order.
func RouterNames() []string { return []string{"hash", "range", "hot"} }

// NewRouter builds a router by family name over n shards of a keyRange
// keyspace. The "hot" family splits the top 4*n keys (a few hot ranks per
// shard) round-robin.
func NewRouter(name string, n, keyRange int) (ShardMap, error) {
	switch name {
	case "hash":
		return NewHashMap(n), nil
	case "range":
		return NewRangeMap(n, keyRange), nil
	case "hot":
		return NewHotAwareMap(n, 4*n), nil
	}
	return nil, fmt.Errorf("service: unknown router %q (known: %v)", name, RouterNames())
}

func mustShards(n int) int {
	if n <= 0 {
		panic("service: shard count must be positive")
	}
	return n
}
