// Package tmtest cross-checks every synchronization system against the
// same atomicity and isolation obligations, in the spirit of the random
// transaction testing (TSOTool et al.) the paper relied on.
package tmtest

import (
	"fmt"
	"testing"

	"rocktm/internal/core"
	"rocktm/internal/hytm"
	"rocktm/internal/locktm"
	"rocktm/internal/phtm"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
	"rocktm/internal/stm/tl2"
	"rocktm/internal/tle"
)

// sysFactory builds a fresh system bound to machine m.
type sysFactory struct {
	name  string
	build func(m *sim.Machine) core.System
}

func factories() []sysFactory {
	return []sysFactory{
		{"one-lock", func(m *sim.Machine) core.System { return locktm.NewOneLock(m) }},
		{"rw-lock", func(m *sim.Machine) core.System { return locktm.NewRW(m) }},
		{"stm-tl2", func(m *sim.Machine) core.System { return tl2.New(m) }},
		{"stm-sky", func(m *sim.Machine) core.System { return sky.New(m) }},
		{"hytm", func(m *sim.Machine) core.System { return hytm.New(sky.New(m), hytm.DefaultConfig()) }},
		{"phtm-sky", func(m *sim.Machine) core.System { return phtm.New(m, sky.New(m), phtm.DefaultConfig()) }},
		{"phtm-tl2", func(m *sim.Machine) core.System { return phtm.New(m, tl2.New(m), phtm.DefaultConfig()) }},
		{"tle", func(m *sim.Machine) core.System {
			return tle.New("tle", tle.SpinAdapter{L: locktm.NewSpinLock(m.Mem())}, tle.DefaultPolicy())
		}},
	}
}

func testMachine(strands int, seed uint64) *sim.Machine {
	cfg := sim.DefaultConfig(strands)
	cfg.MemWords = 1 << 21
	cfg.Seed = seed
	cfg.MaxCycles = 1 << 42
	return sim.New(cfg)
}

var pcTransfer = core.PC("tmtest.transfer")

// TestAtomicTransfersConserveSum runs randomized transfers between
// accounts under every system and checks (a) the final total is conserved
// and (b) every read-only audit inside an atomic block observes the
// invariant total — the isolation/opacity obligation.
func TestAtomicTransfersConserveSum(t *testing.T) {
	const (
		accounts = 32
		initial  = 1000
		perOps   = 300
		threads  = 4
	)
	for _, f := range factories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			m := testMachine(threads, 42)
			sys := f.build(m)
			base := m.Mem().AllocLines(accounts)
			for i := 0; i < accounts; i++ {
				m.Mem().Poke(base+sim.Addr(i), initial)
			}
			audits := 0
			badAudits := 0
			m.Run(func(s *sim.Strand) {
				for op := 0; op < perOps; op++ {
					if s.RandIntn(4) == 0 {
						// Audit: sum all accounts inside one atomic block.
						var sum sim.Word
						sys.AtomicRO(s, func(c core.Ctx) {
							sum = 0
							for i := 0; i < accounts; i++ {
								sum += c.Load(base + sim.Addr(i))
							}
						})
						audits++
						if sum != accounts*initial {
							badAudits++
						}
						continue
					}
					from := s.RandIntn(accounts)
					to := s.RandIntn(accounts)
					amt := sim.Word(1 + s.RandIntn(10))
					sys.Atomic(s, func(c core.Ctx) {
						fv := c.Load(base + sim.Addr(from))
						tv := c.Load(base + sim.Addr(to))
						c.Branch(pcTransfer, fv >= amt, true)
						if fv < amt {
							return
						}
						if from == to {
							return
						}
						c.Store(base+sim.Addr(from), fv-amt)
						c.Store(base+sim.Addr(to), tv+amt)
					})
				}
			})
			var total sim.Word
			for i := 0; i < accounts; i++ {
				total += m.Mem().Peek(base + sim.Addr(i))
			}
			if total != accounts*initial {
				t.Errorf("%s: total = %d, want %d", f.name, total, accounts*initial)
			}
			if badAudits > 0 {
				t.Errorf("%s: %d/%d audits saw a torn total", f.name, badAudits, audits)
			}
		})
	}
}

// TestCountingExact increments one shared counter from many strands under
// every system; the final count must be exact.
func TestCountingExact(t *testing.T) {
	const (
		perOps  = 400
		threads = 6
	)
	for _, f := range factories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			m := testMachine(threads, 7)
			sys := f.build(m)
			ctr := m.Mem().AllocLines(sim.WordsPerLine)
			m.Run(func(s *sim.Strand) {
				for op := 0; op < perOps; op++ {
					sys.Atomic(s, func(c core.Ctx) {
						c.Store(ctr, c.Load(ctr)+1)
					})
				}
			})
			if got := m.Mem().Peek(ctr); got != perOps*threads {
				t.Errorf("%s: counter = %d, want %d", f.name, got, perOps*threads)
			}
		})
	}
}

// TestDeterministicAcrossRuns verifies that a full multi-threaded run under
// each system is reproducible cycle-for-cycle with the same seed.
func TestDeterministicAcrossRuns(t *testing.T) {
	for _, f := range factories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			run := func() (int64, sim.Word) {
				m := testMachine(3, 99)
				sys := f.build(m)
				ctr := m.Mem().AllocLines(sim.WordsPerLine)
				m.Run(func(s *sim.Strand) {
					for op := 0; op < 150; op++ {
						sys.Atomic(s, func(c core.Ctx) {
							c.Store(ctr, c.Load(ctr)+sim.Word(s.ID())+1)
						})
					}
				})
				return m.MaxClock(), m.Mem().Peek(ctr)
			}
			c1, v1 := run()
			c2, v2 := run()
			if c1 != c2 || v1 != v2 {
				t.Errorf("%s: nondeterministic: (%d,%d) vs (%d,%d)", f.name, c1, v1, c2, v2)
			}
		})
	}
}

// TestStatsAccounting sanity-checks the statistics every system reports.
func TestStatsAccounting(t *testing.T) {
	for _, f := range factories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			m := testMachine(2, 5)
			sys := f.build(m)
			x := m.Mem().AllocLines(sim.WordsPerLine)
			const perOps = 100
			m.Run(func(s *sim.Strand) {
				for op := 0; op < perOps; op++ {
					sys.Atomic(s, func(c core.Ctx) {
						c.Store(x, c.Load(x)+1)
					})
				}
			})
			st := sys.Stats()
			if st.Ops != 2*perOps {
				t.Errorf("%s: Ops = %d, want %d", f.name, st.Ops, 2*perOps)
			}
			if st.HWCommits > st.HWAttempts {
				t.Errorf("%s: HWCommits %d > HWAttempts %d", f.name, st.HWCommits, st.HWAttempts)
			}
			if fmt.Sprint(sys.Name()) == "" {
				t.Errorf("empty system name")
			}
		})
	}
}
