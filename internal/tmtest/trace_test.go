package tmtest

import (
	"bytes"
	"testing"

	"rocktm/internal/core"
	"rocktm/internal/obs"
	"rocktm/internal/sim"
)

// runTracedTransfers executes a deterministic transfer workload under sys
// and returns the machine for inspection. When trace is true a tracer is
// attached before the run.
func runTracedTransfers(f sysFactory, seed uint64, trace bool) (*sim.Machine, *obs.Tracer) {
	const (
		accounts = 16
		perOps   = 200
		threads  = 4
	)
	m := testMachine(threads, seed)
	sys := f.build(m)
	var tr *obs.Tracer
	if trace {
		tr = m.StartTrace(0)
	}
	base := m.Mem().AllocLines(accounts)
	for i := 0; i < accounts; i++ {
		m.Mem().Poke(base+sim.Addr(i), 1000)
	}
	m.Run(func(s *sim.Strand) {
		for op := 0; op < perOps; op++ {
			from := s.RandIntn(accounts)
			to := s.RandIntn(accounts)
			amt := sim.Word(1 + s.RandIntn(10))
			sys.Atomic(s, func(c core.Ctx) {
				fv := c.Load(base + sim.Addr(from))
				tv := c.Load(base + sim.Addr(to))
				c.Branch(pcTransfer, fv >= amt, true)
				if fv < amt || from == to {
					return
				}
				c.Store(base+sim.Addr(from), fv-amt)
				c.Store(base+sim.Addr(to), tv+amt)
			})
		}
	})
	return m, tr
}

// TestTracingPreservesVirtualTime is the observer-effect obligation: a
// traced run must be cycle-for-cycle identical to an untraced one.
// Recording consumes no simulated cycles and no simulated randomness, so
// MaxClock must not move when tracing is switched on.
func TestTracingPreservesVirtualTime(t *testing.T) {
	for _, f := range factories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			plain, _ := runTracedTransfers(f, 99, false)
			traced, tr := runTracedTransfers(f, 99, true)
			if plain.MaxClock() != traced.MaxClock() {
				t.Errorf("tracing perturbed virtual time: untraced MaxClock=%d, traced=%d",
					plain.MaxClock(), traced.MaxClock())
			}
			if tr.Recorded() == 0 {
				t.Errorf("traced run recorded no events")
			}
		})
	}
}

// TestTraceStreamDeterministic asserts that two runs with the same seed
// produce byte-identical merged trace streams (rendered as the plain-text
// timeline, which includes cycle, strand, kind and detail of every event).
func TestTraceStreamDeterministic(t *testing.T) {
	for _, f := range factories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			_, tr1 := runTracedTransfers(f, 1234, true)
			_, tr2 := runTracedTransfers(f, 1234, true)
			var a, b bytes.Buffer
			if err := obs.WriteTimeline(&a, tr1.Merged()); err != nil {
				t.Fatal(err)
			}
			if err := obs.WriteTimeline(&b, tr2.Merged()); err != nil {
				t.Fatal(err)
			}
			if a.Len() == 0 {
				t.Fatal("empty trace stream")
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Errorf("same-seed runs produced different trace streams (%d vs %d bytes)", a.Len(), b.Len())
			}
		})
	}
}

// TestRegistryMatchesSystemStats cross-checks the unified metrics registry
// against the compatibility accessors it wraps: the "ops" counter pulled
// through a snapshot must equal the system's own Stats, and the simulator's
// per-strand tx counters must agree with a trace of the same run.
func TestRegistryMatchesSystemStats(t *testing.T) {
	for _, f := range factories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			const threads = 4
			m := testMachine(threads, 5)
			sys := f.build(m)
			reg := obs.NewRegistry()
			core.Publish(reg, sys)
			m.PublishMetrics(reg)
			tr := m.StartTrace(0)
			ctr := m.Mem().AllocLines(sim.WordsPerLine)
			m.Run(func(s *sim.Strand) {
				for op := 0; op < 100; op++ {
					sys.Atomic(s, func(c core.Ctx) {
						c.Store(ctr, c.Load(ctr)+1)
					})
				}
			})
			snap := reg.Snapshot()
			ops, ok := snap.Counter(sys.Name(), "ops")
			if !ok || ops != sys.Stats().Ops {
				t.Errorf("registry ops = %d (found=%v), system stats Ops = %d", ops, ok, sys.Stats().Ops)
			}
			if ops != 100*threads {
				t.Errorf("ops = %d, want %d", ops, 100*threads)
			}
			prof := obs.Attribute(tr.Merged())
			begins, _ := snap.Counter("sim", "tx_begins")
			if tr.Dropped() == 0 && begins != prof.Begins {
				t.Errorf("registry tx_begins = %d, trace begins = %d", begins, prof.Begins)
			}
			commits, _ := snap.Counter("sim", "tx_commits")
			aborts, _ := snap.Counter("sim", "tx_aborts")
			if tr.Dropped() == 0 && (commits != prof.Commits || aborts != prof.Aborts) {
				t.Errorf("registry commits/aborts = %d/%d, trace = %d/%d",
					commits, aborts, prof.Commits, prof.Aborts)
			}
		})
	}
}
