// Package cps models the Rock processor's Checkpoint Status (CPS) register.
//
// When a best-effort hardware transaction aborts, the CPS register reports
// why. The bit assignments and example causes follow Table 1 of Dice, Lev,
// Moir and Nussbaum, "Early Experience with a Commercial Hardware
// Transactional Memory Implementation" (ASPLOS 2009). A failing transaction
// may set several bits at once, and a single bit can be set for more than
// one underlying reason, which is precisely what makes reacting to failures
// interesting for software.
package cps

import (
	"sort"
	"strings"
)

// Bits is the value of the CPS register: a bitwise OR of the failure-reason
// flags below. The zero value means "no failure recorded".
type Bits uint32

// CPS register bits, per Table 1 of the paper.
const (
	// EXOG (exogenous): intervening code has run; register contents are
	// invalid. Example: a context switch between the abort and the read
	// of the CPS register.
	EXOG Bits = 0x001
	// COH (coherence): a conflicting memory operation by another strand
	// invalidated a transactionally marked line (requester wins).
	COH Bits = 0x002
	// TCC (trap instruction): a trap instruction evaluated to "taken".
	// This is how software aborts transactions explicitly.
	TCC Bits = 0x004
	// INST (unsupported instruction): an instruction that is not supported
	// inside transactions was executed; notably the save/restore pair that
	// implements function calls.
	INST Bits = 0x008
	// PREC (precise exception): execution generated a precise exception,
	// e.g. a null or misaligned dereference, or an ITLB miss.
	PREC Bits = 0x010
	// ASYNC: an asynchronous interrupt was received mid-transaction.
	ASYNC Bits = 0x020
	// SIZ (size): a hardware resource was exhausted — the write set
	// exceeded the store queue, or too many instructions were deferred
	// waiting on cache misses.
	SIZ Bits = 0x040
	// LD (load): a cache line in the read set was evicted from the L1
	// during the transaction.
	LD Bits = 0x080
	// ST (store): a data-TLB (micro-DTLB) miss on a store, or a store
	// whose address depends on an outstanding load miss.
	ST Bits = 0x100
	// CTI (control-transfer instruction): a mispredicted branch.
	CTI Bits = 0x200
	// FP (floating point): an unsupported arithmetic instruction such as
	// divide was executed.
	FP Bits = 0x400
	// UCTI (unresolved control transfer): a branch was executed before the
	// load its predicate depends on was resolved; the reported failure
	// reason may be an artifact of misspeculation, so software should
	// retry. Added in the R2 chip revision in response to the authors'
	// feedback.
	UCTI Bits = 0x800
)

// All lists every defined bit in ascending mask order.
var All = []Bits{EXOG, COH, TCC, INST, PREC, ASYNC, SIZ, LD, ST, CTI, FP, UCTI}

var names = map[Bits]string{
	EXOG:  "EXOG",
	COH:   "COH",
	TCC:   "TCC",
	INST:  "INST",
	PREC:  "PREC",
	ASYNC: "ASYNC",
	SIZ:   "SIZ",
	LD:    "LD",
	ST:    "ST",
	CTI:   "CTI",
	FP:    "FP",
	UCTI:  "UCTI",
}

var descriptions = map[Bits]string{
	EXOG:  "Exogenous - Intervening code has run: cps register contents are invalid.",
	COH:   "Coherence - Conflicting memory operation.",
	TCC:   "Trap Instruction - A trap instruction evaluates to \"taken\".",
	INST:  "Unsupported Instruction - Instruction not supported inside transactions.",
	PREC:  "Precise Exception - Execution generated a precise exception.",
	ASYNC: "Async - Received an asynchronous interrupt.",
	SIZ:   "Size - Transaction write set exceeded the size of the store queue.",
	LD:    "Load - Cache line in read set evicted by transaction.",
	ST:    "Store - Data TLB miss on a store.",
	CTI:   "Control transfer - Mispredicted branch.",
	FP:    "Floating point - Divide instruction.",
	UCTI:  "Unresolved control transfer - branch executed without resolving load on which it depends.",
}

// Name returns the mnemonic for a single bit, or "?" if b is not one of the
// defined bits.
func Name(b Bits) string {
	if s, ok := names[b]; ok {
		return s
	}
	return "?"
}

// Describe returns the Table 1 description with an example cause for a
// single defined bit.
func Describe(b Bits) string { return descriptions[b] }

// Has reports whether all bits in mask are set in b.
func (b Bits) Has(mask Bits) bool { return b&mask == mask }

// Any reports whether any bit in mask is set in b.
func (b Bits) Any(mask Bits) bool { return b&mask != 0 }

// String renders the register as "BIT|BIT|..." in ascending mask order,
// matching the paper's notation (e.g. "ST|SIZ" is rendered "SIZ|ST").
// A zero value renders as "NONE".
func (b Bits) String() string {
	if b == 0 {
		return "NONE"
	}
	var parts []string
	for _, bit := range All {
		if b&bit != 0 {
			parts = append(parts, names[bit])
		}
	}
	if rest := b &^ (EXOG | COH | TCC | INST | PREC | ASYNC | SIZ | LD | ST | CTI | FP | UCTI); rest != 0 {
		parts = append(parts, "?")
	}
	return strings.Join(parts, "|")
}

// Histogram counts how often each distinct CPS value was observed across a
// set of transaction failures. It is the analysis tool behind statements in
// the paper like "the distribution of CPS values ... is dominated by COH".
type Histogram struct {
	counts map[Bits]uint64
	total  uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[Bits]uint64)}
}

// Add records one observation of value b.
func (h *Histogram) Add(b Bits) {
	h.counts[b]++
	h.total++
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for b, n := range other.counts {
		h.counts[b] += n
	}
	h.total += other.total
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns the number of observations of exactly value b.
func (h *Histogram) Count(b Bits) uint64 { return h.counts[b] }

// BitCount returns the number of observations in which bit mask was set
// (possibly along with other bits).
func (h *Histogram) BitCount(mask Bits) uint64 {
	var n uint64
	for b, c := range h.counts {
		if b.Any(mask) {
			n += c
		}
	}
	return n
}

// Dominant returns the most frequently observed CPS value and its fraction
// of all observations. It returns (0, 0) for an empty histogram.
func (h *Histogram) Dominant() (Bits, float64) {
	if h.total == 0 {
		return 0, 0
	}
	var best Bits
	var bestN uint64
	for b, n := range h.counts {
		if n > bestN || (n == bestN && b < best) {
			best, bestN = b, n
		}
	}
	return best, float64(bestN) / float64(h.total)
}

// Entry is one row of a histogram report.
type Entry struct {
	Value    Bits
	Count    uint64
	Fraction float64
}

// Entries returns the histogram sorted by descending count (ties broken by
// ascending value).
func (h *Histogram) Entries() []Entry {
	es := make([]Entry, 0, len(h.counts))
	for b, n := range h.counts {
		frac := 0.0
		if h.total > 0 {
			frac = float64(n) / float64(h.total)
		}
		es = append(es, Entry{Value: b, Count: n, Fraction: frac})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].Count != es[j].Count {
			return es[i].Count > es[j].Count
		}
		return es[i].Value < es[j].Value
	})
	return es
}

// String renders the histogram as a compact single-line summary, e.g.
// "COH:812(81.2%) LD:120(12.0%) ...".
func (h *Histogram) String() string {
	if h.total == 0 {
		return "(empty)"
	}
	var sb strings.Builder
	for i, e := range h.Entries() {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(e.Value.String())
		sb.WriteByte(':')
		writeUint(&sb, e.Count)
		sb.WriteByte('(')
		writePct(&sb, e.Fraction)
		sb.WriteByte(')')
	}
	return sb.String()
}

func writeUint(sb *strings.Builder, v uint64) {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	sb.Write(buf[i:])
}

func writePct(sb *strings.Builder, f float64) {
	tenths := int64(f*1000 + 0.5)
	writeUint(sb, uint64(tenths/10))
	sb.WriteByte('.')
	sb.WriteByte(byte('0' + tenths%10))
	sb.WriteByte('%')
}
