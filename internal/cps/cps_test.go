package cps

import (
	"testing"
	"testing/quick"
)

func TestBitValuesMatchTable1(t *testing.T) {
	want := map[Bits]uint32{
		EXOG: 0x001, COH: 0x002, TCC: 0x004, INST: 0x008,
		PREC: 0x010, ASYNC: 0x020, SIZ: 0x040, LD: 0x080,
		ST: 0x100, CTI: 0x200, FP: 0x400, UCTI: 0x800,
	}
	for b, v := range want {
		if uint32(b) != v {
			t.Errorf("%s = %#x, want %#x", Name(b), uint32(b), v)
		}
	}
	if len(All) != 12 {
		t.Errorf("All has %d bits, want 12", len(All))
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		in   Bits
		want string
	}{
		{0, "NONE"},
		{ST, "ST"},
		{ST | SIZ, "SIZ|ST"}, // ascending mask order
		{LD | PREC, "PREC|LD"},
		{EXOG | UCTI, "EXOG|UCTI"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%#x.String() = %q, want %q", uint32(c.in), got, c.want)
		}
	}
}

func TestHasAndAny(t *testing.T) {
	v := ST | SIZ
	if !v.Has(ST) || !v.Has(ST|SIZ) || v.Has(ST|LD) {
		t.Error("Has misbehaves")
	}
	if !v.Any(LD|SIZ) || v.Any(LD|COH) {
		t.Error("Any misbehaves")
	}
}

func TestDescriptionsComplete(t *testing.T) {
	for _, b := range All {
		if Describe(b) == "" {
			t.Errorf("no description for %s", Name(b))
		}
		if Name(b) == "?" {
			t.Errorf("no name for %#x", uint32(b))
		}
	}
}

func TestHistogramCountsAndDominant(t *testing.T) {
	h := NewHistogram()
	if d, f := h.Dominant(); d != 0 || f != 0 {
		t.Error("empty histogram has a dominant value")
	}
	for i := 0; i < 7; i++ {
		h.Add(COH)
	}
	for i := 0; i < 3; i++ {
		h.Add(ST | SIZ)
	}
	if h.Total() != 10 || h.Count(COH) != 7 {
		t.Errorf("total=%d count(COH)=%d", h.Total(), h.Count(COH))
	}
	if h.BitCount(SIZ) != 3 || h.BitCount(COH) != 7 {
		t.Error("BitCount wrong")
	}
	d, f := h.Dominant()
	if d != COH || f != 0.7 {
		t.Errorf("Dominant = (%v, %v)", d, f)
	}
	es := h.Entries()
	if len(es) != 2 || es[0].Value != COH || es[1].Count != 3 {
		t.Errorf("Entries = %+v", es)
	}
	other := NewHistogram()
	other.Add(COH)
	h.Merge(other)
	if h.Count(COH) != 8 || h.Total() != 11 {
		t.Error("Merge lost observations")
	}
	h.Merge(nil) // must not panic
}

func TestHistogramStringNonEmpty(t *testing.T) {
	h := NewHistogram()
	if h.String() != "(empty)" {
		t.Error("empty rendering")
	}
	h.Add(LD)
	h.Add(LD)
	h.Add(COH)
	s := h.String()
	if s == "" || s == "(empty)" {
		t.Errorf("rendering = %q", s)
	}
}

// TestQuickHistogramTotals: total always equals the sum of entry counts.
func TestQuickHistogramTotals(t *testing.T) {
	prop := func(adds []uint16) bool {
		h := NewHistogram()
		for _, a := range adds {
			h.Add(Bits(a) & 0xFFF)
		}
		var sum uint64
		for _, e := range h.Entries() {
			sum += e.Count
		}
		return sum == h.Total() && int(h.Total()) == len(adds)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
