// Continuation-machine sessions (sim.RunStepped): each complete operation —
// node allocation, pre-transaction initialization stores, the atomic block,
// post-transaction reclamation — becomes an explicit state machine over the
// system's core.StepBlock. The simulated-operation sequence is op-for-op
// identical to the coroutine Session methods.
package rbtree

import (
	"rocktm/internal/alloc"
	"rocktm/internal/core"
	"rocktm/internal/sim"
)

// Operation kinds.
const (
	opLookup uint8 = iota
	opInsert
	opDelete
)

// opStep states.
const (
	osGet uint8 = iota
	osInit
	osBlock
	osPut
)

// opStep is one session operation as a continuation machine.
type opStep struct {
	ss   *Session
	sys  core.StepSystem
	kind uint8
	st   uint8
	fi   int
	val  sim.Word
	get  alloc.GetStep
	put  alloc.PutStep
	sub  core.StepBlock
}

// initField returns insert's fi-th pre-transaction initialization store.
func (o *opStep) initField() (sim.Addr, sim.Word) {
	switch o.fi {
	case 0:
		return o.ss.node + fKey, o.ss.key
	case 1:
		return o.ss.node + fVal, o.val
	case 2:
		return o.ss.node + fLeft, 0
	case 3:
		return o.ss.node + fRight, 0
	default:
		return o.ss.node + fColor, 1
	}
}

// Step implements core.StepBlock.
func (o *opStep) Step() bool {
	ss := o.ss
	s := ss.s
	for {
		switch o.st {
		case osGet:
			if !o.get.Step(s, ss.t.pool) {
				return false
			}
			ss.node = o.get.Addr()
			o.fi = 0
			o.st = osInit
		case osInit:
			for o.fi < 5 {
				a, v := o.initField()
				s.Store(a, v)
				if s.YieldPending() {
					return false
				}
				o.fi++
			}
			ss.inserted = false
			o.sub = o.sys.StepAtomic(s, ss.insertFn, false)
			o.st = osBlock
		case osBlock:
			if !o.sub.Step() {
				return false
			}
			switch o.kind {
			case opLookup:
				return true
			case opInsert:
				reclaim := sim.Addr(0)
				if !ss.inserted {
					reclaim = ss.node
				}
				o.put.Arm(reclaim)
			default:
				o.put.Arm(ss.removed)
			}
			o.st = osPut
		default: // osPut
			if !o.put.Step(s, ss.t.pool) {
				return false
			}
			return true
		}
	}
}

// stepFor lazily builds the session's reusable operation machine; it
// requires (and asserts) a system with a continuation-machine face.
func (ss *Session) stepFor() *opStep {
	if ss.step == nil {
		ss.step = &opStep{ss: ss, sys: ss.sys.(core.StepSystem)}
	}
	return ss.step
}

// StepLookup arms Lookup as a continuation machine. The result lands in the
// session's fields once the block finishes (as with the coroutine methods,
// at most one operation per session is in flight).
func (ss *Session) StepLookup(key uint64) core.StepBlock {
	o := ss.stepFor()
	ss.key = key
	o.kind, o.st = opLookup, osBlock
	o.sub = o.sys.StepAtomic(ss.s, ss.lookupFn, true)
	return o
}

// StepInsert arms Insert as a continuation machine.
func (ss *Session) StepInsert(key uint64, val sim.Word) core.StepBlock {
	o := ss.stepFor()
	ss.key = key
	o.val = val
	o.kind, o.st = opInsert, osGet
	o.get.Arm()
	return o
}

// StepDelete arms Delete as a continuation machine.
func (ss *Session) StepDelete(key uint64) core.StepBlock {
	o := ss.stepFor()
	ss.key = key
	ss.removed = 0
	o.kind, o.st = opDelete, osBlock
	o.sub = o.sys.StepAtomic(ss.s, ss.deleteFn, false)
	return o
}
