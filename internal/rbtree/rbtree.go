// Package rbtree implements the iterative red-black tree of Section 6 —
// iterative precisely because recursive function calls (save/restore) abort
// Rock transactions with CPS=INST. Compared with the hash table it is the
// hard case for best-effort HTM: transactions are longer, have chained data
// dependencies (each child pointer feeds the next load), and traversal
// branches confound the branch predictor, all of which the simulator
// faithfully punishes.
package rbtree

import (
	"rocktm/internal/alloc"
	"rocktm/internal/core"
	"rocktm/internal/rock"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
	"rocktm/internal/stm/tl2"
)

//go:generate go run rocktm/cmd/ctxgen

// Node layout (one cache line per node).
const (
	fKey      = 0
	fVal      = 1
	fLeft     = 2
	fRight    = 3
	fParent   = 4
	fColor    = 5 // 1 = red, 0 = black
	nodeWords = sim.WordsPerLine
)

// Branch sites.
var (
	pcWalkNil    = core.PC("rbtree.walk.nil")
	pcWalkDir    = core.PC("rbtree.walk.dir")
	pcWalkEq     = core.PC("rbtree.walk.eq")
	pcFixRed     = core.PC("rbtree.fix.red")
	pcFixSide    = core.PC("rbtree.fix.side")
	pcFixUncle   = core.PC("rbtree.fix.uncle")
	pcDelSide    = core.PC("rbtree.del.side")
	pcDelRedSib  = core.PC("rbtree.del.redsib")
	pcDelNephews = core.PC("rbtree.del.nephews")
	pcMinWalk    = core.PC("rbtree.min.walk")
)

// Tree is a red-black tree in simulated memory.
type Tree struct {
	rootA sim.Addr // word holding the root pointer
	pool  *alloc.Pool
}

// New builds a tree with capacity for the given number of resident nodes.
func New(m *sim.Machine, capacity int) *Tree {
	return &Tree{
		rootA: m.Mem().AllocLines(sim.WordsPerLine),
		pool:  alloc.NewPool(m, nodeWords, capacity),
	}
}

func isRed(c core.Ctx, n sim.Word) bool {
	return n != 0 && c.Load(sim.Addr(n)+fColor) != 0
}

func setColor(c core.Ctx, n sim.Word, red bool) {
	v := sim.Word(0)
	if red {
		v = 1
	}
	c.Store(sim.Addr(n)+fColor, v)
}

// Lookup reports the value stored under key.
func (t *Tree) Lookup(c core.Ctx, key uint64) (sim.Word, bool) {
	x := c.Load(t.rootA)
	for {
		c.Branch(pcWalkNil, x != 0, true)
		if x == 0 {
			return 0, false
		}
		k := c.Load(sim.Addr(x) + fKey)
		c.Branch(pcWalkEq, k == key, true)
		if k == key {
			return c.Load(sim.Addr(x) + fVal), true
		}
		goLeft := key < k
		c.Branch(pcWalkDir, goLeft, true)
		if goLeft {
			x = c.Load(sim.Addr(x) + fLeft)
		} else {
			x = c.Load(sim.Addr(x) + fRight)
		}
	}
}

// rotateLeft rotates x's subtree left, updating the root word if needed.
func (t *Tree) rotateLeft(c core.Ctx, x sim.Word) {
	y := c.Load(sim.Addr(x) + fRight)
	yl := c.Load(sim.Addr(y) + fLeft)
	c.Store(sim.Addr(x)+fRight, yl)
	if yl != 0 {
		c.Store(sim.Addr(yl)+fParent, x)
	}
	xp := c.Load(sim.Addr(x) + fParent)
	c.Store(sim.Addr(y)+fParent, xp)
	switch {
	case xp == 0:
		c.Store(t.rootA, y)
	case c.Load(sim.Addr(xp)+fLeft) == x:
		c.Store(sim.Addr(xp)+fLeft, y)
	default:
		c.Store(sim.Addr(xp)+fRight, y)
	}
	c.Store(sim.Addr(y)+fLeft, x)
	c.Store(sim.Addr(x)+fParent, y)
}

// rotateRight mirrors rotateLeft.
func (t *Tree) rotateRight(c core.Ctx, x sim.Word) {
	y := c.Load(sim.Addr(x) + fLeft)
	yr := c.Load(sim.Addr(y) + fRight)
	c.Store(sim.Addr(x)+fLeft, yr)
	if yr != 0 {
		c.Store(sim.Addr(yr)+fParent, x)
	}
	xp := c.Load(sim.Addr(x) + fParent)
	c.Store(sim.Addr(y)+fParent, xp)
	switch {
	case xp == 0:
		c.Store(t.rootA, y)
	case c.Load(sim.Addr(xp)+fRight) == x:
		c.Store(sim.Addr(xp)+fRight, y)
	default:
		c.Store(sim.Addr(xp)+fLeft, y)
	}
	c.Store(sim.Addr(y)+fRight, x)
	c.Store(sim.Addr(x)+fParent, y)
}

// insert links a pre-initialized node (left/right nil, red) under key,
// returning false if the key already exists (nothing modified).
func (t *Tree) insert(c core.Ctx, key uint64, node sim.Addr) bool {
	var y sim.Word
	yLeft := false
	x := c.Load(t.rootA)
	for x != 0 {
		c.Branch(pcWalkNil, true, true)
		y = x
		k := c.Load(sim.Addr(x) + fKey)
		c.Branch(pcWalkEq, k == key, true)
		if k == key {
			return false
		}
		yLeft = key < k
		c.Branch(pcWalkDir, yLeft, true)
		if yLeft {
			x = c.Load(sim.Addr(x) + fLeft)
		} else {
			x = c.Load(sim.Addr(x) + fRight)
		}
	}
	c.Store(node+fParent, y)
	switch {
	case y == 0:
		c.Store(t.rootA, sim.Word(node))
	case yLeft:
		c.Store(sim.Addr(y)+fLeft, sim.Word(node))
	default:
		c.Store(sim.Addr(y)+fRight, sim.Word(node))
	}
	t.insertFixup(c, sim.Word(node))
	return true
}

// insertFixup restores the red-black invariants after an insertion;
// rotations occasionally propagate to the root, producing the longer
// store-heavy transactions Section 6 describes.
func (t *Tree) insertFixup(c core.Ctx, z sim.Word) {
	for {
		p := c.Load(sim.Addr(z) + fParent)
		pRed := isRed(c, p)
		c.Branch(pcFixRed, pRed, true)
		if !pRed {
			break
		}
		g := c.Load(sim.Addr(p) + fParent) // exists: the root is black
		pIsLeft := c.Load(sim.Addr(g)+fLeft) == p
		c.Branch(pcFixSide, pIsLeft, true)
		if pIsLeft {
			u := c.Load(sim.Addr(g) + fRight)
			uRed := isRed(c, u)
			c.Branch(pcFixUncle, uRed, true)
			if uRed {
				setColor(c, p, false)
				setColor(c, u, false)
				setColor(c, g, true)
				z = g
				continue
			}
			if c.Load(sim.Addr(p)+fRight) == z {
				z = p
				t.rotateLeft(c, z)
				p = c.Load(sim.Addr(z) + fParent)
				g = c.Load(sim.Addr(p) + fParent)
			}
			setColor(c, p, false)
			setColor(c, g, true)
			t.rotateRight(c, g)
		} else {
			u := c.Load(sim.Addr(g) + fLeft)
			uRed := isRed(c, u)
			c.Branch(pcFixUncle, uRed, true)
			if uRed {
				setColor(c, p, false)
				setColor(c, u, false)
				setColor(c, g, true)
				z = g
				continue
			}
			if c.Load(sim.Addr(p)+fLeft) == z {
				z = p
				t.rotateRight(c, z)
				p = c.Load(sim.Addr(z) + fParent)
				g = c.Load(sim.Addr(p) + fParent)
			}
			setColor(c, p, false)
			setColor(c, g, true)
			t.rotateLeft(c, g)
		}
	}
	root := c.Load(t.rootA)
	setColor(c, root, false)
}

// delete unlinks key's node, returning the address of the node whose
// storage became free (0 if the key is absent). The classic copy-out
// deletion is used: when the doomed node has two children its successor's
// key and value are copied in and the successor is spliced out.
func (t *Tree) delete(c core.Ctx, key uint64) sim.Addr {
	z := c.Load(t.rootA)
	for {
		c.Branch(pcWalkNil, z != 0, true)
		if z == 0 {
			return 0
		}
		k := c.Load(sim.Addr(z) + fKey)
		c.Branch(pcWalkEq, k == key, true)
		if k == key {
			break
		}
		goLeft := key < k
		c.Branch(pcWalkDir, goLeft, true)
		if goLeft {
			z = c.Load(sim.Addr(z) + fLeft)
		} else {
			z = c.Load(sim.Addr(z) + fRight)
		}
	}
	// y is the node to splice out: z itself, or its in-order successor.
	y := z
	if c.Load(sim.Addr(z)+fLeft) != 0 && c.Load(sim.Addr(z)+fRight) != 0 {
		y = c.Load(sim.Addr(z) + fRight)
		for {
			l := c.Load(sim.Addr(y) + fLeft)
			c.Branch(pcMinWalk, l != 0, true)
			if l == 0 {
				break
			}
			y = l
		}
	}
	// x is y's only child (possibly nil); xp its parent after the splice.
	x := c.Load(sim.Addr(y) + fLeft)
	if x == 0 {
		x = c.Load(sim.Addr(y) + fRight)
	}
	xp := c.Load(sim.Addr(y) + fParent)
	if x != 0 {
		c.Store(sim.Addr(x)+fParent, xp)
	}
	switch {
	case xp == 0:
		c.Store(t.rootA, x)
	case c.Load(sim.Addr(xp)+fLeft) == y:
		c.Store(sim.Addr(xp)+fLeft, x)
	default:
		c.Store(sim.Addr(xp)+fRight, x)
	}
	if y != z {
		c.Store(sim.Addr(z)+fKey, c.Load(sim.Addr(y)+fKey))
		c.Store(sim.Addr(z)+fVal, c.Load(sim.Addr(y)+fVal))
	}
	if !isRed(c, y) {
		t.deleteFixup(c, x, xp)
	}
	return sim.Addr(y)
}

// deleteFixup restores the invariants after removing a black node; x (the
// doubly-black position) may be nil, so its parent is tracked explicitly
// rather than through a mutable shared sentinel, which would make every
// pair of concurrent deletes conflict.
func (t *Tree) deleteFixup(c core.Ctx, x, xp sim.Word) {
	for x != c.Load(t.rootA) && !isRed(c, x) {
		if xp == 0 {
			break
		}
		xIsLeft := c.Load(sim.Addr(xp)+fLeft) == x
		c.Branch(pcDelSide, xIsLeft, true)
		if xIsLeft {
			w := c.Load(sim.Addr(xp) + fRight)
			wRed := isRed(c, w)
			c.Branch(pcDelRedSib, wRed, true)
			if wRed {
				setColor(c, w, false)
				setColor(c, xp, true)
				t.rotateLeft(c, xp)
				w = c.Load(sim.Addr(xp) + fRight)
			}
			wl := c.Load(sim.Addr(w) + fLeft)
			wr := c.Load(sim.Addr(w) + fRight)
			bothBlack := !isRed(c, wl) && !isRed(c, wr)
			c.Branch(pcDelNephews, bothBlack, true)
			if bothBlack {
				setColor(c, w, true)
				x = xp
				xp = c.Load(sim.Addr(x) + fParent)
				continue
			}
			if !isRed(c, wr) {
				setColor(c, wl, false)
				setColor(c, w, true)
				t.rotateRight(c, w)
				w = c.Load(sim.Addr(xp) + fRight)
				wr = c.Load(sim.Addr(w) + fRight)
			}
			setColor(c, w, isRed(c, xp))
			setColor(c, xp, false)
			if wr != 0 {
				setColor(c, wr, false)
			}
			t.rotateLeft(c, xp)
			x = c.Load(t.rootA)
			xp = 0
		} else {
			w := c.Load(sim.Addr(xp) + fLeft)
			wRed := isRed(c, w)
			c.Branch(pcDelRedSib, wRed, true)
			if wRed {
				setColor(c, w, false)
				setColor(c, xp, true)
				t.rotateRight(c, xp)
				w = c.Load(sim.Addr(xp) + fLeft)
			}
			wl := c.Load(sim.Addr(w) + fLeft)
			wr := c.Load(sim.Addr(w) + fRight)
			bothBlack := !isRed(c, wl) && !isRed(c, wr)
			c.Branch(pcDelNephews, bothBlack, true)
			if bothBlack {
				setColor(c, w, true)
				x = xp
				xp = c.Load(sim.Addr(x) + fParent)
				continue
			}
			if !isRed(c, wl) {
				setColor(c, wr, false)
				setColor(c, w, true)
				t.rotateLeft(c, w)
				w = c.Load(sim.Addr(xp) + fLeft)
				wl = c.Load(sim.Addr(w) + fLeft)
			}
			setColor(c, w, isRed(c, xp))
			setColor(c, xp, false)
			if wl != 0 {
				setColor(c, wl, false)
			}
			t.rotateRight(c, xp)
			x = c.Load(t.rootA)
			xp = 0
		}
	}
	if x != 0 {
		setColor(c, x, false)
	}
}

// The xxxCtx dispatchers route one operation to the devirtualized kernel
// copy for c's concrete type (specialized_gen.go, maintained by
// cmd/ctxgen). The type switch costs one type test per transaction body;
// in exchange the whole walk runs on direct, inlinable Load/Store/Branch
// calls instead of per-access interface dispatch. Every case performs the
// identical simulated operations — the golden cycle-identity tests pin it.

func (t *Tree) lookupCtx(c core.Ctx, key uint64) (sim.Word, bool) {
	switch cc := c.(type) {
	case rock.Ctx:
		return t.lookupRock(cc, key)
	case rock.StepCtx:
		return t.lookupRockStep(cc, key)
	case *sky.HW:
		return t.lookupSkyHW(cc, key)
	case *tl2.Txn:
		return t.lookupTL2(cc, key)
	case *sky.Txn:
		return t.lookupSky(cc, key)
	case core.Raw:
		return t.lookupRaw(cc, key)
	case core.StepRaw:
		return t.lookupRawStep(cc, key)
	default:
		return t.Lookup(c, key)
	}
}

func (t *Tree) insertCtx(c core.Ctx, key uint64, node sim.Addr) bool {
	switch cc := c.(type) {
	case rock.Ctx:
		return t.insertRock(cc, key, node)
	case rock.StepCtx:
		return t.insertRockStep(cc, key, node)
	case *sky.HW:
		return t.insertSkyHW(cc, key, node)
	case *tl2.Txn:
		return t.insertTL2(cc, key, node)
	case *sky.Txn:
		return t.insertSky(cc, key, node)
	case core.Raw:
		return t.insertRaw(cc, key, node)
	case core.StepRaw:
		return t.insertRawStep(cc, key, node)
	default:
		return t.insert(c, key, node)
	}
}

func (t *Tree) deleteCtx(c core.Ctx, key uint64) sim.Addr {
	switch cc := c.(type) {
	case rock.Ctx:
		return t.deleteRock(cc, key)
	case rock.StepCtx:
		return t.deleteRockStep(cc, key)
	case *sky.HW:
		return t.deleteSkyHW(cc, key)
	case *tl2.Txn:
		return t.deleteTL2(cc, key)
	case *sky.Txn:
		return t.deleteSky(cc, key)
	case core.Raw:
		return t.deleteRaw(cc, key)
	case core.StepRaw:
		return t.deleteRawStep(cc, key)
	default:
		return t.delete(c, key)
	}
}

// InsertOp performs a complete insert under system sys (allocate outside,
// link inside, reclaim on unsuccessful insert).
func (t *Tree) InsertOp(sys core.System, s *sim.Strand, key uint64, val sim.Word) bool {
	node := t.pool.Get(s)
	s.Store(node+fKey, key)
	s.Store(node+fVal, val)
	s.Store(node+fLeft, 0)
	s.Store(node+fRight, 0)
	s.Store(node+fColor, 1)
	inserted := false
	sys.Atomic(s, func(c core.Ctx) {
		inserted = t.insertCtx(c, key, node)
	})
	if !inserted {
		t.pool.Put(s, node)
	}
	return inserted
}

// DeleteOp performs a complete delete under system sys.
func (t *Tree) DeleteOp(sys core.System, s *sim.Strand, key uint64) bool {
	var removed sim.Addr
	sys.Atomic(s, func(c core.Ctx) {
		removed = t.deleteCtx(c, key)
	})
	if removed != 0 {
		t.pool.Put(s, removed)
		return true
	}
	return false
}

// LookupOp performs a complete lookup under system sys.
func (t *Tree) LookupOp(sys core.System, s *sim.Strand, key uint64) (sim.Word, bool) {
	var v sim.Word
	var ok bool
	sys.AtomicRO(s, func(c core.Ctx) {
		v, ok = t.lookupCtx(c, key)
	})
	return v, ok
}

// Session is a per-strand operation context: it pre-binds one closure per
// operation kind so the steady-state host cost of a complete operation is
// allocation-free. The XxxOp wrappers above allocate a fresh closure (plus
// escaping result boxes) on every call, which at millions of operations per
// experiment dominated the host allocation profile. A Session performs the
// *identical* sequence of simulated operations; only the host-side plumbing
// differs. Sessions must only be used by the strand they were created for.
type Session struct {
	t   *Tree
	sys core.System
	s   *sim.Strand

	key  uint64
	node sim.Addr

	v        sim.Word
	ok       bool
	inserted bool
	removed  sim.Addr

	lookupFn func(core.Ctx)
	insertFn func(core.Ctx)
	deleteFn func(core.Ctx)

	step *opStep // lazily-built continuation machine (StepXxx methods)
}

// NewSession builds the reusable operation context for strand s under sys.
func (t *Tree) NewSession(sys core.System, s *sim.Strand) *Session {
	ss := &Session{t: t, sys: sys, s: s}
	ss.lookupFn = func(c core.Ctx) { ss.v, ss.ok = ss.t.lookupCtx(c, ss.key) }
	ss.insertFn = func(c core.Ctx) { ss.inserted = ss.t.insertCtx(c, ss.key, ss.node) }
	ss.deleteFn = func(c core.Ctx) { ss.removed = ss.t.deleteCtx(c, ss.key) }
	return ss
}

// Lookup is LookupOp through the session's reusable closure.
func (ss *Session) Lookup(key uint64) (sim.Word, bool) {
	ss.key = key
	ss.sys.AtomicRO(ss.s, ss.lookupFn)
	return ss.v, ss.ok
}

// Insert is InsertOp through the session's reusable closure.
func (ss *Session) Insert(key uint64, val sim.Word) bool {
	t, s := ss.t, ss.s
	node := t.pool.Get(s)
	s.Store(node+fKey, key)
	s.Store(node+fVal, val)
	s.Store(node+fLeft, 0)
	s.Store(node+fRight, 0)
	s.Store(node+fColor, 1)
	ss.key, ss.node = key, node
	ss.inserted = false
	ss.sys.Atomic(s, ss.insertFn)
	if !ss.inserted {
		t.pool.Put(s, node)
	}
	return ss.inserted
}

// Delete is DeleteOp through the session's reusable closure.
func (ss *Session) Delete(key uint64) bool {
	ss.key = key
	ss.removed = 0
	ss.sys.Atomic(ss.s, ss.deleteFn)
	if ss.removed != 0 {
		ss.t.pool.Put(ss.s, ss.removed)
		return true
	}
	return false
}

// Prepopulate inserts keys directly with no cycle accounting (test setup).
func (t *Tree) Prepopulate(mem *sim.Memory, keys []uint64, val sim.Word) {
	c := core.Setup{Mem: mem}
	for _, key := range keys {
		node := t.pool.Prealloc(mem)
		mem.Poke(node+fKey, key)
		mem.Poke(node+fVal, val)
		mem.Poke(node+fLeft, 0)
		mem.Poke(node+fRight, 0)
		mem.Poke(node+fColor, 1)
		if !t.insert(c, key, node) {
			panic("rbtree: duplicate key in prepopulation")
		}
	}
}

// InsertDirect inserts with no cycle accounting (setup/validation helper).
// It reports whether the key was new.
func (t *Tree) InsertDirect(mem *sim.Memory, key uint64, val sim.Word) bool {
	c := core.Setup{Mem: mem}
	node := t.pool.Prealloc(mem)
	mem.Poke(node+fKey, key)
	mem.Poke(node+fVal, val)
	mem.Poke(node+fColor, 1)
	return t.insert(c, key, node)
}

// DeleteDirect deletes with no cycle accounting (validation helper).
func (t *Tree) DeleteDirect(mem *sim.Memory, key uint64) bool {
	return t.delete(core.Setup{Mem: mem}, key) != 0
}

// LookupDirect looks up with no cycle accounting (validation helper).
func (t *Tree) LookupDirect(mem *sim.Memory, key uint64) (sim.Word, bool) {
	return t.Lookup(core.Setup{Mem: mem}, key)
}

// CheckInvariants walks the tree directly and verifies the binary-search
// order and the red-black properties (root black, no red-red edge, equal
// black heights, consistent parent pointers). It returns the number of
// nodes, panicking on any violation; tests recover the message.
func (t *Tree) CheckInvariants(mem *sim.Memory) int {
	root := mem.Peek(t.rootA)
	if root == 0 {
		return 0
	}
	if mem.Peek(sim.Addr(root)+fColor) != 0 {
		panic("rbtree: red root")
	}
	count := 0
	var walk func(n sim.Word, min, max uint64, parent sim.Word) int
	walk = func(n sim.Word, min, max uint64, parent sim.Word) int {
		if n == 0 {
			return 1
		}
		count++
		a := sim.Addr(n)
		k := mem.Peek(a + fKey)
		if k < min || k > max {
			panic("rbtree: BST order violated")
		}
		if mem.Peek(a+fParent) != parent {
			panic("rbtree: bad parent pointer")
		}
		red := mem.Peek(a+fColor) != 0
		l := mem.Peek(a + fLeft)
		r := mem.Peek(a + fRight)
		if red {
			if l != 0 && mem.Peek(sim.Addr(l)+fColor) != 0 {
				panic("rbtree: red-red edge (left)")
			}
			if r != 0 && mem.Peek(sim.Addr(r)+fColor) != 0 {
				panic("rbtree: red-red edge (right)")
			}
		}
		var lmax, rmin uint64
		if k > 0 {
			lmax = k - 1
		}
		rmin = k + 1
		bl := walk(l, min, lmax, n)
		br := walk(r, rmin, max, n)
		if bl != br {
			panic("rbtree: unequal black heights")
		}
		if !red {
			bl++
		}
		return bl
	}
	walk(root, 0, ^uint64(0), 0)
	return count
}

// ---- Prepared-node interface (for callers that manage the allocate /
// execute / reclaim cycle themselves, e.g. the Java-collection facades
// whose atomic section is a monitor body) ----

// AllocNode takes a node from the pool and initializes it outside any
// transaction.
func (t *Tree) AllocNode(s *sim.Strand, key uint64, val sim.Word) sim.Addr {
	node := t.pool.Get(s)
	s.Store(node+fKey, key)
	s.Store(node+fVal, val)
	s.Store(node+fLeft, 0)
	s.Store(node+fRight, 0)
	s.Store(node+fColor, 1)
	return node
}

// InsertNode links a prepared node under key inside the caller's atomic
// context, reporting whether the key was absent.
func (t *Tree) InsertNode(c core.Ctx, key uint64, node sim.Addr) bool {
	return t.insertCtx(c, key, node)
}

// DeleteNode unlinks key inside the caller's atomic context, returning the
// freed node (0 if absent); the caller reclaims it after committing.
func (t *Tree) DeleteNode(c core.Ctx, key uint64) sim.Addr {
	return t.deleteCtx(c, key)
}

// FreeNode returns a node to the pool (outside any transaction).
func (t *Tree) FreeNode(s *sim.Strand, node sim.Addr) { t.pool.Put(s, node) }
