package rbtree

import (
	"testing"
	"testing/quick"

	"rocktm/internal/core"
	"rocktm/internal/locktm"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
)

func newMachine(strands int) *sim.Machine {
	cfg := sim.DefaultConfig(strands)
	cfg.MemWords = 1 << 21
	cfg.MaxCycles = 1 << 42
	return sim.New(cfg)
}

// TestDirectOpsAgainstModel drives the tree with a deterministic random
// op sequence against a Go map and validates the red-black invariants
// throughout.
func TestDirectOpsAgainstModel(t *testing.T) {
	m := newMachine(1)
	tree := New(m, 1<<14)
	mem := m.Mem()
	model := map[uint64]bool{}
	rng := uint64(12345)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 4000; i++ {
		key := next() % 512
		switch next() % 3 {
		case 0:
			got := tree.InsertDirect(mem, key, sim.Word(key*2))
			if got == model[key] {
				t.Fatalf("op %d: insert(%d) = %v, model has %v", i, key, got, model[key])
			}
			model[key] = true
		case 1:
			got := tree.DeleteDirect(mem, key)
			if got != model[key] {
				t.Fatalf("op %d: delete(%d) = %v, model %v", i, key, got, model[key])
			}
			delete(model, key)
		case 2:
			_, got := tree.LookupDirect(mem, key)
			if got != model[key] {
				t.Fatalf("op %d: lookup(%d) = %v, model %v", i, key, got, model[key])
			}
		}
		if i%64 == 0 {
			n := tree.CheckInvariants(mem)
			if n != len(model) {
				t.Fatalf("op %d: tree has %d nodes, model %d", i, n, len(model))
			}
		}
	}
	if n := tree.CheckInvariants(mem); n != len(model) {
		t.Fatalf("final: tree has %d nodes, model %d", n, len(model))
	}
}

// TestQuickSequences is a property test: any operation sequence leaves a
// valid red-black tree agreeing with a model map.
func TestQuickSequences(t *testing.T) {
	prop := func(ops []uint16) bool {
		m := newMachine(1)
		tree := New(m, 1<<13)
		mem := m.Mem()
		model := map[uint64]bool{}
		for _, op := range ops {
			key := uint64(op % 128)
			switch (op >> 7) % 3 {
			case 0:
				if tree.InsertDirect(mem, key, 1) == model[key] {
					return false
				}
				model[key] = true
			case 1:
				if tree.DeleteDirect(mem, key) != model[key] {
					return false
				}
				delete(model, key)
			case 2:
				if _, ok := tree.LookupDirect(mem, key); ok != model[key] {
					return false
				}
			}
		}
		return tree.CheckInvariants(mem) == len(model)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentMixedOps exercises the tree under an STM and under TLE-less
// locking with several strands; final contents must match a sequential
// replay (per-strand disjoint key ranges make the expected result exact).
func TestConcurrentMixedOps(t *testing.T) {
	const threads = 4
	m := newMachine(threads)
	tree := New(m, 1<<14)
	sys := sky.New(m)
	m.Run(func(s *sim.Strand) {
		base := uint64(s.ID()) * 1000
		for i := uint64(0); i < 120; i++ {
			tree.InsertOp(sys, s, base+i, sim.Word(i))
		}
		for i := uint64(0); i < 120; i += 2 {
			tree.DeleteOp(sys, s, base+i)
		}
	})
	n := tree.CheckInvariants(m.Mem())
	if n != threads*60 {
		t.Fatalf("tree has %d nodes, want %d", n, threads*60)
	}
	for tid := 0; tid < threads; tid++ {
		base := uint64(tid) * 1000
		for i := uint64(0); i < 120; i++ {
			_, ok := tree.LookupDirect(m.Mem(), base+i)
			if want := i%2 == 1; ok != want {
				t.Fatalf("key %d present=%v want %v", base+i, ok, want)
			}
		}
	}
}

// TestConcurrentSharedRange hammers one small shared key range from all
// strands under a lock system and revalidates the invariants.
func TestConcurrentSharedRange(t *testing.T) {
	const threads = 4
	m := newMachine(threads)
	tree := New(m, 1<<14)
	sys := locktm.NewOneLock(m)
	keys := make([]uint64, 0, 32)
	for k := uint64(0); k < 64; k += 2 {
		keys = append(keys, k)
	}
	tree.Prepopulate(m.Mem(), keys, 7)
	m.Run(func(s *sim.Strand) {
		for i := 0; i < 200; i++ {
			key := uint64(s.RandIntn(64))
			if s.RandIntn(2) == 0 {
				tree.InsertOp(sys, s, key, 1)
			} else {
				tree.DeleteOp(sys, s, key)
			}
		}
	})
	tree.CheckInvariants(m.Mem())
}

var _ = core.Setup{} // keep the import obvious for readers
