package msf

import (
	"rocktm/internal/alloc"
	"rocktm/internal/core"
	"rocktm/internal/sim"
)

// The per-thread edge heaps are top-down skew heaps in simulated memory,
// written against core.Ctx so the same code runs transactionally (the
// original algorithm extracts the minimum inside its main transaction) or
// privately (the optimized variant extracts after the transaction commits;
// edge additions and heap merges are always non-transactional). A skew
// heap's extract-min touches one root-to-leaf path — amortized O(log n)
// loads, stores and data-dependent branches — which is exactly the profile
// the paper describes: big enough to confound branch prediction and
// occasionally overflow hardware resources, small enough that a bounded
// store queue usually accommodates it.
//
// Heap node layout (4 words):
const (
	hWeight       = 0
	hEdge         = 1 // packed u<<32 | v
	hLeft         = 2
	hRight        = 3
	heapNodeWords = 4
)

var (
	pcHeapMeld = core.PC("msf.heap.meld")
	pcHeapDone = core.PC("msf.heap.done")
)

// newHeapPool allocates the node pool.
func newHeapPool(m *sim.Machine, capacity int) *alloc.Pool {
	return alloc.NewPool(m, heapNodeWords, capacity)
}

// packEdge packs an edge's endpoints into one word.
func packEdge(u, v uint32) sim.Word { return sim.Word(u)<<32 | sim.Word(v) }

// unpackEdge reverses packEdge.
func unpackEdge(w sim.Word) (u, v uint32) { return uint32(w >> 32), uint32(w) }

// heapMeld merges two skew heaps, returning the new root. Either argument
// may be 0. The classic top-down merge: walk the smaller root, swap its
// children, continue down what was its right spine.
func heapMeld(c core.Ctx, a, b sim.Word) sim.Word {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	wa := c.Load(sim.Addr(a) + hWeight)
	wb := c.Load(sim.Addr(b) + hWeight)
	swap := wa > wb
	c.Branch(pcHeapMeld, swap, true)
	if swap {
		a, b = b, a
	}
	root := a
	for {
		r := c.Load(sim.Addr(a) + hRight)
		l := c.Load(sim.Addr(a) + hLeft)
		c.Store(sim.Addr(a)+hRight, l)
		if r == 0 {
			c.Branch(pcHeapDone, true, true)
			c.Store(sim.Addr(a)+hLeft, b)
			return root
		}
		c.Branch(pcHeapDone, false, true)
		wr := c.Load(sim.Addr(r) + hWeight)
		wb := c.Load(sim.Addr(b) + hWeight)
		swap := wr > wb
		c.Branch(pcHeapMeld, swap, true)
		if swap {
			r, b = b, r
		}
		c.Store(sim.Addr(a)+hLeft, r)
		a = r
	}
}

// heapInsert adds a node (weight/edge fields already initialized) to the
// heap rooted at root, returning the new root.
func heapInsert(c core.Ctx, root, node sim.Word) sim.Word {
	c.Store(sim.Addr(node)+hLeft, 0)
	c.Store(sim.Addr(node)+hRight, 0)
	return heapMeld(c, root, node)
}

// heapMin peeks the minimum, returning (weight, packedEdge). The root must
// be nonzero.
func heapMin(c core.Ctx, root sim.Word) (sim.Word, sim.Word) {
	return c.Load(sim.Addr(root) + hWeight), c.Load(sim.Addr(root) + hEdge)
}

// heapExtractMin removes the minimum node, returning (node, newRoot). The
// detached node's storage belongs to the caller.
func heapExtractMin(c core.Ctx, root sim.Word) (sim.Word, sim.Word) {
	l := c.Load(sim.Addr(root) + hLeft)
	r := c.Load(sim.Addr(root) + hRight)
	return root, heapMeld(c, l, r)
}

// heapCountDirect counts nodes with no cycle accounting (test helper).
func heapCountDirect(mem *sim.Memory, root sim.Word) int {
	if root == 0 {
		return 0
	}
	return 1 +
		heapCountDirect(mem, mem.Peek(sim.Addr(root)+hLeft)) +
		heapCountDirect(mem, mem.Peek(sim.Addr(root)+hRight))
}
