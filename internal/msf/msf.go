// Package msf implements the parallel Minimum Spanning Forest algorithm of
// Kang and Bader (PPoPP 2009) that Section 8 of the paper accelerates with
// Rock's HTM. Each thread grows a minimum spanning tree with Prim's
// algorithm from its own start vertex, keeping the tree's frontier — every
// edge connecting the tree to the rest of the graph — in a pairing heap.
// When two threads' trees meet, trees and heaps are merged: if the loser's
// heap is available in the public space it is stolen outright (Case 3),
// otherwise the winner's heap is handed to the loser's owner through a
// public queue (Case 4). Transactions are used exactly where the paper
// uses them — vertex conflict resolution and public-space manipulation —
// while edge insertion and heap melding stay non-transactional on heaps
// that are provably private.
//
// Two variants are provided, as in the paper: the original (Orig) extracts
// the minimum edge inside the main transaction, which makes the
// transaction traverse heap internals and rarely commit in hardware; the
// optimized (Opt) merely *examines* the minimum inside the transaction and
// extracts it non-transactionally whenever the decision removes the heap
// from the public space anyway (Cases 1 and 3).
package msf

import (
	"fmt"

	"rocktm/internal/alloc"
	"rocktm/internal/core"
	"rocktm/internal/graphgen"
	"rocktm/internal/sim"
)

// Variant selects the original or optimized main transaction.
type Variant int

// The two benchmark variants.
const (
	Orig Variant = iota
	Opt
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	if v == Opt {
		return "opt"
	}
	return "orig"
}

// Branch sites.
var (
	pcFind    = core.PC("msf.find")
	pcCase    = core.PC("msf.case")
	pcArcSkip = core.PC("msf.arc.skip")
)

// decision encodes the outcome of one main transaction.
type decision int

const (
	dNone     decision = iota
	dStolen            // my heap was stolen; reset and start over
	dEmpty             // heap empty; tree complete
	dClaim             // Case 1: v was free and is now mine
	dInternal          // Case 2: v already in my tree; edge discarded
	dSteal             // Case 3: stole the other thread's heap
	dHandoff           // Case 4: my heap went to the other thread's queue
	dMergeOwn          // v's tree was already my responsibility; merged in place
	dBusy              // other thread's heap unavailable; retry hoping to steal
)

// Handoff record layout (one cache line).
const (
	rHeap    = 0
	rTree    = 1
	rW       = 2
	rEdge    = 3
	rNext    = 4
	recWords = sim.WordsPerLine
)

// workItem is a privately held (heap, tree, connecting edge) bundle popped
// from the pending queue.
type workItem struct {
	heap sim.Word
	tree sim.Word
	w    sim.Word
	edge sim.Word
	// root caches find(tree). Queued trees are merged only by their
	// responsible thread (stealing checks heapTree, which never names a
	// queued tree), so this thread alone changes the answer and can keep
	// the cache exact without re-walking the union-find structure.
	root sim.Word
}

// Result summarizes one MSF run.
type Result struct {
	TotalWeight uint64
	Edges       int
	Trees       int // forest components claimed as fresh starts
}

// Runner owns all shared state of one MSF execution.
type Runner struct {
	g       *graphgen.Graph
	sys     core.System
	variant Variant
	threads int

	owner     sim.Addr // per vertex: owning tree id (0 = unclaimed)
	ufParent  sim.Addr // union-find over tree ids (1-based)
	treeOwner sim.Addr // tree id -> responsible thread

	flag     []sim.Addr // per thread: heap is in the public space
	heapRoot []sim.Addr // per thread: heap root pointer
	heapTree []sim.Addr // per thread: tree id the heap belongs to
	pending  []sim.Addr // per thread: handoff queue head
	idle     []sim.Addr // per thread: idle flag (termination)
	done     sim.Addr
	startCur sim.Addr
	tidCur   sim.Addr

	heapPool *alloc.Pool
	recPool  *alloc.Pool

	work        [][]workItem // per-thread private lists of adopted-but-pending heaps
	startStride int          // coprime stride spreading fresh start vertices
	weight      []uint64
	edges       []int
	starts      []int
}

// NewRunner lays out the algorithm's state on machine m for the given
// graph, system and variant.
func NewRunner(m *sim.Machine, g *graphgen.Graph, sys core.System, variant Variant) *Runner {
	mem := m.Mem()
	threads := m.Config().Strands
	r := &Runner{
		g:         g,
		sys:       sys,
		variant:   variant,
		threads:   threads,
		owner:     mem.AllocLines(g.N),
		ufParent:  mem.AllocLines(g.N + threads + 2),
		treeOwner: mem.AllocLines(g.N + threads + 2),
		done:      mem.AllocLines(sim.WordsPerLine),
		startCur:  mem.AllocLines(sim.WordsPerLine),
		tidCur:    mem.AllocLines(sim.WordsPerLine),
		heapPool:  newHeapPool(m, 2*g.M+2*g.N+threads*8+64),
		recPool:   alloc.NewPool(m, recWords, g.N+4*threads+64),
		work:      make([][]workItem, threads),
		weight:    make([]uint64, threads),
		edges:     make([]int, threads),
		starts:    make([]int, threads),
	}
	mem.Poke(r.tidCur, 1) // tree ids start at 1; 0 means unclaimed
	r.startStride = 1
	if g.N > 3 {
		r.startStride = int(float64(g.N) * 0.6180339887)
		for gcd(r.startStride, g.N) != 1 {
			r.startStride++
		}
	}
	for t := 0; t < threads; t++ {
		r.flag = append(r.flag, mem.AllocLines(sim.WordsPerLine))
		r.heapRoot = append(r.heapRoot, mem.AllocLines(sim.WordsPerLine))
		r.heapTree = append(r.heapTree, mem.AllocLines(sim.WordsPerLine))
		r.pending = append(r.pending, mem.AllocLines(sim.WordsPerLine))
		r.idle = append(r.idle, mem.AllocLines(sim.WordsPerLine))
	}
	return r
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// find chases union-find parents to the root (no compression inside
// transactions; the non-transactional paths compress afterwards).
func (r *Runner) find(c core.Ctx, tid sim.Word) sim.Word {
	for {
		p := c.Load(r.ufParent + sim.Addr(tid))
		done := p == tid
		c.Branch(pcFind, done, true)
		if done {
			return tid
		}
		tid = p
	}
}

// compress path-halves from tid toward the root outside any transaction;
// racy plain stores are safe because every written value is an ancestor.
func (r *Runner) compress(s *sim.Strand, tid sim.Word) {
	for {
		p := s.Load(r.ufParent + sim.Addr(tid))
		if p == tid {
			return
		}
		gp := s.Load(r.ufParent + sim.Addr(p))
		if gp == p {
			return
		}
		s.Store(r.ufParent+sim.Addr(tid), gp)
		tid = gp
	}
}

// addArcs inserts all of v's arcs into the (private) heap rooted at root,
// skipping arcs that obviously lead back into tree rMine, and returns the
// new root.
func (r *Runner) addArcs(s *sim.Strand, root sim.Word, v uint32, rMine sim.Word) sim.Word {
	raw := core.Raw{S: s}
	lo, hi := r.g.Arcs(raw, v)
	for i := lo; i < hi; i++ {
		dst, w := r.g.Arc(raw, i)
		ownDst := s.Load(r.owner + sim.Addr(dst))
		skip := ownDst == rMine && rMine != 0
		s.Branch(pcArcSkip, skip)
		if skip {
			continue
		}
		n := r.heapPool.Get(s)
		s.Store(n+hWeight, w)
		s.Store(n+hEdge, packEdge(v, dst))
		root = heapInsert(raw, root, sim.Word(n))
	}
	return root
}

// worker is the per-thread main loop.
func (r *Runner) worker(s *sim.Strand) {
	me := s.ID()
	for {
		r.drain(s)
		if s.Load(r.flag[me]) == 0 || s.Load(r.heapRoot[me]) == 0 {
			// No live public heap: adopt queued work, or claim a fresh
			// start vertex, or go idle.
			if n := len(r.work[me]); n > 0 {
				item := r.work[me][n-1]
				r.work[me] = r.work[me][:n-1]
				r.adopt(s, item)
				continue
			}
			if r.startTree(s) {
				continue
			}
			if r.idleWait(s) {
				return
			}
			continue
		}
		r.mainStep(s)
	}
}

// drain pops every pending handoff record into the private work list. The
// pop must run under the same synchronization system as the push (which
// happens inside the Case 4 transaction): a plain CAS pop can interleave
// with a software transaction's buffered push and resurrect a record that
// was already popped and recycled.
func (r *Runner) drain(s *sim.Strand) {
	me := s.ID()
	for {
		if s.Load(r.pending[me]) == 0 {
			return
		}
		var head sim.Word
		var item workItem
		r.sys.Atomic(s, func(c core.Ctx) {
			head = c.Load(r.pending[me])
			if head == 0 {
				return
			}
			c.Store(r.pending[me], c.Load(sim.Addr(head)+rNext))
			item = workItem{
				heap: c.Load(sim.Addr(head) + rHeap),
				tree: c.Load(sim.Addr(head) + rTree),
				w:    c.Load(sim.Addr(head) + rW),
				edge: c.Load(sim.Addr(head) + rEdge),
			}
		})
		if head == 0 {
			return
		}
		item.root = r.find(core.Raw{S: s}, item.tree)
		r.compress(s, item.tree)
		r.work[me] = append(r.work[me], item)
		r.recPool.Put(s, sim.Addr(head))
	}
}

// startPerm maps the shared start cursor to a spread-out vertex sequence
// (a bijection on [0, N) via a stride coprime with N).
func (r *Runner) startPerm(idx sim.Word) sim.Word {
	return (idx * sim.Word(r.startStride)) % sim.Word(r.g.N)
}

// startTree claims an unowned vertex as a fresh tree and builds its
// initial heap. It returns false once the vertex cursor is exhausted.
func (r *Runner) startTree(s *sim.Strand) bool {
	me := s.ID()
	for {
		idx := s.Add(r.startCur, 1) - 1
		if idx >= sim.Word(r.g.N) {
			return false
		}
		// Spread consecutive start claims across the graph (threads that
		// start on adjacent vertices collide immediately and spend the run
		// merging instead of growing).
		v := r.startPerm(idx)
		if s.Load(r.owner+sim.Addr(v)) != 0 {
			continue
		}
		tid := s.Add(r.tidCur, 1) - 1
		claimed := false
		r.sys.Atomic(s, func(c core.Ctx) {
			claimed = false
			if c.Load(r.owner+sim.Addr(v)) != 0 {
				return
			}
			c.Store(r.owner+sim.Addr(v), tid)
			c.Store(r.ufParent+sim.Addr(tid), tid)
			c.Store(r.treeOwner+sim.Addr(tid), sim.Word(me))
			claimed = true
		})
		if !claimed {
			continue
		}
		r.starts[me]++
		root := r.addArcs(s, 0, uint32(v), tid)
		if root == 0 {
			continue // isolated vertex: a complete single-node tree
		}
		// Publication must be atomic under the same system as the readers:
		// a plain store could interleave with a lock-held (or software-
		// transactional) Case 3 check and let a thief pair the new heap
		// with the old tree identity.
		r.sys.Atomic(s, func(c core.Ctx) {
			c.Store(r.heapRoot[me], root)
			c.Store(r.heapTree[me], tid)
			c.Store(r.flag[me], 1)
		})
		return true
	}
}

// adopt installs a handed-off (heap, tree) as this thread's current tree.
// The connecting edge that rode along is simply re-inserted into the heap:
// re-inserting an extracted minimum is always safe (it will surface again
// when it is minimal, and the usual case analysis will resolve it), and it
// preserves the invariant that a tree's single heap contains every edge
// crossing out of it. The install transaction keeps the heap private until
// the edge is back inside, so the invariant never has a visible gap.
func (r *Runner) adopt(s *sim.Strand, item workItem) {
	me := s.ID()
	r.sys.Atomic(s, func(c core.Ctx) {
		rg := r.find(c, item.tree)
		c.Store(r.heapTree[me], rg)
		c.Store(r.treeOwner+sim.Addr(rg), sim.Word(me))
		c.Store(r.heapRoot[me], item.heap)
	})
	r.compress(s, item.tree)
	r.reinsertEdge(s, item.w, item.edge)
	r.publish(s)
}

// publish atomically returns this thread's heap to the public space after a
// private phase.
func (r *Runner) publish(s *sim.Strand) {
	me := s.ID()
	r.sys.Atomic(s, func(c core.Ctx) {
		c.Store(r.flag[me], 1)
	})
}

// reinsertEdge pushes an in-flight connecting edge back into this thread's
// (private) heap.
func (r *Runner) reinsertEdge(s *sim.Strand, w, edge sim.Word) {
	me := s.ID()
	raw := core.Raw{S: s}
	n := r.heapPool.Get(s)
	s.Store(n+hWeight, w)
	s.Store(n+hEdge, edge)
	root := heapInsert(raw, s.Load(r.heapRoot[me]), sim.Word(n))
	s.Store(r.heapRoot[me], root)
}

// mainStep runs one iteration of the paper's main transaction: take (or
// examine) the heap minimum and resolve the vertex it leads to. When the
// edge leads into a tree whose heap is momentarily out of the public space
// (its owner is in a private phase), the step waits briefly for it to
// reappear — stealing (Case 3) keeps the merged tree's frontier with the
// requester, while handing off (Case 4) funnels every collision into one
// victim's queue — and only falls back to the handoff after a few rounds.
func (r *Runner) mainStep(s *sim.Strand) {
	for busy := 0; ; busy++ {
		var dec decision
		if r.variant == Orig {
			dec = r.stepExtractInside(s, busy >= busyPatience)
		} else {
			dec = r.stepPeek(s, busy >= busyPatience)
		}
		if dec != dBusy {
			return
		}
		core.Backoff(s, busy)
	}
}

// busyPatience is how many rounds a step waits for a busy heap before
// giving up and handing its own heap off.
const busyPatience = 6

// postResolve performs the non-transactional tail of a resolution.
// alreadyExtracted says the consumed edge is already out of the heap (the
// Orig variant extracts inside its transaction).
func (r *Runner) postResolve(s *sim.Strand, dec decision, w sim.Word, v uint32,
	rMine, rv, stolen, stolenTid sim.Word, alreadyExtracted bool) {
	me := s.ID()
	raw := core.Raw{S: s}
	switch dec {
	case dClaim:
		// Heap is private now: extract the consumed edge if still in the
		// heap, add v's arcs, account the edge, republish.
		if !alreadyExtracted {
			r.extractPrivate(s)
		}
		root := s.Load(r.heapRoot[me])
		root = r.addArcs(s, root, v, rMine)
		s.Store(r.heapRoot[me], root)
		r.weight[me] += uint64(w)
		r.edges[me]++
		r.publish(s)
	case dInternal:
		// Edge discarded; it left the heap transactionally (Opt Case 2) or
		// in the Orig extraction, so nothing remains here.
	case dSteal:
		if !alreadyExtracted {
			r.extractPrivate(s)
		}
		root := heapMeld(raw, s.Load(r.heapRoot[me]), stolen)
		s.Store(r.heapRoot[me], root)
		r.weight[me] += uint64(w)
		r.edges[me]++
		r.compress(s, stolenTid)
		r.publish(s)
	case dMergeOwn:
		if !alreadyExtracted {
			r.extractPrivate(s)
		}
		r.weight[me] += uint64(w)
		r.edges[me]++
		r.compress(s, rv)
		// The merged tree may have a heap sitting in my pending queue or
		// private work list; its frontier must rejoin this tree's single
		// heap before anything else is extracted, or the cut property
		// breaks.
		r.drain(s)
		r.absorbMerged(s, rv, rMine)
		r.publish(s)
	case dHandoff, dStolen, dEmpty:
		// Nothing: the heap is gone (handoff), was taken (stolen), or no
		// private work remains.
	}
}

// absorbMerged melds every queued work item whose tree was just united
// with the current tree (cached root == rv) into the current (private)
// heap, re-inserting the items' in-flight connecting edges. The selection
// uses the cached roots — no union-find walks — because only this thread
// ever merges its queued trees.
func (r *Runner) absorbMerged(s *sim.Strand, rv, rMine sim.Word) {
	me := s.ID()
	raw := core.Raw{S: s}
	kept := r.work[me][:0]
	for _, item := range r.work[me] {
		if item.root != rv && item.root != rMine {
			kept = append(kept, item)
			continue
		}
		root := heapMeld(raw, s.Load(r.heapRoot[me]), item.heap)
		s.Store(r.heapRoot[me], root)
		r.reinsertEdge(s, item.w, item.edge)
	}
	r.work[me] = kept
}

// extractPrivate removes the minimum from the (private) heap and returns
// the node to the pool.
func (r *Runner) extractPrivate(s *sim.Strand) {
	me := s.ID()
	raw := core.Raw{S: s}
	root := s.Load(r.heapRoot[me])
	if root == 0 {
		return
	}
	node, newRoot := heapExtractMin(raw, root)
	s.Store(r.heapRoot[me], newRoot)
	r.heapPool.Put(s, sim.Addr(node))
}

// stepExtractInside is the Orig variant: one transaction that extracts the
// minimum and resolves it. The heap traversal inside the transaction is
// what makes this "too big" for best-effort HTM (Section 8).
// (The Orig variant has already extracted the minimum by the time the case
// is known, so it cannot wait out a busy peer; it always hands off.)
func (r *Runner) stepExtractInside(s *sim.Strand, _ bool) decision {
	me := s.ID()
	rec := r.recPool.Get(s)
	var (
		dec       decision
		w         sim.Word
		v         uint32
		ov        sim.Word
		rMine, rv sim.Word
		stolen    sim.Word
		stolenTid sim.Word
		node      sim.Word
	)
	r.sys.Atomic(s, func(c core.Ctx) {
		dec, node, stolen, stolenTid, rv, ov = dNone, 0, 0, 0, 0, 0
		if c.Load(r.flag[me]) == 0 {
			dec = dStolen
			return
		}
		root := c.Load(r.heapRoot[me])
		if root == 0 {
			dec = dEmpty
			return
		}
		rMine = r.find(c, c.Load(r.heapTree[me]))
		var newRoot sim.Word
		node, newRoot = heapExtractMin(c, root)
		c.Store(r.heapRoot[me], newRoot)
		w = c.Load(sim.Addr(node) + hWeight)
		uv := c.Load(sim.Addr(node) + hEdge)
		_, v = unpackEdge(uv)
		ov = c.Load(r.owner + sim.Addr(v))
		if ov == 0 {
			c.Store(r.owner+sim.Addr(v), rMine)
			c.Store(r.flag[me], 0)
			dec = dClaim
			return
		}
		rv = r.find(c, ov)
		same := rv == rMine
		c.Branch(pcCase, same, true)
		if same {
			dec = dInternal
			return
		}
		tOwn := c.Load(r.treeOwner + sim.Addr(rv))
		if tOwn == sim.Word(me) {
			c.Store(r.ufParent+sim.Addr(rv), rMine)
			c.Store(r.flag[me], 0)
			dec = dMergeOwn
			return
		}
		if c.Load(r.flag[tOwn]) == 1 && c.Load(r.heapTree[tOwn]) == rv {
			stolen = c.Load(r.heapRoot[tOwn])
			stolenTid = rv
			c.Store(r.flag[tOwn], 0)
			c.Store(r.ufParent+sim.Addr(rv), rMine)
			c.Store(r.flag[me], 0)
			dec = dSteal
			return
		}
		c.Store(sim.Addr(rec)+rHeap, c.Load(r.heapRoot[me]))
		c.Store(sim.Addr(rec)+rTree, rMine)
		c.Store(sim.Addr(rec)+rW, w)
		c.Store(sim.Addr(rec)+rEdge, uv)
		c.Store(sim.Addr(rec)+rNext, c.Load(r.pending[tOwn]))
		c.Store(r.pending[tOwn], sim.Word(rec))
		c.Store(r.treeOwner+sim.Addr(rMine), tOwn)
		c.Store(r.flag[me], 0)
		c.Store(r.heapRoot[me], 0)
		c.Store(r.heapTree[me], 0)
		dec = dHandoff
	})
	if dec != dHandoff {
		r.recPool.Put(s, rec)
	}
	if node != 0 && dec != dStolen && dec != dEmpty {
		r.heapPool.Put(s, sim.Addr(node))
	}
	if dec == dBusy {
		return dec
	}
	r.flattenOwner(s, dec, v, ov, rv, rMine)
	r.postResolve(s, dec, w, v, rMine, rv, stolen, stolenTid, true)
	return dec
}

// stepPeek is the Opt variant: examine the minimum inside the transaction
// and extract it transactionally only in the cases that keep the heap
// public (Cases 2 and 4); Cases 1 and 3 extract after commit, privately.
func (r *Runner) stepPeek(s *sim.Strand, forceHandoff bool) decision {
	me := s.ID()
	rec := r.recPool.Get(s)
	var (
		dec       decision
		w         sim.Word
		v         uint32
		ov        sim.Word
		rMine, rv sim.Word
		stolen    sim.Word
		stolenTid sim.Word
		node      sim.Word
	)
	r.sys.Atomic(s, func(c core.Ctx) {
		dec, node, stolen, stolenTid, rv, ov = dNone, 0, 0, 0, 0, 0
		if c.Load(r.flag[me]) == 0 {
			dec = dStolen
			return
		}
		root := c.Load(r.heapRoot[me])
		if root == 0 {
			dec = dEmpty
			return
		}
		rMine = r.find(c, c.Load(r.heapTree[me]))
		var uv sim.Word
		w, uv = heapMin(c, root)
		_, v = unpackEdge(uv)
		ov = c.Load(r.owner + sim.Addr(v))
		if ov == 0 {
			c.Store(r.owner+sim.Addr(v), rMine)
			c.Store(r.flag[me], 0)
			dec = dClaim // extraction deferred: heap just went private
			return
		}
		rv = r.find(c, ov)
		same := rv == rMine
		c.Branch(pcCase, same, true)
		if same {
			// Case 2: extract transactionally (heap stays public).
			var newRoot sim.Word
			node, newRoot = heapExtractMin(c, root)
			c.Store(r.heapRoot[me], newRoot)
			dec = dInternal
			return
		}
		tOwn := c.Load(r.treeOwner + sim.Addr(rv))
		if tOwn == sim.Word(me) {
			c.Store(r.ufParent+sim.Addr(rv), rMine)
			c.Store(r.flag[me], 0)
			dec = dMergeOwn // extraction deferred
			return
		}
		if c.Load(r.flag[tOwn]) == 1 && c.Load(r.heapTree[tOwn]) == rv {
			stolen = c.Load(r.heapRoot[tOwn])
			stolenTid = rv
			c.Store(r.flag[tOwn], 0)
			c.Store(r.ufParent+sim.Addr(rv), rMine)
			c.Store(r.flag[me], 0)
			dec = dSteal // extraction deferred
			return
		}
		// Case 4: extract transactionally, then hand off the remainder.
		if !forceHandoff {
			dec = dBusy
			return
		}
		var newRoot sim.Word
		node, newRoot = heapExtractMin(c, root)
		c.Store(sim.Addr(rec)+rHeap, newRoot)
		c.Store(sim.Addr(rec)+rTree, rMine)
		c.Store(sim.Addr(rec)+rW, w)
		c.Store(sim.Addr(rec)+rEdge, uv)
		c.Store(sim.Addr(rec)+rNext, c.Load(r.pending[tOwn]))
		c.Store(r.pending[tOwn], sim.Word(rec))
		c.Store(r.treeOwner+sim.Addr(rMine), tOwn)
		c.Store(r.flag[me], 0)
		c.Store(r.heapRoot[me], 0)
		c.Store(r.heapTree[me], 0)
		dec = dHandoff
	})
	if dec != dHandoff {
		r.recPool.Put(s, rec)
	}
	if node != 0 {
		r.heapPool.Put(s, sim.Addr(node))
	}
	if dec == dBusy {
		return dec
	}
	r.flattenOwner(s, dec, v, ov, rv, rMine)
	r.postResolve(s, dec, w, v, rMine, rv, stolen, stolenTid, false)
	return dec
}

// flattenOwner keeps union-find chains short after a resolution: it
// path-halves from the tree id the vertex recorded at claim time, and
// rewrites owner[v] to the (post-union) root. The plain stores race with
// other threads' transactions only in the benign direction — any value
// written is an ancestor of the true root, and a doomed reader simply
// retries.
func (r *Runner) flattenOwner(s *sim.Strand, dec decision, v uint32, ov, rv, rMine sim.Word) {
	if ov == 0 || rv == 0 {
		return
	}
	target := rv
	if dec == dSteal || dec == dMergeOwn {
		target = rMine
	}
	if ov != target {
		s.Store(r.owner+sim.Addr(v), target)
	}
	r.compress(s, ov)
}

// idleWait parks the thread in the termination protocol: it returns true
// when the whole computation is finished, or false when new work arrived
// in the pending queue.
func (r *Runner) idleWait(s *sim.Strand) bool {
	me := s.ID()
	s.Store(r.idle[me], 1)
	for spin := 0; ; spin++ {
		if s.Load(r.pending[me]) != 0 {
			s.Store(r.idle[me], 0)
			return false
		}
		if s.Load(r.done) != 0 {
			return true
		}
		if me == 0 {
			all := true
			for t := 0; t < r.threads && all; t++ {
				all = s.Load(r.idle[t]) != 0
			}
			for t := 0; t < r.threads && all; t++ {
				all = s.Load(r.pending[t]) == 0
			}
			if all {
				s.Store(r.done, 1)
				return true
			}
		}
		core.Backoff(s, min(spin, 10))
	}
}

// Run executes the algorithm on machine m and returns the combined result.
// The runner must have been built on the same machine.
func (r *Runner) Run(m *sim.Machine) Result {
	m.Run(r.worker)
	res := Result{}
	for t := 0; t < r.threads; t++ {
		res.TotalWeight += r.weight[t]
		res.Edges += r.edges[t]
		res.Trees += r.starts[t]
	}
	return res
}

// Validate compares the run's result against sequential Kruskal on the
// same edge list, returning an error on any mismatch.
func (r *Runner) Validate(res Result) error {
	wantW, wantE := graphgen.KruskalWeight(r.g.N, r.g.Edges())
	if res.TotalWeight != wantW || res.Edges != wantE {
		return fmt.Errorf("msf: got weight=%d edges=%d, Kruskal says weight=%d edges=%d",
			res.TotalWeight, res.Edges, wantW, wantE)
	}
	return nil
}
