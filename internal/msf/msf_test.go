package msf

import (
	"bytes"
	"testing"
	"testing/quick"

	"rocktm/internal/core"
	"rocktm/internal/graphgen"
	"rocktm/internal/locktm"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
	"rocktm/internal/tle"
)

func newMachine(strands, memWords int) *sim.Machine {
	cfg := sim.DefaultConfig(strands)
	cfg.MemWords = memWords
	cfg.MaxCycles = 1 << 44
	return sim.New(cfg)
}

// TestHeapSortsRandomInputs is the pairing-heap property test: inserting
// random weights and extracting them all yields a sorted sequence.
func TestHeapSortsRandomInputs(t *testing.T) {
	prop := func(weights []uint16) bool {
		m := newMachine(1, 1<<20)
		pool := newHeapPool(m, len(weights)+1)
		ok := true
		m.Run(func(s *sim.Strand) {
			raw := core.Raw{S: s}
			var root sim.Word
			for i, w := range weights {
				n := pool.Get(s)
				s.Store(n+hWeight, sim.Word(w))
				s.Store(n+hEdge, packEdge(uint32(i), uint32(i)))
				root = heapInsert(raw, root, sim.Word(n))
			}
			last := sim.Word(0)
			for i := 0; i < len(weights); i++ {
				if root == 0 {
					ok = false
					return
				}
				w, _ := heapMin(raw, root)
				if w < last {
					ok = false
					return
				}
				last = w
				var node sim.Word
				node, root = heapExtractMin(raw, root)
				pool.Put(s, sim.Addr(node))
			}
			if root != 0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestHeapMeldPreservesContents melds two heaps and drains them.
func TestHeapMeldPreservesContents(t *testing.T) {
	m := newMachine(1, 1<<20)
	pool := newHeapPool(m, 256)
	m.Run(func(s *sim.Strand) {
		raw := core.Raw{S: s}
		var a, b sim.Word
		for i := 0; i < 50; i++ {
			n := pool.Get(s)
			s.Store(n+hWeight, sim.Word(s.RandIntn(1000)))
			s.Store(n+hEdge, 0)
			if i%2 == 0 {
				a = heapInsert(raw, a, sim.Word(n))
			} else {
				b = heapInsert(raw, b, sim.Word(n))
			}
		}
		root := heapMeld(raw, a, b)
		if got := heapCountDirect(m.Mem(), root); got != 50 {
			t.Errorf("melded heap has %d nodes, want 50", got)
		}
		last := sim.Word(0)
		for i := 0; i < 50; i++ {
			w, _ := heapMin(raw, root)
			if w < last {
				t.Fatalf("heap order violated: %d after %d", w, last)
			}
			last = w
			_, root = heapExtractMin(raw, root)
		}
		if root != 0 {
			t.Error("heap not empty after draining")
		}
	})
}

// msfSystems enumerates the synchronization systems MSF runs under in
// tests.
func msfSystems(m *sim.Machine) map[string]core.System {
	return map[string]core.System{
		"lock": locktm.NewOneLock(m),
		"sky":  sky.New(m),
		"le":   tle.New("le", tle.SpinAdapter{L: locktm.NewSpinLock(m.Mem())}, tle.DefaultPolicy()),
	}
}

// TestMSFMatchesKruskal runs both variants under every system and several
// thread counts on a small road grid and requires the exact Kruskal
// weight.
func TestMSFMatchesKruskal(t *testing.T) {
	for _, variant := range []Variant{Orig, Opt} {
		for _, threads := range []int{1, 2, 4} {
			for _, sysName := range []string{"lock", "sky", "le"} {
				name := variant.String() + "-" + sysName + "-t" + string(rune('0'+threads))
				t.Run(name, func(t *testing.T) {
					m := newMachine(threads, 1<<22)
					g := graphgen.Roadmap(m, 24, 24, 0.05, 7)
					sys := msfSystems(m)[sysName]
					r := NewRunner(m, g, sys, variant)
					res := r.Run(m)
					if err := r.Validate(res); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestMSFSeq is the sequential baseline: Orig variant, unprotected atomic
// blocks, one thread.
func TestMSFSeq(t *testing.T) {
	m := newMachine(1, 1<<22)
	g := graphgen.Roadmap(m, 30, 30, 0.1, 3)
	r := NewRunner(m, g, locktm.NewSeq(), Orig)
	res := r.Run(m)
	if err := r.Validate(res); err != nil {
		t.Fatal(err)
	}
	if res.Edges != g.N-1 {
		t.Fatalf("connected grid must give a spanning tree: %d edges for %d vertices", res.Edges, g.N)
	}
}

// TestMSFQuickGraphs is a property test over random graph shapes.
func TestMSFQuickGraphs(t *testing.T) {
	prop := func(seed uint64, wsel, hsel uint8) bool {
		w := 4 + int(wsel%12)
		h := 4 + int(hsel%12)
		m := newMachine(3, 1<<22)
		g := graphgen.Roadmap(m, w, h, 0.1, seed)
		r := NewRunner(m, g, msfSystems(m)["le"], Opt)
		res := r.Run(m)
		return r.Validate(res) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestGraphgenDIMACSRoundTrip writes and re-reads a graph.
func TestGraphgenDIMACSRoundTrip(t *testing.T) {
	n, edges := graphgen.RoadmapEdges(8, 8, 0.2, 1000, 5)
	wantW, wantE := graphgen.KruskalWeight(n, edges)
	var buf bytes.Buffer
	if err := graphgen.WriteDIMACS(&buf, n, edges); err != nil {
		t.Fatal(err)
	}
	n2, edges2, err := graphgen.ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != n {
		t.Fatalf("n = %d, want %d", n2, n)
	}
	gotW, gotE := graphgen.KruskalWeight(n2, edges2)
	if gotW != wantW || gotE != wantE {
		t.Fatalf("MSF after round trip = (%d,%d), want (%d,%d)", gotW, gotE, wantW, wantE)
	}
}
