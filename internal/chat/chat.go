// Package chat is the stand-in for the VolanoMark experiment mentioned at
// the end of Section 7.2: a chat server whose rooms are protected by
// per-room monitors, run with TLE emitted-and-enabled, emitted-but-disabled
// (measuring the code-bloat cost), and not emitted at all. It is the "real
// application" counterpart to the microbenchmarks: critical sections of
// mixed size and contention, some of which profit from elision and some of
// which do not.
package chat

import (
	"rocktm/internal/core"
	"rocktm/internal/jvm"
	"rocktm/internal/sim"
)

const ringSize = 64 // messages retained per room (power of two)

var (
	pcPostWrap = core.PC("chat.post.wrap")
	pcReadSkip = core.PC("chat.read.skip")
)

// Room is one chat room: a monitor, a member count, and a ring of recent
// messages.
type Room struct {
	mon     *jvm.Monitor
	head    sim.Addr // message sequence number
	members sim.Addr
	ring    sim.Addr // ringSize message words
}

// Server is the chat server.
type Server struct {
	vm    *jvm.JVM
	rooms []*Room
}

// NewServer builds a server with the given number of rooms.
func NewServer(m *sim.Machine, vm *jvm.JVM, rooms int) *Server {
	srv := &Server{vm: vm}
	for i := 0; i < rooms; i++ {
		srv.rooms = append(srv.rooms, &Room{
			mon:     vm.NewMonitor(m),
			head:    m.Mem().AllocLines(sim.WordsPerLine),
			members: m.Mem().AllocLines(sim.WordsPerLine),
			ring:    m.Mem().AllocLines(ringSize),
		})
	}
	return srv
}

// Rooms returns the number of rooms.
func (srv *Server) Rooms() int { return len(srv.rooms) }

// Join adds a member to room i.
func (srv *Server) Join(s *sim.Strand, i int) {
	r := srv.rooms[i]
	srv.vm.Synchronized(s, r.mon, func(c core.Ctx) {
		c.Store(r.members, c.Load(r.members)+1)
	})
}

// Leave removes a member from room i.
func (srv *Server) Leave(s *sim.Strand, i int) {
	r := srv.rooms[i]
	srv.vm.Synchronized(s, r.mon, func(c core.Ctx) {
		m := c.Load(r.members)
		if m > 0 {
			c.Store(r.members, m-1)
		}
	})
}

// Post appends a message to room i and returns its sequence number.
func (srv *Server) Post(s *sim.Strand, i int, msg sim.Word) sim.Word {
	r := srv.rooms[i]
	var seq sim.Word
	srv.vm.Synchronized(s, r.mon, func(c core.Ctx) {
		seq = c.Load(r.head)
		slot := seq & (ringSize - 1)
		c.Branch(pcPostWrap, slot == 0, false)
		c.Store(r.ring+sim.Addr(slot), msg)
		c.Store(r.head, seq+1)
	})
	return seq
}

// ReadRecent sums the most recent n messages of room i (the fan-out a chat
// server does per connection), returning the checksum.
func (srv *Server) ReadRecent(s *sim.Strand, i, n int) sim.Word {
	r := srv.rooms[i]
	var sum sim.Word
	srv.vm.Synchronized(s, r.mon, func(c core.Ctx) {
		sum = 0
		head := c.Load(r.head)
		for k := 0; k < n; k++ {
			if sim.Word(k) >= head {
				c.Branch(pcReadSkip, true, true)
				break
			}
			slot := (head - 1 - sim.Word(k)) & (ringSize - 1)
			sum += c.Load(r.ring + sim.Addr(slot))
		}
	})
	return sum
}

// MessageCount returns room i's total posted messages (validation).
func (srv *Server) MessageCount(mem *sim.Memory, i int) sim.Word {
	return mem.Peek(srv.rooms[i].head)
}
