package chat

import (
	"testing"

	"rocktm/internal/jvm"
	"rocktm/internal/sim"
	"rocktm/internal/tle"
)

func newMachine(strands int) *sim.Machine {
	cfg := sim.DefaultConfig(strands)
	cfg.MemWords = 1 << 20
	cfg.MaxCycles = 1 << 44
	return sim.New(cfg)
}

// TestMessageCountsExact posts a known number of messages per room under
// concurrency; counts must be exact for every TLE configuration.
func TestMessageCountsExact(t *testing.T) {
	for _, elide := range []bool{true, false} {
		const threads, rooms, posts = 4, 3, 200
		m := newMachine(threads)
		vm := jvm.New(m, tle.DefaultPolicy())
		vm.Elide = elide
		srv := NewServer(m, vm, rooms)
		m.Run(func(s *sim.Strand) {
			room := s.ID() % rooms
			srv.Join(s, room)
			for i := 0; i < posts; i++ {
				srv.Post(s, i%rooms, sim.Word(i))
				srv.ReadRecent(s, room, 4)
			}
			srv.Leave(s, room)
		})
		var total sim.Word
		for r := 0; r < rooms; r++ {
			total += srv.MessageCount(m.Mem(), r)
		}
		if total != threads*posts {
			t.Fatalf("elide=%v: %d messages recorded, want %d", elide, total, threads*posts)
		}
	}
}

// TestSequenceNumbersUnique: concurrent posters to one room must receive
// distinct sequence numbers.
func TestSequenceNumbersUnique(t *testing.T) {
	const threads, posts = 6, 100
	m := newMachine(threads)
	vm := jvm.New(m, tle.DefaultPolicy())
	srv := NewServer(m, vm, 1)
	seqs := make([][]sim.Word, threads)
	m.Run(func(s *sim.Strand) {
		for i := 0; i < posts; i++ {
			seqs[s.ID()] = append(seqs[s.ID()], srv.Post(s, 0, 1))
		}
	})
	seen := map[sim.Word]bool{}
	for _, ss := range seqs {
		for _, q := range ss {
			if seen[q] {
				t.Fatalf("duplicate sequence number %d", q)
			}
			seen[q] = true
		}
	}
	if len(seen) != threads*posts {
		t.Fatalf("%d unique sequence numbers, want %d", len(seen), threads*posts)
	}
}
