package profile

import (
	"testing"

	"rocktm/internal/sim"
)

// nopCtx is a do-nothing core.Ctx so recorder overhead can be measured in
// isolation from the simulator.
type nopCtx struct{}

func (nopCtx) Load(sim.Addr) sim.Word    { return 0 }
func (nopCtx) Store(sim.Addr, sim.Word)  {}
func (nopCtx) Branch(uint32, bool, bool) {}
func (nopCtx) Div()                      {}
func (nopCtx) Call()                     {}
func (nopCtx) Strand() *sim.Strand       { return nil }

// recordOneOp drives the recorder through a representative operation: a
// tree-walk-sized read set plus a handful of writes, then a fill.
func recordOneOp(rec *recorder, p *OpProfile) {
	rec.reset(nopCtx{})
	for i := 0; i < 24; i++ {
		rec.Load(sim.Addr(i * sim.WordsPerLine))
	}
	for i := 0; i < 6; i++ {
		rec.Store(sim.Addr(i*sim.WordsPerLine), 1)
	}
	rec.fill(p)
}

// TestRecorderSteadyStateAllocFree guards the observability obligation on
// the Section 6.1 profiler: once its maps are warm, recording an operation
// must not allocate (an allocating recorder would skew the very run it is
// measuring via GC pauses in real time — and regress the profiler's speed).
func TestRecorderSteadyStateAllocFree(t *testing.T) {
	rec := newRecorder(128)
	var p OpProfile
	recordOneOp(rec, &p) // warm the maps
	allocs := testing.AllocsPerRun(100, func() { recordOneOp(rec, &p) })
	if allocs != 0 {
		t.Errorf("recorder allocates in steady state: %.1f allocs/op", allocs)
	}
	if p.ReadLines != 24 || p.WriteLines != 6 || p.Upgrades != 6 {
		t.Errorf("recorder miscounted: read=%d write=%d upgrades=%d", p.ReadLines, p.WriteLines, p.Upgrades)
	}
}

// BenchmarkRecorderOp measures the per-operation cost of the read/write-set
// recorder (reset + 24 loads + 6 stores + fill).
func BenchmarkRecorderOp(b *testing.B) {
	rec := newRecorder(128)
	var p OpProfile
	recordOneOp(rec, &p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recordOneOp(rec, &p)
	}
}
