package profile

import "testing"

// TestDeterministicOpSequence: the whole methodology rests on the two
// phases replaying the same operations.
func TestDeterministicOpSequence(t *testing.T) {
	cfg := Config{TreeKeys: 256, Ops: 200, PctGet: 70, PctInsert: 15, Seed: 9}
	a := opSequence(cfg)
	b := opSequence(cfg)
	if len(a) != len(b) || len(a) != 200 {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs across replays", i)
		}
	}
	cfg.Seed = 10
	c := opSequence(cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

// TestRunCapturesProfiles checks the Section 6.1 pipeline end to end on a
// small tree: every op gets a profile, reads are non-empty for non-trivial
// ops, and the paper's key negative results hold at this scale (no L1-set
// overflow, no store-bank overflow).
func TestRunCapturesProfiles(t *testing.T) {
	cfg := Config{TreeKeys: 512, Ops: 300, PctGet: 70, PctInsert: 15, Seed: 42}
	profiles := Run(cfg)
	if len(profiles) != cfg.Ops {
		t.Fatalf("%d profiles for %d ops", len(profiles), cfg.Ops)
	}
	for i, p := range profiles {
		if p.ReadLines == 0 {
			t.Fatalf("op %d (%v) recorded an empty read set", i, p.Kind)
		}
		if p.StackWrites != 0 {
			t.Fatalf("stack writes are not modelled; got %d", p.StackWrites)
		}
	}
	sum := Summarize(profiles)
	if sum.Ops != cfg.Ops {
		t.Fatalf("summary ops = %d", sum.Ops)
	}
	if sum.MaxLinesPerSet[0] > 4 || sum.MaxLinesPerSet[1] > 4 {
		t.Errorf("a 512-key tree overflowed an L1 set: %v", sum.MaxLinesPerSet)
	}
	if sum.BankOverflows[0]+sum.BankOverflows[1] != 0 {
		t.Errorf("store-bank overflows on a small tree: %v", sum.BankOverflows)
	}
	// Writes exist for mutating ops.
	foundWrite := false
	for _, p := range profiles {
		if p.Kind != OpGet && p.WriteWords > 0 {
			foundWrite = true
			break
		}
	}
	if !foundWrite {
		t.Error("no mutating op recorded any writes")
	}
}
