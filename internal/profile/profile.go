// Package profile reimplements the transaction-failure analysis of Section
// 6.1. The paper's trick: with a fixed random seed the operation sequence
// is deterministic, so one run under PhTM records which operations failed
// to complete as hardware transactions, and a second, identical run under
// the STM — with a commit-time callback capturing each transaction's read
// and write sets — attributes microarchitectural profiles to exactly those
// operations. Comparing the profiles of operations that succeeded in
// hardware with those that did not is what let the authors rule out cache-
// set overflow and store-queue overflow, and blame deferred-queue overflow
// from cache misses instead.
package profile

import (
	"rocktm/internal/core"
	"rocktm/internal/cps"
	"rocktm/internal/obs"
	"rocktm/internal/phtm"
	"rocktm/internal/rbtree"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
)

// OpKind is the red-black tree operation type.
type OpKind int

// Operation kinds.
const (
	OpGet OpKind = iota
	OpInsert
	OpDelete
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "Get"
	case OpInsert:
		return "Insert"
	default:
		return "Delete"
	}
}

// OpProfile is the Section 6.1 per-operation record.
type OpProfile struct {
	Kind OpKind
	// FailedToSoftware marks operations whose hardware attempts were
	// exhausted in the PhTM run.
	FailedToSoftware bool
	// HWAttempts is how many hardware tries the operation took.
	HWAttempts uint64
	// CPS aggregates the CPS values of this op's failed attempts.
	CPS []cps.Bits
	// ReadLines is the read-set size in cache lines.
	ReadLines int
	// MaxLinesPerSet is the largest number of read-set lines mapping to a
	// single 4-way L1 set.
	MaxLinesPerSet int
	// WriteLines and WriteWords size the write set.
	WriteLines, WriteWords int
	// BankLines is the write set's distinct lines split across the two
	// store-queue banks (the queue coalesces same-line stores, so this is
	// the occupancy that matters against the 16-entry banks). BankWords is
	// the raw word count the paper's Section 6.1 also reports.
	BankLines [2]int
	BankWords [2]int
	// Upgrades counts lines read before being written.
	Upgrades int
	// StackWrites is always 0 in this model (documented divergence: stack
	// traffic inside transactions is not simulated).
	StackWrites int
}

// recorder captures read/write sets through a wrapped Ctx. All of its
// state (including the fill scratch map) is reused across operations, so
// recording an operation is allocation-free in the steady state — the
// property BenchmarkRecorderOp and TestRecorderSteadyStateAllocFree guard.
type recorder struct {
	inner  core.Ctx
	l1Sets int

	readLines  map[int32]struct{}
	writeLines map[int32]struct{}
	perSet     map[int]int // fill scratch: read lines per L1 set
	writeWords int
	bank       [2]int
	bankLines  [2]int
	upgrades   int
}

func newRecorder(l1Sets int) *recorder {
	return &recorder{
		l1Sets:     l1Sets,
		readLines:  make(map[int32]struct{}),
		writeLines: make(map[int32]struct{}),
		perSet:     make(map[int]int),
	}
}

func (r *recorder) reset(inner core.Ctx) {
	r.inner = inner
	clear(r.readLines)
	clear(r.writeLines)
	r.writeWords = 0
	r.bank = [2]int{}
	r.bankLines = [2]int{}
	r.upgrades = 0
}

// Load implements core.Ctx.
func (r *recorder) Load(a sim.Addr) sim.Word {
	r.readLines[sim.LineOf(a)] = struct{}{}
	return r.inner.Load(a)
}

// Store implements core.Ctx.
func (r *recorder) Store(a sim.Addr, w sim.Word) {
	line := sim.LineOf(a)
	if _, written := r.writeLines[line]; !written {
		if _, read := r.readLines[line]; read {
			r.upgrades++
		}
		r.writeLines[line] = struct{}{}
		r.bankLines[line&1]++
	}
	r.readLines[line] = struct{}{}
	r.writeWords++
	r.bank[line&1]++
	r.inner.Store(a, w)
}

// Branch implements core.Ctx.
func (r *recorder) Branch(pc uint32, taken bool, dep bool) { r.inner.Branch(pc, taken, dep) }

// Div implements core.Ctx.
func (r *recorder) Div() { r.inner.Div() }

// Call implements core.Ctx.
func (r *recorder) Call() { r.inner.Call() }

// Strand implements core.Ctx.
func (r *recorder) Strand() *sim.Strand { return r.inner.Strand() }

func (r *recorder) fill(p *OpProfile) {
	p.ReadLines = len(r.readLines)
	perSet := r.perSet
	clear(perSet)
	for line := range r.readLines {
		perSet[int(line)%r.l1Sets]++
	}
	for _, n := range perSet {
		if n > p.MaxLinesPerSet {
			p.MaxLinesPerSet = n
		}
	}
	p.WriteLines = len(r.writeLines)
	p.WriteWords = r.writeWords
	p.BankWords = r.bank
	p.BankLines = r.bankLines
	p.Upgrades = r.upgrades
}

// Config parameterizes a profiling run.
type Config struct {
	TreeKeys   int // key range; the tree is prepopulated with half of it
	Ops        int
	PctGet     int // percentage of Get operations
	PctInsert  int // percentage of Insert operations (rest are Delete)
	Seed       uint64
	MaxHWTries float64 // PhTM hardware budget per op
}

// opSequence deterministically derives the op stream from the seed.
func opSequence(cfg Config) []struct {
	kind OpKind
	key  uint64
} {
	state := cfg.Seed*0x9e3779b97f4a7c15 + 1
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	ops := make([]struct {
		kind OpKind
		key  uint64
	}, cfg.Ops)
	for i := range ops {
		r := int(next() % 100)
		switch {
		case r < cfg.PctGet:
			ops[i].kind = OpGet
		case r < cfg.PctGet+cfg.PctInsert:
			ops[i].kind = OpInsert
		default:
			ops[i].kind = OpDelete
		}
		ops[i].key = next() % uint64(cfg.TreeKeys)
	}
	return ops
}

func prepKeys(cfg Config) []uint64 {
	// Shuffled deterministically: ascending prepopulation would alias the
	// tree's upper spine into a single L1 set (see bench.shuffledEvenKeys).
	keys := make([]uint64, 0, cfg.TreeKeys/2)
	for k := 0; k < cfg.TreeKeys; k += 2 {
		keys = append(keys, uint64(k))
	}
	state := cfg.Seed*31 + 11
	for i := len(keys) - 1; i > 0; i-- {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		j := int(state % uint64(i+1))
		keys[i], keys[j] = keys[j], keys[i]
	}
	return keys
}

func machine() *sim.Machine {
	mcfg := sim.DefaultConfig(1)
	mcfg.MemWords = 1 << 23
	mcfg.MaxCycles = 1 << 44
	return sim.New(mcfg)
}

// Run executes the two-phase analysis and returns the per-op profiles.
func Run(cfg Config) []OpProfile {
	if cfg.MaxHWTries == 0 {
		cfg.MaxHWTries = 8
	}
	ops := opSequence(cfg)
	profiles := make([]OpProfile, len(ops))
	for i := range profiles {
		profiles[i].Kind = ops[i].kind
	}

	// Phase 1: PhTM run; record which ops fell to software and their CPS
	// values.
	{
		m := machine()
		tree := rbtree.New(m, cfg.TreeKeys+64)
		tree.Prepopulate(m.Mem(), prepKeys(cfg), 1)
		back := sky.New(m)
		pcfg := phtm.DefaultConfig()
		pcfg.MaxFailures = cfg.MaxHWTries
		sys := phtm.New(m, back, pcfg)
		m.Run(func(s *sim.Strand) {
			for i, op := range ops {
				before := sys.Stats()
				runOp(tree, sys, s, op.kind, op.key, nil)
				after := sys.Stats()
				profiles[i].HWAttempts = after.HWAttempts - before.HWAttempts
				profiles[i].FailedToSoftware = after.SWCommits > before.SWCommits
				profiles[i].CPS = append(profiles[i].CPS, obs.CPSDelta(before.CPSHist, after.CPSHist)...)
			}
		})
	}

	// Phase 2: identical STM-only run with the commit-time recorder.
	{
		m := machine()
		tree := rbtree.New(m, cfg.TreeKeys+64)
		tree.Prepopulate(m.Mem(), prepKeys(cfg), 1)
		sys := sky.New(m)
		rec := newRecorder(m.Config().L1Sets)
		m.Run(func(s *sim.Strand) {
			for i, op := range ops {
				runOp(tree, sys, s, op.kind, op.key, func(inner core.Ctx) core.Ctx {
					rec.reset(inner)
					return rec
				})
				rec.fill(&profiles[i])
			}
		})
	}
	return profiles
}

// runOp performs one tree operation under sys, optionally wrapping the Ctx.
func runOp(tree *rbtree.Tree, sys core.System, s *sim.Strand, kind OpKind, key uint64,
	wrap func(core.Ctx) core.Ctx) {
	switch kind {
	case OpGet:
		sys.AtomicRO(s, func(c core.Ctx) {
			if wrap != nil {
				c = wrap(c)
			}
			tree.Lookup(c, key)
		})
	case OpInsert:
		node := tree.AllocNode(s, key, 1)
		inserted := false
		sys.Atomic(s, func(c core.Ctx) {
			if wrap != nil {
				c = wrap(c)
			}
			inserted = tree.InsertNode(c, key, node)
		})
		if !inserted {
			tree.FreeNode(s, node)
		}
	case OpDelete:
		var removed sim.Addr
		sys.Atomic(s, func(c core.Ctx) {
			if wrap != nil {
				c = wrap(c)
			}
			removed = tree.DeleteNode(c, key)
		})
		if removed != 0 {
			tree.FreeNode(s, removed)
		}
	}
}

// Summary aggregates profiles into the comparison the paper draws.
type Summary struct {
	Ops            int
	Failed         int
	MaxReadLines   [2]int // [succeeded, failed]
	MaxLinesPerSet [2]int
	MaxWriteWords  [2]int
	MeanReadLines  [2]float64
	SetOverflows   [2]int // ops with >4 lines in one L1 set
	BankOverflows  [2]int // ops with >16 words in one store bank
	CPSHist        *cps.Histogram
}

// Summarize folds per-op profiles into a Summary.
func Summarize(profiles []OpProfile) Summary {
	sum := Summary{CPSHist: cps.NewHistogram()}
	var totalRead [2]int
	var count [2]int
	for _, p := range profiles {
		idx := 0
		if p.FailedToSoftware {
			idx = 1
			sum.Failed++
		}
		sum.Ops++
		count[idx]++
		totalRead[idx] += p.ReadLines
		if p.ReadLines > sum.MaxReadLines[idx] {
			sum.MaxReadLines[idx] = p.ReadLines
		}
		if p.MaxLinesPerSet > sum.MaxLinesPerSet[idx] {
			sum.MaxLinesPerSet[idx] = p.MaxLinesPerSet
		}
		if p.WriteWords > sum.MaxWriteWords[idx] {
			sum.MaxWriteWords[idx] = p.WriteWords
		}
		if p.MaxLinesPerSet > 4 {
			sum.SetOverflows[idx]++
		}
		if p.BankLines[0] > 16 || p.BankLines[1] > 16 {
			sum.BankOverflows[idx]++
		}
		for _, c := range p.CPS {
			sum.CPSHist.Add(c)
		}
	}
	for i := 0; i < 2; i++ {
		if count[i] > 0 {
			sum.MeanReadLines[i] = float64(totalRead[i]) / float64(count[i])
		}
	}
	return sum
}
