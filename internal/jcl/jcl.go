// Package jcl provides the java.util collection classes of the Section 7.2
// experiments: the synchronized Hashtable (whose hash function contains a
// divide instruction unless "slightly modified to factor it out"), HashMap
// behind a synchronized wrapper (whose JIT inlining fate decides whether
// TLE can elide its monitor), and TreeMap, a red-black tree.
package jcl

import (
	"rocktm/internal/core"
	"rocktm/internal/hashtable"
	"rocktm/internal/jvm"
	"rocktm/internal/rbtree"
	"rocktm/internal/sim"
)

// Hashtable is java.util.Hashtable: a chained table whose public methods
// are synchronized on the object's monitor.
type Hashtable struct {
	vm  *jvm.JVM
	mon *jvm.Monitor
	tbl *hashtable.Table
	// DivideHash keeps the original divide instruction in the hash
	// function; every elided transaction then aborts with CPS=FP. The
	// benchmark version factors it out (false).
	DivideHash bool
}

// NewHashtable builds a table with the given bucket count and capacity.
func NewHashtable(m *sim.Machine, vm *jvm.JVM, buckets, capacity int) *Hashtable {
	return &Hashtable{vm: vm, mon: vm.NewMonitor(m), tbl: hashtable.New(m, buckets, capacity)}
}

func (h *Hashtable) hashCost(c core.Ctx) {
	if h.DivideHash {
		c.Div() // hash % table.length
	}
}

// Put maps key→val, reporting whether the key was absent.
func (h *Hashtable) Put(s *sim.Strand, key uint64, val sim.Word) bool {
	node := h.tbl.AllocNode(s, key, val)
	inserted := false
	h.vm.Synchronized(s, h.mon, func(c core.Ctx) {
		h.hashCost(c)
		inserted = h.tbl.InsertNode(c, key, node)
	})
	if !inserted {
		h.tbl.FreeNode(s, node)
	}
	return inserted
}

// Get looks key up.
func (h *Hashtable) Get(s *sim.Strand, key uint64) (sim.Word, bool) {
	var v sim.Word
	var ok bool
	h.vm.Synchronized(s, h.mon, func(c core.Ctx) {
		h.hashCost(c)
		v, ok = h.tbl.Lookup(c, key)
	})
	return v, ok
}

// Remove deletes key, reporting whether it was present.
func (h *Hashtable) Remove(s *sim.Strand, key uint64) bool {
	var removed sim.Addr
	h.vm.Synchronized(s, h.mon, func(c core.Ctx) {
		h.hashCost(c)
		removed = h.tbl.DeleteNode(c, key)
	})
	if removed != 0 {
		h.tbl.FreeNode(s, removed)
		return true
	}
	return false
}

// Prepopulate fills the table directly (setup only).
func (h *Hashtable) Prepopulate(mem *sim.Memory, keys []uint64, val sim.Word) {
	h.tbl.Prepopulate(mem, keys, val)
}

// Count walks the table directly (validation only).
func (h *Hashtable) Count(mem *sim.Memory) int { return h.tbl.Count(mem) }

// HashMap is java.util.HashMap made thread-safe by a synchronized wrapper
// (Collections.synchronizedMap). The JIT may inline the wrapper together
// with the HashMap method — keeping the synchronized region call-free — or
// outline the method later, putting a function call inside every elided
// transaction.
type HashMap struct {
	vm  *jvm.JVM
	mon *jvm.Monitor
	tbl *hashtable.Table
	// PutSite, GetSite and RemoveSite model the JIT's inlining decision per
	// method (the paper observed put being outlined mid-run).
	PutSite, GetSite, RemoveSite jvm.CallSite
}

// NewHashMap builds a wrapped HashMap.
func NewHashMap(m *sim.Machine, vm *jvm.JVM, buckets, capacity int) *HashMap {
	return &HashMap{vm: vm, mon: vm.NewMonitor(m), tbl: hashtable.New(m, buckets, capacity)}
}

// Put maps key→val through the synchronized wrapper.
func (h *HashMap) Put(s *sim.Strand, key uint64, val sim.Word) bool {
	node := h.tbl.AllocNode(s, key, val)
	inserted := false
	h.vm.Synchronized(s, h.mon, func(c core.Ctx) {
		h.PutSite.Invoke(c)
		inserted = h.tbl.InsertNode(c, key, node)
	})
	if !inserted {
		h.tbl.FreeNode(s, node)
	}
	return inserted
}

// Get looks key up through the wrapper.
func (h *HashMap) Get(s *sim.Strand, key uint64) (sim.Word, bool) {
	var v sim.Word
	var ok bool
	h.vm.Synchronized(s, h.mon, func(c core.Ctx) {
		h.GetSite.Invoke(c)
		v, ok = h.tbl.Lookup(c, key)
	})
	return v, ok
}

// Remove deletes key through the wrapper.
func (h *HashMap) Remove(s *sim.Strand, key uint64) bool {
	var removed sim.Addr
	h.vm.Synchronized(s, h.mon, func(c core.Ctx) {
		h.RemoveSite.Invoke(c)
		removed = h.tbl.DeleteNode(c, key)
	})
	if removed != 0 {
		h.tbl.FreeNode(s, removed)
		return true
	}
	return false
}

// Prepopulate fills the map directly (setup only).
func (h *HashMap) Prepopulate(mem *sim.Memory, keys []uint64, val sim.Word) {
	h.tbl.Prepopulate(mem, keys, val)
}

// Count walks the map directly (validation only).
func (h *HashMap) Count(mem *sim.Memory) int { return h.tbl.Count(mem) }

// TreeMap is java.util.TreeMap: a synchronized red-black tree.
type TreeMap struct {
	vm   *jvm.JVM
	mon  *jvm.Monitor
	tree *rbtree.Tree
}

// NewTreeMap builds a TreeMap with the given node capacity.
func NewTreeMap(m *sim.Machine, vm *jvm.JVM, capacity int) *TreeMap {
	return &TreeMap{vm: vm, mon: vm.NewMonitor(m), tree: rbtree.New(m, capacity)}
}

// Put maps key→val, reporting whether the key was absent.
func (t *TreeMap) Put(s *sim.Strand, key uint64, val sim.Word) bool {
	node := t.tree.AllocNode(s, key, val)
	inserted := false
	t.vm.Synchronized(s, t.mon, func(c core.Ctx) {
		inserted = t.tree.InsertNode(c, key, node)
	})
	if !inserted {
		t.tree.FreeNode(s, node)
	}
	return inserted
}

// Get looks key up.
func (t *TreeMap) Get(s *sim.Strand, key uint64) (sim.Word, bool) {
	var v sim.Word
	var ok bool
	t.vm.Synchronized(s, t.mon, func(c core.Ctx) {
		v, ok = t.tree.Lookup(c, key)
	})
	return v, ok
}

// Remove deletes key, reporting whether it was present.
func (t *TreeMap) Remove(s *sim.Strand, key uint64) bool {
	var removed sim.Addr
	t.vm.Synchronized(s, t.mon, func(c core.Ctx) {
		removed = t.tree.DeleteNode(c, key)
	})
	if removed != 0 {
		t.tree.FreeNode(s, removed)
		return true
	}
	return false
}

// Prepopulate fills the tree directly (setup only).
func (t *TreeMap) Prepopulate(mem *sim.Memory, keys []uint64, val sim.Word) {
	t.tree.Prepopulate(mem, keys, val)
}

// Check validates the red-black invariants, returning the node count.
func (t *TreeMap) Check(mem *sim.Memory) int { return t.tree.CheckInvariants(mem) }
