package jcl

import (
	"testing"

	"rocktm/internal/cps"
	"rocktm/internal/jvm"
	"rocktm/internal/sim"
	"rocktm/internal/tle"
)

func newMachine(strands int) *sim.Machine {
	cfg := sim.DefaultConfig(strands)
	cfg.MemWords = 1 << 21
	cfg.MaxCycles = 1 << 44
	return sim.New(cfg)
}

func TestHashtableAgainstModel(t *testing.T) {
	m := newMachine(2)
	vm := jvm.New(m, tle.DefaultPolicy())
	ht := NewHashtable(m, vm, 1<<10, 1<<11)
	model := map[uint64]bool{}
	m.Run(func(s *sim.Strand) {
		if s.ID() != 0 {
			return // single-threaded vs model; thread 1 idle
		}
		for i := 0; i < 1200; i++ {
			key := uint64(s.RandIntn(200))
			switch s.RandIntn(3) {
			case 0:
				if ht.Put(s, key, 7) == model[key] {
					t.Errorf("put(%d) disagreed with model", key)
					return
				}
				model[key] = true
			case 1:
				if ht.Remove(s, key) != model[key] {
					t.Errorf("remove(%d) disagreed with model", key)
					return
				}
				delete(model, key)
			default:
				if _, ok := ht.Get(s, key); ok != model[key] {
					t.Errorf("get(%d) disagreed with model", key)
					return
				}
			}
		}
	})
	if got := ht.Count(m.Mem()); got != len(model) {
		t.Fatalf("count = %d, model %d", got, len(model))
	}
}

// TestDivideHashKillsElision: with the divide left in the hash, every
// elided transaction aborts with FP and all work falls to the monitor.
func TestDivideHashKillsElision(t *testing.T) {
	m := newMachine(1)
	vm := jvm.New(m, tle.DefaultPolicy())
	ht := NewHashtable(m, vm, 1<<10, 256)
	ht.DivideHash = true
	m.Run(func(s *sim.Strand) {
		for i := 0; i < 50; i++ {
			ht.Put(s, uint64(i), 1)
		}
	})
	st := vm.Stats()
	if st.HWCommits != 0 {
		t.Errorf("hardware commits with a divide in the transaction: %d", st.HWCommits)
	}
	if st.LockAcquires != st.Ops {
		t.Errorf("expected all %d ops to take the monitor, got %d", st.Ops, st.LockAcquires)
	}
	if n := st.CPSHist.BitCount(cps.FP); n == 0 {
		t.Error("no FP failures recorded")
	}
}

// TestOutlinedPutKillsElision reproduces the HashMap anecdote: once the
// JIT outlines put, its save/restore aborts every elided transaction with
// INST.
func TestOutlinedPutKillsElision(t *testing.T) {
	m := newMachine(1)
	vm := jvm.New(m, tle.DefaultPolicy())
	hm := NewHashMap(m, vm, 1<<10, 512)
	hm.PutSite.OutlineAfter = 100
	m.Run(func(s *sim.Strand) {
		for i := 0; i < 300; i++ {
			hm.Put(s, uint64(i), 1)
		}
	})
	st := vm.Stats()
	if !hm.PutSite.Outlined() {
		t.Fatal("JIT never outlined put")
	}
	if n := st.CPSHist.BitCount(cps.INST); n == 0 {
		t.Error("no INST failures after outlining")
	}
	if st.LockAcquires < 150 {
		t.Errorf("outlined puts should fall to the monitor; lock acquires = %d", st.LockAcquires)
	}
	if got := hm.Count(m.Mem()); got != 300 {
		t.Fatalf("map holds %d keys, want 300", got)
	}
}

func TestTreeMapInvariantsUnderConcurrency(t *testing.T) {
	const threads = 4
	m := newMachine(threads)
	vm := jvm.New(m, tle.DefaultPolicy())
	tm := NewTreeMap(m, vm, 1<<12)
	m.Run(func(s *sim.Strand) {
		base := uint64(s.ID()) * 1000
		for i := uint64(0); i < 100; i++ {
			tm.Put(s, base+i, sim.Word(i))
		}
		for i := uint64(0); i < 100; i += 2 {
			tm.Remove(s, base+i)
		}
	})
	if n := tm.Check(m.Mem()); n != threads*50 {
		t.Fatalf("tree holds %d nodes, want %d", n, threads*50)
	}
}

// TestElisionDisabledStillCorrect runs with TLE emitted but disabled.
func TestElisionDisabledStillCorrect(t *testing.T) {
	m := newMachine(2)
	vm := jvm.New(m, tle.DefaultPolicy())
	vm.Elide = false
	ht := NewHashtable(m, vm, 1<<10, 1024)
	m.Run(func(s *sim.Strand) {
		base := uint64(s.ID()) * 500
		for i := uint64(0); i < 200; i++ {
			ht.Put(s, base+i, 1)
		}
	})
	if got := ht.Count(m.Mem()); got != 400 {
		t.Fatalf("count = %d, want 400", got)
	}
	if vm.Stats().HWCommits != 0 {
		t.Error("hardware commits with elision disabled")
	}
}
