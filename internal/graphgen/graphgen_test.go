package graphgen

import (
	"bytes"
	"testing"
	"testing/quick"

	"rocktm/internal/core"
	"rocktm/internal/sim"
)

func TestRoadmapShape(t *testing.T) {
	n, edges := RoadmapEdges(10, 8, 0, 100, 1)
	if n != 80 {
		t.Fatalf("n = %d, want 80", n)
	}
	// A W×H grid has W(H-1) + H(W-1) edges.
	want := 10*7 + 8*9
	if len(edges) != want {
		t.Fatalf("edges = %d, want %d", len(edges), want)
	}
	for _, e := range edges {
		if e.U >= 80 || e.V >= 80 || e.U == e.V {
			t.Fatalf("bad edge %+v", e)
		}
		if e.W < 1 || e.W > 100 {
			t.Fatalf("weight out of range: %+v", e)
		}
	}
}

func TestRoadmapDeterministic(t *testing.T) {
	_, a := RoadmapEdges(12, 12, 0.1, 1000, 42)
	_, b := RoadmapEdges(12, 12, 0.1, 1000, 42)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	_, c := RoadmapEdges(12, 12, 0.1, 1000, 43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical graphs")
	}
}

func TestCSRMatchesEdgeList(t *testing.T) {
	cfg := sim.DefaultConfig(1)
	cfg.MemWords = 1 << 20
	m := sim.New(cfg)
	n, edges := RoadmapEdges(6, 6, 0.2, 50, 9)
	g := Build(m, n, edges)
	c := core.Setup{Mem: m.Mem()}
	// Count arcs per vertex and total weight; both directions must appear.
	totalArcs := 0
	var totalW uint64
	for v := uint32(0); v < uint32(n); v++ {
		lo, hi := g.Arcs(c, v)
		for i := lo; i < hi; i++ {
			dst, w := g.Arc(c, i)
			if dst >= uint32(n) {
				t.Fatalf("arc to out-of-range vertex %d", dst)
			}
			totalArcs++
			totalW += uint64(w)
		}
	}
	if totalArcs != 2*len(edges) {
		t.Fatalf("CSR holds %d arcs, want %d", totalArcs, 2*len(edges))
	}
	var wantW uint64
	for _, e := range edges {
		wantW += 2 * uint64(e.W)
	}
	if totalW != wantW {
		t.Fatalf("arc weight sum %d, want %d", totalW, wantW)
	}
}

func TestKruskalOnKnownGraph(t *testing.T) {
	// Triangle with weights 1,2,3: MST = 1+2.
	edges := []Edge{{0, 1, 1}, {1, 2, 2}, {0, 2, 3}}
	w, n := KruskalWeight(3, edges)
	if w != 3 || n != 2 {
		t.Fatalf("Kruskal = (%d,%d), want (3,2)", w, n)
	}
	// Disconnected pair: forest with one edge.
	edges = []Edge{{0, 1, 5}}
	w, n = KruskalWeight(4, edges)
	if w != 5 || n != 1 {
		t.Fatalf("forest Kruskal = (%d,%d), want (5,1)", w, n)
	}
}

func TestDIMACSRejectsGarbage(t *testing.T) {
	if _, _, err := ReadDIMACS(bytes.NewBufferString("p sp x y\n")); err == nil {
		t.Error("bad problem line accepted")
	}
	if _, _, err := ReadDIMACS(bytes.NewBufferString("p sp 2 2\na 1 zwei 3\n")); err == nil {
		t.Error("bad arc line accepted")
	}
}

func TestQuickKruskalBounds(t *testing.T) {
	// The MSF weight of any graph is at most the sum of all weights and the
	// edge count at most n-1.
	prop := func(seed uint64, dim uint8) bool {
		d := 3 + int(dim%8)
		n, edges := RoadmapEdges(d, d, 0.3, 1000, seed)
		w, cnt := KruskalWeight(n, edges)
		var total uint64
		for _, e := range edges {
			total += uint64(e.W)
		}
		return w <= total && cnt <= n-1 && cnt > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
