// Package graphgen builds the sparse road-network-style graphs the MSF
// experiment runs on. The paper uses the Eastern-USA roadmap from the 9th
// DIMACS Implementation Challenge (3,598,623 nodes, 8,778,114 directed
// arcs, average degree ≈ 2.44); that file is not redistributable here, so
// Roadmap synthesizes a graph with the same character — a planar-ish grid
// backbone with random weights and a sprinkling of shortcut edges, giving
// the same sparsity and the same rarity of growth-front collisions. A
// DIMACS .gr reader and writer are provided for running on the real data
// when available.
package graphgen

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"rocktm/internal/sim"
)

// Edge is one undirected weighted edge.
type Edge struct {
	U, V uint32
	W    uint32
}

// Graph is a weighted undirected graph in CSR form over simulated memory:
// each undirected edge appears as two directed arcs.
type Graph struct {
	N int // vertices (numbered 0..N-1)
	M int // undirected edges

	offA sim.Addr // N+1 words: arc offsets
	dstA sim.Addr // 2M words: arc heads
	wA   sim.Addr // 2M words: arc weights

	edges []Edge // Go-side copy for validation (Kruskal baseline)
}

// Build lays a Go-side edge list out as CSR in m's simulated memory.
func Build(m *sim.Machine, n int, edges []Edge) *Graph {
	mem := m.Mem()
	g := &Graph{N: n, M: len(edges), edges: edges}
	deg := make([]uint32, n+1)
	for _, e := range edges {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	g.offA = mem.AllocLines(n + 1)
	g.dstA = mem.AllocLines(2*len(edges) + 1)
	g.wA = mem.AllocLines(2*len(edges) + 1)
	for i := 0; i <= n; i++ {
		mem.Poke(g.offA+sim.Addr(i), sim.Word(deg[i]))
	}
	cursor := make([]uint32, n)
	copy(cursor, deg[:n])
	put := func(u, v, w uint32) {
		at := cursor[u]
		cursor[u]++
		mem.Poke(g.dstA+sim.Addr(at), sim.Word(v))
		mem.Poke(g.wA+sim.Addr(at), sim.Word(w))
	}
	for _, e := range edges {
		put(e.U, e.V, e.W)
		put(e.V, e.U, e.W)
	}
	return g
}

// Arcs returns the arc range [lo, hi) of vertex v, reading the CSR offsets
// through ctx (transactionally or not, per the caller).
func (g *Graph) Arcs(c interface {
	Load(sim.Addr) sim.Word
}, v uint32) (lo, hi uint32) {
	lo = uint32(c.Load(g.offA + sim.Addr(v)))
	hi = uint32(c.Load(g.offA + sim.Addr(v) + 1))
	return lo, hi
}

// Arc returns arc i's head and weight through ctx.
func (g *Graph) Arc(c interface {
	Load(sim.Addr) sim.Word
}, i uint32) (dst uint32, w sim.Word) {
	return uint32(c.Load(g.dstA + sim.Addr(i))), c.Load(g.wA + sim.Addr(i))
}

// Edges returns the Go-side edge list (validation only).
func (g *Graph) Edges() []Edge { return g.edges }

// rng is a local splitmix64 (the generator must not depend on internal/sim
// seeds, so graphs are stable across simulator config changes).
type rng uint64

func (r *rng) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RoadmapEdges synthesizes the edge list of a width×height road grid with
// extra shortcut edges (fraction extra of the grid edge count) and weights
// in [1, maxW].
func RoadmapEdges(width, height int, extra float64, maxW uint32, seed uint64) (int, []Edge) {
	n := width * height
	r := rng(seed)
	id := func(x, y int) uint32 { return uint32(y*width + x) }
	var edges []Edge
	w := func() uint32 { return 1 + uint32(r.next()%uint64(maxW)) }
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if x+1 < width {
				edges = append(edges, Edge{id(x, y), id(x+1, y), w()})
			}
			if y+1 < height {
				edges = append(edges, Edge{id(x, y), id(x, y+1), w()})
			}
		}
	}
	shortcuts := int(extra * float64(len(edges)))
	for i := 0; i < shortcuts; i++ {
		u := uint32(r.next() % uint64(n))
		v := uint32(r.next() % uint64(n))
		if u == v {
			continue
		}
		edges = append(edges, Edge{u, v, w()})
	}
	return n, edges
}

// Roadmap builds a synthetic road network directly into m's memory.
func Roadmap(m *sim.Machine, width, height int, extra float64, seed uint64) *Graph {
	n, edges := RoadmapEdges(width, height, extra, 1<<20, seed)
	return Build(m, n, edges)
}

// KruskalWeight computes the minimum-spanning-forest weight of the edge
// list with sequential Kruskal (the validation oracle), returning the total
// weight and the number of forest edges.
func KruskalWeight(n int, edges []Edge) (uint64, int) {
	idx := make([]int, len(edges))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return edges[idx[a]].W < edges[idx[b]].W })
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var total uint64
	count := 0
	for _, i := range idx {
		e := edges[i]
		ru, rv := find(int32(e.U)), find(int32(e.V))
		if ru == rv {
			continue
		}
		parent[ru] = rv
		total += uint64(e.W)
		count++
	}
	return total, count
}

// WriteDIMACS emits the graph in DIMACS .gr format (directed arcs, both
// directions).
func WriteDIMACS(w io.Writer, n int, edges []Edge) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p sp %d %d\n", n, 2*len(edges))
	for _, e := range edges {
		fmt.Fprintf(bw, "a %d %d %d\n", e.U+1, e.V+1, e.W)
		fmt.Fprintf(bw, "a %d %d %d\n", e.V+1, e.U+1, e.W)
	}
	return bw.Flush()
}

// ReadDIMACS parses a DIMACS .gr file. Arcs are de-duplicated into
// undirected edges (keeping the lower weight when the two directions
// disagree, as shortest-path files sometimes do).
func ReadDIMACS(r io.Reader) (int, []Edge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	type key struct{ u, v uint32 }
	seen := make(map[key]uint32)
	for sc.Scan() {
		line := sc.Text()
		if len(line) == 0 {
			continue
		}
		switch line[0] {
		case 'p':
			var kind string
			var m int
			if _, err := fmt.Sscanf(line, "p %s %d %d", &kind, &n, &m); err != nil {
				return 0, nil, fmt.Errorf("graphgen: bad problem line %q: %v", line, err)
			}
		case 'a':
			var u, v, w uint32
			if _, err := fmt.Sscanf(line, "a %d %d %d", &u, &v, &w); err != nil {
				return 0, nil, fmt.Errorf("graphgen: bad arc line %q: %v", line, err)
			}
			if u == v {
				continue
			}
			a, b := u-1, v-1
			if a > b {
				a, b = b, a
			}
			k := key{a, b}
			if old, ok := seen[k]; !ok || w < old {
				seen[k] = w
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	edges := make([]Edge, 0, len(seen))
	for k, w := range seen {
		edges = append(edges, Edge{U: k.u, V: k.v, W: w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	return n, edges, nil
}
