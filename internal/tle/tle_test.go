package tle

import (
	"testing"

	"rocktm/internal/core"
	"rocktm/internal/cps"
	"rocktm/internal/locktm"
	"rocktm/internal/sim"
)

func newMachine(strands int) *sim.Machine {
	cfg := sim.DefaultConfig(strands)
	cfg.MemWords = 1 << 20
	cfg.MaxCycles = 1 << 42
	return sim.New(cfg)
}

func newTLE(m *sim.Machine, pol Policy) *System {
	return New("tle", SpinAdapter{L: locktm.NewSpinLock(m.Mem())}, pol)
}

func TestElisionCommitsWithoutLock(t *testing.T) {
	m := newMachine(1)
	sys := newTLE(m, DefaultPolicy())
	a := m.Mem().AllocLines(8)
	m.Run(func(s *sim.Strand) {
		for i := 0; i < 50; i++ {
			sys.Atomic(s, func(c core.Ctx) { c.Store(a, c.Load(a)+1) })
		}
	})
	st := sys.Stats()
	if st.HWCommits != 50 || st.LockAcquires != 0 {
		t.Fatalf("commits=%d lockAcquires=%d, want 50/0", st.HWCommits, st.LockAcquires)
	}
	if m.Mem().Peek(a) != 50 {
		t.Fatal("lost updates")
	}
}

func TestGiveUpOnUnsupportedInstruction(t *testing.T) {
	m := newMachine(1)
	sys := newTLE(m, DefaultPolicy())
	a := m.Mem().AllocLines(8)
	m.Run(func(s *sim.Strand) {
		sys.Atomic(s, func(c core.Ctx) {
			c.Call() // save/restore: INST in hardware, cheap under the lock
			c.Store(a, 1)
		})
	})
	st := sys.Stats()
	if st.LockAcquires != 1 {
		t.Fatalf("lock acquires = %d, want 1 (immediate give-up on INST)", st.LockAcquires)
	}
	if st.HWAttempts != 1 {
		t.Fatalf("hw attempts = %d, want exactly 1 before giving up", st.HWAttempts)
	}
	if m.Mem().Peek(a) != 1 {
		t.Fatal("fallback did not run the body")
	}
}

func TestSimplePolicyIgnoresCPS(t *testing.T) {
	m := newMachine(1)
	sys := newTLE(m, SimplePolicy(3))
	a := m.Mem().AllocLines(8)
	m.Run(func(s *sim.Strand) {
		sys.Atomic(s, func(c core.Ctx) {
			c.Call()
			c.Store(a, 1)
		})
	})
	st := sys.Stats()
	if st.HWAttempts != 3 {
		t.Fatalf("hw attempts = %d, want 3 (fixed budget, no CPS give-up)", st.HWAttempts)
	}
	if st.CPSHist.BitCount(cps.INST) != 3 {
		t.Fatalf("INST failures = %d, want 3", st.CPSHist.BitCount(cps.INST))
	}
}

func TestDisabledAlwaysLocks(t *testing.T) {
	m := newMachine(1)
	sys := newTLE(m, DefaultPolicy())
	sys.SetEnabled(false)
	a := m.Mem().AllocLines(8)
	m.Run(func(s *sim.Strand) {
		for i := 0; i < 10; i++ {
			sys.Atomic(s, func(c core.Ctx) { c.Store(a, c.Load(a)+1) })
		}
	})
	st := sys.Stats()
	if st.HWAttempts != 0 || st.LockAcquires != 10 {
		t.Fatalf("attempts=%d lock=%d, want 0/10", st.HWAttempts, st.LockAcquires)
	}
}

func TestLockHolderDoomsElidedTxns(t *testing.T) {
	// Strand 1 takes the real lock and mutates; strand 0's elision attempts
	// during that window must not observe partial state.
	m := newMachine(2)
	lock := locktm.NewSpinLock(m.Mem())
	sys := New("tle", SpinAdapter{L: lock}, DefaultPolicy())
	a := m.Mem().AllocLines(8)
	b := m.Mem().AllocLines(8)
	bad := false
	m.Run(func(s *sim.Strand) {
		if s.ID() == 0 {
			for i := 0; i < 40; i++ {
				sys.Atomic(s, func(c core.Ctx) {
					x := c.Load(a)
					y := c.Load(b)
					if x != y {
						bad = true
					}
				})
			}
		} else {
			for i := 0; i < 40; i++ {
				lock.Acquire(s)
				s.Store(a, sim.Word(i))
				s.Advance(50)
				s.Store(b, sim.Word(i))
				lock.Release(s)
			}
		}
	})
	if bad {
		t.Fatal("elided transaction observed a torn critical section")
	}
}

func TestRWAdapterReadersShareFallback(t *testing.T) {
	m := newMachine(2)
	rw := locktm.NewRWLock(m.Mem())
	// A policy that always gives up forces the fallback path, exercising
	// the shared-acquisition plumbing.
	sys := New("tle-rw", RWAdapter{L: rw}, Policy{MaxFailures: 0, UCTIWeight: 1, UseCPS: false})
	a := m.Mem().AllocLines(8)
	m.Mem().Poke(a, 9)
	m.Run(func(s *sim.Strand) {
		for i := 0; i < 20; i++ {
			sys.AtomicRO(s, func(c core.Ctx) {
				if c.Load(a) != 9 {
					t.Error("bad read")
				}
			})
		}
	})
	if got := sys.Stats().LockAcquires; got != 40 {
		t.Fatalf("lock acquires = %d, want 40", got)
	}
}

func TestThrottleAdaptsAndRecovers(t *testing.T) {
	m := newMachine(4)
	th := NewThrottle(m)
	if th.limit != 4 {
		t.Fatalf("initial limit = %d", th.limit)
	}
	m.Run(func(s *sim.Strand) {
		if s.ID() != 0 {
			return
		}
		took := th.enter(s)
		if took {
			t.Error("enter at full limit must be free (no slot taken)")
		}
		th.leave(s, took, true) // contention: halve
		if th.limit != 2 {
			t.Errorf("limit after decrease = %d, want 2", th.limit)
		}
		// Now entering takes a slot.
		if !th.enter(s) {
			t.Error("enter below max must take a slot")
		}
		th.leave(s, true, false)
		for i := 0; i < 2*32; i++ {
			took := th.enter(s)
			th.leave(s, took, false)
		}
		if th.limit != 4 {
			t.Errorf("limit did not recover: %d", th.limit)
		}
	})
}
