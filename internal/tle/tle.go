// Package tle implements Transactional Lock Elision (Section 7 of the
// paper): a lock-based critical section is executed as a hardware
// transaction that merely *reads* the lock word and verifies it is free, so
// non-conflicting critical sections run in parallel. If the transaction
// cannot commit, the policy retries — guided by the CPS register — and
// eventually falls back to really acquiring the lock. Because an elided
// transaction has the lock word in its read set, a fallback acquisition
// dooms all concurrent elisions, preserving lock semantics.
//
// Retry intelligence lives in the shared internal/policy engine. The local
// Policy struct is the experiment-facing configuration (kept stable for
// the JVM, MSF and ablation callers); it compiles down to either the
// "paper" policy (UseCPS true — the Section 6.1 heuristics, with TLE's
// back-off-on-UCTI wrinkle) or the "naive" policy (UseCPS false — the STL
// vector experiment's fixed-count loop). SetPolicy swaps in any registered
// policy. TLE's system-specific rule is the explicit TCC abort: it means
// the lock is really held, so the engine's Wait verdict is served here by
// spinning (with backoff) until the lock word reads free.
package tle

import (
	"rocktm/internal/core"
	"rocktm/internal/cps"
	"rocktm/internal/locktm"
	"rocktm/internal/obs"
	"rocktm/internal/policy"
	"rocktm/internal/rock"
	"rocktm/internal/sim"
)

// ElidableLock is the lock interface TLE wraps: a single word that is zero
// exactly when the lock is free, plus acquire/release for the fallback
// path. The ro flag selects a shared acquisition where the lock supports
// one.
type ElidableLock interface {
	Addr() sim.Addr
	Acquire(s *sim.Strand, ro bool)
	Release(s *sim.Strand, ro bool)
}

// SpinAdapter adapts a locktm.SpinLock.
type SpinAdapter struct{ L *locktm.SpinLock }

// Addr implements ElidableLock.
func (a SpinAdapter) Addr() sim.Addr { return a.L.Addr() }

// Acquire implements ElidableLock.
func (a SpinAdapter) Acquire(s *sim.Strand, _ bool) { a.L.Acquire(s) }

// Release implements ElidableLock.
func (a SpinAdapter) Release(s *sim.Strand, _ bool) { a.L.Release(s) }

// RWAdapter adapts a locktm.RWLock; read-only fallbacks acquire shared.
type RWAdapter struct{ L *locktm.RWLock }

// Addr implements ElidableLock.
func (a RWAdapter) Addr() sim.Addr { return a.L.Addr() }

// Acquire implements ElidableLock.
func (a RWAdapter) Acquire(s *sim.Strand, ro bool) {
	if ro {
		a.L.AcquireRead(s)
	} else {
		a.L.AcquireWrite(s)
	}
}

// Release implements ElidableLock.
func (a RWAdapter) Release(s *sim.Strand, ro bool) {
	if ro {
		a.L.ReleaseRead(s)
	} else {
		a.L.ReleaseWrite(s)
	}
}

// Policy tunes the retry heuristics. The defaults follow the paper: try
// until the failure score reaches MaxFailures, where a UCTI failure counts
// only UCTIWeight because the reported reason may be misspeculation
// (Section 8.1 uses 8 and one half); give up immediately on reasons that
// will never go away (unsupported instructions, divide); back off before
// retrying after a coherence conflict.
type Policy struct {
	// MaxFailures is the failure score at which elision gives up and the
	// lock is acquired.
	MaxFailures float64
	// UCTIWeight is how much a UCTI-flagged failure adds to the score.
	UCTIWeight float64
	// GiveUp aborts elision immediately when any of these CPS bits is set.
	GiveUp cps.Bits
	// BackoffOn backs off (exponentially) before retrying when any of
	// these bits is set.
	BackoffOn cps.Bits
	// UseCPS disables all CPS-based decisions when false: every failure
	// counts 1 and nothing gives up early — the "very simplistic policy"
	// of the C++ STL vector experiment (Section 7.1).
	UseCPS bool
}

// DefaultPolicy returns the CPS-guided policy used by the modified JVM and
// the MSF experiments. The numeric knobs are the shared internal/policy
// defaults (Section 8.1's "8 and one half").
func DefaultPolicy() Policy {
	return Policy{
		MaxFailures: policy.DefaultBudget,
		UCTIWeight:  policy.DefaultUCTIWeight,
		GiveUp:      policy.DefaultGiveUp,
		BackoffOn:   policy.DefaultBackoffOn,
		UseCPS:      true,
	}
}

// SimplePolicy returns the fixed-count policy of the STL vector experiment:
// n attempts, no CPS consultation.
func SimplePolicy(n int) Policy {
	return Policy{MaxFailures: float64(n), UCTIWeight: 1, UseCPS: false}
}

// build compiles the experiment-facing configuration down to a registered
// policy-engine instance: "paper" when CPS guidance is on, "naive" when it
// is off. TLE's tuning wrinkles: it backs off on a UCTI failure whose
// companion bits include a BackoffOn reason (PhTM and HyTM retry such
// failures immediately), and a TCC abort — the lock is held — maps to Wait
// with the default half-failure charge, even under the naive policy (the
// STL vector experiment's loop still honored the lock-held convention).
func (pol Policy) build() policy.Policy {
	t := policy.Tuning{
		Budget:      pol.MaxFailures,
		UCTIWeight:  pol.UCTIWeight,
		UCTIBackoff: true,
		GiveUp:      pol.GiveUp,
		BackoffOn:   pol.BackoffOn,
		TCCAction:   policy.Wait,
		TCCWeight:   policy.DefaultTCCWeight,
	}
	if pol.UseCPS {
		return policy.MustNew("paper", t)
	}
	return policy.MustNew("naive", t)
}

// System is a core.System executing every atomic block as an elided
// critical section of a single lock.
type System struct {
	name     string
	lock     ElidableLock
	cfg      Policy
	pol      policy.Policy
	stats    *core.Stats
	enabled  bool
	throttle *Throttle
	steps    core.PerStrand[tleStep]
}

// New builds a TLE system over the given lock.
func New(name string, lock ElidableLock, pol Policy) *System {
	return &System{
		name:    name,
		lock:    lock,
		cfg:     pol,
		pol:     pol.build(),
		stats:   core.NewStats(),
		enabled: true,
	}
}

// SetPolicy replaces the retry policy driving elision attempts (the
// default is the one compiled from the Policy config passed to New). The
// policy's Wait verdict is always served by the lock-held spin.
func (t *System) SetPolicy(pol policy.Policy) { t.pol = pol }

// SetEnabled turns elision off (every block acquires the lock), modelling
// "code for TLE emitted, but with the feature disabled" (Section 7.2).
func (t *System) SetEnabled(on bool) { t.enabled = on }

// Name implements core.System.
func (t *System) Name() string { return t.name }

// Stats implements core.System.
func (t *System) Stats() *core.Stats { return t.stats }

// Atomic implements core.System.
func (t *System) Atomic(s *sim.Strand, body func(core.Ctx)) {
	t.run(s, body, false)
}

// AtomicRO implements core.System.
func (t *System) AtomicRO(s *sim.Strand, body func(core.Ctx)) {
	t.run(s, body, true)
}

// Execute runs body under elision of an arbitrary caller-supplied lock
// (used by the mini-JVM, which has one monitor per object rather than one
// global lock).
func (t *System) Execute(s *sim.Strand, lock ElidableLock, body func(core.Ctx), ro bool) {
	t.executeOn(s, lock, body, ro)
}

func (t *System) run(s *sim.Strand, body func(core.Ctx), ro bool) {
	t.executeOn(s, t.lock, body, ro)
}

func (t *System) executeOn(s *sim.Strand, lock ElidableLock, body func(core.Ctx), ro bool) {
	st := t.stats
	if t.enabled {
		// When TLE is compiled in, the wrapper itself costs a little even
		// when disabled; charge the dispatch overhead symmetrically.
		s.Advance(2)
		sawCOH := false
		fellToLock := false
		if t.throttle != nil {
			took := t.throttle.enter(s)
			defer func() { t.throttle.leave(s, took, sawCOH && fellToLock) }()
		}
		lockAddr := lock.Addr()
		st.HWBlocks++
		// Bind the engine once per block; its budget check replaces the old
		// hand-rolled failScore loop (the top-of-loop test preserves the
		// zero-budget SimplePolicy(0) case: no attempt at all).
		eng := policy.Start(t.pol, 0)
	attempts:
		for !eng.Exhausted() {
			st.HWAttempts++
			ok, c := Try(s, lockAddr, body)
			if ok {
				st.HWCommits++
				st.Ops++
				eng.OnCommit()
				return
			}
			if c.Has(cps.COH) {
				sawCOH = true
			}
			st.RecordFailure(c)
			switch eng.OnFailure(s, c) {
			case policy.Wait:
				// The explicit abort: the lock was really held. Wait for it
				// to free up, then retry (the loop condition re-checks the
				// budget, which the wait's charge may have exhausted).
				for spin := 0; s.Load(lockAddr) != 0; spin++ {
					core.Backoff(s, spin)
				}
			case policy.Fallback:
				break attempts
			}
		}
		eng.OnFallback()
		fellToLock = true
		s.TraceEvent(obs.EvFallback, uint64(lock.Addr()))
	}
	lock.Acquire(s, ro)
	body(core.Raw{S: s})
	lock.Release(s, ro)
	st.LockAcquires++
	st.Ops++
}

// Try runs body once as an elided hardware transaction: the transaction
// reads the lock word (placing it in its read set), aborts explicitly if
// the lock is held, and otherwise runs the critical section speculatively.
func Try(s *sim.Strand, lockAddr sim.Addr, body func(core.Ctx)) (bool, cps.Bits) {
	return rock.Try(s, func(tx rock.Txn) {
		if tx.Load(lockAddr) != 0 {
			tx.Abort()
		}
		body(rock.Ctx{T: tx})
	})
}

// Throttle is the adaptive concurrency limiter sketched as future work in
// Section 7.2 ("adaptively throttling concurrency when contention
// arises"): an admission counter in simulated memory bounds how many
// strands may attempt elision at once. The limit follows an
// additive-increase / multiplicative-decrease rule driven by observed
// outcomes — coherence failures shrink it toward serial execution,
// successes grow it back toward full concurrency.
type Throttle struct {
	active sim.Addr
	limit  int
	max    int
	// successes since the last adjustment
	streak int
}

// NewThrottle builds a limiter for machines of up to maxConcurrency
// strands.
func NewThrottle(m *sim.Machine) *Throttle {
	n := m.Config().Strands
	return &Throttle{
		active: m.Mem().AllocLines(sim.WordsPerLine),
		limit:  n,
		max:    n,
	}
}

// enter blocks (spinning in virtual time) until an elision slot is free.
// While the limit sits at the maximum — no contention observed — admission
// is free: the shared counter is not touched at all, so the throttle costs
// nothing on the uncontended fast path. It reports whether a slot was
// actually taken.
func (th *Throttle) enter(s *sim.Strand) bool {
	if th.limit >= th.max {
		return false
	}
	for spin := 0; ; spin++ {
		cur := s.Load(th.active)
		if int(cur) < th.limit {
			if _, ok := s.CAS(th.active, cur, cur+1); ok {
				return true
			}
			continue
		}
		core.Backoff(s, spin)
	}
}

// leave releases the slot (if one was taken) and adapts the limit:
// multiplicative decrease when a block exhausted its elision budget on
// coherence conflicts, additive increase after a run of clean blocks.
func (th *Throttle) leave(s *sim.Strand, took, contended bool) {
	if took {
		s.Add(th.active, ^sim.Word(0))
	}
	th.adjust(contended)
}

// adjust applies the limit rule after a block completes (the host-side
// half of leave, shared with the continuation machine).
func (th *Throttle) adjust(contended bool) {
	if contended {
		th.streak = 0
		if th.limit > 1 {
			th.limit /= 2
		}
		return
	}
	th.streak++
	if th.streak >= 32 && th.limit < th.max {
		th.limit++
		th.streak = 0
	}
}

// SetThrottle installs an adaptive concurrency limiter on the system (nil
// removes it).
func (t *System) SetThrottle(th *Throttle) { t.throttle = th }
