// Continuation-machine execution (sim.RunStepped) for transactional lock
// elision: executeOn's attempt loop becomes an explicit state machine whose
// resume points are the elided attempt's transactional operations
// (rock.StepTry), the policy backoff delay, the lock-held wait spin, the
// throttle admission spin, and the fallback lock acquisition. The
// simulated-operation sequence is op-for-op identical to the coroutine
// path.
package tle

import (
	"rocktm/internal/core"
	"rocktm/internal/cps"
	"rocktm/internal/locktm"
	"rocktm/internal/obs"
	"rocktm/internal/policy"
	"rocktm/internal/rock"
	"rocktm/internal/sim"
)

// stepElidable is the continuation-machine face of an ElidableLock. The
// two locktm adapters implement it; locks without it (e.g. JVM monitors)
// keep their system on the coroutine driver.
type stepElidable interface {
	armAcquire(ro bool)
	stepAcquire(s *sim.Strand, ro bool) bool
	armRelease(ro bool)
	stepRelease(s *sim.Strand, ro bool) bool
}

// spinElide steps a SpinAdapter lock.
type spinElide struct {
	l   *locktm.SpinLock
	acq locktm.SpinAcquire
}

func (e *spinElide) armAcquire(bool) { e.acq.Arm() }
func (e *spinElide) stepAcquire(s *sim.Strand, _ bool) bool {
	return e.acq.Step(s, e.l)
}
func (e *spinElide) armRelease(bool) {}
func (e *spinElide) stepRelease(s *sim.Strand, _ bool) bool {
	return e.l.StepRelease(s)
}

// rwElide steps an RWAdapter lock.
type rwElide struct {
	l   *locktm.RWLock
	acq locktm.RWAcquire
	rel locktm.RWRelease
}

func (e *rwElide) armAcquire(ro bool) { e.acq.Arm(!ro) }
func (e *rwElide) stepAcquire(s *sim.Strand, ro bool) bool {
	return e.acq.Step(s, e.l)
}
func (e *rwElide) armRelease(bool) { e.rel.Arm() }
func (e *rwElide) stepRelease(s *sim.Strand, ro bool) bool {
	if ro {
		return e.rel.Step(s, e.l)
	}
	return e.l.StepReleaseWrite(s)
}

// stepLockFor builds the stepping face of the system's lock, or nil when
// the lock type has none.
func (t *System) stepLockFor() stepElidable {
	switch a := t.lock.(type) {
	case SpinAdapter:
		return &spinElide{l: a.L}
	case RWAdapter:
		return &rwElide{l: a.L}
	}
	return nil
}

// CanStep implements core.StepCapable: stepping needs a lock with a
// continuation-machine face.
func (t *System) CanStep() bool { return t.stepLockFor() != nil }

// throttleEnter is Throttle.enter as a continuation machine.
type throttleEnter struct {
	st   uint8 // 0: load, 1: CAS, 2: backoff
	spin int
	cur  sim.Word
	back core.StepBackoff
}

func (a *throttleEnter) arm() { *a = throttleEnter{} }

// step advances admission; false means the strand must yield. took mirrors
// enter's result and is meaningful once step returns true.
func (a *throttleEnter) step(s *sim.Strand, th *Throttle) (done, took bool) {
	if th.limit >= th.max {
		return true, false
	}
	for {
		switch a.st {
		case 0:
			cur := s.Load(th.active)
			if s.YieldPending() {
				return false, false
			}
			a.cur = cur
			if int(cur) < th.limit {
				a.st = 1
			} else {
				a.st = 2
			}
		case 1:
			_, ok := s.CAS(th.active, a.cur, a.cur+1)
			if s.YieldPending() {
				return false, false
			}
			if ok {
				return true, true
			}
			a.st = 0
		default:
			if !a.back.Step(s, a.spin) {
				return false, false
			}
			a.spin++
			a.st = 0
		}
	}
}

// tleStep phases.
const (
	tleDispatch uint8 = iota
	tleThrottleEnter
	tleAttemptTop
	tleTry
	tleDelay
	tleWaitSpin
	tleFallbackDecide
	tleLockAcquire
	tleBody
	tleRelease
	tleThrottleLeave
)

// tleStep is one elided atomic block as a continuation machine.
type tleStep struct {
	t    *System
	s    *sim.Strand
	lk   stepElidable
	body func(core.Ctx)
	// hwRun runs the body transactionally (rock.StepCtx), lockRun runs it
	// under the held lock (core.StepRaw) — the same two contexts the
	// coroutine path passes. Both ctxs are boxed once at init: a two-word
	// ctx struct allocates on every interface conversion.
	hwRun   func()
	lockRun func()
	hwCtx   core.Ctx
	lockCtx core.Ctx
	ro      bool

	phase uint8
	eng   policy.Engine
	try   rock.StepTry
	log   core.OpLog
	back  core.StepBackoff
	thr   throttleEnter
	wait  struct {
		st   uint8 // 0: load, 1: backoff
		spin int
		back core.StepBackoff
	}

	nextAct    policy.Action
	delayAtt   int
	took       bool
	sawCOH     bool
	fellToLock bool
}

// Step implements core.StepBlock.
func (b *tleStep) Step() bool {
	t, s, st := b.t, b.s, b.t.stats
	for {
		switch b.phase {
		case tleDispatch:
			s.Advance(2)
			if s.YieldPending() {
				return false
			}
			if t.throttle != nil {
				b.thr.arm()
				b.phase = tleThrottleEnter
			} else {
				b.phase = tleAttemptTop
			}
		case tleThrottleEnter:
			done, took := b.thr.step(s, t.throttle)
			if !done {
				return false
			}
			b.took = took
			b.phase = tleAttemptTop
		case tleAttemptTop:
			if b.eng.Exhausted() {
				b.phase = tleFallbackDecide
				continue
			}
			st.HWAttempts++
			b.try.Arm(t.lock.Addr(), true)
			b.phase = tleTry
		case tleTry:
			done, committed, c := b.try.Step()
			if !done {
				return false
			}
			if committed {
				st.HWCommits++
				st.Ops++
				b.eng.OnCommit()
				return b.exit()
			}
			if c.Has(cps.COH) {
				b.sawCOH = true
			}
			st.RecordFailure(c)
			act, delayAtt, delay := b.eng.DecideFailure(c)
			b.nextAct, b.delayAtt = act, delayAtt
			if delay {
				b.phase = tleDelay
			} else if !b.dispatchAct() {
				continue
			}
		case tleDelay:
			if !b.back.Step(s, b.delayAtt) {
				return false
			}
			b.dispatchAct()
		case tleWaitSpin:
			w := &b.wait
			for {
				if w.st == 0 {
					lw := s.Load(t.lock.Addr())
					if s.YieldPending() {
						return false
					}
					if lw == 0 {
						b.phase = tleAttemptTop
						break
					}
					w.st = 1
				}
				if !w.back.Step(s, w.spin) {
					return false
				}
				w.spin++
				w.st = 0
			}
		case tleFallbackDecide:
			b.eng.OnFallback()
			b.fellToLock = true
			s.TraceEvent(obs.EvFallback, uint64(t.lock.Addr()))
			b.lk.armAcquire(b.ro)
			b.phase = tleLockAcquire
		case tleLockAcquire:
			if !b.lk.stepAcquire(s, b.ro) {
				return false
			}
			b.log.Reset()
			b.phase = tleBody
		case tleBody:
			b.log.Rewind()
			if !core.RunJournaled(&b.log, b.lockRun) {
				return false
			}
			b.lk.armRelease(b.ro)
			b.phase = tleRelease
		case tleRelease:
			if !b.lk.stepRelease(s, b.ro) {
				return false
			}
			st.LockAcquires++
			st.Ops++
			return b.exit()
		default: // tleThrottleLeave
			if b.took {
				s.Add(t.throttle.active, ^sim.Word(0))
				if s.YieldPending() {
					return false
				}
				b.took = false
			}
			t.throttle.adjust(b.sawCOH && b.fellToLock)
			return true
		}
	}
}

// dispatchAct routes a policy verdict to its phase; the false return means
// the caller should continue the phase loop immediately.
func (b *tleStep) dispatchAct() bool {
	switch b.nextAct {
	case policy.Wait:
		b.wait.st, b.wait.spin = 0, 0
		b.phase = tleWaitSpin
	case policy.Fallback:
		b.phase = tleFallbackDecide
	default:
		b.phase = tleAttemptTop
	}
	return false
}

// exit runs the block's completion: the deferred throttle leave when one
// is installed, otherwise done.
func (b *tleStep) exit() bool {
	if b.t.enabled && b.t.throttle != nil {
		b.phase = tleThrottleLeave
		return b.Step()
	}
	return true
}

// StepAtomic implements core.StepSystem.
func (t *System) StepAtomic(s *sim.Strand, body func(core.Ctx), ro bool) core.StepBlock {
	b := t.steps.Get(s.ID())
	if b.hwRun == nil {
		b.t, b.s = t, s
		b.lk = t.stepLockFor()
		b.hwCtx = rock.StepCtx{T: rock.On(s), Log: &b.log}
		b.lockCtx = core.StepRaw{S: s, Log: &b.log}
		b.hwRun = func() { b.body(b.hwCtx) }
		b.lockRun = func() { b.body(b.lockCtx) }
		b.try.Init(s, &b.log, b.hwRun)
	}
	b.body, b.ro = body, ro
	b.sawCOH, b.fellToLock, b.took = false, false, false
	if t.enabled {
		b.phase = tleDispatch
		t.stats.HWBlocks++
		b.eng = policy.Start(t.pol, 0)
	} else {
		b.lk.armAcquire(ro)
		b.phase = tleLockAcquire
	}
	return b
}

var _ core.StepSystem = (*System)(nil)
var _ core.StepCapable = (*System)(nil)
