package vector

import (
	"testing"
	"testing/quick"

	"rocktm/internal/core"
	"rocktm/internal/locktm"
	"rocktm/internal/sim"
	"rocktm/internal/tle"
)

func newMachine(strands int) *sim.Machine {
	cfg := sim.DefaultConfig(strands)
	cfg.MemWords = 1 << 19
	cfg.MaxCycles = 1 << 42
	return sim.New(cfg)
}

func TestPushPopRead(t *testing.T) {
	m := newMachine(1)
	v := New(m, 16, 4)
	m.Run(func(s *sim.Strand) {
		c := core.Raw{S: s}
		if got := v.Read(c, 2); got != 2 {
			t.Errorf("Read(2) = %d, want 2", got)
		}
		// Read is unchecked (STL operator[]): beyond-capacity indexes are
		// clamped to the last slot, which is unwritten here.
		if got := v.Read(c, 99); got != 0 {
			t.Errorf("out-of-range Read = %d, want 0 (unwritten slot)", got)
		}
		if !v.PushBack(c, 42) {
			t.Error("PushBack failed below capacity")
		}
		if got, ok := v.PopBack(c); !ok || got != 42 {
			t.Errorf("PopBack = (%d,%v), want (42,true)", got, ok)
		}
	})
	if v.Size(m.Mem()) != 4 {
		t.Errorf("size = %d, want 4", v.Size(m.Mem()))
	}
}

func TestCapacityAndEmptyEdges(t *testing.T) {
	m := newMachine(1)
	v := New(m, 2, 0)
	m.Run(func(s *sim.Strand) {
		c := core.Raw{S: s}
		if _, ok := v.PopBack(c); ok {
			t.Error("PopBack on empty succeeded")
		}
		if v.Read(c, 0) != 0 {
			t.Error("Read of unwritten slot should be 0")
		}
		if !v.PushBack(c, 1) || !v.PushBack(c, 2) {
			t.Error("pushes below capacity failed")
		}
		if v.PushBack(c, 3) {
			t.Error("push above capacity succeeded")
		}
	})
}

// TestSizeConservedUnderTLE is the Figure 3(a) invariant: with balanced
// push/pop traffic under elision the final size equals initial plus the
// push-pop delta, exactly.
func TestSizeConservedUnderTLE(t *testing.T) {
	const threads = 4
	m := newMachine(threads)
	v := New(m, 4096, 100)
	sys := tle.New("htm.oneLock", tle.SpinAdapter{L: locktm.NewSpinLock(m.Mem())}, tle.SimplePolicy(20))
	pushes := make([]int, threads)
	pops := make([]int, threads)
	m.Run(func(s *sim.Strand) {
		for i := 0; i < 400; i++ {
			switch s.RandIntn(3) {
			case 0:
				ok := false
				sys.Atomic(s, func(c core.Ctx) { ok = v.PushBack(c, 1) })
				if ok {
					pushes[s.ID()]++
				}
			case 1:
				ok := false
				sys.Atomic(s, func(c core.Ctx) { _, ok = v.PopBack(c) })
				if ok {
					pops[s.ID()]++
				}
			default:
				sys.AtomicRO(s, func(c core.Ctx) { v.Read(c, s.RandIntn(128)) })
			}
		}
	})
	want := 100
	for i := 0; i < threads; i++ {
		want += pushes[i] - pops[i]
	}
	if got := v.Size(m.Mem()); got != want {
		t.Fatalf("size = %d, want %d", got, want)
	}
}

func TestQuickPushPopSequences(t *testing.T) {
	prop := func(ops []bool) bool {
		m := newMachine(1)
		v := New(m, len(ops)+8, 0)
		okAll := true
		m.Run(func(s *sim.Strand) {
			c := core.Raw{S: s}
			depth := 0
			for _, push := range ops {
				if push {
					v.PushBack(c, sim.Word(depth))
					depth++
				} else if depth > 0 {
					got, ok := v.PopBack(c)
					depth--
					if !ok || got != sim.Word(depth) {
						okAll = false
						return
					}
				} else if _, ok := v.PopBack(c); ok {
					okAll = false
					return
				}
			}
			if v.Size(m.Mem()) != depth {
				okAll = false
			}
		})
		return okAll
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
