// Package vector implements the STL-vector analogue of the Section 7.1 TLE
// experiment: a contiguous array with a size word, exercised with
// increment (push_back), decrement (pop_back) and read operations. The
// paper wraps an *unmodified* std::vector's critical sections in simple
// TLE macros; here the same operations are written against core.Ctx and
// wrapped by whichever System the experiment selects.
package vector

import (
	"rocktm/internal/core"
	"rocktm/internal/sim"
)

// Branch sites.
var (
	pcPushCap = core.PC("vector.push.cap")
	pcPopZero = core.PC("vector.pop.zero")
	pcReadIdx = core.PC("vector.read.idx")
)

// Vector is a bounded vector in simulated memory (capacity is reserved up
// front; the experiment's size wanders well inside it, as the paper's
// ctr-range=40 around initsize=100 does).
type Vector struct {
	sizeA sim.Addr
	data  sim.Addr
	cap   int
}

// New builds a vector with the given capacity and initial size (elements
// initialized to their index).
func New(m *sim.Machine, capacity, initial int) *Vector {
	if initial > capacity {
		panic("vector: initial size exceeds capacity")
	}
	v := &Vector{
		sizeA: m.Mem().AllocLines(sim.WordsPerLine),
		data:  m.Mem().AllocLines(capacity),
		cap:   capacity,
	}
	m.Mem().Poke(v.sizeA, sim.Word(initial))
	for i := 0; i < initial; i++ {
		m.Mem().Poke(v.data+sim.Addr(i), sim.Word(i))
	}
	return v
}

// PushBack appends val; it reports false when the vector is at capacity
// (the experiment never reaches it).
func (v *Vector) PushBack(c core.Ctx, val sim.Word) bool {
	sz := c.Load(v.sizeA)
	fits := int(sz) < v.cap
	c.Branch(pcPushCap, fits, true)
	if !fits {
		return false
	}
	c.Store(v.data+sim.Addr(sz), val)
	c.Store(v.sizeA, sz+1)
	return true
}

// PopBack removes the last element, reporting the value and whether the
// vector was non-empty.
func (v *Vector) PopBack(c core.Ctx) (sim.Word, bool) {
	sz := c.Load(v.sizeA)
	empty := sz == 0
	c.Branch(pcPopZero, empty, true)
	if empty {
		return 0, false
	}
	val := c.Load(v.data + sim.Addr(sz-1))
	c.Store(v.sizeA, sz-1)
	return val, true
}

// Read returns element i. Like STL operator[], it is unchecked: it does
// not consult the size word, so concurrent read-mostly traffic under lock
// elision shares no cache line with push/pop traffic (the property behind
// Figure 3(a)'s scaling). The caller keeps i within the range the workload
// guarantees valid.
func (v *Vector) Read(c core.Ctx, i int) sim.Word {
	if i >= v.cap {
		i = v.cap - 1
	}
	c.Branch(pcReadIdx, i&1 == 0, false)
	return c.Load(v.data + sim.Addr(i))
}

// Size returns the current size (validation helper).
func (v *Vector) Size(mem *sim.Memory) int { return int(mem.Peek(v.sizeA)) }
