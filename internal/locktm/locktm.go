// Package locktm provides the lock-based baselines of the paper's
// experiments: a single test-and-test-and-set spinlock ("one-lock"), a
// reader-writer spinlock ("rw-lock"), and unprotected sequential execution
// ("seq"). The locks live in simulated memory, so lock traffic has
// authentic cache behaviour — and so that a hardware transaction can read a
// lock word into its read set and get doomed when someone acquires it,
// which is exactly what transactional lock elision relies on.
package locktm

import (
	"rocktm/internal/core"
	"rocktm/internal/obs"
	"rocktm/internal/sim"
)

// SpinLock is a test-and-test-and-set spinlock with exponential backoff in
// simulated memory.
type SpinLock struct {
	addr sim.Addr
}

// NewSpinLock allocates a lock on its own cache line (to avoid false
// sharing with neighbouring data).
func NewSpinLock(mem *sim.Memory) *SpinLock {
	return &SpinLock{addr: mem.AllocLines(sim.WordsPerLine)}
}

// Addr returns the lock word's address (the word TLE reads to validate the
// lock is free).
func (l *SpinLock) Addr() sim.Addr { return l.addr }

// Acquire spins until the lock is taken.
func (l *SpinLock) Acquire(s *sim.Strand) {
	for attempt := 0; ; attempt++ {
		if s.Load(l.addr) == 0 {
			if _, ok := s.CAS(l.addr, 0, 1); ok {
				s.TraceEvent(obs.EvLockAcquire, uint64(l.addr))
				return
			}
		}
		core.Backoff(s, attempt)
	}
}

// TryAcquire attempts to take the lock once.
func (l *SpinLock) TryAcquire(s *sim.Strand) bool {
	if s.Load(l.addr) != 0 {
		return false
	}
	_, ok := s.CAS(l.addr, 0, 1)
	if ok {
		s.TraceEvent(obs.EvLockAcquire, uint64(l.addr))
	}
	return ok
}

// Release frees the lock.
func (l *SpinLock) Release(s *sim.Strand) {
	s.Store(l.addr, 0)
	s.TraceEvent(obs.EvLockRelease, uint64(l.addr))
}

// Held reports whether the lock word is nonzero (a racy peek, used by
// elision code inside transactions via Ctx.Load instead).
func (l *SpinLock) Held(s *sim.Strand) bool { return s.Load(l.addr) != 0 }

// RWLock is a reader-writer spinlock: the word holds 2*readers, with the
// low bit set while a writer holds it.
type RWLock struct {
	addr sim.Addr
}

// NewRWLock allocates a reader-writer lock on its own cache line.
func NewRWLock(mem *sim.Memory) *RWLock {
	return &RWLock{addr: mem.AllocLines(sim.WordsPerLine)}
}

// Addr returns the lock word's address.
func (l *RWLock) Addr() sim.Addr { return l.addr }

const rwWriter = 1

// AcquireWrite takes the lock exclusively.
func (l *RWLock) AcquireWrite(s *sim.Strand) {
	for attempt := 0; ; attempt++ {
		if s.Load(l.addr) == 0 {
			if _, ok := s.CAS(l.addr, 0, rwWriter); ok {
				s.TraceEvent(obs.EvLockAcquire, uint64(l.addr))
				return
			}
		}
		core.Backoff(s, attempt)
	}
}

// ReleaseWrite frees the exclusive lock.
func (l *RWLock) ReleaseWrite(s *sim.Strand) {
	s.Store(l.addr, 0)
	s.TraceEvent(obs.EvLockRelease, uint64(l.addr))
}

// AcquireRead takes the lock shared.
func (l *RWLock) AcquireRead(s *sim.Strand) {
	for attempt := 0; ; attempt++ {
		cur := s.Load(l.addr)
		if cur&rwWriter == 0 {
			if _, ok := s.CAS(l.addr, cur, cur+2); ok {
				s.TraceEvent(obs.EvLockAcquire, uint64(l.addr))
				return
			}
		}
		core.Backoff(s, attempt)
	}
}

// ReleaseRead drops a shared hold.
func (l *RWLock) ReleaseRead(s *sim.Strand) {
	for {
		cur := s.Load(l.addr)
		if _, ok := s.CAS(l.addr, cur, cur-2); ok {
			s.TraceEvent(obs.EvLockRelease, uint64(l.addr))
			return
		}
	}
}

// OneLock is the "one-lock" System: every atomic block runs under a single
// global spinlock.
type OneLock struct {
	lock  *SpinLock
	stats *core.Stats
	steps core.PerStrand[oneLockStep]
}

// NewOneLock builds the system over machine m.
func NewOneLock(m *sim.Machine) *OneLock {
	return &OneLock{lock: NewSpinLock(m.Mem()), stats: core.NewStats()}
}

// Lock exposes the underlying lock (shared with a TLE system eliding it).
func (o *OneLock) Lock() *SpinLock { return o.lock }

// Name implements core.System.
func (o *OneLock) Name() string { return "one-lock" }

// Atomic implements core.System.
func (o *OneLock) Atomic(s *sim.Strand, body func(core.Ctx)) {
	o.lock.Acquire(s)
	body(core.Raw{S: s})
	o.lock.Release(s)
	o.stats.Ops++
	o.stats.LockAcquires++
}

// AtomicRO implements core.System.
func (o *OneLock) AtomicRO(s *sim.Strand, body func(core.Ctx)) { o.Atomic(s, body) }

// Stats implements core.System.
func (o *OneLock) Stats() *core.Stats { return o.stats }

// RW is the reader-writer-lock System: read-only blocks take the lock
// shared.
type RW struct {
	lock  *RWLock
	stats *core.Stats
	steps core.PerStrand[rwStep]
}

// NewRW builds the system over machine m.
func NewRW(m *sim.Machine) *RW {
	return &RW{lock: NewRWLock(m.Mem()), stats: core.NewStats()}
}

// Lock exposes the underlying reader-writer lock.
func (r *RW) Lock() *RWLock { return r.lock }

// Name implements core.System.
func (r *RW) Name() string { return "rw-lock" }

// Atomic implements core.System.
func (r *RW) Atomic(s *sim.Strand, body func(core.Ctx)) {
	r.lock.AcquireWrite(s)
	body(core.Raw{S: s})
	r.lock.ReleaseWrite(s)
	r.stats.Ops++
	r.stats.LockAcquires++
}

// AtomicRO implements core.System.
func (r *RW) AtomicRO(s *sim.Strand, body func(core.Ctx)) {
	r.lock.AcquireRead(s)
	body(core.Raw{S: s})
	r.lock.ReleaseRead(s)
	r.stats.Ops++
	r.stats.ROFast++
}

// Stats implements core.System.
func (r *RW) Stats() *core.Stats { return r.stats }

// Seq is unprotected execution, the sequential baseline (msf-seq): atomic
// blocks run raw with no synchronization at all. Only meaningful single
// threaded.
type Seq struct {
	stats *core.Stats
	steps core.PerStrand[seqStep]
}

// NewSeq builds the sequential baseline.
func NewSeq() *Seq { return &Seq{stats: core.NewStats()} }

// Name implements core.System.
func (q *Seq) Name() string { return "seq" }

// Atomic implements core.System.
func (q *Seq) Atomic(s *sim.Strand, body func(core.Ctx)) {
	body(core.Raw{S: s})
	q.stats.Ops++
}

// AtomicRO implements core.System.
func (q *Seq) AtomicRO(s *sim.Strand, body func(core.Ctx)) { q.Atomic(s, body) }

// Stats implements core.System.
func (q *Seq) Stats() *core.Stats { return q.stats }
