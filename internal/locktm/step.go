// Continuation-machine execution (sim.RunStepped) for the lock-based
// systems: spin acquisitions become explicit state machines (each lock-word
// load, CAS and backoff delay is a resume point), lock-protected bodies run
// under core.StepRaw with an OpLog for re-runs, and OneLock/RW/Seq
// implement core.StepSystem. The simulated-operation sequences are
// op-for-op identical to the coroutine paths.
package locktm

import (
	"rocktm/internal/core"
	"rocktm/internal/obs"
	"rocktm/internal/sim"
)

// SpinAcquire is SpinLock.Acquire as a continuation machine.
type SpinAcquire struct {
	attempt int
	st      uint8 // 0: load, 1: CAS, 2: backoff
	back    core.StepBackoff
}

// Arm resets the machine for a fresh acquisition.
func (a *SpinAcquire) Arm() { *a = SpinAcquire{} }

// Step advances the acquisition; false means the strand must yield.
func (a *SpinAcquire) Step(s *sim.Strand, l *SpinLock) bool {
	for {
		switch a.st {
		case 0:
			w := s.Load(l.addr)
			if s.YieldPending() {
				return false
			}
			if w == 0 {
				a.st = 1
			} else {
				a.st = 2
			}
		case 1:
			_, ok := s.CAS(l.addr, 0, 1)
			if s.YieldPending() {
				return false
			}
			if ok {
				s.TraceEvent(obs.EvLockAcquire, uint64(l.addr))
				return true
			}
			a.st = 2
		default:
			if !a.back.Step(s, a.attempt) {
				return false
			}
			a.attempt++
			a.st = 0
		}
	}
}

// StepRelease is Release with the store's yield surfaced; false means the
// strand must yield and re-invoke.
func (l *SpinLock) StepRelease(s *sim.Strand) bool {
	s.Store(l.addr, 0)
	if s.YieldPending() {
		return false
	}
	s.TraceEvent(obs.EvLockRelease, uint64(l.addr))
	return true
}

// RWAcquire is AcquireWrite/AcquireRead as a continuation machine; write
// selects the exclusive path.
type RWAcquire struct {
	write   bool
	attempt int
	st      uint8 // 0: load, 1: CAS, 2: backoff
	cur     sim.Word
	back    core.StepBackoff
}

// Arm resets the machine for a fresh acquisition.
func (a *RWAcquire) Arm(write bool) { *a = RWAcquire{write: write} }

// Step advances the acquisition; false means the strand must yield.
func (a *RWAcquire) Step(s *sim.Strand, l *RWLock) bool {
	for {
		switch a.st {
		case 0:
			cur := s.Load(l.addr)
			if s.YieldPending() {
				return false
			}
			a.cur = cur
			ready := cur == 0
			if !a.write {
				ready = cur&rwWriter == 0
			}
			if ready {
				a.st = 1
			} else {
				a.st = 2
			}
		case 1:
			next := sim.Word(rwWriter)
			if !a.write {
				next = a.cur + 2
			}
			_, ok := s.CAS(l.addr, a.cur, next)
			if s.YieldPending() {
				return false
			}
			if ok {
				s.TraceEvent(obs.EvLockAcquire, uint64(l.addr))
				return true
			}
			a.st = 2
		default:
			if !a.back.Step(s, a.attempt) {
				return false
			}
			a.attempt++
			a.st = 0
		}
	}
}

// StepReleaseWrite is ReleaseWrite with the store's yield surfaced.
func (l *RWLock) StepReleaseWrite(s *sim.Strand) bool {
	s.Store(l.addr, 0)
	if s.YieldPending() {
		return false
	}
	s.TraceEvent(obs.EvLockRelease, uint64(l.addr))
	return true
}

// RWRelease is ReleaseRead as a continuation machine (the shared count is
// dropped with a load/CAS loop).
type RWRelease struct {
	st  uint8 // 0: load, 1: CAS
	cur sim.Word
}

// Arm resets the machine for a fresh release.
func (a *RWRelease) Arm() { *a = RWRelease{} }

// Step advances the release; false means the strand must yield.
func (a *RWRelease) Step(s *sim.Strand, l *RWLock) bool {
	for {
		if a.st == 0 {
			cur := s.Load(l.addr)
			if s.YieldPending() {
				return false
			}
			a.cur = cur
			a.st = 1
		}
		_, ok := s.CAS(l.addr, a.cur, a.cur-2)
		if s.YieldPending() {
			return false
		}
		if ok {
			s.TraceEvent(obs.EvLockRelease, uint64(l.addr))
			return true
		}
		a.st = 0
	}
}

// oneLockStep is one OneLock atomic block as a continuation machine:
// acquire → journaled body → release.
type oneLockStep struct {
	o     *OneLock
	s     *sim.Strand
	body  func(core.Ctx)
	run   func()
	ctx   core.Ctx // StepRaw, boxed once (a two-word ctx allocates per conversion)
	log   core.OpLog
	acq   SpinAcquire
	phase uint8
}

// Step implements core.StepBlock.
func (b *oneLockStep) Step() bool {
	for {
		switch b.phase {
		case 0:
			if !b.acq.Step(b.s, b.o.lock) {
				return false
			}
			b.log.Reset()
			b.phase = 1
		case 1:
			b.log.Rewind()
			if !core.RunJournaled(&b.log, b.run) {
				return false
			}
			b.phase = 2
		default:
			if !b.o.lock.StepRelease(b.s) {
				return false
			}
			b.o.stats.Ops++
			b.o.stats.LockAcquires++
			return true
		}
	}
}

// StepAtomic implements core.StepSystem.
func (o *OneLock) StepAtomic(s *sim.Strand, body func(core.Ctx), _ bool) core.StepBlock {
	b := o.steps.Get(s.ID())
	if b.run == nil {
		b.o, b.s = o, s
		b.ctx = core.StepRaw{S: s, Log: &b.log}
		b.run = func() { b.body(b.ctx) }
	}
	b.body = body
	b.phase = 0
	b.acq.Arm()
	return b
}

// rwStep is one RW atomic block as a continuation machine.
type rwStep struct {
	r     *RW
	s     *sim.Strand
	ro    bool
	body  func(core.Ctx)
	run   func()
	ctx   core.Ctx // StepRaw, boxed once
	log   core.OpLog
	acq   RWAcquire
	rel   RWRelease
	phase uint8
}

// Step implements core.StepBlock.
func (b *rwStep) Step() bool {
	for {
		switch b.phase {
		case 0:
			if !b.acq.Step(b.s, b.r.lock) {
				return false
			}
			b.log.Reset()
			b.phase = 1
		case 1:
			b.log.Rewind()
			if !core.RunJournaled(&b.log, b.run) {
				return false
			}
			b.phase = 2
		default:
			if b.ro {
				if !b.rel.Step(b.s, b.r.lock) {
					return false
				}
				b.r.stats.Ops++
				b.r.stats.ROFast++
			} else {
				if !b.r.lock.StepReleaseWrite(b.s) {
					return false
				}
				b.r.stats.Ops++
				b.r.stats.LockAcquires++
			}
			return true
		}
	}
}

// StepAtomic implements core.StepSystem.
func (r *RW) StepAtomic(s *sim.Strand, body func(core.Ctx), ro bool) core.StepBlock {
	b := r.steps.Get(s.ID())
	if b.run == nil {
		b.r, b.s = r, s
		b.ctx = core.StepRaw{S: s, Log: &b.log}
		b.run = func() { b.body(b.ctx) }
	}
	b.body, b.ro = body, ro
	b.phase = 0
	b.acq.Arm(!ro)
	b.rel.Arm()
	return b
}

// seqStep is one Seq atomic block as a continuation machine (just the
// journaled body).
type seqStep struct {
	q    *Seq
	s    *sim.Strand
	body func(core.Ctx)
	run  func()
	ctx  core.Ctx // StepRaw, boxed once
	log  core.OpLog
}

// Step implements core.StepBlock.
func (b *seqStep) Step() bool {
	b.log.Rewind()
	if !core.RunJournaled(&b.log, b.run) {
		return false
	}
	b.q.stats.Ops++
	return true
}

// StepAtomic implements core.StepSystem.
func (q *Seq) StepAtomic(s *sim.Strand, body func(core.Ctx), _ bool) core.StepBlock {
	b := q.steps.Get(s.ID())
	if b.run == nil {
		b.q, b.s = q, s
		b.ctx = core.StepRaw{S: s, Log: &b.log}
		b.run = func() { b.body(b.ctx) }
	}
	b.body = body
	b.log.Reset()
	return b
}

var (
	_ core.StepSystem = (*OneLock)(nil)
	_ core.StepSystem = (*RW)(nil)
	_ core.StepSystem = (*Seq)(nil)
)
