package locktm

import (
	"testing"

	"rocktm/internal/core"
	"rocktm/internal/sim"
)

func newMachine(strands int) *sim.Machine {
	cfg := sim.DefaultConfig(strands)
	cfg.MemWords = 1 << 19
	cfg.MaxCycles = 1 << 42
	return sim.New(cfg)
}

func TestSpinLockMutualExclusion(t *testing.T) {
	const threads, per = 4, 200
	m := newMachine(threads)
	lock := NewSpinLock(m.Mem())
	a := m.Mem().AllocLines(8)
	m.Run(func(s *sim.Strand) {
		for i := 0; i < per; i++ {
			lock.Acquire(s)
			v := s.Load(a)
			s.Advance(10) // widen the window
			s.Store(a, v+1)
			lock.Release(s)
		}
	})
	if got := m.Mem().Peek(a); got != threads*per {
		t.Fatalf("counter = %d, want %d", got, threads*per)
	}
}

func TestTryAcquire(t *testing.T) {
	m := newMachine(1)
	lock := NewSpinLock(m.Mem())
	m.Run(func(s *sim.Strand) {
		if !lock.TryAcquire(s) {
			t.Fatal("TryAcquire on free lock failed")
		}
		if lock.TryAcquire(s) {
			t.Fatal("TryAcquire on held lock succeeded")
		}
		lock.Release(s)
		if !lock.TryAcquire(s) {
			t.Fatal("TryAcquire after release failed")
		}
	})
}

func TestRWLockReadersExcludeWriter(t *testing.T) {
	const threads = 4
	m := newMachine(threads)
	lock := NewRWLock(m.Mem())
	a := m.Mem().AllocLines(8)
	b := m.Mem().AllocLines(8)
	bad := false
	m.Run(func(s *sim.Strand) {
		for i := 0; i < 100; i++ {
			if s.ID() == 0 {
				lock.AcquireWrite(s)
				s.Store(a, sim.Word(i))
				s.Advance(30)
				s.Store(b, sim.Word(i))
				lock.ReleaseWrite(s)
			} else {
				lock.AcquireRead(s)
				if s.Load(a) != s.Load(b) {
					bad = true
				}
				lock.ReleaseRead(s)
			}
		}
	})
	if bad {
		t.Fatal("reader observed a half-finished write section")
	}
}

func TestSystemsRunBodies(t *testing.T) {
	m := newMachine(2)
	one := NewOneLock(m)
	rw := NewRW(m)
	seq := NewSeq()
	a := m.Mem().AllocLines(8)
	m.Run(func(s *sim.Strand) {
		one.Atomic(s, func(c core.Ctx) { c.Store(a, c.Load(a)+1) })
		rw.Atomic(s, func(c core.Ctx) { c.Store(a, c.Load(a)+1) })
		rw.AtomicRO(s, func(c core.Ctx) { c.Load(a) })
		if s.ID() == 0 {
			seq.Atomic(s, func(c core.Ctx) { c.Store(a, c.Load(a)+1) })
		}
	})
	if got := m.Mem().Peek(a); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if one.Name() != "one-lock" || rw.Name() != "rw-lock" || seq.Name() != "seq" {
		t.Error("system names wrong")
	}
	if rw.Stats().ROFast != 2 {
		t.Errorf("ROFast = %d, want 2", rw.Stats().ROFast)
	}
}
