// Continuation-machine execution support (sim.RunStepped).
//
// Under the continuation driver a strand cannot suspend mid-stack: a
// simulated operation interrupted by a pending yield bails out before any
// side effect and control must return to the driver loop through ordinary
// returns. System code (attempt loops, commit protocols, spins) converts
// its yield points into explicit continuation states; opaque atomic-block
// *bodies* — pure functions of the values their Ctx returns — run against
// an OpLog journal. When an operation inside a body is interrupted, the
// journal switches to bailed mode: every subsequent journaled operation
// returns zero without touching the simulator, the body runs to its
// ordinary end (its control flow is poison-terminating: any backward
// branch exits once every operation yields zero — true of pointer-walk
// and fixup kernels, whose loops follow null links or test a color bit),
// and the attempt machine observes Bailed, yields, and re-runs the body:
// journaled operations are served from the log (no simulated work,
// host-side bookkeeping redone deterministically) and live execution
// resumes at exactly the interrupted operation. The bail flag replaced a
// panic-based unwind (YieldSignal) whose runtime cost — one
// gopanic/recover per quantum expiry inside a body — dominated the stepped
// hot path. Both drivers reproduce the same cycles, RNG draws and
// scheduling decisions exactly (pinned by the differential golden tests).
package core

import "rocktm/internal/sim"

// YieldSignal unwinds an atomic-block body when a simulated operation
// inside it was interrupted by a pending yield under the continuation
// driver and the interrupted path has no OpLog to bail through (rock.Txn
// methods invoked outside a journaling context). Attempt machines recover
// it at the body boundary as a backstop; the journaled hot paths bail
// through OpLog.Bail instead and never pay the panic.
type YieldSignal struct{}

// StepBlock is a resumable atomic block. Step runs the block forward until
// it either takes effect (true) or the strand must yield (false, with the
// strand's YieldPending set); the driver re-invokes Step after granting
// the strand the baton again. A StepBlock is single-use: once Step returns
// true it must not be invoked again (obtain a fresh block instead).
type StepBlock interface {
	Step() bool
}

// StepSystem is implemented by systems whose atomic blocks can run as
// continuation machines under sim.RunStepped. StepAtomic returns a
// resumable execution of body on s (ro marks read-only blocks, the
// AtomicRO hint); the returned block performs the identical sequence of
// simulated operations Atomic/AtomicRO would. Implementations reuse one
// block per strand, so a strand must finish (or abandon the machine
// entirely) before starting its next block.
type StepSystem interface {
	System
	StepAtomic(s *sim.Strand, body func(Ctx), ro bool) StepBlock
}

// opEntry journals one completed simulated operation's results: w for
// value-returning operations (loads, adds), b for success flags.
type opEntry struct {
	w sim.Word
	b bool
}

// OpLog journals the yieldable simulated operations an atomic-block body
// performed through its Ctx during one attempt. When an operation is
// interrupted by a pending yield the log bails: the interrupted operation
// and every subsequent one return zero without simulated work, the body
// runs to its ordinary end, and the attempt machine (seeing Bailed)
// yields, rewinds the log and re-runs the body: journaled operations are
// served from the log (no simulated work, host-side bookkeeping redone
// deterministically), and live execution resumes at exactly the
// interrupted operation. Reset starts a fresh attempt's journal.
type OpLog struct {
	ents   []opEntry
	pos    int
	bailed bool
}

// Reset discards the journal (a new attempt begins).
func (l *OpLog) Reset() { l.ents = l.ents[:0]; l.pos = 0; l.bailed = false }

// Rewind restarts replay from the journal's beginning (the body is about
// to re-run after a yield).
func (l *OpLog) Rewind() { l.pos = 0; l.bailed = false }

// Bail switches the log to bailed mode: every subsequent journaled
// operation returns zero without touching the simulator. Ctx
// implementations journaling through their own Record/Next calls use it
// when a live operation is interrupted by a pending yield.
func (l *OpLog) Bail() { l.bailed = true }

// Bailed reports whether the current body run was interrupted: the body's
// remaining operations were poisoned to zero and the attempt machine must
// yield and re-run the body after the next grant.
func (l *OpLog) Bailed() bool { return l.bailed }

// Replaying reports whether the next operation is served from the journal.
func (l *OpLog) Replaying() bool { return l.pos < len(l.ents) }

// Record appends a completed operation's results and advances the cursor
// past them.
func (l *OpLog) Record(w sim.Word, b bool) {
	l.ents = append(l.ents, opEntry{w, b})
	l.pos = len(l.ents)
}

// Next serves the next journaled operation's results.
func (l *OpLog) Next() (sim.Word, bool) {
	e := l.ents[l.pos]
	l.pos++
	return e.w, e.b
}

// Advance charges n cycles through the journal: served as a no-op during
// replay, recorded once performed, bailed when interrupted.
func (l *OpLog) Advance(s *sim.Strand, n int64) {
	if l.bailed {
		return
	}
	if l.Replaying() {
		l.Next()
		return
	}
	s.Advance(n)
	if s.YieldPending() {
		l.bailed = true
		return
	}
	l.Record(0, false)
}

// Load performs a journaled plain load.
func (l *OpLog) Load(s *sim.Strand, a sim.Addr) sim.Word {
	if l.bailed {
		return 0
	}
	if l.Replaying() {
		w, _ := l.Next()
		return w
	}
	w := s.Load(a)
	if s.YieldPending() {
		l.bailed = true
		return 0
	}
	l.Record(w, false)
	return w
}

// Store performs a journaled plain store.
func (l *OpLog) Store(s *sim.Strand, a sim.Addr, w sim.Word) {
	if l.bailed {
		return
	}
	if l.Replaying() {
		l.Next()
		return
	}
	s.Store(a, w)
	if s.YieldPending() {
		l.bailed = true
		return
	}
	l.Record(0, false)
}

// Add performs a journaled atomic add.
func (l *OpLog) Add(s *sim.Strand, a sim.Addr, delta sim.Word) sim.Word {
	if l.bailed {
		return 0
	}
	if l.Replaying() {
		w, _ := l.Next()
		return w
	}
	w := s.Add(a, delta)
	if s.YieldPending() {
		l.bailed = true
		return 0
	}
	l.Record(w, false)
	return w
}

// CAS performs a journaled compare-and-swap.
func (l *OpLog) CAS(s *sim.Strand, a sim.Addr, old, new sim.Word) (sim.Word, bool) {
	if l.bailed {
		return 0, false
	}
	if l.Replaying() {
		return l.Next()
	}
	w, ok := s.CAS(a, old, new)
	if s.YieldPending() {
		l.bailed = true
		return 0, false
	}
	l.Record(w, ok)
	return w, ok
}

// Branch performs a journaled branch.
func (l *OpLog) Branch(s *sim.Strand, pc uint32, taken bool) {
	if l.bailed {
		return
	}
	if l.Replaying() {
		l.Next()
		return
	}
	s.Branch(pc, taken)
	if s.YieldPending() {
		l.bailed = true
		return
	}
	l.Record(0, false)
}

// BackoffDelay draws the randomized exponential delay Backoff would charge
// for the given retry attempt (0-based). Splitting the draw from the
// Advance lets a continuation machine charge the delay resumably while
// consuming the randomness exactly once; Backoff(s, n) ≡
// s.Advance(BackoffDelay(s, n)), draw-for-draw.
func BackoffDelay(s *sim.Strand, attempt int) int64 {
	if attempt > 7 {
		attempt = 7
	}
	window := int64(32) << uint(attempt)
	return 16 + int64(s.Rand()%uint64(window))
}

// StepRaw is Raw with its operations journaled: the execution context of
// an atomic-block body run under a held lock (or any other non-speculative
// step path), where a yield mid-body bails the journal and the re-run
// replays from it.
type StepRaw struct {
	S   *sim.Strand
	Log *OpLog
}

// Load implements Ctx.
func (r StepRaw) Load(a sim.Addr) sim.Word { return r.Log.Load(r.S, a) }

// Store implements Ctx.
func (r StepRaw) Store(a sim.Addr, w sim.Word) { r.Log.Store(r.S, a, w) }

// Branch implements Ctx.
func (r StepRaw) Branch(pc uint32, taken bool, _ bool) { r.Log.Branch(r.S, pc, taken) }

// Div implements Ctx.
func (r StepRaw) Div() { r.Log.Advance(r.S, DivCost) }

// Call implements Ctx.
func (r StepRaw) Call() { r.Log.Advance(r.S, CallCost) }

// Strand implements Ctx.
func (r StepRaw) Strand() *sim.Strand { return r.S }

// StepBackoff charges Backoff's randomized delay resumably: the first Step
// of a pending delay draws it (consuming randomness exactly once); each
// re-invocation after a yield re-charges the same delay. It reports whether
// the delay completed.
type StepBackoff struct {
	delay int64
	armed bool
}

// Step charges the delay for the given retry attempt; false means the
// strand must yield and re-invoke.
func (b *StepBackoff) Step(s *sim.Strand, attempt int) bool {
	if !b.armed {
		b.delay = BackoffDelay(s, attempt)
		b.armed = true
	}
	s.Advance(b.delay)
	if s.YieldPending() {
		return false
	}
	b.armed = false
	return true
}

// RunJournaled executes one journaled run of a non-speculative body over
// log l, reporting false when the body was interrupted by a pending yield
// (the log bailed) and must re-run after the strand yields.
func RunJournaled(l *OpLog, run func()) (completed bool) {
	run()
	return !l.Bailed()
}

// PerStrand lazily caches one T per strand ID — the allocation pattern for
// reusable per-strand continuation machines.
type PerStrand[T any] struct {
	v []*T
}

// Get returns strand id's cached value, allocating it on first use.
func (p *PerStrand[T]) Get(id int) *T {
	for len(p.v) <= id {
		p.v = append(p.v, nil)
	}
	if p.v[id] == nil {
		p.v[id] = new(T)
	}
	return p.v[id]
}

// StepCapable lets a StepSystem veto stepped execution for configurations
// its continuation machines do not cover (callers fall back to the
// coroutine driver when CanStep reports false). Systems without the
// interface step whenever they implement StepSystem.
type StepCapable interface {
	CanStep() bool
}

// CanStep reports whether sys can run atomic blocks as continuation
// machines in its current configuration.
func CanStep(sys System) bool {
	if _, ok := sys.(StepSystem); !ok {
		return false
	}
	if c, ok := sys.(StepCapable); ok {
		return c.CanStep()
	}
	return true
}
