// Package core defines the transactional-memory programming interface that
// every data structure and workload in this repository is written against,
// and that every synchronization system implements: raw best-effort HTM,
// the TL2 and SkySTM software TMs, the HyTM and PhTM hybrids, transactional
// lock elision, plain locks, and unprotected sequential execution.
//
// In the paper this role is played by the HyTM/PhTM C++ compiler and
// library: application code is written once against load/store barriers and
// the library decides how an atomic block actually executes. Ctx is those
// barriers; System is the library.
package core

import (
	"hash/fnv"

	"rocktm/internal/cps"
	"rocktm/internal/obs"
	"rocktm/internal/sim"
)

// Ctx is the access interface visible inside an atomic block. Exactly how a
// Load or Store executes — as a hardware-transactional access, an
// STM-instrumented access, or a plain access under a lock — is the
// implementing system's business.
//
// Branch, Div and Call exist because the *instruction mix* of an atomic
// block determines its fate on Rock: data-dependent branches can abort with
// CTI/UCTI, divide instructions abort with FP, and function calls
// (save/restore) abort with INST. Data-structure code declares these events
// and each system maps them to its own cost or failure model.
type Ctx interface {
	// Load reads a word from simulated memory.
	Load(a sim.Addr) sim.Word
	// Store writes a word to simulated memory.
	Store(a sim.Addr, w sim.Word)
	// Branch declares a conditional branch at stable site pc with the given
	// outcome; dependsOnLoad marks predicates computed from the immediately
	// preceding Load.
	Branch(pc uint32, taken bool, dependsOnLoad bool)
	// Div declares a divide instruction.
	Div()
	// Call declares a function call (register-window save/restore).
	Call()
	// Strand returns the executing strand, e.g. to charge pure compute
	// cycles via Advance.
	Strand() *sim.Strand
}

// System executes atomic blocks on behalf of application code.
type System interface {
	// Name identifies the system in experiment output ("phtm", "stm-tl2",
	// "one-lock", ...).
	Name() string
	// Atomic runs body atomically on strand s, retrying/falling back as the
	// system's policy dictates. It returns only after the block has taken
	// effect exactly once.
	Atomic(s *sim.Strand, body func(Ctx))
	// AtomicRO runs a read-only block; systems with a cheaper read path
	// (e.g. a reader-writer lock) may exploit the hint. The default is to
	// treat it exactly like Atomic.
	AtomicRO(s *sim.Strand, body func(Ctx))
	// Stats returns the system's cumulative execution statistics.
	Stats() *Stats
}

// Stats counts how a system's atomic blocks executed. All mutation happens
// under the machine baton, so plain fields suffice.
type Stats struct {
	// Ops is the number of atomic blocks completed.
	Ops uint64
	// HWAttempts and HWCommits count hardware transaction attempts and
	// successes; HWBlocks counts atomic blocks that made at least one
	// hardware attempt, so HWAttempts-HWBlocks is the number of retries.
	HWAttempts, HWCommits, HWBlocks uint64
	// SWCommits and SWAborts count software (STM) transaction outcomes.
	SWCommits, SWAborts uint64
	// LockAcquires counts fallbacks to actually taking a lock.
	LockAcquires uint64
	// ROFast counts read-only blocks served by a cheaper read path.
	ROFast uint64
	// CPSHist is the distribution of CPS values over failed hardware
	// transaction attempts.
	CPSHist *cps.Histogram
}

// NewStats returns a zeroed Stats with an allocated histogram.
func NewStats() *Stats { return &Stats{CPSHist: cps.NewHistogram()} }

// RecordFailure notes one failed hardware attempt with the given CPS value.
func (st *Stats) RecordFailure(c cps.Bits) { st.CPSHist.Add(c) }

// RetryFraction is the fraction of hardware attempts that were retries
// (attempts beyond a block's first), the statistic behind the paper's
// "more than half of the hardware transactions are retries" observation.
func (st *Stats) RetryFraction() float64 {
	if st.HWAttempts == 0 {
		return 0
	}
	return float64(st.HWAttempts-st.HWBlocks) / float64(st.HWAttempts)
}

// Sample returns the stats as a metrics-registry sample. It is the thin
// compatibility accessor through which every system's Stats — previously a
// bag of counters each experiment read ad hoc — publishes into the unified
// obs.Registry.
func (st *Stats) Sample() obs.Sample {
	return obs.Sample{
		Counters: []obs.NamedValue{
			{Name: "ops", Value: st.Ops},
			{Name: "hw_attempts", Value: st.HWAttempts},
			{Name: "hw_commits", Value: st.HWCommits},
			{Name: "hw_blocks", Value: st.HWBlocks},
			{Name: "sw_commits", Value: st.SWCommits},
			{Name: "sw_aborts", Value: st.SWAborts},
			{Name: "lock_acquires", Value: st.LockAcquires},
			{Name: "ro_fast", Value: st.ROFast},
		},
		CPS: st.CPSHist,
	}
}

// Publish registers sys's statistics with the unified metrics registry
// under its reported name. The registry pulls a fresh snapshot on every
// Snapshot call, so publication adds nothing to the system's hot path.
func Publish(reg *obs.Registry, sys System) {
	reg.Register(sys.Name(), func() obs.Sample { return sys.Stats().Sample() })
}

// Merge folds other into st (for aggregating sharded stats).
func (st *Stats) Merge(other *Stats) {
	st.Ops += other.Ops
	st.HWAttempts += other.HWAttempts
	st.HWCommits += other.HWCommits
	st.HWBlocks += other.HWBlocks
	st.SWCommits += other.SWCommits
	st.SWAborts += other.SWAborts
	st.LockAcquires += other.LockAcquires
	st.ROFast += other.ROFast
	st.CPSHist.Merge(other.CPSHist)
}

// PC derives a stable branch-site identifier from a name. Call it once per
// site (package var), not per execution.
func PC(site string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(site))
	return h.Sum32()
}

// CallCost is the cycle cost a non-HTM execution charges for a declared
// function call; DivCost likewise for a divide instruction.
const (
	CallCost = 6
	DivCost  = 24
)

// Backoff charges a randomized exponential delay for the given retry
// attempt (0-based). Simple software backoff is the mechanism the paper
// found effective against requester-wins livelock under contention
// (Section 4).
func Backoff(s *sim.Strand, attempt int) {
	s.Advance(BackoffDelay(s, attempt))
}

// Setup is a zero-cost Ctx over raw memory for pre-run prepopulation and
// post-run validation: accesses are Peek/Poke, charging no cycles and
// touching no caches. Strand returns nil; setup code must not use it.
type Setup struct {
	Mem *sim.Memory
}

// Load implements Ctx.
func (p Setup) Load(a sim.Addr) sim.Word { return p.Mem.Peek(a) }

// Store implements Ctx.
func (p Setup) Store(a sim.Addr, w sim.Word) { p.Mem.Poke(a, w) }

// Branch implements Ctx.
func (p Setup) Branch(uint32, bool, bool) {}

// Div implements Ctx.
func (p Setup) Div() {}

// Call implements Ctx.
func (p Setup) Call() {}

// Strand implements Ctx (setup has no strand; callers must not use it).
func (p Setup) Strand() *sim.Strand { return nil }

// Raw is the Ctx of unprotected execution: every access goes straight to
// the strand. It is the execution context under a held lock, inside a
// successful lock-elision transaction's fallback, and for the sequential
// baseline.
type Raw struct {
	S *sim.Strand
}

// Load implements Ctx.
func (r Raw) Load(a sim.Addr) sim.Word { return r.S.Load(a) }

// Store implements Ctx.
func (r Raw) Store(a sim.Addr, w sim.Word) { r.S.Store(a, w) }

// Branch implements Ctx.
func (r Raw) Branch(pc uint32, taken bool, _ bool) { r.S.Branch(pc, taken) }

// Div implements Ctx.
func (r Raw) Div() { r.S.Advance(DivCost) }

// Call implements Ctx.
func (r Raw) Call() { r.S.Advance(CallCost) }

// Strand implements Ctx.
func (r Raw) Strand() *sim.Strand { return r.S }
