package core

import (
	"testing"
	"testing/quick"

	"rocktm/internal/sim"
)

func TestPCStable(t *testing.T) {
	if PC("a.site") != PC("a.site") {
		t.Error("PC not deterministic")
	}
	if PC("a.site") == PC("b.site") {
		t.Error("PC collides on trivially different names")
	}
}

func TestBackoffBoundedAndAdvancing(t *testing.T) {
	cfg := sim.DefaultConfig(1)
	cfg.MemWords = 1 << 14
	m := sim.New(cfg)
	m.Run(func(s *sim.Strand) {
		before := s.Clock()
		for attempt := 0; attempt < 40; attempt++ {
			Backoff(s, attempt)
		}
		delta := s.Clock() - before
		if delta <= 0 {
			t.Error("Backoff did not advance the clock")
		}
		// 40 capped backoffs must stay well under a virtual millisecond.
		if delta > 400000 {
			t.Errorf("Backoff too large: %d cycles for 40 rounds", delta)
		}
	})
}

func TestStatsMergeAndRetryFraction(t *testing.T) {
	a := NewStats()
	a.Ops, a.HWAttempts, a.HWCommits, a.HWBlocks = 10, 25, 10, 10
	b := NewStats()
	b.Ops, b.SWCommits = 5, 5
	a.Merge(b)
	if a.Ops != 15 || a.SWCommits != 5 {
		t.Errorf("merge lost counts: %+v", a)
	}
	if got := a.RetryFraction(); got != 0.6 {
		t.Errorf("RetryFraction = %v, want 0.6 (15 retries / 25 attempts)", got)
	}
}

func TestSetupCtxBypassesCosts(t *testing.T) {
	cfg := sim.DefaultConfig(1)
	cfg.MemWords = 1 << 14
	m := sim.New(cfg)
	a := m.Mem().AllocLines(8)
	c := Setup{Mem: m.Mem()}
	c.Store(a, 9)
	if c.Load(a) != 9 {
		t.Error("Setup store/load mismatch")
	}
	if m.MaxClock() != 0 {
		t.Error("Setup ctx charged cycles")
	}
}

func TestRawCtxQuick(t *testing.T) {
	prop := func(vals []uint16) bool {
		cfg := sim.DefaultConfig(1)
		cfg.MemWords = 1 << 16
		m := sim.New(cfg)
		n := len(vals)
		if n == 0 {
			return true
		}
		base := m.Mem().AllocLines(n)
		ok := true
		m.Run(func(s *sim.Strand) {
			c := Raw{S: s}
			for i, v := range vals {
				c.Store(base+sim.Addr(i), sim.Word(v))
			}
			for i, v := range vals {
				if c.Load(base+sim.Addr(i)) != sim.Word(v) {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
