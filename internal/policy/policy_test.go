package policy_test

import (
	"strings"
	"testing"

	"rocktm/internal/cps"
	"rocktm/internal/policy"
	"rocktm/internal/sim"
)

// TestBuiltinDecisionsPerCPSBit pins each built-in policy's verdict for
// every one of the twelve Table-1 failure reasons (plus the combinations
// the paper calls out), so a policy regression shows up as a named bit,
// not a throughput drift. Fresh policy instances are used per case: the
// adaptive policy's stance depends on history, and these are its
// *cold-start* verdicts (it starts from the paper policy's reactions).
func TestBuiltinDecisionsPerCPSBit(t *testing.T) {
	type want struct {
		action policy.Action
		score  float64
	}
	cases := []struct {
		c cps.Bits
		// Expected verdicts under policy.DefaultTuning (the TLE/PhTM
		// flavour: UCTIBackoff on, TCC → Wait at half charge).
		naive, paper, adaptive want
	}{
		{cps.EXOG, want{policy.Retry, 1}, want{policy.Retry, 1}, want{policy.Retry, 0.5}},
		{cps.COH, want{policy.Retry, 1}, want{policy.Backoff, 1}, want{policy.Backoff, 1}},
		{cps.TCC, want{policy.Wait, 0.5}, want{policy.Wait, 0.5}, want{policy.Wait, 0.5}},
		{cps.INST, want{policy.Retry, 1}, want{policy.Fallback, 0}, want{policy.Fallback, 0}},
		{cps.PREC, want{policy.Retry, 1}, want{policy.Fallback, 0}, want{policy.Fallback, 0}},
		{cps.ASYNC, want{policy.Retry, 1}, want{policy.Retry, 1}, want{policy.Retry, 0.5}},
		{cps.SIZ, want{policy.Retry, 1}, want{policy.Retry, 1}, want{policy.Retry, 1}},
		{cps.LD, want{policy.Retry, 1}, want{policy.Retry, 1}, want{policy.Retry, 1}},
		{cps.ST, want{policy.Retry, 1}, want{policy.Retry, 1}, want{policy.Retry, 1}},
		{cps.CTI, want{policy.Retry, 1}, want{policy.Retry, 1}, want{policy.Retry, 0.5}},
		{cps.FP, want{policy.Retry, 1}, want{policy.Fallback, 0}, want{policy.Fallback, 0}},
		{cps.UCTI, want{policy.Retry, 1}, want{policy.Retry, 0.5}, want{policy.Retry, 0.5}},
		// UCTI with a COH companion: paper (with UCTIBackoff, the TLE
		// wrinkle) backs off; adaptive always retries UCTI immediately.
		{cps.UCTI | cps.COH, want{policy.Retry, 1}, want{policy.Backoff, 0.5}, want{policy.Retry, 0.5}},
		// ST|SIZ store-queue overflow and LD|PREC unmapped-page loads: the
		// GiveUp bits win for LD|PREC, capacity retries for ST|SIZ.
		{cps.ST | cps.SIZ, want{policy.Retry, 1}, want{policy.Retry, 1}, want{policy.Retry, 1}},
		{cps.LD | cps.PREC, want{policy.Retry, 1}, want{policy.Fallback, 0}, want{policy.Fallback, 0}},
	}
	for _, tc := range cases {
		for _, pc := range []struct {
			name string
			want want
		}{
			{"naive", tc.naive},
			{"paper", tc.paper},
			{"adaptive", tc.adaptive},
		} {
			p := policy.MustNew(pc.name, policy.DefaultTuning())
			d := p.Decide(0, 0, tc.c)
			if d.Action != pc.want.action {
				t.Errorf("%s(%v): action = %v, want %v", pc.name, tc.c, d.Action, pc.want.action)
			}
			if pc.want.action != policy.Fallback && d.Score != pc.want.score {
				// (A Fallback's score is irrelevant: the engine stops.)
				t.Errorf("%s(%v): score = %g, want %g", pc.name, tc.c, d.Score, pc.want.score)
			}
		}
	}
}

// TestEngineBudgetExhaustion checks the shared exhaustion rule: full-point
// failures exhaust an integer budget exactly at the budget'th failure.
func TestEngineBudgetExhaustion(t *testing.T) {
	tun := policy.DefaultTuning()
	tun.Budget = 3
	p := policy.MustNew("paper", tun)
	eng := policy.Start(p, 0)
	for i := 0; i < 2; i++ {
		if act := eng.OnFailure(nil, cps.ASYNC); act != policy.Retry {
			t.Fatalf("failure %d: action = %v, want retry", i, act)
		}
	}
	if eng.Exhausted() {
		t.Fatal("exhausted before budget reached")
	}
	if act := eng.OnFailure(nil, cps.ASYNC); act != policy.Fallback {
		t.Fatalf("3rd failure: action = %v, want fallback", act)
	}
	if !eng.Exhausted() {
		t.Fatal("not exhausted after budget reached")
	}
}

// TestEngineUCTIHalfWeight checks the Section 8.1 "8 and one half"
// accounting: UCTI failures charge half, so a budget of 8 tolerates 16.
func TestEngineUCTIHalfWeight(t *testing.T) {
	p := policy.MustNew("paper", policy.DefaultTuning()) // budget 8, UCTI 0.5
	eng := policy.Start(p, 0)
	for i := 0; i < 15; i++ {
		if act := eng.OnFailure(nil, cps.UCTI); act != policy.Retry {
			t.Fatalf("UCTI failure %d: action = %v, want retry", i, act)
		}
	}
	if act := eng.OnFailure(nil, cps.UCTI); act != policy.Fallback {
		t.Fatalf("16th UCTI failure: action = %v, want fallback", act)
	}
	if got := eng.Score(); got != 8 {
		t.Fatalf("score = %g, want 8", got)
	}
}

// TestEngineWaitNeverConvertsToFallback pins the Wait contract: even with
// the budget exhausted, OnFailure hands Wait back to the caller (whose
// system-specific wait must happen before the budget re-check) — the
// ordering the pre-engine loops used, preserved for cycle identity.
func TestEngineWaitNeverConvertsToFallback(t *testing.T) {
	tun := policy.DefaultTuning()
	tun.Budget = 1
	tun.TCCWeight = 1
	p := policy.MustNew("paper", tun)
	eng := policy.Start(p, 0)
	if act := eng.OnFailure(nil, cps.TCC); act != policy.Wait {
		t.Fatalf("TCC at exhausted budget: action = %v, want wait", act)
	}
	if !eng.Exhausted() {
		t.Fatal("budget should be exhausted after the charged wait")
	}
}

// TestEngineBackoffChargesCycles checks that Backoff and Throttle verdicts
// advance the strand's virtual clock (the randomized exponential delay),
// while Retry verdicts do not.
func TestEngineBackoffChargesCycles(t *testing.T) {
	m := sim.New(sim.DefaultConfig(1))
	m.Run(func(s *sim.Strand) {
		p := policy.MustNew("paper", policy.DefaultTuning())
		eng := policy.Start(p, 0)
		before := s.Clock()
		eng.OnFailure(s, cps.ASYNC) // Retry: no delay
		if s.Clock() != before {
			t.Errorf("retry charged %d cycles, want 0", s.Clock()-before)
		}
		before = s.Clock()
		eng.OnFailure(s, cps.COH) // Backoff: must charge
		if s.Clock() == before {
			t.Error("backoff charged no cycles")
		}
	})
}

// TestAdaptiveCapacityHopeless drives one site through a full window of
// capacity failures with no hardware commit: the adaptive policy must
// flip from the paper's retry-and-warm bet to immediate fallback.
func TestAdaptiveCapacityHopeless(t *testing.T) {
	p := policy.NewAdaptive(policy.DefaultTuning())
	const site = 7
	var sawFallback int
	for i := 0; i < 40; i++ {
		d := p.Decide(site, i, cps.SIZ)
		switch d.Action {
		case policy.Retry:
			if sawFallback > 0 {
				t.Fatalf("failure %d: retry after the hopeless verdict", i)
			}
		case policy.Fallback:
			sawFallback++
		default:
			t.Fatalf("failure %d: unexpected action %v", i, d.Action)
		}
	}
	if sawFallback == 0 {
		t.Fatal("a window of pure capacity failures never produced a fallback verdict")
	}
	// A hardware commit after retries is direct evidence the bet pays
	// again: the hopeless verdict must lift immediately.
	p.Done(site, 3, false)
	if d := p.Decide(site, 0, cps.SIZ); d.Action != policy.Retry {
		t.Fatalf("after commit: action = %v, want retry", d.Action)
	}
	// Another site is unaffected by site 7's history.
	if d := p.Decide(9, 0, cps.SIZ); d.Action != policy.Retry {
		t.Fatalf("fresh site: action = %v, want retry", d.Action)
	}
}

// TestAdaptiveCOHEscalatesToThrottle drives a site through a
// COH-dominated window: Backoff must escalate to Throttle.
func TestAdaptiveCOHEscalatesToThrottle(t *testing.T) {
	p := policy.NewAdaptive(policy.DefaultTuning())
	const site = 3
	var sawThrottle bool
	for i := 0; i < 40; i++ {
		d := p.Decide(site, i, cps.COH)
		switch d.Action {
		case policy.Backoff:
			if sawThrottle {
				t.Fatalf("failure %d: de-escalated to backoff mid-storm", i)
			}
		case policy.Throttle:
			sawThrottle = true
		default:
			t.Fatalf("failure %d: unexpected action %v", i, d.Action)
		}
	}
	if !sawThrottle {
		t.Fatal("a COH-dominated window never escalated to throttle")
	}
}

// TestAdaptiveTCCNotRecorded checks that the system's own explicit aborts
// are not treated as evidence about a site's hardware viability.
func TestAdaptiveTCCNotRecorded(t *testing.T) {
	p := policy.NewAdaptive(policy.DefaultTuning())
	for i := 0; i < 100; i++ {
		if d := p.Decide(5, i, cps.TCC); d.Action != policy.Wait {
			t.Fatalf("TCC: action = %v, want wait", d.Action)
		}
	}
	if h := p.SiteHistogram(5); h != nil {
		t.Fatalf("TCC aborts were recorded: histogram %v", h)
	}
}

// TestRegistry checks the lookup surface: the three built-ins are
// registered, unknown names error with the full list, and duplicate
// registration panics.
func TestRegistry(t *testing.T) {
	names := policy.Names()
	joined := strings.Join(names, " ")
	for _, want := range []string{"naive", "paper", "adaptive"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Names() = %v, missing %q", names, want)
		}
	}
	if _, err := policy.New("no-such-policy", policy.DefaultTuning()); err == nil {
		t.Error("New(unknown) did not error")
	} else if !strings.Contains(err.Error(), "naive") {
		t.Errorf("unknown-policy error does not list registered names: %v", err)
	}
	policy.Register("policy-test-dup", func(policy.Tuning) policy.Policy { return nil })
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	policy.Register("policy-test-dup", func(policy.Tuning) policy.Policy { return nil })
}
