package policy

import (
	"testing"

	"rocktm/internal/cps"
	"rocktm/internal/sim"
)

// TestTuningForDesign pins the per-design tuning table: which design
// points adjust which knobs, and that everything else passes through
// untouched.
func TestTuningForDesign(t *testing.T) {
	base := DefaultTuning()

	if got := TuningForDesign(base, sim.DesignPoint("rock")); got != base {
		t.Errorf("rock design changed the tuning: %+v", got)
	}
	// Lazy detection and sticky sets are documented no-ops.
	if got := TuningForDesign(base, sim.DesignPoint("lazydet")); got != base {
		t.Errorf("lazydet changed the tuning: %+v", got)
	}
	if got := TuningForDesign(base, sim.DesignPoint("sticky")); got != base {
		t.Errorf("sticky changed the tuning: %+v", got)
	}

	// Committer-wins and timestamp arbitration already stalled the loser in
	// hardware: COH must leave the backoff set, and nothing else may move.
	for _, name := range []string{"committer", "timestamp"} {
		got := TuningForDesign(base, sim.DesignPoint(name))
		if got.BackoffOn.Has(cps.COH) {
			t.Errorf("%s: COH still in BackoffOn", name)
		}
		want := base
		want.BackoffOn = base.BackoffOn &^ cps.COH
		if got != want {
			t.Errorf("%s tuning = %+v, want only BackoffOn changed (%+v)", name, got, want)
		}
	}

	// Eager version management prices aborts up, so the budget shrinks.
	got := TuningForDesign(base, sim.DesignPoint("eagervm"))
	if got.Budget >= base.Budget {
		t.Errorf("eagervm budget = %v, want < %v", got.Budget, base.Budget)
	}
	want := base
	want.Budget = base.Budget * 0.75
	if got != want {
		t.Errorf("eagervm tuning = %+v, want only Budget changed (%+v)", got, want)
	}

	// Axes compose: eager VM with committer-wins applies both adjustments.
	both := TuningForDesign(base, sim.HTMDesign{VM: sim.VMEager, Resolve: sim.ResCommitterWins})
	if both.Budget != base.Budget*0.75 || both.BackoffOn.Has(cps.COH) {
		t.Errorf("composed design tuning = %+v", both)
	}
}
