package policy

import (
	"rocktm/internal/cps"
	"rocktm/internal/sim"
)

// TuningForDesign adapts a tuning to the machine's HTM design point
// (sim.Config.HTM). The paper's Section 6.1 knobs are calibrated against
// Rock's requester-wins, lazy-write-buffer hardware; two of the four
// design axes change what a CPS value is telling the retry policy, so the
// htmdesign sweep routes every policy's tuning through here. The Rock
// design returns base unchanged.
func TuningForDesign(base Tuning, d sim.HTMDesign) Tuning {
	if d.Resolve == sim.ResCommitterWins || d.Resolve == sim.ResTimestamp {
		// Under requester-wins, COH means "somebody doomed me mid-flight"
		// and software backoff is what breaks the mutual-doom livelock
		// (Section 4). Under committer-wins/timestamp the hardware already
		// serialized the conflict: a COH abort names a requester that lost
		// an arbitration *after* paying a NACK stall window, so piling
		// software backoff on top of the hardware stall just doubles the
		// delay. Retry immediately instead.
		base.BackoffOn &^= cps.COH
	}
	if d.VM == sim.VMEager {
		// Eager version management makes aborts expensive: every failed
		// attempt unrolls its undo log (LogWrite per entry) on top of the
		// flush penalty. Burning attempts costs more, so fall back sooner —
		// the same reasoning that gives HyTM's pricier hardware path a
		// smaller budget than PhTM's.
		base.Budget *= 0.75
	}
	// DetectLazy moves *when* COH surfaces (at the committer's drain rather
	// than per access) and StickyLines moves *how much* read set fits
	// before LD|SIZ, but neither changes what the bits ask of the retry
	// policy — deliberate no-ops here.
	return base
}
