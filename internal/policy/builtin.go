package policy

import "rocktm/internal/cps"

func init() {
	Register("naive", func(t Tuning) Policy { return &Naive{t: t} })
	Register("paper", func(t Tuning) Policy { return &Paper{t: t} })
	Register("adaptive", func(t Tuning) Policy { return NewAdaptive(t) })
}

// Naive is the "very simplistic policy" of the paper's C++ STL vector
// experiment (Section 7.1): retry a fixed number of times, consult the
// CPS register for nothing. Every failure counts one full point and no
// failure triggers backoff — which is exactly why the paper's Section 4
// counter experiment livelocks without backoff, and why the smarter
// policies exist.
//
// The single CPS-shaped exception is the software-convention TCC abort,
// which is not a hardware failure at all: it is the system's own "not
// now" signal (lock held, software phase active), so even the naive
// policy defers to the system's Wait handling with the tuned charge.
type Naive struct {
	t Tuning
}

// Name implements Policy.
func (p *Naive) Name() string { return "naive" }

// Budget implements Policy.
func (p *Naive) Budget() float64 { return p.t.Budget }

// Decide implements Policy: one point per failure, no CPS consultation.
func (p *Naive) Decide(_ uint32, _ int, c cps.Bits) Decision {
	if c == cps.TCC {
		return Decision{Action: p.t.TCCAction, Score: p.t.TCCWeight}
	}
	return Decision{Action: Retry, Score: 1}
}

// Done implements Policy (no learning).
func (p *Naive) Done(uint32, int, bool) {}

// Paper is the Section 6.1 policy the paper's TLE, PhTM and HyTM
// converged on, generalized over Tuning:
//
//   - TCC (exactly): the system's own abort — Wait (or Backoff, for
//     HyTM's ownership-check aborts) with a reduced charge.
//   - UCTI set: the branch misspeculated past an unresolved load, so
//     every companion bit may be an artifact; retry, charging only
//     UCTIWeight (the R2 chip revision added the bit for precisely this
//     purpose, Section 3).
//   - GiveUp bits (INST, FP, PREC by default): the block contains an
//     instruction the HTM will never execute — fall back immediately,
//     retries are pure waste.
//   - Anything else (COH, LD, ST, SIZ, CTI, ASYNC, EXOG): one full
//     point; back off first when a BackoffOn bit (COH) is present,
//     because requester-wins coherence livelocks symmetric retries
//     (Section 4).
//
// Capacity failures (ST|SIZ store-queue overflow, SIZ deferred-queue
// overflow, LD read-set eviction) deliberately charge a full point per
// attempt rather than falling back instantly: Section 6 observes that a
// failing attempt warms the caches, so a bounded number of retries
// commits transactions that a hair-trigger fallback would needlessly
// send to the lock or the STM. The adaptive policy sharpens this by
// watching whether capacity failures at a site actually stop recurring.
type Paper struct {
	t Tuning
}

// Name implements Policy.
func (p *Paper) Name() string { return "paper" }

// Budget implements Policy.
func (p *Paper) Budget() float64 { return p.t.Budget }

// Decide implements Policy.
func (p *Paper) Decide(_ uint32, _ int, c cps.Bits) Decision {
	t := &p.t
	switch {
	case c == cps.TCC:
		return Decision{Action: t.TCCAction, Score: t.TCCWeight}
	case c.Has(cps.UCTI):
		d := Decision{Action: Retry, Score: t.UCTIWeight}
		if t.UCTIBackoff && c.Any(t.BackoffOn) {
			d.Action = Backoff
		}
		return d
	case c.Any(t.GiveUp):
		return Decision{Action: Fallback}
	default:
		d := Decision{Action: Retry, Score: 1}
		if c.Any(t.BackoffOn) {
			d.Action = Backoff
		}
		return d
	}
}

// Done implements Policy (no learning).
func (p *Paper) Done(uint32, int, bool) {}
