// Package policy is the pluggable, allocation-free retry-policy engine
// that decides the fate of failed best-effort hardware transactions.
//
// The paper's central software lesson (Sections 3 and 6.1) is that the
// CPS register tells you *why* a transaction failed, and that retry
// intelligence — retry now, back off first, throttle, or give up and take
// the fallback path (a lock or a software transaction) — must live in
// software and be tuned per abort cause. This package centralizes that
// intelligence, which previously lived as near-duplicate ad-hoc loops in
// internal/tle, internal/phtm and internal/hytm.
//
// The moving parts:
//
//   - Action: what to do after one failed attempt (Retry, Backoff,
//     Throttle, Wait, Fallback).
//   - Policy: maps one failed attempt's CPS value to a Decision. Three
//     built-ins ship: "naive" (count failures, consult nothing), "paper"
//     (the Section 6.1 heuristics the paper's systems converged on) and
//     "adaptive" (learns per-site abort histograms and shifts its stance).
//   - Engine: the per-block driver. It is a plain stack value — starting a
//     block, consuming failures and backing off allocate nothing — and it
//     owns the failure-score budget, so every TM system shares one
//     exhaustion rule instead of three slightly different loops.
//
// TM systems construct their Policy once (Engine values are per atomic
// block) and run every hardware attempt through Engine.OnFailure. The
// Wait action is the one escape hatch for system-specific semantics: an
// explicit TCC abort means "lock held" under TLE but "software phase
// active" under PhTM, so the engine hands Wait back to the caller, the
// caller performs its own wait, and then consults Engine.Exhausted.
//
// See docs/POLICY.md for how to write and register a custom policy and
// docs/ABORT-PLAYBOOK.md for what each CPS bit means and how each
// built-in policy reacts to it.
package policy

import (
	"fmt"
	"sort"

	"rocktm/internal/core"
	"rocktm/internal/cps"
	"rocktm/internal/sim"
)

// Action is the verdict for one failed hardware attempt.
type Action uint8

const (
	// Retry immediately: the failure is expected to be transient (e.g. a
	// misspeculation artifact flagged by UCTI) or the failed attempt
	// itself warmed the cache/TLB so the retry is better positioned.
	Retry Action = iota
	// Backoff before retrying: a randomized exponential delay, the
	// paper's Section 4 remedy for requester-wins livelock under
	// coherence conflicts.
	Backoff
	// Throttle before retrying: a deeper backoff window used when the
	// recent abort history says the line is contended by many strands —
	// the admission-control stance of Section 7.2's future work.
	Throttle
	// Wait for a system-specific condition, then retry. Returned for the
	// software-convention TCC abort, whose meaning only the calling
	// system knows (TLE: the lock is held; PhTM: software transactions
	// are draining; HyTM handles TCC with Backoff instead). The engine
	// performs no delay itself; the caller waits and then consults
	// Engine.Exhausted before retrying.
	Wait
	// Fallback: abandon hardware for this block and take the system's
	// fallback path (acquire the lock, run the STM, flip the phase).
	Fallback
)

// String names the action for reports and tests.
func (a Action) String() string {
	switch a {
	case Retry:
		return "retry"
	case Backoff:
		return "backoff"
	case Throttle:
		return "throttle"
	case Wait:
		return "wait"
	case Fallback:
		return "fallback"
	}
	return "?"
}

// Decision is a policy's verdict for one failed attempt: the action to
// take and how much the failure counts against the block's budget.
type Decision struct {
	Action Action
	// Score is added to the block's failure score; the engine falls back
	// once the score reaches the policy's Budget. Fractional scores
	// implement the paper's "a UCTI failure counts half" refinement.
	Score float64
}

// Policy maps failed hardware attempts to decisions. Implementations must
// be deterministic (no host randomness, no wall clocks): simulated-time
// reproducibility of every experiment depends on it. A Policy instance
// may be shared by every block of one system, so per-block state belongs
// in the Engine, not the Policy.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Budget is the failure score at which the engine abandons hardware.
	Budget() float64
	// Decide inspects the CPS value of the block's attempt'th failed
	// attempt (0-based) at the given site and returns the action and
	// score charge. It must not touch the simulator.
	Decide(site uint32, attempt int, c cps.Bits) Decision
	// Done notifies the policy that a block at site resolved — committed
	// in hardware (fellBack=false) or left for the fallback path
	// (fellBack=true) — after the given number of hardware attempts.
	// Stateless policies ignore it; "adaptive" learns from it.
	Done(site uint32, attempts int, fellBack bool)
}

// throttleExtra deepens the backoff window for Throttle decisions: the
// exponential window of core.Backoff is widened by this many doublings.
const throttleExtra = 3

// Engine drives one atomic block's retry loop. It is a value type: embed
// it in a stack frame (Start), feed it every failure (OnFailure), and
// notify the outcome (OnCommit / OnFallback). The zero Engine is not
// usable; always construct through Start.
type Engine struct {
	pol     Policy
	site    uint32
	score   float64
	attempt int
}

// Start opens a new block at the given site under pol. Site identifiers
// are caller-chosen stable values (core.PC of a name, or 0 for a
// system-wide site); the adaptive policy keys its learning on them.
func Start(pol Policy, site uint32) Engine {
	return Engine{pol: pol, site: site}
}

// Attempt returns the number of failures consumed so far (equivalently,
// the 0-based index of the attempt currently in flight).
func (e *Engine) Attempt() int { return e.attempt }

// Score returns the accumulated failure score.
func (e *Engine) Score() float64 { return e.score }

// Exhausted reports whether the failure score has reached the budget.
// Callers consult it after handling a Wait action, because a Wait may
// carry a score charge (TLE charges a held lock half a failure).
func (e *Engine) Exhausted() bool { return e.score >= e.pol.Budget() }

// OnFailure consumes one failed attempt's CPS value: it asks the policy,
// applies the score charge, performs any Backoff/Throttle delay on strand
// s (charging simulated cycles through core.Backoff's seeded exponential
// jitter), and returns the action the caller must complete.
//
// The caller's contract:
//
//   - Retry, Backoff, Throttle: retry the hardware transaction (any
//     delay has already been charged).
//   - Wait: perform the system-specific wait, then consult Exhausted.
//   - Fallback: stop attempting; call OnFallback when committing to the
//     fallback path.
//
// OnFailure itself never returns Fallback for a Wait decision: the
// caller's wait must happen first (the pre-engine loops waited before
// re-checking their budgets, and cycle-identical replay preserves that).
func (e *Engine) OnFailure(s *sim.Strand, c cps.Bits) Action {
	act, delayAttempt, delay := e.DecideFailure(c)
	if delay {
		core.Backoff(s, delayAttempt)
	}
	return act
}

// DecideFailure is OnFailure with the simulated delay externalized, for
// continuation machines that must charge the delay resumably: it applies
// every host-side effect of one failed attempt (policy decision, score
// charge, attempt count) and returns the action plus the backoff attempt
// index the caller must feed core.BackoffDelay / Advance for (delay=false
// means no delay is owed). The delay is owed even when the returned action
// is Fallback — OnFailure charges a Backoff/Throttle delay before the
// budget verdict, and cycle-identical replay preserves that order: charge
// the delay first, then act on the verdict.
func (e *Engine) DecideFailure(c cps.Bits) (act Action, delayAttempt int, delay bool) {
	d := e.pol.Decide(e.site, e.attempt, c)
	e.score += d.Score
	switch d.Action {
	case Backoff:
		delayAttempt, delay = e.attempt, true
	case Throttle:
		delayAttempt, delay = e.attempt+throttleExtra, true
	}
	e.attempt++
	if d.Action == Wait {
		return Wait, delayAttempt, delay
	}
	if d.Action == Fallback || e.score >= e.pol.Budget() {
		return Fallback, delayAttempt, delay
	}
	return d.Action, delayAttempt, delay
}

// OnCommit notifies the policy that the block committed in hardware.
func (e *Engine) OnCommit() { e.pol.Done(e.site, e.attempt+1, false) }

// OnFallback notifies the policy that the block left for the fallback
// path (after OnFailure returned Fallback, or after a caller-side Wait
// found the budget exhausted or its condition hopeless).
func (e *Engine) OnFallback() { e.pol.Done(e.site, e.attempt, true) }

// Tuning carries the numeric knobs shared by the built-in policies. The
// per-system defaults that previously lived as duplicated literals in
// internal/tle, internal/phtm and internal/hytm are the Default*
// constants below; DefaultTuning assembles them.
type Tuning struct {
	// Budget is the failure score at which the engine falls back.
	Budget float64
	// UCTIWeight is the score of a UCTI-flagged failure (Section 8.1
	// counts it one half: the companion bits may be misspeculation
	// artifacts, so the failure is only weak evidence).
	UCTIWeight float64
	// UCTIBackoff also backs off on a UCTI failure whose companion bits
	// intersect BackoffOn (TLE does; PhTM and HyTM retry immediately).
	UCTIBackoff bool
	// GiveUp lists the CPS bits that mean the block can never commit in
	// hardware (unsupported instructions, divide, precise exceptions).
	GiveUp cps.Bits
	// BackoffOn lists the CPS bits that trigger exponential backoff
	// before the retry (coherence conflicts).
	BackoffOn cps.Bits
	// TCCAction is the verdict for the software-convention explicit
	// abort (CPS exactly TCC): Wait for TLE and PhTM, Backoff for HyTM.
	TCCAction Action
	// TCCWeight is the score charge of a TCC abort.
	TCCWeight float64
}

// The shared default knob values, unified here from the per-package
// literals they used to be. Attempt counting and backoff behaviour are
// unchanged from the pre-engine loops (pinned by the golden figure
// digests in internal/bench).
const (
	// DefaultBudget is the failure-score budget of the paper's TLE and
	// PhTM policies (Section 8.1 "8 and one half").
	DefaultBudget = 8
	// DefaultHyTMBudget is HyTM's smaller budget: its instrumented
	// hardware path is ~2x the cost of PhTM's, so burning attempts is
	// twice as expensive.
	DefaultHyTMBudget = 6
	// DefaultUCTIWeight counts a UCTI-flagged failure as half a failure.
	DefaultUCTIWeight = 0.5
	// DefaultTCCWeight counts a software-convention abort as half a
	// failure where the system charges it at all.
	DefaultTCCWeight = 0.5
)

// DefaultGiveUp and DefaultBackoffOn are the Section 6.1 bit classes:
// reasons that never go away, and reasons that call for backoff.
const (
	DefaultGiveUp    = cps.INST | cps.FP | cps.PREC
	DefaultBackoffOn = cps.COH
)

// DefaultTuning returns the paper's TLE/PhTM-flavoured knobs.
func DefaultTuning() Tuning {
	return Tuning{
		Budget:      DefaultBudget,
		UCTIWeight:  DefaultUCTIWeight,
		UCTIBackoff: true,
		GiveUp:      DefaultGiveUp,
		BackoffOn:   DefaultBackoffOn,
		TCCAction:   Wait,
		TCCWeight:   DefaultTCCWeight,
	}
}

// Builder constructs a policy instance from a tuning. Registered builders
// back New; each experiment cell builds fresh instances so learning state
// never leaks between cells.
type Builder func(Tuning) Policy

// builders is the policy registry. Registration happens at init time (and
// from tests); lookup is read-only afterwards, so no locking is needed
// under the simulator's single-driver execution model.
var builders = map[string]Builder{}

// Register adds a named policy builder. Registering a name twice panics:
// it is a programming error that would make experiment output depend on
// package-init order.
func Register(name string, b Builder) {
	if _, dup := builders[name]; dup {
		panic(fmt.Sprintf("policy: duplicate registration of %q", name))
	}
	builders[name] = b
}

// New builds a registered policy by name.
func New(name string, t Tuning) (Policy, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q; registered: %v", name, Names())
	}
	return b(t), nil
}

// MustNew is New for statically known names; it panics on error.
func MustNew(name string, t Tuning) Policy {
	p, err := New(name, t)
	if err != nil {
		panic(err)
	}
	return p
}

// Names lists the registered policy names in sorted order.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
