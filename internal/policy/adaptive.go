package policy

import (
	"rocktm/internal/cps"
	"rocktm/internal/obs"
)

// adaptiveWindow is how many failures at one site the adaptive policy
// accumulates between stance refreshes. Each refresh classifies only the
// *recent* window (the delta since the last refresh, extracted with
// obs.CPSDelta), so a site that was contended during warmup but calmed
// down is not throttled forever.
const adaptiveWindow = 32

// capacityBits are the CPS reasons that signal a hardware resource was
// exhausted: SIZ (store-queue or deferred-queue overflow), and the ST/LD
// bits in their capacity roles (micro-DTLB pressure on stores, read-set
// eviction on loads). A transaction that overflows once tends to
// overflow every time — unless the failing attempts themselves warm the
// caches, which is exactly what the adaptive policy watches for.
const capacityBits = cps.SIZ | cps.LD | cps.ST

// Adaptive learns per-site abort histograms and shifts its stance per
// site. It starts from the paper policy's reactions and sharpens two of
// them with observed history:
//
//   - Capacity (SIZ/LD/ST) failures: the paper policy always spends the
//     full budget, betting that retries warm the cache (Section 6). The
//     adaptive policy takes that bet only while it keeps paying off — if
//     a site's recent failures are dominated by capacity reasons and
//     hardware commits at the site have stopped, it falls back
//     immediately, saving the doomed retries.
//   - Coherence (COH) failures: plain exponential backoff defeats
//     requester-wins livelock between two strands (Section 4), but under
//     genuine many-strand contention the backoff window re-fills with
//     conflicting retries. When COH dominates a site's recent window the
//     policy escalates Backoff to Throttle (a deeper window), the
//     admission-control stance of Section 7.2's future work.
//
// All learning is deterministic: decisions depend only on the history of
// CPS values observed at the site, never on host state. Instances are
// NOT safe for concurrent use from multiple host threads; under the
// simulator's baton discipline (and one instance per experiment cell)
// this is free.
type Adaptive struct {
	t     Tuning
	sites map[uint32]*siteState
}

// siteState is the learned state of one call site.
type siteState struct {
	hist *cps.Histogram // every failure ever observed at the site
	snap *cps.Histogram // copy of hist at the last stance refresh

	sinceRefresh int
	commits      uint64 // hardware commits at the site
	fallbacks    uint64 // blocks that left for the fallback path
	recentHW     bool   // a hardware commit happened since the last refresh

	// Learned stance, recomputed from the recent window at each refresh.
	capacityHopeless bool // capacity aborts dominate and retries stopped paying
	contended        bool // COH dominates: escalate Backoff to Throttle
}

// NewAdaptive builds an adaptive policy with the given tuning.
func NewAdaptive(t Tuning) *Adaptive {
	return &Adaptive{t: t, sites: make(map[uint32]*siteState)}
}

// Name implements Policy.
func (p *Adaptive) Name() string { return "adaptive" }

// Budget implements Policy.
func (p *Adaptive) Budget() float64 { return p.t.Budget }

// site returns (lazily creating) the state for one site. Creation is the
// only allocation the policy performs after warmup.
func (p *Adaptive) site(id uint32) *siteState {
	st := p.sites[id]
	if st == nil {
		st = &siteState{hist: cps.NewHistogram(), snap: cps.NewHistogram()}
		p.sites[id] = st
	}
	return st
}

// Decide implements Policy.
func (p *Adaptive) Decide(site uint32, attempt int, c cps.Bits) Decision {
	t := &p.t
	if c == cps.TCC {
		// The system's own abort: not evidence about this site's hardware
		// viability, so it is not recorded.
		return Decision{Action: t.TCCAction, Score: t.TCCWeight}
	}
	st := p.site(site)
	st.hist.Add(c)
	st.sinceRefresh++
	if st.sinceRefresh >= adaptiveWindow {
		st.refresh()
	}
	switch {
	case c.Has(cps.UCTI):
		// Companion bits may be misspeculation artifacts; cheap retry.
		return Decision{Action: Retry, Score: t.UCTIWeight}
	case c.Any(t.GiveUp):
		return Decision{Action: Fallback}
	case c.Any(capacityBits):
		if st.capacityHopeless {
			return Decision{Action: Fallback}
		}
		return Decision{Action: Retry, Score: 1}
	case c.Has(cps.COH):
		if st.contended {
			return Decision{Action: Throttle, Score: 1}
		}
		return Decision{Action: Backoff, Score: 1}
	default:
		// ASYNC, EXOG, CTI: transient events unrelated to the block's
		// footprint; charge half, retry immediately.
		return Decision{Action: Retry, Score: 0.5}
	}
}

// refresh reclassifies the site from the failures observed since the
// last refresh. The recent window is the histogram delta, extracted with
// obs.CPSDelta — the same primitive the Section 6.1 profiler uses to
// attribute one attempt's failure.
func (st *siteState) refresh() {
	recent := obs.CPSDelta(st.snap, st.hist)
	var capacity, coh int
	for _, c := range recent {
		if c.Any(capacityBits) {
			capacity++
		}
		if c.Has(cps.COH) {
			coh++
		}
	}
	n := len(recent)
	if n > 0 {
		// Capacity is hopeless when it dominates the recent window AND no
		// hardware commit has landed since the last refresh: the
		// cache-warming bet (Section 6) has observably stopped paying.
		st.capacityHopeless = capacity*4 >= n*3 && !st.recentHW
		st.contended = coh*2 >= n
	}
	st.snap = cps.NewHistogram()
	st.snap.Merge(st.hist)
	st.sinceRefresh = 0
	st.recentHW = false
}

// Done implements Policy: commits and fallbacks feed the stance. A
// hardware commit after at least one failure is direct evidence that
// retries still pay at this site, so it lifts a capacityHopeless verdict
// immediately instead of waiting for the next refresh.
func (p *Adaptive) Done(site uint32, attempts int, fellBack bool) {
	st := p.site(site)
	if fellBack {
		st.fallbacks++
		return
	}
	st.commits++
	if attempts > 1 {
		st.recentHW = true
		st.capacityHopeless = false
	}
}

// Publish registers the policy's aggregate learning state with the
// unified metrics registry: site count, commit/fallback totals, and the
// merged abort histogram across sites. Collection is pull-based, so
// publishing costs the decision path nothing.
func (p *Adaptive) Publish(reg *obs.Registry) {
	reg.Register("policy-adaptive", func() obs.Sample {
		var commits, fallbacks uint64
		merged := cps.NewHistogram()
		for _, st := range p.sites {
			commits += st.commits
			fallbacks += st.fallbacks
			merged.Merge(st.hist)
		}
		return obs.Sample{
			Counters: []obs.NamedValue{
				{Name: "sites", Value: uint64(len(p.sites))},
				{Name: "commits", Value: commits},
				{Name: "fallbacks", Value: fallbacks},
				{Name: "failures", Value: merged.Total()},
			},
			CPS: merged,
		}
	})
}

// SiteHistogram returns a copy of the abort histogram learned for site,
// or nil if the site has never failed (for tests and reports).
func (p *Adaptive) SiteHistogram(site uint32) *cps.Histogram {
	st := p.sites[site]
	if st == nil {
		return nil
	}
	out := cps.NewHistogram()
	out.Merge(st.hist)
	return out
}
