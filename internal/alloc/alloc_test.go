package alloc

import (
	"testing"

	"rocktm/internal/sim"
)

func newMachine(strands int) *sim.Machine {
	cfg := sim.DefaultConfig(strands)
	cfg.MemWords = 1 << 18
	cfg.MaxCycles = 1 << 40
	return sim.New(cfg)
}

func TestGetPutReuse(t *testing.T) {
	m := newMachine(1)
	p := NewPool(m, 8, 16)
	m.Run(func(s *sim.Strand) {
		a := p.Get(s)
		b := p.Get(s)
		if a == b || a == 0 || b == 0 {
			t.Fatalf("bad blocks: %d %d", a, b)
		}
		if a%8 != 0 {
			t.Errorf("block %d not aligned to node size", a)
		}
		p.Put(s, a)
		if c := p.Get(s); c != a {
			t.Errorf("local free list not LIFO-reused: got %d want %d", c, a)
		}
	})
}

func TestDistinctBlocksUnderConcurrency(t *testing.T) {
	const threads, per = 4, 32
	m := newMachine(threads)
	p := NewPool(m, 8, threads*per)
	got := make([][]sim.Addr, threads)
	m.Run(func(s *sim.Strand) {
		for i := 0; i < per; i++ {
			got[s.ID()] = append(got[s.ID()], p.Get(s))
		}
	})
	seen := map[sim.Addr]bool{}
	for _, list := range got {
		for _, a := range list {
			if seen[a] {
				t.Fatalf("block %d handed out twice", a)
			}
			seen[a] = true
		}
	}
}

// TestStealsFromSiblingFreeLists: when the arena is exhausted, Get must
// rebalance from another strand's free list instead of panicking.
func TestStealsFromSiblingFreeLists(t *testing.T) {
	const cap = 8
	m := newMachine(2)
	p := NewPool(m, 8, cap)
	m.Run(func(s *sim.Strand) {
		if s.ID() == 0 {
			// Drain the whole arena, then free everything to MY list.
			var blocks []sim.Addr
			for i := 0; i < cap; i++ {
				blocks = append(blocks, p.Get(s))
			}
			for _, b := range blocks {
				p.Put(s, b)
			}
			s.Advance(100000) // let strand 1 run
		} else {
			s.Advance(50000) // start after strand 0 drained the arena
			if a := p.Get(s); a == 0 {
				t.Error("steal path returned null block")
			}
		}
	})
}

func TestExhaustionPanics(t *testing.T) {
	m := newMachine(1)
	p := NewPool(m, 8, 2)
	m.Run(func(s *sim.Strand) {
		p.Get(s)
		p.Get(s)
		defer func() {
			if recover() == nil {
				t.Error("expected panic on a truly exhausted pool")
			}
		}()
		p.Get(s)
	})
}

func TestPreallocSharesArena(t *testing.T) {
	m := newMachine(1)
	p := NewPool(m, 8, 4)
	a := p.Prealloc(m.Mem())
	b := p.Prealloc(m.Mem())
	if a == b {
		t.Fatal("Prealloc returned the same block twice")
	}
	m.Run(func(s *sim.Strand) {
		c := p.Get(s)
		if c == a || c == b {
			t.Error("Get returned a preallocated block")
		}
	})
}

func TestPutNullIsNoop(t *testing.T) {
	m := newMachine(1)
	p := NewPool(m, 8, 2)
	m.Run(func(s *sim.Strand) {
		p.Put(s, 0)
		if got := p.Get(s); got == 0 {
			t.Error("Get returned null after Put(0)")
		}
	})
}
