// Continuation-machine execution (sim.RunStepped) for the node allocator:
// Get and Put become explicit state machines whose resume points are their
// cycle charges and the shared bump-pointer fetch-add. Host bookkeeping
// (free-list pops and pushes) fires exactly once per operation, at the same
// point in the simulated-operation order as the coroutine path.
package alloc

import "rocktm/internal/sim"

// GetStep states.
const (
	agDispatch uint8 = iota
	agPopCharge
	agCursor
	agOverflow
)

// GetStep is one Pool.Get as a continuation machine.
type GetStep struct {
	st uint8
	a  sim.Addr
}

// Arm resets the machine for a fresh allocation.
func (g *GetStep) Arm() { g.st, g.a = agDispatch, 0 }

// Step advances the allocation; false means the strand must yield. The
// block address is available from Addr once Step returns true.
func (g *GetStep) Step(s *sim.Strand, p *Pool) bool {
	for {
		switch g.st {
		case agDispatch:
			fl := p.free[s.ID()]
			if n := len(fl); n > 0 {
				g.a = fl[n-1]
				p.free[s.ID()] = fl[:n-1]
				g.st = agPopCharge
			} else {
				g.st = agCursor
			}
		case agPopCharge:
			s.Advance(2) // local free-list pop
			if s.YieldPending() {
				return false
			}
			return true
		case agCursor:
			next := p.cursorAdd(s)
			if s.YieldPending() {
				return false
			}
			if next > sim.Word(p.limit) {
				g.st = agOverflow
				continue
			}
			g.a = sim.Addr(next) - sim.Addr(p.nodeWords)
			return true
		default: // agOverflow
			s.Advance(40)
			if s.YieldPending() {
				return false
			}
			for t := range p.free {
				if n := len(p.free[t]); n > 0 {
					g.a = p.free[t][n-1]
					p.free[t] = p.free[t][:n-1]
					return true
				}
			}
			panic("alloc: pool exhausted")
		}
	}
}

// Addr returns the allocated block once Step has returned true.
func (g *GetStep) Addr() sim.Addr { return g.a }

// PutStep is one Pool.Put as a continuation machine.
type PutStep struct {
	pushed bool
	a      sim.Addr
}

// Arm resets the machine to return block a; a zero address is a no-op, as
// in Put, so callers can arm unconditionally.
func (q *PutStep) Arm(a sim.Addr) { q.pushed, q.a = false, a }

// Step advances the reclamation; false means the strand must yield.
func (q *PutStep) Step(s *sim.Strand, p *Pool) bool {
	if q.a == 0 {
		return true
	}
	if !q.pushed {
		p.free[s.ID()] = append(p.free[s.ID()], q.a)
		q.pushed = true
	}
	s.Advance(2)
	if s.YieldPending() {
		return false
	}
	return true
}
