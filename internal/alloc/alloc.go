// Package alloc provides the node allocator the transactional data
// structures share: a bump arena in simulated memory (the shared heap) plus
// per-strand free lists (thread-local caches). Allocation and reclamation
// happen *outside* transactions — the paper's workloads likewise malloc
// before and free after their atomic sections — so a node is private until
// a committed transaction links it and private again once a committed
// transaction has unlinked it.
package alloc

import "rocktm/internal/sim"

// Pool hands out fixed-size node blocks.
type Pool struct {
	nodeWords int
	cursor    sim.Addr     // shared bump pointer (a word in simulated memory)
	limit     sim.Addr     // end of the arena
	free      [][]sim.Addr // per-strand free lists (thread-local, Go-side)
}

// NewPool carves an arena of capacity nodes of nodeWords each (line-aligned
// if nodeWords is a multiple of the line size) out of m's memory.
func NewPool(m *sim.Machine, nodeWords, capacity int) *Pool {
	mem := m.Mem()
	base := mem.AllocLines(nodeWords * capacity)
	cursorAddr := mem.AllocLines(sim.WordsPerLine)
	mem.Poke(cursorAddr, sim.Word(base))
	return &Pool{
		nodeWords: nodeWords,
		cursor:    cursorAddr,
		limit:     base + sim.Addr(nodeWords*capacity),
		free:      make([][]sim.Addr, m.Config().Strands),
	}
}

// NodeWords returns the block size in words.
func (p *Pool) NodeWords() int { return p.nodeWords }

// Get allocates a block for strand s: from its local free list if possible,
// otherwise by a fetch-add on the shared bump pointer. It panics when the
// arena is exhausted (experiments size pools up front).
func (p *Pool) Get(s *sim.Strand) sim.Addr {
	fl := p.free[s.ID()]
	if n := len(fl); n > 0 {
		a := fl[n-1]
		p.free[s.ID()] = fl[:n-1]
		s.Advance(2) // local free-list pop
		return a
	}
	next := p.cursorAdd(s)
	if next > sim.Word(p.limit) {
		// Arena exhausted: fall back to the global pool — in this model,
		// another strand's free list (real allocators rebalance magazines
		// the same way). Charged as a slower path.
		s.Advance(40)
		for t := range p.free {
			if n := len(p.free[t]); n > 0 {
				a := p.free[t][n-1]
				p.free[t] = p.free[t][:n-1]
				return a
			}
		}
		panic("alloc: pool exhausted")
	}
	return sim.Addr(next) - sim.Addr(p.nodeWords)
}

func (p *Pool) cursorAdd(s *sim.Strand) sim.Word {
	return s.Add(p.cursor, sim.Word(p.nodeWords))
}

// Put returns a block to strand s's local free list.
func (p *Pool) Put(s *sim.Strand, a sim.Addr) {
	if a == 0 {
		return
	}
	p.free[s.ID()] = append(p.free[s.ID()], a)
	s.Advance(2)
}

// Prealloc takes a block directly off the arena without strand accounting;
// it is for test-setup prepopulation (Poke-style, no cycles charged).
func (p *Pool) Prealloc(mem *sim.Memory) sim.Addr {
	cur := sim.Addr(mem.Peek(p.cursor))
	next := cur + sim.Addr(p.nodeWords)
	if next > p.limit {
		panic("alloc: pool exhausted during prepopulation")
	}
	mem.Poke(p.cursor, sim.Word(next))
	return cur
}
