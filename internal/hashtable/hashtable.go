// Package hashtable implements the transactional hash table of Section 5:
// a large bucket array (2^17 buckets in the paper's runs) of singly linked
// chains, sized so that chains are almost always empty or a single node and
// the common case stays simple. Operations are written once against
// core.Ctx and run under any synchronization system.
package hashtable

import (
	"rocktm/internal/alloc"
	"rocktm/internal/core"
	"rocktm/internal/rock"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
	"rocktm/internal/stm/tl2"
)

//go:generate go run rocktm/cmd/ctxgen

// Node layout (line-aligned, one node per cache line):
const (
	fKey      = 0
	fVal      = 1
	fNext     = 2
	nodeWords = sim.WordsPerLine
)

// Branch sites.
var (
	pcWalkNil = core.PC("hashtable.walk.nil")
	pcWalkKey = core.PC("hashtable.walk.key")
)

// Table is a fixed-size chained hash table in simulated memory.
type Table struct {
	buckets  sim.Addr
	nBuckets int
	mask     uint64
	pool     *alloc.Pool
}

// New builds a table with nBuckets buckets (a power of two) and capacity
// for at most capacity resident nodes (plus churn headroom handled by the
// free lists).
func New(m *sim.Machine, nBuckets, capacity int) *Table {
	if nBuckets <= 0 || nBuckets&(nBuckets-1) != 0 {
		panic("hashtable: nBuckets must be a positive power of two")
	}
	return &Table{
		buckets:  m.Mem().AllocLines(nBuckets),
		nBuckets: nBuckets,
		mask:     uint64(nBuckets - 1),
		pool:     alloc.NewPool(m, nodeWords, capacity),
	}
}

// hash spreads keys multiplicatively (no divide instruction — a divide
// would abort every hardware transaction with CPS=FP, the very issue the
// paper's Java Hashtable experiment had to factor out).
func (t *Table) hash(key uint64) uint64 {
	key *= 0x9e3779b97f4a7c15
	return (key >> 40) & t.mask
}

func (t *Table) bucketAddr(key uint64) sim.Addr {
	return t.buckets + sim.Addr(t.hash(key))
}

// Lookup reports the value stored under key.
func (t *Table) Lookup(c core.Ctx, key uint64) (sim.Word, bool) {
	p := c.Load(t.bucketAddr(key))
	for {
		c.Branch(pcWalkNil, p != 0, true)
		if p == 0 {
			return 0, false
		}
		n := sim.Addr(p)
		k := c.Load(n + fKey)
		c.Branch(pcWalkKey, k == key, true)
		if k == key {
			return c.Load(n + fVal), true
		}
		p = c.Load(n + fNext)
	}
}

// Insert adds key→val. The transactional part expects a pre-allocated,
// pre-initialized node; use the InsertOp wrapper for the full
// allocate-execute-reclaim cycle.
func (t *Table) insert(c core.Ctx, key uint64, node sim.Addr) bool {
	b := t.bucketAddr(key)
	head := c.Load(b)
	for p := head; ; {
		c.Branch(pcWalkNil, p != 0, true)
		if p == 0 {
			break
		}
		n := sim.Addr(p)
		k := c.Load(n + fKey)
		c.Branch(pcWalkKey, k == key, true)
		if k == key {
			return false // unsuccessful insert: modifies nothing
		}
		p = c.Load(n + fNext)
	}
	c.Store(node+fNext, head)
	c.Store(b, sim.Word(node))
	return true
}

// delete unlinks key's node, returning its address (0 if absent).
func (t *Table) delete(c core.Ctx, key uint64) sim.Addr {
	b := t.bucketAddr(key)
	prev := b
	prevIsBucket := true
	p := c.Load(b)
	for {
		c.Branch(pcWalkNil, p != 0, true)
		if p == 0 {
			return 0
		}
		n := sim.Addr(p)
		k := c.Load(n + fKey)
		c.Branch(pcWalkKey, k == key, true)
		if k == key {
			next := c.Load(n + fNext)
			if prevIsBucket {
				c.Store(prev, next)
			} else {
				c.Store(prev+fNext, next)
			}
			return n
		}
		prev = n
		prevIsBucket = false
		p = c.Load(n + fNext)
	}
}

// The xxxCtx dispatchers route one operation to the devirtualized kernel
// copy for c's concrete type (specialized_gen.go, maintained by
// cmd/ctxgen): one type test per transaction body buys direct, inlinable
// Load/Store/Branch calls on the chain walk. Every case performs the
// identical simulated operations — the golden cycle-identity tests pin it.

func (t *Table) lookupCtx(c core.Ctx, key uint64) (sim.Word, bool) {
	switch cc := c.(type) {
	case rock.Ctx:
		return t.lookupRock(cc, key)
	case rock.StepCtx:
		return t.lookupRockStep(cc, key)
	case *sky.HW:
		return t.lookupSkyHW(cc, key)
	case *tl2.Txn:
		return t.lookupTL2(cc, key)
	case *sky.Txn:
		return t.lookupSky(cc, key)
	case core.Raw:
		return t.lookupRaw(cc, key)
	case core.StepRaw:
		return t.lookupRawStep(cc, key)
	default:
		return t.Lookup(c, key)
	}
}

func (t *Table) insertCtx(c core.Ctx, key uint64, node sim.Addr) bool {
	switch cc := c.(type) {
	case rock.Ctx:
		return t.insertRock(cc, key, node)
	case rock.StepCtx:
		return t.insertRockStep(cc, key, node)
	case *sky.HW:
		return t.insertSkyHW(cc, key, node)
	case *tl2.Txn:
		return t.insertTL2(cc, key, node)
	case *sky.Txn:
		return t.insertSky(cc, key, node)
	case core.Raw:
		return t.insertRaw(cc, key, node)
	case core.StepRaw:
		return t.insertRawStep(cc, key, node)
	default:
		return t.insert(c, key, node)
	}
}

func (t *Table) deleteCtx(c core.Ctx, key uint64) sim.Addr {
	switch cc := c.(type) {
	case rock.Ctx:
		return t.deleteRock(cc, key)
	case rock.StepCtx:
		return t.deleteRockStep(cc, key)
	case *sky.HW:
		return t.deleteSkyHW(cc, key)
	case *tl2.Txn:
		return t.deleteTL2(cc, key)
	case *sky.Txn:
		return t.deleteSky(cc, key)
	case core.Raw:
		return t.deleteRaw(cc, key)
	case core.StepRaw:
		return t.deleteRawStep(cc, key)
	default:
		return t.delete(c, key)
	}
}

// InsertOp performs a complete insert of key→val under system sys:
// allocate and initialize the node outside the transaction, link it inside,
// reclaim it if the key turned out to be present. It reports whether the
// insert modified the table.
func (t *Table) InsertOp(sys core.System, s *sim.Strand, key uint64, val sim.Word) bool {
	node := t.pool.Get(s)
	s.Store(node+fKey, key)
	s.Store(node+fVal, val)
	inserted := false
	sys.Atomic(s, func(c core.Ctx) {
		inserted = t.insertCtx(c, key, node)
	})
	if !inserted {
		t.pool.Put(s, node)
	}
	return inserted
}

// DeleteOp performs a complete delete of key under system sys, reclaiming
// the node after the transaction commits. It reports whether a node was
// removed.
func (t *Table) DeleteOp(sys core.System, s *sim.Strand, key uint64) bool {
	var removed sim.Addr
	sys.Atomic(s, func(c core.Ctx) {
		removed = t.deleteCtx(c, key)
	})
	if removed != 0 {
		t.pool.Put(s, removed)
		return true
	}
	return false
}

// LookupOp performs a complete lookup under system sys.
func (t *Table) LookupOp(sys core.System, s *sim.Strand, key uint64) (sim.Word, bool) {
	var v sim.Word
	var ok bool
	sys.AtomicRO(s, func(c core.Ctx) {
		v, ok = t.lookupCtx(c, key)
	})
	return v, ok
}

// Session is a per-strand operation context: it pre-binds one closure per
// operation kind so the steady-state host cost of a complete operation is
// allocation-free (the XxxOp wrappers allocate a closure and escaping
// result boxes on every call). A Session performs the identical sequence of
// simulated operations; only the host-side plumbing differs. Sessions must
// only be used by the strand they were created for.
type Session struct {
	t   *Table
	sys core.System
	s   *sim.Strand

	key  uint64
	node sim.Addr

	v        sim.Word
	ok       bool
	inserted bool
	removed  sim.Addr

	lookupFn func(core.Ctx)
	insertFn func(core.Ctx)
	deleteFn func(core.Ctx)

	step *opStep // lazily-built continuation machine (StepXxx methods)
}

// NewSession builds the reusable operation context for strand s under sys.
func (t *Table) NewSession(sys core.System, s *sim.Strand) *Session {
	ss := &Session{t: t, sys: sys, s: s}
	ss.lookupFn = func(c core.Ctx) { ss.v, ss.ok = ss.t.lookupCtx(c, ss.key) }
	ss.insertFn = func(c core.Ctx) { ss.inserted = ss.t.insertCtx(c, ss.key, ss.node) }
	ss.deleteFn = func(c core.Ctx) { ss.removed = ss.t.deleteCtx(c, ss.key) }
	return ss
}

// Lookup is LookupOp through the session's reusable closure.
func (ss *Session) Lookup(key uint64) (sim.Word, bool) {
	ss.key = key
	ss.sys.AtomicRO(ss.s, ss.lookupFn)
	return ss.v, ss.ok
}

// Insert is InsertOp through the session's reusable closure.
func (ss *Session) Insert(key uint64, val sim.Word) bool {
	t, s := ss.t, ss.s
	node := t.pool.Get(s)
	s.Store(node+fKey, key)
	s.Store(node+fVal, val)
	ss.key, ss.node = key, node
	ss.inserted = false
	ss.sys.Atomic(s, ss.insertFn)
	if !ss.inserted {
		t.pool.Put(s, node)
	}
	return ss.inserted
}

// Delete is DeleteOp through the session's reusable closure.
func (ss *Session) Delete(key uint64) bool {
	ss.key = key
	ss.removed = 0
	ss.sys.Atomic(ss.s, ss.deleteFn)
	if ss.removed != 0 {
		ss.t.pool.Put(ss.s, ss.removed)
		return true
	}
	return false
}

// Prepopulate inserts keys directly (no cycles charged), for pre-run setup.
func (t *Table) Prepopulate(mem *sim.Memory, keys []uint64, val sim.Word) {
	for _, key := range keys {
		b := t.bucketAddr(key)
		n := t.pool.Prealloc(mem)
		mem.Poke(n+fKey, key)
		mem.Poke(n+fVal, val)
		mem.Poke(n+fNext, mem.Peek(b))
		mem.Poke(b, sim.Word(n))
	}
}

// Count walks the whole table directly (validation helper).
func (t *Table) Count(mem *sim.Memory) int {
	total := 0
	for i := 0; i < t.nBuckets; i++ {
		p := mem.Peek(t.buckets + sim.Addr(i))
		for p != 0 {
			total++
			p = mem.Peek(sim.Addr(p) + fNext)
		}
	}
	return total
}

// ContainsDirect checks membership directly (validation helper).
func (t *Table) ContainsDirect(mem *sim.Memory, key uint64) bool {
	p := mem.Peek(t.bucketAddr(key))
	for p != 0 {
		if mem.Peek(sim.Addr(p)+fKey) == key {
			return true
		}
		p = mem.Peek(sim.Addr(p) + fNext)
	}
	return false
}

// ---- Prepared-node interface (see rbtree's equivalent) ----

// AllocNode takes a node from the pool and initializes it outside any
// transaction.
func (t *Table) AllocNode(s *sim.Strand, key uint64, val sim.Word) sim.Addr {
	node := t.pool.Get(s)
	s.Store(node+fKey, key)
	s.Store(node+fVal, val)
	return node
}

// InsertNode links a prepared node inside the caller's atomic context.
func (t *Table) InsertNode(c core.Ctx, key uint64, node sim.Addr) bool {
	return t.insertCtx(c, key, node)
}

// DeleteNode unlinks key inside the caller's atomic context, returning the
// freed node (0 if absent).
func (t *Table) DeleteNode(c core.Ctx, key uint64) sim.Addr {
	return t.deleteCtx(c, key)
}

// FreeNode returns a node to the pool (outside any transaction).
func (t *Table) FreeNode(s *sim.Strand, node sim.Addr) { t.pool.Put(s, node) }
