package hashtable

import (
	"testing"
	"testing/quick"

	"rocktm/internal/core"
	"rocktm/internal/phtm"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
)

func newMachine(strands int) *sim.Machine {
	cfg := sim.DefaultConfig(strands)
	cfg.MemWords = 1 << 21
	cfg.MaxCycles = 1 << 42
	return sim.New(cfg)
}

// TestAgainstModel drives the table single-threaded under PhTM against a
// model map.
func TestAgainstModel(t *testing.T) {
	m := newMachine(1)
	table := New(m, 1<<12, 1<<12)
	sys := phtm.New(m, sky.New(m), phtm.DefaultConfig())
	model := map[uint64]bool{}
	m.Run(func(s *sim.Strand) {
		for i := 0; i < 2500; i++ {
			key := uint64(s.RandIntn(300))
			switch s.RandIntn(3) {
			case 0:
				got := table.InsertOp(sys, s, key, sim.Word(key))
				if got == model[key] {
					t.Errorf("op %d: insert(%d)=%v model=%v", i, key, got, model[key])
					return
				}
				model[key] = true
			case 1:
				got := table.DeleteOp(sys, s, key)
				if got != model[key] {
					t.Errorf("op %d: delete(%d)=%v model=%v", i, key, got, model[key])
					return
				}
				delete(model, key)
			case 2:
				_, got := table.LookupOp(sys, s, key)
				if got != model[key] {
					t.Errorf("op %d: lookup(%d)=%v model=%v", i, key, got, model[key])
					return
				}
			}
		}
	})
	if n := table.Count(m.Mem()); n != len(model) {
		t.Fatalf("table holds %d keys, model %d", n, len(model))
	}
	for k := range model {
		if !table.ContainsDirect(m.Mem(), k) {
			t.Fatalf("missing key %d", k)
		}
	}
}

// TestPrepopulate verifies direct prepopulation is visible to transactional
// readers.
func TestPrepopulate(t *testing.T) {
	m := newMachine(1)
	table := New(m, 1<<12, 1<<12)
	keys := []uint64{1, 5, 9, 1000, 77}
	table.Prepopulate(m.Mem(), keys, 42)
	if n := table.Count(m.Mem()); n != len(keys) {
		t.Fatalf("count = %d, want %d", n, len(keys))
	}
	sys := phtm.New(m, sky.New(m), phtm.DefaultConfig())
	m.Run(func(s *sim.Strand) {
		for _, k := range keys {
			if v, ok := table.LookupOp(sys, s, k); !ok || v != 42 {
				t.Errorf("lookup(%d) = (%d,%v), want (42,true)", k, v, ok)
			}
		}
		if _, ok := table.LookupOp(sys, s, 12345); ok {
			t.Error("found key that was never inserted")
		}
	})
}

// TestConcurrentDisjoint inserts disjoint ranges from several strands; all
// keys must survive.
func TestConcurrentDisjoint(t *testing.T) {
	const threads = 6
	m := newMachine(threads)
	table := New(m, 1<<12, 1<<13)
	sys := phtm.New(m, sky.New(m), phtm.DefaultConfig())
	m.Run(func(s *sim.Strand) {
		base := uint64(s.ID()) * 10000
		for i := uint64(0); i < 150; i++ {
			if !table.InsertOp(sys, s, base+i, 1) {
				t.Errorf("insert of fresh key %d failed", base+i)
				return
			}
		}
		for i := uint64(0); i < 150; i += 3 {
			if !table.DeleteOp(sys, s, base+i) {
				t.Errorf("delete of present key %d failed", base+i)
				return
			}
		}
	})
	want := threads * 100
	if n := table.Count(m.Mem()); n != want {
		t.Fatalf("table holds %d keys, want %d", n, want)
	}
}

// TestHashSpreads is a property test: the multiplicative hash never needs a
// divide and spreads adjacent keys to distinct buckets nearly always.
func TestHashSpreads(t *testing.T) {
	m := newMachine(1)
	table := New(m, 1<<17, 8)
	prop := func(k uint64) bool {
		h1 := table.hash(k)
		h2 := table.hash(k + 1)
		return h1 <= table.mask && h2 <= table.mask
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	// Adjacent small keys (the benchmark's key ranges) should not pile into
	// few buckets.
	seen := map[uint64]bool{}
	for k := uint64(0); k < 256; k++ {
		seen[table.hash(k)] = true
	}
	if len(seen) < 250 {
		t.Errorf("256 adjacent keys landed in only %d buckets", len(seen))
	}
}

var _ = core.PC // import anchor
