package bench

import (
	"fmt"

	"rocktm/internal/phtm"
	"rocktm/internal/policy"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
	"rocktm/internal/workload"
)

// The htmdesign sweep replays three contrasting workloads against every
// named HTM design point (sim.DesignPointNames):
//
//   - rbtree: the Figure 2(b) red-black tree (2048 keys, 96% reads) —
//     deep transactions whose capacity and conflict behaviour exposed the
//     E23 tail pathology; the design axes move both its abort mix and who
//     pays for each conflict.
//   - hash: the Figure 1(a) hash table at key range 256 with 0% lookups —
//     short write-only transactions under genuine line contention, the
//     livelock-shaped workload conflict resolution exists for.
//   - rbtree-evict: the same tree under the "evict" fault profile
//     (adversarial displacement of marked lines), the injectable version
//     of the capacity pathology the sticky axis was built to absorb.
//
// Each (design, workload) pair runs under the paper policy and the
// adaptive policy, with tunings routed through policy.TuningForDesign so
// retry intelligence reacts to the design (e.g. committer-wins turning
// COH aborts into already-stalled self-aborts that need no software
// backoff). The design point rides in sim.Config.HTM, so every cell's
// cache key (Config.Digest) distinguishes designs automatically.
type htmWorkload struct {
	name      string
	keyRange  int
	pctLookup int
	memWords  int
	build     func(m *sim.Machine, keyRange int) kvStructure
	// faults names a sim.FaultProfile injected into every cell of this
	// workload ("" means none). The plan rides in sim.Config.Faults, so
	// the cache key (Config.Digest) distinguishes faulted cells the same
	// way it distinguishes designs.
	faults string
}

func htmDesignWorkloads() []htmWorkload {
	return []htmWorkload{
		{name: "rbtree", keyRange: policyKeyRange, pctLookup: policyPctLookup,
			memWords: policyMemWords, build: rbtreeKV},
		{name: "hash", keyRange: 256, pctLookup: 0,
			memWords: 1 << 23, build: hashtableKV(1 << 17)},
		// The rbtree under the adversarial marked-line-eviction profile:
		// the workload the sticky axis exists for — the default design
		// dooms every displacement with LD, a sticky design absorbs them
		// up to its bound (the capacity half of the E23 tail pathology,
		// now injectable on demand).
		{name: "rbtree-evict", keyRange: policyKeyRange, pctLookup: policyPctLookup,
			memWords: policyMemWords, build: rbtreeKV, faults: "evict"},
	}
}

// htmDesignPolicies lists the retry policies the sweep crosses each
// design with: the paper's Section 6.1 heuristics and the adaptive
// learner (the naive baseline adds little here — the policy ablation
// already covers it).
func htmDesignPolicies() []string { return []string{"paper", "adaptive"} }

// htmDesignCfg is machineCfg with the HTM design point and the workload's
// fault profile installed; both are part of the config, so the runner
// cache digests key them.
func htmDesignCfg(threads, memWords int, seed uint64, design, faults string) sim.Config {
	cfg := machineCfg(threads, memWords, seed)
	cfg.HTM = sim.DesignPoint(design)
	if faults != "" {
		cfg.Faults = sim.FaultProfile(faults)
	}
	return cfg
}

// runHTMDesignCell measures one (design, workload, policy, threads) cell:
// PhTM over the SkySTM back end, with the machine implementing the named
// design point and the policy tuned for it.
func runHTMDesignCell(o Options, design string, wl htmWorkload, polName string, threads int) (Point, error) {
	cfg := htmDesignCfg(threads, wl.memWords, o.Seed, design, wl.faults)
	m := sim.New(cfg)
	defer m.Recycle()
	st := wl.build(m, wl.keyRange)
	pcfg := phtm.DefaultConfig()
	sys := phtm.New(m, sky.New(m), pcfg)
	sys.SetPolicy(policy.MustNew(polName, policy.TuningForDesign(pcfg.Tuning(), cfg.HTM)))
	spec := workload.MustCompile(workload.KVSpec(workload.Uniform(wl.keyRange), wl.pctLookup))
	lat := o.latRecorder()
	tr := o.startTrace(m)
	rec := o.startWindows(m)
	m.Run(func(s *sim.Strand) {
		ses := st.NewSession(sys, s)
		d := spec.Driver(s, lat)
		if rec != nil {
			d.Observe(rec)
		}
		d.Run(o.OpsPerThread, func(_, op int, key uint64) {
			switch op {
			case workload.OpLookup:
				ses.Lookup(key)
			case workload.OpInsert:
				ses.Insert(key, 1)
			default:
				ses.Delete(key)
			}
		})
	})
	label := fmt.Sprintf("htmdesign/%s-%s-%s@%dT", design, wl.name, polName, threads)
	o.endTrace(tr, label)
	o.endWindows(rec, label)
	res := workload.NewResult(uint64(threads*o.OpsPerThread), m.ElapsedSeconds(), sys.Stats(), lat)
	return point(res, threads), nil
}

// HTMDesignFigure produces the design-space sweep: every named HTM design
// point × {rbtree, hash} × {paper, adaptive}, each across the thread
// axis. One curve per (design, workload, policy) triple, named
// "design/workload/policy"; the "rock/..." curves are the all-default
// baseline every other design is read against.
//
// What the axes predict (see docs/HTM-DESIGN.md for the worked reading):
//
//   - committer/timestamp vs rock on hash: conflict resolution that
//     stalls requesters serializes the write-only contention instead of
//     livelocking it, trading throughput at low threads for stability at
//     high ones.
//   - eagervm: cheaper commits (no drain) on the store-heavy hash cells,
//     bought with pricier aborts everywhere the rbtree conflicts.
//   - sticky: absorbs the rbtree's same-set read-set displacements (the
//     LD aborts behind deep-tree walks), directly attacking the capacity
//     half of the E23 tail pathology.
func HTMDesignFigure(o Options) (*Figure, error) {
	o = o.Defaults()
	fig := &Figure{
		Title:  "HTM design space: design point x workload x policy (PhTM over SkySTM)",
		YLabel: "throughput (ops/usec), simulated",
	}
	var names []string
	var cells []pointCell
	for _, design := range sim.DesignPointNames() {
		for _, wl := range htmDesignWorkloads() {
			for _, pol := range htmDesignPolicies() {
				design, wl, pol := design, wl, pol
				names = append(names, design+"/"+wl.name+"/"+pol)
				for _, th := range o.Threads {
					th := th
					cells = append(cells, pointCell{
						Spec: o.spec("htmdesign", design+"/"+wl.name+"/"+pol, th,
							htmDesignCfg(th, wl.memWords, o.Seed, design, wl.faults),
							map[string]string{
								"design":   design,
								"workload": wl.name,
								"keyrange": itoa(wl.keyRange),
								"lookup":   itoa(wl.pctLookup),
								"policy":   pol,
								"faults":   wl.faults,
							}),
						Compute: func() (Point, error) { return runHTMDesignCell(o, design, wl, pol, th) },
					})
				}
			}
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	// One note per design point: its rbtree/paper cell at the highest
	// thread count, read against the rock baseline.
	for _, curve := range curves {
		for _, design := range sim.DesignPointNames() {
			if curve.Name == design+"/rbtree/paper" {
				if last := curve.Points[len(curve.Points)-1]; last.Extra != "" {
					fig.Notes = append(fig.Notes, fmt.Sprintf("%s @%d threads: %s", curve.Name, last.Threads, last.Extra))
				}
			}
		}
	}
	return fig, nil
}
