package bench

import (
	"fmt"

	"rocktm/internal/chat"
	"rocktm/internal/counter"
	"rocktm/internal/dcas"
	"rocktm/internal/jvm"
	"rocktm/internal/sim"
	"rocktm/internal/tle"
)

// counterCfg is the counter experiment's machine configuration: short
// transactions need fine-grained interleaving (Quantum=8) for the
// conflict behaviour to be visible.
func counterCfg(threads int, seed uint64) sim.Config {
	cfg := sim.DefaultConfig(threads)
	cfg.MemWords = 1 << 18
	cfg.Seed = seed
	cfg.MaxCycles = 1 << 46
	cfg.Quantum = 8
	return cfg
}

// CounterFigure reconstructs the Section 4 counter experiment: CAS-based
// and HTM-based increments of one shared counter, with and without
// backoff. The HTM-without-backoff curve shows the requester-wins
// degradation the paper describes as suggesting livelock.
func CounterFigure(o Options) (*Figure, error) {
	o = o.Defaults()
	fig := &Figure{
		Title:  "Section 4 counter: CAS vs HTM increments, with/without backoff",
		YLabel: "throughput (ops/usec), simulated",
	}
	methods := []counter.Method{counter.CAS, counter.CASBackoff, counter.HTM, counter.HTMBackoff}
	var names []string
	var cells []pointCell
	for _, method := range methods {
		names = append(names, method.Name())
		for _, th := range o.Threads {
			method, th := method, th
			cells = append(cells, pointCell{
				Spec: o.spec("counter", method.Name(), th, counterCfg(th, o.Seed), nil),
				Compute: func() (Point, error) {
					m := sim.New(counterCfg(th, o.Seed))
					ctr := counter.New(m)
					tr := o.startTrace(m)
					m.Run(func(s *sim.Strand) {
						for i := 0; i < o.OpsPerThread; i++ {
							ctr.Inc(s, method)
						}
					})
					o.endTrace(tr, fmt.Sprintf("counter/%s@%dT", method.Name(), th))
					if got := ctr.Value(m.Mem()); got != sim.Word(th*o.OpsPerThread) {
						return Point{}, fmt.Errorf("counter %s/%d: %d != %d", method.Name(), th, got, th*o.OpsPerThread)
					}
					res := runResult{ops: uint64(th * o.OpsPerThread), seconds: m.ElapsedSeconds(), stats: ctr.Stats()}
					return Point{Threads: th, OpsPerUsec: res.throughput(), Extra: summarizeStats(res.stats)}, nil
				},
			})
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	return fig, nil
}

// DCASFigure reconstructs the Section 4 comparison of DCAS-based
// reimplementations against hand-crafted java.util.concurrent designs:
// the sorted-list set pair (DCAS unlink-and-poison vs Harris–Michael
// marked pointers) and the FIFO queue pair (DCAS link-and-swing vs the
// Michael–Scott queue), 1/3 each insert/remove/contains for the sets and
// 50/50 enqueue/dequeue for the queues.
func DCASFigure(o Options) (*Figure, error) {
	o = o.Defaults()
	const keyRange = 256
	fig := &Figure{
		Title:  "Section 4 DCAS sets: DCAS list vs hand-crafted lock-free list, keyrange=256",
		YLabel: "throughput (ops/usec), simulated",
	}
	type setIface interface {
		Insert(s *sim.Strand, key uint64) bool
		Remove(s *sim.Strand, key uint64) bool
		Contains(s *sim.Strand, key uint64) bool
	}
	builders := []struct {
		name  string
		build func(m *sim.Machine) setIface
	}{
		{"dcas-list", func(m *sim.Machine) setIface {
			return dcas.NewDCASList(m, dcas.New(m), keyRange+o.OpsPerThread*m.Config().Strands+64)
		}},
		{"juc-lockfree", func(m *sim.Machine) setIface {
			return dcas.NewHMList(m, keyRange+o.OpsPerThread*m.Config().Strands+64)
		}},
	}
	var names []string
	var cells []pointCell
	for _, b := range builders {
		names = append(names, b.name)
		for _, th := range o.Threads {
			b, th := b, th
			cells = append(cells, pointCell{
				Spec: o.spec("dcas", b.name, th, machineCfg(th, 1<<23, o.Seed),
					map[string]string{"keyrange": itoa(keyRange)}),
				Compute: func() (Point, error) {
					m := machineFor(th, 1<<23, o.Seed)
					set := b.build(m)
					m.Run(func(s *sim.Strand) {
						for i := 0; i < o.OpsPerThread; i++ {
							key := uint64(1 + s.RandIntn(keyRange))
							switch s.RandIntn(3) {
							case 0:
								set.Insert(s, key)
							case 1:
								set.Remove(s, key)
							default:
								set.Contains(s, key)
							}
						}
					})
					res := runResult{ops: uint64(th * o.OpsPerThread), seconds: m.ElapsedSeconds()}
					return Point{Threads: th, OpsPerUsec: res.throughput()}, nil
				},
			})
		}
	}
	type fifo interface {
		Enqueue(s *sim.Strand, val sim.Word)
		Dequeue(s *sim.Strand) (sim.Word, bool)
	}
	qbuilders := []struct {
		name  string
		build func(m *sim.Machine) fifo
	}{
		{"dcas-queue", func(m *sim.Machine) fifo {
			return dcas.NewDCASQueue(m, dcas.New(m), o.OpsPerThread*m.Config().Strands+64)
		}},
		{"juc-msqueue", func(m *sim.Machine) fifo {
			return dcas.NewMSQueue(m, o.OpsPerThread*m.Config().Strands+64)
		}},
	}
	for _, b := range qbuilders {
		names = append(names, b.name)
		for _, th := range o.Threads {
			b, th := b, th
			cells = append(cells, pointCell{
				Spec: o.spec("dcas", b.name, th, machineCfg(th, 1<<23, o.Seed), nil),
				Compute: func() (Point, error) {
					m := machineFor(th, 1<<23, o.Seed)
					q := b.build(m)
					m.Run(func(s *sim.Strand) {
						for i := 0; i < o.OpsPerThread; i++ {
							if s.RandIntn(2) == 0 {
								q.Enqueue(s, sim.Word(i))
							} else {
								q.Dequeue(s)
							}
						}
					})
					res := runResult{ops: uint64(th * o.OpsPerThread), seconds: m.ElapsedSeconds()}
					return Point{Threads: th, OpsPerUsec: res.throughput()}, nil
				},
			})
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	return fig, nil
}

// VolanoFigure reconstructs the VolanoMark-style observation closing
// Section 7.2: a chat-server workload run with plain monitors, with TLE
// code emitted but disabled (paying the code-bloat cost), and with TLE
// enabled.
func VolanoFigure(o Options) (*Figure, error) {
	o = o.Defaults()
	const rooms = 16
	configs := []struct {
		name        string
		emit, elide bool
	}{
		{"locks(no-TLE-code)", false, false},
		{"TLE-emitted-disabled", true, false},
		{"TLE-enabled", true, true},
	}
	fig := &Figure{
		Title:  "Section 7.2 (text) VolanoMark-like chat workload",
		YLabel: "throughput (ops/usec), simulated",
	}
	var names []string
	var cells []pointCell
	for _, cc := range configs {
		names = append(names, cc.name)
		for _, th := range o.Threads {
			cc, th := cc, th
			cells = append(cells, pointCell{
				Spec: o.spec("volano", cc.name, th, machineCfg(th, 1<<21, o.Seed),
					map[string]string{"rooms": itoa(rooms)}),
				Compute: func() (Point, error) {
					m := machineFor(th, 1<<21, o.Seed)
					vm := jvm.New(m, tle.DefaultPolicy())
					vm.EmitTLE = cc.emit
					vm.Elide = cc.elide
					srv := chat.NewServer(m, vm, rooms)
					m.Run(func(s *sim.Strand) {
						room := s.ID() % rooms
						srv.Join(s, room)
						for i := 0; i < o.OpsPerThread; i++ {
							r := s.RandIntn(100)
							switch {
							case r < 10:
								room = s.RandIntn(rooms)
								srv.Join(s, room)
							case r < 40:
								srv.Post(s, room, sim.Word(i))
							default:
								srv.ReadRecent(s, room, 8)
							}
						}
						srv.Leave(s, room)
					})
					res := runResult{ops: uint64(th * o.OpsPerThread), seconds: m.ElapsedSeconds(), stats: vm.Stats()}
					return Point{Threads: th, OpsPerUsec: res.throughput(), Extra: summarizeStats(res.stats)}, nil
				},
			})
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	return fig, nil
}
