package bench

import (
	"fmt"

	"rocktm/internal/chat"
	"rocktm/internal/counter"
	"rocktm/internal/dcas"
	"rocktm/internal/jvm"
	"rocktm/internal/sim"
	"rocktm/internal/tle"
	"rocktm/internal/workload"
)

// counterCfg is the counter experiment's machine configuration: short
// transactions need fine-grained interleaving (Quantum=8) for the
// conflict behaviour to be visible.
func counterCfg(threads int, seed uint64) sim.Config {
	cfg := sim.DefaultConfig(threads)
	cfg.MemWords = 1 << 18
	cfg.Seed = seed
	cfg.MaxCycles = 1 << 46
	cfg.Quantum = 8
	return cfg
}

// counterSpec is the counter driver: one keyless op, no roll — the legacy
// loop drew nothing from the strand RNG and neither does this.
func counterSpec() workload.Spec {
	return workload.Spec{Ops: []workload.Op{{Name: "inc", NoKey: true}}}
}

// CounterFigure reconstructs the Section 4 counter experiment: CAS-based
// and HTM-based increments of one shared counter, with and without
// backoff. The HTM-without-backoff curve shows the requester-wins
// degradation the paper describes as suggesting livelock.
func CounterFigure(o Options) (*Figure, error) {
	o = o.Defaults()
	fig := &Figure{
		Title:  "Section 4 counter: CAS vs HTM increments, with/without backoff",
		YLabel: "throughput (ops/usec), simulated",
	}
	wl := workload.MustCompile(counterSpec())
	methods := []counter.Method{counter.CAS, counter.CASBackoff, counter.HTM, counter.HTMBackoff}
	var names []string
	var cells []pointCell
	for _, method := range methods {
		names = append(names, method.Name())
		for _, th := range o.Threads {
			method, th := method, th
			cells = append(cells, pointCell{
				Spec: o.spec("counter", method.Name(), th, counterCfg(th, o.Seed), nil),
				Compute: func() (Point, error) {
					m := sim.New(counterCfg(th, o.Seed))
					defer m.Recycle()
					ctr := counter.New(m)
					lat := o.latRecorder()
					tr := o.startTrace(m)
					rec := o.startWindows(m)
					m.Run(func(s *sim.Strand) {
						d := wl.Driver(s, lat)
						if rec != nil {
							d.Observe(rec)
						}
						d.Run(o.OpsPerThread, func(_, _ int, _ uint64) {
							ctr.Inc(s, method)
						})
					})
					o.endTrace(tr, fmt.Sprintf("counter/%s@%dT", method.Name(), th))
					o.endWindows(rec, fmt.Sprintf("counter/%s@%dT", method.Name(), th))
					if got := ctr.Value(m.Mem()); got != sim.Word(th*o.OpsPerThread) {
						return Point{}, fmt.Errorf("counter %s/%d: %d != %d", method.Name(), th, got, th*o.OpsPerThread)
					}
					res := workload.NewResult(uint64(th*o.OpsPerThread), m.ElapsedSeconds(), ctr.Stats(), lat)
					return point(res, th), nil
				},
			})
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	return fig, nil
}

// dcasSetSpec is the DCAS set driver: key drawn first from [1, keyRange],
// then a 1/3 each insert/remove/contains roll out of 3.
func dcasSetSpec(keyRange int) workload.Spec {
	return workload.Spec{
		Ops: []workload.Op{
			{Name: "insert", Weight: 1},
			{Name: "remove", Weight: 1},
			{Name: "contains", Weight: 1},
		},
		Roll: 3,
		Keys: workload.UniformOffset(keyRange, 1),
	}
}

// dcasQueueSpec is the FIFO queue driver: keyless 50/50 enqueue/dequeue.
func dcasQueueSpec() workload.Spec {
	return workload.Spec{
		Ops: []workload.Op{
			{Name: "enqueue", Weight: 1, NoKey: true},
			{Name: "dequeue", Weight: 1, NoKey: true},
		},
		Roll: 2,
	}
}

// DCASFigure reconstructs the Section 4 comparison of DCAS-based
// reimplementations against hand-crafted java.util.concurrent designs:
// the sorted-list set pair (DCAS unlink-and-poison vs Harris–Michael
// marked pointers) and the FIFO queue pair (DCAS link-and-swing vs the
// Michael–Scott queue), 1/3 each insert/remove/contains for the sets and
// 50/50 enqueue/dequeue for the queues.
func DCASFigure(o Options) (*Figure, error) {
	o = o.Defaults()
	const keyRange = 256
	fig := &Figure{
		Title:  "Section 4 DCAS sets: DCAS list vs hand-crafted lock-free list, keyrange=256",
		YLabel: "throughput (ops/usec), simulated",
	}
	setWL := workload.MustCompile(dcasSetSpec(keyRange))
	queueWL := workload.MustCompile(dcasQueueSpec())
	type setIface interface {
		Insert(s *sim.Strand, key uint64) bool
		Remove(s *sim.Strand, key uint64) bool
		Contains(s *sim.Strand, key uint64) bool
	}
	builders := []struct {
		name  string
		build func(m *sim.Machine) setIface
	}{
		{"dcas-list", func(m *sim.Machine) setIface {
			return dcas.NewDCASList(m, dcas.New(m), keyRange+o.OpsPerThread*m.Config().Strands+64)
		}},
		{"juc-lockfree", func(m *sim.Machine) setIface {
			return dcas.NewHMList(m, keyRange+o.OpsPerThread*m.Config().Strands+64)
		}},
	}
	var names []string
	var cells []pointCell
	for _, b := range builders {
		names = append(names, b.name)
		for _, th := range o.Threads {
			b, th := b, th
			cells = append(cells, pointCell{
				Spec: o.spec("dcas", b.name, th, machineCfg(th, 1<<23, o.Seed),
					map[string]string{"keyrange": itoa(keyRange)}),
				Compute: func() (Point, error) {
					m := machineFor(th, 1<<23, o.Seed)
					defer m.Recycle()
					set := b.build(m)
					lat := o.latRecorder()
					rec := o.startWindows(m)
					m.Run(func(s *sim.Strand) {
						d := setWL.Driver(s, lat)
						if rec != nil {
							d.Observe(rec)
						}
						d.Run(o.OpsPerThread, func(_, op int, key uint64) {
							switch op {
							case 0:
								set.Insert(s, key)
							case 1:
								set.Remove(s, key)
							default:
								set.Contains(s, key)
							}
						})
					})
					o.endWindows(rec, fmt.Sprintf("dcas/%s@%dT", b.name, th))
					res := workload.NewResult(uint64(th*o.OpsPerThread), m.ElapsedSeconds(), nil, lat)
					return point(res, th), nil
				},
			})
		}
	}
	type fifo interface {
		Enqueue(s *sim.Strand, val sim.Word)
		Dequeue(s *sim.Strand) (sim.Word, bool)
	}
	qbuilders := []struct {
		name  string
		build func(m *sim.Machine) fifo
	}{
		{"dcas-queue", func(m *sim.Machine) fifo {
			return dcas.NewDCASQueue(m, dcas.New(m), o.OpsPerThread*m.Config().Strands+64)
		}},
		{"juc-msqueue", func(m *sim.Machine) fifo {
			return dcas.NewMSQueue(m, o.OpsPerThread*m.Config().Strands+64)
		}},
	}
	for _, b := range qbuilders {
		names = append(names, b.name)
		for _, th := range o.Threads {
			b, th := b, th
			cells = append(cells, pointCell{
				Spec: o.spec("dcas", b.name, th, machineCfg(th, 1<<23, o.Seed), nil),
				Compute: func() (Point, error) {
					m := machineFor(th, 1<<23, o.Seed)
					defer m.Recycle()
					q := b.build(m)
					lat := o.latRecorder()
					rec := o.startWindows(m)
					m.Run(func(s *sim.Strand) {
						d := queueWL.Driver(s, lat)
						if rec != nil {
							d.Observe(rec)
						}
						d.Run(o.OpsPerThread, func(i, op int, _ uint64) {
							if op == 0 {
								q.Enqueue(s, sim.Word(i))
							} else {
								q.Dequeue(s)
							}
						})
					})
					o.endWindows(rec, fmt.Sprintf("dcas/%s@%dT", b.name, th))
					res := workload.NewResult(uint64(th*o.OpsPerThread), m.ElapsedSeconds(), nil, lat)
					return point(res, th), nil
				},
			})
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	return fig, nil
}

// volanoSpec is the chat driver: the op rolls first out of 100, and only
// the room-switch op draws a key (the new room). Post and read reuse the
// strand's sticky room, so they are keyless — the conditional key draw
// that motivated Op.NoKey.
func volanoSpec(rooms int) workload.Spec {
	return workload.Spec{
		Ops: []workload.Op{
			{Name: "join", Weight: 10},
			{Name: "post", Weight: 30, NoKey: true},
			{Name: "read", Weight: 60, NoKey: true},
		},
		Roll:  100,
		Keys:  workload.Uniform(rooms),
		Order: workload.OpThenKey,
	}
}

// VolanoFigure reconstructs the VolanoMark-style observation closing
// Section 7.2: a chat-server workload run with plain monitors, with TLE
// code emitted but disabled (paying the code-bloat cost), and with TLE
// enabled.
func VolanoFigure(o Options) (*Figure, error) {
	o = o.Defaults()
	const rooms = 16
	wl := workload.MustCompile(volanoSpec(rooms))
	configs := []struct {
		name        string
		emit, elide bool
	}{
		{"locks(no-TLE-code)", false, false},
		{"TLE-emitted-disabled", true, false},
		{"TLE-enabled", true, true},
	}
	fig := &Figure{
		Title:  "Section 7.2 (text) VolanoMark-like chat workload",
		YLabel: "throughput (ops/usec), simulated",
	}
	var names []string
	var cells []pointCell
	for _, cc := range configs {
		names = append(names, cc.name)
		for _, th := range o.Threads {
			cc, th := cc, th
			cells = append(cells, pointCell{
				Spec: o.spec("volano", cc.name, th, machineCfg(th, 1<<21, o.Seed),
					map[string]string{"rooms": itoa(rooms)}),
				Compute: func() (Point, error) {
					m := machineFor(th, 1<<21, o.Seed)
					defer m.Recycle()
					vm := jvm.New(m, tle.DefaultPolicy())
					vm.EmitTLE = cc.emit
					vm.Elide = cc.elide
					srv := chat.NewServer(m, vm, rooms)
					lat := o.latRecorder()
					rec := o.startWindows(m)
					m.Run(func(s *sim.Strand) {
						room := s.ID() % rooms
						srv.Join(s, room)
						d := wl.Driver(s, lat)
						if rec != nil {
							d.Observe(rec)
						}
						d.Run(o.OpsPerThread, func(i, op int, key uint64) {
							switch op {
							case 0:
								room = int(key)
								srv.Join(s, room)
							case 1:
								srv.Post(s, room, sim.Word(i))
							default:
								srv.ReadRecent(s, room, 8)
							}
						})
						srv.Leave(s, room)
					})
					o.endWindows(rec, fmt.Sprintf("volano/%s@%dT", cc.name, th))
					res := workload.NewResult(uint64(th*o.OpsPerThread), m.ElapsedSeconds(), vm.Stats(), lat)
					return point(res, th), nil
				},
			})
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	return fig, nil
}
