package bench

import (
	"fmt"
	"strconv"

	"rocktm/internal/obs/timeseries"
	"rocktm/internal/runner"
	"rocktm/internal/workload"
)

// The timeline experiment: the E23 tail sweep's most contended corner —
// zipfian 0.99 keys — re-run with windowed timeseries capture, so the
// transient pathologies E23 could only infer from end-of-run percentiles
// (PhTM's phase-flip drain above all) become visible as concrete window
// ranges, get named by the pathology detectors, and are judged against
// declared SLOs with burn-rate verdicts. This is ROADMAP item 1's
// fleet-judging machinery exercised end to end.
//
// Unlike the -timeline opt-in flag (which forces serial execution and
// deposits series into a side sink), the timeline figure carries each
// run's series inside its cell payload, so it runs through the runner's
// pool and content-addressed cache like any other experiment —
// serial ≡ parallel ≡ warm-cache byte-identical, pinned by test.

// timelinePoint is the timeline experiment's cell payload: the standard
// figure point plus the run's window series. Both survive the runner's
// canonical-JSON round trip byte-identically.
type timelinePoint struct {
	Point  Point
	Series timeseries.Series
}

// timelineWidth resolves the window width the experiment records at.
func (o Options) timelineWidth() int64 {
	if o.TimelineWindow > 0 {
		return o.TimelineWindow
	}
	return timeseries.DefaultWidth
}

// timelineSLOs declares the experiment's per-structure objectives. The
// thresholds are set between the families E23 measured: TLE's rbtree
// p99.9 sits near 9k cycles and PhTM's drain windows reach past 64k, so
// a 16k bound separates them; the hash table's short operations hold a
// tighter 8k bound that pure STM's validation tail breaks.
func timelineSLOs(structure string) []timeseries.SLO {
	switch structure {
	case "ht":
		return []timeseries.SLO{{Name: "ht-tail", Percentile: "p99.9", MaxCycles: 8192, TargetFrac: 0.99, MinOps: 8}}
	case "rbtree":
		return []timeseries.SLO{{Name: "rbtree-tail", Percentile: "p99.9", MaxCycles: 16384, TargetFrac: 0.99, MinOps: 8}}
	}
	return nil
}

// timelineStructures is the structure axis: the same two E23 used.
func timelineStructures() []struct {
	name string
	cfg  kvConfig
} {
	return []struct {
		name string
		cfg  kvConfig
	}{
		{"ht", kvConfig{
			keyRange:  4096,
			pctLookup: 50,
			memWords:  1 << 23,
			build:     hashtableKV(1 << 12),
		}},
		{"rbtree", kvConfig{
			keyRange:  2048,
			pctLookup: 90,
			memWords:  1 << 22,
			build:     rbtreeKV,
		}},
	}
}

// TimelineFigure is the `-exp timeline` experiment: structure × system at
// zipf 0.99 across the thread axis, each cell carrying its window series.
// The throughput table matches the tail experiment's zipf0.99 columns
// byte-for-byte (same cells, same seeds); the notes carry the detector
// findings and SLO verdicts at the top thread count.
func TimelineFigure(o Options) (*Figure, error) {
	o = o.Defaults()
	o.Latency = true
	width := o.timelineWidth()
	fig := &Figure{
		Title:  "Timeline: windowed timeseries, zipf0.99, HashTable 4096 keys 50% lookups + RB-tree 2048 keys 90% lookups",
		YLabel: "throughput (ops/usec), simulated; window series in notes/exports",
	}
	structures := timelineStructures()
	systems := tailSystems()
	var names []string
	var cells []runner.Cell[timelinePoint]
	for _, st := range structures {
		for _, sb := range systems {
			cfg := st.cfg
			cfg.keys = workload.Zipfian(cfg.keyRange, 0.99)
			name := st.name + "/" + sb.Name
			names = append(names, name)
			for _, th := range o.Threads {
				cfg, sb, th, name := cfg, sb, th, name
				sp := kvSpec(o, "timeline", cfg, name, th)
				// The window width shapes the payload, so it must key the
				// cache: a series recorded at one width never aliases another.
				sp.Params["timeline"] = "1"
				sp.Params["window"] = strconv.FormatInt(width, 10)
				cells = append(cells, runner.Cell[timelinePoint]{
					Spec: sp,
					Compute: func() (timelinePoint, error) {
						p, series, err := runKVSeries(o, name, cfg, sb, th, true, width)
						return timelinePoint{Point: p, Series: series}, err
					},
				})
			}
		}
	}
	pts, err := runner.RunCells(o.pool(), cells)
	if err != nil {
		return nil, err
	}
	nt := len(o.Threads)
	top := o.Threads[nt-1]
	for ci, name := range names {
		curve := Curve{Name: name}
		for t := 0; t < nt; t++ {
			curve.Points = append(curve.Points, pts[ci*nt+t].Point)
		}
		fig.Curves = append(fig.Curves, curve)
	}
	// Judge the top-thread-count run of every curve: pathology findings
	// first, then the structure's SLO verdicts. Everything derives from the
	// cached payloads, so notes are byte-stable across serial, parallel and
	// warm-cache executions.
	for ci, name := range names {
		structure := structures[ci/len(systems)].name
		series := pts[ci*nt+nt-1].Series
		findings := timeseries.Detect(series)
		if len(findings) == 0 {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s @%dT: no pathologies detected over %d windows",
				name, top, len(series.Windows)))
		}
		for _, f := range findings {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s @%dT: %s", name, top, f))
		}
		for _, res := range timeseries.EvaluateSLOs(series, timelineSLOs(structure)) {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s @%dT: SLO %s", name, top, res))
		}
	}
	// When a timeline sink is attached, deposit every cell's judged series
	// in submission order. Labels follow the trace sink's convention
	// (runKVSeries appends the system name to its label), so the figures
	// command can merge counter tracks into the matching trace process.
	if o.Timeline != nil {
		for ci, name := range names {
			structure := structures[ci/len(systems)].name
			system := systems[ci%len(systems)].Name
			for t := 0; t < nt; t++ {
				series := pts[ci*nt+t].Series
				o.Timeline.AddJudged(fmt.Sprintf("%s/%s@%dT", name, system, o.Threads[t]), series,
					timeseries.Detect(series), timeseries.EvaluateSLOs(series, timelineSLOs(structure)))
			}
		}
	}
	return fig, nil
}
