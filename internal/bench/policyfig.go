package bench

import (
	"fmt"

	"rocktm/internal/phtm"
	"rocktm/internal/policy"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
	"rocktm/internal/workload"
)

// The policy-ablation workload: the Figure 2(b) red-black tree (2048 keys,
// 96% reads), the paper's most retry-sensitive structure — transactions
// are deep enough to abort for capacity and TLB reasons, and the 4%
// update mix generates genuine coherence conflicts for the backoff and
// throttle stances to act on.
const (
	policyKeyRange  = 2048
	policyPctLookup = 96
	policyMemWords  = 1 << 22
)

// policyAblationPolicies lists the built-in policies in ablation order
// (the naive baseline first, then the paper heuristics, then the
// adaptive learner).
func policyAblationPolicies() []string { return []string{"naive", "paper", "adaptive"} }

// policyMachineCfg is machineCfg with a fault plan installed; the plan is
// part of the config, so the runner's cache digests distinguish profiles.
func policyMachineCfg(threads, memWords int, seed uint64, faults sim.FaultPlan) sim.Config {
	cfg := machineCfg(threads, memWords, seed)
	cfg.Faults = faults
	return cfg
}

// runPolicyCell measures one (policy, fault profile, threads) cell: PhTM
// over the SkySTM back end on the red-black-tree workload, with the named
// retry policy driving the hardware attempts and the named fault profile
// injecting adversarial aborts.
func runPolicyCell(o Options, polName, profile string, threads int) (Point, error) {
	cfg := policyMachineCfg(threads, policyMemWords, o.Seed, sim.FaultProfile(profile))
	m := sim.New(cfg)
	defer m.Recycle()
	st := rbtreeKV(m, policyKeyRange)
	pcfg := phtm.DefaultConfig()
	sys := phtm.New(m, sky.New(m), pcfg)
	sys.SetPolicy(policy.MustNew(polName, pcfg.Tuning()))
	wl := workload.MustCompile(workload.KVSpec(workload.Uniform(policyKeyRange), policyPctLookup))
	lat := o.latRecorder()
	tr := o.startTrace(m)
	rec := o.startWindows(m)
	m.Run(func(s *sim.Strand) {
		ses := st.NewSession(sys, s)
		d := wl.Driver(s, lat)
		if rec != nil {
			d.Observe(rec)
		}
		d.Run(o.OpsPerThread, func(_, op int, key uint64) {
			switch op {
			case workload.OpLookup:
				ses.Lookup(key)
			case workload.OpInsert:
				ses.Insert(key, 1)
			default:
				ses.Delete(key)
			}
		})
	})
	o.endTrace(tr, fmt.Sprintf("policy/%s-%s@%dT", polName, profile, threads))
	o.endWindows(rec, fmt.Sprintf("policy/%s-%s@%dT", polName, profile, threads))
	res := workload.NewResult(uint64(threads*o.OpsPerThread), m.ElapsedSeconds(), sys.Stats(), lat)
	return point(res, threads), nil
}

// PolicyFigure produces the policy × fault-profile ablation table: every
// built-in retry policy (naive, paper, adaptive) crossed with every named
// fault profile (none, interrupts, tlb, inval, evict, squeeze), each swept
// across the thread axis. One column per (policy, profile) pair.
//
// The interesting comparisons, and what Section 6.1 predicts:
//
//   - naive vs paper under "none": the paper heuristics' backoff defeats
//     requester-wins livelock that plain counted retries suffer at high
//     thread counts (Section 4).
//   - under "tlb" and "squeeze": capacity-flavoured aborts (ST, SIZ)
//     either stop recurring after warming retries (tlb: the failing
//     access re-establishes the mapping) or never stop (squeeze: the
//     queue really is too small); the adaptive policy should detect the
//     difference and cut the doomed retries the static policies burn.
//   - under "inval": injected COH dominance escalates the adaptive
//     policy's stance from Backoff to Throttle.
func PolicyFigure(o Options) (*Figure, error) {
	o = o.Defaults()
	fig := &Figure{
		Title:  "Policy ablation: retry policy x fault profile (PhTM, RB-tree 2048 keys 96% reads)",
		YLabel: "throughput (ops/usec), simulated",
	}
	profiles := sim.FaultProfileNames()
	var names []string
	var cells []pointCell
	for _, pol := range policyAblationPolicies() {
		for _, prof := range profiles {
			pol, prof := pol, prof
			names = append(names, pol+"/"+prof)
			for _, th := range o.Threads {
				th := th
				cells = append(cells, pointCell{
					Spec: o.spec("policy", pol+"/"+prof, th,
						policyMachineCfg(th, policyMemWords, o.Seed, sim.FaultProfile(prof)),
						map[string]string{
							"keyrange": itoa(policyKeyRange),
							"lookup":   itoa(policyPctLookup),
							"policy":   pol,
							"profile":  prof,
						}),
					Compute: func() (Point, error) { return runPolicyCell(o, pol, prof, th) },
				})
			}
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	// One annotation per policy at the highest thread count of the
	// no-fault baseline, so the table stays readable.
	for _, curve := range curves {
		for _, pol := range policyAblationPolicies() {
			if curve.Name == pol+"/none" {
				if last := curve.Points[len(curve.Points)-1]; last.Extra != "" {
					fig.Notes = append(fig.Notes, fmt.Sprintf("%s @%d threads: %s", curve.Name, last.Threads, last.Extra))
				}
			}
		}
	}
	return fig, nil
}
