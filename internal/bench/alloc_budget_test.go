package bench

import "testing"

// fig2aCellAllocBudget is the allocation budget for one BenchmarkFig2aCell
// iteration. The PR 8 hot-path round brought the cell from 7,616 allocs/op
// down to ~1,360 (the Memory backing pool recycles the words/lineMeta
// arrays, the dominant term; what remains is per-strand construction —
// caches, TLBs, coroutines — plus workload compilation and JSON digests).
// The budget pins that result with ~10% headroom: a change that quietly
// reintroduces per-operation or per-attempt allocation on the cell path
// fails here long before it is visible in wall-clock.
const fig2aCellAllocBudget = 1500

// TestFig2aCellAllocBudget runs the cell benchmark through the testing
// harness and fails if allocs/op regresses above the budget. It complements
// the strict alloc-free pins on the obs recorders (internal/obs): the cell
// necessarily allocates — it builds whole machines — so it gets a budget
// rather than a zero.
func TestFig2aCellAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budget needs full benchmark iterations")
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := Options{Threads: []int{4}, OpsPerThread: 300, Seed: 1}
			if _, err := Fig2a(o); err != nil {
				b.Fatal(err)
			}
		}
	})
	if res.N == 0 {
		t.Fatal("benchmark did not run")
	}
	if allocs := res.AllocsPerOp(); allocs > fig2aCellAllocBudget {
		t.Errorf("fig2a cell allocates %d allocs/op, budget is %d — a hot-path allocation crept back in",
			allocs, fig2aCellAllocBudget)
	}
}
