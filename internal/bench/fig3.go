package bench

import (
	"fmt"

	"rocktm/internal/core"
	"rocktm/internal/jcl"
	"rocktm/internal/jvm"
	"rocktm/internal/locktm"
	"rocktm/internal/sim"
	"rocktm/internal/tle"
	"rocktm/internal/vector"
	"rocktm/internal/workload"
)

// vectorSpec is the Figure 3(a) driver: the op rolls first, then the read
// index is drawn — unconditionally, exactly like the legacy loop, which
// consumed an index draw even for push/pop ops that ignore it. That is why
// none of the ops is NoKey.
func vectorSpec(initSize, ctrRange int) workload.Spec {
	return workload.Spec{
		Ops: []workload.Op{
			{Name: "push", Weight: 20},
			{Name: "pop", Weight: 20},
			{Name: "read", Weight: 60},
		},
		Roll:  100,
		Keys:  workload.Uniform(initSize - ctrRange), // always within the populated prefix
		Order: workload.OpThenKey,
	}
}

// Fig3a reconstructs Figure 3(a): TLE in C++ with an STL vector,
// initsize=100, ctr-range=40, increment:decrement:read = 20:20:60, using
// the deliberately simplistic fixed-count retry policy (20 tries, no CPS)
// against one-lock and reader-writer-lock baselines.
func Fig3a(o Options) (*Figure, error) {
	o = o.Defaults()
	const (
		initSize = 100
		ctrRange = 40
		retries  = 20
	)
	wl := workload.MustCompile(vectorSpec(initSize, ctrRange))
	systems := []SysBuilder{
		{"htm.oneLock", func(m *sim.Machine) core.System { return tleOverSpin(m, retries) }},
		{"noTM.oneLock", func(m *sim.Machine) core.System { return locktm.NewOneLock(m) }},
		{"htm.rwLock", func(m *sim.Machine) core.System { return tleOverRW(m, retries) }},
		{"noTM.rwLock", func(m *sim.Machine) core.System { return locktm.NewRW(m) }},
	}
	fig := &Figure{
		Title:  "Figure 3(a) STLVector initsize=100 ctr-range=40 inc:dec:read=20:20:60",
		YLabel: "throughput (ops/usec), simulated",
	}
	var names []string
	var cells []pointCell
	for _, sb := range systems {
		names = append(names, sb.Name)
		for _, th := range o.Threads {
			sb, th := sb, th
			cells = append(cells, pointCell{
				Spec: o.spec("fig3a", sb.Name, th, machineCfg(th, 1<<20, o.Seed),
					map[string]string{"initsize": itoa(initSize), "ctrrange": itoa(ctrRange), "retries": itoa(retries)}),
				Compute: func() (Point, error) {
					m := machineFor(th, 1<<20, o.Seed)
					defer m.Recycle()
					v := vector.New(m, initSize+ctrRange+64, initSize)
					sys := sb.Build(m)
					lat := o.latRecorder()
					m.Run(func(s *sim.Strand) {
						d := wl.Driver(s, lat)
						d.Run(o.OpsPerThread, func(i, op int, key uint64) {
							switch op {
							case 0:
								sys.Atomic(s, func(c core.Ctx) { v.PushBack(c, sim.Word(i)) })
							case 1:
								sys.Atomic(s, func(c core.Ctx) { v.PopBack(c) })
							default:
								sys.AtomicRO(s, func(c core.Ctx) { v.Read(c, int(key)) })
							}
						})
					})
					res := workload.NewResult(uint64(th*o.OpsPerThread), m.ElapsedSeconds(), sys.Stats(), lat)
					return point(res, th), nil
				},
			})
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	return fig, nil
}

// javaMix is a put:get:remove ratio in tenths, e.g. 2-6-2.
type javaMix struct {
	put, get, remove int
}

func (x javaMix) String() string { return fmt.Sprintf("%d:%d:%d", x.put, x.get, x.remove) }

// spec is the Java-table driver shape: key drawn first, then the
// put/get/remove roll out of 10.
func (x javaMix) spec(keyRange int) workload.Spec {
	return workload.Spec{
		Ops:  workload.TenthsMix(x.put, x.get),
		Roll: 10,
		Keys: workload.Uniform(keyRange),
	}
}

// Fig3b reconstructs Figure 3(b): TLE in Java with java.util.Hashtable
// (divide factored out of the hash), across operation mixes, TLE vs plain
// monitors.
func Fig3b(o Options) (*Figure, error) {
	o = o.Defaults()
	mixes := []javaMix{{0, 10, 0}, {1, 8, 1}, {2, 6, 2}, {4, 2, 4}}
	const keyRange = 4096
	fig := &Figure{
		Title:  "Figure 3(b) TLE with Hashtable in Java (put:get:remove mixes)",
		YLabel: "throughput (ops/usec), simulated",
	}
	var names []string
	var cells []pointCell
	for _, mix := range mixes {
		for _, elide := range []bool{false, true} {
			label := mix.String() + "-locks"
			if elide {
				label = mix.String() + "-TLE"
			}
			names = append(names, label)
			for _, th := range o.Threads {
				mix, elide, th := mix, elide, th
				cells = append(cells, pointCell{
					Spec: o.spec("fig3b", label, th, machineCfg(th, 1<<22, o.Seed),
						map[string]string{"mix": mix.String(), "elide": fmt.Sprint(elide), "keyrange": itoa(keyRange)}),
					Compute: func() (Point, error) {
						p, _ := runJavaTable(o, th, mix, elide, keyRange)
						return p, nil
					},
				})
			}
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	return fig, nil
}

func runJavaTable(o Options, threads int, mix javaMix, elide bool, keyRange int) (Point, *core.Stats) {
	m := machineFor(threads, 1<<22, o.Seed)
	defer m.Recycle()
	vm := jvm.New(m, tle.DefaultPolicy())
	vm.Elide = elide
	ht := jcl.NewHashtable(m, vm, 1<<13, keyRange+2*threads+64)
	ht.Prepopulate(m.Mem(), workload.PrepopHalf(keyRange), 1)
	wl := workload.MustCompile(mix.spec(keyRange))
	lat := o.latRecorder()
	m.Run(func(s *sim.Strand) {
		d := wl.Driver(s, lat)
		d.Run(o.OpsPerThread, func(_, op int, key uint64) {
			switch op {
			case workload.OpPut:
				ht.Put(s, key, 1)
			case workload.OpGet:
				ht.Get(s, key)
			default:
				ht.Remove(s, key)
			}
		})
	})
	res := workload.NewResult(uint64(threads*o.OpsPerThread), m.ElapsedSeconds(), vm.Stats(), lat)
	return point(res, threads), vm.Stats()
}

// getOnlySpec is the 100%-get driver: one op, no roll, one key draw per
// operation — one RandIntn per iteration, like the legacy loop.
func getOnlySpec(keyRange int) workload.Spec {
	return workload.Spec{
		Ops:  []workload.Op{{Name: "get"}},
		Keys: workload.Uniform(keyRange),
	}
}

// DivideHashDemo shows why the benchmark Hashtable factored the divide out
// of its hash function: with the divide left in, every elided transaction
// aborts with CPS=FP and TLE degenerates to locking.
func DivideHashDemo(o Options) (*Figure, error) {
	o = o.Defaults()
	fig := &Figure{
		Title:  "Section 7.2 (text): Hashtable divide instruction vs factored-out hash, TLE, 100% gets",
		YLabel: "throughput (ops/usec), simulated",
	}
	const keyRange = 4096
	wl := workload.MustCompile(getOnlySpec(keyRange))
	var names []string
	var cells []pointCell
	for _, divide := range []bool{false, true} {
		name := "hash-no-divide"
		if divide {
			name = "hash-with-divide"
		}
		names = append(names, name)
		for _, th := range o.Threads {
			divide, th := divide, th
			cells = append(cells, pointCell{
				Spec: o.spec("divide", name, th, machineCfg(th, 1<<22, o.Seed),
					map[string]string{"keyrange": itoa(keyRange)}),
				Compute: func() (Point, error) {
					m := machineFor(th, 1<<22, o.Seed)
					defer m.Recycle()
					vm := jvm.New(m, tle.DefaultPolicy())
					ht := jcl.NewHashtable(m, vm, 1<<13, keyRange+64)
					ht.DivideHash = divide
					ht.Prepopulate(m.Mem(), workload.PrepopHalf(keyRange), 1)
					lat := o.latRecorder()
					m.Run(func(s *sim.Strand) {
						d := wl.Driver(s, lat)
						d.Run(o.OpsPerThread, func(_, _ int, key uint64) {
							ht.Get(s, key)
						})
					})
					res := workload.NewResult(uint64(th*o.OpsPerThread), m.ElapsedSeconds(), vm.Stats(), lat)
					return point(res, th), nil
				},
			})
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	return fig, nil
}

// InlineDemo reconstructs the Section 7.2 HashMap anecdote: the run starts
// with the synchronized wrapper and HashMap.put inlined together; mid-run
// the JIT outlines put, the function call's save/restore aborts every
// elided transaction (CPS=INST), and throughput collapses toward the lock.
func InlineDemo(o Options) (*Figure, error) {
	o = o.Defaults()
	const keyRange = 4096
	mix := javaMix{2, 6, 2}
	wl := workload.MustCompile(mix.spec(keyRange))
	fig := &Figure{
		Title:  "Section 7.2 (text): HashMap JIT inlining vs outlined put, TLE, mix 2:6:2",
		YLabel: "throughput (ops/usec), simulated",
	}
	var names []string
	var cells []pointCell
	for _, outline := range []bool{false, true} {
		name := "put-inlined"
		if outline {
			name = "put-outlined-midrun"
		}
		names = append(names, name)
		for _, th := range o.Threads {
			outline, th := outline, th
			cells = append(cells, pointCell{
				Spec: o.spec("inline", name, th, machineCfg(th, 1<<22, o.Seed),
					map[string]string{"mix": mix.String(), "keyrange": itoa(keyRange)}),
				Compute: func() (Point, error) {
					m := machineFor(th, 1<<22, o.Seed)
					defer m.Recycle()
					vm := jvm.New(m, tle.DefaultPolicy())
					hm := jcl.NewHashMap(m, vm, 1<<13, keyRange+2*th+64)
					if outline {
						hm.PutSite.OutlineAfter = o.OpsPerThread * th / 4
					}
					hm.Prepopulate(m.Mem(), workload.PrepopHalf(keyRange), 1)
					lat := o.latRecorder()
					m.Run(func(s *sim.Strand) {
						d := wl.Driver(s, lat)
						d.Run(o.OpsPerThread, func(_, op int, key uint64) {
							switch op {
							case workload.OpPut:
								hm.Put(s, key, 1)
							case workload.OpGet:
								hm.Get(s, key)
							default:
								hm.Remove(s, key)
							}
						})
					})
					res := workload.NewResult(uint64(th*o.OpsPerThread), m.ElapsedSeconds(), vm.Stats(), lat)
					return point(res, th), nil
				},
			})
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	return fig, nil
}

// treeMapSpec is the TreeMap driver: key drawn first, then the roll out of
// 100 with put getting floor(pctWrite/2), remove the remainder of the write
// share (the legacy `r < pctWrite/2` / `r < pctWrite` thresholds), and get
// the rest.
func treeMapSpec(keys, pctWrite int) workload.Spec {
	put := pctWrite / 2
	return workload.Spec{
		Ops: []workload.Op{
			{Name: "put", Weight: put},
			{Name: "remove", Weight: pctWrite - put},
			{Name: "get", Weight: 100 - pctWrite},
		},
		Roll: 100,
		Keys: workload.Uniform(keys),
	}
}

// TreeMapDemo reconstructs the Section 7.2 TreeMap observation: good TLE
// results for small, read-only trees; degradation with size and mutation.
func TreeMapDemo(o Options) (*Figure, error) {
	o = o.Defaults()
	type scenario struct {
		name     string
		keys     int
		pctWrite int
	}
	scenarios := []scenario{
		{"small-readonly", 128, 0},
		{"large-mutating", 4096, 20},
	}
	fig := &Figure{
		Title:  "Section 7.2 (text): TreeMap under TLE vs locks",
		YLabel: "throughput (ops/usec), simulated",
	}
	var names []string
	var cells []pointCell
	for _, sc := range scenarios {
		for _, elide := range []bool{true, false} {
			name := sc.name + "-locks"
			if elide {
				name = sc.name + "-TLE"
			}
			names = append(names, name)
			for _, th := range o.Threads {
				sc, elide, th := sc, elide, th
				wl := workload.MustCompile(treeMapSpec(sc.keys, sc.pctWrite))
				cells = append(cells, pointCell{
					Spec: o.spec("treemap", name, th, machineCfg(th, 1<<22, o.Seed),
						map[string]string{"keys": itoa(sc.keys), "write": itoa(sc.pctWrite)}),
					Compute: func() (Point, error) {
						m := machineFor(th, 1<<22, o.Seed)
						defer m.Recycle()
						vm := jvm.New(m, tle.DefaultPolicy())
						vm.Elide = elide
						tm := jcl.NewTreeMap(m, vm, sc.keys+2*th+64)
						tm.Prepopulate(m.Mem(), workload.PrepopHalf(sc.keys), 1)
						lat := o.latRecorder()
						m.Run(func(s *sim.Strand) {
							d := wl.Driver(s, lat)
							d.Run(o.OpsPerThread, func(_, op int, key uint64) {
								switch op {
								case 0:
									tm.Put(s, key, 1)
								case 1:
									tm.Remove(s, key)
								default:
									tm.Get(s, key)
								}
							})
						})
						res := workload.NewResult(uint64(th*o.OpsPerThread), m.ElapsedSeconds(), vm.Stats(), lat)
						return point(res, th), nil
					},
				})
			}
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	return fig, nil
}
