package bench

import (
	"fmt"

	"rocktm/internal/core"
	"rocktm/internal/jcl"
	"rocktm/internal/jvm"
	"rocktm/internal/locktm"
	"rocktm/internal/sim"
	"rocktm/internal/tle"
	"rocktm/internal/vector"
)

// Fig3a reconstructs Figure 3(a): TLE in C++ with an STL vector,
// initsize=100, ctr-range=40, increment:decrement:read = 20:20:60, using
// the deliberately simplistic fixed-count retry policy (20 tries, no CPS)
// against one-lock and reader-writer-lock baselines.
func Fig3a(o Options) (*Figure, error) {
	o = o.Defaults()
	const (
		initSize = 100
		ctrRange = 40
		retries  = 20
	)
	systems := []SysBuilder{
		{"htm.oneLock", func(m *sim.Machine) core.System { return tleOverSpin(m, retries) }},
		{"noTM.oneLock", func(m *sim.Machine) core.System { return locktm.NewOneLock(m) }},
		{"htm.rwLock", func(m *sim.Machine) core.System { return tleOverRW(m, retries) }},
		{"noTM.rwLock", func(m *sim.Machine) core.System { return locktm.NewRW(m) }},
	}
	fig := &Figure{
		Title:  "Figure 3(a) STLVector initsize=100 ctr-range=40 inc:dec:read=20:20:60",
		YLabel: "throughput (ops/usec), simulated",
	}
	var names []string
	var cells []pointCell
	for _, sb := range systems {
		names = append(names, sb.Name)
		for _, th := range o.Threads {
			sb, th := sb, th
			cells = append(cells, pointCell{
				Spec: o.spec("fig3a", sb.Name, th, machineCfg(th, 1<<20, o.Seed),
					map[string]string{"initsize": itoa(initSize), "ctrrange": itoa(ctrRange), "retries": itoa(retries)}),
				Compute: func() (Point, error) {
					m := machineFor(th, 1<<20, o.Seed)
					v := vector.New(m, initSize+ctrRange+64, initSize)
					sys := sb.Build(m)
					m.Run(func(s *sim.Strand) {
						for i := 0; i < o.OpsPerThread; i++ {
							r := s.RandIntn(100)
							idx := s.RandIntn(initSize - ctrRange) // always within the populated prefix
							switch {
							case r < 20:
								sys.Atomic(s, func(c core.Ctx) { v.PushBack(c, sim.Word(i)) })
							case r < 40:
								sys.Atomic(s, func(c core.Ctx) { v.PopBack(c) })
							default:
								sys.AtomicRO(s, func(c core.Ctx) { v.Read(c, idx) })
							}
						}
					})
					res := runResult{ops: uint64(th * o.OpsPerThread), seconds: m.ElapsedSeconds(), stats: sys.Stats()}
					return Point{Threads: th, OpsPerUsec: res.throughput(), Extra: summarizeStats(res.stats)}, nil
				},
			})
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	return fig, nil
}

// javaMix is a put:get:remove ratio in tenths, e.g. 2-6-2.
type javaMix struct {
	put, get, remove int
}

func (x javaMix) String() string { return fmt.Sprintf("%d:%d:%d", x.put, x.get, x.remove) }

// Fig3b reconstructs Figure 3(b): TLE in Java with java.util.Hashtable
// (divide factored out of the hash), across operation mixes, TLE vs plain
// monitors.
func Fig3b(o Options) (*Figure, error) {
	o = o.Defaults()
	mixes := []javaMix{{0, 10, 0}, {1, 8, 1}, {2, 6, 2}, {4, 2, 4}}
	const keyRange = 4096
	fig := &Figure{
		Title:  "Figure 3(b) TLE with Hashtable in Java (put:get:remove mixes)",
		YLabel: "throughput (ops/usec), simulated",
	}
	var names []string
	var cells []pointCell
	for _, mix := range mixes {
		for _, elide := range []bool{false, true} {
			label := mix.String() + "-locks"
			if elide {
				label = mix.String() + "-TLE"
			}
			names = append(names, label)
			for _, th := range o.Threads {
				mix, elide, th := mix, elide, th
				cells = append(cells, pointCell{
					Spec: o.spec("fig3b", label, th, machineCfg(th, 1<<22, o.Seed),
						map[string]string{"mix": mix.String(), "elide": fmt.Sprint(elide), "keyrange": itoa(keyRange)}),
					Compute: func() (Point, error) {
						p, _ := runJavaTable(o, th, mix, elide, keyRange)
						return p, nil
					},
				})
			}
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	return fig, nil
}

func runJavaTable(o Options, threads int, mix javaMix, elide bool, keyRange int) (Point, *core.Stats) {
	m := machineFor(threads, 1<<22, o.Seed)
	vm := jvm.New(m, tle.DefaultPolicy())
	vm.Elide = elide
	ht := jcl.NewHashtable(m, vm, 1<<13, keyRange+2*threads+64)
	var keys []uint64
	for k := 0; k < keyRange; k += 2 {
		keys = append(keys, uint64(k))
	}
	ht.Prepopulate(m.Mem(), keys, 1)
	m.Run(func(s *sim.Strand) {
		for i := 0; i < o.OpsPerThread; i++ {
			key := uint64(s.RandIntn(keyRange))
			r := s.RandIntn(10)
			switch {
			case r < mix.put:
				ht.Put(s, key, 1)
			case r < mix.put+mix.get:
				ht.Get(s, key)
			default:
				ht.Remove(s, key)
			}
		}
	})
	res := runResult{ops: uint64(threads * o.OpsPerThread), seconds: m.ElapsedSeconds(), stats: vm.Stats()}
	return Point{Threads: threads, OpsPerUsec: res.throughput(), Extra: summarizeStats(res.stats)}, vm.Stats()
}

// DivideHashDemo shows why the benchmark Hashtable factored the divide out
// of its hash function: with the divide left in, every elided transaction
// aborts with CPS=FP and TLE degenerates to locking.
func DivideHashDemo(o Options) (*Figure, error) {
	o = o.Defaults()
	fig := &Figure{
		Title:  "Section 7.2 (text): Hashtable divide instruction vs factored-out hash, TLE, 100% gets",
		YLabel: "throughput (ops/usec), simulated",
	}
	const keyRange = 4096
	var names []string
	var cells []pointCell
	for _, divide := range []bool{false, true} {
		name := "hash-no-divide"
		if divide {
			name = "hash-with-divide"
		}
		names = append(names, name)
		for _, th := range o.Threads {
			divide, th := divide, th
			cells = append(cells, pointCell{
				Spec: o.spec("divide", name, th, machineCfg(th, 1<<22, o.Seed),
					map[string]string{"keyrange": itoa(keyRange)}),
				Compute: func() (Point, error) {
					m := machineFor(th, 1<<22, o.Seed)
					vm := jvm.New(m, tle.DefaultPolicy())
					ht := jcl.NewHashtable(m, vm, 1<<13, keyRange+64)
					ht.DivideHash = divide
					var keys []uint64
					for k := 0; k < keyRange; k += 2 {
						keys = append(keys, uint64(k))
					}
					ht.Prepopulate(m.Mem(), keys, 1)
					m.Run(func(s *sim.Strand) {
						for i := 0; i < o.OpsPerThread; i++ {
							ht.Get(s, uint64(s.RandIntn(keyRange)))
						}
					})
					res := runResult{ops: uint64(th * o.OpsPerThread), seconds: m.ElapsedSeconds(), stats: vm.Stats()}
					return Point{Threads: th, OpsPerUsec: res.throughput(), Extra: summarizeStats(res.stats)}, nil
				},
			})
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	return fig, nil
}

// InlineDemo reconstructs the Section 7.2 HashMap anecdote: the run starts
// with the synchronized wrapper and HashMap.put inlined together; mid-run
// the JIT outlines put, the function call's save/restore aborts every
// elided transaction (CPS=INST), and throughput collapses toward the lock.
func InlineDemo(o Options) (*Figure, error) {
	o = o.Defaults()
	const keyRange = 4096
	mix := javaMix{2, 6, 2}
	fig := &Figure{
		Title:  "Section 7.2 (text): HashMap JIT inlining vs outlined put, TLE, mix 2:6:2",
		YLabel: "throughput (ops/usec), simulated",
	}
	var names []string
	var cells []pointCell
	for _, outline := range []bool{false, true} {
		name := "put-inlined"
		if outline {
			name = "put-outlined-midrun"
		}
		names = append(names, name)
		for _, th := range o.Threads {
			outline, th := outline, th
			cells = append(cells, pointCell{
				Spec: o.spec("inline", name, th, machineCfg(th, 1<<22, o.Seed),
					map[string]string{"mix": mix.String(), "keyrange": itoa(keyRange)}),
				Compute: func() (Point, error) {
					m := machineFor(th, 1<<22, o.Seed)
					vm := jvm.New(m, tle.DefaultPolicy())
					hm := jcl.NewHashMap(m, vm, 1<<13, keyRange+2*th+64)
					if outline {
						hm.PutSite.OutlineAfter = o.OpsPerThread * th / 4
					}
					var keys []uint64
					for k := 0; k < keyRange; k += 2 {
						keys = append(keys, uint64(k))
					}
					hm.Prepopulate(m.Mem(), keys, 1)
					m.Run(func(s *sim.Strand) {
						for i := 0; i < o.OpsPerThread; i++ {
							key := uint64(s.RandIntn(keyRange))
							r := s.RandIntn(10)
							switch {
							case r < mix.put:
								hm.Put(s, key, 1)
							case r < mix.put+mix.get:
								hm.Get(s, key)
							default:
								hm.Remove(s, key)
							}
						}
					})
					res := runResult{ops: uint64(th * o.OpsPerThread), seconds: m.ElapsedSeconds(), stats: vm.Stats()}
					return Point{Threads: th, OpsPerUsec: res.throughput(), Extra: summarizeStats(res.stats)}, nil
				},
			})
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	return fig, nil
}

// TreeMapDemo reconstructs the Section 7.2 TreeMap observation: good TLE
// results for small, read-only trees; degradation with size and mutation.
func TreeMapDemo(o Options) (*Figure, error) {
	o = o.Defaults()
	type scenario struct {
		name     string
		keys     int
		pctWrite int
	}
	scenarios := []scenario{
		{"small-readonly", 128, 0},
		{"large-mutating", 4096, 20},
	}
	fig := &Figure{
		Title:  "Section 7.2 (text): TreeMap under TLE vs locks",
		YLabel: "throughput (ops/usec), simulated",
	}
	var names []string
	var cells []pointCell
	for _, sc := range scenarios {
		for _, elide := range []bool{true, false} {
			name := sc.name + "-locks"
			if elide {
				name = sc.name + "-TLE"
			}
			names = append(names, name)
			for _, th := range o.Threads {
				sc, elide, th := sc, elide, th
				cells = append(cells, pointCell{
					Spec: o.spec("treemap", name, th, machineCfg(th, 1<<22, o.Seed),
						map[string]string{"keys": itoa(sc.keys), "write": itoa(sc.pctWrite)}),
					Compute: func() (Point, error) {
						m := machineFor(th, 1<<22, o.Seed)
						vm := jvm.New(m, tle.DefaultPolicy())
						vm.Elide = elide
						tm := jcl.NewTreeMap(m, vm, sc.keys+2*th+64)
						var keys []uint64
						for k := 0; k < sc.keys; k += 2 {
							keys = append(keys, uint64(k))
						}
						tm.Prepopulate(m.Mem(), keys, 1)
						m.Run(func(s *sim.Strand) {
							for i := 0; i < o.OpsPerThread; i++ {
								key := uint64(s.RandIntn(sc.keys))
								r := s.RandIntn(100)
								switch {
								case r < sc.pctWrite/2:
									tm.Put(s, key, 1)
								case r < sc.pctWrite:
									tm.Remove(s, key)
								default:
									tm.Get(s, key)
								}
							}
						})
						res := runResult{ops: uint64(th * o.OpsPerThread), seconds: m.ElapsedSeconds(), stats: vm.Stats()}
						return Point{Threads: th, OpsPerUsec: res.throughput(), Extra: summarizeStats(res.stats)}, nil
					},
				})
			}
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	return fig, nil
}
