package bench

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"testing"
)

// Figure-level cycle identity: the rendered bytes (table + CSV) of a
// fig2a cell matrix, the Table-4-style abort-attribution report and a
// small Figure-4 MSF sweep are pinned against the pre-optimization
// simulator. Together with internal/sim's TestGoldenCycleIdentity this
// guarantees PR 3's hot-path work changed no figure output by even one
// byte. Regenerate (only for an intended modelling change) with:
//
//	BENCH_GOLDEN_REGEN=1 go test ./internal/bench -run TestGoldenFigureBytes
var goldenFigures = []struct {
	name   string
	render func() ([]byte, error)
	digest string
}{
	{
		name: "fig2a",
		render: func() ([]byte, error) {
			o := Options{Threads: []int{1, 2, 4, 8}, OpsPerThread: 300, Seed: 1}
			f, err := Fig2a(o)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			f.Render(&buf)
			f.CSV(&buf)
			return buf.Bytes(), nil
		},
		digest: "4e173ac43af293cdf96467191d33efa7",
	},
	{
		name: "attrib",
		render: func() ([]byte, error) {
			o := Options{Threads: []int{1, 2, 4, 8}, OpsPerThread: 300, Seed: 1}
			r, err := AttributionReport(o)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			r.Render(&buf)
			r.CSV(&buf)
			return buf.Bytes(), nil
		},
		digest: "d58d233434a00d471aa7fccef7e07c16",
	},
	{
		name: "fig4-msf",
		render: func() ([]byte, error) {
			mo := MSFOptions{Width: 16, Height: 16, Threads: []int{1, 2}, Seed: 1}
			f, err := Fig4(mo)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			f.Render(&buf)
			f.CSV(&buf)
			return buf.Bytes(), nil
		},
		digest: "2bad19ae47781ac3fa00df620f477234",
	},
	{
		// The tail-latency experiment's full rendered output — throughput
		// plus the p50/p99.9 tables, the four-percentile CSV columns and
		// the skew-inflation notes — pinned end to end: any drift in the
		// zipfian generator, the latency histogram's bucketing or the
		// driver's RNG sequencing shows up here.
		name: "tail",
		render: func() ([]byte, error) {
			o := Options{Threads: []int{1, 2}, OpsPerThread: 200, Seed: 1}
			f, err := TailFigure(o)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			f.Render(&buf)
			f.CSV(&buf)
			return buf.Bytes(), nil
		},
		digest: "b27cc7ec29aab6888fd6311100803969",
	},
}

func TestGoldenFigureBytes(t *testing.T) {
	regen := os.Getenv("BENCH_GOLDEN_REGEN") != ""
	for _, g := range goldenFigures {
		out, err := g.render()
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		sum := sha256.Sum256(out)
		digest := hex.EncodeToString(sum[:16])
		if regen {
			fmt.Printf("\t%s: digest: %q,\n", g.name, digest)
			continue
		}
		if digest != g.digest {
			t.Errorf("%s: rendered bytes changed: digest %s, pinned %s\n--- got output ---\n%s",
				g.name, digest, g.digest, out)
		}
	}
	if regen {
		t.Fatal("BENCH_GOLDEN_REGEN set: digests printed above; paste and unset")
	}
}
