package bench

import (
	"bytes"
	"strings"
	"testing"
)

func tinyOptions() Options {
	return Options{Threads: []int{1, 2}, OpsPerThread: 120, Seed: 1}
}

// TestFiguresRenderAndCarryData smoke-tests each experiment driver at tiny
// scale: it must produce the expected curves with nonzero throughput and
// render without panicking.
func TestFiguresRenderAndCarryData(t *testing.T) {
	o := tinyOptions()
	cases := []struct {
		name   string
		run    func(Options) (*Figure, error)
		curves int
	}{
		{"counter", CounterFigure, 4},
		{"dcas", DCASFigure, 4},
		{"fig1a", Fig1a, 6},
		{"fig2a", Fig2a, 6},
		{"fig3a", Fig3a, 4},
		{"divide", DivideHashDemo, 2},
		{"volano", VolanoFigure, 3},
		{"ablate-throttle", AblationThrottle, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			fig, err := tc.run(o)
			if err != nil {
				t.Fatal(err)
			}
			if len(fig.Curves) != tc.curves {
				t.Fatalf("%d curves, want %d", len(fig.Curves), tc.curves)
			}
			for _, c := range fig.Curves {
				if len(c.Points) != len(o.Threads) {
					t.Fatalf("curve %s has %d points", c.Name, len(c.Points))
				}
				for _, p := range c.Points {
					if p.OpsPerUsec <= 0 {
						t.Fatalf("curve %s: nonpositive throughput at %d threads", c.Name, p.Threads)
					}
				}
			}
			var buf bytes.Buffer
			fig.Render(&buf)
			out := buf.String()
			if !strings.Contains(out, fig.Title) || !strings.Contains(out, "threads") {
				t.Fatalf("render missing header:\n%s", out)
			}
			buf.Reset()
			fig.CSV(&buf)
			if lines := strings.Count(buf.String(), "\n"); lines != tc.curves*len(o.Threads) {
				t.Fatalf("CSV rows = %d, want %d", lines, tc.curves*len(o.Threads))
			}
		})
	}
}

// TestFigureValueAt exercises the lookup helper used by assertions.
func TestFigureValueAt(t *testing.T) {
	fig := &Figure{Curves: []Curve{{Name: "x", Points: []Point{{Threads: 4, OpsPerUsec: 1.5}}}}}
	if v, ok := fig.ValueAt("x", 4); !ok || v != 1.5 {
		t.Fatalf("ValueAt = (%v,%v)", v, ok)
	}
	if _, ok := fig.ValueAt("x", 8); ok {
		t.Fatal("found missing thread count")
	}
	if _, ok := fig.ValueAt("y", 4); ok {
		t.Fatal("found missing curve")
	}
}

// TestQualitativeClaims asserts the headline shape results at small scale:
// PhTM beats the single lock at 8 threads on the hash table, and TLE beats
// plain monitors on the Java Hashtable.
func TestQualitativeClaims(t *testing.T) {
	o := Options{Threads: []int{8}, OpsPerThread: 600, Seed: 1}
	fig, err := Fig1a(o)
	if err != nil {
		t.Fatal(err)
	}
	phtm, _ := fig.ValueAt("phtm", 8)
	lock, _ := fig.ValueAt("one-lock", 8)
	if phtm < 2*lock {
		t.Errorf("fig1a @8 threads: phtm %.1f not ≫ one-lock %.1f", phtm, lock)
	}
	fig3b, err := Fig3b(o)
	if err != nil {
		t.Fatal(err)
	}
	tleV, _ := fig3b.ValueAt("2:6:2-TLE", 8)
	lockV, _ := fig3b.ValueAt("2:6:2-locks", 8)
	if tleV < 1.5*lockV {
		t.Errorf("fig3b @8 threads: TLE %.1f not ≫ locks %.1f", tleV, lockV)
	}
}

// TestMSFVariantRunsAndValidates runs one tiny MSF cell end to end (the
// runner validates against Kruskal internally).
func TestMSFVariantRunsAndValidates(t *testing.T) {
	o := MSFOptions{Width: 16, Height: 16, Threads: []int{2}, Seed: 3}
	secs, err := RunMSFVariant(o, "msf-opt-le", 2)
	if err != nil {
		t.Fatal(err)
	}
	if secs <= 0 {
		t.Fatal("nonpositive running time")
	}
	if _, err := RunMSFVariant(o, "nope", 2); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

// TestProfileReportLines sanity-checks the Section 6.1 report text.
func TestProfileReportLines(t *testing.T) {
	lines := ProfileReport(150, []int{256})
	if len(lines) < 5 {
		t.Fatalf("only %d lines", len(lines))
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"failed to software", "read-set lines", "stack writes: 0"} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
