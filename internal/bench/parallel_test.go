package bench

import (
	"bytes"
	"testing"

	"rocktm/internal/runner"
)

// renderAll renders a figure every way the CLI can emit it.
func renderAll(t *testing.T, fig *Figure) []byte {
	t.Helper()
	var buf bytes.Buffer
	fig.Render(&buf)
	fig.CSV(&buf)
	if err := fig.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Determinism regression: a parallel sweep (8 workers) must produce
// byte-identical Figure/CSV/JSON output to the serial one, and a
// warm-cache rerun must reproduce the exact same bytes again.
func TestParallelMatchesSerialByteForByte(t *testing.T) {
	o := Options{Threads: []int{1, 2, 3}, OpsPerThread: 80, Seed: 1}

	serialFig, err := Fig2a(o) // o.Runner == nil: inline serial path
	if err != nil {
		t.Fatal(err)
	}
	serial := renderAll(t, serialFig)

	cache, err := runner.OpenCache(t.TempDir(), runner.CacheVersion)
	if err != nil {
		t.Fatal(err)
	}
	po := o
	po.Runner = &runner.Pool{Workers: 8, Cache: cache, Costs: runner.NewCostModel()}
	parallelFig, err := Fig2a(po)
	if err != nil {
		t.Fatal(err)
	}
	if parallel := renderAll(t, parallelFig); !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}

	cachedFig, err := Fig2a(po) // every cell now hits the cache
	if err != nil {
		t.Fatal(err)
	}
	if cached := renderAll(t, cachedFig); !bytes.Equal(serial, cached) {
		t.Fatalf("warm-cache output differs from serial:\n--- serial ---\n%s\n--- cached ---\n%s", serial, cached)
	}
	for _, w := range cache.Warnings() {
		t.Errorf("unexpected cache warning: %s", w)
	}
}

// The attribution report takes the same parallel path; its rows (uint64
// counters, float rates, CPS histograms) must survive the cache's JSON
// round trip bit-for-bit too.
func TestAttribParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("attrib cells trace every event; skip in -short")
	}
	o := Options{Threads: []int{1, 2}, OpsPerThread: 60, Seed: 1}
	serialRep, err := AttributionReport(o)
	if err != nil {
		t.Fatal(err)
	}
	var serial bytes.Buffer
	serialRep.Render(&serial)
	serialRep.CSV(&serial)

	cache, err := runner.OpenCache(t.TempDir(), runner.CacheVersion)
	if err != nil {
		t.Fatal(err)
	}
	po := o
	po.Runner = &runner.Pool{Workers: 4, Cache: cache}
	for pass, label := range []string{"parallel", "warm-cache"} {
		rep, err := AttributionReport(po)
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		rep.Render(&got)
		rep.CSV(&got)
		if !bytes.Equal(serial.Bytes(), got.Bytes()) {
			t.Fatalf("pass %d (%s) attrib output differs from serial", pass, label)
		}
	}
}

// MSF figures route through the same orchestrator via MSFOptions.Runner.
func TestMSFSweepParallelMatchesSerial(t *testing.T) {
	mo := MSFOptions{Width: 12, Height: 12, Threads: []int{1, 2}, Seed: 1}
	serialFig, err := MSFSweepFigure(mo, []string{"msf-opt-le", "msf-seq"})
	if err != nil {
		t.Fatal(err)
	}
	serial := renderAll(t, serialFig)

	cache, err := runner.OpenCache(t.TempDir(), runner.CacheVersion)
	if err != nil {
		t.Fatal(err)
	}
	mo.Runner = &runner.Pool{Workers: 4, Cache: cache}
	for pass := 0; pass < 2; pass++ { // cold parallel, then warm cache
		fig, err := MSFSweepFigure(mo, []string{"msf-opt-le", "msf-seq"})
		if err != nil {
			t.Fatal(err)
		}
		if got := renderAll(t, fig); !bytes.Equal(serial, got) {
			t.Fatalf("pass %d MSF output differs from serial", pass)
		}
	}
}

// A failing cell must not poison its neighbours: the pool completes the
// sweep, caches the successes, and surfaces the failure.
func TestPoolIsolatesFailingCellAcrossBench(t *testing.T) {
	cells := []runner.Cell[Point]{
		{Spec: runner.Spec{Experiment: "t", System: "ok1", Threads: 1},
			Compute: func() (Point, error) { return Point{Threads: 1, OpsPerUsec: 1}, nil }},
		{Spec: runner.Spec{Experiment: "t", System: "boom", Threads: 2},
			Compute: func() (Point, error) { panic("cell wedged") }},
		{Spec: runner.Spec{Experiment: "t", System: "ok2", Threads: 3},
			Compute: func() (Point, error) { return Point{Threads: 3, OpsPerUsec: 3}, nil }},
	}
	_, err := runner.RunCells(&runner.Pool{Workers: 2}, cells)
	if err == nil {
		t.Fatal("expected the wedged cell's error to surface")
	}
}
