package bench

import (
	"bytes"
	"strings"
	"testing"

	"rocktm/internal/runner"
)

// The fleet figure rides the runner like every other experiment: the
// per-shard series and 2PC counts live inside the cell payload, so
// serial, 8-worker parallel and warm-cache executions must render
// byte-identically — including the SLO verdicts, imbalance ratios and
// commit/abort counts in the notes.
func TestFleetParallelMatchesSerialByteForByte(t *testing.T) {
	o := Options{OpsPerThread: 40, Seed: 1}

	serialFig, err := FleetFigure(o) // o.Runner == nil: inline serial path
	if err != nil {
		t.Fatal(err)
	}
	serial := renderAll(t, serialFig)

	cache, err := runner.OpenCache(t.TempDir(), runner.CacheVersion)
	if err != nil {
		t.Fatal(err)
	}
	po := o
	po.Runner = &runner.Pool{Workers: 8, Cache: cache, Costs: runner.NewCostModel()}
	for pass, label := range []string{"parallel", "warm-cache"} {
		fig, err := FleetFigure(po)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderAll(t, fig); !bytes.Equal(serial, got) {
			t.Fatalf("pass %d (%s) fleet output differs from serial:\n--- serial ---\n%s\n--- got ---\n%s",
				pass, label, serial, got)
		}
	}
	for _, w := range cache.Warnings() {
		t.Errorf("unexpected cache warning: %s", w)
	}
}

// Every curve is judged at the top shard count: SLO pass counts with
// burn rates, hot-shard imbalance, and 2PC outcome counts; the latency
// tables are always present (Latency is forced on).
func TestFleetFigureJudgesEveryCurve(t *testing.T) {
	o := Options{OpsPerThread: 40, Seed: 1}
	fig, err := FleetFigure(o)
	if err != nil {
		t.Fatal(err)
	}
	// 4 systems x 3 scenarios x 2 cross-shard fractions.
	if len(fig.Curves) != 24 {
		t.Fatalf("got %d curves, want 24", len(fig.Curves))
	}
	top := fleetShardAxis()[len(fleetShardAxis())-1]
	notes := strings.Join(fig.Notes, "\n")
	for _, c := range fig.Curves {
		if !strings.Contains(notes, c.Name+" @") {
			t.Errorf("curve %s has no note at the top shard count", c.Name)
		}
		if len(c.Points) != len(fleetShardAxis()) {
			t.Errorf("curve %s has %d points, want %d", c.Name, len(c.Points), len(fleetShardAxis()))
		}
		for _, p := range c.Points {
			if p.Lat == nil {
				t.Errorf("curve %s point @%dS carries no latency digest", c.Name, p.Threads)
			}
		}
	}
	for _, want := range []string{"SLO", "imbalance", "2pc", "burn"} {
		if !strings.Contains(notes, want) {
			t.Errorf("notes missing %q:\n%s", want, notes)
		}
	}
	// The cross-shard curves must actually run transactions through 2PC:
	// at the top shard count at least one +x10 note reports a nonzero
	// commit count.
	if !strings.Contains(notes, "+x10 @") {
		t.Errorf("no cross-shard curve notes at @%dS:\n%s", top, notes)
	}
	if !fig.hasLatency() {
		t.Error("fleet figure must always carry latency digests")
	}
}
