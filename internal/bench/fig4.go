package bench

import (
	"fmt"

	"rocktm/internal/core"
	"rocktm/internal/graphgen"
	"rocktm/internal/locktm"
	"rocktm/internal/msf"
	"rocktm/internal/profile"
	"rocktm/internal/runner"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
	"rocktm/internal/tle"
)

// MSFOptions sizes the Figure 4 experiment. The paper's Eastern-USA
// roadmap has 3,598,623 nodes; the default here is a synthetic road grid
// that runs in minutes, and Width/Height scale it up to taste.
type MSFOptions struct {
	Width, Height int
	Extra         float64
	Seed          uint64
	Threads       []int
	Mode          sim.Mode

	// Runner, when non-nil, executes MSF cells through the host-parallel
	// orchestrator (worker pool + result cache), exactly like
	// Options.Runner does for the other figures.
	Runner *runner.Pool
}

// Defaults fills unset fields.
func (o MSFOptions) Defaults() MSFOptions {
	if o.Width == 0 {
		o.Width = 64
	}
	if o.Height == 0 {
		o.Height = 64
	}
	if o.Extra == 0 {
		o.Extra = 0.05
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Threads) == 0 {
		o.Threads = DefaultThreads
	}
	return o
}

// spec canonically identifies one MSF cell for the runner's scheduler
// and cache. The machine's memory size is derived from the graph (too
// expensive to regenerate just for a key), so the digest is taken over
// the pre-sizing configuration; the graph parameters that drive the
// sizing are all in Params, and sizing-code changes are covered by the
// cache-version salt like any other code change.
func (o MSFOptions) spec(experiment, variant string, threads int) runner.Spec {
	cfg := sim.DefaultConfig(threads)
	cfg.Seed = o.Seed
	cfg.Mode = o.Mode
	cfg.MaxCycles = 1 << 48
	return runner.Spec{
		Experiment: experiment,
		System:     variant,
		Threads:    threads,
		Seed:       o.Seed,
		SimDigest:  cfg.Digest(),
		Params: map[string]string{
			"width":  itoa(o.Width),
			"height": itoa(o.Height),
			"extra":  fmt.Sprintf("%g", o.Extra),
			"mode":   itoa(int(o.Mode)),
		},
	}
}

type msfVariant struct {
	name    string
	variant msf.Variant
	build   func(m *sim.Machine) core.System
	seqOnly bool
}

func msfVariants() []msfVariant {
	newSky := func(m *sim.Machine) core.System { return sky.New(m) }
	newLock := func(m *sim.Machine) core.System { return locktm.NewOneLock(m) }
	newLE := func(m *sim.Machine) core.System {
		return tle.New("le", tle.SpinAdapter{L: locktm.NewSpinLock(m.Mem())}, tle.DefaultPolicy())
	}
	return []msfVariant{
		{"msf-orig-sky", msf.Orig, newSky, false},
		{"msf-opt-sky", msf.Opt, newSky, false},
		{"msf-orig-lock", msf.Orig, newLock, false},
		{"msf-opt-lock", msf.Opt, newLock, false},
		{"msf-orig-le", msf.Orig, newLE, false},
		{"msf-opt-le", msf.Opt, newLE, false},
		{"msf-seq", msf.Orig, func(m *sim.Machine) core.System { return locktm.NewSeq() }, true},
	}
}

// MSFVariantNames lists the seven variant names in the paper's order.
func MSFVariantNames() []string {
	var out []string
	for _, v := range msfVariants() {
		out = append(out, v.name)
	}
	return out
}

// msfMemWords sizes simulated memory for a graph.
func msfMemWords(n, mEdges int) int {
	need := 4*n + 8*(2*mEdges+2*n) + 8*n + 1<<20
	words := 1 << 22
	for words < need {
		words <<= 1
	}
	return words
}

// RunMSF measures one variant at one thread count, returning the running
// time in simulated seconds plus fallback statistics.
func RunMSF(o MSFOptions, v msfVariant, threads int) (float64, string, error) {
	cfg := sim.DefaultConfig(threads)
	n, edges := graphgen.RoadmapEdges(o.Width, o.Height, o.Extra, 1<<20, o.Seed)
	cfg.MemWords = msfMemWords(n, len(edges))
	cfg.Seed = o.Seed
	cfg.Mode = o.Mode
	cfg.MaxCycles = 1 << 48
	m := sim.New(cfg)
	defer m.Recycle()
	g := graphgen.Build(m, n, edges)
	sys := v.build(m)
	r := msf.NewRunner(m, g, sys, v.variant)
	res := r.Run(m)
	if err := r.Validate(res); err != nil {
		return 0, "", fmt.Errorf("%s/%d threads: %w", v.name, threads, err)
	}
	return m.ElapsedSeconds(), summarizeStats(sys.Stats()), nil
}

// msfCell wraps one (variant, threads) measurement as a runner cell.
func msfCell(o MSFOptions, experiment string, v msfVariant, threads int) pointCell {
	return pointCell{
		Spec: o.spec(experiment, v.name, threads),
		Compute: func() (Point, error) {
			secs, extra, err := RunMSF(o, v, threads)
			if err != nil {
				return Point{}, err
			}
			return Point{Threads: threads, OpsPerUsec: secs, Extra: extra}, nil
		},
	}
}

// msfCurves runs a set of (name, variant option, thread list) curves
// through the pool and assembles them in submission order. Curves may
// have different thread axes (msf-seq only runs at one thread).
func msfCurves(pool *runner.Pool, curves []struct {
	name  string
	cells []pointCell
}) ([]Curve, error) {
	var flat []pointCell
	for _, c := range curves {
		flat = append(flat, c.cells...)
	}
	points, err := runner.RunCells(pool, flat)
	if err != nil {
		return nil, err
	}
	out := make([]Curve, len(curves))
	at := 0
	for i, c := range curves {
		out[i] = Curve{Name: c.name, Points: points[at : at+len(c.cells)]}
		at += len(c.cells)
	}
	return out, nil
}

// Fig4 reconstructs Figure 4: MSF running time (simulated seconds — the
// paper's y axis is also running time, log scale) for the seven variants.
func Fig4(o MSFOptions) (*Figure, error) {
	o = o.Defaults()
	fig := &Figure{
		Title: fmt.Sprintf("Figure 4 MSF, synthetic roadmap %dx%d grid (+%.0f%% shortcuts)",
			o.Width, o.Height, o.Extra*100),
		YLabel: "running time (simulated seconds; lower is better)",
	}
	type curveDef = struct {
		name  string
		cells []pointCell
	}
	var defs []curveDef
	for _, v := range msfVariants() {
		threads := o.Threads
		if v.seqOnly {
			threads = []int{1}
		}
		def := curveDef{name: v.name}
		for _, th := range threads {
			def.cells = append(def.cells, msfCell(o, "fig4", v, th))
		}
		defs = append(defs, def)
	}
	curves, err := msfCurves(o.Runner, defs)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	for _, curve := range curves {
		if last := curve.Points[len(curve.Points)-1]; last.Extra != "" {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s @%d threads: %s", curve.Name, last.Threads, last.Extra))
		}
	}
	fig.Notes = append(fig.Notes, "values are RUNNING TIME in simulated seconds, not throughput")
	return fig, nil
}

// SEModeMSF reconstructs the Section 8.1 SE-mode observation: with the
// 16-entry store queue, msf-opt-le's transactions overflow (ST|SIZ) and
// the lock-fallback fraction rises by orders of magnitude.
func SEModeMSF(o MSFOptions) (*Figure, error) {
	o = o.Defaults()
	fig := &Figure{
		Title:  "Section 8.1 msf-opt-le in SSE vs SE mode",
		YLabel: "running time (simulated seconds; lower is better)",
	}
	var leVariant msfVariant
	for _, v := range msfVariants() {
		if v.name == "msf-opt-le" {
			leVariant = v
		}
	}
	type curveDef = struct {
		name  string
		cells []pointCell
	}
	var defs []curveDef
	for _, mode := range []sim.Mode{sim.SSE, sim.SE} {
		name := "SSE"
		if mode == sim.SE {
			name = "SE"
		}
		oo := o
		oo.Mode = mode
		def := curveDef{name: "msf-opt-le-" + name}
		for _, th := range o.Threads {
			def.cells = append(def.cells, msfCell(oo, "msfse", leVariant, th))
		}
		defs = append(defs, def)
	}
	curves, err := msfCurves(o.Runner, defs)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	for _, curve := range curves {
		for _, p := range curve.Points {
			if p.Threads == 1 && p.Extra != "" {
				fig.Notes = append(fig.Notes, fmt.Sprintf("%s single-thread: %s", curve.Name, p.Extra))
			}
		}
	}
	return fig, nil
}

// MSFSweepFigure runs the named variants (all seven when variants is
// empty) at every thread count in o.Threads through the orchestrator —
// this is `cmd/msf -variant all`. msf-seq is pinned to one thread.
func MSFSweepFigure(o MSFOptions, variants []string) (*Figure, error) {
	o = o.Defaults()
	if len(variants) == 0 {
		variants = MSFVariantNames()
	}
	byName := map[string]msfVariant{}
	for _, v := range msfVariants() {
		byName[v.name] = v
	}
	type curveDef = struct {
		name  string
		cells []pointCell
	}
	var defs []curveDef
	for _, name := range variants {
		v, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown MSF variant %q (valid: %v)", name, MSFVariantNames())
		}
		threads := o.Threads
		if v.seqOnly {
			threads = []int{1}
		}
		def := curveDef{name: v.name}
		for _, th := range threads {
			def.cells = append(def.cells, msfCell(o, "msf-sweep", v, th))
		}
		defs = append(defs, def)
	}
	curves, err := msfCurves(o.Runner, defs)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		Title: fmt.Sprintf("MSF variant sweep, synthetic roadmap %dx%d grid (+%.0f%% shortcuts)",
			o.Width, o.Height, o.Extra*100),
		YLabel: "running time (simulated seconds; lower is better)",
	}
	fig.Curves = curves
	for _, curve := range curves {
		if last := curve.Points[len(curve.Points)-1]; last.Extra != "" {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s @%d threads: %s", curve.Name, last.Threads, last.Extra))
		}
	}
	return fig, nil
}

// ProfileReport renders the Section 6.1 failure analysis for a set of tree
// sizes. Each size is profiled twice: with a tight hardware-retry budget
// (2 tries) and with the default (8) — the paper's own experiment, which
// showed that additional retries bring the needed data into the cache and
// rescue transactions that would otherwise fail.
func ProfileReport(ops int, sizes []int) []string {
	if len(sizes) == 0 {
		sizes = []int{1024, 4096, 24000}
	}
	var lines []string
	for _, size := range sizes {
		cfg := profile.Config{
			TreeKeys:   size,
			Ops:        ops,
			PctGet:     70,
			PctInsert:  15,
			Seed:       42,
			MaxHWTries: 2,
		}
		sum := profile.Summarize(profile.Run(cfg))
		cfg8 := cfg
		cfg8.MaxHWTries = 8
		sum8 := profile.Summarize(profile.Run(cfg8))
		lines = append(lines,
			fmt.Sprintf("tree=%d ops=%d: %d/%d failed to software with a 2-try budget; %d/%d with 8 tries (retries warm the cache)",
				size, sum.Ops, sum.Failed, sum.Ops, sum8.Failed, sum8.Ops),
			fmt.Sprintf("  read-set lines   succeeded max=%d mean=%.1f | failed max=%d mean=%.1f",
				sum.MaxReadLines[0], sum.MeanReadLines[0], sum.MaxReadLines[1], sum.MeanReadLines[1]),
			fmt.Sprintf("  max lines/L1 set succeeded=%d failed=%d (set overflows: %d vs %d)",
				sum.MaxLinesPerSet[0], sum.MaxLinesPerSet[1], sum.SetOverflows[0], sum.SetOverflows[1]),
			fmt.Sprintf("  write words max  succeeded=%d failed=%d (bank overflows: %d vs %d)",
				sum.MaxWriteWords[0], sum.MaxWriteWords[1], sum.BankOverflows[0], sum.BankOverflows[1]),
			fmt.Sprintf("  failure CPS histogram: %s", sum.CPSHist),
			"  stack writes: 0 (not modelled; documented divergence)",
		)
	}
	return lines
}

// RunMSFVariant measures a single named variant at one thread count
// (convenience for benchmarks).
func RunMSFVariant(o MSFOptions, name string, threads int) (float64, error) {
	o = o.Defaults()
	for _, v := range msfVariants() {
		if v.name == name {
			secs, _, err := RunMSF(o, v, threads)
			return secs, err
		}
	}
	return 0, fmt.Errorf("unknown MSF variant %q", name)
}
