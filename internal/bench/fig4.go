package bench

import (
	"fmt"

	"rocktm/internal/core"
	"rocktm/internal/graphgen"
	"rocktm/internal/locktm"
	"rocktm/internal/msf"
	"rocktm/internal/profile"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
	"rocktm/internal/tle"
)

// MSFOptions sizes the Figure 4 experiment. The paper's Eastern-USA
// roadmap has 3,598,623 nodes; the default here is a synthetic road grid
// that runs in minutes, and Width/Height scale it up to taste.
type MSFOptions struct {
	Width, Height int
	Extra         float64
	Seed          uint64
	Threads       []int
	Mode          sim.Mode
}

// Defaults fills unset fields.
func (o MSFOptions) Defaults() MSFOptions {
	if o.Width == 0 {
		o.Width = 64
	}
	if o.Height == 0 {
		o.Height = 64
	}
	if o.Extra == 0 {
		o.Extra = 0.05
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Threads) == 0 {
		o.Threads = DefaultThreads
	}
	return o
}

type msfVariant struct {
	name    string
	variant msf.Variant
	build   func(m *sim.Machine) core.System
	seqOnly bool
}

func msfVariants() []msfVariant {
	newSky := func(m *sim.Machine) core.System { return sky.New(m) }
	newLock := func(m *sim.Machine) core.System { return locktm.NewOneLock(m) }
	newLE := func(m *sim.Machine) core.System {
		return tle.New("le", tle.SpinAdapter{L: locktm.NewSpinLock(m.Mem())}, tle.DefaultPolicy())
	}
	return []msfVariant{
		{"msf-orig-sky", msf.Orig, newSky, false},
		{"msf-opt-sky", msf.Opt, newSky, false},
		{"msf-orig-lock", msf.Orig, newLock, false},
		{"msf-opt-lock", msf.Opt, newLock, false},
		{"msf-orig-le", msf.Orig, newLE, false},
		{"msf-opt-le", msf.Opt, newLE, false},
		{"msf-seq", msf.Orig, func(m *sim.Machine) core.System { return locktm.NewSeq() }, true},
	}
}

// msfMemWords sizes simulated memory for a graph.
func msfMemWords(n, mEdges int) int {
	need := 4*n + 8*(2*mEdges+2*n) + 8*n + 1<<20
	words := 1 << 22
	for words < need {
		words <<= 1
	}
	return words
}

// RunMSF measures one variant at one thread count, returning the running
// time in simulated seconds plus fallback statistics.
func RunMSF(o MSFOptions, v msfVariant, threads int) (float64, string, error) {
	cfg := sim.DefaultConfig(threads)
	n, edges := graphgen.RoadmapEdges(o.Width, o.Height, o.Extra, 1<<20, o.Seed)
	cfg.MemWords = msfMemWords(n, len(edges))
	cfg.Seed = o.Seed
	cfg.Mode = o.Mode
	cfg.MaxCycles = 1 << 48
	m := sim.New(cfg)
	g := graphgen.Build(m, n, edges)
	sys := v.build(m)
	r := msf.NewRunner(m, g, sys, v.variant)
	res := r.Run(m)
	if err := r.Validate(res); err != nil {
		return 0, "", fmt.Errorf("%s/%d threads: %w", v.name, threads, err)
	}
	return m.ElapsedSeconds(), summarizeStats(sys.Stats()), nil
}

// Fig4 reconstructs Figure 4: MSF running time (simulated seconds — the
// paper's y axis is also running time, log scale) for the seven variants.
func Fig4(o MSFOptions) (*Figure, error) {
	o = o.Defaults()
	fig := &Figure{
		Title: fmt.Sprintf("Figure 4 MSF, synthetic roadmap %dx%d grid (+%.0f%% shortcuts)",
			o.Width, o.Height, o.Extra*100),
		YLabel: "running time (simulated seconds; lower is better)",
	}
	for _, v := range msfVariants() {
		curve := Curve{Name: v.name}
		threads := o.Threads
		if v.seqOnly {
			threads = []int{1}
		}
		for _, th := range threads {
			secs, extra, err := RunMSF(o, v, th)
			if err != nil {
				return nil, err
			}
			curve.Points = append(curve.Points, Point{Threads: th, OpsPerUsec: secs, Extra: extra})
		}
		fig.Curves = append(fig.Curves, curve)
		if last := curve.Points[len(curve.Points)-1]; last.Extra != "" {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s @%d threads: %s", v.name, last.Threads, last.Extra))
		}
	}
	fig.Notes = append(fig.Notes, "values are RUNNING TIME in simulated seconds, not throughput")
	return fig, nil
}

// SEModeMSF reconstructs the Section 8.1 SE-mode observation: with the
// 16-entry store queue, msf-opt-le's transactions overflow (ST|SIZ) and
// the lock-fallback fraction rises by orders of magnitude.
func SEModeMSF(o MSFOptions) (*Figure, error) {
	o = o.Defaults()
	fig := &Figure{
		Title:  "Section 8.1 msf-opt-le in SSE vs SE mode",
		YLabel: "running time (simulated seconds; lower is better)",
	}
	var leVariant msfVariant
	for _, v := range msfVariants() {
		if v.name == "msf-opt-le" {
			leVariant = v
		}
	}
	for _, mode := range []sim.Mode{sim.SSE, sim.SE} {
		name := "SSE"
		if mode == sim.SE {
			name = "SE"
		}
		curve := Curve{Name: "msf-opt-le-" + name}
		oo := o
		oo.Mode = mode
		for _, th := range o.Threads {
			secs, extra, err := RunMSF(oo, leVariant, th)
			if err != nil {
				return nil, err
			}
			curve.Points = append(curve.Points, Point{Threads: th, OpsPerUsec: secs, Extra: extra})
			if th == 1 {
				fig.Notes = append(fig.Notes, fmt.Sprintf("%s single-thread: %s", curve.Name, extra))
			}
		}
		fig.Curves = append(fig.Curves, curve)
	}
	return fig, nil
}

// ProfileReport renders the Section 6.1 failure analysis for a set of tree
// sizes. Each size is profiled twice: with a tight hardware-retry budget
// (2 tries) and with the default (8) — the paper's own experiment, which
// showed that additional retries bring the needed data into the cache and
// rescue transactions that would otherwise fail.
func ProfileReport(ops int, sizes []int) []string {
	if len(sizes) == 0 {
		sizes = []int{1024, 4096, 24000}
	}
	var lines []string
	for _, size := range sizes {
		cfg := profile.Config{
			TreeKeys:   size,
			Ops:        ops,
			PctGet:     70,
			PctInsert:  15,
			Seed:       42,
			MaxHWTries: 2,
		}
		sum := profile.Summarize(profile.Run(cfg))
		cfg8 := cfg
		cfg8.MaxHWTries = 8
		sum8 := profile.Summarize(profile.Run(cfg8))
		lines = append(lines,
			fmt.Sprintf("tree=%d ops=%d: %d/%d failed to software with a 2-try budget; %d/%d with 8 tries (retries warm the cache)",
				size, sum.Ops, sum.Failed, sum.Ops, sum8.Failed, sum8.Ops),
			fmt.Sprintf("  read-set lines   succeeded max=%d mean=%.1f | failed max=%d mean=%.1f",
				sum.MaxReadLines[0], sum.MeanReadLines[0], sum.MaxReadLines[1], sum.MeanReadLines[1]),
			fmt.Sprintf("  max lines/L1 set succeeded=%d failed=%d (set overflows: %d vs %d)",
				sum.MaxLinesPerSet[0], sum.MaxLinesPerSet[1], sum.SetOverflows[0], sum.SetOverflows[1]),
			fmt.Sprintf("  write words max  succeeded=%d failed=%d (bank overflows: %d vs %d)",
				sum.MaxWriteWords[0], sum.MaxWriteWords[1], sum.BankOverflows[0], sum.BankOverflows[1]),
			fmt.Sprintf("  failure CPS histogram: %s", sum.CPSHist),
			"  stack writes: 0 (not modelled; documented divergence)",
		)
	}
	return lines
}

// RunMSFVariant measures a single named variant at one thread count
// (convenience for benchmarks).
func RunMSFVariant(o MSFOptions, name string, threads int) (float64, error) {
	o = o.Defaults()
	for _, v := range msfVariants() {
		if v.name == name {
			secs, _, err := RunMSF(o, v, threads)
			return secs, err
		}
	}
	return 0, fmt.Errorf("unknown MSF variant %q", name)
}
