package bench

import "testing"

// BenchmarkFig2aCell is the end-to-end hot-path benchmark: one small
// serial fig2a matrix (every system at 4 threads, 300 ops/thread), run
// inline with no runner pool and no cache. It exercises machine
// construction, the baton scheduler, TLBs, caches and the transaction
// paths exactly as `figures -exp fig2a` does.
func BenchmarkFig2aCell(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := Options{Threads: []int{4}, OpsPerThread: 300, Seed: 1}
		if _, err := Fig2a(o); err != nil {
			b.Fatal(err)
		}
	}
}
