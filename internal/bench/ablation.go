package bench

import (
	"fmt"

	"rocktm/internal/core"
	"rocktm/internal/jcl"
	"rocktm/internal/jvm"
	"rocktm/internal/phtm"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
	"rocktm/internal/tle"
	"rocktm/internal/workload"
)

// AblationRetryBudget is the Section 6 knob study: how the PhTM
// hardware-retry budget changes red-black-tree behaviour. The paper found
// that raising the budget lets retries warm the cache and commit
// transactions that a small budget sends to software — but that those
// extra retries also eat the latency advantage.
func AblationRetryBudget(o Options) (*Figure, error) {
	o = o.Defaults()
	budgets := []float64{1, 2, 4, 8, 16}
	fig := &Figure{
		Title:  "Ablation: PhTM hardware-retry budget on Red-Black Tree 2048 keys, 96/2/2",
		YLabel: "throughput (ops/usec), simulated",
	}
	cfg := kvConfig{
		keyRange:  2048,
		pctLookup: 96,
		memWords:  1 << 22,
		build:     rbtreeKV,
	}
	var names []string
	var cells []pointCell
	for _, budget := range budgets {
		budget := budget
		name := fmt.Sprintf("budget=%g", budget)
		names = append(names, name)
		for _, th := range o.Threads {
			th := th
			sb := SysBuilder{
				Name: name,
				Build: func(m *sim.Machine) core.System {
					c := phtm.DefaultConfig()
					c.MaxFailures = budget
					return phtm.New(m, sky.New(m), c)
				},
			}
			spec := kvSpec(o, "ablate-retry", cfg, name, th)
			spec.Params["budget"] = fmt.Sprintf("%g", budget)
			cells = append(cells, pointCell{
				Spec:    spec,
				Compute: func() (Point, error) { return runKV(o, "ablate-retry", cfg, sb, th) },
			})
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	for _, curve := range curves {
		if last := curve.Points[len(curve.Points)-1]; last.Extra != "" {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s @%d threads: %s", curve.Name, last.Threads, last.Extra))
		}
	}
	return fig, nil
}

// AblationUCTIWeight studies the Section 8.1 policy choice of counting a
// UCTI-flagged failure as only *half* a failure on the MSF benchmark's
// synchronization profile (here: the Java Hashtable under TLE, where UCTI
// is the dominant failure at high thread counts).
func AblationUCTIWeight(o Options) (*Figure, error) {
	o = o.Defaults()
	weights := []float64{0.5, 1.0, 2.0}
	const keyRange = 4096
	fig := &Figure{
		Title:  "Ablation: UCTI failure weight in the TLE policy (Java Hashtable, mix 2:6:2)",
		YLabel: "throughput (ops/usec), simulated",
	}
	wl := workload.MustCompile(javaMix{2, 6, 2}.spec(keyRange))
	var names []string
	var cells []pointCell
	for _, w := range weights {
		w := w
		name := fmt.Sprintf("ucti=%g", w)
		names = append(names, name)
		for _, th := range o.Threads {
			th := th
			cells = append(cells, pointCell{
				Spec: o.spec("ablate-ucti", name, th, machineCfg(th, 1<<22, o.Seed),
					map[string]string{"weight": fmt.Sprintf("%g", w), "keyrange": itoa(keyRange)}),
				Compute: func() (Point, error) {
					m := machineFor(th, 1<<22, o.Seed)
					defer m.Recycle()
					pol := tle.DefaultPolicy()
					pol.UCTIWeight = w
					vm := jvm.New(m, pol)
					ht := jcl.NewHashtable(m, vm, 1<<13, keyRange+2*th+64)
					ht.Prepopulate(m.Mem(), workload.PrepopHalf(keyRange), 1)
					lat := o.latRecorder()
					m.Run(func(s *sim.Strand) {
						d := wl.Driver(s, lat)
						d.Run(o.OpsPerThread, func(_, op int, key uint64) {
							switch op {
							case workload.OpPut:
								ht.Put(s, key, 1)
							case workload.OpGet:
								ht.Get(s, key)
							default:
								ht.Remove(s, key)
							}
						})
					})
					res := workload.NewResult(uint64(th*o.OpsPerThread), m.ElapsedSeconds(), vm.Stats(), lat)
					return point(res, th), nil
				},
			})
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	return fig, nil
}

// AblationThrottle evaluates the Section 7.2 future-work idea implemented
// in tle.Throttle: adaptive concurrency throttling under a write-heavy
// mix, against plain TLE and plain locking.
func AblationThrottle(o Options) (*Figure, error) {
	o = o.Defaults()
	const keyRange = 8 // a handful of hot keys: elision-hostile
	mix := javaMix{5, 0, 5}
	fig := &Figure{
		Title:  "Extension: adaptive concurrency throttling (TLE, Hashtable 5:0:5, keyrange 8)",
		YLabel: "throughput (ops/usec), simulated",
	}
	wl := workload.MustCompile(mix.spec(keyRange))
	var names []string
	var cells []pointCell
	for _, throttled := range []bool{false, true} {
		throttled := throttled
		name := "tle"
		if throttled {
			name = "tle+throttle"
		}
		names = append(names, name)
		for _, th := range o.Threads {
			th := th
			cells = append(cells, pointCell{
				Spec: o.spec("ablate-throttle", name, th, machineCfg(th, 1<<22, o.Seed),
					map[string]string{"mix": mix.String(), "keyrange": itoa(keyRange)}),
				Compute: func() (Point, error) {
					m := machineFor(th, 1<<22, o.Seed)
					defer m.Recycle()
					vm := jvm.New(m, tle.DefaultPolicy())
					if throttled {
						vm.SetThrottle(tle.NewThrottle(m))
					}
					ht := jcl.NewHashtable(m, vm, 1<<13, keyRange+2*th+64)
					ht.Prepopulate(m.Mem(), workload.PrepopHalf(keyRange), 1)
					lat := o.latRecorder()
					m.Run(func(s *sim.Strand) {
						d := wl.Driver(s, lat)
						d.Run(o.OpsPerThread, func(_, op int, key uint64) {
							switch op {
							case workload.OpPut:
								ht.Put(s, key, 1)
							case workload.OpGet:
								ht.Get(s, key)
							default:
								ht.Remove(s, key)
							}
						})
					})
					res := workload.NewResult(uint64(th*o.OpsPerThread), m.ElapsedSeconds(), vm.Stats(), lat)
					return point(res, th), nil
				},
			})
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	return fig, nil
}
