package bench

import (
	"fmt"

	"rocktm/internal/core"
	"rocktm/internal/jcl"
	"rocktm/internal/jvm"
	"rocktm/internal/phtm"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
	"rocktm/internal/tle"
)

// AblationRetryBudget is the Section 6 knob study: how the PhTM
// hardware-retry budget changes red-black-tree behaviour. The paper found
// that raising the budget lets retries warm the cache and commit
// transactions that a small budget sends to software — but that those
// extra retries also eat the latency advantage.
func AblationRetryBudget(o Options) (*Figure, error) {
	o = o.Defaults()
	budgets := []float64{1, 2, 4, 8, 16}
	fig := &Figure{
		Title:  "Ablation: PhTM hardware-retry budget on Red-Black Tree 2048 keys, 96/2/2",
		YLabel: "throughput (ops/usec), simulated",
	}
	for _, budget := range budgets {
		budget := budget
		curve := Curve{Name: fmt.Sprintf("budget=%g", budget)}
		for _, th := range o.Threads {
			sb := SysBuilder{
				Name: curve.Name,
				Build: func(m *sim.Machine) core.System {
					cfg := phtm.DefaultConfig()
					cfg.MaxFailures = budget
					return phtm.New(m, sky.New(m), cfg)
				},
			}
			p, err := runKV(o, "ablate-retry", kvConfig{
				keyRange:  2048,
				pctLookup: 96,
				memWords:  1 << 22,
				build:     rbtreeKV,
			}, sb, th)
			if err != nil {
				return nil, err
			}
			curve.Points = append(curve.Points, p)
		}
		if last := curve.Points[len(curve.Points)-1]; last.Extra != "" {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s @%d threads: %s", curve.Name, last.Threads, last.Extra))
		}
		fig.Curves = append(fig.Curves, curve)
	}
	return fig, nil
}

// AblationUCTIWeight studies the Section 8.1 policy choice of counting a
// UCTI-flagged failure as only *half* a failure on the MSF benchmark's
// synchronization profile (here: the Java Hashtable under TLE, where UCTI
// is the dominant failure at high thread counts).
func AblationUCTIWeight(o Options) (*Figure, error) {
	o = o.Defaults()
	weights := []float64{0.5, 1.0, 2.0}
	const keyRange = 4096
	fig := &Figure{
		Title:  "Ablation: UCTI failure weight in the TLE policy (Java Hashtable, mix 2:6:2)",
		YLabel: "throughput (ops/usec), simulated",
	}
	for _, w := range weights {
		curve := Curve{Name: fmt.Sprintf("ucti=%g", w)}
		for _, th := range o.Threads {
			m := machineFor(th, 1<<22, o.Seed)
			pol := tle.DefaultPolicy()
			pol.UCTIWeight = w
			vm := jvm.New(m, pol)
			ht := jcl.NewHashtable(m, vm, 1<<13, keyRange+2*th+64)
			var keys []uint64
			for k := 0; k < keyRange; k += 2 {
				keys = append(keys, uint64(k))
			}
			ht.Prepopulate(m.Mem(), keys, 1)
			m.Run(func(s *sim.Strand) {
				for i := 0; i < o.OpsPerThread; i++ {
					key := uint64(s.RandIntn(keyRange))
					switch r := s.RandIntn(10); {
					case r < 2:
						ht.Put(s, key, 1)
					case r < 8:
						ht.Get(s, key)
					default:
						ht.Remove(s, key)
					}
				}
			})
			res := runResult{ops: uint64(th * o.OpsPerThread), seconds: m.ElapsedSeconds(), stats: vm.Stats()}
			curve.Points = append(curve.Points, Point{Threads: th, OpsPerUsec: res.throughput(), Extra: summarizeStats(res.stats)})
		}
		fig.Curves = append(fig.Curves, curve)
	}
	return fig, nil
}

// AblationThrottle evaluates the Section 7.2 future-work idea implemented
// in tle.Throttle: adaptive concurrency throttling under a write-heavy
// mix, against plain TLE and plain locking.
func AblationThrottle(o Options) (*Figure, error) {
	o = o.Defaults()
	const keyRange = 8 // a handful of hot keys: elision-hostile
	mix := javaMix{5, 0, 5}
	fig := &Figure{
		Title:  "Extension: adaptive concurrency throttling (TLE, Hashtable 5:0:5, keyrange 8)",
		YLabel: "throughput (ops/usec), simulated",
	}
	for _, throttled := range []bool{false, true} {
		name := "tle"
		if throttled {
			name = "tle+throttle"
		}
		curve := Curve{Name: name}
		for _, th := range o.Threads {
			m := machineFor(th, 1<<22, o.Seed)
			vm := jvm.New(m, tle.DefaultPolicy())
			if throttled {
				vm.SetThrottle(tle.NewThrottle(m))
			}
			ht := jcl.NewHashtable(m, vm, 1<<13, keyRange+2*th+64)
			var keys []uint64
			for k := 0; k < keyRange; k += 2 {
				keys = append(keys, uint64(k))
			}
			ht.Prepopulate(m.Mem(), keys, 1)
			m.Run(func(s *sim.Strand) {
				for i := 0; i < o.OpsPerThread; i++ {
					key := uint64(s.RandIntn(keyRange))
					switch r := s.RandIntn(10); {
					case r < mix.put:
						ht.Put(s, key, 1)
					case r < mix.put+mix.get:
						ht.Get(s, key)
					default:
						ht.Remove(s, key)
					}
				}
			})
			res := runResult{ops: uint64(th * o.OpsPerThread), seconds: m.ElapsedSeconds(), stats: vm.Stats()}
			curve.Points = append(curve.Points, Point{Threads: th, OpsPerUsec: res.throughput(), Extra: summarizeStats(res.stats)})
		}
		fig.Curves = append(fig.Curves, curve)
	}
	return fig, nil
}
