package bench

import (
	"bytes"
	"testing"

	"rocktm/internal/sim"
)

// htmTestOptions keeps the design-space sweep cheap enough for the unit
// suite: two thread counts, a few hundred ops per thread.
func htmTestOptions() Options {
	return Options{Threads: []int{1, 2}, OpsPerThread: 120, Seed: 1}
}

// TestHTMDesignFigureDeterministic renders the full sweep twice and
// demands byte identity — the same reproducibility bar every other
// figure meets, now across all six design points.
func TestHTMDesignFigureDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full design-space sweep is slow")
	}
	render := func() []byte {
		f, err := HTMDesignFigure(htmTestOptions())
		if err != nil {
			t.Fatalf("HTMDesignFigure: %v", err)
		}
		var buf bytes.Buffer
		f.Render(&buf)
		f.CSV(&buf)
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("two renders of the htmdesign figure differ")
	}
}

// TestHTMDesignFigureShape pins the sweep's cross product: one curve per
// (design point, workload, policy) triple, every design point named.
func TestHTMDesignFigureShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full design-space sweep is slow")
	}
	f, err := HTMDesignFigure(htmTestOptions())
	if err != nil {
		t.Fatalf("HTMDesignFigure: %v", err)
	}
	wantCurves := len(sim.DesignPointNames()) * len(htmDesignWorkloads()) * len(htmDesignPolicies())
	if len(f.Curves) != wantCurves {
		t.Fatalf("figure has %d curves, want %d", len(f.Curves), wantCurves)
	}
	seen := map[string]bool{}
	for _, c := range f.Curves {
		seen[c.Name] = true
		if len(c.Points) != len(htmTestOptions().Threads) {
			t.Errorf("curve %s has %d points, want %d", c.Name, len(c.Points), len(htmTestOptions().Threads))
		}
	}
	for _, design := range sim.DesignPointNames() {
		if !seen[design+"/rbtree/paper"] {
			t.Errorf("missing curve %s/rbtree/paper", design)
		}
	}
}

// TestHTMDesignCellDigestsKeyDesign pins the cache-safety property the
// sweep depends on: specs that differ only in design point must carry
// different SimDigests, or the runner cache would serve one design's
// result for another.
func TestHTMDesignCellDigestsKeyDesign(t *testing.T) {
	o := htmTestOptions()
	wl := htmDesignWorkloads()[0]
	digests := map[string]string{}
	for _, design := range sim.DesignPointNames() {
		cfg := htmDesignCfg(2, wl.memWords, o.Seed, design, wl.faults)
		d := cfg.Digest()
		if prev, ok := digests[d]; ok {
			t.Errorf("designs %s and %s share config digest %s", prev, design, d)
		}
		digests[d] = design
	}
	if len(digests) < 4 {
		t.Errorf("only %d distinct design digests (rock + at least 3 non-default required)", len(digests))
	}
}

// TestHTMDesignCellDigestsKeyFaults pins the other half of the sweep's
// cache safety: cells that differ only in the workload's fault profile
// (rbtree vs rbtree-evict) must carry different config digests, or the
// runner cache would serve an unfaulted result for a faulted cell. Also
// asserts the evict profile is actually reachable from the sweep.
func TestHTMDesignCellDigestsKeyFaults(t *testing.T) {
	o := htmTestOptions()
	var plain, evict *htmWorkload
	for i := range htmDesignWorkloads() {
		wl := htmDesignWorkloads()[i]
		switch {
		case wl.faults == "evict":
			evict = &wl
		case wl.name == "rbtree":
			plain = &wl
		}
	}
	if evict == nil {
		t.Fatal("no htmdesign workload carries the evict fault profile")
	}
	if plain == nil {
		t.Fatal("no unfaulted rbtree workload")
	}
	a := htmDesignCfg(2, plain.memWords, o.Seed, "rock", plain.faults)
	b := htmDesignCfg(2, evict.memWords, o.Seed, "rock", evict.faults)
	if a.Digest() == b.Digest() {
		t.Fatalf("evict-faulted cell shares config digest %s with the unfaulted cell", a.Digest())
	}
	if !b.Faults.Enabled() {
		t.Fatal("evict workload's config carries no enabled fault plan")
	}
}
