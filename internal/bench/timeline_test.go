package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rocktm/internal/obs/timeseries"
	"rocktm/internal/runner"
	"rocktm/internal/workload"
)

// The zero-perturbation contract extended to windowed capture: attaching
// the timeseries recorder (event sink + latency sink) must leave the
// measured point bit-identical — same throughput, same notes, same
// latency digest — while producing a non-empty window series whose op
// count reconciles with the run.
func TestTimelineCaptureDoesNotPerturb(t *testing.T) {
	o := Options{Threads: []int{2}, OpsPerThread: 120, Seed: 1, Latency: true}.Defaults()
	st := timelineStructures()[1] // rbtree: exercises tx, fallback and lock hooks
	cfg := st.cfg
	cfg.keys = workload.Zipfian(cfg.keyRange, 0.99)
	for _, sb := range tailSystems() {
		plain, _, err := runKVSeries(o, "t", cfg, sb, 2, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		captured, series, err := runKVSeries(o, "t", cfg, sb, 2, true, timeseries.MinWidth)
		if err != nil {
			t.Fatal(err)
		}
		pb, _ := json.Marshal(plain)
		cb, _ := json.Marshal(captured)
		if !bytes.Equal(pb, cb) {
			t.Errorf("%s: windowed capture changed the measurement:\n%s\n%s", sb.Name, pb, cb)
		}
		if len(series.Windows) == 0 {
			t.Fatalf("%s: capture produced an empty series", sb.Name)
		}
		var ops uint64
		for _, w := range series.Windows {
			ops += w.Ops
		}
		if want := uint64(2 * o.OpsPerThread); ops != want {
			t.Errorf("%s: series holds %d ops across windows, want %d", sb.Name, ops, want)
		}
	}
}

// The timeline figure rides the runner like every other experiment: the
// series lives inside the cell payload, so serial, 8-worker parallel and
// warm-cache executions must render byte-identically — including the
// detector findings and SLO verdicts in the notes.
func TestTimelineParallelMatchesSerialByteForByte(t *testing.T) {
	o := Options{Threads: []int{1, 2}, OpsPerThread: 80, Seed: 1}

	serialFig, err := TimelineFigure(o) // o.Runner == nil: inline serial path
	if err != nil {
		t.Fatal(err)
	}
	serial := renderAll(t, serialFig)

	cache, err := runner.OpenCache(t.TempDir(), runner.CacheVersion)
	if err != nil {
		t.Fatal(err)
	}
	po := o
	po.Runner = &runner.Pool{Workers: 8, Cache: cache, Costs: runner.NewCostModel()}
	for pass, label := range []string{"parallel", "warm-cache"} {
		fig, err := TimelineFigure(po)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderAll(t, fig); !bytes.Equal(serial, got) {
			t.Fatalf("pass %d (%s) timeline output differs from serial:\n--- serial ---\n%s\n--- got ---\n%s",
				pass, label, serial, got)
		}
	}
	for _, w := range cache.Warnings() {
		t.Errorf("unexpected cache warning: %s", w)
	}
}

// Every curve is judged in the notes: either "no pathologies detected"
// or concrete findings, plus one SLO verdict per declared objective.
func TestTimelineFigureJudgesEveryCurve(t *testing.T) {
	o := Options{Threads: []int{1, 2}, OpsPerThread: 80, Seed: 1}
	fig, err := TimelineFigure(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 8 {
		t.Fatalf("got %d curves, want 8 (2 structures x 4 systems)", len(fig.Curves))
	}
	notes := strings.Join(fig.Notes, "\n")
	for _, c := range fig.Curves {
		if !strings.Contains(notes, c.Name+" @2T:") {
			t.Errorf("curve %s has no note at the top thread count", c.Name)
		}
	}
	for _, want := range []string{"SLO ht-tail", "SLO rbtree-tail", "windows"} {
		if !strings.Contains(notes, want) {
			t.Errorf("notes missing %q:\n%s", want, notes)
		}
	}
	if !fig.hasLatency() {
		t.Error("timeline figure must always carry latency digests")
	}
}

// The acceptance scenario from EXPERIMENTS.md E24: at the E23 sweep's
// contended corner (rbtree, zipf 0.99, 16 threads) the detector names
// PhTM's phase-flip drain with a concrete window range, and the declared
// SLO fails with a finite burn rate.
func TestTimelineDetectsPhaseFlipDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("16-thread contended sweep; skipped with -short")
	}
	o := Options{Threads: []int{16}, OpsPerThread: 1000, Seed: 1, Latency: true}.Defaults()
	st := timelineStructures()[1] // rbtree
	cfg := st.cfg
	cfg.keys = workload.Zipfian(cfg.keyRange, 0.99)
	phtm := tailSystems()[0]
	if phtm.Name != "phtm" {
		t.Fatalf("system order changed: %q", phtm.Name)
	}
	_, series, err := runKVSeries(o, "e24", cfg, phtm, 16, true, timeseries.DefaultWidth)
	if err != nil {
		t.Fatal(err)
	}
	findings := timeseries.Detect(series)
	var drain *timeseries.Finding
	for i := range findings {
		if findings[i].Kind == timeseries.KindPhaseFlipDrain {
			drain = &findings[i]
			break
		}
	}
	if drain == nil {
		t.Fatalf("no phase-flip drain detected over %d windows", len(series.Windows))
	}
	if drain.FirstWindow < 0 || drain.LastWindow < drain.FirstWindow ||
		drain.EndCycle <= drain.StartCycle {
		t.Errorf("finding has no concrete window range: %+v", drain)
	}
	if drain.Severity < 1 {
		t.Errorf("severity %v below threshold-normalized 1.0", drain.Severity)
	}
	res := timeseries.EvaluateSLOs(series, timelineSLOs("rbtree"))
	if len(res) != 1 {
		t.Fatalf("want 1 SLO verdict, got %d", len(res))
	}
	if r := res[0]; r.Pass || r.BurnRate <= 1 || r.WorstWindow < 0 {
		t.Errorf("contended PhTM run should burn its tail budget: %+v", r)
	}
}
