package bench

import (
	"fmt"

	"rocktm/internal/core"
	"rocktm/internal/locktm"
	"rocktm/internal/phtm"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
	"rocktm/internal/tle"
	"rocktm/internal/workload"
)

// tailSystems is the tail-latency experiment's system set: one
// representative of each synchronization family (phased HTM, lock elision,
// pure STM, plain locking), so the percentile tables contrast the families
// rather than the intra-family variants.
func tailSystems() []SysBuilder {
	return []SysBuilder{
		{"phtm", func(m *sim.Machine) core.System {
			return phtm.New(m, sky.New(m), phtm.DefaultConfig())
		}},
		{"tle", func(m *sim.Machine) core.System {
			return tle.New("tle", tle.SpinAdapter{L: locktm.NewSpinLock(m.Mem())}, tle.DefaultPolicy())
		}},
		{"stm", func(m *sim.Machine) core.System {
			return sky.New(m)
		}},
		{"one-lock", func(m *sim.Machine) core.System {
			return locktm.NewOneLock(m)
		}},
	}
}

// tailSkews is the key-distribution axis: the paper's uniform draw plus
// two zipfian skews (YCSB's default 0.99 and a milder 0.9). Skew
// concentrates conflicts on a few hot keys, which barely moves mean
// throughput but stretches the latency tail — the effect this experiment
// exists to expose.
func tailSkews() []struct {
	name string
	keys func(r int) workload.Keys
} {
	return []struct {
		name string
		keys func(r int) workload.Keys
	}{
		{"uniform", func(r int) workload.Keys { return workload.Uniform(r) }},
		{"zipf0.9", func(r int) workload.Keys { return workload.Zipfian(r, 0.9) }},
		{"zipf0.99", func(r int) workload.Keys { return workload.Zipfian(r, 0.99) }},
	}
}

// TailFigure is the `-exp tail` experiment: operation-latency percentiles
// (p50/p90/p99/p99.9 simulated cycles) and throughput for skew x system x
// threads over a hash table (4096 keys, 50% lookups, deliberately few
// buckets so hot keys collide) and a red-black tree (2048 keys, 90%
// lookups). Latency capture is forced on — that is the experiment.
func TailFigure(o Options) (*Figure, error) {
	o = o.Defaults()
	o.Latency = true
	structures := []struct {
		name string
		cfg  kvConfig
	}{
		{"ht", kvConfig{
			keyRange:  4096,
			pctLookup: 50,
			memWords:  1 << 23,
			build:     hashtableKV(1 << 12),
		}},
		{"rbtree", kvConfig{
			keyRange:  2048,
			pctLookup: 90,
			memWords:  1 << 22,
			build:     rbtreeKV,
		}},
	}
	fig := &Figure{
		Title:  "Tail latency: skew x system, HashTable 4096 keys 50% lookups + RB-tree 2048 keys 90% lookups",
		YLabel: "throughput (ops/usec), simulated; latency tables in simulated cycles",
	}
	systems := tailSystems()
	skews := tailSkews()
	var names []string
	var cells []pointCell
	for _, st := range structures {
		for _, sb := range systems {
			for _, sk := range skews {
				cfg := st.cfg
				cfg.keys = sk.keys(cfg.keyRange)
				name := st.name + "/" + sb.Name + "/" + sk.name
				names = append(names, name)
				for _, th := range o.Threads {
					cfg, sb, th, name := cfg, sb, th, name
					cells = append(cells, pointCell{
						Spec:    kvSpec(o, "tail", cfg, name, th),
						Compute: func() (Point, error) { return runKV(o, name, cfg, sb, th) },
					})
				}
			}
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	// Annotate the skew effect at the highest thread count: p99.9 inflation
	// of the most skewed draw relative to uniform, per structure/system.
	top := o.Threads[len(o.Threads)-1]
	for _, st := range structures {
		for _, sb := range systems {
			uni, okU := fig.LatencyAt(st.name+"/"+sb.Name+"/uniform", top)
			hot, okH := fig.LatencyAt(st.name+"/"+sb.Name+"/zipf0.99", top)
			if okU && okH && uni.P999 > 0 {
				fig.Notes = append(fig.Notes, fmt.Sprintf("%s/%s @%dT: zipf0.99 p99.9 = %.2fx uniform (%d vs %d cycles)",
					st.name, sb.Name, top, float64(hot.P999)/float64(uni.P999), hot.P999, uni.P999))
			}
		}
	}
	return fig, nil
}
