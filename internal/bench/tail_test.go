package bench

import (
	"bytes"
	"strings"
	"testing"

	"rocktm/internal/runner"
)

// The tail experiment's latency digests ride through the runner's cache
// as part of each Point, so a latency-carrying figure must survive the
// pool and the JSON round trip byte-for-byte like every other figure:
// serial == 8-worker parallel == warm cache.
func TestTailParallelMatchesSerialByteForByte(t *testing.T) {
	o := Options{Threads: []int{1, 2}, OpsPerThread: 80, Seed: 1}

	serialFig, err := TailFigure(o) // o.Runner == nil: inline serial path
	if err != nil {
		t.Fatal(err)
	}
	serial := renderAll(t, serialFig)

	cache, err := runner.OpenCache(t.TempDir(), runner.CacheVersion)
	if err != nil {
		t.Fatal(err)
	}
	po := o
	po.Runner = &runner.Pool{Workers: 8, Cache: cache, Costs: runner.NewCostModel()}
	for pass, label := range []string{"parallel", "warm-cache"} {
		fig, err := TailFigure(po)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderAll(t, fig); !bytes.Equal(serial, got) {
			t.Fatalf("pass %d (%s) tail output differs from serial:\n--- serial ---\n%s\n--- got ---\n%s",
				pass, label, serial, got)
		}
	}
	for _, w := range cache.Warnings() {
		t.Errorf("unexpected cache warning: %s", w)
	}
}

// Every tail point must carry the full percentile digest: the rendered
// output contains the latency tables, the CSV rows grow the four
// percentile columns, and the digests are internally consistent
// (count == ops, p50 <= p90 <= p99 <= p99.9 <= max).
func TestTailReportsPercentiles(t *testing.T) {
	o := Options{Threads: []int{1, 2}, OpsPerThread: 60, Seed: 1}
	fig, err := TailFigure(o)
	if err != nil {
		t.Fatal(err)
	}
	if !fig.hasLatency() {
		t.Fatal("tail figure carries no latency digests")
	}
	for _, c := range fig.Curves {
		for _, p := range c.Points {
			l := p.Lat
			if l == nil {
				t.Fatalf("%s@%dT: nil latency digest", c.Name, p.Threads)
			}
			if want := uint64(p.Threads * o.OpsPerThread); l.Count != want {
				t.Errorf("%s@%dT: latency count %d, want %d", c.Name, p.Threads, l.Count, want)
			}
			if l.P50 <= 0 || l.P50 > l.P90 || l.P90 > l.P99 || l.P99 > l.P999 || l.P999 > l.Max {
				t.Errorf("%s@%dT: percentiles not monotone: %+v", c.Name, p.Threads, *l)
			}
		}
	}
	var buf bytes.Buffer
	fig.Render(&buf)
	out := buf.String()
	for _, want := range []string{"operation latency p50", "operation latency p99.9"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tail figure missing %q section", want)
		}
	}
	buf.Reset()
	fig.CSV(&buf)
	line, _, _ := strings.Cut(buf.String(), "\n")
	rest, ok := strings.CutPrefix(line, fig.Title+",")
	if !ok {
		t.Fatalf("tail CSV row does not start with the title: %q", line)
	}
	// name,threads,ops_per_usec,extra,p50,p90,p99,p999 — eight fields.
	if got := strings.Count(rest, ","); got != 7 {
		t.Errorf("tail CSV row has %d commas after the title, want 7 (four latency columns appended): %q", got, line)
	}
}

// Latency capture is opt-in: a legacy figure run without -latency must
// carry no digests (preserving the golden byte layout), and the same
// figure with Latency on must carry one per point while leaving the
// throughput column untouched — the recorder observes, never perturbs.
func TestLatencyOptInDoesNotPerturbThroughput(t *testing.T) {
	o := Options{Threads: []int{1, 2}, OpsPerThread: 80, Seed: 1}
	plain, err := Fig2a(o)
	if err != nil {
		t.Fatal(err)
	}
	if plain.hasLatency() {
		t.Fatal("latency digests present without Options.Latency")
	}
	lo := o
	lo.Latency = true
	withLat, err := Fig2a(lo)
	if err != nil {
		t.Fatal(err)
	}
	if !withLat.hasLatency() {
		t.Fatal("Options.Latency set but no digests recorded")
	}
	for ci, c := range plain.Curves {
		for pi, p := range c.Points {
			q := withLat.Curves[ci].Points[pi]
			if p.OpsPerUsec != q.OpsPerUsec || p.Extra != q.Extra {
				t.Errorf("%s@%dT: latency capture changed the measurement: %.6f/%q vs %.6f/%q",
					c.Name, p.Threads, p.OpsPerUsec, p.Extra, q.OpsPerUsec, q.Extra)
			}
		}
	}
}
