// Package bench is the experiment harness: it reconstructs every figure
// and table of the paper's evaluation sections on the simulated machine and
// renders them as aligned text tables (one column per curve, one row per
// thread count, throughput in operations per microsecond of simulated
// time, exactly the units the paper plots).
//
// Every per-strand operation loop is described declaratively as a
// workload.Spec (op mix, key distribution, arrival process) and executed
// through the shared workload.Driver — see docs/WORKLOADS.md. The driver
// preserves the legacy loops' RNG call sequences exactly, so the golden
// figure digests pinned in golden_test.go are byte-identical across the
// refactor.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"rocktm/internal/core"
	"rocktm/internal/cps"
	"rocktm/internal/obs"
	"rocktm/internal/obs/timeseries"
	"rocktm/internal/runner"
	"rocktm/internal/sim"
	"rocktm/internal/workload"
)

// DefaultThreads is the paper's x-axis: 1–16 threads.
var DefaultThreads = []int{1, 2, 3, 4, 6, 8, 12, 16}

// Options scales experiments; the defaults run every figure in a few
// minutes on a laptop. The paper's full parameters (1,000,000 operations
// per thread, 3.6M-node roadmap) are reachable with -full.
type Options struct {
	Threads      []int
	OpsPerThread int
	Seed         uint64
	Out          io.Writer

	// Latency enables per-operation simulated-cycle latency capture on
	// every workload-driven figure: each point then carries a
	// p50/p90/p99/p99.9 digest into the figure's tables, CSV and JSON.
	// Off by default so legacy figure output stays byte-identical; the
	// recorder itself never perturbs the simulation either way. The knob
	// enters each cell's cache key ("lat" param), so cached latency-less
	// points are never served to a latency-enabled run.
	Latency bool

	// Trace, when non-nil, receives one cycle-timestamped event trace per
	// timed run (labelled "experiment/system@threads"), exportable as
	// Chrome trace_event JSON via TraceSink.WriteChrome.
	Trace *obs.TraceSink
	// TraceEvents is the per-strand trace ring capacity (<=0 selects the
	// obs default).
	TraceEvents int

	// Timeline, when non-nil, receives one windowed timeseries per timed
	// run (same labels as Trace), exportable as JSON or CSV via the sink.
	// Like Trace it forces inline serial execution and, per the
	// zero-perturbation contract, leaves every throughput byte unchanged.
	Timeline *timeseries.Sink
	// TimelineWindow is the window width in simulated cycles (<=0 selects
	// timeseries.DefaultWidth).
	TimelineWindow int64

	// Runner, when non-nil, executes experiment cells through the
	// host-parallel orchestrator: a worker pool with longest-expected-first
	// scheduling plus a content-addressed result cache. Nil runs cells
	// serially inline. Results are merged in submission order either way,
	// so parallel figures are byte-identical to serial ones.
	Runner *runner.Pool

	// Sched selects the strand scheduler for workload-driven cells:
	// SchedStep (the default) runs them on the continuation driver
	// (sim.Machine.RunStepped, no coroutine handoffs) whenever the cell's
	// machine design point and synchronization system support it;
	// SchedCoroutine forces the legacy goroutine driver everywhere. The
	// choice cannot change results — both drivers produce byte-identical
	// figures (pinned by the differential golden test) — so it deliberately
	// stays out of cell cache keys. The empty value defers to the
	// ROCKTM_SCHED environment variable, then to SchedStep.
	Sched string
}

// Scheduler names for Options.Sched / the ROCKTM_SCHED environment variable.
const (
	SchedStep      = "step"
	SchedCoroutine = "coroutine"
)

// stepSched reports whether the options ask for the continuation driver
// (individual cells still fall back when machine or system cannot step).
func (o Options) stepSched() bool { return o.Sched != SchedCoroutine }

// pool returns the pool cells should run on. Tracing and timeline capture
// force inline serial execution: a cache hit would produce no events, and
// the sink's deposit order must stay deterministic. (The timeline *figure*
// is exempt — its series ride inside the cell payloads, so it caches and
// parallelizes like any other experiment.)
func (o Options) pool() *runner.Pool {
	if o.Trace != nil || o.Timeline != nil {
		return nil
	}
	return o.Runner
}

// spec canonically identifies one cell of an experiment for the runner's
// scheduler and cache. cfg must be the exact machine configuration the
// cell will run under; params carries workload knobs (mixes, key ranges,
// skew distributions, policy weights) that the machine config cannot see.
// Latency capture folds in as the "lat" param: a latency-enabled cell has
// a different payload (the Point carries a digest), so it must never
// alias a latency-less cache entry.
func (o Options) spec(experiment, system string, threads int, cfg sim.Config, params map[string]string) runner.Spec {
	if o.Latency {
		p := map[string]string{"lat": "1"}
		for k, v := range params {
			p[k] = v
		}
		params = p
	}
	return runner.Spec{
		Experiment: experiment,
		System:     system,
		Threads:    threads,
		Ops:        o.OpsPerThread,
		Seed:       o.Seed,
		SimDigest:  cfg.Digest(),
		Params:     params,
	}
}

// latRecorder returns a fresh per-run latency recorder when capture is
// enabled, nil otherwise. One recorder serves all strands of a run: the
// machine baton serializes strand execution, so sharing is race-free and
// the merge is free.
func (o Options) latRecorder() *obs.LatencyRecorder {
	if !o.Latency {
		return nil
	}
	return obs.NewLatencyRecorder()
}

// pointCell is the common experiment cell: one deterministic machine
// build+run yielding one figure point.
type pointCell = runner.Cell[Point]

// runPoints executes point-producing cells through the configured pool
// (or inline) and returns them in submission order.
func runPoints(o Options, cells []pointCell) ([]Point, error) {
	return runner.RunCells(o.pool(), cells)
}

// curveCells assembles a figure's curves from a flat cell slice laid out
// curve-major: cells[c*len(threads)+t] is curve c at threads[t].
func curveCells(o Options, names []string, threads []int, cells []pointCell) ([]Curve, error) {
	points, err := runPoints(o, cells)
	if err != nil {
		return nil, err
	}
	curves := make([]Curve, len(names))
	for ci, name := range names {
		curves[ci] = Curve{Name: name, Points: points[ci*len(threads) : (ci+1)*len(threads)]}
	}
	return curves, nil
}

func itoa(v int) string { return strconv.Itoa(v) }

// startTrace attaches a tracer to m when tracing is requested.
func (o Options) startTrace(m *sim.Machine) *obs.Tracer {
	if o.Trace == nil {
		return nil
	}
	return m.StartTrace(o.TraceEvents)
}

// endTrace deposits a finished run's events into the sink.
func (o Options) endTrace(tr *obs.Tracer, label string) {
	if tr != nil && o.Trace != nil {
		o.Trace.Add(label, tr.FreqGHz(), tr.Merged())
	}
}

// attachWindows builds a windowed recorder at the given width (<=0 the
// default), keyed to the machine's clock frequency, and attaches it to
// every strand's hook points.
func attachWindows(m *sim.Machine, width int64) *timeseries.Recorder {
	rec := timeseries.NewRecorder(width)
	rec.SetFreqGHz(m.Config().Costs.FreqGHz)
	m.AttachEventSink(rec)
	return rec
}

// startWindows attaches a fresh windowed recorder when timeline capture is
// requested, nil otherwise. Call sites must guard Driver.Observe with a
// nil check (a nil *Recorder inside a non-nil interface would be called).
func (o Options) startWindows(m *sim.Machine) *timeseries.Recorder {
	if o.Timeline == nil {
		return nil
	}
	return attachWindows(m, o.TimelineWindow)
}

// endWindows deposits a finished run's window series into the sink.
func (o Options) endWindows(rec *timeseries.Recorder, label string) {
	if rec != nil && o.Timeline != nil {
		o.Timeline.Add(label, rec.Series())
	}
}

// Defaults fills unset fields.
func (o Options) Defaults() Options {
	if len(o.Threads) == 0 {
		o.Threads = DefaultThreads
	}
	if o.OpsPerThread == 0 {
		o.OpsPerThread = 4000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Sched == "" {
		o.Sched = os.Getenv("ROCKTM_SCHED")
	}
	if o.Sched == "" {
		o.Sched = SchedStep
	}
	return o
}

// Point is one measurement.
type Point struct {
	Threads    int
	OpsPerUsec float64
	// Extra carries per-point annotations (retry fraction, lock fraction,
	// dominant CPS value) surfaced in the notes.
	Extra string
	// Lat is the per-operation simulated-cycle latency digest when the
	// cell recorded one (nil otherwise; absent points render exactly the
	// pre-latency byte layout, which is what keeps the legacy golden
	// digests stable).
	Lat *obs.LatencySummary `json:",omitempty"`
}

// point assembles the standard figure point from one run's Result — the
// single throughput/annotation/latency path every figure shares.
func point(res workload.Result, threads int) Point {
	return Point{Threads: threads, OpsPerUsec: res.Throughput(), Extra: res.Summary(), Lat: res.Lat}
}

// Curve is one line of a figure.
type Curve struct {
	Name   string
	Points []Point
}

// Figure is a reconstructed figure or table.
type Figure struct {
	Title  string
	YLabel string
	Curves []Curve
	Notes  []string
}

// hasLatency reports whether any point carries a latency digest.
func (f *Figure) hasLatency() bool {
	for _, c := range f.Curves {
		for _, p := range c.Points {
			if p.Lat != nil {
				return true
			}
		}
	}
	return false
}

// xAxis collects the distinct thread counts in first-appearance order.
func (f *Figure) xAxis() []int {
	xs := []int{}
	seen := map[int]bool{}
	for _, c := range f.Curves {
		for _, p := range c.Points {
			if !seen[p.Threads] {
				seen[p.Threads] = true
				xs = append(xs, p.Threads)
			}
		}
	}
	return xs
}

// renderTable writes one aligned thread × curve table, formatting each
// point through value ("-" for missing cells).
func (f *Figure) renderTable(w io.Writer, value func(Point) string) {
	xs := f.xAxis()
	header := []string{"threads"}
	for _, c := range f.Curves {
		header = append(header, c.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{fmt.Sprintf("%d", x)}
		for _, c := range f.Curves {
			cell := "-"
			for _, p := range c.Points {
				if p.Threads == x {
					cell = value(p)
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		var sb strings.Builder
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			sb.WriteString(cell)
		}
		fmt.Fprintln(w, sb.String())
		if ri == 0 {
			fmt.Fprintln(w, strings.Repeat("-", len(sb.String())))
		}
	}
}

// latCell formats one latency percentile cell.
func latCell(l *obs.LatencySummary, pick func(*obs.LatencySummary) int64) string {
	if l == nil {
		return "-"
	}
	return strconv.FormatInt(pick(l), 10)
}

// Render writes the figure as an aligned table (plus per-percentile
// latency tables when the experiment recorded operation latencies).
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", f.Title)
	if f.YLabel != "" {
		fmt.Fprintf(w, "   (%s)\n", f.YLabel)
	}
	f.renderTable(w, func(p Point) string { return fmt.Sprintf("%.3f", p.OpsPerUsec) })
	if f.hasLatency() {
		percentiles := []struct {
			label string
			pick  func(*obs.LatencySummary) int64
		}{
			{"p50", func(l *obs.LatencySummary) int64 { return l.P50 }},
			{"p99.9", func(l *obs.LatencySummary) int64 { return l.P999 }},
		}
		for _, pc := range percentiles {
			fmt.Fprintf(w, "-- operation latency %s (simulated cycles) --\n", pc.label)
			pick := pc.pick
			f.renderTable(w, func(p Point) string { return latCell(p.Lat, pick) })
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the figure in machine-readable form. Latency-carrying points
// append four percentile columns (p50, p90, p99, p99.9 simulated cycles);
// latency-less rows keep the exact legacy five-column layout.
func (f *Figure) CSV(w io.Writer) {
	for _, c := range f.Curves {
		for _, p := range c.Points {
			if p.Lat != nil {
				fmt.Fprintf(w, "%s,%s,%d,%.4f,%s,%d,%d,%d,%d\n",
					f.Title, c.Name, p.Threads, p.OpsPerUsec, p.Extra,
					p.Lat.P50, p.Lat.P90, p.Lat.P99, p.Lat.P999)
				continue
			}
			fmt.Fprintf(w, "%s,%s,%d,%.4f,%s\n", f.Title, c.Name, p.Threads, p.OpsPerUsec, p.Extra)
		}
	}
}

// jsonPoint / jsonCurve / jsonFigure mirror the figure for -json output.
// The envelope fields ("kind", "title", "notes") are shared with the
// attribution report's JSON form so downstream tooling can switch on
// "kind" and treat both uniformly.
type jsonPoint struct {
	Threads    int                 `json:"threads"`
	OpsPerUsec float64             `json:"ops_per_usec"`
	Extra      string              `json:"extra,omitempty"`
	Lat        *obs.LatencySummary `json:"latency,omitempty"`
}

type jsonCurve struct {
	Name   string      `json:"name"`
	Points []jsonPoint `json:"points"`
}

type jsonFigure struct {
	Kind   string      `json:"kind"`
	Title  string      `json:"title"`
	YLabel string      `json:"ylabel,omitempty"`
	Curves []jsonCurve `json:"curves"`
	Notes  []string    `json:"notes,omitempty"`
}

// JSON writes the figure as one indented JSON document.
func (f *Figure) JSON(w io.Writer) error {
	doc := jsonFigure{Kind: "figure", Title: f.Title, YLabel: f.YLabel, Notes: f.Notes}
	for _, c := range f.Curves {
		jc := jsonCurve{Name: c.Name, Points: make([]jsonPoint, 0, len(c.Points))}
		for _, p := range c.Points {
			jc.Points = append(jc.Points, jsonPoint{Threads: p.Threads, OpsPerUsec: p.OpsPerUsec, Extra: p.Extra, Lat: p.Lat})
		}
		doc.Curves = append(doc.Curves, jc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}

// ValueAt returns curve name's throughput at the given thread count.
func (f *Figure) ValueAt(name string, threads int) (float64, bool) {
	for _, c := range f.Curves {
		if c.Name != name {
			continue
		}
		for _, p := range c.Points {
			if p.Threads == threads {
				return p.OpsPerUsec, true
			}
		}
	}
	return 0, false
}

// LatencyAt returns curve name's latency digest at the given thread count.
func (f *Figure) LatencyAt(name string, threads int) (*obs.LatencySummary, bool) {
	for _, c := range f.Curves {
		if c.Name != name {
			continue
		}
		for _, p := range c.Points {
			if p.Threads == threads && p.Lat != nil {
				return p.Lat, true
			}
		}
	}
	return nil, false
}

// summarizeStats renders the per-point annotation string; kept as a thin
// alias so call sites outside the workload.Result path (MSF, profile)
// share the one implementation in internal/workload.
func summarizeStats(st *core.Stats) string { return workload.StatsSummary(st) }

var _ = cps.COH // keep the import for documentation references

// machineCfg is the standard experiment machine configuration; cells
// derive their cache-key digests from it, so it must be the exact config
// machineFor instantiates.
func machineCfg(threads int, memWords int, seed uint64) sim.Config {
	cfg := sim.DefaultConfig(threads)
	cfg.MemWords = memWords
	cfg.Seed = seed
	cfg.MaxCycles = 1 << 46
	return cfg
}

// machineFor builds the standard experiment machine.
func machineFor(threads int, memWords int, seed uint64) *sim.Machine {
	return sim.New(machineCfg(threads, memWords, seed))
}
