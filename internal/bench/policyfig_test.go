package bench

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"testing"

	"rocktm/internal/runner"
)

// policyGoldenDigest pins the rendered bytes of a small policy-ablation
// matrix (3 policies × 6 fault profiles × 2 thread counts) under a fixed
// seed: the policy engine's decisions, the fault injector's schedule and
// the runner-pool merge must all replay bit-for-bit. Regenerate (only for
// an intended policy or fault-model change) with:
//
//	BENCH_GOLDEN_REGEN=1 go test ./internal/bench -run TestPolicyFigure
const policyGoldenDigest = "674c8ee536efea0c78911d68cd97e87f"

func renderPolicyFigure(o Options) ([]byte, error) {
	f, err := PolicyFigure(o)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	f.Render(&buf)
	f.CSV(&buf)
	return buf.Bytes(), nil
}

// TestPolicyFigureDeterministic runs the ablation three ways — serial,
// serial again, and through a parallel runner pool — and requires
// byte-identical output each time, then checks it against the pinned
// golden digest.
func TestPolicyFigureDeterministic(t *testing.T) {
	o := Options{Threads: []int{1, 2}, OpsPerThread: 200, Seed: 1}
	first, err := renderPolicyFigure(o)
	if err != nil {
		t.Fatal(err)
	}
	again, err := renderPolicyFigure(o)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again) {
		t.Fatal("same-seed serial reruns diverged")
	}
	op := o
	op.Runner = &runner.Pool{Workers: 4}
	parallel, err := renderPolicyFigure(op)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, parallel) {
		t.Fatal("runner-pool output differs from serial output")
	}
	sum := sha256.Sum256(first)
	digest := hex.EncodeToString(sum[:16])
	if os.Getenv("BENCH_GOLDEN_REGEN") != "" {
		fmt.Printf("\tpolicyGoldenDigest = %q\n", digest)
		t.Fatal("BENCH_GOLDEN_REGEN set: digest printed above; paste and unset")
	}
	if digest != policyGoldenDigest {
		t.Errorf("policy ablation bytes changed: digest %s, pinned %s\n--- got output ---\n%s",
			digest, policyGoldenDigest, first)
	}
}
