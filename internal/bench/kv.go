package bench

import (
	"fmt"

	"rocktm/internal/core"
	"rocktm/internal/hashtable"
	"rocktm/internal/obs/timeseries"
	"rocktm/internal/rbtree"
	"rocktm/internal/runner"
	"rocktm/internal/sim"
	"rocktm/internal/workload"
)

// kvStructure is the surface the hash-table and red-black-tree experiments
// share: complete operations under a synchronization system. NewSession
// returns a per-strand operation context whose steady-state host cost is
// allocation-free; it performs the identical simulated operations as the
// per-call XxxOp wrappers.
type kvStructure interface {
	InsertOp(sys core.System, s *sim.Strand, key uint64, val sim.Word) bool
	DeleteOp(sys core.System, s *sim.Strand, key uint64) bool
	LookupOp(sys core.System, s *sim.Strand, key uint64) (sim.Word, bool)
	NewSession(sys core.System, s *sim.Strand) kvSession
}

// kvSession is the per-strand view of a kvStructure. The StepXxx methods
// arm the same operations as continuation machines for the stepped
// scheduler; they may only be called when the session's system implements
// core.StepSystem.
type kvSession interface {
	Insert(key uint64, val sim.Word) bool
	Delete(key uint64) bool
	Lookup(key uint64) (sim.Word, bool)

	StepInsert(key uint64, val sim.Word) core.StepBlock
	StepDelete(key uint64) core.StepBlock
	StepLookup(key uint64) core.StepBlock
}

// kvConfig describes one key-value experiment cell.
type kvConfig struct {
	keyRange  int
	pctLookup int // percentage of lookups; the rest split 50/50 insert/delete
	memWords  int
	build     func(m *sim.Machine, keyRange int) kvStructure
	validate  func(st kvStructure, mem *sim.Memory) error

	// keys optionally overrides the key distribution; the zero value means
	// the legacy uniform draw over [0, keyRange). Skewed figures (the tail
	// experiment) set it to a zipfian or hotspot distribution.
	keys workload.Keys
	// arrival optionally switches the drivers to an open-loop arrival
	// process; the zero value is the legacy closed loop.
	arrival workload.Arrival
}

// spec is the declarative form of the kv driver loop: key drawn first
// (uniform over the key range unless overridden), then the lookup/insert/
// delete roll out of 100 — exactly the legacy loop's RNG sequence.
func (cfg kvConfig) spec() workload.Spec {
	keys := cfg.keys
	if keys.Dist == workload.KeyNone {
		keys = workload.Uniform(cfg.keyRange)
	}
	sp := workload.KVSpec(keys, cfg.pctLookup)
	sp.Arrival = cfg.arrival
	return sp
}

// runKV measures one (system, threads) cell: prepopulate with half the key
// range, then run opsPerThread operations per thread through the shared
// workload driver. When the options carry a timeline sink, the run's
// window series is deposited under the same label as its event trace.
func runKV(o Options, label string, cfg kvConfig, sb SysBuilder, threads int) (Point, error) {
	p, series, err := runKVSeries(o, label, cfg, sb, threads, o.Timeline != nil, o.TimelineWindow)
	if err == nil && o.Timeline != nil {
		o.Timeline.Add(fmt.Sprintf("%s/%s@%dT", label, sb.Name, threads), series)
	}
	return p, err
}

// runKVSeries is runKV's core with explicit windowed-capture control:
// when capture is set, a timeseries recorder at the given width observes
// the run (hook-point events via the machine sink, per-op latencies via
// the driver) and the resulting series is returned alongside the point.
// The recorder follows the zero-perturbation contract, so the point is
// bit-identical with capture on or off (pinned by timeline_test.go).
func runKVSeries(o Options, label string, cfg kvConfig, sb SysBuilder, threads int, capture bool, width int64) (Point, timeseries.Series, error) {
	m := machineFor(threads, cfg.memWords, o.Seed)
	defer m.Recycle()
	st := cfg.build(m, cfg.keyRange)
	sys := sb.Build(m)
	wl := workload.MustCompile(cfg.spec())
	lat := o.latRecorder()
	tr := o.startTrace(m)
	var rec *timeseries.Recorder
	if capture {
		rec = attachWindows(m, width)
	}
	if o.stepSched() && m.CanRunStepped() && core.CanStep(sys) {
		m.RunStepped(func(s *sim.Strand) sim.StepFn {
			ses := st.NewSession(sys, s)
			d := wl.Driver(s, lat)
			if rec != nil {
				d.Observe(rec)
			}
			return (&d).RunStepped(o.OpsPerThread, func(_, op int, key uint64) core.StepBlock {
				switch op {
				case workload.OpLookup:
					return ses.StepLookup(key)
				case workload.OpInsert:
					return ses.StepInsert(key, 1)
				default:
					return ses.StepDelete(key)
				}
			})
		})
	} else {
		m.Run(func(s *sim.Strand) {
			ses := st.NewSession(sys, s)
			d := wl.Driver(s, lat)
			if rec != nil {
				d.Observe(rec)
			}
			d.Run(o.OpsPerThread, func(_, op int, key uint64) {
				switch op {
				case workload.OpLookup:
					ses.Lookup(key)
				case workload.OpInsert:
					ses.Insert(key, 1)
				default:
					ses.Delete(key)
				}
			})
		})
	}
	o.endTrace(tr, fmt.Sprintf("%s/%s@%dT", label, sb.Name, threads))
	var series timeseries.Series
	if rec != nil {
		series = rec.Series()
	}
	if cfg.validate != nil {
		if err := cfg.validate(st, m.Mem()); err != nil {
			return Point{}, series, fmt.Errorf("%s/%d threads: %w", sb.Name, threads, err)
		}
	}
	res := workload.NewResult(uint64(threads*o.OpsPerThread), m.ElapsedSeconds(), sys.Stats(), lat)
	return point(res, threads), series, nil
}

// kvSpec identifies one key-value cell for the runner's cache: the exact
// machine configuration plus the workload knobs the config cannot see. The
// legacy params ("keyrange", "lookup") are kept verbatim so pre-refactor
// cache entries still key identically; new dimensions (skewed keys,
// open-loop arrivals) append only when active.
func kvSpec(o Options, name string, cfg kvConfig, system string, threads int) runner.Spec {
	params := map[string]string{
		"keyrange": itoa(cfg.keyRange),
		"lookup":   itoa(cfg.pctLookup),
	}
	if cfg.keys.Dist != workload.KeyNone {
		params["skew"] = cfg.keys.String()
	}
	if cfg.arrival.MeanGap > 0 {
		params["arrival"] = cfg.arrival.String()
	}
	return o.spec(name, system, threads, machineCfg(threads, cfg.memWords, o.Seed), params)
}

// kvFigure sweeps all systems across the thread axis. Each (system,
// threads) pair is one independent job emitted through the runner; the
// serial fallback executes the same cells inline in the same order.
func kvFigure(o Options, name, title string, cfg kvConfig) (*Figure, error) {
	fig := &Figure{Title: title, YLabel: "throughput (ops/usec), simulated"}
	systems := tmSystems()
	var names []string
	var cells []pointCell
	for _, sb := range systems {
		names = append(names, sb.Name)
		for _, th := range o.Threads {
			sb, th := sb, th
			cells = append(cells, pointCell{
				Spec:    kvSpec(o, name, cfg, sb.Name, th),
				Compute: func() (Point, error) { return runKV(o, title, cfg, sb, th) },
			})
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	for _, curve := range curves {
		if last := curve.Points[len(curve.Points)-1]; last.Extra != "" {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s @%d threads: %s", curve.Name, last.Threads, last.Extra))
		}
	}
	return fig, nil
}

// htKV and rbKV adapt the concrete structures to kvStructure: Go interfaces
// have no covariant returns, so the concrete NewSession (returning *Session)
// needs a one-line wrapper to satisfy the interface.
type htKV struct{ *hashtable.Table }

func (t htKV) NewSession(sys core.System, s *sim.Strand) kvSession {
	return t.Table.NewSession(sys, s)
}

type rbKV struct{ *rbtree.Tree }

func (t rbKV) NewSession(sys core.System, s *sim.Strand) kvSession {
	return t.Tree.NewSession(sys, s)
}

func hashtableKV(buckets int) func(m *sim.Machine, keyRange int) kvStructure {
	return func(m *sim.Machine, keyRange int) kvStructure {
		t := hashtable.New(m, buckets, keyRange+2*m.Config().Strands+64)
		t.Prepopulate(m.Mem(), workload.PrepopHalf(keyRange), 1)
		return htKV{t}
	}
}

func rbtreeKV(m *sim.Machine, keyRange int) kvStructure {
	t := rbtree.New(m, keyRange+2*m.Config().Strands+64)
	t.Prepopulate(m.Mem(), workload.PrepopHalfShuffled(keyRange, 7), 1)
	return rbKV{t}
}

// Fig1a reconstructs Figure 1(a): hash table, 2^17 buckets, 50% inserts /
// 50% deletes, key range 256.
func Fig1a(o Options) (*Figure, error) {
	o = o.Defaults()
	return kvFigure(o, "fig1a", "Figure 1(a) HashTable keyrange=256, 0% lookups", kvConfig{
		keyRange:  256,
		pctLookup: 0,
		memWords:  1 << 23,
		build:     hashtableKV(1 << 17),
	})
}

// Fig1b reconstructs Figure 1(b): key range 128,000 — the active part of
// the table no longer fits in the L1, leveling the playing field.
func Fig1b(o Options) (*Figure, error) {
	o = o.Defaults()
	return kvFigure(o, "fig1b", "Figure 1(b) HashTable keyrange=128000, 0% lookups", kvConfig{
		keyRange:  128000,
		pctLookup: 0,
		memWords:  1 << 24,
		build:     hashtableKV(1 << 17),
	})
}

// Fig1ReadOnly reconstructs the 100%-lookup observation quoted in Section
// 5's text (data not shown in the paper's graphs).
func Fig1ReadOnly(o Options) (*Figure, error) {
	o = o.Defaults()
	return kvFigure(o, "fig1ro", "Section 5 (text) HashTable keyrange=256, 100% lookups", kvConfig{
		keyRange:  256,
		pctLookup: 100,
		memWords:  1 << 23,
		build:     hashtableKV(1 << 17),
	})
}

// Fig2a reconstructs Figure 2(a): red-black tree, 128 keys, 100% reads.
func Fig2a(o Options) (*Figure, error) {
	o = o.Defaults()
	return kvFigure(o, "fig2a", "Figure 2(a) Red-Black Tree 128 keys, 100% reads", kvConfig{
		keyRange:  128,
		pctLookup: 100,
		memWords:  1 << 22,
		build:     rbtreeKV,
	})
}

// Fig2b reconstructs Figure 2(b): 2048 keys, 96% reads / 2% inserts / 2%
// deletes — the case where PhTM can fall behind a good STM.
func Fig2b(o Options) (*Figure, error) {
	o = o.Defaults()
	return kvFigure(o, "fig2b", "Figure 2(b) Red-Black Tree 2048 keys, 96% reads 2% ins 2% del", kvConfig{
		keyRange:  2048,
		pctLookup: 96,
		memWords:  1 << 22,
		build:     rbtreeKV,
	})
}
