package bench

import (
	"fmt"

	"rocktm/internal/core"
	"rocktm/internal/hashtable"
	"rocktm/internal/rbtree"
	"rocktm/internal/runner"
	"rocktm/internal/sim"
)

// kvStructure is the surface the hash-table and red-black-tree experiments
// share: complete operations under a synchronization system. NewSession
// returns a per-strand operation context whose steady-state host cost is
// allocation-free; it performs the identical simulated operations as the
// per-call XxxOp wrappers.
type kvStructure interface {
	InsertOp(sys core.System, s *sim.Strand, key uint64, val sim.Word) bool
	DeleteOp(sys core.System, s *sim.Strand, key uint64) bool
	LookupOp(sys core.System, s *sim.Strand, key uint64) (sim.Word, bool)
	NewSession(sys core.System, s *sim.Strand) kvSession
}

// kvSession is the per-strand view of a kvStructure.
type kvSession interface {
	Insert(key uint64, val sim.Word) bool
	Delete(key uint64) bool
	Lookup(key uint64) (sim.Word, bool)
}

// kvConfig describes one key-value experiment cell.
type kvConfig struct {
	keyRange  int
	pctLookup int // percentage of lookups; the rest split 50/50 insert/delete
	memWords  int
	build     func(m *sim.Machine, keyRange int) kvStructure
	validate  func(st kvStructure, mem *sim.Memory) error
}

// runKV measures one (system, threads) cell: prepopulate with half the key
// range, then run opsPerThread random operations per thread.
func runKV(o Options, label string, cfg kvConfig, sb SysBuilder, threads int) (Point, error) {
	m := machineFor(threads, cfg.memWords, o.Seed)
	st := cfg.build(m, cfg.keyRange)
	sys := sb.Build(m)
	tr := o.startTrace(m)
	m.Run(func(s *sim.Strand) {
		ses := st.NewSession(sys, s)
		for i := 0; i < o.OpsPerThread; i++ {
			key := uint64(s.RandIntn(cfg.keyRange))
			r := s.RandIntn(100)
			switch {
			case r < cfg.pctLookup:
				ses.Lookup(key)
			case r < cfg.pctLookup+(100-cfg.pctLookup)/2:
				ses.Insert(key, 1)
			default:
				ses.Delete(key)
			}
		}
	})
	o.endTrace(tr, fmt.Sprintf("%s/%s@%dT", label, sb.Name, threads))
	if cfg.validate != nil {
		if err := cfg.validate(st, m.Mem()); err != nil {
			return Point{}, fmt.Errorf("%s/%d threads: %w", sb.Name, threads, err)
		}
	}
	res := runResult{
		ops:     uint64(threads * o.OpsPerThread),
		seconds: m.ElapsedSeconds(),
		stats:   sys.Stats(),
	}
	return Point{Threads: threads, OpsPerUsec: res.throughput(), Extra: summarizeStats(res.stats)}, nil
}

// kvSpec identifies one key-value cell for the runner's cache: the exact
// machine configuration plus the workload knobs the config cannot see.
func kvSpec(o Options, name string, cfg kvConfig, system string, threads int) runner.Spec {
	return o.spec(name, system, threads, machineCfg(threads, cfg.memWords, o.Seed), map[string]string{
		"keyrange": itoa(cfg.keyRange),
		"lookup":   itoa(cfg.pctLookup),
	})
}

// kvFigure sweeps all systems across the thread axis. Each (system,
// threads) pair is one independent job emitted through the runner; the
// serial fallback executes the same cells inline in the same order.
func kvFigure(o Options, name, title string, cfg kvConfig) (*Figure, error) {
	fig := &Figure{Title: title, YLabel: "throughput (ops/usec), simulated"}
	systems := tmSystems()
	var names []string
	var cells []pointCell
	for _, sb := range systems {
		names = append(names, sb.Name)
		for _, th := range o.Threads {
			sb, th := sb, th
			cells = append(cells, pointCell{
				Spec:    kvSpec(o, name, cfg, sb.Name, th),
				Compute: func() (Point, error) { return runKV(o, title, cfg, sb, th) },
			})
		}
	}
	curves, err := curveCells(o, names, o.Threads, cells)
	if err != nil {
		return nil, err
	}
	fig.Curves = curves
	for _, curve := range curves {
		if last := curve.Points[len(curve.Points)-1]; last.Extra != "" {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s @%d threads: %s", curve.Name, last.Threads, last.Extra))
		}
	}
	return fig, nil
}

// htKV and rbKV adapt the concrete structures to kvStructure: Go interfaces
// have no covariant returns, so the concrete NewSession (returning *Session)
// needs a one-line wrapper to satisfy the interface.
type htKV struct{ *hashtable.Table }

func (t htKV) NewSession(sys core.System, s *sim.Strand) kvSession {
	return t.Table.NewSession(sys, s)
}

type rbKV struct{ *rbtree.Tree }

func (t rbKV) NewSession(sys core.System, s *sim.Strand) kvSession {
	return t.Tree.NewSession(sys, s)
}

func hashtableKV(buckets int) func(m *sim.Machine, keyRange int) kvStructure {
	return func(m *sim.Machine, keyRange int) kvStructure {
		t := hashtable.New(m, buckets, keyRange+2*m.Config().Strands+64)
		var keys []uint64
		for k := 0; k < keyRange; k += 2 {
			keys = append(keys, uint64(k))
		}
		t.Prepopulate(m.Mem(), keys, 1)
		return htKV{t}
	}
}

func rbtreeKV(m *sim.Machine, keyRange int) kvStructure {
	t := rbtree.New(m, keyRange+2*m.Config().Strands+64)
	t.Prepopulate(m.Mem(), shuffledEvenKeys(keyRange, 7), 1)
	return rbKV{t}
}

// shuffledEvenKeys returns every second key in [0, keyRange) in a
// deterministic shuffled order. Prepopulating a red-black tree in
// ascending order is pathological in a way the paper's random workloads
// are not: with sequential node allocation the tree's upper spine lands on
// node indices 2^k-1, aliasing the whole hot path into one L1 set.
func shuffledEvenKeys(keyRange int, seed uint64) []uint64 {
	keys := make([]uint64, 0, keyRange/2)
	for k := 0; k < keyRange; k += 2 {
		keys = append(keys, uint64(k))
	}
	state := seed
	for i := len(keys) - 1; i > 0; i-- {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		j := int(state % uint64(i+1))
		keys[i], keys[j] = keys[j], keys[i]
	}
	return keys
}

// Fig1a reconstructs Figure 1(a): hash table, 2^17 buckets, 50% inserts /
// 50% deletes, key range 256.
func Fig1a(o Options) (*Figure, error) {
	o = o.Defaults()
	return kvFigure(o, "fig1a", "Figure 1(a) HashTable keyrange=256, 0% lookups", kvConfig{
		keyRange:  256,
		pctLookup: 0,
		memWords:  1 << 23,
		build:     hashtableKV(1 << 17),
	})
}

// Fig1b reconstructs Figure 1(b): key range 128,000 — the active part of
// the table no longer fits in the L1, leveling the playing field.
func Fig1b(o Options) (*Figure, error) {
	o = o.Defaults()
	return kvFigure(o, "fig1b", "Figure 1(b) HashTable keyrange=128000, 0% lookups", kvConfig{
		keyRange:  128000,
		pctLookup: 0,
		memWords:  1 << 24,
		build:     hashtableKV(1 << 17),
	})
}

// Fig1ReadOnly reconstructs the 100%-lookup observation quoted in Section
// 5's text (data not shown in the paper's graphs).
func Fig1ReadOnly(o Options) (*Figure, error) {
	o = o.Defaults()
	return kvFigure(o, "fig1ro", "Section 5 (text) HashTable keyrange=256, 100% lookups", kvConfig{
		keyRange:  256,
		pctLookup: 100,
		memWords:  1 << 23,
		build:     hashtableKV(1 << 17),
	})
}

// Fig2a reconstructs Figure 2(a): red-black tree, 128 keys, 100% reads.
func Fig2a(o Options) (*Figure, error) {
	o = o.Defaults()
	return kvFigure(o, "fig2a", "Figure 2(a) Red-Black Tree 128 keys, 100% reads", kvConfig{
		keyRange:  128,
		pctLookup: 100,
		memWords:  1 << 22,
		build:     rbtreeKV,
	})
}

// Fig2b reconstructs Figure 2(b): 2048 keys, 96% reads / 2% inserts / 2%
// deletes — the case where PhTM can fall behind a good STM.
func Fig2b(o Options) (*Figure, error) {
	o = o.Defaults()
	return kvFigure(o, "fig2b", "Figure 2(b) Red-Black Tree 2048 keys, 96% reads 2% ins 2% del", kvConfig{
		keyRange:  2048,
		pctLookup: 96,
		memWords:  1 << 22,
		build:     rbtreeKV,
	})
}
