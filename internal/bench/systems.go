package bench

import (
	"rocktm/internal/core"
	"rocktm/internal/hytm"
	"rocktm/internal/locktm"
	"rocktm/internal/phtm"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
	"rocktm/internal/stm/tl2"
	"rocktm/internal/tle"
)

// SysBuilder constructs a fresh synchronization system bound to a machine;
// each (system, thread-count) experiment cell gets its own machine and
// system so statistics and caches start cold and runs stay independent.
type SysBuilder struct {
	Name  string
	Build func(m *sim.Machine) core.System
}

// Figure 1/2's six systems, in the paper's legend order.
func tmSystems() []SysBuilder {
	return []SysBuilder{
		{"phtm", func(m *sim.Machine) core.System {
			s := phtm.New(m, sky.New(m), phtm.DefaultConfig())
			return s
		}},
		{"phtm-tl2", func(m *sim.Machine) core.System {
			s := phtm.New(m, tl2.New(m), phtm.DefaultConfig())
			s.SetName("phtm-tl2")
			return s
		}},
		{"hytm", func(m *sim.Machine) core.System {
			return hytm.New(sky.New(m), hytm.DefaultConfig())
		}},
		{"stm", func(m *sim.Machine) core.System {
			return sky.New(m)
		}},
		{"stm-tl2", func(m *sim.Machine) core.System {
			return tl2.New(m)
		}},
		{"one-lock", func(m *sim.Machine) core.System {
			return locktm.NewOneLock(m)
		}},
	}
}

// tleOverSpin builds the TLE system the C++ experiments use (fixed retry
// count, no CPS heuristics) over a single spinlock.
func tleOverSpin(m *sim.Machine, retries int) core.System {
	return tle.New("htm.oneLock", tle.SpinAdapter{L: locktm.NewSpinLock(m.Mem())}, tle.SimplePolicy(retries))
}

// tleOverRW builds TLE over a reader-writer lock.
func tleOverRW(m *sim.Machine, retries int) core.System {
	return tle.New("htm.rwLock", tle.RWAdapter{L: locktm.NewRWLock(m.Mem())}, tle.SimplePolicy(retries))
}
