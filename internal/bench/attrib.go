package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rocktm/internal/core"
	"rocktm/internal/cps"
	"rocktm/internal/hytm"
	"rocktm/internal/locktm"
	"rocktm/internal/obs"
	"rocktm/internal/phtm"
	"rocktm/internal/runner"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
	"rocktm/internal/tle"
	"rocktm/internal/workload"
)

// AttribRow is one (system, threads) cell of the abort-attribution report:
// the fold of that run's event trace (obs.Attribute) cross-checked against
// the unified metrics registry.
type AttribRow struct {
	System    string
	Threads   int
	Ops       uint64 // from the metrics registry ("<system>", "ops")
	Begins    uint64 // hardware transactions begun (trace)
	Commits   uint64 // hardware commits (trace)
	Aborts    uint64 // hardware aborts (trace)
	Fallbacks uint64 // falls to lock/software mode (trace)
	SWCommits uint64 // software commits (trace)
	AbortRate float64
	// CPS is the distribution of CPS register values over this cell's
	// aborts, descending by count.
	CPS []cps.Entry
}

// AttribReport is the Table-4-style abort-attribution breakdown: per CPS
// failure reason, per TM system, per thread count.
type AttribReport struct {
	Title string
	Rows  []AttribRow
	Notes []string
}

// attribSystems lists the hardware-transaction-using systems the
// attribution experiment traces. STM-only systems never set CPS bits, so
// they are omitted.
func attribSystems() []SysBuilder {
	return []SysBuilder{
		{"phtm", func(m *sim.Machine) core.System {
			return phtm.New(m, sky.New(m), phtm.DefaultConfig())
		}},
		{"hytm", func(m *sim.Machine) core.System {
			return hytm.New(sky.New(m), hytm.DefaultConfig())
		}},
		{"tle", func(m *sim.Machine) core.System {
			return tle.New("tle", tle.SpinAdapter{L: locktm.NewSpinLock(m.Mem())}, tle.DefaultPolicy())
		}},
	}
}

// attribCell is one attribution cell's cacheable payload: the row plus
// any per-cell consistency notes (kept together so a cache hit restores
// the full report, notes included).
type attribCell struct {
	Row   AttribRow `json:"row"`
	Notes []string  `json:"notes,omitempty"`
}

// AttributionReport runs the Figure 1(a) hash-table workload (key range
// 256, 0% lookups) under each hardware-capable system at every thread
// count, with tracing enabled, and folds each run's event stream into an
// abort-attribution row. The per-run registry snapshot supplies the ops
// column and a consistency cross-check against the trace. Cells are
// emitted through the runner like every figure: one independent job per
// (system, threads), merged in submission order.
func AttributionReport(o Options) (*AttribReport, error) {
	o = o.Defaults()
	cfg := kvConfig{
		keyRange:  256,
		pctLookup: 0,
		memWords:  1 << 23,
		build:     hashtableKV(1 << 17),
	}
	rep := &AttribReport{Title: "Abort attribution (Table 4 style): HashTable keyrange=256, 0% lookups"}
	var cells []runner.Cell[attribCell]
	for _, sb := range attribSystems() {
		for _, th := range o.Threads {
			sb, th := sb, th
			spec := kvSpec(o, "attrib", cfg, sb.Name, th)
			cells = append(cells, runner.Cell[attribCell]{
				Spec: spec,
				Compute: func() (attribCell, error) {
					m := machineFor(th, cfg.memWords, o.Seed)
					defer m.Recycle()
					st := cfg.build(m, cfg.keyRange)
					sys := sb.Build(m)
					reg := obs.NewRegistry()
					core.Publish(reg, sys)
					m.PublishMetrics(reg)
					tr := m.StartTrace(o.TraceEvents)
					// The 0%-lookup KVSpec (key, then a 50/50 insert/delete
					// roll out of 100) reproduces the legacy attribution
					// loop's RNG sequence exactly.
					wl := workload.MustCompile(cfg.spec())
					m.Run(func(s *sim.Strand) {
						ses := st.NewSession(sys, s)
						d := wl.Driver(s, nil)
						d.Run(o.OpsPerThread, func(_, op int, key uint64) {
							if op == workload.OpInsert {
								ses.Insert(key, 1)
							} else {
								ses.Delete(key)
							}
						})
					})
					events := tr.Merged()
					if o.Trace != nil {
						o.Trace.Add(fmt.Sprintf("attrib/%s@%dT", sb.Name, th), tr.FreqGHz(), events)
					}
					prof := obs.Attribute(events)
					snap := reg.Snapshot()
					ops, _ := snap.Counter(sys.Name(), "ops")
					out := attribCell{Row: AttribRow{
						System:    sb.Name,
						Threads:   th,
						Ops:       ops,
						Begins:    prof.Begins,
						Commits:   prof.Commits,
						Aborts:    prof.Aborts,
						Fallbacks: prof.Fallbacks,
						SWCommits: prof.SWCommits,
						AbortRate: prof.AbortRate(),
						CPS:       prof.Hist.Entries(),
					}}
					if d := tr.Dropped(); d > 0 {
						out.Notes = append(out.Notes,
							fmt.Sprintf("%s@%dT: trace ring dropped %d events; counts undercount", sb.Name, th, d))
					} else if simBegins, ok := snap.Counter("sim", "tx_begins"); ok && simBegins != prof.Begins {
						out.Notes = append(out.Notes,
							fmt.Sprintf("%s@%dT: registry tx_begins=%d disagrees with trace begins=%d", sb.Name, th, simBegins, prof.Begins))
					}
					return out, nil
				},
			})
		}
	}
	results, err := runner.RunCells(o.pool(), cells)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		rep.Rows = append(rep.Rows, res.Row)
		rep.Notes = append(rep.Notes, res.Notes...)
	}
	return rep, nil
}

// systems returns the distinct system names in row order.
func (r *AttribReport) systems() []string {
	var out []string
	seen := map[string]bool{}
	for _, row := range r.Rows {
		if !seen[row.System] {
			seen[row.System] = true
			out = append(out, row.System)
		}
	}
	return out
}

// renderAligned writes rows as an aligned table with a rule under the
// header (the same layout Figure.Render uses).
func renderAligned(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		var sb strings.Builder
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			sb.WriteString(cell)
		}
		fmt.Fprintln(w, sb.String())
		if ri == 0 {
			fmt.Fprintln(w, strings.Repeat("-", len(sb.String())))
		}
	}
}

// Render writes the report: one summary table, then a per-system matrix of
// abort counts by CPS value across the thread axis.
func (r *AttribReport) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", r.Title)
	rows := [][]string{{"system", "threads", "ops", "hw-begin", "hw-commit", "hw-abort", "abort%", "fallback", "sw-commit", "dominant-cps"}}
	for _, row := range r.Rows {
		dom := "-"
		if len(row.CPS) > 0 {
			dom = fmt.Sprintf("%s (%.0f%%)", row.CPS[0].Value, 100*row.CPS[0].Fraction)
		}
		rows = append(rows, []string{
			row.System,
			strconv.Itoa(row.Threads),
			strconv.FormatUint(row.Ops, 10),
			strconv.FormatUint(row.Begins, 10),
			strconv.FormatUint(row.Commits, 10),
			strconv.FormatUint(row.Aborts, 10),
			fmt.Sprintf("%.1f", 100*row.AbortRate),
			strconv.FormatUint(row.Fallbacks, 10),
			strconv.FormatUint(row.SWCommits, 10),
			dom,
		})
	}
	renderAligned(w, rows)
	for _, sysName := range r.systems() {
		fmt.Fprintf(w, "\n-- %s: aborts by CPS value x threads --\n", sysName)
		var cells []AttribRow
		for _, row := range r.Rows {
			if row.System == sysName {
				cells = append(cells, row)
			}
		}
		// Union of CPS values for this system, ordered by total count
		// descending (ties by ascending value) via a merged histogram.
		merged := cps.NewHistogram()
		for _, c := range cells {
			for _, e := range c.CPS {
				for i := uint64(0); i < e.Count; i++ {
					merged.Add(e.Value)
				}
			}
		}
		header := []string{"cps-value"}
		for _, c := range cells {
			header = append(header, fmt.Sprintf("%dT", c.Threads))
		}
		matrix := [][]string{header}
		for _, me := range merged.Entries() {
			line := []string{me.Value.String()}
			for _, c := range cells {
				n := uint64(0)
				for _, e := range c.CPS {
					if e.Value == me.Value {
						n = e.Count
					}
				}
				line = append(line, strconv.FormatUint(n, 10))
			}
			matrix = append(matrix, line)
		}
		if len(matrix) == 1 {
			fmt.Fprintln(w, "(no aborts recorded)")
			continue
		}
		renderAligned(w, matrix)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the report in machine-readable form: one "summary" line per
// cell followed by one "cps" line per observed CPS value.
func (r *AttribReport) CSV(w io.Writer) {
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s,%s,%d,summary,%d,%d,%d,%d,%d,%d,%.4f\n",
			r.Title, row.System, row.Threads,
			row.Ops, row.Begins, row.Commits, row.Aborts, row.Fallbacks, row.SWCommits, row.AbortRate)
		for _, e := range row.CPS {
			fmt.Fprintf(w, "%s,%s,%d,cps,%s,%d,%.4f\n",
				r.Title, row.System, row.Threads, e.Value, e.Count, e.Fraction)
		}
	}
}

// jsonAttribRow mirrors AttribRow for JSON output; CPS values render as
// their mnemonic strings ("COH", "SIZ|ST", ...).
type jsonAttribRow struct {
	System    string         `json:"system"`
	Threads   int            `json:"threads"`
	Ops       uint64         `json:"ops"`
	Begins    uint64         `json:"hw_begins"`
	Commits   uint64         `json:"hw_commits"`
	Aborts    uint64         `json:"hw_aborts"`
	Fallbacks uint64         `json:"fallbacks"`
	SWCommits uint64         `json:"sw_commits"`
	AbortRate float64        `json:"abort_rate"`
	CPS       []obs.CPSCount `json:"cps,omitempty"`
}

type jsonAttrib struct {
	Kind  string          `json:"kind"`
	Title string          `json:"title"`
	Rows  []jsonAttribRow `json:"rows"`
	Notes []string        `json:"notes,omitempty"`
}

// JSON writes the report as one indented JSON document, sharing the
// kind/title/notes envelope with Figure.JSON.
func (r *AttribReport) JSON(w io.Writer) error {
	doc := jsonAttrib{Kind: "attrib", Title: r.Title, Notes: r.Notes}
	for _, row := range r.Rows {
		jr := jsonAttribRow{
			System:    row.System,
			Threads:   row.Threads,
			Ops:       row.Ops,
			Begins:    row.Begins,
			Commits:   row.Commits,
			Aborts:    row.Aborts,
			Fallbacks: row.Fallbacks,
			SWCommits: row.SWCommits,
			AbortRate: row.AbortRate,
		}
		for _, e := range row.CPS {
			jr.CPS = append(jr.CPS, obs.CPSCount{Value: e.Value.String(), Count: e.Count, Fraction: e.Fraction})
		}
		doc.Rows = append(doc.Rows, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}
