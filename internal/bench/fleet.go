package bench

import (
	"fmt"
	"strconv"

	"rocktm/internal/obs/timeseries"
	"rocktm/internal/runner"
	"rocktm/internal/service"
	"rocktm/internal/workload"
)

// The fleet experiment: the E23/E24 single-machine tail machinery scaled
// out to the sharded service tier of internal/service. Each cell builds a
// fleet of `shards` independent machines running one TM system, offers it
// an open-loop diurnal request stream through a pluggable router with
// per-shard batching and a cross-shard 2PC fraction, and records
// fleet-wide request latency (queueing and coordination included) plus
// per-shard window series. The notes judge the top-shard-count fleet of
// every curve: per-shard SLO verdicts with burn rates, hot-shard
// imbalance, pathology findings, and 2PC commit/abort counts. E25 asks
// whether the E23 single-machine system ranking survives the move to a
// fleet — the scenarios are chosen so routing, not raw concurrency,
// decides the tail.

// fleetPoint is the fleet experiment's cell payload: the standard figure
// point (Threads carries the shard count — the experiment's x-axis) plus
// the per-shard evidence the notes are derived from. Everything survives
// the runner's canonical-JSON round trip byte-identically.
type fleetPoint struct {
	Point Point
	// ShardOps is each shard's completed single-op count (imbalance).
	ShardOps []uint64
	// Series is each shard's windowed timeseries, machine-cycle aligned.
	Series []timeseries.Series
	// Committed2PC and Aborted2PC count the cell's cross-shard outcomes.
	Committed2PC uint64
	Aborted2PC   uint64
}

// Fixed fleet-cell parameters. The offered load weak-scales: requests and
// arrival rate both grow with the shard count, so per-shard load is
// constant and the x-axis isolates coordination and routing effects.
const (
	fleetKeyRange = 1024
	fleetBuckets  = 1 << 9
	fleetMemWords = 1 << 21
	fleetStrands  = 4
	fleetBaseGap  = 1024.0
	fleetFailPct  = 5
)

// fleetShardAxis is the experiment's x-axis (shard counts).
func fleetShardAxis() []int { return []int{1, 2, 4} }

// fleetArrival is the cell's arrival process: a diurnal envelope (±60%
// around the base rate over a ~1M-cycle period) with the mean gap scaled
// down as shards scale up.
func fleetArrival(shards int) workload.Arrival {
	return workload.Diurnal(fleetBaseGap/float64(shards), 5, 1<<20, 0.6)
}

// fleetSLOs is the per-shard objective: p99.9 request latency — arrival
// to completion, through queueing, batching and any 2PC legs — within
// 32k cycles in 98% of windows. The bound sits between a healthy shard
// (batch deadline 4k + service) and a hot shard absorbing a zipfian storm.
func fleetSLOs() []timeseries.SLO {
	return []timeseries.SLO{{
		Name:       "shard-tail",
		Percentile: "p99.9",
		MaxCycles:  32768,
		TargetFrac: 0.98,
		MinOps:     8,
	}}
}

// fleetScenario is one skew × router combination.
type fleetScenario struct {
	name   string
	keys   workload.Keys
	router string
}

// fleetScenarios is the skew/router axis: the uniform baseline, the
// zipfian storm on the oblivious hash router, and the same storm on the
// hot-shard-aware router that splits the top ranks.
func fleetScenarios() []fleetScenario {
	return []fleetScenario{
		{"uniform", workload.Uniform(fleetKeyRange), "hash"},
		{"zipf", workload.Zipfian(fleetKeyRange, 0.99), "hash"},
		{"zipf/hot", workload.Zipfian(fleetKeyRange, 0.99), "hot"},
	}
}

// runFleet executes one fleet cell.
func runFleet(o Options, scenario fleetScenario, sb SysBuilder, shards, crossPct int, width int64) (fleetPoint, error) {
	router, err := service.NewRouter(scenario.router, shards, fleetKeyRange)
	if err != nil {
		return fleetPoint{}, err
	}
	f, err := service.New(service.Config{
		Shards:       shards,
		Strands:      fleetStrands,
		KeyRange:     fleetKeyRange,
		Buckets:      fleetBuckets,
		MemWords:     fleetMemWords,
		Seed:         o.Seed,
		System:       sb.Build,
		Router:       router,
		CoordFailPct: fleetFailPct,
		Window:       width,
	})
	if err != nil {
		return fleetPoint{}, err
	}
	defer f.Recycle()
	res, err := f.Run(service.LoadSpec{
		Requests:  o.OpsPerThread * shards,
		PctLookup: 50,
		Keys:      scenario.keys,
		Arrival:   fleetArrival(shards),
		CrossPct:  crossPct,
		Seed:      o.Seed,
	})
	if err != nil {
		return fleetPoint{}, err
	}
	lat := res.Lat
	fp := fleetPoint{
		Point: Point{
			Threads:    shards,
			OpsPerUsec: res.Throughput(),
			Extra:      summarizeStats(res.Stats),
			Lat:        &lat,
		},
		Committed2PC: res.Committed2PC,
		Aborted2PC:   res.Aborted2PC,
	}
	for _, sh := range res.Shards {
		fp.ShardOps = append(fp.ShardOps, sh.Ops)
	}
	fp.Series = append(fp.Series, res.Series...)
	return fp, nil
}

// fleetSpec identifies one fleet cell for the runner's cache: the shard-0
// machine config (every shard's config differs only in the folded seed)
// plus every knob that shapes the fleet or its payload.
func (o Options) fleetSpec(scenario fleetScenario, system string, shards, crossPct int, width int64) runner.Spec {
	cfg := service.Config{
		Shards:   shards,
		Strands:  fleetStrands,
		MemWords: fleetMemWords,
		Seed:     o.Seed,
	}
	params := map[string]string{
		"strands":  itoa(fleetStrands),
		"keyrange": itoa(fleetKeyRange),
		"skew":     scenario.keys.String(),
		"router":   scenario.router,
		"xfrac":    itoa(crossPct),
		"arrival":  fleetArrival(shards).String(),
		"batch":    "8:4096",
		"failpct":  itoa(fleetFailPct),
		"window":   strconv.FormatInt(width, 10),
	}
	return o.spec("fleet", system, shards, service.MachineConfig(cfg, 0), params)
}

// FleetFigure is the `-exp fleet` experiment: system × scenario ×
// cross-shard-fraction curves over the shard-count axis, throughput in
// requests per microsecond of simulated fleet time, with p50..p99.9
// request-latency tables (Latency is forced on — the tail is the point)
// and fleet verdicts in the notes.
func FleetFigure(o Options) (*Figure, error) {
	o = o.Defaults()
	o.Latency = true
	width := o.timelineWidth()
	fig := &Figure{
		Title:  "Fleet: sharded service tier, diurnal open-loop load, 1024 keys 50% lookups, batching 8/4096, 2PC cross-shard fraction",
		YLabel: "throughput (requests/usec of fleet time), simulated; x-axis is shard count",
	}
	axis := fleetShardAxis()
	scenarios := fleetScenarios()
	systems := tailSystems()
	crossFracs := []int{0, 10}
	var names []string
	var cells []runner.Cell[fleetPoint]
	for _, sb := range systems {
		for _, sc := range scenarios {
			for _, xf := range crossFracs {
				name := fmt.Sprintf("%s/%s", sb.Name, sc.name)
				if xf > 0 {
					name += fmt.Sprintf("+x%d", xf)
				}
				names = append(names, name)
				for _, shards := range axis {
					sb, sc, xf, shards := sb, sc, xf, shards
					cells = append(cells, runner.Cell[fleetPoint]{
						Spec: o.fleetSpec(sc, sb.Name, shards, xf, width),
						Compute: func() (fleetPoint, error) {
							return runFleet(o, sc, sb, shards, xf, width)
						},
					})
				}
			}
		}
	}
	pts, err := runner.RunCells(o.pool(), cells)
	if err != nil {
		return nil, err
	}
	na := len(axis)
	for ci, name := range names {
		curve := Curve{Name: name}
		for t := 0; t < na; t++ {
			curve.Points = append(curve.Points, pts[ci*na+t].Point)
		}
		fig.Curves = append(fig.Curves, curve)
	}
	// Judge the top-shard-count fleet of every curve. Everything derives
	// from the cached payloads, so notes are byte-stable across serial,
	// parallel and warm-cache executions.
	top := axis[na-1]
	for ci, name := range names {
		fp := pts[ci*na+na-1]
		pass, judged := 0, 0
		worstBurn := 0.0
		findings := 0
		for _, s := range fp.Series {
			for _, r := range timeseries.EvaluateSLOs(s, fleetSLOs()) {
				judged++
				if r.Pass {
					pass++
				}
				if r.BurnRate > worstBurn {
					worstBurn = r.BurnRate
				}
			}
			findings += len(timeseries.Detect(s))
		}
		maxOps, minOps := uint64(0), ^uint64(0)
		for _, ops := range fp.ShardOps {
			if ops > maxOps {
				maxOps = ops
			}
			if ops < minOps {
				minOps = ops
			}
		}
		if minOps == 0 {
			minOps = 1
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s @%dS: SLO %d/%d shards pass (worst burn %.2fx), imbalance %.2fx, %d findings, 2pc %d/%d commit/abort",
			name, top, pass, judged, worstBurn, float64(maxOps)/float64(minOps),
			findings, fp.Committed2PC, fp.Aborted2PC))
	}
	return fig, nil
}
