package hytm

import (
	"testing"

	"rocktm/internal/core"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
)

func newMachine(strands int) *sim.Machine {
	cfg := sim.DefaultConfig(strands)
	cfg.MemWords = 1 << 21
	cfg.MaxCycles = 1 << 42
	return sim.New(cfg)
}

func TestHardwarePathCommits(t *testing.T) {
	m := newMachine(1)
	sys := New(sky.New(m), DefaultConfig())
	a := m.Mem().AllocLines(8)
	m.Run(func(s *sim.Strand) {
		for i := 0; i < 60; i++ {
			sys.Atomic(s, func(c core.Ctx) { c.Store(a, c.Load(a)+1) })
		}
	})
	st := sys.Stats()
	if st.HWCommits != 60 || st.SWCommits != 0 {
		t.Fatalf("hw=%d sw=%d, want 60/0", st.HWCommits, st.SWCommits)
	}
	if m.Mem().Peek(a) != 60 {
		t.Fatal("lost updates")
	}
}

func TestUnsupportedFallsToSoftware(t *testing.T) {
	m := newMachine(1)
	sys := New(sky.New(m), DefaultConfig())
	a := m.Mem().AllocLines(8)
	m.Run(func(s *sim.Strand) {
		sys.Atomic(s, func(c core.Ctx) {
			c.Call() // INST in hardware; cheap compute in software
			c.Store(a, 1)
		})
	})
	st := sys.Stats()
	if st.SWCommits != 1 {
		t.Fatalf("sw commits = %d, want 1", st.SWCommits)
	}
	if st.HWAttempts != 1 {
		t.Fatalf("hw attempts = %d, want exactly 1 (INST gives up)", st.HWAttempts)
	}
	if m.Mem().Peek(a) != 1 {
		t.Fatal("software fallback did not run")
	}
}

func TestConcurrentHardwareSoftwareMix(t *testing.T) {
	// Half the strands run blocks hardware cannot execute (forcing
	// software), the other half run hardware-friendly blocks; the shared
	// counter must be exact across the mixed modes.
	const threads, per = 4, 150
	m := newMachine(threads)
	sys := New(sky.New(m), DefaultConfig())
	a := m.Mem().AllocLines(8)
	m.Run(func(s *sim.Strand) {
		for i := 0; i < per; i++ {
			if s.ID()%2 == 0 {
				sys.Atomic(s, func(c core.Ctx) {
					c.Call()
					c.Store(a, c.Load(a)+1)
				})
			} else {
				sys.Atomic(s, func(c core.Ctx) {
					c.Store(a, c.Load(a)+1)
				})
			}
		}
	})
	if got := m.Mem().Peek(a); got != threads*per {
		t.Fatalf("counter = %d, want %d", got, threads*per)
	}
	st := sys.Stats()
	if st.SWCommits == 0 || st.HWCommits == 0 {
		t.Fatalf("expected a genuine hw/sw mix, got hw=%d sw=%d", st.HWCommits, st.SWCommits)
	}
}
