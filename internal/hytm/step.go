// Continuation-machine execution (sim.RunStepped) for HyTM: the hardware
// attempt loop becomes an explicit state machine (rock.StepTry over the
// journaled instrumented context, policy backoff delays as resumable
// charges) and the software fallback chains into the back end's own step
// block. Operation sequences are op-for-op identical to the coroutine path.
package hytm

import (
	"rocktm/internal/core"
	"rocktm/internal/obs"
	"rocktm/internal/policy"
	"rocktm/internal/rock"
	"rocktm/internal/sim"
	"rocktm/internal/stm"
)

// hyStep phases.
const (
	hyAttemptTop uint8 = iota
	hyTry
	hyDelay
	hyFallback
)

// hyStep is one HyTM atomic block as a continuation machine.
type hyStep struct {
	h    *System
	s    *sim.Strand
	sb   stm.StepHybridSTM
	body func(core.Ctx)
	ro   bool
	run  func()

	phase uint8
	eng   policy.Engine
	try   rock.StepTry
	log   core.OpLog
	back  core.StepBackoff

	nextAct  policy.Action
	delayAtt int
	sub      core.StepBlock
}

// Step implements core.StepBlock.
func (b *hyStep) Step() bool {
	s, st := b.s, b.h.stats
	for {
		switch b.phase {
		case hyAttemptTop:
			st.HWAttempts++
			b.try.Arm(0, false)
			b.phase = hyTry
		case hyTry:
			done, committed, c := b.try.Step()
			if !done {
				return false
			}
			if committed {
				st.HWCommits++
				st.Ops++
				b.eng.OnCommit()
				return true
			}
			st.RecordFailure(c)
			act, delayAtt, delay := b.eng.DecideFailure(c)
			b.nextAct, b.delayAtt = act, delayAtt
			if delay {
				b.phase = hyDelay
			} else {
				b.dispatchAct()
			}
		case hyDelay:
			if !b.back.Step(s, b.delayAtt) {
				return false
			}
			b.dispatchAct()
		default: // hyFallback
			return b.sub.Step()
		}
	}
}

// dispatchAct routes a policy verdict to its phase, mirroring the
// coroutine loop: Fallback (or a Wait with the budget spent) arms the
// software fallback, anything else retries.
func (b *hyStep) dispatchAct() {
	fall := b.nextAct == policy.Fallback ||
		(b.nextAct == policy.Wait && b.eng.Exhausted())
	if !fall {
		b.phase = hyAttemptTop
		return
	}
	b.eng.OnFallback()
	b.s.TraceEvent(obs.EvFallback, 0)
	b.sub = b.sb.StepAtomic(b.s, b.body, b.ro)
	b.phase = hyFallback
}

// CanStep implements core.StepCapable: stepping needs a back end whose
// instrumented context journals and whose blocks step.
func (h *System) CanStep() bool {
	_, ok := h.back.(stm.StepHybridSTM)
	return ok
}

// StepAtomic implements core.StepSystem.
func (h *System) StepAtomic(s *sim.Strand, body func(core.Ctx), ro bool) core.StepBlock {
	b := h.steps.Get(s.ID())
	if b.run == nil {
		b.h, b.s = h, s
		b.sb = h.back.(stm.StepHybridSTM)
		b.run = func() { b.body(b.sb.StepHWCtx(rock.On(b.s), &b.log)) }
		b.try.Init(s, &b.log, b.run)
	}
	b.body, b.ro = body, ro
	b.phase = hyAttemptTop
	h.stats.HWBlocks++
	b.eng = policy.Start(h.pol, 0)
	return b
}

var _ core.StepSystem = (*System)(nil)
var _ core.StepCapable = (*System)(nil)
