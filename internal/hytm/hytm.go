// Package hytm implements Hybrid Transactional Memory (Damron, Fedorova,
// Lev, Luchangco, Moir, Nussbaum — ASPLOS 2006): every atomic block first
// attempts to run as a best-effort hardware transaction whose every access
// is instrumented to check the STM's ownership metadata, and transparently
// falls back to a pure software transaction when hardware attempts keep
// failing. Hardware and software transactions may run concurrently — the
// access-level checks are what keep them from stepping on each other —
// which distinguishes HyTM from PhTM's global phases, and is also why its
// hardware path is roughly twice as expensive as PhTM's uninstrumented one
// (the factor the paper observes in Figure 1).
package hytm

import (
	"rocktm/internal/core"
	"rocktm/internal/cps"
	"rocktm/internal/obs"
	"rocktm/internal/rock"
	"rocktm/internal/sim"
	"rocktm/internal/stm"
)

// Config tunes the retry policy.
type Config struct {
	// MaxFailures is the failure score at which the block falls back to a
	// software transaction.
	MaxFailures float64
	// UCTIWeight is the score of a UCTI-flagged failure.
	UCTIWeight float64
}

// DefaultConfig returns the policy used in the experiments.
func DefaultConfig() Config { return Config{MaxFailures: 6, UCTIWeight: 0.5} }

// System is a HyTM instance over a HybridSTM back end.
type System struct {
	name  string
	back  stm.HybridSTM
	cfg   Config
	stats *core.Stats
}

// New builds a HyTM system over back (which must not be used standalone
// concurrently, or its statistics will blend).
func New(back stm.HybridSTM, cfg Config) *System {
	return &System{name: "hytm", back: back, cfg: cfg, stats: core.NewStats()}
}

// Name implements core.System.
func (h *System) Name() string { return h.name }

// SetName overrides the reported name.
func (h *System) SetName(n string) { h.name = n }

// Stats implements core.System: a merged snapshot of the hardware-path
// counters and the software back end's.
func (h *System) Stats() *core.Stats {
	out := core.NewStats()
	out.Merge(h.stats)
	out.Merge(h.back.Stats())
	return out
}

// Atomic implements core.System.
func (h *System) Atomic(s *sim.Strand, body func(core.Ctx)) {
	st := h.stats
	st.HWBlocks++
	failScore := 0.0
	// Bind the hardware attempt once per block, not once per retry, so the
	// failure loop allocates nothing.
	hwBody := func(tx *rock.Txn) {
		body(h.back.HWCtx(tx))
	}
	for attempt := 0; failScore < h.cfg.MaxFailures; attempt++ {
		st.HWAttempts++
		ok, c := rock.Try(s, hwBody)
		if ok {
			st.HWCommits++
			st.Ops++
			return
		}
		st.RecordFailure(c)
		switch {
		case c == cps.TCC:
			// The instrumentation's explicit abort: a software transaction
			// owns something we touched. Back off and retry; do not burn
			// the full failure budget on it.
			failScore += 0.5
			core.Backoff(s, attempt)
		case c.Has(cps.UCTI):
			// UCTI dominates: companion bits may be misspeculation
			// artifacts, so retry rather than trusting them (Section 3).
			failScore += h.cfg.UCTIWeight
		case c.Any(cps.INST | cps.FP | cps.PREC):
			failScore = h.cfg.MaxFailures // will never succeed in hardware
		default:
			failScore++
			if c.Has(cps.COH) {
				core.Backoff(s, attempt)
			}
		}
	}
	// Software fallback; the back end retries internally until it commits.
	s.TraceEvent(obs.EvFallback, 0)
	h.back.Atomic(s, body)
}

// AtomicRO implements core.System.
func (h *System) AtomicRO(s *sim.Strand, body func(core.Ctx)) { h.Atomic(s, body) }
