// Package hytm implements Hybrid Transactional Memory (Damron, Fedorova,
// Lev, Luchangco, Moir, Nussbaum — ASPLOS 2006): every atomic block first
// attempts to run as a best-effort hardware transaction whose every access
// is instrumented to check the STM's ownership metadata, and transparently
// falls back to a pure software transaction when hardware attempts keep
// failing. Hardware and software transactions may run concurrently — the
// access-level checks are what keep them from stepping on each other —
// which distinguishes HyTM from PhTM's global phases, and is also why its
// hardware path is roughly twice as expensive as PhTM's uninstrumented one
// (the factor the paper observes in Figure 1).
//
// Retry intelligence lives in the shared internal/policy engine (default:
// policy "paper" with HyTM's tuning; SetPolicy swaps in any registered
// policy). HyTM's one system-specific wrinkle is the explicit TCC abort:
// here it means the instrumentation found a software transaction owning
// something we touched, and the right reaction is a charged backoff-retry
// — not a wait — because the owner is making progress concurrently.
package hytm

import (
	"rocktm/internal/core"
	"rocktm/internal/obs"
	"rocktm/internal/policy"
	"rocktm/internal/rock"
	"rocktm/internal/sim"
	"rocktm/internal/stm"
)

// Config tunes the retry policy.
type Config struct {
	// MaxFailures is the failure score at which the block falls back to a
	// software transaction.
	MaxFailures float64
	// UCTIWeight is the score of a UCTI-flagged failure.
	UCTIWeight float64
}

// DefaultConfig returns the policy used in the experiments: the shared
// internal/policy defaults, except for the smaller budget — HyTM's
// instrumented hardware path costs ~2x PhTM's, so burned attempts are
// twice as expensive.
func DefaultConfig() Config {
	return Config{MaxFailures: policy.DefaultHyTMBudget, UCTIWeight: policy.DefaultUCTIWeight}
}

// Tuning maps the config onto the shared policy-engine knobs — exported
// so experiments can build alternative policies (policy.MustNew) with
// HyTM's system-correct tuning: TCC (an ownership-check abort) maps to
// Backoff with a half-failure charge, because the owning software
// transaction is making progress concurrently.
func (c Config) Tuning() policy.Tuning {
	return policy.Tuning{
		Budget:      c.MaxFailures,
		UCTIWeight:  c.UCTIWeight,
		UCTIBackoff: false,
		GiveUp:      policy.DefaultGiveUp,
		BackoffOn:   policy.DefaultBackoffOn,
		TCCAction:   policy.Backoff,
		TCCWeight:   policy.DefaultTCCWeight,
	}
}

// System is a HyTM instance over a HybridSTM back end.
type System struct {
	name  string
	back  stm.HybridSTM
	cfg   Config
	pol   policy.Policy
	stats *core.Stats
	steps core.PerStrand[hyStep]
}

// New builds a HyTM system over back (which must not be used standalone
// concurrently, or its statistics will blend).
func New(back stm.HybridSTM, cfg Config) *System {
	return &System{
		name:  "hytm",
		back:  back,
		cfg:   cfg,
		pol:   policy.MustNew("paper", cfg.Tuning()),
		stats: core.NewStats(),
	}
}

// Name implements core.System.
func (h *System) Name() string { return h.name }

// SetName overrides the reported name.
func (h *System) SetName(n string) { h.name = n }

// SetPolicy replaces the retry policy driving the hardware attempts (the
// default is "paper" with this system's tuning).
func (h *System) SetPolicy(pol policy.Policy) { h.pol = pol }

// Stats implements core.System: a merged snapshot of the hardware-path
// counters and the software back end's.
func (h *System) Stats() *core.Stats {
	out := core.NewStats()
	out.Merge(h.stats)
	out.Merge(h.back.Stats())
	return out
}

// Atomic implements core.System.
func (h *System) Atomic(s *sim.Strand, body func(core.Ctx)) {
	st := h.stats
	st.HWBlocks++
	// Bind the hardware attempt once per block, not once per retry, so the
	// failure loop allocates nothing.
	hwBody := func(tx rock.Txn) {
		body(h.back.HWCtx(tx))
	}
	eng := policy.Start(h.pol, 0)
	for {
		st.HWAttempts++
		ok, c := rock.Try(s, hwBody)
		if ok {
			st.HWCommits++
			st.Ops++
			eng.OnCommit()
			return
		}
		st.RecordFailure(c)
		act := eng.OnFailure(s, c)
		if act == policy.Fallback {
			break
		}
		if act == policy.Wait {
			// HyTM's tuning maps TCC to Backoff, so Wait only surfaces
			// under a custom policy; with no system condition to wait on,
			// the budget check is all that remains.
			if eng.Exhausted() {
				break
			}
		}
	}
	// Software fallback; the back end retries internally until it commits.
	eng.OnFallback()
	s.TraceEvent(obs.EvFallback, 0)
	h.back.Atomic(s, body)
}

// AtomicRO implements core.System.
func (h *System) AtomicRO(s *sim.Strand, body func(core.Ctx)) { h.Atomic(s, body) }
