package obs

import (
	"testing"
)

// Latencies below 2^latSubBits are exact: each value owns a unit bucket
// whose upper edge is the value itself.
func TestLatencyBucketsExactBelowSub(t *testing.T) {
	for v := int64(0); v < latSub; v++ {
		b := latBucketOf(v)
		if b != int(v) {
			t.Fatalf("latBucketOf(%d) = %d, want %d", v, b, v)
		}
		if m := latBucketMax(b); m != v {
			t.Fatalf("latBucketMax(%d) = %d, want %d", b, m, v)
		}
	}
}

// Above the exact range the bucket upper edge over-reports by at most
// 1/latSub of the value (one sub-bucket width).
func TestLatencyBucketRelativeError(t *testing.T) {
	values := []int64{latSub, latSub + 1, 100, 1000, 12345, 1 << 20, (1 << 40) + 12345, 1<<62 + 999}
	for _, v := range values {
		b := latBucketOf(v)
		m := latBucketMax(b)
		if m < v {
			t.Errorf("bucket upper edge %d below value %d", m, v)
		}
		if err := m - v; err > v/latSub {
			t.Errorf("value %d: upper edge %d over-reports by %d > %d (1/%d relative)",
				v, m, err, v/latSub, latSub)
		}
	}
}

// Bucket edges are strictly increasing, so the cumulative scan in Quantile
// walks a proper partition of the value range.
func TestLatencyBucketEdgesMonotone(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < latBuckets; i++ {
		m := latBucketMax(i)
		if m <= prev {
			t.Fatalf("bucket %d upper edge %d not above previous %d", i, m, prev)
		}
		prev = m
	}
}

func TestLatencyQuantiles(t *testing.T) {
	r := NewLatencyRecorder()
	if got := r.Quantile(0.5); got != 0 {
		t.Fatalf("empty recorder quantile = %d, want 0", got)
	}
	const n = 1000
	for v := int64(1); v <= n; v++ {
		r.Record(v)
	}
	if r.Count() != n {
		t.Fatalf("count = %d, want %d", r.Count(), n)
	}
	if r.Max() != n {
		t.Fatalf("max = %d, want %d", r.Max(), n)
	}
	checks := []struct {
		q    float64
		want int64
	}{{0.50, 500}, {0.90, 900}, {0.99, 990}, {1.0, 1000}}
	for _, c := range checks {
		got := r.Quantile(c.q)
		if got < c.want {
			t.Errorf("q=%g: %d under-reports true quantile %d", c.q, got, c.want)
		}
		if got > c.want+c.want/latSub {
			t.Errorf("q=%g: %d over-reports %d beyond the 1/%d bound", c.q, got, c.want, latSub)
		}
	}
	s := r.Summarize()
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.P999 || s.P999 > s.Max {
		t.Errorf("summary percentiles not monotone: %+v", s)
	}
	if s.Count != n || s.Max != n {
		t.Errorf("summary count/max: %+v", s)
	}
}

// Negative latencies clamp to zero instead of corrupting a bucket index.
func TestLatencyRecordClampsNegative(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(-5)
	if r.Count() != 1 || r.Max() != 0 || r.Quantile(1) != 0 {
		t.Fatalf("negative record mishandled: n=%d max=%d", r.Count(), r.Max())
	}
}

// The steady-state Record path must be allocation-free: recorders are
// attached to simulation driver loops and a per-op allocation would both
// slow the host and churn the GC mid-experiment.
func TestLatencyRecordAllocationFree(t *testing.T) {
	r := NewLatencyRecorder()
	v := int64(1)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(v)
		v = (v*2 + 1) % (1 << 40)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v per op, want 0", allocs)
	}
}

func BenchmarkLatencyRecord(b *testing.B) {
	r := NewLatencyRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(int64(i)&0xfffff + 1)
	}
}

// The recorder publishes the standard digest through the metrics registry.
func TestLatencyPublish(t *testing.T) {
	r := NewLatencyRecorder()
	for v := int64(1); v <= 100; v++ {
		r.Record(v)
	}
	reg := NewRegistry()
	r.Publish(reg, "latency")
	snap := reg.Snapshot()
	for _, name := range []string{"lat_count", "lat_p50_cycles", "lat_p90_cycles", "lat_p99_cycles", "lat_p999_cycles", "lat_max_cycles"} {
		if _, ok := snap.Counter("latency", name); !ok {
			t.Errorf("registry missing %s", name)
		}
	}
	if n, _ := snap.Counter("latency", "lat_count"); n != 100 {
		t.Errorf("lat_count = %d, want 100", n)
	}
}
