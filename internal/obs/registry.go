package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"rocktm/internal/cps"
)

// NamedValue is one counter in a metrics sample.
type NamedValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// Sample is what one metrics source reports when the registry collects:
// an ordered list of counters plus an optional CPS failure histogram.
type Sample struct {
	Counters []NamedValue
	CPS      *cps.Histogram
}

// Registry is the unified metrics registry: every subsystem (each TM
// system, each simulator strand, the DCAS provider, ...) registers a
// collection callback, and Snapshot pulls them all into one coherent,
// render- and JSON-able view keyed by subsystem and strand.
//
// Collection is pull-based, so registering a source adds zero cost to the
// subsystem's hot path — the existing counter structs (core.Stats,
// sim.Stats) remain the storage and become thin compatibility accessors
// over this registry's view.
type Registry struct {
	sources []registeredSource
}

type registeredSource struct {
	subsystem string
	strand    int // -1 for strand-agnostic sources
	collect   func() Sample
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a strand-agnostic metrics source under the subsystem name.
// Registering the same name twice keeps both; Snapshot reports them in
// registration order.
func (r *Registry) Register(subsystem string, collect func() Sample) {
	r.sources = append(r.sources, registeredSource{subsystem: subsystem, strand: -1, collect: collect})
}

// RegisterStrand adds a per-strand metrics source.
func (r *Registry) RegisterStrand(subsystem string, strand int, collect func() Sample) {
	r.sources = append(r.sources, registeredSource{subsystem: subsystem, strand: strand, collect: collect})
}

// CPSCount is one row of a snapshot's CPS histogram.
type CPSCount struct {
	Value    string  `json:"cps"`
	Count    uint64  `json:"count"`
	Fraction float64 `json:"fraction"`
}

// SubsystemSnapshot is the collected state of one source.
type SubsystemSnapshot struct {
	Name     string       `json:"subsystem"`
	Strand   int          `json:"strand"` // -1 when strand-agnostic
	Counters []NamedValue `json:"counters,omitempty"`
	CPS      []CPSCount   `json:"cps,omitempty"`
}

// Snapshot is a point-in-time collection of every registered source.
type Snapshot struct {
	Subsystems []SubsystemSnapshot `json:"subsystems"`
}

// Snapshot collects all sources. Sources registered with the same
// subsystem name stay distinct entries (disambiguated by strand).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{}
	for _, src := range r.sources {
		s := src.collect()
		entry := SubsystemSnapshot{Name: src.subsystem, Strand: src.strand, Counters: s.Counters}
		if s.CPS != nil && s.CPS.Total() > 0 {
			for _, e := range s.CPS.Entries() {
				entry.CPS = append(entry.CPS, CPSCount{Value: e.Value.String(), Count: e.Count, Fraction: e.Fraction})
			}
		}
		snap.Subsystems = append(snap.Subsystems, entry)
	}
	return snap
}

// Counter returns the named counter of the first matching subsystem entry,
// summed across strands when the subsystem registered per-strand sources.
func (s Snapshot) Counter(subsystem, name string) (uint64, bool) {
	var total uint64
	found := false
	for _, sub := range s.Subsystems {
		if sub.Name != subsystem {
			continue
		}
		for _, c := range sub.Counters {
			if c.Name == name {
				total += c.Value
				found = true
			}
		}
	}
	return total, found
}

// Render writes the snapshot as an aligned text report.
func (s Snapshot) Render(w io.Writer) {
	for _, sub := range s.Subsystems {
		label := sub.Name
		if sub.Strand >= 0 {
			label = fmt.Sprintf("%s/strand%d", sub.Name, sub.Strand)
		}
		var parts []string
		for _, c := range sub.Counters {
			if c.Value != 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", c.Name, c.Value))
			}
		}
		fmt.Fprintf(w, "%-20s %s\n", label, strings.Join(parts, " "))
		if len(sub.CPS) > 0 {
			var cp []string
			for _, c := range sub.CPS {
				cp = append(cp, fmt.Sprintf("%s:%d(%.1f%%)", c.Value, c.Count, 100*c.Fraction))
			}
			fmt.Fprintf(w, "%-20s cps: %s\n", "", strings.Join(cp, " "))
		}
	}
}

// WriteJSON writes the snapshot as one JSON document.
func (s Snapshot) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(s)
}

// CPSDelta lists the CPS observations present in after but not in before
// (two snapshots of one growing histogram). It replaces the bespoke
// histogram-diff loops that per-package profilers used to carry.
func CPSDelta(before, after *cps.Histogram) []cps.Bits {
	var out []cps.Bits
	for _, e := range after.Entries() {
		delta := e.Count - before.Count(e.Value)
		for i := uint64(0); i < delta; i++ {
			out = append(out, e.Value)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
