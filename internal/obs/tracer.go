package obs

import "sort"

// DefaultPerStrandEvents is the default per-strand ring capacity: enough
// for the experiment scales in this repository without rebuffering, small
// enough that a 64-strand tracer stays a few megabytes.
const DefaultPerStrandEvents = 1 << 16

// Tracer collects cycle-timestamped events into per-strand ring buffers.
//
// All recording happens under the machine baton (exactly one strand
// executes at a time), so the tracer needs no synchronization. Record is
// allocation-free: the rings are sized up front and old events are
// overwritten (and counted as dropped) once a ring wraps — tracing can
// never abort or slow a run, only lose its own oldest history.
type Tracer struct {
	strands []ring
	freqGHz float64
}

type ring struct {
	events  []Event
	next    int    // write cursor
	seq     uint32 // per-strand sequence number
	total   uint64 // events ever recorded
	wrapped bool
}

// NewTracer builds a tracer for the given number of strands with the given
// per-strand ring capacity (<=0 selects DefaultPerStrandEvents).
func NewTracer(strands, perStrandCap int) *Tracer {
	if perStrandCap <= 0 {
		perStrandCap = DefaultPerStrandEvents
	}
	t := &Tracer{strands: make([]ring, strands), freqGHz: 1}
	for i := range t.strands {
		t.strands[i].events = make([]Event, perStrandCap)
	}
	return t
}

// SetFreqGHz records the simulated clock frequency used to convert cycles
// to wall-clock microseconds in exports.
func (t *Tracer) SetFreqGHz(f float64) {
	if f > 0 {
		t.freqGHz = f
	}
}

// FreqGHz returns the configured simulated clock frequency.
func (t *Tracer) FreqGHz() float64 { return t.freqGHz }

// Record appends one event to strand's ring. It never allocates and never
// fails; when the ring is full the oldest event is overwritten.
func (t *Tracer) Record(strand int, cycle int64, kind EventKind, arg uint64) {
	b := &t.strands[strand]
	b.events[b.next] = Event{
		Cycle:  cycle,
		Arg:    arg,
		Seq:    b.seq,
		Strand: int32(strand),
		Kind:   kind,
	}
	b.seq++
	b.total++
	b.next++
	if b.next == len(b.events) {
		b.next = 0
		b.wrapped = true
	}
}

// Recorded returns the total number of events ever recorded (including any
// that have since been overwritten).
func (t *Tracer) Recorded() uint64 {
	var n uint64
	for i := range t.strands {
		n += t.strands[i].total
	}
	return n
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	var n uint64
	for i := range t.strands {
		b := &t.strands[i]
		if b.wrapped {
			n += b.total - uint64(len(b.events))
		}
	}
	return n
}

// Reset clears all rings (capacities are retained).
func (t *Tracer) Reset() {
	for i := range t.strands {
		b := &t.strands[i]
		b.next, b.seq, b.total, b.wrapped = 0, 0, 0, false
	}
}

// strandEvents returns strand i's retained events oldest-first.
func (t *Tracer) strandEvents(i int) []Event {
	b := &t.strands[i]
	if !b.wrapped {
		return b.events[:b.next]
	}
	out := make([]Event, 0, len(b.events))
	out = append(out, b.events[b.next:]...)
	out = append(out, b.events[:b.next]...)
	return out
}

// Merged returns every retained event across all strands in virtual-time
// order: ascending cycle, ties broken by strand ID, then by per-strand
// sequence. The ordering key is a total order, so the merged stream is
// deterministic for a deterministic run.
func (t *Tracer) Merged() []Event {
	var total int
	for i := range t.strands {
		b := &t.strands[i]
		if b.wrapped {
			total += len(b.events)
		} else {
			total += b.next
		}
	}
	out := make([]Event, 0, total)
	for i := range t.strands {
		out = append(out, t.strandEvents(i)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Strand != b.Strand {
			return a.Strand < b.Strand
		}
		return a.Seq < b.Seq
	})
	return out
}
