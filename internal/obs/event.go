// Package obs is the machine-wide observability layer: a cycle-timestamped
// event tracer fed by the simulator's transaction and lock hook points, a
// unified metrics registry that every synchronization system publishes
// into, and the abort-attribution folds that turn raw trace events into the
// paper's Table 4-style "why did transactions fail" breakdowns.
//
// The design constraint, inherited from the paper's methodology, is that
// observing the system must not change it: recording an event is
// allocation-free, charges no simulated cycles, and consumes no simulated
// randomness, so a traced run is cycle-for-cycle identical to an untraced
// one (asserted by tests). A machine with no tracer attached pays exactly
// one nil-check per hook point.
//
// obs sits below internal/sim in the import graph (sim calls into obs, not
// the other way around), so events carry plain strand IDs and cycle counts
// rather than simulator types.
package obs

import "rocktm/internal/cps"

// EventKind identifies what happened at a trace hook point.
type EventKind uint8

// Event kinds. The Arg field's meaning depends on the kind.
const (
	// EvNone is the zero value; it never appears in a recorded stream.
	EvNone EventKind = iota
	// EvTxBegin marks a hardware transaction checkpoint (chkpt). Arg is 0.
	EvTxBegin
	// EvTxCommit marks a successful hardware commit. Arg is the number of
	// store-queue entries drained.
	EvTxCommit
	// EvTxAbort marks a hardware transaction failure. Arg holds the CPS
	// register bits explaining why.
	EvTxAbort
	// EvLockAcquire marks a lock acquisition. Arg is the lock word's
	// simulated address.
	EvLockAcquire
	// EvLockRelease marks a lock release. Arg is the lock word's address.
	EvLockRelease
	// EvModeSoftware marks a PhTM-style transition of the whole system into
	// its software phase. Arg is the software-hold countdown installed.
	EvModeSoftware
	// EvModeHardware marks the drift back into the hardware phase. Arg is 0.
	EvModeHardware
	// EvFallback marks one atomic block exhausting its hardware budget and
	// falling back to its software or lock path. Arg is the fallback lock's
	// address where one exists, else 0.
	EvFallback
	// EvSWCommit marks a software (STM) transaction commit. Arg is 0.
	EvSWCommit
	// EvSWAbort marks a software (STM) transaction abort-and-retry. Arg is 0.
	EvSWAbort

	numEventKinds
)

var kindNames = [numEventKinds]string{
	EvNone:         "none",
	EvTxBegin:      "tx-begin",
	EvTxCommit:     "tx-commit",
	EvTxAbort:      "tx-abort",
	EvLockAcquire:  "lock-acquire",
	EvLockRelease:  "lock-release",
	EvModeSoftware: "mode-software",
	EvModeHardware: "mode-hardware",
	EvFallback:     "sw-fallback",
	EvSWCommit:     "sw-commit",
	EvSWAbort:      "sw-abort",
}

// String returns the stable lowercase mnemonic used in exports.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// Event is one cycle-timestamped trace record. It is a fixed-size value so
// per-strand ring buffers hold events inline with no per-record allocation.
type Event struct {
	// Cycle is the strand's virtual-time clock when the event occurred.
	Cycle int64
	// Arg carries kind-specific detail (CPS bits, lock address, ...).
	Arg uint64
	// Seq orders events recorded by one strand at the same cycle.
	Seq uint32
	// Strand is the recording strand's ID.
	Strand int32
	// Kind says what happened.
	Kind EventKind
}

// CPS interprets Arg as CPS register bits (meaningful for EvTxAbort).
func (e Event) CPS() cps.Bits { return cps.Bits(e.Arg) }

// EventSink receives the same hook-point stream a Tracer records, one call
// per event, as it happens. It is the streaming alternative to the tracer's
// ring buffers: a sink folds events into its own aggregate (the windowed
// timeseries recorder is the canonical implementation) instead of retaining
// them, so it never wraps and never loses history.
//
// Implementations must obey the tracer's contract: SinkEvent charges no
// simulated cycles, consumes no simulated randomness, and its steady-state
// path is allocation-free, so a run with a sink attached is cycle-identical
// to one without.
type EventSink interface {
	SinkEvent(strand int, cycle int64, kind EventKind, arg uint64)
}
