package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// Export edge cases: the writers must stay well-formed for degenerate
// inputs — no runs deposited, runs with empty event slices, and event
// kinds newer than the writer (forward compatibility with added hooks).

func TestTraceSinkZeroRuns(t *testing.T) {
	var k TraceSink
	if k.Runs() != 0 || k.Events() != 0 {
		t.Fatalf("fresh sink reports %d runs / %d events", k.Runs(), k.Events())
	}
	var buf bytes.Buffer
	if err := k.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		Unit        string            `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty Chrome trace invalid: %v\n%s", err, buf.Bytes())
	}
	if len(doc.TraceEvents) != 0 || doc.Unit != "ms" {
		t.Errorf("empty Chrome trace = %s", buf.Bytes())
	}
	buf.Reset()
	if err := k.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty sink timeline wrote %q", buf.String())
	}
}

// A run that recorded nothing (e.g. a one-lock system under a tracer that
// only hooks transactions) still gets its process metadata so the label
// shows up in Perfetto.
func TestTraceSinkEmptyEventRun(t *testing.T) {
	var k TraceSink
	k.Add("idle-run", 1.0, nil)
	var buf bytes.Buffer
	if err := k.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"process_name"`) || !strings.Contains(out, `"idle-run"`) {
		t.Errorf("empty-event run lost its process label: %s", out)
	}
	buf.Reset()
	if err := k.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "== trace: idle-run ==\n" {
		t.Errorf("empty-event run timeline = %q", got)
	}
	if err := WriteTimeline(&buf, nil); err != nil {
		t.Fatal(err)
	}
}

// An event kind this writer does not know must neither panic nor corrupt
// the document: the timeline prints its "?" mnemonic, the Chrome writer
// skips the body but keeps the thread metadata.
func TestExportUnknownEventKind(t *testing.T) {
	ev := []Event{
		{Cycle: 10, Strand: 0, Kind: EvTxBegin},
		{Cycle: 20, Strand: 0, Kind: EventKind(250), Arg: 7},
		{Cycle: 30, Strand: 0, Kind: EvTxCommit, Arg: 1},
	}
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, ev); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline dropped lines: %q", buf.String())
	}
	if !strings.Contains(lines[1], "?") {
		t.Errorf("unknown kind not rendered with ? mnemonic: %q", lines[1])
	}
	buf.Reset()
	if err := WriteChromeTrace(&buf, ev, 1.0, "run"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace with unknown kind invalid: %v", err)
	}
	// process_name, thread_name, tx-begin, tx-commit, txn span — the
	// unknown event contributes nothing but breaks nothing.
	var names []string
	for _, e := range doc.TraceEvents {
		names = append(names, e.Name)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"process_name", "tx-begin", "tx-commit", "txn"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Chrome trace missing %q: %v", want, names)
		}
	}
}

// Counter tracks attach to the run with the matching label; unmatched
// labels deposit a counter-only run that still renders.
func TestAddCountersMergeAndStandalone(t *testing.T) {
	var k TraceSink
	k.Add("run-a", 1.0, []Event{{Cycle: 5, Strand: 0, Kind: EvTxBegin}})
	k.AddCounters("run-a", 1.0, []CounterTrack{
		{Name: "abort_rate", Points: []CounterPoint{{Cycle: 0, Value: 0.25}}},
	})
	k.AddCounters("run-b", 2.0, []CounterTrack{
		{Name: "ops_per_usec", Points: []CounterPoint{{Cycle: 4000, Value: 3.5}}},
	})
	if k.Runs() != 2 {
		t.Fatalf("Runs() = %d, want 2 (merge into run-a, standalone run-b)", k.Runs())
	}
	var buf bytes.Buffer
	if err := k.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	type counter struct {
		pid   int
		ts    float64
		value float64
	}
	got := map[string]counter{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "C" {
			got[e.Name] = counter{pid: e.Pid, ts: e.Ts, value: e.Args["value"].(float64)}
		}
	}
	a, ok := got["abort_rate"]
	if !ok || a.pid != 0 || a.value != 0.25 {
		t.Errorf("merged counter wrong: %+v (want pid 0, value 0.25)", got)
	}
	b, ok := got["ops_per_usec"]
	if !ok || b.pid != 1 || b.value != 3.5 {
		t.Errorf("standalone counter wrong: %+v (want pid 1, value 3.5)", got)
	}
	// 4000 cycles at 2 GHz = 2 us.
	if b.ts != 2.0 {
		t.Errorf("counter timestamp %v us, want 2.0 (freq-scaled)", b.ts)
	}
}

// The histogram's top bucket: the largest int64 latency must land in the
// final bucket without overflow, and quantiles never report past the
// observed maximum.
func TestLatencyTopBucketSaturation(t *testing.T) {
	if got, want := latBucketOf(math.MaxInt64), latBuckets-1; got != want {
		t.Fatalf("latBucketOf(MaxInt64) = %d, want %d (top bucket)", got, want)
	}
	r := NewLatencyRecorder()
	r.Record(math.MaxInt64)
	r.Record(1)
	if r.Count() != 2 || r.Max() != math.MaxInt64 {
		t.Fatalf("count/max = %d/%d", r.Count(), r.Max())
	}
	// The top bucket's upper edge overflows int64 arithmetic if computed
	// naively; the quantile path must clamp to the observed max instead.
	if got := r.Quantile(1.0); got != math.MaxInt64 {
		t.Errorf("Quantile(1.0) = %d, want MaxInt64", got)
	}
	sum := r.Summarize()
	if sum.Max != math.MaxInt64 || sum.P50 != 1 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.P999 > sum.Max {
		t.Errorf("p99.9 %d reported past the observed max %d", sum.P999, sum.Max)
	}
}

// A recorder holding a single sample reports that sample at every
// percentile — the percentile-at-max degenerate case.
func TestLatencySingleSampleAtMax(t *testing.T) {
	r := NewLatencyRecorder()
	const v = int64(1 << 40)
	r.Record(v)
	for _, q := range []float64{0.001, 0.5, 0.999, 1.0} {
		if got := r.Quantile(q); got != v {
			t.Errorf("Quantile(%v) = %d, want %d (clamped to observed max)", q, got, v)
		}
	}
}
