package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rocktm/internal/cps"
)

func TestRecordIsAllocationFree(t *testing.T) {
	tr := NewTracer(2, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Record(0, 100, EvTxBegin, 0)
		tr.Record(1, 101, EvTxAbort, uint64(cps.COH))
	})
	if allocs != 0 {
		t.Fatalf("Record allocates: %.1f allocs/op", allocs)
	}
}

func TestRingWrapDropsOldest(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := 0; i < 6; i++ {
		tr.Record(0, int64(10+i), EvTxBegin, uint64(i))
	}
	if got := tr.Recorded(); got != 6 {
		t.Errorf("Recorded = %d, want 6", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Errorf("Dropped = %d, want 2", got)
	}
	evs := tr.Merged()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		wantArg := uint64(2 + i) // events 0 and 1 were overwritten
		if e.Arg != wantArg || e.Cycle != int64(12+i) {
			t.Errorf("event %d = {cycle %d arg %d}, want {cycle %d arg %d}",
				i, e.Cycle, e.Arg, 12+i, wantArg)
		}
	}
	tr.Reset()
	if tr.Recorded() != 0 || tr.Dropped() != 0 || len(tr.Merged()) != 0 {
		t.Errorf("Reset did not clear the ring")
	}
}

func TestMergedOrdersByCycleStrandSeq(t *testing.T) {
	tr := NewTracer(3, 16)
	tr.Record(2, 50, EvTxBegin, 0)
	tr.Record(0, 50, EvTxBegin, 0)
	tr.Record(0, 50, EvTxCommit, 0) // same cycle, later seq
	tr.Record(1, 40, EvTxBegin, 0)
	tr.Record(1, 60, EvTxAbort, uint64(cps.SIZ))
	evs := tr.Merged()
	type key struct {
		cycle  int64
		strand int32
		kind   EventKind
	}
	want := []key{
		{40, 1, EvTxBegin},
		{50, 0, EvTxBegin},
		{50, 0, EvTxCommit},
		{50, 2, EvTxBegin},
		{60, 1, EvTxAbort},
	}
	if len(evs) != len(want) {
		t.Fatalf("merged %d events, want %d", len(evs), len(want))
	}
	for i, w := range want {
		e := evs[i]
		if e.Cycle != w.cycle || e.Strand != w.strand || e.Kind != w.kind {
			t.Errorf("merged[%d] = {%d s%d %s}, want {%d s%d %s}",
				i, e.Cycle, e.Strand, e.Kind, w.cycle, w.strand, w.kind)
		}
	}
}

func syntheticEvents() []Event {
	tr := NewTracer(2, 64)
	tr.Record(0, 10, EvTxBegin, 0)
	tr.Record(0, 30, EvTxAbort, uint64(cps.COH))
	tr.Record(0, 35, EvTxBegin, 0)
	tr.Record(0, 60, EvTxCommit, 3)
	tr.Record(1, 12, EvLockAcquire, 0x1c0)
	tr.Record(1, 44, EvLockRelease, 0x1c0)
	tr.Record(1, 50, EvTxBegin, 0)
	tr.Record(1, 70, EvTxAbort, uint64(cps.SIZ|cps.ST))
	tr.Record(1, 72, EvFallback, 0x1c0)
	tr.Record(1, 90, EvSWCommit, 0)
	return tr.Merged()
}

func TestChromeTraceParsesAndPairsSpans(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, syntheticEvents(), 2.3, "unit"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	counts := map[string]int{}
	var txnSpans, lockSpans int
	for _, e := range doc.TraceEvents {
		counts[e.Name]++
		if e.Name == "txn" && e.Ph == "X" {
			txnSpans++
			if e.Dur <= 0 {
				t.Errorf("txn span has non-positive duration %v", e.Dur)
			}
		}
		if strings.HasPrefix(e.Name, "lock 0x") && e.Ph == "X" {
			lockSpans++
		}
	}
	if counts["tx-begin"] != 3 {
		t.Errorf("tx-begin instants = %d, want 3", counts["tx-begin"])
	}
	if counts["tx-abort COH"] != 1 || counts["tx-abort SIZ|ST"] != 1 {
		t.Errorf("abort instants missing CPS names: %v", counts)
	}
	if txnSpans != 3 {
		t.Errorf("txn spans = %d, want 3 (two aborts + one commit)", txnSpans)
	}
	if lockSpans != 1 {
		t.Errorf("lock spans = %d, want 1", lockSpans)
	}
}

func TestTimelineIsDeterministic(t *testing.T) {
	evs := syntheticEvents()
	var a, b bytes.Buffer
	if err := WriteTimeline(&a, evs); err != nil {
		t.Fatal(err)
	}
	if err := WriteTimeline(&b, evs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of the same stream differ")
	}
	if !strings.Contains(a.String(), "tx-abort  SIZ|ST") {
		t.Errorf("timeline missing CPS detail:\n%s", a.String())
	}
}

func TestAttributeFoldsStream(t *testing.T) {
	p := Attribute(syntheticEvents())
	if p.Begins != 3 || p.Commits != 1 || p.Aborts != 2 || p.Fallbacks != 1 || p.SWCommits != 1 {
		t.Errorf("profile = %+v", p)
	}
	if got := p.AbortRate(); got < 0.66 || got > 0.67 {
		t.Errorf("AbortRate = %v, want 2/3", got)
	}
	bits := p.BitCounts()
	if bits[cps.COH] != 1 || bits[cps.SIZ] != 1 || bits[cps.ST] != 1 {
		t.Errorf("BitCounts = %v", bits)
	}
}

func TestRegistrySnapshotSumsStrands(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < 3; i++ {
		i := i
		reg.RegisterStrand("sim", i, func() Sample {
			return Sample{Counters: []NamedValue{{Name: "loads", Value: uint64(10 * (i + 1))}}}
		})
	}
	h := cps.NewHistogram()
	h.Add(cps.COH)
	h.Add(cps.COH)
	h.Add(cps.SIZ)
	reg.Register("phtm", func() Sample {
		return Sample{Counters: []NamedValue{{Name: "ops", Value: 7}}, CPS: h}
	})
	snap := reg.Snapshot()
	if got, ok := snap.Counter("sim", "loads"); !ok || got != 60 {
		t.Errorf("Counter(sim, loads) = %d, %v; want 60, true", got, ok)
	}
	if got, ok := snap.Counter("phtm", "ops"); !ok || got != 7 {
		t.Errorf("Counter(phtm, ops) = %d, %v; want 7, true", got, ok)
	}
	if _, ok := snap.Counter("phtm", "nope"); ok {
		t.Error("Counter found a counter that does not exist")
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed Snapshot
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("snapshot JSON round-trip: %v", err)
	}
	if len(parsed.Subsystems) != 4 {
		t.Errorf("round-tripped %d subsystems, want 4", len(parsed.Subsystems))
	}
	found := false
	for _, sub := range parsed.Subsystems {
		if sub.Name == "phtm" && len(sub.CPS) == 2 && sub.CPS[0].Value == "COH" && sub.CPS[0].Count == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("phtm CPS histogram not in snapshot: %+v", parsed.Subsystems)
	}
}

func TestCPSDelta(t *testing.T) {
	before := cps.NewHistogram()
	before.Add(cps.COH)
	after := cps.NewHistogram()
	after.Merge(before)
	after.Add(cps.COH)
	after.Add(cps.SIZ | cps.ST)
	after.Add(cps.UCTI)
	got := CPSDelta(before, after)
	want := []cps.Bits{cps.COH, cps.SIZ | cps.ST, cps.UCTI}
	if len(got) != len(want) {
		t.Fatalf("CPSDelta = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CPSDelta = %v, want %v", got, want)
		}
	}
}
