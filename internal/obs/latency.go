package obs

import (
	"fmt"
	"math/bits"
)

// Log-bucketed operation-latency histogram.
//
// The recorder covers the full int64 cycle range with bounded error: values
// below 2^latSubBits land in exact unit buckets, larger values land in
// 2^latSubBits logarithmically spaced sub-buckets per power of two, so the
// relative quantile error is at most 1/2^latSubBits ≈ 3%. Everything is a
// fixed-size array owned by the recorder — Record performs no allocation,
// no locking (experiment strands run under the machine baton) and no
// floating-point math, so attaching a recorder to a driver loop cannot
// perturb a deterministic simulation.
const (
	latSubBits = 5 // 32 sub-buckets per octave
	latSub     = 1 << latSubBits
	// latBuckets: latSub exact unit buckets + one octave of latSub
	// sub-buckets for every bit length in (latSubBits, 63].
	latBuckets = latSub + (63-latSubBits)*latSub
)

// LatencyRecorder accumulates per-operation latencies measured in
// simulated cycles. The zero value is not ready for use; call
// NewLatencyRecorder (the counts array is large enough that recorders are
// shared per run, not per strand — the baton discipline makes that safe).
type LatencyRecorder struct {
	counts [latBuckets]uint64
	n      uint64
	sum    uint64
	max    int64
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder { return &LatencyRecorder{} }

// latBucketOf maps a non-negative latency to its bucket index.
func latBucketOf(v int64) int {
	if v < latSub {
		return int(v)
	}
	l := bits.Len64(uint64(v)) // > latSubBits
	// Top latSubBits bits of the mantissa below the leading one.
	sub := int((uint64(v) >> (l - 1 - latSubBits)) & (latSub - 1))
	return latSub + (l-1-latSubBits)*latSub + sub
}

// latBucketMax returns the largest value that maps to bucket i — the
// conservative (upper-bound) representative Quantile reports.
func latBucketMax(i int) int64 {
	if i < latSub {
		return int64(i)
	}
	oct := (i - latSub) / latSub // octave above the exact range
	sub := (i - latSub) % latSub // sub-bucket within the octave
	width := int64(1) << oct     // values per sub-bucket in this octave
	base := int64(1) << (oct + latSubBits)
	return base + int64(sub+1)*width - 1
}

// Record notes one operation latency in cycles. Negative latencies are
// clamped to zero (they cannot occur under the monotonic strand clock, but
// the recorder must never corrupt its buckets). Allocation-free.
func (r *LatencyRecorder) Record(cycles int64) {
	if cycles < 0 {
		cycles = 0
	}
	r.counts[latBucketOf(cycles)]++
	r.n++
	r.sum += uint64(cycles)
	if cycles > r.max {
		r.max = cycles
	}
}

// Count returns the number of recorded operations.
func (r *LatencyRecorder) Count() uint64 { return r.n }

// Max returns the exact maximum recorded latency.
func (r *LatencyRecorder) Max() int64 { return r.max }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) of the
// recorded latencies: the upper edge of the bucket holding the ceil(q*n)-th
// smallest sample (exact for latencies below 2^5 cycles, within 1/32
// relative error above). Returns 0 when nothing was recorded.
func (r *LatencyRecorder) Quantile(q float64) int64 {
	if r.n == 0 {
		return 0
	}
	rank := uint64(q * float64(r.n))
	if rank == 0 {
		rank = 1
	}
	if rank > r.n {
		rank = r.n
	}
	var seen uint64
	for i, c := range r.counts {
		seen += c
		if seen >= rank {
			m := latBucketMax(i)
			if m > r.max {
				m = r.max // never report past the observed maximum
			}
			return m
		}
	}
	return r.max
}

// LatencySummary is the fixed percentile digest figures publish: the
// paper-style tail view (p50/p90/p99/p99.9) plus the exact count and max.
// All latencies are simulated cycles.
type LatencySummary struct {
	Count uint64 `json:"count"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90"`
	P99   int64  `json:"p99"`
	P999  int64  `json:"p999"`
	Max   int64  `json:"max"`
}

// Summarize digests the recorder into the standard percentile set.
func (r *LatencyRecorder) Summarize() LatencySummary {
	return LatencySummary{
		Count: r.n,
		P50:   r.Quantile(0.50),
		P90:   r.Quantile(0.90),
		P99:   r.Quantile(0.99),
		P999:  r.Quantile(0.999),
		Max:   r.max,
	}
}

// String renders the summary compactly for notes and logs.
func (s LatencySummary) String() string {
	return fmt.Sprintf("lat p50=%d p90=%d p99=%d p99.9=%d max=%d (n=%d, cycles)",
		s.P50, s.P90, s.P99, s.P999, s.Max, s.Count)
}

// Sample returns the summary as a metrics-registry sample, the same thin
// accessor pattern core.Stats and sim.Stats use.
func (r *LatencyRecorder) Sample() Sample {
	s := r.Summarize()
	return Sample{Counters: []NamedValue{
		{Name: "lat_count", Value: s.Count},
		{Name: "lat_p50_cycles", Value: uint64(s.P50)},
		{Name: "lat_p90_cycles", Value: uint64(s.P90)},
		{Name: "lat_p99_cycles", Value: uint64(s.P99)},
		{Name: "lat_p999_cycles", Value: uint64(s.P999)},
		{Name: "lat_max_cycles", Value: uint64(s.Max)},
	}}
}

// Publish registers the recorder with the unified metrics registry under
// the given subsystem name ("latency" by convention).
func (r *LatencyRecorder) Publish(reg *Registry, subsystem string) {
	reg.Register(subsystem, r.Sample)
}

// LatencySink receives time-stamped operation latencies: cycle is the
// operation's completion time on the recording strand's clock, latency the
// begin-to-completion cost in cycles. It is the timeseries counterpart of
// LatencyRecorder — a windowed recorder implements it to build per-window
// latency histograms. Implementations follow the same observation-only
// contract as EventSink: no simulated cycles, no simulated randomness, no
// steady-state allocation.
type LatencySink interface {
	RecordLatencyAt(cycle, latency int64)
}
