package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event format, loadable in
// chrome://tracing and https://ui.perfetto.dev. Field order and the
// deterministic key order of Args (encoding/json sorts map keys) keep the
// exported bytes reproducible for reproducible runs.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// usOf converts a cycle count to microseconds at freq GHz.
func usOf(cycle int64, freqGHz float64) float64 {
	if freqGHz <= 0 {
		freqGHz = 1
	}
	return float64(cycle) / (freqGHz * 1e3)
}

// chromeEventsFor renders one run's merged event stream as trace_event
// entries under process id pid labelled label.
func chromeEventsFor(events []Event, freqGHz float64, pid int, label string) []chromeEvent {
	out := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: map[string]any{"name": label},
	}}
	seenStrand := map[int32]bool{}
	// Open-span state, per strand: hardware transactions cannot nest, and
	// we pair the most recent acquire per lock address.
	txOpen := map[int32]int64{}
	lockOpen := map[int32]map[uint64]int64{}
	for _, e := range events {
		if !seenStrand[e.Strand] {
			seenStrand[e.Strand] = true
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: int(e.Strand),
				Args: map[string]any{"name": fmt.Sprintf("strand %d", e.Strand)},
			})
		}
		ts := usOf(e.Cycle, freqGHz)
		switch e.Kind {
		case EvTxBegin:
			txOpen[e.Strand] = e.Cycle
			out = append(out, chromeEvent{
				Name: "tx-begin", Cat: "htm", Ph: "i", S: "t",
				Ts: ts, Pid: pid, Tid: int(e.Strand),
			})
		case EvTxCommit, EvTxAbort:
			name, args := "tx-commit", map[string]any{"outcome": "commit", "stores": e.Arg}
			if e.Kind == EvTxAbort {
				name = "tx-abort " + e.CPS().String()
				args = map[string]any{"outcome": "abort", "cps": e.CPS().String()}
			}
			out = append(out, chromeEvent{
				Name: name, Cat: "htm", Ph: "i", S: "t",
				Ts: ts, Pid: pid, Tid: int(e.Strand), Args: args,
			})
			if begin, ok := txOpen[e.Strand]; ok {
				delete(txOpen, e.Strand)
				out = append(out, chromeEvent{
					Name: "txn", Cat: "htm", Ph: "X",
					Ts: usOf(begin, freqGHz), Dur: usOf(e.Cycle-begin, freqGHz),
					Pid: pid, Tid: int(e.Strand), Args: args,
				})
			}
		case EvLockAcquire:
			if lockOpen[e.Strand] == nil {
				lockOpen[e.Strand] = map[uint64]int64{}
			}
			lockOpen[e.Strand][e.Arg] = e.Cycle
			out = append(out, chromeEvent{
				Name: "lock-acquire", Cat: "lock", Ph: "i", S: "t",
				Ts: ts, Pid: pid, Tid: int(e.Strand),
				Args: map[string]any{"addr": fmt.Sprintf("%#x", e.Arg)},
			})
		case EvLockRelease:
			if acq, ok := lockOpen[e.Strand][e.Arg]; ok {
				delete(lockOpen[e.Strand], e.Arg)
				out = append(out, chromeEvent{
					Name: fmt.Sprintf("lock %#x", e.Arg), Cat: "lock", Ph: "X",
					Ts: usOf(acq, freqGHz), Dur: usOf(e.Cycle-acq, freqGHz),
					Pid: pid, Tid: int(e.Strand),
				})
			}
		case EvModeSoftware, EvModeHardware, EvFallback, EvSWCommit, EvSWAbort:
			scope := "t"
			if e.Kind == EvModeSoftware || e.Kind == EvModeHardware {
				scope = "p" // phase changes are system-wide
			}
			out = append(out, chromeEvent{
				Name: e.Kind.String(), Cat: "tm", Ph: "i", S: scope,
				Ts: ts, Pid: pid, Tid: int(e.Strand),
				Args: map[string]any{"arg": e.Arg},
			})
		}
	}
	return out
}

// WriteChromeTrace writes events as one Chrome trace_event JSON document.
func WriteChromeTrace(w io.Writer, events []Event, freqGHz float64, label string) error {
	doc := chromeTrace{
		TraceEvents:     chromeEventsFor(events, freqGHz, 0, label),
		DisplayTimeUnit: "ms",
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteTimeline writes events as a plain-text timeline, one line per event:
// cycle, strand, kind, and kind-specific detail. Output is byte-for-byte
// deterministic for a deterministic event stream, which is what the
// determinism tests compare.
func WriteTimeline(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		detail := ""
		switch e.Kind {
		case EvTxAbort:
			detail = e.CPS().String()
		case EvTxCommit:
			detail = fmt.Sprintf("stores=%d", e.Arg)
		case EvLockAcquire, EvLockRelease, EvFallback:
			if e.Arg != 0 {
				detail = fmt.Sprintf("addr=%#x", e.Arg)
			}
		case EvModeSoftware:
			detail = fmt.Sprintf("hold=%d", e.Arg)
		}
		if detail != "" {
			detail = "  " + detail
		}
		if _, err := fmt.Fprintf(bw, "%12d  s%02d  %s%s\n", e.Cycle, e.Strand, e.Kind, detail); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TraceSink accumulates the traces of several experiment runs (one machine
// each) and exports them as a single Chrome trace document, one "process"
// per run, so a whole `figures` invocation can be inspected side by side in
// Perfetto.
type TraceSink struct {
	runs []sinkRun
}

type sinkRun struct {
	label   string
	freqGHz float64
	events  []Event
	tracks  []CounterTrack
}

// Add deposits one run's merged event stream under the given label.
func (k *TraceSink) Add(label string, freqGHz float64, events []Event) {
	k.runs = append(k.runs, sinkRun{label: label, freqGHz: freqGHz, events: events})
}

// CounterPoint is one sample of a counter track: the simulated cycle it
// was taken at and its value.
type CounterPoint struct {
	Cycle int64
	Value float64
}

// CounterTrack is one named counter series — a windowed statistic such as
// throughput or abort rate sampled over time. Perfetto renders counter
// tracks as line charts stacked with the event timeline, which is how the
// timeseries layer's window series appear alongside raw trace events.
type CounterTrack struct {
	Name   string
	Points []CounterPoint
}

// AddCounters attaches counter tracks to the run with the given label, or
// deposits an events-free run if no deposited run matches — counter-only
// exports (timeline capture without event tracing) still render.
func (k *TraceSink) AddCounters(label string, freqGHz float64, tracks []CounterTrack) {
	for i := range k.runs {
		if k.runs[i].label == label {
			k.runs[i].tracks = append(k.runs[i].tracks, tracks...)
			return
		}
	}
	k.runs = append(k.runs, sinkRun{label: label, freqGHz: freqGHz, tracks: tracks})
}

// counterEventsFor renders one run's counter tracks as ph "C" trace
// events under process pid.
func counterEventsFor(tracks []CounterTrack, freqGHz float64, pid int) []chromeEvent {
	var out []chromeEvent
	for _, t := range tracks {
		for _, p := range t.Points {
			out = append(out, chromeEvent{
				Name: t.Name, Cat: "timeseries", Ph: "C",
				Ts: usOf(p.Cycle, freqGHz), Pid: pid, Tid: 0,
				Args: map[string]any{"value": p.Value},
			})
		}
	}
	return out
}

// Runs returns how many runs have been deposited.
func (k *TraceSink) Runs() int { return len(k.runs) }

// Events returns the number of events across all deposited runs.
func (k *TraceSink) Events() int {
	n := 0
	for _, r := range k.runs {
		n += len(r.events)
	}
	return n
}

// WriteChrome writes all deposited runs as one Chrome trace JSON document.
func (k *TraceSink) WriteChrome(w io.Writer) error {
	doc := chromeTrace{DisplayTimeUnit: "ms"}
	for i, r := range k.runs {
		doc.TraceEvents = append(doc.TraceEvents, chromeEventsFor(r.events, r.freqGHz, i, r.label)...)
		doc.TraceEvents = append(doc.TraceEvents, counterEventsFor(r.tracks, r.freqGHz, i)...)
	}
	return json.NewEncoder(w).Encode(doc)
}

// WriteTimeline writes all deposited runs as labelled plain-text timelines.
func (k *TraceSink) WriteTimeline(w io.Writer) error {
	for _, r := range k.runs {
		if _, err := fmt.Fprintf(w, "== trace: %s ==\n", r.label); err != nil {
			return err
		}
		if err := WriteTimeline(w, r.events); err != nil {
			return err
		}
	}
	return nil
}
