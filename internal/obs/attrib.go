package obs

import "rocktm/internal/cps"

// AbortProfile is the fold of a trace's transaction events: how many
// hardware transactions began, committed and aborted, and the distribution
// of CPS values over the aborts — the raw material of the paper's Table 4
// abort-attribution breakdowns.
type AbortProfile struct {
	Begins    uint64
	Commits   uint64
	Aborts    uint64
	Fallbacks uint64
	SWCommits uint64
	// Hist counts exact CPS register values over aborts.
	Hist *cps.Histogram
}

// Attribute folds a merged event stream into an AbortProfile.
func Attribute(events []Event) AbortProfile {
	p := AbortProfile{Hist: cps.NewHistogram()}
	for _, e := range events {
		switch e.Kind {
		case EvTxBegin:
			p.Begins++
		case EvTxCommit:
			p.Commits++
		case EvTxAbort:
			p.Aborts++
			p.Hist.Add(e.CPS())
		case EvFallback:
			p.Fallbacks++
		case EvSWCommit:
			p.SWCommits++
		}
	}
	return p
}

// AbortRate is the fraction of begun transactions that aborted.
func (p AbortProfile) AbortRate() float64 {
	if p.Begins == 0 {
		return 0
	}
	return float64(p.Aborts) / float64(p.Begins)
}

// BitCounts returns, for every defined CPS bit, the number of aborts in
// which that bit was set (bits co-occur, so the columns need not sum to
// Aborts).
func (p AbortProfile) BitCounts() map[cps.Bits]uint64 {
	out := make(map[cps.Bits]uint64, len(cps.All))
	for _, bit := range cps.All {
		if n := p.Hist.BitCount(bit); n > 0 {
			out[bit] = n
		}
	}
	return out
}
