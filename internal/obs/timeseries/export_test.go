package timeseries

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rocktm/internal/obs"
)

// smallSeries builds a two-window series exercising every CSV column.
func smallSeries() Series {
	r := NewRecorder(MinWidth)
	r.SinkEvent(0, 1, obs.EvTxBegin, 0)
	r.SinkEvent(0, 5, obs.EvTxCommit, 1)
	r.RecordLatencyAt(5, 4)
	r.SinkEvent(0, MinWidth+1, obs.EvTxBegin, 0)
	r.SinkEvent(0, MinWidth+9, obs.EvTxAbort, 0x002) // COH
	r.SinkEvent(0, MinWidth+20, obs.EvSWCommit, 0)
	r.RecordLatencyAt(MinWidth+20, 19)
	return r.Series()
}

// An empty sink still writes a valid, stable document — the figures
// command always writes the file once -timeline is given, even when no
// experiment deposited a series.
func TestSinkWritesEmptyDocument(t *testing.T) {
	var k Sink
	var buf bytes.Buffer
	if err := k.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty sink JSON invalid: %v\n%s", err, buf.Bytes())
	}
	if doc.Runs == nil || len(doc.Runs) != 0 {
		t.Errorf(`empty sink must encode "runs": [], got %s`, buf.Bytes())
	}
	buf.Reset()
	if err := k.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != csvHeader {
		t.Errorf("empty sink CSV = %q, want header only", got)
	}
}

func TestSinkJSONCarriesRunsAndVerdicts(t *testing.T) {
	var k Sink
	s := smallSeries()
	k.Add("plain", s)
	k.AddJudged("judged", s,
		[]Finding{{Kind: KindPhaseFlipDrain, FirstWindow: 1, LastWindow: 1, Evidence: "e"}},
		[]SLOResult{{SLO: SLO{Name: "tail", Percentile: "p99.9"}, Pass: true, WorstWindow: -1}})
	if k.Runs() != 2 {
		t.Fatalf("Runs() = %d, want 2", k.Runs())
	}
	var buf bytes.Buffer
	if err := k.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			Label    string      `json:"label"`
			Series   Series      `json:"series"`
			Findings []Finding   `json:"findings"`
			SLOs     []SLOResult `json:"slos"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 2 || doc.Runs[0].Label != "plain" || doc.Runs[1].Label != "judged" {
		t.Fatalf("labels lost: %s", buf.Bytes())
	}
	if doc.Runs[0].Findings != nil || doc.Runs[0].SLOs != nil {
		t.Errorf("unjudged run must omit findings/slos: %s", buf.Bytes())
	}
	if len(doc.Runs[1].Findings) != 1 || doc.Runs[1].Findings[0].Kind != KindPhaseFlipDrain {
		t.Errorf("findings lost: %+v", doc.Runs[1].Findings)
	}
	if len(doc.Runs[1].SLOs) != 1 || doc.Runs[1].SLOs[0].SLO.Name != "tail" {
		t.Errorf("SLO verdicts lost: %+v", doc.Runs[1].SLOs)
	}
	if doc.Runs[1].Series.WidthCycles != MinWidth || len(doc.Runs[1].Series.Windows) != 2 {
		t.Errorf("series lost: %+v", doc.Runs[1].Series)
	}
}

func TestSinkCSVOneRowPerWindow(t *testing.T) {
	var k Sink
	k.Add("run-a", smallSeries())
	k.Add("run-b", smallSeries())
	var buf bytes.Buffer
	if err := k.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != csvHeader {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 1+2*2 {
		t.Fatalf("got %d data rows, want 4 (2 runs x 2 windows)", len(lines)-1)
	}
	wantCols := strings.Count(csvHeader, ",") + 1
	for i, line := range lines[1:] {
		if got := strings.Count(line, ",") + 1; got != wantCols {
			t.Errorf("row %d has %d columns, want %d: %q", i, got, wantCols, line)
		}
	}
	if !strings.HasPrefix(lines[1], "run-a,0,") || !strings.HasPrefix(lines[3], "run-b,0,") {
		t.Errorf("rows not labelled/ordered by run: %q / %q", lines[1], lines[3])
	}
	// The COH abort in window 1 lands in the coh_aborts column.
	if !strings.Contains(lines[2], ",1,") || !strings.HasPrefix(lines[2], "run-a,1,") {
		t.Errorf("window 1 row wrong: %q", lines[2])
	}
}

// Each visits deposits in order — the figures command relies on this to
// merge counter tracks into the Chrome trace deterministically.
func TestSinkEach(t *testing.T) {
	var k Sink
	k.Add("first", smallSeries())
	k.Add("second", Series{})
	var got []string
	k.Each(func(label string, s Series) { got = append(got, label) })
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Errorf("Each order = %v", got)
	}
}

// CounterTracks renders the four headline statistics, one point per
// window, sampled at the window's start cycle.
func TestCounterTracks(t *testing.T) {
	s := smallSeries()
	tracks := s.CounterTracks()
	wantNames := []string{"ops_per_usec", "abort_rate", "fallback_frac", "p999_cycles"}
	if len(tracks) != len(wantNames) {
		t.Fatalf("got %d tracks, want %d", len(tracks), len(wantNames))
	}
	for i, tr := range tracks {
		if tr.Name != wantNames[i] {
			t.Errorf("track %d = %q, want %q", i, tr.Name, wantNames[i])
		}
		if len(tr.Points) != len(s.Windows) {
			t.Errorf("track %q has %d points, want %d", tr.Name, len(tr.Points), len(s.Windows))
		}
		for j, p := range tr.Points {
			if p.Cycle != s.Windows[j].StartCycle {
				t.Errorf("track %q point %d at cycle %d, want %d", tr.Name, j, p.Cycle, s.Windows[j].StartCycle)
			}
		}
	}
	if v := tracks[1].Points[1].Value; v != s.Windows[1].AbortRate || v == 0 {
		t.Errorf("abort_rate track value %v, want %v (nonzero)", v, s.Windows[1].AbortRate)
	}
	if v := tracks[3].Points[0].Value; v != float64(s.Windows[0].P999) {
		t.Errorf("p999 track value %v, want %v", v, float64(s.Windows[0].P999))
	}
}
