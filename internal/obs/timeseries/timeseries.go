// Package timeseries is the time-resolved layer of the observability
// stack: a windowed recorder that folds the simulator's existing hook
// points (transaction begin/commit/abort with CPS bits, software
// fallbacks, PhTM phase transitions, lock acquire/release) and the
// workload driver's per-operation latencies into fixed-width
// simulated-cycle windows. Where the run-wide metrics registry and
// latency histogram answer "how did the run do overall", the window
// series answers "when did it go wrong" — the phase-flip drains and
// fallback convoys that aggregate numbers hide (EXPERIMENTS.md E23).
//
// On top of the raw series sit two consumers:
//
//   - pathology detectors (detect.go) that scan a series for named
//     failure signatures — phase-flip drain, lemming convoy, hot-key
//     abort storm, capacity-hopeless loop — and emit structured findings
//     with window ranges and evidence;
//   - an SLO engine (slo.go) that evaluates a declared latency objective
//     ("p99.9 <= N cycles in 99.9% of windows") per window and reports a
//     pass/fail verdict with the error-budget burn rate.
//
// The recorder obeys the repository's zero-perturbation contract (see
// internal/obs): recording charges no simulated cycles, draws no
// simulated randomness, and the steady-state intake path (an event or
// latency sample landing in an existing window) allocates nothing, so a
// run with capture enabled is cycle-identical to one without. Window
// rollover allocates the new window's bucket array on the host — an
// amortized host-side cost that cannot perturb virtual time.
package timeseries

import (
	"rocktm/internal/cps"
	"rocktm/internal/obs"
)

// DefaultWidth is the default window width in simulated cycles: wide
// enough that a window at experiment scale holds hundreds of operations
// (stable percentiles), narrow enough that a PhTM software-phase drain
// (tens of thousands of cycles) spans its own windows instead of
// averaging away.
const DefaultWidth = 32768

// MinWidth bounds the window width from below: narrower windows would
// make pathological runs allocate unbounded window arrays.
const MinWidth = 256

// window accumulates one fixed-width interval of the run. Counters are
// folded in as events arrive; the latency histogram is allocated lazily
// on the window's first operation completion.
type window struct {
	begins    uint64
	commits   uint64
	aborts    uint64
	swCommits uint64
	swAborts  uint64
	fallbacks uint64
	toSW      uint64
	toHW      uint64
	lockAcqs  uint64
	lockHold  int64
	cpsBits   [numCPSBits]uint64
	lat       *obs.LatencyRecorder
}

// numCPSBits mirrors len(cps.All); asserted equal at init so the window
// array stays in lockstep with the CPS register definition.
const numCPSBits = 12

func init() {
	if len(cps.All) != numCPSBits {
		panic("timeseries: numCPSBits out of sync with cps.All")
	}
}

// lockSlot tracks one strand's most recent open lock acquisition so hold
// time can be attributed to the release window. Strands in this codebase
// hold at most one elision/fallback lock at a time; a nested acquire
// simply replaces the slot (the outer hold is then not attributed —
// counts remain exact either way).
type lockSlot struct {
	addr  uint64
	cycle int64
	open  bool
}

// Recorder folds hook-point events and operation latencies into
// fixed-width simulated-cycle windows. It implements obs.EventSink (feed
// it via sim.Machine.AttachEventSink) and obs.LatencySink (feed it via
// workload.Driver.Observe). All intake happens under the machine baton,
// so the recorder needs no synchronization.
type Recorder struct {
	width   int64
	freqGHz float64
	windows []window
	locks   []lockSlot
}

// NewRecorder builds a recorder with the given window width in simulated
// cycles (<=0 selects DefaultWidth; narrower than MinWidth is clamped).
func NewRecorder(width int64) *Recorder {
	if width <= 0 {
		width = DefaultWidth
	}
	if width < MinWidth {
		width = MinWidth
	}
	return &Recorder{width: width, freqGHz: 1}
}

// SetFreqGHz records the simulated clock frequency used to convert
// per-window operation counts into ops/usec throughput.
func (r *Recorder) SetFreqGHz(f float64) {
	if f > 0 {
		r.freqGHz = f
	}
}

// Width returns the window width in cycles.
func (r *Recorder) Width() int64 { return r.width }

// at returns the window covering cycle, growing the series as the run's
// clock advances. Growth is amortized append; within a window the lookup
// is two integer ops and a bounds check.
func (r *Recorder) at(cycle int64) *window {
	if cycle < 0 {
		cycle = 0
	}
	idx := int(cycle / r.width)
	for len(r.windows) <= idx {
		r.windows = append(r.windows, window{})
	}
	return &r.windows[idx]
}

// lock returns strand's lock slot, growing the per-strand table on first
// contact (bounded by the machine's strand count).
func (r *Recorder) lock(strand int) *lockSlot {
	for len(r.locks) <= strand {
		r.locks = append(r.locks, lockSlot{})
	}
	return &r.locks[strand]
}

// SinkEvent implements obs.EventSink: it folds one hook-point event into
// the window covering its cycle.
func (r *Recorder) SinkEvent(strand int, cycle int64, kind obs.EventKind, arg uint64) {
	w := r.at(cycle)
	switch kind {
	case obs.EvTxBegin:
		w.begins++
	case obs.EvTxCommit:
		w.commits++
	case obs.EvTxAbort:
		w.aborts++
		bits := cps.Bits(arg)
		for i, b := range cps.All {
			if bits&b != 0 {
				w.cpsBits[i]++
			}
		}
	case obs.EvSWCommit:
		w.swCommits++
	case obs.EvSWAbort:
		w.swAborts++
	case obs.EvFallback:
		w.fallbacks++
	case obs.EvModeSoftware:
		w.toSW++
	case obs.EvModeHardware:
		w.toHW++
	case obs.EvLockAcquire:
		w.lockAcqs++
		*r.lock(strand) = lockSlot{addr: arg, cycle: cycle, open: true}
	case obs.EvLockRelease:
		if sl := r.lock(strand); sl.open && sl.addr == arg {
			sl.open = false
			// Hold time is attributed to the release window: the hold is
			// only known complete then, and the attribution question only
			// matters at window granularity.
			w.lockHold += cycle - sl.cycle
		}
	}
}

// RecordLatencyAt implements obs.LatencySink: one operation completed at
// cycle after latency cycles of begin-to-completion time (retries,
// backoff and queueing included). The operation is attributed to its
// completion window.
func (r *Recorder) RecordLatencyAt(cycle, latency int64) {
	w := r.at(cycle)
	if w.lat == nil {
		w.lat = obs.NewLatencyRecorder()
	}
	w.lat.Record(latency)
}

// WindowStats is the published, JSON-stable view of one window. Rates and
// percentiles are precomputed so a series survives the experiment
// runner's content-addressed cache byte-identically.
type WindowStats struct {
	// Index is the window's position; it covers simulated cycles
	// [Index*Width, (Index+1)*Width).
	Index      int   `json:"index"`
	StartCycle int64 `json:"start_cycle"`

	// Ops is the number of operations that completed in the window;
	// Throughput is the same information as ops per simulated microsecond.
	Ops        uint64  `json:"ops"`
	Throughput float64 `json:"ops_per_usec"`

	// Hardware-transaction flow.
	Begins  uint64 `json:"tx_begins,omitempty"`
	Commits uint64 `json:"tx_commits,omitempty"`
	Aborts  uint64 `json:"tx_aborts,omitempty"`
	// AbortRate is aborts / (aborts + commits) over the window's hardware
	// attempts (0 when there were none).
	AbortRate float64 `json:"abort_rate,omitempty"`
	// CPS counts, per bit mnemonic, how many aborts in the window carried
	// that CPS bit (one abort can carry several).
	CPS map[string]uint64 `json:"cps,omitempty"`

	// Software-path flow: STM commits/aborts, fallback events, and PhTM
	// phase transitions observed in the window.
	SWCommits  uint64 `json:"sw_commits,omitempty"`
	SWAborts   uint64 `json:"sw_aborts,omitempty"`
	Fallbacks  uint64 `json:"fallbacks,omitempty"`
	ToSoftware uint64 `json:"to_software,omitempty"`
	ToHardware uint64 `json:"to_hardware,omitempty"`
	// FallbackFrac is the fraction of the window's completions that took a
	// software or lock path: (sw_commits + fallbacks) / (tx_commits +
	// sw_commits + fallbacks). For PhTM it tracks the software-phase
	// fraction; for TLE the lock-fallback fraction.
	FallbackFrac float64 `json:"fallback_frac,omitempty"`

	// Lock traffic: acquisitions and total hold cycles (attributed to the
	// window the lock was released in).
	LockAcquires   uint64 `json:"lock_acquires,omitempty"`
	LockHoldCycles int64  `json:"lock_hold_cycles,omitempty"`

	// Log-bucketed latency percentiles of the operations that completed
	// in the window, in simulated cycles (all zero when Ops is 0).
	P50  int64 `json:"p50,omitempty"`
	P90  int64 `json:"p90,omitempty"`
	P99  int64 `json:"p99,omitempty"`
	P999 int64 `json:"p999,omitempty"`
	Max  int64 `json:"max,omitempty"`
}

// Series is a finished run's window sequence plus the constants needed to
// interpret it. It is the exchange format between the recorder and the
// detector/SLO layers, and it is what rides through the runner cache.
type Series struct {
	WidthCycles int64         `json:"width_cycles"`
	FreqGHz     float64       `json:"freq_ghz"`
	Windows     []WindowStats `json:"windows"`
}

// Series snapshots the recorder into its published form. Trailing windows
// are truncated after the last one with any activity; interior quiet
// windows are kept so the time axis stays honest.
func (r *Recorder) Series() Series {
	s := Series{WidthCycles: r.width, FreqGHz: r.freqGHz}
	last := -1
	for i := range r.windows {
		if r.windows[i].active() {
			last = i
		}
	}
	usPerWindow := float64(r.width) / (r.freqGHz * 1e3)
	for i := 0; i <= last; i++ {
		w := &r.windows[i]
		ws := WindowStats{
			Index:          i,
			StartCycle:     int64(i) * r.width,
			Begins:         w.begins,
			Commits:        w.commits,
			Aborts:         w.aborts,
			SWCommits:      w.swCommits,
			SWAborts:       w.swAborts,
			Fallbacks:      w.fallbacks,
			ToSoftware:     w.toSW,
			ToHardware:     w.toHW,
			LockAcquires:   w.lockAcqs,
			LockHoldCycles: w.lockHold,
		}
		if att := w.aborts + w.commits; att > 0 {
			ws.AbortRate = float64(w.aborts) / float64(att)
		}
		if done := w.commits + w.swCommits + w.fallbacks; done > 0 {
			ws.FallbackFrac = float64(w.swCommits+w.fallbacks) / float64(done)
		}
		for bi, b := range cps.All {
			if w.cpsBits[bi] > 0 {
				if ws.CPS == nil {
					ws.CPS = make(map[string]uint64, 4)
				}
				ws.CPS[cps.Name(b)] = w.cpsBits[bi]
			}
		}
		if w.lat != nil {
			sum := w.lat.Summarize()
			ws.Ops = sum.Count
			ws.Throughput = float64(sum.Count) / usPerWindow
			ws.P50, ws.P90, ws.P99, ws.P999, ws.Max = sum.P50, sum.P90, sum.P99, sum.P999, sum.Max
		}
		s.Windows = append(s.Windows, ws)
	}
	return s
}

// active reports whether anything at all landed in the window.
func (w *window) active() bool {
	return w.begins|w.commits|w.aborts|w.swCommits|w.swAborts|
		w.fallbacks|w.toSW|w.toHW|w.lockAcqs != 0 ||
		w.lockHold != 0 || (w.lat != nil && w.lat.Count() > 0)
}

// EndCycle returns the exclusive upper cycle bound of window w.
func (s Series) EndCycle(w WindowStats) int64 { return w.StartCycle + s.WidthCycles }

// CPSShare returns the fraction of the window's aborts that carried any
// bit of mask (0 when the window had no aborts).
func (w WindowStats) CPSShare(mask cps.Bits) float64 {
	if w.Aborts == 0 {
		return 0
	}
	var n uint64
	for _, b := range cps.All {
		if mask&b != 0 {
			n += w.CPS[cps.Name(b)]
		}
	}
	// One abort can carry several bits of the mask; the share is an upper
	// bound and is clamped so callers can treat it as a fraction.
	f := float64(n) / float64(w.Aborts)
	if f > 1 {
		f = 1
	}
	return f
}
