package timeseries

import (
	"encoding/json"
	"reflect"
	"testing"

	"rocktm/internal/cps"
	"rocktm/internal/obs"
)

// Width handling: zero and negative select the default, narrower than
// MinWidth is clamped, anything else is taken as given.
func TestNewRecorderWidth(t *testing.T) {
	for _, tc := range []struct{ in, want int64 }{
		{0, DefaultWidth},
		{-5, DefaultWidth},
		{1, MinWidth},
		{MinWidth, MinWidth},
		{4096, 4096},
	} {
		if got := NewRecorder(tc.in).Width(); got != tc.want {
			t.Errorf("NewRecorder(%d).Width() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// Events land in the window covering their cycle: [i*width, (i+1)*width).
// Negative cycles (impossible under the monotonic strand clock, but the
// recorder must not corrupt itself) clamp to window 0.
func TestWindowAssignment(t *testing.T) {
	r := NewRecorder(MinWidth)
	r.SinkEvent(0, 0, obs.EvTxCommit, 0)
	r.SinkEvent(0, MinWidth-1, obs.EvTxCommit, 0)
	r.SinkEvent(1, MinWidth, obs.EvTxCommit, 0)
	r.SinkEvent(0, -7, obs.EvTxBegin, 0)
	s := r.Series()
	if len(s.Windows) != 2 {
		t.Fatalf("got %d windows, want 2", len(s.Windows))
	}
	if s.Windows[0].Commits != 2 || s.Windows[1].Commits != 1 {
		t.Errorf("commit split = %d/%d, want 2/1", s.Windows[0].Commits, s.Windows[1].Commits)
	}
	if s.Windows[0].Begins != 1 {
		t.Errorf("negative cycle not clamped to window 0: begins=%d", s.Windows[0].Begins)
	}
	for i, w := range s.Windows {
		if w.Index != i || w.StartCycle != int64(i)*MinWidth {
			t.Errorf("window %d has Index=%d StartCycle=%d", i, w.Index, w.StartCycle)
		}
		if got := s.EndCycle(w); got != w.StartCycle+MinWidth {
			t.Errorf("window %d EndCycle=%d, want %d", i, got, w.StartCycle+MinWidth)
		}
	}
}

// Derived rates: abort rate over hardware attempts, fallback fraction
// over completions, and the per-bit CPS census of aborts.
func TestRatesAndCPSMix(t *testing.T) {
	r := NewRecorder(MinWidth)
	r.SinkEvent(0, 10, obs.EvTxCommit, 3)
	r.SinkEvent(0, 11, obs.EvTxAbort, uint64(cps.COH|cps.ST))
	r.SinkEvent(0, 12, obs.EvSWCommit, 0)
	r.SinkEvent(0, 13, obs.EvFallback, 0)
	r.SinkEvent(0, 14, obs.EvFallback, 0)
	r.SinkEvent(0, 15, obs.EvModeSoftware, 100)
	r.SinkEvent(0, 16, obs.EvModeHardware, 0)
	r.SinkEvent(0, 17, obs.EvSWAbort, 0)
	s := r.Series()
	w := s.Windows[0]
	if w.AbortRate != 0.5 {
		t.Errorf("abort rate = %v, want 0.5 (1 abort / 2 attempts)", w.AbortRate)
	}
	// Completions: 1 hw commit + 1 sw commit + 2 fallbacks = 4, of which 3
	// took a software/lock path.
	if w.FallbackFrac != 0.75 {
		t.Errorf("fallback frac = %v, want 0.75", w.FallbackFrac)
	}
	if w.CPS["COH"] != 1 || w.CPS["ST"] != 1 || len(w.CPS) != 2 {
		t.Errorf("CPS census = %v, want COH:1 ST:1", w.CPS)
	}
	if w.ToSoftware != 1 || w.ToHardware != 1 || w.SWAborts != 1 || w.SWCommits != 1 {
		t.Errorf("mode/software counts wrong: %+v", w)
	}
	if got := w.CPSShare(cps.COH); got != 1 {
		t.Errorf("CPSShare(COH) = %v, want 1", got)
	}
	// One abort carries both mask bits: the share is clamped to 1.
	if got := w.CPSShare(cps.COH | cps.ST); got != 1 {
		t.Errorf("CPSShare(COH|ST) = %v, want clamp to 1", got)
	}
	if got := w.CPSShare(cps.SIZ); got != 0 {
		t.Errorf("CPSShare(SIZ) = %v, want 0", got)
	}
}

// Lock hold time is attributed to the release window; the acquisition
// count to the acquire window. Releases with no matching open acquire
// (wrong address, or never acquired) are counted nowhere.
func TestLockHoldAttribution(t *testing.T) {
	r := NewRecorder(MinWidth)
	r.SinkEvent(0, 100, obs.EvLockAcquire, 0xA0)
	r.SinkEvent(0, 600, obs.EvLockRelease, 0xA0) // window 2, hold 500
	r.SinkEvent(1, 50, obs.EvLockRelease, 0xB0)  // never acquired: ignored
	r.SinkEvent(2, 60, obs.EvLockAcquire, 0xC0)
	r.SinkEvent(2, 70, obs.EvLockRelease, 0xDD) // address mismatch: ignored
	s := r.Series()
	if got := s.Windows[0].LockAcquires; got != 2 {
		t.Errorf("window 0 acquires = %d, want 2", got)
	}
	if got := s.Windows[0].LockHoldCycles; got != 0 {
		t.Errorf("window 0 hold = %d, want 0 (hold belongs to the release window)", got)
	}
	if got := s.Windows[2].LockHoldCycles; got != 500 {
		t.Errorf("window 2 hold = %d, want 500", got)
	}
	if got := s.Windows[1].LockHoldCycles; got != 0 {
		t.Errorf("window 1 hold = %d, want 0", got)
	}
}

// Latencies build per-window percentile digests, throughput converts the
// op count via the window's wall-clock span, and windows without ops
// report all-zero latency fields.
func TestLatencyWindows(t *testing.T) {
	r := NewRecorder(MinWidth)
	r.SetFreqGHz(2)
	for i := 0; i < 64; i++ {
		r.RecordLatencyAt(10+int64(i), 16)
	}
	r.RecordLatencyAt(100, 1000) // same window, one slow op
	r.SinkEvent(0, MinWidth+5, obs.EvTxCommit, 0)
	s := r.Series()
	if s.FreqGHz != 2 {
		t.Fatalf("FreqGHz = %v, want 2", s.FreqGHz)
	}
	w := s.Windows[0]
	if w.Ops != 65 {
		t.Fatalf("ops = %d, want 65", w.Ops)
	}
	// 256 cycles at 2 GHz = 0.128 us.
	want := 65 / (float64(MinWidth) / (2 * 1e3))
	if w.Throughput != want {
		t.Errorf("throughput = %v, want %v", w.Throughput, want)
	}
	if w.P50 != 16 || w.Max != 1000 {
		t.Errorf("p50/max = %d/%d, want 16/1000", w.P50, w.Max)
	}
	if w.P50 > w.P90 || w.P90 > w.P99 || w.P99 > w.P999 || w.P999 > w.Max {
		t.Errorf("percentiles not monotone: %+v", w)
	}
	if q := s.Windows[1]; q.Ops != 0 || q.P50 != 0 || q.Max != 0 || q.Throughput != 0 {
		t.Errorf("op-free window carries latency stats: %+v", q)
	}
}

// The series keeps interior quiet windows (the time axis stays honest)
// and truncates only after the last active one.
func TestSeriesTruncation(t *testing.T) {
	r := NewRecorder(MinWidth)
	r.SinkEvent(0, 10, obs.EvTxCommit, 0)
	r.SinkEvent(0, 3*MinWidth+1, obs.EvTxCommit, 0)
	s := r.Series()
	if len(s.Windows) != 4 {
		t.Fatalf("got %d windows, want 4 (windows 1-2 quiet but interior)", len(s.Windows))
	}
	for _, i := range []int{1, 2} {
		if s.Windows[i].Commits != 0 || s.Windows[i].Ops != 0 {
			t.Errorf("interior window %d not quiet: %+v", i, s.Windows[i])
		}
	}
	if empty := NewRecorder(MinWidth).Series(); len(empty.Windows) != 0 {
		t.Errorf("fresh recorder yields %d windows, want 0", len(empty.Windows))
	}
}

// A series must survive a JSON round trip exactly — it rides through the
// runner's content-addressed cache as part of cell payloads.
func TestSeriesJSONRoundTrip(t *testing.T) {
	r := NewRecorder(MinWidth)
	r.SetFreqGHz(1.5)
	r.SinkEvent(0, 1, obs.EvTxBegin, 0)
	r.SinkEvent(0, 2, obs.EvTxAbort, uint64(cps.COH))
	r.SinkEvent(0, 3, obs.EvTxBegin, 0)
	r.SinkEvent(0, 9, obs.EvTxCommit, 2)
	r.RecordLatencyAt(9, 8)
	r.SinkEvent(0, MinWidth+1, obs.EvLockAcquire, 0x40)
	r.SinkEvent(0, MinWidth+9, obs.EvLockRelease, 0x40)
	s := r.Series()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Series
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("series changed across JSON round trip:\n%+v\n%+v", s, got)
	}
	b2, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Errorf("re-marshal not byte-identical:\n%s\n%s", b, b2)
	}
}

// The zero-perturbation contract's host half: once a window exists (its
// latency histogram allocated by the first op), folding events and
// latencies into it allocates nothing.
func TestSteadyStateAllocationFree(t *testing.T) {
	r := NewRecorder(MinWidth)
	r.SinkEvent(0, 10, obs.EvLockAcquire, 0x40) // warm the strand-0 lock slot
	r.RecordLatencyAt(10, 5)                    // warm window 0's histogram
	allocs := testing.AllocsPerRun(200, func() {
		r.SinkEvent(0, 11, obs.EvTxBegin, 0)
		r.SinkEvent(0, 12, obs.EvTxAbort, uint64(cps.COH|cps.ST))
		r.SinkEvent(0, 13, obs.EvTxCommit, 1)
		r.SinkEvent(0, 14, obs.EvLockAcquire, 0x40)
		r.SinkEvent(0, 15, obs.EvLockRelease, 0x40)
		r.RecordLatencyAt(16, 7)
	})
	if allocs != 0 {
		t.Errorf("steady-state intake allocates %.1f times per op, want 0", allocs)
	}
}
