package timeseries

import (
	"strings"
	"testing"
)

// mkSeries builds a synthetic series at MinWidth from pre-digested window
// stats, filling in Index/StartCycle so detectors see a consistent axis.
func mkSeries(ws ...WindowStats) Series {
	s := Series{WidthCycles: MinWidth, FreqGHz: 1}
	for i := range ws {
		ws[i].Index = i
		ws[i].StartCycle = int64(i) * MinWidth
	}
	s.Windows = ws
	return s
}

// healthyWindow is a baseline window no detector should flag.
func healthyWindow() WindowStats {
	return WindowStats{
		Ops: 100, Begins: 110, Commits: 100, Aborts: 10, AbortRate: 0.09,
		FallbackFrac: 0.1, SWCommits: 5, P50: 200, P999: 1000, Max: 1200,
	}
}

// only returns the findings of one kind.
func only(fs []Finding, kind string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Kind == kind {
			out = append(out, f)
		}
	}
	return out
}

func TestCleanSeriesNoFindings(t *testing.T) {
	ws := make([]WindowStats, 8)
	for i := range ws {
		ws[i] = healthyWindow()
	}
	if fs := Detect(mkSeries(ws...)); len(fs) != 0 {
		t.Errorf("healthy series produced findings: %v", fs)
	}
}

// A fallback-fraction spike coinciding with a tail excursion is a
// phase-flip drain; the finding names the window range and the grouped
// range keeps the peak window's severity and evidence.
func TestDetectPhaseFlipDrain(t *testing.T) {
	ws := make([]WindowStats, 8)
	for i := range ws {
		ws[i] = healthyWindow()
	}
	ws[4].FallbackFrac = 0.9
	ws[4].P999 = 5000
	ws[4].ToSoftware = 2
	ws[5].FallbackFrac = 0.8
	ws[5].P999 = 9000
	s := mkSeries(ws...)
	fs := only(Detect(s), KindPhaseFlipDrain)
	if len(fs) != 1 {
		t.Fatalf("got %d phase-flip findings, want 1: %v", len(fs), fs)
	}
	f := fs[0]
	if f.FirstWindow != 4 || f.LastWindow != 5 {
		t.Errorf("flagged windows %d-%d, want 4-5", f.FirstWindow, f.LastWindow)
	}
	if f.StartCycle != 4*MinWidth || f.EndCycle != 6*MinWidth {
		t.Errorf("cycle span %d-%d, want %d-%d", f.StartCycle, f.EndCycle, 4*MinWidth, 6*MinWidth)
	}
	// Baseline p99.9 is 1000, factor 2.0: the peak window (9000) scores 4.5.
	if f.Severity != 4.5 {
		t.Errorf("severity %v, want 4.5 (peak window)", f.Severity)
	}
	if !strings.Contains(f.Evidence, "9000") || !strings.Contains(f.Evidence, "fallback frac") {
		t.Errorf("evidence does not carry the peak numbers: %q", f.Evidence)
	}
	if !strings.Contains(f.String(), "windows 4-5") {
		t.Errorf("String() lost the window range: %q", f.String())
	}
}

// Sustained fallback lock-in after aborts have cleared is a lemming
// convoy — but only when the run is long enough to be a convoy.
func TestDetectLemmingConvoy(t *testing.T) {
	ws := make([]WindowStats, 6)
	for i := range ws {
		ws[i] = healthyWindow()
	}
	for i := 2; i <= 5; i++ {
		ws[i].FallbackFrac = 0.85
		ws[i].AbortRate = 0.02
		ws[i].P999 = 1000 // no tail excursion: this is not a phase-flip
	}
	fs := only(Detect(mkSeries(ws...)), KindLemmingConvoy)
	if len(fs) != 1 {
		t.Fatalf("got %d lemming findings, want 1: %v", len(fs), fs)
	}
	if f := fs[0]; f.FirstWindow != 2 || f.LastWindow != 5 {
		t.Errorf("flagged windows %d-%d, want 2-5", f.FirstWindow, f.LastWindow)
	}

	// Two windows are a flip, not a convoy: below LemmingRun nothing fires.
	short := make([]WindowStats, 6)
	for i := range short {
		short[i] = healthyWindow()
	}
	for i := 2; i <= 3; i++ {
		short[i].FallbackFrac = 0.85
		short[i].AbortRate = 0.02
	}
	if fs := only(Detect(mkSeries(short...)), KindLemmingConvoy); len(fs) != 0 {
		t.Errorf("sub-run-length flip flagged as convoy: %v", fs)
	}
}

// Pure-software systems (STM, one-lock) run at fallback fraction 1.0 by
// construction — no hardware path was ever abandoned, so the convoy
// detector must stay silent when the series carries no tx begins.
func TestLemmingIgnoresPureSoftwareRuns(t *testing.T) {
	ws := make([]WindowStats, 6)
	for i := range ws {
		ws[i] = WindowStats{
			Ops: 100, SWCommits: 100, FallbackFrac: 1.0,
			P50: 300, P999: 2000, Max: 2500,
		}
	}
	fs := Detect(mkSeries(ws...))
	if lem := only(fs, KindLemmingConvoy); len(lem) != 0 {
		t.Errorf("pure-software series flagged as lemming convoy: %v", lem)
	}
}

// Frequent aborts dominated by the coherence bit are a hot-key storm.
func TestDetectHotKeyAbortStorm(t *testing.T) {
	ws := make([]WindowStats, 4)
	for i := range ws {
		ws[i] = WindowStats{Begins: 20, Commits: 5, Aborts: 15, AbortRate: 0.75,
			CPS: map[string]uint64{"COH": 12}}
	}
	fs := only(Detect(mkSeries(ws...)), KindHotKeyAbortStorm)
	if len(fs) != 1 {
		t.Fatalf("got %d storm findings, want 1: %v", len(fs), fs)
	}
	f := fs[0]
	if f.FirstWindow != 0 || f.LastWindow != 3 {
		t.Errorf("flagged windows %d-%d, want 0-3", f.FirstWindow, f.LastWindow)
	}
	if f.Severity != 1.5 {
		t.Errorf("severity %v, want 1.5 (0.75 abort rate / 0.50 threshold)", f.Severity)
	}
	if !strings.Contains(f.Evidence, "COH") {
		t.Errorf("evidence does not name the coherence bit: %q", f.Evidence)
	}

	// Same abort rate, but the bits are not coherence: no storm.
	for i := range ws {
		ws[i].CPS = map[string]uint64{"SIZ": 12}
	}
	if fs := only(Detect(mkSeries(ws...)), KindHotKeyAbortStorm); len(fs) != 0 {
		t.Errorf("capacity aborts flagged as hot-key storm: %v", fs)
	}
}

// Capacity-bit-dominated abort loops flag only when they persist across
// consecutive windows — a single overflowing window is not "hopeless".
func TestDetectCapacityHopeless(t *testing.T) {
	mk := func(run int) Series {
		ws := make([]WindowStats, 6)
		for i := range ws {
			ws[i] = WindowStats{Begins: 20, Commits: 10, Aborts: 2, AbortRate: 2.0 / 12}
		}
		for i := 1; i <= run; i++ {
			ws[i] = WindowStats{Begins: 20, Commits: 4, Aborts: 16, AbortRate: 0.8,
				CPS: map[string]uint64{"SIZ": 10, "ST": 4}}
		}
		return mkSeries(ws...)
	}
	fs := only(Detect(mk(3)), KindCapacityHopeless)
	if len(fs) != 1 {
		t.Fatalf("got %d capacity findings, want 1: %v", len(fs), fs)
	}
	if f := fs[0]; f.FirstWindow != 1 || f.LastWindow != 3 {
		t.Errorf("flagged windows %d-%d, want 1-3", f.FirstWindow, f.LastWindow)
	}
	if fs := only(Detect(mk(1)), KindCapacityHopeless); len(fs) != 0 {
		t.Errorf("single overflow window flagged as hopeless: %v", fs)
	}
}

// Findings come out ordered by (first window, kind) regardless of which
// detector produced them.
func TestDetectOrdering(t *testing.T) {
	ws := make([]WindowStats, 10)
	for i := range ws {
		ws[i] = healthyWindow()
	}
	// Storm late...
	ws[7] = WindowStats{Ops: 100, Begins: 20, Commits: 5, Aborts: 15, AbortRate: 0.75,
		CPS: map[string]uint64{"COH": 12}, P50: 200, P999: 1000}
	// ...phase-flip early.
	ws[2].FallbackFrac = 0.9
	ws[2].P999 = 5000
	fs := Detect(mkSeries(ws...))
	if len(fs) < 2 {
		t.Fatalf("want at least 2 findings, got %v", fs)
	}
	for i := 1; i < len(fs); i++ {
		a, b := fs[i-1], fs[i]
		if a.FirstWindow > b.FirstWindow ||
			(a.FirstWindow == b.FirstWindow && a.Kind > b.Kind) {
			t.Errorf("findings out of order at %d: %v before %v", i, a, b)
		}
	}
}

// Detectors need a baseline: series with fewer than two ops-bearing
// windows produce nothing rather than dividing by a missing median.
func TestDetectTooShortSeries(t *testing.T) {
	if fs := Detect(mkSeries(healthyWindow())); len(fs) != 0 {
		t.Errorf("one-window series produced findings: %v", fs)
	}
	if fs := Detect(Series{WidthCycles: MinWidth, FreqGHz: 1}); len(fs) != 0 {
		t.Errorf("empty series produced findings: %v", fs)
	}
}
