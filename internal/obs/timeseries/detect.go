package timeseries

import (
	"fmt"
	"sort"

	"rocktm/internal/cps"
)

// Pathology detectors: a rule pass over a window series that names the
// failure signatures the Rock paper and its successors describe in prose
// — the PhTM phase-flip drain E23 measured, the "lemming effect" convoy
// from Dice et al.'s follow-up work, hot-key coherence abort storms, and
// transactions whose footprint can never fit the hardware (capacity-
// hopeless). Each detector scans WindowStats only — no recorder access —
// so findings can be computed from cached, deserialized series.

// Finding kinds.
const (
	// KindPhaseFlipDrain: a fallback-fraction spike coinciding with a tail
	// latency excursion — the global software phase (or lock fallback)
	// draining latency budget while aggregate throughput looks healthy.
	KindPhaseFlipDrain = "phase-flip-drain"
	// KindLemmingConvoy: sustained fallback lock-in after the triggering
	// conflict has cleared — most completions still taking the software or
	// lock path while hardware aborts are no longer concentrated.
	KindLemmingConvoy = "lemming-convoy"
	// KindHotKeyAbortStorm: hardware aborts both frequent and dominated by
	// the coherence CPS bit — the signature of every strand hammering the
	// same cache lines.
	KindHotKeyAbortStorm = "hot-key-abort-storm"
	// KindCapacityHopeless: aborts dominated by capacity bits (SIZ, store-
	// queue ST) at a high abort rate across consecutive windows — retrying
	// a transaction the hardware can never commit.
	KindCapacityHopeless = "capacity-hopeless"
)

// Finding is one detected pathology: a named signature, the contiguous
// window range exhibiting it, and human-readable evidence.
type Finding struct {
	Kind string `json:"kind"`
	// FirstWindow/LastWindow are inclusive window indices; StartCycle/
	// EndCycle the corresponding simulated-cycle span.
	FirstWindow int   `json:"first_window"`
	LastWindow  int   `json:"last_window"`
	StartCycle  int64 `json:"start_cycle"`
	EndCycle    int64 `json:"end_cycle"`
	// Severity is the detector's peak signal over the range, normalized so
	// 1.0 means "at threshold" and larger means worse.
	Severity float64 `json:"severity"`
	// Evidence is a one-line justification with the numbers that fired.
	Evidence string `json:"evidence"`
}

// String renders the finding for figure notes and logs.
func (f Finding) String() string {
	return fmt.Sprintf("%s windows %d-%d (cycles %d-%d, sev %.2f): %s",
		f.Kind, f.FirstWindow, f.LastWindow, f.StartCycle, f.EndCycle, f.Severity, f.Evidence)
}

// Detector thresholds. They are exported as a config struct so tests and
// experiments can tighten or relax them; DefaultDetectConfig matches the
// scales E23 measured.
type DetectConfig struct {
	// PhaseFlip: fallback fraction must exceed the series baseline by
	// FallbackJump AND the window p99.9 must exceed PhaseFlipLatFactor ×
	// the series' median ops-bearing-window p99.9.
	FallbackJump       float64
	PhaseFlipLatFactor float64
	// Lemming: at least LemmingRun consecutive windows with fallback
	// fraction ≥ LemmingFrac while the hardware abort picture has cleared
	// (abort rate ≤ LemmingAbortCeiling).
	LemmingFrac         float64
	LemmingRun          int
	LemmingAbortCeiling float64
	// Hot-key storm: abort rate ≥ StormAbortRate with coherence-bit share
	// ≥ StormCohShare.
	StormAbortRate float64
	StormCohShare  float64
	// Capacity-hopeless: abort rate ≥ CapAbortRate with capacity-bit share
	// ≥ CapShare over at least CapRun consecutive windows.
	CapAbortRate float64
	CapShare     float64
	CapRun       int
	// MinOps gates latency-based detectors: windows with fewer completed
	// ops than this have meaningless percentiles and are skipped.
	MinOps uint64
}

// DefaultDetectConfig returns the thresholds tuned against the E23/E24
// sweeps (see docs/OBSERVABILITY.md for the calibration notes).
func DefaultDetectConfig() DetectConfig {
	return DetectConfig{
		FallbackJump:        0.10,
		PhaseFlipLatFactor:  2.0,
		LemmingFrac:         0.50,
		LemmingRun:          3,
		LemmingAbortCeiling: 0.10,
		StormAbortRate:      0.50,
		StormCohShare:       0.60,
		CapAbortRate:        0.50,
		CapShare:            0.60,
		CapRun:              2,
		MinOps:              8,
	}
}

// Detect runs every detector over the series with default thresholds.
func Detect(s Series) []Finding { return DetectWith(s, DefaultDetectConfig()) }

// DetectWith runs every detector with explicit thresholds. Findings are
// ordered by (first window, kind) for deterministic output.
func DetectWith(s Series, cfg DetectConfig) []Finding {
	var out []Finding
	out = append(out, detectPhaseFlip(s, cfg)...)
	out = append(out, detectLemming(s, cfg)...)
	out = append(out, detectStorm(s, cfg)...)
	out = append(out, detectCapacity(s, cfg)...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].FirstWindow != out[j].FirstWindow {
			return out[i].FirstWindow < out[j].FirstWindow
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// baselines computes the series-wide reference levels the relative
// detectors compare against: the median fallback fraction and median
// p99.9 over windows that completed at least minOps operations.
func baselines(s Series, minOps uint64) (fbBase float64, latBase int64, ok bool) {
	var fbs []float64
	var lats []int64
	for _, w := range s.Windows {
		if w.Ops < minOps {
			continue
		}
		fbs = append(fbs, w.FallbackFrac)
		lats = append(lats, w.P999)
	}
	if len(fbs) < 2 {
		return 0, 0, false
	}
	sort.Float64s(fbs)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return fbs[len(fbs)/2], lats[len(lats)/2], true
}

// group folds runs of flagged windows into contiguous Findings. sev and
// evid report the per-window signal; the range keeps the peak.
func group(s Series, kind string, flagged []int, sev func(i int) float64, evid func(i int) string) []Finding {
	var out []Finding
	for start := 0; start < len(flagged); {
		end := start
		for end+1 < len(flagged) && flagged[end+1] == flagged[end]+1 {
			end++
		}
		first, last := flagged[start], flagged[end]
		f := Finding{
			Kind:        kind,
			FirstWindow: s.Windows[first].Index,
			LastWindow:  s.Windows[last].Index,
			StartCycle:  s.Windows[first].StartCycle,
			EndCycle:    s.EndCycle(s.Windows[last]),
		}
		peak := start
		for i := start; i <= end; i++ {
			if sev(flagged[i]) > sev(flagged[peak]) {
				peak = i
			}
		}
		f.Severity = sev(flagged[peak])
		f.Evidence = evid(flagged[peak])
		out = append(out, f)
		start = end + 1
	}
	return out
}

func detectPhaseFlip(s Series, cfg DetectConfig) []Finding {
	fbBase, latBase, ok := baselines(s, cfg.MinOps)
	if !ok || latBase == 0 {
		return nil
	}
	var flagged []int
	for i, w := range s.Windows {
		if w.Ops < cfg.MinOps {
			continue
		}
		if w.FallbackFrac >= fbBase+cfg.FallbackJump &&
			float64(w.P999) >= cfg.PhaseFlipLatFactor*float64(latBase) {
			flagged = append(flagged, i)
		}
	}
	sev := func(i int) float64 {
		return float64(s.Windows[i].P999) / (cfg.PhaseFlipLatFactor * float64(latBase))
	}
	evid := func(i int) string {
		w := s.Windows[i]
		extra := ""
		if w.ToSoftware > 0 {
			extra = fmt.Sprintf(", %d mode-software flip(s)", w.ToSoftware)
		}
		return fmt.Sprintf("fallback frac %.2f (baseline %.2f), p99.9 %d cycles (baseline median %d)%s",
			w.FallbackFrac, fbBase, w.P999, latBase, extra)
	}
	return group(s, KindPhaseFlipDrain, flagged, sev, evid)
}

func detectLemming(s Series, cfg DetectConfig) []Finding {
	// A convoy is a hardware path abandoned, not a system that never had
	// one: pure-software systems run at fallback fraction 1.0 by
	// construction and must not flag.
	var begins uint64
	for _, w := range s.Windows {
		begins += w.Begins
	}
	if begins == 0 {
		return nil
	}
	var flagged []int
	for i, w := range s.Windows {
		if w.Commits+w.SWCommits+w.Fallbacks == 0 {
			continue
		}
		if w.FallbackFrac >= cfg.LemmingFrac && w.AbortRate <= cfg.LemmingAbortCeiling {
			flagged = append(flagged, i)
		}
	}
	sev := func(i int) float64 { return s.Windows[i].FallbackFrac / cfg.LemmingFrac }
	evid := func(i int) string {
		w := s.Windows[i]
		return fmt.Sprintf("fallback frac %.2f with abort rate %.2f — fallback path outliving its trigger",
			w.FallbackFrac, w.AbortRate)
	}
	fs := group(s, KindLemmingConvoy, flagged, sev, evid)
	// Only runs long enough to be a convoy, not a single flip window.
	var out []Finding
	for _, f := range fs {
		if f.LastWindow-f.FirstWindow+1 >= cfg.LemmingRun {
			out = append(out, f)
		}
	}
	return out
}

func detectStorm(s Series, cfg DetectConfig) []Finding {
	coh := cps.COH
	var flagged []int
	for i, w := range s.Windows {
		if w.Aborts+w.Commits == 0 {
			continue
		}
		if w.AbortRate >= cfg.StormAbortRate && w.CPSShare(coh) >= cfg.StormCohShare {
			flagged = append(flagged, i)
		}
	}
	sev := func(i int) float64 { return s.Windows[i].AbortRate / cfg.StormAbortRate }
	evid := func(i int) string {
		w := s.Windows[i]
		return fmt.Sprintf("abort rate %.2f, coherence (COH) share %.2f of %d aborts",
			w.AbortRate, w.CPSShare(coh), w.Aborts)
	}
	return group(s, KindHotKeyAbortStorm, flagged, sev, evid)
}

func detectCapacity(s Series, cfg DetectConfig) []Finding {
	capBits := cps.SIZ | cps.ST
	var flagged []int
	for i, w := range s.Windows {
		if w.Aborts+w.Commits == 0 {
			continue
		}
		if w.AbortRate >= cfg.CapAbortRate && w.CPSShare(capBits) >= cfg.CapShare {
			flagged = append(flagged, i)
		}
	}
	sev := func(i int) float64 { return s.Windows[i].AbortRate / cfg.CapAbortRate }
	evid := func(i int) string {
		w := s.Windows[i]
		return fmt.Sprintf("abort rate %.2f with capacity (SIZ|ST) share %.2f — footprint exceeds hardware",
			w.AbortRate, w.CPSShare(capBits))
	}
	fs := group(s, KindCapacityHopeless, flagged, sev, evid)
	var out []Finding
	for _, f := range fs {
		if f.LastWindow-f.FirstWindow+1 >= cfg.CapRun {
			out = append(out, f)
		}
	}
	return out
}
