package timeseries

import "fmt"

// SLO machinery: experiments declare a latency objective — "p99.9 ≤ N
// cycles in 99.9% of windows" — and evaluate it against a window series.
// The verdict is reported SRE-style as error-budget burn: with target
// fraction T, the budget is the (1-T) fraction of windows allowed to
// violate the threshold, and the burn rate is the measured violation
// fraction divided by that allowance. Burn ≤ 1 passes; burn 10 means the
// run consumed its tail-latency budget ten times over. This is the
// ROADMAP item 1 machinery for judging TM systems as a fleet.

// SLO declares one windowed latency objective.
type SLO struct {
	// Name labels the objective in reports ("rbtree-tail").
	Name string `json:"name"`
	// Percentile selects which window statistic is judged: one of "p50",
	// "p90", "p99", "p99.9", "max".
	Percentile string `json:"percentile"`
	// MaxCycles is the latency threshold in simulated cycles.
	MaxCycles int64 `json:"max_cycles"`
	// TargetFrac is the fraction of (ops-bearing) windows that must meet
	// the threshold, e.g. 0.999. The error budget is 1 - TargetFrac.
	TargetFrac float64 `json:"target_frac"`
	// MinOps skips windows with fewer completed operations — their
	// percentiles are noise. Zero means judge every ops-bearing window.
	MinOps uint64 `json:"min_ops,omitempty"`
}

// String renders the declaration the way E24 reports it.
func (o SLO) String() string {
	return fmt.Sprintf("%s: %s <= %d cycles in %.4g%% of windows",
		o.Name, o.Percentile, o.MaxCycles, o.TargetFrac*100)
}

// value extracts the judged statistic from a window (ok=false for an
// unknown percentile name).
func (o SLO) value(w WindowStats) (int64, bool) {
	switch o.Percentile {
	case "p50":
		return w.P50, true
	case "p90":
		return w.P90, true
	case "p99":
		return w.P99, true
	case "p99.9", "p999":
		return w.P999, true
	case "max":
		return w.Max, true
	}
	return 0, false
}

// SLOResult is one objective's verdict over one series.
type SLOResult struct {
	SLO SLO `json:"slo"`
	// Windows is how many windows were judged (ops-bearing, above MinOps);
	// Violations how many exceeded MaxCycles.
	Windows    int `json:"windows"`
	Violations int `json:"violations"`
	// ViolationFrac = Violations/Windows; BurnRate = ViolationFrac divided
	// by the declared error budget (1-TargetFrac). Burn ≤ 1 passes.
	ViolationFrac float64 `json:"violation_frac"`
	BurnRate      float64 `json:"burn_rate"`
	Pass          bool    `json:"pass"`
	// WorstWindow/WorstValue locate the worst excursion (WorstWindow is -1
	// when no window was judged).
	WorstWindow int   `json:"worst_window"`
	WorstValue  int64 `json:"worst_value"`
}

// String renders the verdict compactly for figure notes and E24.
func (r SLOResult) String() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s [%s]: %d/%d windows violate, burn %.2fx budget, worst window %d (%s=%d cycles)",
		r.SLO.Name, verdict, r.Violations, r.Windows, r.BurnRate, r.WorstWindow, r.SLO.Percentile, r.WorstValue)
}

// Evaluate judges the objective against a series. A series with no
// judgeable windows passes vacuously (Windows=0, WorstWindow=-1) — an
// experiment that captured nothing has not violated its budget.
func (o SLO) Evaluate(s Series) SLOResult {
	res := SLOResult{SLO: o, Pass: true, WorstWindow: -1}
	minOps := o.MinOps
	if minOps == 0 {
		minOps = 1
	}
	for _, w := range s.Windows {
		if w.Ops < minOps {
			continue
		}
		v, ok := o.value(w)
		if !ok {
			continue
		}
		res.Windows++
		if v > o.MaxCycles {
			res.Violations++
		}
		if v > res.WorstValue || res.WorstWindow < 0 {
			res.WorstValue = v
			res.WorstWindow = w.Index
		}
	}
	if res.Windows == 0 {
		return res
	}
	res.ViolationFrac = float64(res.Violations) / float64(res.Windows)
	budget := 1 - o.TargetFrac
	if budget <= 0 {
		// A 100% target has zero budget: any violation is an infinite burn,
		// reported as the violation count itself to stay finite and ordered.
		if res.Violations > 0 {
			res.BurnRate = float64(res.Violations) * float64(res.Windows)
			res.Pass = false
		}
		return res
	}
	res.BurnRate = res.ViolationFrac / budget
	res.Pass = res.BurnRate <= 1
	return res
}

// EvaluateSLOs judges a set of objectives against one series, in input
// order (deterministic report layout).
func EvaluateSLOs(s Series, slos []SLO) []SLOResult {
	out := make([]SLOResult, 0, len(slos))
	for _, o := range slos {
		out = append(out, o.Evaluate(s))
	}
	return out
}
