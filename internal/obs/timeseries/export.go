package timeseries

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"rocktm/internal/obs"
)

// Sink accumulates the window series of several experiment runs, mirroring
// obs.TraceSink for event traces, and exports them as one JSON document or
// one labelled CSV stream. Output is byte-deterministic for deterministic
// runs (struct field order fixes JSON key order; CPS maps are the only
// map-typed field and encoding/json sorts their keys).
type Sink struct {
	runs []sinkEntry
}

type sinkEntry struct {
	Label  string `json:"label"`
	Series Series `json:"series"`
	// Findings and SLOs ride along when the depositing experiment ran the
	// detector/SLO pass, so one export holds the whole verdict.
	Findings []Finding   `json:"findings,omitempty"`
	SLOs     []SLOResult `json:"slos,omitempty"`
}

// Add deposits one run's window series under the given label.
func (k *Sink) Add(label string, s Series) {
	k.runs = append(k.runs, sinkEntry{Label: label, Series: s})
}

// AddJudged deposits a series together with its detector findings and SLO
// verdicts.
func (k *Sink) AddJudged(label string, s Series, findings []Finding, slos []SLOResult) {
	k.runs = append(k.runs, sinkEntry{Label: label, Series: s, Findings: findings, SLOs: slos})
}

// Runs returns how many series have been deposited.
func (k *Sink) Runs() int { return len(k.runs) }

// Each calls f for every deposited run in deposit order — the bridge the
// figures command uses to fold window series into the Chrome trace as
// counter tracks.
func (k *Sink) Each(f func(label string, s Series)) {
	for _, r := range k.runs {
		f(r.Label, r.Series)
	}
}

// WriteJSON writes all deposited runs as one JSON document.
func (k *Sink) WriteJSON(w io.Writer) error {
	doc := struct {
		Runs []sinkEntry `json:"runs"`
	}{Runs: k.runs}
	if doc.Runs == nil {
		doc.Runs = []sinkEntry{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// csvHeader is the fixed column set of WriteCSV. CPS bits are folded to
// the two shares the detectors judge rather than twelve sparse columns.
const csvHeader = "label,window,start_cycle,ops,ops_per_usec,tx_commits,tx_aborts,abort_rate," +
	"sw_commits,fallbacks,fallback_frac,to_software,to_hardware,lock_acquires,lock_hold_cycles," +
	"coh_aborts,p50,p90,p99,p999,max"

// WriteCSV writes all deposited runs as one flat CSV: one row per window,
// first column the run label.
func (k *Sink) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, csvHeader); err != nil {
		return err
	}
	for _, r := range k.runs {
		for _, win := range r.Series.Windows {
			_, err := fmt.Fprintf(bw, "%s,%d,%d,%d,%.4f,%d,%d,%.4f,%d,%d,%.4f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
				r.Label, win.Index, win.StartCycle, win.Ops, win.Throughput,
				win.Commits, win.Aborts, win.AbortRate,
				win.SWCommits, win.Fallbacks, win.FallbackFrac,
				win.ToSoftware, win.ToHardware, win.LockAcquires, win.LockHoldCycles,
				win.CPS["COH"], win.P50, win.P90, win.P99, win.P999, win.Max)
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// CounterTracks renders the series' headline statistics as Perfetto
// counter tracks — throughput, abort rate, fallback fraction and p99.9 —
// sampled at each window's start cycle, for obs.TraceSink.AddCounters.
func (s Series) CounterTracks() []obs.CounterTrack {
	tracks := []obs.CounterTrack{
		{Name: "ops_per_usec"},
		{Name: "abort_rate"},
		{Name: "fallback_frac"},
		{Name: "p999_cycles"},
	}
	for _, w := range s.Windows {
		tracks[0].Points = append(tracks[0].Points, obs.CounterPoint{Cycle: w.StartCycle, Value: w.Throughput})
		tracks[1].Points = append(tracks[1].Points, obs.CounterPoint{Cycle: w.StartCycle, Value: w.AbortRate})
		tracks[2].Points = append(tracks[2].Points, obs.CounterPoint{Cycle: w.StartCycle, Value: w.FallbackFrac})
		tracks[3].Points = append(tracks[3].Points, obs.CounterPoint{Cycle: w.StartCycle, Value: float64(w.P999)})
	}
	return tracks
}
