package timeseries

import (
	"strings"
	"testing"
)

// latSeries builds a series whose windows carry the given p99.9 values
// with enough ops to be judged.
func latSeries(p999s ...int64) Series {
	ws := make([]WindowStats, len(p999s))
	for i, v := range p999s {
		ws[i] = WindowStats{Ops: 50, P50: v / 2, P999: v, Max: v + 10}
	}
	return mkSeries(ws...)
}

func TestSLOPass(t *testing.T) {
	o := SLO{Name: "tail", Percentile: "p99.9", MaxCycles: 2000, TargetFrac: 0.99}
	r := o.Evaluate(latSeries(1000, 1200, 900, 1500))
	if !r.Pass || r.Violations != 0 || r.Windows != 4 || r.BurnRate != 0 {
		t.Fatalf("clean series verdict wrong: %+v", r)
	}
	if r.WorstWindow != 3 || r.WorstValue != 1500 {
		t.Errorf("worst excursion = window %d (%d), want window 3 (1500)", r.WorstWindow, r.WorstValue)
	}
	if s := r.String(); !strings.Contains(s, "PASS") {
		t.Errorf("String() lacks verdict: %q", s)
	}
}

func TestSLOFailAndBurnRate(t *testing.T) {
	// TargetFrac 0.75 keeps the budget exactly representable in float64.
	o := SLO{Name: "tail", Percentile: "p99.9", MaxCycles: 2000, TargetFrac: 0.75}
	// 5 of 10 windows violate; budget is 0.25 → burn 2.0x.
	r := o.Evaluate(latSeries(1000, 5000, 1000, 5000, 1000, 5000, 1000, 5000, 1000, 9000))
	if r.Pass || r.Violations != 5 || r.Windows != 10 {
		t.Fatalf("violating series verdict wrong: %+v", r)
	}
	if r.ViolationFrac != 0.5 || r.BurnRate != 2.0 {
		t.Errorf("frac/burn = %v/%v, want 0.5/2.0", r.ViolationFrac, r.BurnRate)
	}
	if r.WorstWindow != 9 || r.WorstValue != 9000 {
		t.Errorf("worst excursion = window %d (%d), want window 9 (9000)", r.WorstWindow, r.WorstValue)
	}
	if s := r.String(); !strings.Contains(s, "FAIL") || !strings.Contains(s, "2.00x") {
		t.Errorf("String() lacks verdict or burn: %q", s)
	}
}

// A burn of exactly 1.0 spends the whole budget without exceeding it.
func TestSLOBurnBoundary(t *testing.T) {
	o := SLO{Name: "b", Percentile: "p99.9", MaxCycles: 2000, TargetFrac: 0.75}
	r := o.Evaluate(latSeries(1000, 1000, 1000, 5000))
	if r.BurnRate != 1.0 || !r.Pass {
		t.Errorf("burn-1.0 series: burn=%v pass=%v, want 1.0/true", r.BurnRate, r.Pass)
	}
}

// An empty or unjudgeable series passes vacuously: nothing violated the
// budget, and WorstWindow says no window was judged.
func TestSLOVacuousPass(t *testing.T) {
	o := SLO{Name: "v", Percentile: "p99.9", MaxCycles: 100, TargetFrac: 0.99}
	for _, s := range []Series{
		{WidthCycles: MinWidth, FreqGHz: 1},
		mkSeries(WindowStats{Commits: 50}), // events but no ops
	} {
		r := o.Evaluate(s)
		if !r.Pass || r.Windows != 0 || r.WorstWindow != -1 {
			t.Errorf("vacuous verdict wrong: %+v", r)
		}
	}
	// Unknown percentile names judge nothing rather than judging zeros.
	bad := SLO{Name: "u", Percentile: "p42", MaxCycles: 100, TargetFrac: 0.99}
	if r := bad.Evaluate(latSeries(1000, 1000)); r.Windows != 0 || !r.Pass {
		t.Errorf("unknown percentile judged windows: %+v", r)
	}
}

// MinOps excludes thin windows whose percentiles are noise.
func TestSLOMinOps(t *testing.T) {
	s := latSeries(1000, 9000, 1000)
	s.Windows[1].Ops = 3 // the violating window is too thin to judge
	o := SLO{Name: "m", Percentile: "p99.9", MaxCycles: 2000, TargetFrac: 0.9, MinOps: 8}
	r := o.Evaluate(s)
	if r.Windows != 2 || r.Violations != 0 || !r.Pass {
		t.Errorf("MinOps did not exclude the thin window: %+v", r)
	}
}

// A 100% target has zero budget: any violation fails, with a finite
// ordered burn stand-in.
func TestSLOZeroBudget(t *testing.T) {
	o := SLO{Name: "z", Percentile: "p99.9", MaxCycles: 2000, TargetFrac: 1.0}
	r := o.Evaluate(latSeries(1000, 5000, 1000))
	if r.Pass || r.BurnRate != 3 {
		t.Errorf("zero-budget verdict: pass=%v burn=%v, want fail with burn 3 (1 violation x 3 windows)", r.Pass, r.BurnRate)
	}
	clean := o.Evaluate(latSeries(1000, 1000))
	if !clean.Pass || clean.BurnRate != 0 {
		t.Errorf("zero-budget clean verdict: %+v", clean)
	}
}

// The "p999" alias and every named percentile select the right field.
func TestSLOPercentileSelection(t *testing.T) {
	w := WindowStats{Ops: 50, P50: 1, P90: 2, P99: 3, P999: 4, Max: 5}
	s := mkSeries(w)
	for _, tc := range []struct {
		pct  string
		want int64
	}{{"p50", 1}, {"p90", 2}, {"p99", 3}, {"p99.9", 4}, {"p999", 4}, {"max", 5}} {
		o := SLO{Name: tc.pct, Percentile: tc.pct, MaxCycles: 0, TargetFrac: 0.5}
		if r := o.Evaluate(s); r.WorstValue != tc.want {
			t.Errorf("%s selected %d, want %d", tc.pct, r.WorstValue, tc.want)
		}
	}
}

// EvaluateSLOs preserves declaration order for deterministic reports.
func TestEvaluateSLOsOrder(t *testing.T) {
	s := latSeries(1000, 1000)
	slos := []SLO{
		{Name: "zz", Percentile: "p99.9", MaxCycles: 2000, TargetFrac: 0.9},
		{Name: "aa", Percentile: "max", MaxCycles: 2000, TargetFrac: 0.9},
	}
	rs := EvaluateSLOs(s, slos)
	if len(rs) != 2 || rs[0].SLO.Name != "zz" || rs[1].SLO.Name != "aa" {
		t.Errorf("results reordered: %+v", rs)
	}
	if got := EvaluateSLOs(s, nil); len(got) != 0 {
		t.Errorf("nil SLO set produced results: %+v", got)
	}
}
