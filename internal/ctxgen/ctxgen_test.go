package ctxgen

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGeneratedInSync regenerates every specialized kernel file and fails
// if the committed copy drifted from what the generic kernels produce. On
// failure, run `go run rocktm/cmd/ctxgen` and commit the result.
func TestGeneratedInSync(t *testing.T) {
	root, err := Root(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range Specs() {
		want, err := Generate(root, spec)
		if err != nil {
			t.Fatalf("%s: generate: %v", spec.Dir, err)
		}
		path := filepath.Join(root, spec.Dir, spec.Out)
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", spec.Dir, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s/%s is stale with respect to %s; run `go run rocktm/cmd/ctxgen` and commit the result",
				spec.Dir, spec.Out, spec.Src)
		}
	}
}

// TestMangle pins the naming scheme the dispatchers rely on.
func TestMangle(t *testing.T) {
	cases := map[[2]string]string{
		{"Lookup", "Rock"}:     "lookupRock",
		{"insert", "TL2"}:      "insertTL2",
		{"isRed", "SkyHW"}:     "isRedSkyHW",
		{"deleteFixup", "Raw"}: "deleteFixupRaw",
		{"rotateLeft", "Sky"}:  "rotateLeftSky",
	}
	for in, want := range cases {
		if got := mangle(in[0], in[1]); got != want {
			t.Errorf("mangle(%q, %q) = %q, want %q", in[0], in[1], got, want)
		}
	}
}
