package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rocktm/internal/obs"
)

func testSpec() Spec {
	return Spec{
		Experiment: "fig1a",
		System:     "phtm",
		Threads:    4,
		Ops:        4000,
		Seed:       1,
		SimDigest:  "abcd1234",
		Params:     map[string]string{"keyrange": "256", "lookup": "0"},
	}
}

// Every field of the spec must bust the cache key: seed, ops, threads,
// sim-config digest, experiment, system, params.
func TestSpecHashSensitivity(t *testing.T) {
	base := testSpec()
	mutations := map[string]func(*Spec){
		"seed":       func(s *Spec) { s.Seed = 2 },
		"ops":        func(s *Spec) { s.Ops = 8000 },
		"threads":    func(s *Spec) { s.Threads = 8 },
		"sim digest": func(s *Spec) { s.SimDigest = "ffff0000" },
		"experiment": func(s *Spec) { s.Experiment = "fig1b" },
		"system":     func(s *Spec) { s.System = "hytm" },
		"param":      func(s *Spec) { s.Params["keyrange"] = "128000" },
	}
	for name, mutate := range mutations {
		s := testSpec()
		mutate(&s)
		if s.Hash(CacheVersion) == base.Hash(CacheVersion) {
			t.Errorf("changing %s did not change the cache key", name)
		}
	}
	// Param order must not matter: the key is canonical.
	a := testSpec()
	b := Spec{
		Experiment: a.Experiment, System: a.System, Threads: a.Threads,
		Ops: a.Ops, Seed: a.Seed, SimDigest: a.SimDigest,
		Params: map[string]string{"lookup": "0", "keyrange": "256"},
	}
	if a.Hash(CacheVersion) != b.Hash(CacheVersion) {
		t.Error("equal specs produced different hashes")
	}
}

// A stale code-version salt must invalidate old entries.
func TestSpecHashSaltSensitivity(t *testing.T) {
	s := testSpec()
	if s.Hash("v1") == s.Hash("v2") {
		t.Error("changing the version salt did not change the cache key")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir(), "test-v1")
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	payload := []byte(`{"threads":4,"ops_per_usec":1.25}`)
	if _, _, ok := c.Get(spec); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put(spec, payload, 2.5); err != nil {
		t.Fatal(err)
	}
	got, secs, ok := c.Get(spec)
	if !ok {
		t.Fatal("miss after Put")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload mismatch: %s != %s", got, payload)
	}
	if secs != 2.5 {
		t.Fatalf("host seconds: got %v want 2.5", secs)
	}
	if w := c.Warnings(); len(w) != 0 {
		t.Fatalf("unexpected warnings: %v", w)
	}
}

// An entry written under an older version salt is a silent miss, and the
// recompute's Put overwrites it in place (same file only if same salt —
// under a new salt the hash differs, so both entries coexist and the old
// one is simply never read again).
func TestCacheVersionSaltInvalidates(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	old, err := OpenCache(dir, "old-version")
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Put(spec, []byte(`{"v":1}`), 1); err != nil {
		t.Fatal(err)
	}
	fresh, err := OpenCache(dir, "new-version")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := fresh.Get(spec); ok {
		t.Fatal("stale-version entry served")
	}
}

// A corrupted cache file must fall back to recompute with a warning,
// never a crash.
func TestCacheCorruptedEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, "test-v1")
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	if err := c.Put(spec, []byte(`{"v":1}`), 1); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, spec.Hash("test-v1")+".json")
	if err := os.WriteFile(path, []byte("{truncated garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(spec); ok {
		t.Fatal("corrupted entry served")
	}
	w := c.Warnings()
	if len(w) != 1 || !strings.Contains(w[0], "corrupted") {
		t.Fatalf("expected one corruption warning, got %v", w)
	}
	// And a same-hash entry whose recorded key disagrees (hash collision
	// or a hand-edited file) is also refused, with a warning.
	other := testSpec()
	other.Seed = 99
	e := cacheEntry{Version: "test-v1", Key: other.Key(), Spec: other, Payload: []byte(`{"v":2}`)}
	raw, _ := json.Marshal(&e)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(spec); ok {
		t.Fatal("key-mismatched entry served")
	}
	if w := c.Warnings(); len(w) != 1 || !strings.Contains(w[0], "mismatch") {
		t.Fatalf("expected one mismatch warning, got %v", w)
	}
}

// Pool results must land in submission order regardless of scheduling,
// and a cached rerun must return the identical payload bytes.
func TestPoolDeterministicMergeAndCache(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir, "test-v1")
	if err != nil {
		t.Fatal(err)
	}
	newJobs := func(computes *atomic.Int64) []Job {
		jobs := make([]Job, 12)
		for i := range jobs {
			i := i
			spec := testSpec()
			spec.Threads = i + 1
			jobs[i] = Job{Spec: spec, Run: func() ([]byte, error) {
				computes.Add(1)
				return []byte(fmt.Sprintf(`{"cell":%d}`, i)), nil
			}}
		}
		return jobs
	}
	var computes atomic.Int64
	p := &Pool{Workers: 8, Cache: cache, Costs: NewCostModel()}
	results := p.RunAll(newJobs(&computes))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if want := fmt.Sprintf(`{"cell":%d}`, i); string(r.Payload) != want {
			t.Fatalf("job %d out of order: got %s want %s", i, r.Payload, want)
		}
		if r.Cached {
			t.Fatalf("job %d cached on a cold cache", i)
		}
	}
	if computes.Load() != 12 {
		t.Fatalf("computed %d cells, want 12", computes.Load())
	}
	// Warm rerun: all hits, same bytes, zero computes.
	rerun := p.RunAll(newJobs(&computes))
	for i, r := range rerun {
		if !r.Cached {
			t.Fatalf("job %d not served from cache", i)
		}
		if string(r.Payload) != string(results[i].Payload) {
			t.Fatalf("job %d: cache hit bytes differ", i)
		}
	}
	if computes.Load() != 12 {
		t.Fatalf("warm rerun recomputed cells (%d total computes)", computes.Load())
	}
}

// A panicking job is isolated: its Result carries the error, every other
// job completes, and RunAll itself does not panic.
func TestPoolPanicIsolation(t *testing.T) {
	p := &Pool{Workers: 4}
	jobs := make([]Job, 5)
	for i := range jobs {
		i := i
		spec := testSpec()
		spec.Threads = i + 1
		jobs[i] = Job{Spec: spec, Run: func() ([]byte, error) {
			if i == 2 {
				panic("wedged cell")
			}
			return []byte(`{}`), nil
		}}
	}
	results := p.RunAll(jobs)
	for i, r := range results {
		if i == 2 {
			if r.Err == nil || !strings.Contains(r.Err.Error(), "wedged cell") {
				t.Fatalf("panicking job not reported: %v", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("job %d failed collaterally: %v", i, r.Err)
		}
	}
}

// A job that exceeds the per-job timeout fails alone while the sweep
// completes.
func TestPoolTimeoutIsolation(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	p := &Pool{Workers: 4, Timeout: 50 * time.Millisecond}
	jobs := []Job{
		{Spec: testSpec(), Run: func() ([]byte, error) { return []byte(`{}`), nil }},
		{Spec: testSpec(), Run: func() ([]byte, error) { <-block; return []byte(`{}`), nil }},
		{Spec: testSpec(), Run: func() ([]byte, error) { return []byte(`{}`), nil }},
	}
	results := p.RunAll(jobs)
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "timeout") {
		t.Fatalf("wedged job not timed out: %v", results[1].Err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v %v", results[0].Err, results[2].Err)
	}
}

// Progress counters flow through the obs registry and the callback; the
// ETA drains to zero.
func TestPoolProgressAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	var calls atomic.Int64
	p := &Pool{Workers: 2}
	p.OnProgress = func(pr Progress) { calls.Add(1) }
	p.PublishMetrics(reg)
	jobs := make([]Job, 6)
	for i := range jobs {
		spec := testSpec()
		spec.Threads = i + 1
		jobs[i] = Job{Spec: spec, Run: func() ([]byte, error) { return []byte(`{}`), nil }}
	}
	p.RunAll(jobs)
	if calls.Load() != 6 {
		t.Fatalf("progress callback fired %d times, want 6", calls.Load())
	}
	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"jobs_total": 6, "jobs_done": 6, "jobs_cached": 0, "jobs_failed": 0, "eta_ms": 0,
	} {
		if got, ok := snap.Counter("runner", name); !ok || got != want {
			t.Errorf("registry runner/%s = %d (present=%v), want %d", name, got, ok, want)
		}
	}
}

// The cost model learns, persists, and orders longest-first.
func TestCostModelLearnAndPersist(t *testing.T) {
	dir := t.TempDir()
	cm := LoadCostModel(dir)
	big, small := testSpec(), testSpec()
	big.System, small.System = "big", "small"
	cm.Observe(big, 8.0)
	cm.Observe(small, 0.5)
	cm.Observe(big, 4.0) // EWMA: 6.0
	if got := cm.Estimate(big); got != 6.0 {
		t.Fatalf("EWMA estimate = %v, want 6.0", got)
	}
	if cm.Estimate(big) <= cm.Estimate(small) {
		t.Fatal("learned ordering inverted")
	}
	if err := cm.Save(); err != nil {
		t.Fatal(err)
	}
	reloaded := LoadCostModel(dir)
	if got := reloaded.Estimate(big); got != 6.0 {
		t.Fatalf("persisted estimate = %v, want 6.0", got)
	}
	// Unlearned specs fall back to a work-proportional heuristic.
	fresh := NewCostModel()
	heavy, light := testSpec(), testSpec()
	heavy.System, light.System = "h", "l"
	heavy.Threads, heavy.Ops = 16, 8000
	light.Threads, light.Ops = 1, 100
	if fresh.Estimate(heavy) <= fresh.Estimate(light) {
		t.Fatal("heuristic estimate not monotone in work")
	}
	// A corrupted cost file loads as empty, never fails.
	if err := os.WriteFile(filepath.Join(dir, costFile), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if LoadCostModel(dir) == nil {
		t.Fatal("corrupted cost file should load empty")
	}
}

// RunCells routes typed values through canonical JSON identically on the
// inline path, the pool path, and the cache-hit path.
func TestRunCellsTypedRoundTrip(t *testing.T) {
	type pt struct {
		Threads int     `json:"threads"`
		Value   float64 `json:"value"`
	}
	mkCells := func() []Cell[pt] {
		cells := make([]Cell[pt], 4)
		for i := range cells {
			i := i
			spec := testSpec()
			spec.Threads = i + 1
			cells[i] = Cell[pt]{Spec: spec, Compute: func() (pt, error) {
				return pt{Threads: i + 1, Value: 1.0 / float64(i+3)}, nil
			}}
		}
		return cells
	}
	inline, err := RunCells[pt](nil, mkCells())
	if err != nil {
		t.Fatal(err)
	}
	cache, err := OpenCache(t.TempDir(), "test-v1")
	if err != nil {
		t.Fatal(err)
	}
	p := &Pool{Workers: 4, Cache: cache}
	pooled, err := RunCells(p, mkCells())
	if err != nil {
		t.Fatal(err)
	}
	cached, err := RunCells(p, mkCells())
	if err != nil {
		t.Fatal(err)
	}
	for i := range inline {
		if inline[i] != pooled[i] || pooled[i] != cached[i] {
			t.Fatalf("cell %d: inline=%v pooled=%v cached=%v", i, inline[i], pooled[i], cached[i])
		}
	}
}
