package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"rocktm/internal/obs"
)

// Job is one schedulable experiment cell: a Spec identifying it and a
// compute function producing its canonical JSON payload. Run must be
// self-contained (build its own machine, share nothing): the pool may
// invoke it on any goroutine, concurrently with other jobs.
type Job struct {
	Spec Spec
	Run  func() ([]byte, error)
}

// Result is the outcome of one job, in submission order.
type Result struct {
	Payload []byte
	Err     error
	// Cached reports whether the payload came from the result cache.
	Cached bool
	// HostSeconds is the wall-clock compute cost (the original compute's
	// cost for cache hits).
	HostSeconds float64
}

// Progress is a point-in-time view of a sweep, delivered to OnProgress
// after every job completion and published through PublishMetrics.
type Progress struct {
	Total, Done, Cached, Failed int
	// ETASeconds estimates the remaining wall-clock time from the cost
	// model's view of the not-yet-finished jobs divided across workers.
	ETASeconds float64
	// Last is the spec of the job that just finished.
	Last Spec
}

// Pool executes jobs on a bounded set of host workers with
// longest-expected-first scheduling, per-job panic recovery and timeout,
// and optional result caching. The zero value runs serially without a
// cache; set fields before the first RunAll.
type Pool struct {
	// Workers is the concurrency bound; <=0 means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, memoizes job payloads by Spec hash.
	Cache *Cache
	// Costs, when non-nil, orders jobs longest-expected-first and learns
	// from every completed job. Nil falls back to a work heuristic.
	Costs *CostModel
	// Timeout bounds one job's compute time; an over-budget cell is
	// reported as that cell's error while the sweep continues. The wedged
	// goroutine is abandoned (the simulator has no preemption hook), so
	// timeouts are a last-resort isolation, not routine control flow.
	// 0 disables.
	Timeout time.Duration
	// OnProgress, when non-nil, is called after each job completes
	// (from worker goroutines; it must be safe for concurrent use).
	OnProgress func(Progress)

	mu        sync.Mutex
	total     int
	done      int
	cached    int
	failed    int
	remaining float64 // sum of estimates of unfinished jobs
}

// workers resolves the effective worker count.
func (p *Pool) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// PublishMetrics registers the pool's sweep counters with the unified
// metrics registry (subsystem "runner"): jobs_total, jobs_done,
// jobs_cached, jobs_failed and eta_ms.
func (p *Pool) PublishMetrics(reg *obs.Registry) {
	reg.Register("runner", func() obs.Sample {
		p.mu.Lock()
		defer p.mu.Unlock()
		return obs.Sample{Counters: []obs.NamedValue{
			{Name: "jobs_total", Value: uint64(p.total)},
			{Name: "jobs_done", Value: uint64(p.done)},
			{Name: "jobs_cached", Value: uint64(p.cached)},
			{Name: "jobs_failed", Value: uint64(p.failed)},
			{Name: "eta_ms", Value: uint64(p.etaLocked() * 1000)},
		}}
	})
}

func (p *Pool) etaLocked() float64 {
	if p.remaining <= 0 {
		return 0
	}
	return p.remaining / float64(p.workers())
}

func (p *Pool) estimate(spec Spec) float64 {
	if p.Costs != nil {
		return p.Costs.Estimate(spec)
	}
	return NewCostModel().Estimate(spec)
}

// RunAll executes the jobs and returns their results indexed exactly as
// submitted, regardless of scheduling: callers assemble output in
// submission order, which is what makes parallel runs byte-identical to
// serial ones. Individual failures land in their Result slot; RunAll
// itself never panics because of a job.
func (p *Pool) RunAll(jobs []Job) []Result {
	n := len(jobs)
	results := make([]Result, n)
	if n == 0 {
		return results
	}

	estimates := make([]float64, n)
	var sum float64
	for i, j := range jobs {
		estimates[i] = p.estimate(j.Spec)
		sum += estimates[i]
	}
	p.mu.Lock()
	p.total += n
	p.remaining += sum
	p.mu.Unlock()

	// Longest-expected-first (LPT) order, ties broken by submission index
	// so the schedule itself is deterministic.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort: n is small, stability trivial
		for j := i; j > 0 && (estimates[order[j]] > estimates[order[j-1]] ||
			(estimates[order[j]] == estimates[order[j-1]] && order[j] < order[j-1])); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	workers := p.workers()
	if workers > n {
		workers = n
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				results[idx] = p.runJob(jobs[idx])
				p.finishJob(jobs[idx].Spec, estimates[idx], results[idx])
			}
		}()
	}
	for _, idx := range order {
		idxCh <- idx
	}
	close(idxCh)
	wg.Wait()
	return results
}

// runJob resolves one job: cache hit, or compute + learn + store.
func (p *Pool) runJob(job Job) Result {
	if p.Cache != nil {
		if payload, secs, ok := p.Cache.Get(job.Spec); ok {
			return Result{Payload: payload, Cached: true, HostSeconds: secs}
		}
	}
	payload, secs, err := p.execute(job)
	if err != nil {
		return Result{Err: fmt.Errorf("%s: %w", job.Spec, err), HostSeconds: secs}
	}
	if p.Costs != nil {
		p.Costs.Observe(job.Spec, secs)
	}
	if p.Cache != nil {
		if err := p.Cache.Put(job.Spec, payload, secs); err != nil {
			// A full disk must not fail the sweep; the result is in hand.
			p.Cache.warn(err.Error())
		}
	}
	return Result{Payload: payload, HostSeconds: secs}
}

// execute runs the compute function with panic recovery and the
// per-job timeout.
func (p *Pool) execute(job Job) (payload []byte, hostSeconds float64, err error) {
	type outcome struct {
		payload []byte
		err     error
	}
	ch := make(chan outcome, 1)
	start := time.Now()
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("cell panicked: %v\n%s", r, debug.Stack())}
			}
		}()
		pl, err := job.Run()
		ch <- outcome{payload: pl, err: err}
	}()
	if p.Timeout > 0 {
		timer := time.NewTimer(p.Timeout)
		defer timer.Stop()
		select {
		case o := <-ch:
			return o.payload, time.Since(start).Seconds(), o.err
		case <-timer.C:
			return nil, time.Since(start).Seconds(),
				fmt.Errorf("cell exceeded %s timeout (wedged cell isolated; sweep continues)", p.Timeout)
		}
	}
	o := <-ch
	return o.payload, time.Since(start).Seconds(), o.err
}

// finishJob updates sweep counters and fires the progress callback.
func (p *Pool) finishJob(spec Spec, estimate float64, res Result) {
	p.mu.Lock()
	p.done++
	if res.Cached {
		p.cached++
	}
	if res.Err != nil {
		p.failed++
	}
	p.remaining -= estimate
	if p.remaining < 0 {
		p.remaining = 0
	}
	prog := Progress{
		Total:      p.total,
		Done:       p.done,
		Cached:     p.cached,
		Failed:     p.failed,
		ETASeconds: p.etaLocked(),
		Last:       spec,
	}
	cb := p.OnProgress
	p.mu.Unlock()
	if cb != nil {
		cb(prog)
	}
}

// Cell couples a Spec with a typed compute function; RunCells handles
// the JSON encode/decode so experiment code never sees raw payloads.
type Cell[T any] struct {
	Spec    Spec
	Compute func() (T, error)
}

// RunCells executes typed cells through the pool and returns their
// values in submission order. A nil pool runs the cells inline (serial,
// uncached) — the bench layer's fallback path.
//
// With a pool, every cell runs to completion (successes are cached) even
// when some fail, and the joined failures are returned at the end: an
// interrupted or partially failing sweep is resumable because the
// completed cells' results are already on disk.
//
// The typed value always takes one trip through canonical JSON — for
// fresh computes and cache hits alike — so a figure rendered from a
// cache hit is byte-identical to one rendered from a fresh run (Go's
// float64 JSON encoding round-trips exactly).
func RunCells[T any](p *Pool, cells []Cell[T]) ([]T, error) {
	out := make([]T, len(cells))
	roundTrip := func(v T, i int) error {
		raw, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("%s: encode: %w", cells[i].Spec, err)
		}
		return json.Unmarshal(raw, &out[i])
	}
	if p == nil {
		for i, c := range cells {
			v, err := c.Compute()
			if err != nil {
				return nil, err
			}
			if err := roundTrip(v, i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	jobs := make([]Job, len(cells))
	for i, c := range cells {
		compute := c.Compute
		jobs[i] = Job{Spec: c.Spec, Run: func() ([]byte, error) {
			v, err := compute()
			if err != nil {
				return nil, err
			}
			return json.Marshal(v)
		}}
	}
	var errs []error
	for i, res := range p.RunAll(jobs) {
		if res.Err != nil {
			errs = append(errs, res.Err)
			continue
		}
		if err := json.Unmarshal(res.Payload, &out[i]); err != nil {
			errs = append(errs, fmt.Errorf("%s: decode cached payload: %w", cells[i].Spec, err))
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return out, nil
}
