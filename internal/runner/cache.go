package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// DefaultCacheDir is where `figures` and `msf` keep cached cell results.
const DefaultCacheDir = ".rockcache"

// cacheEntry is the on-disk form of one memoized cell result.
type cacheEntry struct {
	// Version is the code-version salt the entry was computed under.
	Version string `json:"version"`
	// Key is Spec.Key() — stored so a hash collision (or a hand-edited
	// file) is detected instead of returning the wrong cell's payload.
	Key string `json:"key"`
	// Spec is stored for human inspection of the cache directory.
	Spec Spec `json:"spec"`
	// Payload is the cell's canonical JSON result.
	Payload json.RawMessage `json:"payload"`
	// HostSeconds is the wall-clock cost of computing the payload; it
	// seeds the cost model's longest-job-first schedule on later runs.
	HostSeconds float64 `json:"host_seconds"`
	// Created is when the entry was written (informational).
	Created time.Time `json:"created"`
}

// Cache is the content-addressed result store: one JSON file per cell
// under dir, named by the spec's salted hash. All methods are safe for
// concurrent use by pool workers.
type Cache struct {
	dir  string
	salt string

	mu    sync.Mutex
	warns []string
}

// OpenCache opens (creating if needed) a cache directory. salt is the
// code-version salt; pass CacheVersion outside of tests.
func OpenCache(dir, salt string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cache dir: %w", err)
	}
	return &Cache{dir: dir, salt: salt}, nil
}

// Dir returns the cache directory path.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(spec Spec) string {
	return filepath.Join(c.dir, spec.Hash(c.salt)+".json")
}

// Get returns the cached payload for spec, plus the host seconds the
// original computation took. A missing, corrupted, stale-version or
// mismatched entry is a miss; corruption and mismatches additionally
// record a warning (the sweep recomputes and overwrites, never crashes).
func (c *Cache) Get(spec Spec) (payload []byte, hostSeconds float64, ok bool) {
	raw, err := os.ReadFile(c.path(spec))
	if err != nil {
		return nil, 0, false // plain miss
	}
	var e cacheEntry
	if err := json.Unmarshal(raw, &e); err != nil {
		c.warn(fmt.Sprintf("cache: corrupted entry for %s (%v); recomputing", spec, err))
		return nil, 0, false
	}
	if e.Version != c.salt {
		// Stale code version: silently recompute (the common case after
		// any simulator change) — the fresh Put overwrites the file.
		return nil, 0, false
	}
	if e.Key != spec.Key() {
		c.warn(fmt.Sprintf("cache: key mismatch for %s (hash collision or edited file); recomputing", spec))
		return nil, 0, false
	}
	if len(e.Payload) == 0 {
		c.warn(fmt.Sprintf("cache: empty payload for %s; recomputing", spec))
		return nil, 0, false
	}
	return e.Payload, e.HostSeconds, true
}

// Put stores a freshly computed payload. Writes are atomic
// (temp file + rename) so a crashed run never leaves a truncated entry.
func (c *Cache) Put(spec Spec, payload []byte, hostSeconds float64) error {
	e := cacheEntry{
		Version:     c.salt,
		Key:         spec.Key(),
		Spec:        spec,
		Payload:     payload,
		HostSeconds: hostSeconds,
		Created:     time.Now().UTC(),
	}
	// Compact on purpose: MarshalIndent would re-indent the embedded
	// payload, and Get must hand back the exact bytes Put received so
	// cache hits are byte-faithful to fresh computes.
	raw, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("runner: cache encode %s: %w", spec, err)
	}
	final := c.path(spec)
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("runner: cache write %s: %w", spec, err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache write %s: %w", spec, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache write %s: %w", spec, err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache write %s: %w", spec, err)
	}
	return nil
}

func (c *Cache) warn(msg string) {
	c.mu.Lock()
	c.warns = append(c.warns, msg)
	c.mu.Unlock()
}

// Warnings drains the accumulated cache warnings (corrupted entries,
// key mismatches) in arrival order.
func (c *Cache) Warnings() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.warns
	c.warns = nil
	return out
}
