// Package runner is the host-parallel experiment orchestrator: it turns
// the bench layer's figure sweeps into a scheduled fleet of independent
// jobs (one deterministic simulated-machine build+run per experiment
// cell), executes them on a worker pool sized to the host, and memoizes
// each cell's result in a content-addressed on-disk cache so unchanged
// figures re-render instantly and interrupted `-exp all` runs resume
// where they stopped.
//
// Three properties matter and are preserved by construction:
//
//   - Determinism: each job builds its own sim.Machine from its own Spec,
//     so cells share no state and a cell's payload is a pure function of
//     its Spec. Results are merged in submission order, making parallel
//     output byte-identical to serial output.
//   - Isolation: a panicking or wedged cell is recovered/timed out and
//     reported as that cell's error; it never takes the sweep down.
//   - Honesty: cache keys include a code-version salt, so results
//     computed by older code are invalidated rather than silently reused.
package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// CacheVersion is the code-version salt folded into every cache key.
// Bump it whenever a change anywhere in the simulator or the experiment
// definitions can alter results: old cache entries then miss (and are
// eventually overwritten) instead of serving stale bytes.
const CacheVersion = "rocktm-cache-v1"

// Spec canonically identifies one experiment cell: everything that
// determines the cell's result must appear here (directly or via the sim
// config digest), because the cache treats equal Specs as equal results.
type Spec struct {
	// Experiment is the short experiment name ("fig1a", "msf", ...).
	Experiment string `json:"experiment"`
	// System is the synchronization system / curve within the experiment
	// ("phtm", "stm-tl2", "msf-opt-le", ...).
	System string `json:"system"`
	// Threads is the simulated thread (strand) count of the cell.
	Threads int `json:"threads"`
	// Ops is the per-thread operation count (0 when not applicable).
	Ops int `json:"ops"`
	// Seed is the experiment seed.
	Seed uint64 `json:"seed"`
	// SimDigest is the simulated-machine configuration digest
	// (sim.Config.Digest): cache safety against config drift.
	SimDigest string `json:"sim_digest"`
	// Params carries any extra cell parameters (key range, operation mix,
	// grid dimensions, chip mode, ...) in canonical (sorted) order. The
	// workload layer contributes its knobs here too — "skew" and "arrival"
	// in the canonical workload.Keys/Arrival string forms, and "lat" when
	// latency capture is on — so skewed, open-loop and latency-carrying
	// cells never alias their plain counterparts in the cache.
	Params map[string]string `json:"params,omitempty"`
}

// Key returns the canonical string form of the spec. Params are emitted
// in sorted key order so two equal specs always produce the same key.
func (s Spec) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "exp=%s sys=%s threads=%d ops=%d seed=%d sim=%s",
		s.Experiment, s.System, s.Threads, s.Ops, s.Seed, s.SimDigest)
	if len(s.Params) > 0 {
		keys := make([]string, 0, len(s.Params))
		for k := range s.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, s.Params[k])
		}
	}
	return b.String()
}

// Hash returns the content address of the spec under the given
// code-version salt: hex(sha256(salt || 0 || key)).
func (s Spec) Hash(salt string) string {
	h := sha256.New()
	h.Write([]byte(salt))
	h.Write([]byte{0})
	h.Write([]byte(s.Key()))
	return hex.EncodeToString(h.Sum(nil))
}

// String renders the spec compactly for progress lines and errors.
func (s Spec) String() string {
	return fmt.Sprintf("%s/%s@%dT", s.Experiment, s.System, s.Threads)
}

// CostKey is the coarse key the cost model learns under: cells with the
// same experiment, system and thread count are assumed to cost about the
// same regardless of seed, which is what makes estimates transfer across
// sweeps.
func (s Spec) CostKey() string {
	return fmt.Sprintf("%s/%s@%d/%d", s.Experiment, s.System, s.Threads, s.Ops)
}
