package runner

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
)

// costFile is the cost model's file name inside the cache directory.
const costFile = "costs.json"

// CostModel learns how long each kind of cell takes on this host and
// feeds the pool's longest-expected-first schedule, which minimizes the
// makespan tail (one long cell left for last on an otherwise idle pool).
//
// Estimates are an exponentially weighted moving average of measured
// host seconds keyed by Spec.CostKey (experiment/system/threads/ops), so
// a `figures` run learns from both its own cells and every prior run
// that persisted the model.
type CostModel struct {
	mu    sync.Mutex
	path  string // "" = in-memory only
	ewma  map[string]float64
	dirty bool
}

// NewCostModel returns an empty in-memory model.
func NewCostModel() *CostModel {
	return &CostModel{ewma: map[string]float64{}}
}

// LoadCostModel reads the persisted model from dir/costs.json; a missing
// or corrupted file yields an empty model bound to that path (corruption
// must never block a sweep).
func LoadCostModel(dir string) *CostModel {
	cm := NewCostModel()
	cm.path = filepath.Join(dir, costFile)
	raw, err := os.ReadFile(cm.path)
	if err != nil {
		return cm
	}
	var m map[string]float64
	if err := json.Unmarshal(raw, &m); err != nil || m == nil {
		return cm
	}
	cm.ewma = m
	return cm
}

// Estimate returns the expected host seconds for a cell. Unlearned cells
// fall back to a work heuristic — threads × ops (cells simulate
// threads·ops operations and the simulator executes them serially) — so
// a cold model still orders big cells before small ones.
func (cm *CostModel) Estimate(spec Spec) float64 {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	if v, ok := cm.ewma[spec.CostKey()]; ok && v > 0 {
		return v
	}
	ops := spec.Ops
	if ops <= 0 {
		ops = 1
	}
	threads := spec.Threads
	if threads <= 0 {
		threads = 1
	}
	// Arbitrary-but-monotone units; only relative order matters.
	return 1e-6 * float64(threads) * float64(ops)
}

// Observe folds one measured cell cost into the model (EWMA, α=0.5: new
// hosts and new code win quickly over history).
func (cm *CostModel) Observe(spec Spec, hostSeconds float64) {
	if hostSeconds <= 0 {
		return
	}
	cm.mu.Lock()
	defer cm.mu.Unlock()
	k := spec.CostKey()
	if old, ok := cm.ewma[k]; ok {
		cm.ewma[k] = 0.5*old + 0.5*hostSeconds
	} else {
		cm.ewma[k] = hostSeconds
	}
	cm.dirty = true
}

// Save persists the model next to the cache (no-op for in-memory models
// or when nothing changed). Errors are returned but callers may ignore
// them: the model is an optimization, not a correctness input.
func (cm *CostModel) Save() error {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	if cm.path == "" || !cm.dirty {
		return nil
	}
	raw, err := json.MarshalIndent(cm.ewma, "", "  ")
	if err != nil {
		return err
	}
	tmp := cm.path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, cm.path); err != nil {
		os.Remove(tmp)
		return err
	}
	cm.dirty = false
	return nil
}
