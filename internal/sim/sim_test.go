package sim

import (
	"testing"

	"rocktm/internal/cps"
)

func newTestMachine(strands int) *Machine {
	cfg := DefaultConfig(strands)
	cfg.MemWords = 1 << 18
	cfg.MaxCycles = 1 << 40
	// Keep probabilistic aborts out of unit tests unless a test opts in.
	cfg.CTIAbortProb = 0
	cfg.UCTIAbortProb = 0
	cfg.StoreAfterMissProb = 0
	return New(cfg)
}

func TestBitValuesMatchCPSPackage(t *testing.T) {
	pairs := []struct {
		got  uint32
		want cps.Bits
	}{
		{exogBit, cps.EXOG}, {cohBit, cps.COH}, {tccBit, cps.TCC},
		{instBit, cps.INST}, {precBit, cps.PREC}, {asyncBit, cps.ASYNC},
		{sizBit, cps.SIZ}, {ldBit, cps.LD}, {stBit, cps.ST},
		{ctiBit, cps.CTI}, {fpBit, cps.FP}, {uctiBit, cps.UCTI},
	}
	for _, p := range pairs {
		if p.got != uint32(p.want) {
			t.Errorf("bit mismatch: %x vs %x", p.got, p.want)
		}
	}
}

func TestAllocAndPoke(t *testing.T) {
	m := newTestMachine(1)
	a := m.Mem().Alloc(100, WordsPerLine)
	if a == 0 {
		t.Fatal("Alloc returned null address")
	}
	if a%WordsPerLine != 0 {
		t.Fatalf("Alloc not line aligned: %d", a)
	}
	m.Mem().Poke(a, 42)
	if got := m.Mem().Peek(a); got != 42 {
		t.Fatalf("Peek = %d, want 42", got)
	}
	b := m.Mem().Alloc(10, 0)
	if b < a+100 {
		t.Fatalf("overlapping allocations: %d after %d+100", b, a)
	}
}

func TestLoadStoreCAS(t *testing.T) {
	m := newTestMachine(1)
	a := m.Mem().Alloc(8, WordsPerLine)
	m.Run(func(s *Strand) {
		s.Store(a, 7)
		if got := s.Load(a); got != 7 {
			t.Errorf("Load = %d, want 7", got)
		}
		if old, ok := s.CAS(a, 7, 9); !ok || old != 7 {
			t.Errorf("CAS(7->9) = (%d,%v), want (7,true)", old, ok)
		}
		if old, ok := s.CAS(a, 7, 11); ok || old != 9 {
			t.Errorf("CAS(7->11) = (%d,%v), want (9,false)", old, ok)
		}
		if got := s.Add(a, 3); got != 12 {
			t.Errorf("Add = %d, want 12", got)
		}
	})
	if got := m.Mem().Peek(a); got != 12 {
		t.Fatalf("final value = %d, want 12", got)
	}
}

func TestVirtualTimeInterleaving(t *testing.T) {
	// Two strands increment a shared counter with CAS retry loops; with
	// virtual-time scheduling both must make progress and the total must
	// be exact.
	m := newTestMachine(2)
	a := m.Mem().Alloc(8, WordsPerLine)
	const per = 1000
	m.Run(func(s *Strand) {
		for i := 0; i < per; i++ {
			for {
				old := s.Load(a)
				if _, ok := s.CAS(a, old, old+1); ok {
					break
				}
			}
		}
	})
	if got := m.Mem().Peek(a); got != 2*per {
		t.Fatalf("counter = %d, want %d", got, 2*per)
	}
	// Clocks should be within a few quanta of each other: both ran.
	c0, c1 := m.Strand(0).Clock(), m.Strand(1).Clock()
	if c0 == 0 || c1 == 0 {
		t.Fatalf("a strand did not run: clocks %d, %d", c0, c1)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, Word) {
		m := newTestMachine(4)
		a := m.Mem().Alloc(64, WordsPerLine)
		m.Run(func(s *Strand) {
			for i := 0; i < 500; i++ {
				idx := s.RandIntn(8)
				s.Store(a+Addr(idx), s.Rand())
				s.Load(a + Addr(s.RandIntn(8)))
			}
		})
		return m.MaxClock(), m.Mem().Peek(a)
	}
	c1, w1 := run()
	c2, w2 := run()
	if c1 != c2 || w1 != w2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", c1, w1, c2, w2)
	}
}

func TestTxnCommitAppliesStores(t *testing.T) {
	m := newTestMachine(1)
	a := m.Mem().Alloc(16, WordsPerLine)
	m.Run(func(s *Strand) {
		s.Store(a, 1) // warm TLB/write permission
		s.TxBegin()
		if !s.TxStore(a, 5) {
			t.Fatalf("TxStore aborted: %v", s.CPS())
		}
		if w, ok := s.TxLoad(a); !ok || w != 5 {
			t.Fatalf("read-own-write = (%d,%v), want (5,true)", w, ok)
		}
		if m.Mem().Peek(a) != 1 {
			t.Fatal("store leaked before commit")
		}
		if !s.TxCommit() {
			t.Fatalf("commit failed: %v", s.CPS())
		}
	})
	if got := m.Mem().Peek(a); got != 5 {
		t.Fatalf("after commit = %d, want 5", got)
	}
}

func TestTxnAbortDiscardsStores(t *testing.T) {
	m := newTestMachine(1)
	a := m.Mem().Alloc(16, WordsPerLine)
	m.Run(func(s *Strand) {
		s.Store(a, 1)
		s.TxBegin()
		if !s.TxStore(a, 99) {
			t.Fatalf("TxStore aborted: %v", s.CPS())
		}
		s.TxAbortTrap()
		if s.TxActive() {
			t.Fatal("still active after abort")
		}
		if got := s.CPS(); got != cps.TCC {
			t.Fatalf("CPS = %v, want TCC", got)
		}
	})
	if got := m.Mem().Peek(a); got != 1 {
		t.Fatalf("aborted store leaked: %d", got)
	}
}

func TestRequesterWinsConflict(t *testing.T) {
	// Strand 0 starts a transaction and reads X, then spins; strand 1
	// stores to X; strand 0's next transactional operation must observe a
	// COH abort.
	m := newTestMachine(2)
	x := m.Mem().Alloc(8, WordsPerLine)
	y := m.Mem().Alloc(8, WordsPerLine)
	m.Run(func(s *Strand) {
		if s.ID() == 0 {
			s.Store(y, 0) // warm
			s.TxBegin()
			if _, ok := s.TxLoad(x); !ok {
				t.Errorf("initial TxLoad failed: %v", s.CPS())
				return
			}
			// Let strand 1 run far ahead.
			s.Advance(10000)
			if _, ok := s.TxLoad(x); ok {
				if s.TxCommit() {
					t.Error("transaction survived a conflicting store")
				}
				return
			}
			if got := s.CPS(); !got.Has(cps.COH) {
				t.Errorf("CPS = %v, want COH", got)
			}
		} else {
			s.Advance(2000) // let strand 0 mark x first
			s.Store(x, 123)
		}
	})
}

func TestStoreQueueOverflow(t *testing.T) {
	m := newTestMachine(1)
	a := m.Mem().Alloc(64*WordsPerLine, WordsPerLine)
	m.Run(func(s *Strand) {
		// Warm the TLB so ST-from-TLB-miss does not hit first.
		for p := PageOf(a); p <= PageOf(a+64*WordsPerLine-1); p++ {
			s.CAS(Addr(p)<<PageShift, 0, 0)
		}
		// 32 stores to 32 distinct lines succeed (two banks of 16).
		s.TxBegin()
		okAll := true
		for i := 0; i < 32; i++ {
			if !s.TxStore(a+Addr(i*WordsPerLine), 1) {
				okAll = false
				break
			}
		}
		if !okAll {
			t.Fatalf("32 stores aborted early: %v", s.CPS())
		}
		if !s.TxCommit() {
			t.Fatalf("32-store txn failed to commit: %v", s.CPS())
		}
		// The 33rd distinct line overflows a bank: ST|SIZ.
		s.TxBegin()
		for i := 0; i < 33; i++ {
			if !s.TxStore(a+Addr(i*WordsPerLine), 1) {
				if got := s.CPS(); got != cps.ST|cps.SIZ {
					t.Fatalf("overflow CPS = %v, want ST|SIZ", got)
				}
				return
			}
		}
		t.Fatal("33 stores did not overflow")
	})
}

func TestMicroTLBMissOnStore(t *testing.T) {
	m := newTestMachine(1)
	a := m.Mem().Alloc(PageWords*2, PageWords)
	m.Run(func(s *Strand) {
		m.Mem().Remap(a, PageWords*2) // drop mappings
		s.TxBegin()
		if s.TxStore(a, 1) {
			t.Fatal("store to unmapped page succeeded")
		}
		if got := s.CPS(); got != cps.ST {
			t.Fatalf("CPS = %v, want ST", got)
		}
		// Unmapped at every level: retry keeps failing.
		s.TxBegin()
		if s.TxStore(a, 1) {
			t.Fatal("retry to unmapped page succeeded")
		}
		// Dummy CAS warmup establishes mapping and write permission...
		s.CAS(a, 0, 0)
		// ...after which the transactional store succeeds.
		s.TxBegin()
		if !s.TxStore(a, 7) {
			t.Fatalf("post-warmup store failed: %v", s.CPS())
		}
		if !s.TxCommit() {
			t.Fatalf("post-warmup commit failed: %v", s.CPS())
		}
	})
	if got := m.Mem().Peek(a); got != 7 {
		t.Fatalf("value = %d, want 7", got)
	}
}

func TestTxnLoadUnmappedPage(t *testing.T) {
	m := newTestMachine(1)
	a := m.Mem().Alloc(PageWords, PageWords)
	m.Run(func(s *Strand) {
		m.Mem().Remap(a, PageWords)
		s.TxBegin()
		if _, ok := s.TxLoad(a); ok {
			t.Fatal("load from unmapped page succeeded")
		}
		if got := s.CPS(); got != cps.LD|cps.PREC {
			t.Fatalf("CPS = %v, want LD|PREC", got)
		}
	})
}

func TestCacheSetTestFiveWays(t *testing.T) {
	// Five loads mapping to the same 4-way L1 set can never all stay
	// marked: CPS=LD (the Section 3 "cache set test").
	m := newTestMachine(1)
	cfg := m.Config()
	stride := cfg.L1Sets * WordsPerLine
	a := m.Mem().Alloc(stride*6, stride)
	m.Run(func(s *Strand) {
		s.TxBegin()
		for i := 0; i < 5; i++ {
			if _, ok := s.TxLoad(a + Addr(i*stride)); !ok {
				if got := s.CPS(); !got.Has(cps.LD) {
					t.Fatalf("CPS = %v, want LD set", got)
				}
				return
			}
		}
		t.Fatal("five same-set loads did not abort")
	})
}

func TestEvictionTest(t *testing.T) {
	// Long line-stride load sequences cannot fit in L1: LD or SIZ.
	m := newTestMachine(1)
	cfg := m.Config()
	lines := cfg.L1Sets*cfg.L1Ways + 64
	a := m.Mem().Alloc(lines*WordsPerLine, WordsPerLine)
	m.Run(func(s *Strand) {
		s.TxBegin()
		for i := 0; i < lines; i++ {
			if _, ok := s.TxLoad(a + Addr(i*WordsPerLine)); !ok {
				if got := s.CPS(); !got.Any(cps.LD | cps.SIZ) {
					t.Fatalf("CPS = %v, want LD or SIZ", got)
				}
				return
			}
		}
		t.Fatal("oversized read set did not abort")
	})
}

func TestSaveRestoreDivTrap(t *testing.T) {
	m := newTestMachine(1)
	m.Run(func(s *Strand) {
		s.TxBegin()
		s.TxSaveRestore()
		if got := s.CPS(); got != cps.INST {
			t.Errorf("save/restore CPS = %v, want INST", got)
		}
		s.TxBegin()
		s.TxDiv()
		if got := s.CPS(); got != cps.FP {
			t.Errorf("div CPS = %v, want FP", got)
		}
		s.TxBegin()
		if !s.TxTrap(false) {
			t.Error("untaken trap aborted")
		}
		if !s.TxCommit() {
			t.Errorf("commit after untaken trap failed: %v", s.CPS())
		}
		s.TxBegin()
		s.TxTrap(true)
		if got := s.CPS(); got != cps.TCC {
			t.Errorf("taken trap CPS = %v, want TCC", got)
		}
	})
}

func TestSEModeStoreQueue(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Mode = SE
	cfg.MemWords = 1 << 18
	cfg.StoreAfterMissProb = 0
	m := New(cfg)
	a := m.Mem().Alloc(64*WordsPerLine, WordsPerLine)
	m.Run(func(s *Strand) {
		for p := PageOf(a); p <= PageOf(a+64*WordsPerLine-1); p++ {
			s.CAS(Addr(p)<<PageShift, 0, 0)
		}
		s.TxBegin()
		for i := 0; i < 17; i++ {
			if !s.TxStore(a+Addr(i*WordsPerLine), 1) {
				if got := s.CPS(); got != cps.ST|cps.SIZ {
					t.Fatalf("SE overflow CPS = %v, want ST|SIZ", got)
				}
				return
			}
		}
		t.Fatal("17 stores fit a 16-entry SE store queue")
	})
}

func TestAsyncInterrupt(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MemWords = 1 << 16
	cfg.InterruptEvery = 500
	cfg.StoreAfterMissProb = 0
	m := New(cfg)
	a := m.Mem().Alloc(8, WordsPerLine)
	m.Run(func(s *Strand) {
		s.Store(a, 0)
		sawAsync := false
		for i := 0; i < 50 && !sawAsync; i++ {
			s.TxBegin()
			okRun := true
			for j := 0; j < 30; j++ {
				if _, ok := s.TxLoad(a); !ok {
					okRun = false
					break
				}
			}
			if okRun && s.TxCommit() {
				continue
			}
			if s.CPS().Has(cps.ASYNC) {
				sawAsync = true
			}
		}
		if !sawAsync {
			t.Error("never observed an ASYNC abort with InterruptEvery=500")
		}
	})
}
