package sim

import (
	"testing"
	"testing/quick"
)

// ---- branch predictor ----

func TestPredictorLearnsStableBranches(t *testing.T) {
	bp := newBranchPredictor()
	misses := 0
	for i := 0; i < 200; i++ {
		if bp.predict(42, true) {
			misses++
		}
	}
	if misses > 20 { // gshare needs history warmup: ~12 distinct indexes before saturation
		t.Errorf("always-taken branch mispredicted %d/200 times", misses)
	}
	// A branch alternating every iteration with history-based indexing
	// should also be learned eventually.
	bp2 := newBranchPredictor()
	late := 0
	for i := 0; i < 400; i++ {
		mis := bp2.predict(7, i%2 == 0)
		if i >= 200 && mis {
			late++
		}
	}
	if late > 20 {
		t.Errorf("alternating branch still missing %d/200 after warmup", late)
	}
}

// ---- TLB ----

func TestTLBGenerationInvalidation(t *testing.T) {
	tb := newTLB(4)
	tb.fill(10, 0)
	if !tb.lookup(10, 0) {
		t.Fatal("fresh entry missing")
	}
	if tb.lookup(10, 1) {
		t.Fatal("stale generation hit")
	}
	// The stale probe must also have dropped the entry.
	if tb.lookup(10, 0) {
		t.Fatal("stale entry lingered")
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tb := newTLB(2)
	tb.fill(1, 0)
	tb.fill(2, 0)
	tb.lookup(1, 0) // make page 1 most recent
	tb.fill(3, 0)   // must evict page 2
	if !tb.lookup(1, 0) {
		t.Error("recently used page evicted")
	}
	if tb.lookup(2, 0) {
		t.Error("LRU page survived")
	}
	if !tb.lookup(3, 0) {
		t.Error("newly filled page missing")
	}
	tb.flush()
	if tb.lookup(1, 0) || tb.lookup(3, 0) {
		t.Error("flush left entries behind")
	}
}

// ---- L1 cache ----

func TestL1HitsAndLRU(t *testing.T) {
	c := newL1(2, 2) // 2 sets × 2 ways
	if hit, _, _, _ := c.access(0); hit {
		t.Fatal("cold access hit")
	}
	if hit, _, _, _ := c.access(0); !hit {
		t.Fatal("warm access missed")
	}
	// Lines 0, 2, 4 all map to set 0; with 2 ways the LRU (0) goes first.
	c.access(2)
	c.access(0) // touch 0 so 2 is LRU
	_, evicted, _, _ := c.access(4)
	if evicted != 2 {
		t.Fatalf("evicted line %d, want 2", evicted)
	}
}

func TestL1MarkedLinesPinned(t *testing.T) {
	c := newL1(1, 2) // one set, two ways
	_, _, _, i0 := c.access(0)
	c.mark(i0)
	c.access(1)
	// Line 2 must evict line 1 (unmarked), not the marked line 0.
	_, evicted, wasMarked, _ := c.access(2)
	if evicted != 1 || wasMarked {
		t.Fatalf("evicted (%d,%v), want (1,false)", evicted, wasMarked)
	}
	// Now both resident lines: 0 (marked) and 2. Mark 2 as well; the next
	// fill has no unmarked victim and must report a marked eviction.
	if i2 := c.lookup(2); i2 >= 0 {
		c.mark(i2)
	}
	_, _, wasMarked, _ = c.access(3)
	if !wasMarked {
		t.Fatal("full-of-marked set did not report a marked eviction")
	}
}

func TestL1InvalidateAndMarkClear(t *testing.T) {
	c := newL1(4, 2)
	_, _, _, idx := c.access(9)
	c.mark(idx)
	if n := c.markedCountInSet(9); n != 1 {
		t.Fatalf("markedCountInSet = %d", n)
	}
	c.clearMark(9)
	if n := c.markedCountInSet(9); n != 0 {
		t.Fatal("clearMark left the mark")
	}
	c.mark(c.lookup(9))
	present, wasMarked := c.invalidate(9)
	if !present || !wasMarked {
		t.Fatalf("invalidate = (%v,%v)", present, wasMarked)
	}
	if c.lookup(9) != -1 {
		t.Fatal("line still present after invalidate")
	}
}

// ---- L2 back-invalidation dooms marked L1 lines ----

func TestL2BackInvalidationDooms(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.MemWords = 1 << 22
	cfg.L2Sets, cfg.L2Ways = 16, 2 // tiny L2: easy to displace
	cfg.MaxCycles = 1 << 42
	cfg.StoreAfterMissProb = 0
	cfg.CTIAbortProb = 0
	cfg.UCTIAbortProb = 0
	m := New(cfg)
	a := m.Mem().AllocLines(WordsPerLine)
	sweep := m.Mem().AllocLines(1 << 14)
	sawCOH := false
	m.Run(func(s *Strand) {
		if s.ID() == 0 {
			for i := 0; i < 200 && !sawCOH; i++ {
				s.TxBegin()
				if _, ok := s.TxLoad(a); !ok {
					continue
				}
				s.Advance(500)
				if _, ok := s.TxLoad(a); !ok {
					if s.CPS().Has(2) { // cps.COH
						sawCOH = true
					}
					continue
				}
				s.TxCommit()
			}
		} else {
			for i := 0; i < 1<<13; i++ {
				s.Load(sweep + Addr((i*WordsPerLine)%(1<<14)))
			}
		}
	})
	if !sawCOH {
		t.Error("L2 displacement never doomed a marked line with COH")
	}
}

// ---- memory / allocator properties ----

func TestAllocNeverOverlapsQuick(t *testing.T) {
	prop := func(sizes []uint8) bool {
		cfg := DefaultConfig(1)
		cfg.MemWords = 1 << 18
		m := New(cfg)
		type span struct{ lo, hi int }
		var spans []span
		for _, raw := range sizes {
			n := 1 + int(raw)%64
			a := m.Mem().AllocLines(n)
			s := span{int(a), int(a) + n}
			for _, o := range spans {
				if s.lo < o.hi && o.lo < s.hi {
					return false
				}
			}
			spans = append(spans, s)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRemapRevokesAndFaultsBack(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MemWords = 1 << 16
	m := New(cfg)
	a := m.Mem().Alloc(PageWords, PageWords)
	m.Run(func(s *Strand) {
		s.Store(a, 5)
		m.Mem().Remap(a, PageWords)
		before := s.Stats().PageFaults
		if got := s.Load(a); got != 5 {
			t.Errorf("data lost across remap: %d", got)
		}
		if s.Stats().PageFaults != before+1 {
			t.Error("no page fault on first touch after remap")
		}
	})
}

// ---- SE vs SSE determinism and divergence ----

func TestModesDiverge(t *testing.T) {
	run := func(mode Mode) (committed bool) {
		cfg := DefaultConfig(1)
		cfg.MemWords = 1 << 18
		cfg.Mode = mode
		cfg.StoreAfterMissProb = 0
		m := New(cfg)
		a := m.Mem().AllocLines(24 * WordsPerLine)
		m.Run(func(s *Strand) {
			for p := PageOf(a); p <= PageOf(a+24*WordsPerLine-1); p++ {
				s.CAS(Addr(p)<<PageShift, 0, 0)
			}
			s.TxBegin()
			ok := true
			// 20 distinct lines: fits two banks of 16 (SSE), overflows two
			// banks of 8 (SE).
			for i := 0; i < 20 && ok; i++ {
				ok = s.TxStore(a+Addr(i*WordsPerLine), 1)
			}
			committed = ok && s.TxCommit()
		})
		return committed
	}
	if !run(SSE) {
		t.Error("20-line write set failed in SSE mode")
	}
	if run(SE) {
		t.Error("20-line write set fit the SE-mode store queue")
	}
}
