package sim

import (
	"reflect"
	"testing"

	"rocktm/internal/cps"
)

// runFaultWorkload executes a fixed single-strand transactional workload
// under the given fault plan and returns the per-CPS abort histogram and
// the final virtual clock. The workload pre-warms every page and line, so
// with no fault plan (and the probabilistic organic aborts disabled by
// newFaultTestMachine) every transaction commits — any abort observed is
// the injector's doing.
func runFaultWorkload(plan FaultPlan, txs, linesPerTx int) (map[cps.Bits]int, int64) {
	cfg := DefaultConfig(1)
	cfg.MemWords = 1 << 18
	cfg.MaxCycles = 1 << 40
	cfg.CTIAbortProb = 0
	cfg.UCTIAbortProb = 0
	cfg.StoreAfterMissProb = 0
	cfg.Faults = plan
	m := New(cfg)
	const lines = 48 // well under both L1 and micro-DTLB capacity
	a := m.Mem().Alloc(lines*WordsPerLine, WordsPerLine)
	hist := map[cps.Bits]int{}
	m.Run(func(s *Strand) {
		for i := 0; i < lines; i++ {
			s.Store(a+Addr(i*WordsPerLine), 1) // warm TLB, write permission, caches
		}
		for k := 0; k < txs; k++ {
			s.TxBegin()
			ok := true
			for j := 0; j < linesPerTx; j++ {
				addr := a + Addr(((k+j)%lines)*WordsPerLine)
				if _, ld := s.TxLoad(addr); !ld {
					ok = false
					break
				}
				if !s.TxStore(addr, Word(k)) {
					ok = false
					break
				}
			}
			if ok && !s.TxCommit() {
				ok = false
			}
			if !ok {
				hist[s.CPS()]++
			}
		}
	})
	return hist, m.MaxClock()
}

// countWith sums the aborts whose CPS value includes bit.
func countWith(hist map[cps.Bits]int, bit cps.Bits) int {
	n := 0
	for c, v := range hist {
		if c.Has(bit) {
			n += v
		}
	}
	return n
}

// TestFaultBaselineCommitsEverything establishes the control: with a zero
// plan the warmed workload never aborts, so the per-profile tests below
// attribute every abort to the injector.
func TestFaultBaselineCommitsEverything(t *testing.T) {
	hist, _ := runFaultWorkload(FaultPlan{}, 200, 4)
	if len(hist) != 0 {
		t.Fatalf("baseline workload aborted: %v", hist)
	}
}

// TestFaultInterruptsInjectASYNC checks the spurious-interrupt fault: the
// injected dooms must surface as ASYNC aborts.
func TestFaultInterruptsInjectASYNC(t *testing.T) {
	hist, _ := runFaultWorkload(FaultPlan{InterruptProb: 0.05}, 200, 4)
	if n := countWith(hist, cps.ASYNC); n == 0 {
		t.Fatalf("no ASYNC aborts under the interrupt fault: %v", hist)
	}
	for c := range hist {
		if !c.Has(cps.ASYNC) {
			t.Errorf("unexpected abort cause %v under the interrupt fault", c)
		}
	}
}

// TestFaultTLBShootdownInjectsST checks the micro-DTLB shootdown fault:
// the evicted mapping makes the next transactional store miss and abort
// with ST through the organic Section 3.1 path — and because the failing
// access re-warms the mapping, the workload still makes progress.
func TestFaultTLBShootdownInjectsST(t *testing.T) {
	hist, _ := runFaultWorkload(FaultPlan{TLBShootdownProb: 0.5}, 200, 4)
	if n := countWith(hist, cps.ST); n == 0 {
		t.Fatalf("no ST aborts under the TLB-shootdown fault: %v", hist)
	}
	for c := range hist {
		if c != cps.ST {
			t.Errorf("unexpected abort cause %v under the TLB-shootdown fault", c)
		}
	}
}

// TestFaultInvalidationInjectsCOH checks the adversarial-invalidation
// fault: transactions with marked lines are doomed with COH.
func TestFaultInvalidationInjectsCOH(t *testing.T) {
	hist, _ := runFaultWorkload(FaultPlan{InvalidateProb: 0.1}, 200, 4)
	if n := countWith(hist, cps.COH); n == 0 {
		t.Fatalf("no COH aborts under the invalidation fault: %v", hist)
	}
	for c := range hist {
		if !c.Has(cps.COH) {
			t.Errorf("unexpected abort cause %v under the invalidation fault", c)
		}
	}
}

// TestFaultSqueezeInjectsOverflow checks the capacity squeeze: with the
// per-bank store queue squeezed to 2 entries, a transaction writing 8
// distinct lines must overflow (ST|SIZ), while the unsqueezed machine
// commits the identical workload.
func TestFaultSqueezeInjectsOverflow(t *testing.T) {
	if hist, _ := runFaultWorkload(FaultPlan{}, 50, 8); len(hist) != 0 {
		t.Fatalf("8-line transactions abort without the squeeze: %v", hist)
	}
	hist, _ := runFaultWorkload(FaultPlan{SqueezeStoreQueue: 2}, 50, 8)
	if hist[cps.ST|cps.SIZ] == 0 {
		t.Fatalf("no ST|SIZ overflows under the store-queue squeeze: %v", hist)
	}
}

// TestFaultEvictProfileInjectsLD checks the named evict profile's decision
// table on the default (zero-tolerance) design: every injected displacement
// of a marked line dooms the transaction with an LD-flavoured CPS (the same
// reason an organic capacity eviction produces), and nothing else fires.
// The sticky-design half of the table — absorption up to the bound, then
// LD|SIZ — is pinned by TestEvictMarkedFaultRespectsDesign in design_test.go.
func TestFaultEvictProfileInjectsLD(t *testing.T) {
	p := FaultProfile("evict")
	if p.EvictMarkedProb <= 0 {
		t.Fatalf("evict profile does not enable EvictMarkedProb: %+v", p)
	}
	hist, _ := runFaultWorkload(p, 400, 4)
	if n := countWith(hist, cps.LD); n == 0 {
		t.Fatalf("no LD aborts under the evict profile: %v", hist)
	}
	for c := range hist {
		if !c.Has(cps.LD) {
			t.Errorf("unexpected abort cause %v under the evict profile", c)
		}
	}
}

// TestFaultDeterminism checks that the fault schedule is a pure function
// of the seeds: identical plans replay bit-for-bit, and the plan's own
// Seed field changes the schedule without touching the workload seed.
func TestFaultDeterminism(t *testing.T) {
	plan := FaultPlan{InterruptProb: 0.03, TLBShootdownProb: 0.2, InvalidateProb: 0.05}
	h1, c1 := runFaultWorkload(plan, 300, 4)
	h2, c2 := runFaultWorkload(plan, 300, 4)
	if c1 != c2 || !reflect.DeepEqual(h1, h2) {
		t.Fatalf("same plan diverged: clocks %d vs %d, hists %v vs %v", c1, c2, h1, h2)
	}
	plan.Seed = 99
	h3, c3 := runFaultWorkload(plan, 300, 4)
	if c1 == c3 && reflect.DeepEqual(h1, h3) {
		t.Fatal("changing FaultPlan.Seed changed nothing (suspiciously)")
	}
}

// TestFaultSeedAloneIsInert checks that a plan with only a Seed (no
// enabled fault) perturbs nothing: the fault RNG must not exist unless a
// probabilistic fault can consume it.
func TestFaultSeedAloneIsInert(t *testing.T) {
	_, base := runFaultWorkload(FaultPlan{}, 100, 4)
	hist, seeded := runFaultWorkload(FaultPlan{Seed: 12345}, 100, 4)
	if len(hist) != 0 || seeded != base {
		t.Fatalf("seed-only plan perturbed the run: clock %d vs %d, hist %v", seeded, base, hist)
	}
}

// TestFaultProfiles checks the named-profile surface the policy ablation
// uses: the baseline is inert, every other profile is enabled, and the
// digest of a faulted config differs from the baseline's (so the runner
// cache never serves one profile's result for another).
func TestFaultProfiles(t *testing.T) {
	names := FaultProfileNames()
	if len(names) < 4 || names[0] != "none" {
		t.Fatalf("FaultProfileNames() = %v, want none first and >=3 fault profiles", names)
	}
	base := DefaultConfig(1)
	digests := map[string]bool{}
	for _, n := range names {
		p := FaultProfile(n)
		if n == "none" {
			if p.Enabled() {
				t.Errorf("profile none is not inert: %+v", p)
			}
		} else if !p.Enabled() {
			t.Errorf("profile %s is inert", n)
		}
		cfg := base
		cfg.Faults = p
		d := cfg.Digest()
		if digests[d] {
			t.Errorf("profile %s: config digest collides with another profile", n)
		}
		digests[d] = true
	}
	defer func() {
		if recover() == nil {
			t.Error("FaultProfile(unknown) did not panic")
		}
	}()
	FaultProfile("no-such-profile")
}
