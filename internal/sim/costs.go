package sim

// Costs is the cycle-cost table of the simulated machine. The values are
// plausible for a ~2.3 GHz aggressive out-of-order part of the Rock era; they
// are not measurements of Rock itself. Experiments care about the *shape* of
// results, which is governed by the ratios here (an L2 miss is two orders of
// magnitude more expensive than an L1 hit, a CAS costs tens of cycles, ...).
type Costs struct {
	// FreqGHz converts cycles to wall-clock time when reporting throughput.
	FreqGHz float64

	// Op is the base cost of one simulated instruction (ALU work, issue).
	Op int64
	// L1Hit is the additional cost of a load/store that hits in the L1.
	L1Hit int64
	// L2Hit is the additional cost of an access that misses L1, hits L2.
	L2Hit int64
	// MemAccess is the additional cost of an access that misses both caches.
	MemAccess int64
	// CASExtra is the additional cost of an atomic compare-and-swap beyond
	// the underlying memory access.
	CASExtra int64
	// Mispredict is the pipeline-refill penalty of a mispredicted branch.
	Mispredict int64
	// Chkpt is the cost of taking a register checkpoint (chkpt instruction).
	Chkpt int64
	// CommitBase is the fixed cost of committing a transaction.
	CommitBase int64
	// CommitPerStore is the per-store cost of draining the store queue at
	// commit.
	CommitPerStore int64
	// AbortPenalty is the pipeline-flush/restore cost of an aborted
	// transaction, charged before control reaches the fail address.
	AbortPenalty int64
	// TLBWalk is the cost of a hardware table walk that services a TLB miss
	// outside a transaction.
	TLBWalk int64
	// PageFault is the cost of the OS servicing a page fault (first touch
	// of an unmapped or read-only page outside a transaction).
	PageFault int64

	// The three costs below price the non-default HTM design points
	// (Config.HTM); none is charged under the all-default Rock design, so
	// adding them left every golden digest untouched.

	// LogWrite is the cost of appending one undo-log entry under eager
	// version management (HTMDesign.VM = VMEager), charged per
	// transactional store; an abort re-pays it per rolled-back entry.
	LogWrite int64
	// NackStall is the stall window a requester waits after being NACKed
	// by a conflicting holder under committer-wins or timestamp conflict
	// resolution, before re-checking the line once.
	NackStall int64
	// StickyEvict is the cost of spilling a transactionally marked line
	// into the bounded sticky overflow set (HTMDesign.StickyLines > 0)
	// instead of aborting on its L1 displacement.
	StickyEvict int64
}

// DefaultCosts returns the cost table used throughout the experiments.
func DefaultCosts() Costs {
	return Costs{
		FreqGHz:        2.3,
		Op:             1,
		L1Hit:          2,
		L2Hit:          24,
		MemAccess:      220,
		CASExtra:       30,
		Mispredict:     16,
		Chkpt:          6,
		CommitBase:     14,
		CommitPerStore: 2,
		AbortPenalty:   24,
		TLBWalk:        140,
		PageFault:      1800,
		LogWrite:       3,
		NackStall:      40,
		StickyEvict:    12,
	}
}
