package sim

import (
	"strings"
	"testing"

	"rocktm/internal/cps"
)

func newDesignMachine(strands int, d HTMDesign) *Machine {
	cfg := DefaultConfig(strands)
	cfg.MemWords = 1 << 18
	cfg.MaxCycles = 1 << 40
	cfg.CTIAbortProb = 0
	cfg.UCTIAbortProb = 0
	cfg.StoreAfterMissProb = 0
	cfg.HTM = d
	return New(cfg)
}

// TestRockDesignPointIsDefault pins the contract every golden digest rests
// on: the named "rock" design point IS the zero value, so a config that
// never mentions HTM and one that asks for Rock explicitly are the same
// machine.
func TestRockDesignPointIsDefault(t *testing.T) {
	if DesignPoint("rock") != (HTMDesign{}) {
		t.Fatalf("DesignPoint(rock) = %+v, want zero value", DesignPoint("rock"))
	}
	names := DesignPointNames()
	if len(names) < 4 || names[0] != "rock" {
		t.Fatalf("DesignPointNames() = %v, want rock first and >= 4 points", names)
	}
	base := DefaultConfig(2)
	explicit := base
	explicit.HTM = DesignPoint("rock")
	if base.Digest() != explicit.Digest() {
		t.Fatal("explicit rock design changed the config digest")
	}
}

// TestDesignPointsConstruct: every named point passes validation and
// builds a machine; at least three non-default points have digests that
// differ from the default and from each other (the runner cache keys).
func TestDesignPointsConstruct(t *testing.T) {
	base := DefaultConfig(2)
	base.MemWords = 1 << 16
	seen := map[string]string{base.Digest(): "rock"}
	nonDefault := 0
	for _, name := range DesignPointNames() {
		cfg := base
		cfg.HTM = DesignPoint(name)
		New(cfg) // must not panic
		if name == "rock" {
			continue
		}
		d := cfg.Digest()
		if prev, dup := seen[d]; dup {
			t.Errorf("design %q has the same config digest as %q", name, prev)
		}
		seen[d] = name
		nonDefault++
	}
	if nonDefault < 3 {
		t.Fatalf("only %d non-default design points, want >= 3", nonDefault)
	}
}

func TestDesignValidateRejectsIncoherentPoints(t *testing.T) {
	cases := []struct {
		name    string
		d       HTMDesign
		wantMsg string
	}{
		{"eagervm+lazydet", HTMDesign{VM: VMEager, Detect: DetectLazy}, "incoherent"},
		{"lazydet+committer", HTMDesign{Detect: DetectLazy, Resolve: ResCommitterWins}, "first committer wins"},
		{"negative sticky", HTMDesign{StickyLines: -1}, "StickyLines"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("validate accepted %+v", tc.d)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, tc.wantMsg) {
					t.Fatalf("panic %v does not contain %q", r, tc.wantMsg)
				}
			}()
			cfg := DefaultConfig(1)
			cfg.MemWords = 1 << 16
			cfg.HTM = tc.d
			New(cfg)
		})
	}
}

func TestDesignPointUnknownNamePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("DesignPoint accepted an unknown name")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "rock") {
			t.Fatalf("panic %v does not enumerate the known points", r)
		}
	}()
	DesignPoint("no-such-design")
}

// ---- Decision tables: who aborts/stalls under each resolution policy ----

// TestCommitterWinsRequesterSelfAborts: under ResCommitterWins the holder
// of a conflicting line survives and the requester — after one NACK stall
// window — self-aborts with COH.
func TestCommitterWinsRequesterSelfAborts(t *testing.T) {
	m := newDesignMachine(2, DesignPoint("committer"))
	x := m.Mem().Alloc(2*WordsPerLine, WordsPerLine)
	xWarm := x + WordsPerLine // same page, different line: TLB warm only
	m.Run(func(s *Strand) {
		if s.ID() == 0 {
			s.CAS(x, 0, 0) // warm TLB + write permission
			s.TxBegin()
			if !s.TxStore(x, 7) {
				t.Errorf("holder's store failed: %v", s.CPS())
				return
			}
			s.Advance(20000) // hold the line across the requester's attempt
			if !s.TxCommit() {
				t.Errorf("holder did not survive requester-wins-off conflict: %v", s.CPS())
			}
		} else {
			s.CAS(xWarm, 0, 0)
			s.Advance(2000) // arrive while strand 0 holds x
			s.TxBegin()
			if s.TxStore(x, 9) {
				t.Error("requester's conflicting store succeeded under committer-wins")
				return
			}
			if got := s.CPS(); got != cps.COH {
				t.Errorf("requester CPS = %v, want COH", got)
			}
		}
	})
	if got := m.Mem().Peek(x); got != 7 {
		t.Errorf("x = %d after run, want the holder's 7", got)
	}
}

// TestTimestampYoungerRequesterLoses: a younger requester against an older
// holder stalls and self-aborts with COH, like committer-wins.
func TestTimestampYoungerRequesterLoses(t *testing.T) {
	m := newDesignMachine(2, DesignPoint("timestamp"))
	x := m.Mem().Alloc(2*WordsPerLine, WordsPerLine)
	xWarm := x + WordsPerLine
	m.Run(func(s *Strand) {
		if s.ID() == 0 {
			s.CAS(x, 0, 0)
			s.TxBegin() // older: first begin in virtual time
			if !s.TxStore(x, 7) {
				t.Errorf("older holder's store failed: %v", s.CPS())
				return
			}
			s.Advance(20000)
			if !s.TxCommit() {
				t.Errorf("older holder aborted: %v", s.CPS())
			}
		} else {
			s.CAS(xWarm, 0, 0)
			s.Advance(2000)
			s.TxBegin() // younger
			if s.TxStore(x, 9) {
				t.Error("younger requester beat an older holder under timestamp order")
				return
			}
			if got := s.CPS(); got != cps.COH {
				t.Errorf("younger requester CPS = %v, want COH", got)
			}
		}
	})
}

// TestTimestampOlderRequesterDoomsYounger: an older requester dooms a
// younger holder and proceeds without stalling — the half of the
// timestamp decision table that differs from committer-wins.
func TestTimestampOlderRequesterDoomsYounger(t *testing.T) {
	m := newDesignMachine(2, DesignPoint("timestamp"))
	x := m.Mem().Alloc(2*WordsPerLine, WordsPerLine)
	xWarm := x + WordsPerLine
	m.Run(func(s *Strand) {
		if s.ID() == 0 {
			s.CAS(x, 0, 0)
			s.TxBegin() // older: begins before strand 1's begin at ~1000
			s.Advance(5000)
			if !s.TxStore(x, 7) { // strand 1 holds x by now; older wins
				t.Errorf("older requester lost to a younger holder: %v", s.CPS())
				return
			}
			if !s.TxCommit() {
				t.Errorf("older requester failed to commit: %v", s.CPS())
			}
		} else {
			s.CAS(xWarm, 0, 0)
			s.Advance(1000)
			s.TxBegin()           // younger
			if !s.TxStore(x, 9) { // no conflict yet: strand 0 has not touched x
				t.Errorf("younger's uncontended store failed: %v", s.CPS())
				return
			}
			s.Advance(10000)
			if s.TxCommit() {
				t.Error("younger holder survived an older requester")
				return
			}
			if got := s.CPS(); got != cps.COH {
				t.Errorf("doomed younger CPS = %v, want COH", got)
			}
		}
	})
	if got := m.Mem().Peek(x); got != 7 {
		t.Errorf("x = %d after run, want the older transaction's 7", got)
	}
}

// TestLazyDetectionFirstCommitterWins: under DetectLazy a load of a line
// an active transaction has written dooms nobody at access time; the
// conflict surfaces when the writer commits, dooming the reader (first
// committer wins, COH delivered at the victim's next delivery point).
func TestLazyDetectionFirstCommitterWins(t *testing.T) {
	m := newDesignMachine(2, DesignPoint("lazydet"))
	x := m.Mem().Alloc(2*WordsPerLine, WordsPerLine)
	xWarm := x + WordsPerLine
	m.Run(func(s *Strand) {
		if s.ID() == 0 {
			s.CAS(x, 0, 0)
			s.TxBegin()
			if !s.TxStore(x, 7) {
				t.Errorf("writer's store failed: %v", s.CPS())
				return
			}
			s.Advance(100)
			// Under eager detection the reader's overlapping load would have
			// doomed us (requester wins); lazy detection must let us commit.
			if !s.TxCommit() {
				t.Errorf("writer doomed before commit under lazy detection: %v", s.CPS())
			}
		} else {
			s.Load(xWarm)
			s.Advance(50)
			s.TxBegin()
			if _, ok := s.TxLoad(x); !ok {
				t.Errorf("reader's overlapping load aborted at access time: %v", s.CPS())
				return
			}
			s.Advance(5000) // writer commits in this window
			if s.TxCommit() {
				t.Error("reader survived the writer's commit drain")
				return
			}
			if got := s.CPS(); got != cps.COH {
				t.Errorf("reader CPS = %v, want COH", got)
			}
		}
	})
	if got := m.Mem().Peek(x); got != 7 {
		t.Errorf("x = %d after run, want the committer's 7", got)
	}
}

// ---- Eager version management ----

// TestEagerVMInPlaceCommitAndRollback: stores land in memory immediately,
// commit leaves them, and an abort restores the undo log in reverse.
func TestEagerVMInPlaceCommitAndRollback(t *testing.T) {
	m := newDesignMachine(1, DesignPoint("eagervm"))
	x := m.Mem().Alloc(WordsPerLine, WordsPerLine)
	m.Run(func(s *Strand) {
		s.CAS(x, 0, 0)

		s.TxBegin()
		if !s.TxStore(x, 41) || !s.TxStore(x, 42) {
			t.Fatalf("eager stores failed: %v", s.CPS())
		}
		if got := m.Mem().Peek(x); got != 42 {
			t.Fatalf("mid-transaction memory = %d, want in-place 42", got)
		}
		if w, ok := s.TxLoad(x); !ok || w != 42 {
			t.Fatalf("read-own-write = %d/%v, want 42 through memory", w, ok)
		}
		s.TxSaveRestore() // forced INST abort
		if got := s.CPS(); !got.Has(cps.INST) {
			t.Fatalf("CPS = %v, want INST", got)
		}
		if got := m.Mem().Peek(x); got != 0 {
			t.Fatalf("post-abort memory = %d, want undo-log restore to 0", got)
		}

		s.TxBegin()
		if !s.TxStore(x, 7) {
			t.Fatalf("store failed: %v", s.CPS())
		}
		if !s.TxCommit() {
			t.Fatalf("commit failed: %v", s.CPS())
		}
	})
	if got := m.Mem().Peek(x); got != 7 {
		t.Errorf("committed value = %d, want 7", got)
	}
}

// TestEagerVMRemoteConflictRollsBackBeforeRead: a conflicting reader must
// never observe an eager writer's speculative in-place value — the
// victim's undo log unrolls synchronously when it is doomed.
func TestEagerVMRemoteConflictRollsBackBeforeRead(t *testing.T) {
	m := newDesignMachine(2, DesignPoint("eagervm"))
	x := m.Mem().Alloc(2*WordsPerLine, WordsPerLine)
	m.Run(func(s *Strand) {
		if s.ID() == 0 {
			s.CAS(x, 0, 0)
			s.TxBegin()
			if !s.TxStore(x, 99) {
				t.Errorf("eager store failed: %v", s.CPS())
				return
			}
			s.Advance(20000)
			if s.TxCommit() {
				t.Error("writer survived a conflicting non-transactional load")
				return
			}
			if got := s.CPS(); got != cps.COH {
				t.Errorf("writer CPS = %v, want COH", got)
			}
		} else {
			s.Advance(2000)
			if got := s.Load(x); got != 0 {
				t.Errorf("reader observed speculative value %d, want rolled-back 0", got)
			}
		}
	})
	if got := m.Mem().Peek(x); got != 0 {
		t.Errorf("x = %d after run, want 0", got)
	}
}

// TestEagerVMNoStoreQueueBound: eager version management has no store
// queue, so the 33-distinct-lines overflow that aborts Rock with ST|SIZ
// commits fine.
func TestEagerVMNoStoreQueueBound(t *testing.T) {
	m := newDesignMachine(1, DesignPoint("eagervm"))
	a := m.Mem().Alloc(64*WordsPerLine, WordsPerLine)
	m.Run(func(s *Strand) {
		for p := PageOf(a); p <= PageOf(a+64*WordsPerLine-1); p++ {
			s.CAS(Addr(p)<<PageShift, 0, 0)
		}
		s.TxBegin()
		for i := 0; i < 40; i++ {
			if !s.TxStore(a+Addr(i*WordsPerLine), Word(i)) {
				t.Fatalf("store %d aborted under eager VM: %v", i, s.CPS())
			}
		}
		if !s.TxCommit() {
			t.Fatalf("40-store eager transaction failed: %v", s.CPS())
		}
	})
	if got := m.Mem().Peek(a + 39*WordsPerLine); got != 39 {
		t.Errorf("line 39 = %d, want 39", got)
	}
}

// ---- Sticky overflow sets ----

// stickySetLines returns n line-aligned addresses that all map to the same
// L1 set (line numbers congruent mod L1Sets; with 128 sets and 8-word
// lines the same-set stride is exactly one 1024-word page per line).
func stickySetLines(m *Machine, n int) []Addr {
	stride := Addr(m.Config().L1Sets * WordsPerLine)
	base := m.Mem().Alloc(int(stride)*n, WordsPerLine)
	// Round up to the next same-set boundary so every address is stride-aligned.
	first := (base + stride - 1) &^ (stride - 1)
	if first+Addr(n-1)*stride >= base+Addr(int(stride)*n) {
		base = m.Mem().Alloc(int(stride)*(n+1), WordsPerLine)
		first = (base + stride - 1) &^ (stride - 1)
	}
	out := make([]Addr, n)
	for i := range out {
		out[i] = first + Addr(i)*stride
	}
	return out
}

// TestStickySetAbsorbsEvictionsUpToBound: with StickyLines=2, loading 6
// lines into one 4-way set (two marked displacements) commits; a 7th line
// (a third displacement, one past the bound) aborts with LD|SIZ. The same
// 6-line pattern under the default zero-tolerance design aborts with LD
// at the first displacement.
func TestStickySetAbsorbsEvictionsUpToBound(t *testing.T) {
	m := newDesignMachine(1, HTMDesign{StickyLines: 2})
	addrs := stickySetLines(m, 7)
	m.Run(func(s *Strand) {
		for _, a := range addrs {
			s.Load(a) // warm pages (walkable) and TLBs
		}
		// Exactly at the bound: 4 ways + 2 spills.
		s.TxBegin()
		for i, a := range addrs[:6] {
			if _, ok := s.TxLoad(a); !ok {
				t.Fatalf("load %d aborted within sticky bound: %v", i, s.CPS())
			}
		}
		if !s.TxCommit() {
			t.Fatalf("6-line same-set read set failed to commit with 2 sticky lines: %v", s.CPS())
		}
		// One past the bound: the 7th line needs a third spill.
		s.TxBegin()
		for i, a := range addrs {
			if _, ok := s.TxLoad(a); !ok {
				if i != 6 {
					t.Fatalf("aborted at load %d, want the 7th line", i)
				}
				if got := s.CPS(); got != cps.LD|cps.SIZ {
					t.Fatalf("sticky overflow CPS = %v, want LD|SIZ", got)
				}
				return
			}
		}
		t.Fatal("7 same-set lines did not overflow a 2-line sticky set")
	})
}

func TestDefaultDesignAbortsOnFirstMarkedEviction(t *testing.T) {
	m := newDesignMachine(1, HTMDesign{})
	addrs := stickySetLines(m, 5)
	m.Run(func(s *Strand) {
		for _, a := range addrs {
			s.Load(a)
		}
		s.TxBegin()
		for i, a := range addrs {
			if _, ok := s.TxLoad(a); !ok {
				if i != 4 {
					t.Fatalf("aborted at load %d, want the 5th line", i)
				}
				if got := s.CPS(); got != cps.LD {
					t.Fatalf("eviction CPS = %v, want LD", got)
				}
				return
			}
		}
		t.Fatal("5 same-set lines did not abort the zero-tolerance design")
	})
}

// TestStickyLineStillConflicts: a line that spilled into the sticky set
// has no L1 copy but keeps its directory marks, so a remote store to it
// must still doom the holder with COH — eviction tolerance must not
// weaken conflict detection.
func TestStickyLineStillConflicts(t *testing.T) {
	m := newDesignMachine(2, HTMDesign{StickyLines: 2})
	addrs := stickySetLines(m, 5)
	m.Run(func(s *Strand) {
		if s.ID() == 0 {
			for _, a := range addrs {
				s.Load(a)
			}
			s.TxBegin()
			for i, a := range addrs {
				if _, ok := s.TxLoad(a); !ok {
					t.Errorf("load %d aborted: %v", i, s.CPS())
					return
				}
			}
			// One of the five marked lines is now sticky (no L1 copy).
			s.Advance(60000) // strand 1's stores land in this window
			if s.TxCommit() {
				t.Error("holder survived remote stores to its read set")
				return
			}
			if got := s.CPS(); got != cps.COH {
				t.Errorf("holder CPS = %v, want COH (not an eviction reason)", got)
			}
		} else {
			s.Advance(30000)
			for _, a := range addrs {
				s.Store(a, 1) // hits marked and sticky lines alike
			}
		}
	})
}

// TestEvictMarkedFaultRespectsDesign: the EvictMarkedProb fault displaces
// marked lines through the same spillMarked decision as organic
// evictions — dooming the default design with LD and a sticky design,
// once past its bound, with LD|SIZ.
func TestEvictMarkedFaultRespectsDesign(t *testing.T) {
	run := func(d HTMDesign, want cps.Bits) {
		t.Helper()
		cfg := DefaultConfig(1)
		cfg.MemWords = 1 << 18
		cfg.MaxCycles = 1 << 40
		cfg.CTIAbortProb = 0
		cfg.UCTIAbortProb = 0
		cfg.StoreAfterMissProb = 0
		cfg.HTM = d
		cfg.Faults = FaultPlan{EvictMarkedProb: 1}
		m := New(cfg)
		a := m.Mem().Alloc(32*WordsPerLine, WordsPerLine)
		m.Run(func(s *Strand) {
			s.Load(a)
			s.TxBegin()
			for i := 0; i < 20; i++ {
				if _, ok := s.TxLoad(a + Addr(i*WordsPerLine)); !ok {
					if got := s.CPS(); got != want {
						t.Errorf("design %+v: fault-evicted CPS = %v, want %v", d, got, want)
					}
					return
				}
			}
			t.Errorf("design %+v: certain marked-line eviction never aborted", d)
		})
	}
	run(HTMDesign{}, cps.LD)
	run(HTMDesign{StickyLines: 1}, cps.LD|cps.SIZ)
}
