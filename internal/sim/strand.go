package sim

import (
	"fmt"
	"math/bits"

	"rocktm/internal/obs"
)

// Stats accumulates per-strand event counts for a run.
type Stats struct {
	Loads       uint64
	Stores      uint64
	CASes       uint64
	L1Misses    uint64
	L2Misses    uint64
	Mispredicts uint64
	TLBWalks    uint64
	PageFaults  uint64
	TxBegins    uint64
	TxCommits   uint64
	TxAborts    uint64
}

// Sample returns the counters as a metrics-registry sample — the thin
// compatibility accessor through which strand statistics publish into the
// unified obs.Registry.
func (st Stats) Sample() obs.Sample {
	return obs.Sample{Counters: []obs.NamedValue{
		{Name: "loads", Value: st.Loads},
		{Name: "stores", Value: st.Stores},
		{Name: "cases", Value: st.CASes},
		{Name: "l1_misses", Value: st.L1Misses},
		{Name: "l2_misses", Value: st.L2Misses},
		{Name: "mispredicts", Value: st.Mispredicts},
		{Name: "tlb_walks", Value: st.TLBWalks},
		{Name: "page_faults", Value: st.PageFaults},
		{Name: "tx_begins", Value: st.TxBegins},
		{Name: "tx_commits", Value: st.TxCommits},
		{Name: "tx_aborts", Value: st.TxAborts},
	}}
}

// Strand is one simulated hardware strand. All of its methods must be
// called from the goroutine that Machine.Run started for it; the baton
// discipline then guarantees mutual exclusion over all shared simulator
// state without locks.
type Strand struct {
	m   *Machine
	id  int
	bit uint64

	clock  int64
	parked bool

	// Coroutine plumbing, owned by Machine.Run: yield suspends this
	// strand's body and returns control to the driver loop; resume
	// re-enters the body; cancel retires the coroutine once the body has
	// returned.
	yield  func(struct{}) bool
	resume func() (struct{}, bool)
	cancel func()

	// yieldLimit is the cached scheduling deadline, maintained by
	// Machine.grant whenever this strand receives the baton: once clock
	// exceeds it, the strand has run a full quantum ahead of the laggard
	// and must hand the baton over. While the strand runs nothing else can
	// touch the parked heap, so the hot-path check is one compare.
	yieldLimit int64
	// limit folds every per-advance deadline — yieldLimit, the next
	// interrupt delivery, and the MaxCycles guard — into one value, so the
	// inlined advance fast path is a single compare. advanceSlow sorts out
	// which deadline actually fired and recomputes the fold.
	limit int64

	// Continuation-driver state (Machine.RunStepped). stepped marks the
	// strand as driven by a step body: crossing yieldLimit records a
	// pending yield and returns to the caller instead of switching stacks.
	// When a yield fires mid-operation, yieldPending tells the operation to
	// bail out before any side effect, and chargeDebt remembers the advance
	// charge the driver must undo before re-invoking the step body — the
	// re-invoked operation re-charges it, so parking keys and resumed
	// clocks are bit-identical to the coroutine driver's.
	stepped      bool
	yieldPending bool
	chargeDebt   int64
	stepFn       StepFn

	rng rng
	l1  *l1Cache
	mmu mmu
	bp  *branchPredictor

	// flt, when non-nil, injects deterministic faults into transactional
	// accesses (see FaultPlan). It is nil unless the machine config enables
	// a probabilistic fault, so fault-free runs pay one nil check per
	// transactional access and draw no extra randomness.
	flt *faultInjector

	nextInterrupt int64

	// Non-transactional same-line fast path: the line validated by the
	// previous non-transactional access, its L1 slot, and the page
	// generation observed then. When the next access targets the same line
	// and the slot tag and generation still match, translation (the page is
	// provably at the micro-DTLB head, where a hit mutates nothing) and the
	// L1 tag scan are skipped; the fast path replicates exactly the state
	// the slow path would produce (LRU tick, age stamp, latency). Any
	// transactional execution invalidates the cache (TxBegin), because
	// transactional translations move the micro-DTLB head.
	ntLine int32
	ntIdx  int32
	ntGen  uint32

	tx txnState

	stats Stats

	// trc, when non-nil, receives cycle-timestamped trace events. The only
	// cost with tracing disabled is one nil-check at each hook point;
	// recording itself charges no cycles, consumes no simulated randomness
	// and allocates nothing, so traced runs are cycle-identical to untraced
	// ones.
	trc *obs.Tracer

	// win, when non-nil, receives the same hook-point stream as trc but as
	// a streaming fold (the windowed timeseries recorder). Same contract,
	// same nil-check-only cost when detached; both may be attached at once.
	win obs.EventSink
}

func newStrand(m *Machine, id int) *Strand {
	s := &Strand{
		m:      m,
		id:     id,
		bit:    1 << uint(id),
		rng:    newRNG(m.cfg.Seed*0x9e3779b9 + uint64(id)*0x85ebca77 + 1),
		l1:     newL1(m.cfg.L1Sets, m.cfg.L1Ways),
		bp:     newBranchPredictor(),
		ntLine: -1,
	}
	s.mmu.init(m.cfg.MicroDTLB, m.cfg.MainDTLB, m.cfg.ITLB)
	s.mmu.reserve(m.mem.PageCount())
	s.flt = newFaultInjector(&m.cfg, id)
	s.tx.fwd = newU32Map()
	s.tx.lineSet = newU32Map()
	if m.cfg.InterruptEvery > 0 {
		s.nextInterrupt = m.cfg.InterruptEvery
	}
	return s
}

// ID returns the strand number, in [0, Strands).
func (s *Strand) ID() int { return s.id }

// Clock returns the strand's virtual time in cycles.
func (s *Strand) Clock() int64 { return s.clock }

// Machine returns the owning machine.
func (s *Strand) Machine() *Machine { return s.m }

// Mem returns the shared simulated memory.
func (s *Strand) Mem() *Memory { return s.m.mem }

// Stats returns a copy of the strand's event counters.
func (s *Strand) Stats() Stats { return s.stats }

// TraceEvent records a software-level trace event (lock acquire/release,
// TM phase transitions, software fallbacks) into the machine's tracer, if
// one is attached. It charges no cycles and perturbs no simulator state, so
// instrumented and uninstrumented code run cycle-identically.
func (s *Strand) TraceEvent(kind obs.EventKind, arg uint64) {
	if s.trc != nil {
		s.trc.Record(s.id, s.clock, kind, arg)
	}
	if s.win != nil {
		s.win.SinkEvent(s.id, s.clock, kind, arg)
	}
}

// Rand returns 64 deterministic pseudo-random bits.
func (s *Strand) Rand() uint64 { return s.rng.Next() }

// RandIntn returns a deterministic uniform value in [0, n).
func (s *Strand) RandIntn(n int) int { return s.rng.Intn(n) }

// Advance charges n cycles of pure compute (no memory traffic).
func (s *Strand) Advance(n int64) { s.advance(n) }

// YieldPending reports whether the last simulated operation was interrupted
// by a pending yield under the continuation driver (Machine.RunStepped).
// When true, the operation performed no side effect beyond its (soon to be
// undone) cycle charge and its zero-value results are meaningless; the step
// body must return control to the driver and re-invoke the same operation
// when resumed. Always false under the coroutine driver.
func (s *Strand) YieldPending() bool { return s.yieldPending }

// advance is the per-event hot path: it is small enough to inline into
// every memory-operation method, so the common case costs one add and one
// compare. The checks the old per-advance code did unconditionally
// (MaxCycles guard, interrupt delivery, yield) all trigger only once clock
// passes a known deadline, so they fold into the single cached limit.
func (s *Strand) advance(n int64) {
	s.clock += n
	if s.clock > s.limit {
		s.advanceSlow(n)
	}
}

// advanceSlow handles a crossed deadline, in the same order the checks ran
// when they were unconditional: MaxCycles guard, interrupt delivery, yield.
// n is the charge the enclosing advance just applied; under the
// continuation driver a yield records it as chargeDebt so the driver can
// undo it before re-invoking the interrupted operation.
func (s *Strand) advanceSlow(n int64) {
	if s.yieldPending {
		// Tripwire for a step-body discipline bug: a simulated operation ran
		// after an earlier operation already recorded a pending yield.
		panic(fmt.Sprintf("sim: strand %d performed a simulated operation past a pending yield", s.id))
	}
	if max := s.m.cfg.MaxCycles; max > 0 && s.clock > max {
		panic(fmt.Sprintf("sim: strand %d exceeded MaxCycles=%d (virtual livelock?)", s.id, max))
	}
	if s.nextInterrupt > 0 && s.clock >= s.nextInterrupt {
		s.nextInterrupt = s.clock + s.m.cfg.InterruptEvery
		if s.tx.active {
			s.tx.doomed |= asyncBit
		}
	}
	if s.clock > s.yieldLimit {
		if s.stepped {
			// Continuation driver: record the yield and the charge to undo;
			// the interrupted operation bails out before any side effect and
			// control returns to RunStepped's loop through ordinary returns.
			s.yieldPending = true
			s.chargeDebt = n
			return
		}
		// The driver's grant() recomputes the folded limit (after any
		// nextInterrupt update above) when it resumes us, so there is
		// nothing left to refresh here.
		s.yieldBaton()
		return
	}
	s.recomputeLimit()
}

// recomputeLimit refreshes the folded advance deadline after any of its
// inputs (yieldLimit, nextInterrupt) changed.
func (s *Strand) recomputeLimit() {
	lim := s.yieldLimit
	if s.nextInterrupt > 0 && s.nextInterrupt-1 < lim {
		lim = s.nextInterrupt - 1
	}
	if max := s.m.cfg.MaxCycles; max > 0 && max < lim {
		lim = max
	}
	s.limit = lim
}

// yieldBaton hands the baton back to Machine.Run's driver loop once we
// have run a full quantum ahead of the laggard; the driver parks this
// strand and resumes the laggard. The call returns when the driver next
// resumes us.
func (s *Strand) yieldBaton() {
	s.yield(struct{}{})
}

// ---- Translation ----

// translateLoad services address translation for a load outside a
// transaction (page faults are taken and serviced by the simulated OS).
func (s *Strand) translateLoad(a Addr) {
	p := PageOf(a)
	pg := &s.m.mem.pages[p]
	// A micro-DTLB hit resolves everything; a main-DTLB hit refills the
	// micro level; otherwise walk (or fault) and fill both. The old code
	// re-probed the micro TLB after a hit at either level; a lookup that
	// just hit mutates nothing on re-probe and a lookup that just missed
	// still misses, so skipping the re-probe is state-identical.
	if s.mmu.micro.lookup(p, pg.gen) {
		return
	}
	if s.mmu.main.lookup(p, pg.gen) {
		s.mmu.micro.fill(p, pg.gen)
		return
	}
	if !pg.walkable {
		s.pageFault(p, false)
	} else {
		s.clock += s.m.cfg.Costs.TLBWalk
		s.stats.TLBWalks++
	}
	s.mmu.main.fill(p, pg.gen)
	s.mmu.micro.fill(p, pg.gen)
}

// translateStore services translation for a store outside a transaction,
// including the write fault that first establishes write permission.
func (s *Strand) translateStore(a Addr) {
	p := PageOf(a)
	pg := &s.m.mem.pages[p]
	if !s.mmu.micro.lookup(p, pg.gen) {
		if !s.mmu.main.lookup(p, pg.gen) {
			if !pg.walkable {
				s.pageFault(p, true)
			} else {
				s.clock += s.m.cfg.Costs.TLBWalk
				s.stats.TLBWalks++
			}
			s.mmu.main.fill(p, pg.gen)
		}
		s.mmu.micro.fill(p, pg.gen)
	}
	if !pg.writable {
		s.pageFault(p, true)
	}
}

// pageFault has the simulated OS service a fault on page p.
func (s *Strand) pageFault(p int32, write bool) {
	pg := &s.m.mem.pages[p]
	if !pg.mapped {
		panic(fmt.Sprintf("sim: strand %d faulted on unallocated page %d", s.id, p))
	}
	s.clock += s.m.cfg.Costs.PageFault
	s.stats.PageFaults++
	pg.walkable = true
	if write {
		pg.writable = true
	}
}

// ---- Cache ----

// fill brings line into the strand's L1 (and the shared L2), charging the
// appropriate latency and maintaining the coherence directory. It reports
// whether the access hit in L1, whether a transactionally marked line was
// displaced to make room, and the slot now holding line — after fill the
// line is always resident (an L2 back-invalidation triggered by the fill
// can only target a different line), so callers need no re-lookup.
func (s *Strand) fill(line int32) (l1Hit bool, evictedMarked bool, idx int) {
	// L1-hit fast path: touch inlines here, so the common case is a masked
	// index, a short tag scan, and one latency charge.
	if i := s.l1.touch(line); i >= 0 {
		s.clock += s.m.cfg.Costs.L1Hit
		return true, false, i
	}
	return s.fillMiss(line)
}

// fillMiss services the L1 miss half of fill (the touch above already
// advanced the L1 LRU tick): pick a victim, consult the shared L2, and
// maintain the coherence directory.
func (s *Strand) fillMiss(line int32) (l1Hit bool, evictedMarked bool, idx int) {
	c := &s.m.cfg.Costs
	evicted, evMark, idx := s.l1.fillVictim(line)
	s.stats.L1Misses++
	if evicted != -1 {
		lm := &s.m.mem.lines[evicted]
		lm.present &^= s.bit
		if evMark {
			// A transactionally marked line was displaced. A sticky design
			// with budget left absorbs it — the directory marks survive in
			// the overflow set and the caller sees no eviction; otherwise
			// (always, under the default) the marks are dropped and the
			// caller aborts.
			evMark = !s.spillMarked(lm)
		} else {
			lm.marked &^= s.bit
			lm.written &^= s.bit
		}
	}
	l2hit, l2evicted := s.m.l2.access(line)
	if l2hit {
		s.clock += c.L2Hit
	} else {
		s.clock += c.MemAccess
		s.stats.L2Misses++
	}
	if l2evicted != -1 && l2evicted != line {
		s.backInvalidate(l2evicted)
	}
	s.m.mem.lines[line].present |= s.bit
	return false, evMark, idx
}

// backInvalidate removes a line evicted from the inclusive L2 from every
// L1; transactions holding it marked abort with COH (Section 3's
// single-threaded "coherence" surprises).
func (s *Strand) backInvalidate(line int32) {
	lm := &s.m.mem.lines[line]
	// Folding marked into the scan mask is a no-op under the default design
	// (a marked line is always present — it cannot leave an L1 without
	// aborting its holder) but reaches sticky-set holders, whose marks
	// outlive their L1 copy; an L2 back-invalidation aborts them too, since
	// only L1 displacement is tolerated.
	if lm.present|lm.marked == 0 {
		return
	}
	// Iterate only the set bits (ascending strand ID, same order as the
	// old full scan) instead of all strands.
	for rest := lm.present | lm.marked; rest != 0; rest &= rest - 1 {
		t := s.m.strands[bits.TrailingZeros64(rest)]
		_, wasMarked := t.l1.invalidate(line)
		if wasMarked || lm.marked&t.bit != 0 {
			s.m.doomRemote(t, cohBit)
		}
	}
	lm.present = 0
	lm.marked = 0
	lm.written = 0
}

// storeInvalidate implements the exclusive-ownership request of a store:
// every other strand's copy of the line is invalidated, and — requester
// wins — every transaction holding it marked is doomed with COH. The
// caller passes the line's directory entry, which it invariably has in
// hand already, so the common no-sharers case is one mask test.
func (s *Strand) storeInvalidate(line int32, lm *lineMeta) {
	others := (lm.present | lm.marked) &^ s.bit
	if others == 0 {
		return
	}
	for rest := others; rest != 0; rest &= rest - 1 {
		t := s.m.strands[bits.TrailingZeros64(rest)]
		t.l1.invalidate(line)
		if lm.marked&t.bit != 0 {
			// doomRemote is exactly doom under the default design; under
			// eager version management it also unrolls the victim's undo
			// log before this access can observe memory.
			s.m.doomRemote(t, cohBit)
		}
	}
	lm.present &= s.bit
	lm.marked &= s.bit
	lm.written &= s.bit
}

// loadConflict dooms transactions holding line in their *write* set: their
// buffered store cannot coexist with our read (requester wins). The doom
// broadcast is a single mask operation into the machine-wide cohDoom word:
// masking with activeMask is exactly doom()'s tx.active test, and delivery
// still happens at the victims' next checkDoom point, which folds the bit
// into the CPS reasons just as per-strand dooming did.
func (s *Strand) loadConflict(lm *lineMeta) {
	if s.m.vmEager {
		// Eager version management cannot defer delivery behind a mask op:
		// the writers' in-place speculative values must be rolled back
		// before this load reads memory, so doom each victim directly.
		for rest := lm.written & s.m.activeMask &^ s.bit; rest != 0; rest &= rest - 1 {
			s.m.doomRemote(s.m.strands[bits.TrailingZeros64(rest)], cohBit)
		}
		return
	}
	s.m.cohDoom |= lm.written & s.m.activeMask &^ s.bit
}

// doom marks the strand's in-flight transaction (if any) as failed for the
// given CPS reason; the failure is delivered at its next transactional
// instruction or at commit.
func (s *Strand) doom(reason uint32) {
	if s.tx.active {
		s.tx.doomed |= reason
	}
}

// assertNoTxn guards against a modelling bug: ordinary (non-transactional)
// memory operations inside a hardware transaction would bypass the store
// queue and survive an abort.
func (s *Strand) assertNoTxn(op string) {
	if s.tx.active {
		panic("sim: " + op + " while a hardware transaction is active")
	}
}

// ---- Non-transactional memory operations ----

// ntHit reports whether a non-transactional access to line can take the
// same-line fast path: the previous non-transactional access touched this
// exact line (so its page is at the micro-DTLB head, where a lookup hit
// mutates nothing), the L1 slot still holds it (any cross-strand
// invalidation or back-invalidation clears the tag), and the page
// generation is unchanged (a Remap would make the head entry stale). When
// it fires, the caller replicates the slow path's only state changes: the
// L1 LRU tick, the age stamp, and the hit latency.
func (s *Strand) ntHit(line int32, p int32) bool {
	return line == s.ntLine && s.l1.slots[s.ntIdx].tag == line &&
		s.m.mem.pages[p].gen == s.ntGen
}

// ntTouch applies the fast path's L1 state changes (what l1.touch does on
// a hit) and charges the hit latency.
func (s *Strand) ntTouch() {
	c := s.l1
	c.tick++
	c.slots[s.ntIdx].age = c.tick
	s.clock += s.m.cfg.Costs.L1Hit
}

// Load performs an ordinary (non-transactional) load.
func (s *Strand) Load(a Addr) Word {
	s.assertNoTxn("Load")
	s.advance(s.m.cfg.Costs.Op)
	if s.yieldPending {
		return 0
	}
	s.stats.Loads++
	line := LineOf(a)
	p := PageOf(a)
	if s.ntHit(line, p) {
		s.ntTouch()
		// An intact tag means no store invalidated this line since the
		// access that installed it, so every writer bit in the directory
		// entry predates that access and was doomed by it already; the
		// loadConflict broadcast below is idempotent on them.
		s.loadConflict(&s.m.mem.lines[line])
		return s.m.mem.words[a]
	}
	s.translateLoad(a)
	_, _, idx := s.fill(line)
	s.loadConflict(&s.m.mem.lines[line])
	s.ntLine, s.ntIdx, s.ntGen = line, int32(idx), s.m.mem.pages[p].gen
	return s.m.mem.words[a]
}

// Store performs an ordinary (non-transactional) store. It invalidates all
// other cached copies and dooms any transaction that had the line marked.
func (s *Strand) Store(a Addr, w Word) {
	s.assertNoTxn("Store")
	s.advance(s.m.cfg.Costs.Op)
	if s.yieldPending {
		return
	}
	s.stats.Stores++
	line := LineOf(a)
	p := PageOf(a)
	// The store fast path additionally requires write permission — without
	// it the slow path's translateStore takes a write fault first.
	if s.ntHit(line, p) && s.m.mem.pages[p].writable {
		s.ntTouch()
		s.storeInvalidate(line, &s.m.mem.lines[line])
		s.m.mem.words[a] = w
		return
	}
	s.translateStore(a)
	_, _, idx := s.fill(line)
	s.storeInvalidate(line, &s.m.mem.lines[line])
	s.ntLine, s.ntIdx, s.ntGen = line, int32(idx), s.m.mem.pages[p].gen
	s.m.mem.words[a] = w
}

// CAS performs an atomic compare-and-swap, returning the previous value and
// whether the swap happened. A CAS requests exclusive ownership whether or
// not it succeeds, so it dooms conflicting transactions either way — which
// is also why a "dummy CAS" (old == new == current value) is the idiom for
// warming the TLB and write permission without changing data (Section 3).
func (s *Strand) CAS(a Addr, old, new Word) (Word, bool) {
	s.assertNoTxn("CAS")
	s.advance(s.m.cfg.Costs.Op + s.m.cfg.Costs.CASExtra)
	if s.yieldPending {
		return 0, false
	}
	s.stats.CASes++
	line := LineOf(a)
	p := PageOf(a)
	if s.ntHit(line, p) && s.m.mem.pages[p].writable {
		s.ntTouch()
		s.storeInvalidate(line, &s.m.mem.lines[line])
	} else {
		s.translateStore(a)
		_, _, idx := s.fill(line)
		s.storeInvalidate(line, &s.m.mem.lines[line])
		s.ntLine, s.ntIdx, s.ntGen = line, int32(idx), s.m.mem.pages[p].gen
	}
	cur := s.m.mem.words[a]
	if cur != old {
		return cur, false
	}
	s.m.mem.words[a] = new
	return cur, true
}

// Add atomically adds delta to the word at a and returns the new value
// (a CAS loop in real code; modelled as one CAS-priced operation).
func (s *Strand) Add(a Addr, delta Word) Word {
	s.assertNoTxn("Add")
	s.advance(s.m.cfg.Costs.Op + s.m.cfg.Costs.CASExtra)
	if s.yieldPending {
		return 0
	}
	s.stats.CASes++
	line := LineOf(a)
	p := PageOf(a)
	if s.ntHit(line, p) && s.m.mem.pages[p].writable {
		s.ntTouch()
		s.storeInvalidate(line, &s.m.mem.lines[line])
	} else {
		s.translateStore(a)
		_, _, idx := s.fill(line)
		s.storeInvalidate(line, &s.m.mem.lines[line])
		s.ntLine, s.ntIdx, s.ntGen = line, int32(idx), s.m.mem.pages[p].gen
	}
	s.m.mem.words[a] += delta
	return s.m.mem.words[a]
}

// Branch models a conditional branch at the (arbitrary but stable) program
// counter pc with the given outcome, charging the mispredict penalty when
// the predictor is wrong.
func (s *Strand) Branch(pc uint32, taken bool) {
	s.advance(s.m.cfg.Costs.Op)
	if s.yieldPending {
		return
	}
	if s.bp.predict(pc, taken) {
		s.stats.Mispredicts++
		s.clock += s.m.cfg.Costs.Mispredict
	}
}

// Exec models fetching code from the page containing codePage, filling the
// ITLB on a miss (outside transactions the walk just costs time).
func (s *Strand) Exec(codePage int32) {
	s.advance(s.m.cfg.Costs.Op)
	if s.yieldPending {
		return
	}
	pg := &s.m.mem.pages[codePage]
	if !s.mmu.itlb.lookup(codePage, pg.gen) {
		s.clock += s.m.cfg.Costs.TLBWalk
		s.stats.TLBWalks++
		s.mmu.itlb.fill(codePage, pg.gen)
	}
}

// FlushTLBs drops all of the strand's TLB state (simulating a context
// switch). The same-line caches are invalidated too: they encode "this
// page is at the micro-DTLB head", which a flush falsifies.
func (s *Strand) FlushTLBs() {
	s.mmu.micro.flush()
	s.mmu.main.flush()
	s.mmu.itlb.flush()
	s.ntLine = -1
	s.tx.lastLine = -1
}
