package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"testing"
)

// This file pins the simulator's virtual-time behaviour bit-for-bit.
//
// The hot-path work in PR 3 (O(1) TLB indexing, heap-based baton
// scheduling, mask-indexed caches, store-queue indexes) is constrained to
// be *behaviour-identical*: same virtual-time decisions, same RNG
// consumption, same figure bytes. These digests were recorded from the
// pre-optimization simulator (linear-scan TLBs, O(strands) scheduler
// scans, %-indexed caches) and must never change. If a future PR changes
// them on purpose (a modelling change, not an optimization), regenerate
// with:
//
//	SIM_GOLDEN_REGEN=1 go test ./internal/sim -run TestGoldenCycleIdentity
//
// and paste the printed table — after convincing yourself the behaviour
// change is intended.

// goldenCase is one machine configuration of the identity matrix.
type goldenCase struct {
	name      string
	strands   int
	mode      Mode
	interrupt int64
	maxClock  int64
	digest    string
}

// goldenMatrix spans the scheduler (1/4/16 strands), the store-queue
// geometry (SSE vs SE) and the asynchronous-interrupt machinery (on/off).
var goldenMatrix = []goldenCase{
	{name: "s1-sse", strands: 1, mode: SSE, interrupt: 0, maxClock: 167548, digest: "26be8038b5076a34a0134be68d1254fa"},
	{name: "s1-sse-intr", strands: 1, mode: SSE, interrupt: 2500, maxClock: 159811, digest: "848d5dd7008401fe9968a79106c8b4a4"},
	{name: "s1-se", strands: 1, mode: SE, interrupt: 0, maxClock: 166495, digest: "2edeb7f10ada8c2723a8989438ddc3ce"},
	{name: "s1-se-intr", strands: 1, mode: SE, interrupt: 2500, maxClock: 160524, digest: "b0ed8cfdeaf67eb2980b04de0ccefa21"},
	{name: "s4-sse", strands: 4, mode: SSE, interrupt: 0, maxClock: 155853, digest: "17f37179bc98cc879341c8f9894c4e25"},
	{name: "s4-sse-intr", strands: 4, mode: SSE, interrupt: 2500, maxClock: 145827, digest: "f3812d848bcb803c78946c773e19be52"},
	{name: "s4-se", strands: 4, mode: SE, interrupt: 0, maxClock: 154121, digest: "4f1eeafa7c1d2dafae7dbc4032a9d733"},
	{name: "s4-se-intr", strands: 4, mode: SE, interrupt: 2500, maxClock: 145456, digest: "3c2e6dba6aa82c9db298eff1bd44e8a2"},
	{name: "s16-sse", strands: 16, mode: SSE, interrupt: 0, maxClock: 152466, digest: "e13af8f5eee70885b754205053dcb407"},
	{name: "s16-sse-intr", strands: 16, mode: SSE, interrupt: 2500, maxClock: 142817, digest: "5418572a399fddaddd041d428081dfd3"},
	{name: "s16-se", strands: 16, mode: SE, interrupt: 0, maxClock: 152844, digest: "3028813dba357b4d7aea55104c32e827"},
	{name: "s16-se-intr", strands: 16, mode: SE, interrupt: 2500, maxClock: 142871, digest: "1459393c9989618b4eb8f8da77d61f78"},
}

const goldenArenaPages = 700 // > MainDTLB (512): forces main-DTLB capacity evictions

// goldenConfig builds the machine configuration for one matrix case.
func goldenConfig(c goldenCase) Config {
	cfg := DefaultConfig(c.strands)
	cfg.MemWords = 1 << 20 // 1024 pages: arena + shared + code fit
	cfg.Mode = c.mode
	cfg.InterruptEvery = c.interrupt
	cfg.MaxCycles = 1 << 40
	return cfg
}

// goldenRun executes the identity workload on a fresh machine and folds
// everything observable — per-strand clocks, all event counters, the
// post-run RNG position (pinning exactly how much randomness each strand
// consumed), and a stride over simulated memory — into one digest.
func goldenRun(c goldenCase) (maxClock int64, digest string) {
	cfg := goldenConfig(c)
	m := New(cfg)
	mem := m.Mem()
	arena := mem.Alloc(goldenArenaPages*PageWords, PageWords)
	shared := mem.AllocLines(64 * WordsPerLine)
	code := mem.Alloc(PageWords, PageWords)
	codePage := PageOf(code)

	m.Run(func(s *Strand) {
		goldenBody(s, mem, arena, shared, codePage)
	})

	return m.MaxClock(), goldenFold(m, cfg)
}

// goldenBody is the identity workload for one strand — every simulated
// operation, OS event and RNG-draw pattern the matrix pins.
// goldenStepBody (step_golden_test.go) is its continuation-machine
// transcription; the two must stay op-for-op identical.
func goldenBody(s *Strand, mem *Memory, arena, shared Addr, codePage int32) {
	id := s.ID()
	for i := 0; i < 300; i++ {
		switch i % 10 {
		case 0: // main-DTLB churn: strided loads over more pages than it holds
			for k := 0; k < 6; k++ {
				pg := (i*37 + k*113 + id*59) % goldenArenaPages
				s.Load(arena + Addr(pg*PageWords) + Addr((i*7+k)%PageWords))
			}
		case 1: // shared-line coherence traffic + predictor training
			a := shared + Addr(((i*5+id)%64)*WordsPerLine)
			s.Store(a, Word(i*3+id))
			s.CAS(a, 0, Word(i))
			s.Add(a, 1)
			s.Branch(uint32(1000+i%17), (i+id)%3 == 0)
		case 2: // read-write transaction with store-queue forwarding
			s.TxBegin()
			ok := true
			for k := 0; k < 5 && ok; k++ {
				a := shared + Addr(((i+k*3+id)%64)*WordsPerLine)
				var v Word
				if v, ok = s.TxLoad(a); !ok {
					break
				}
				if ok = s.TxStore(a, v+1); !ok {
					break
				}
				_, ok = s.TxLoad(a) // must forward from the store queue
			}
			if ok {
				s.TxCommit()
			}
		case 3: // wide write set: fits SSE banks, overflows SE banks
			s.TxBegin()
			ok := true
			for k := 0; k < 20 && ok; k++ {
				ok = s.TxStore(shared+Addr(k*WordsPerLine), Word(k))
			}
			if ok {
				s.TxCommit()
			}
		case 4: // long read set: deferred-queue pressure, UCTI branches
			s.TxBegin()
			ok := true
			for k := 0; k < 12 && ok; k++ {
				pg := (i*11 + k*211 + id*31) % goldenArenaPages
				_, ok = s.TxLoad(arena + Addr(pg*PageWords) + Addr(k%PageWords))
			}
			if ok {
				ok = s.TxBranch(uint32(2000+i%13), i%2 == 0, true)
			}
			if ok {
				s.TxCommit()
			}
		case 5: // unsupported-instruction aborts
			s.TxBegin()
			if s.TxTrap(i%29 == 0) {
				if s.TxExec(codePage) {
					switch i % 3 {
					case 0:
						s.TxSaveRestore()
					case 1:
						s.TxDiv()
					default:
						s.TxStackWrite()
						s.TxAbortTrap()
					}
				}
			}
		case 6: // OS events: remap, context-switch TLB flush, code fetch
			if id == 0 && i%60 == 6 {
				mem.Remap(arena, 40*PageWords)
			}
			if (i+id)%90 == 16 {
				s.FlushTLBs()
			}
			s.Exec(codePage)
			s.Load(arena + Addr((i%goldenArenaPages)*PageWords))
		case 7: // transactional touch of possibly-remapped pages (LD|PREC, ST)
			s.TxBegin()
			pg := (i*3 + id) % 40
			if _, ok := s.TxLoad(arena + Addr(pg*PageWords)); ok {
				if s.TxStore(arena+Addr(pg*PageWords), Word(i)) {
					s.TxCommit()
				}
			}
		case 8: // pure compute + data-dependent branches
			s.Advance(int64(10 + i%7))
			s.Branch(uint32(i%23), s.Rand()%4 != 0)
		default: // strand-RNG-driven mix
			if s.RandIntn(2) == 0 {
				s.Load(shared + Addr(s.RandIntn(64)*WordsPerLine))
			} else {
				s.Store(shared+Addr(s.RandIntn(64)*WordsPerLine), s.Rand())
			}
		}
	}
}

// goldenFold folds everything observable about a finished run — per-strand
// clocks, all event counters, the post-run RNG position (pinning exactly
// how much randomness each strand consumed), and a stride over simulated
// memory — into one digest.
func goldenFold(m *Machine, cfg Config) string {
	mem := m.Mem()
	h := sha256.New()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	w64(uint64(m.MaxClock()))
	for i := 0; i < cfg.Strands; i++ {
		s := m.Strand(i)
		w64(uint64(s.Clock()))
		st := s.Stats()
		for _, v := range []uint64{
			st.Loads, st.Stores, st.CASes, st.L1Misses, st.L2Misses,
			st.Mispredicts, st.TLBWalks, st.PageFaults,
			st.TxBegins, st.TxCommits, st.TxAborts,
		} {
			w64(v)
		}
		w64(s.Rand()) // post-run RNG position: pins randomness consumption exactly
	}
	for a := Addr(0); int(a) < mem.Size(); a += 97 {
		w64(mem.Peek(a))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// TestGoldenCycleIdentity locks the simulator to its pre-optimization
// virtual-time behaviour across the full matrix. Any optimization that
// changes a single cycle, RNG draw, eviction choice or scheduling
// decision fails here.
func TestGoldenCycleIdentity(t *testing.T) {
	regen := os.Getenv("SIM_GOLDEN_REGEN") != ""
	for _, c := range goldenMatrix {
		maxClock, digest := goldenRun(c)
		if regen {
			fmt.Printf("\t{name: %q, strands: %d, mode: %v, interrupt: %d, maxClock: %d, digest: %q},\n",
				c.name, c.strands, c.mode, c.interrupt, maxClock, digest)
			continue
		}
		if maxClock != c.maxClock || digest != c.digest {
			t.Errorf("%s: got (maxClock=%d, digest=%s), pinned (maxClock=%d, digest=%s)",
				c.name, maxClock, digest, c.maxClock, c.digest)
		}
	}
	if regen {
		t.Fatal("SIM_GOLDEN_REGEN set: digests printed above; paste into goldenMatrix and unset")
	}
}

// TestGoldenRunIsSelfDeterministic guards the golden workload itself: two
// fresh machines with the same configuration must produce identical
// digests, otherwise the matrix above would be meaningless.
func TestGoldenRunIsSelfDeterministic(t *testing.T) {
	c := goldenCase{name: "det", strands: 4, mode: SSE, interrupt: 2500}
	mc1, d1 := goldenRun(c)
	mc2, d2 := goldenRun(c)
	if mc1 != mc2 || d1 != d2 {
		t.Fatalf("same config diverged: (%d,%s) vs (%d,%s)", mc1, d1, mc2, d2)
	}
}
