package sim

// rng is a splitmix64 pseudo-random generator. Every strand owns one, seeded
// deterministically from the machine seed and the strand ID, so entire
// multi-threaded experiment runs are reproducible bit-for-bit — which is what
// lets us replay "the same" operation sequence under different TM systems,
// as the paper does for its Section 6.1 failure analysis.
type rng struct {
	state uint64
}

func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return rng{state: seed}
}

// Next returns the next 64 random bits.
func (r *rng) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *rng) Intn(n int) int {
	return int(r.Next() % uint64(n))
}

// Chance reports true with probability p (0 disables, >=1 always fires).
func (r *rng) Chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	const scale = 1 << 53
	return float64(r.Next()>>11) < p*scale
}
