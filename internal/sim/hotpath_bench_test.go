package sim

import (
	"fmt"
	"testing"
)

// Micro-benchmarks for every simulator hot path touched by PR 3. The
// scaling benchmarks (TLB entries 64→512, strands 2→16) are the proof
// that the indexed structures are O(1)/O(log n): ns/op must stay flat
// where the linear-scan implementation grew linearly.
//
// CI runs the whole file once per change (-benchtime=1x smoke) so the
// suite cannot bit-rot; scripts/bench.sh runs it for real and records
// the numbers in BENCH_PR3.json.

// ---- TLB ----

// BenchmarkTLBLookupHit measures a hit probing round-robin over every
// resident page: the linear-scan TLB pays O(entries/2) per probe, an
// indexed TLB pays O(1).
func BenchmarkTLBLookupHit(b *testing.B) {
	for _, entries := range []int{64, 128, 256, 512} {
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			tb := newTLB(entries)
			for p := 0; p < entries; p++ {
				tb.fill(int32(p), 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !tb.lookup(int32(i%entries), 0) {
					b.Fatal("resident page missed")
				}
			}
		})
	}
}

// BenchmarkTLBFillChurn measures steady-state capacity misses: every
// probe misses and every fill must choose the exact-LRU victim.
func BenchmarkTLBFillChurn(b *testing.B) {
	for _, entries := range []int{64, 128, 256, 512} {
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			tb := newTLB(entries)
			span := int32(2 * entries) // twice capacity: all misses
			for p := int32(0); p < span; p++ {
				tb.fill(p, 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := int32(i) % span
				if !tb.lookup(p, 0) {
					tb.fill(p, 0)
				}
			}
		})
	}
}

// ---- Scheduler ----

// BenchmarkSchedulerHandoff measures one baton handoff (park + pick next
// + wake) with every advance overrunning the quantum, as strand counts
// scale. The linear scheduler pays two O(strands) scans per handoff.
func BenchmarkSchedulerHandoff(b *testing.B) {
	for _, strands := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("strands=%d", strands), func(b *testing.B) {
			cfg := DefaultConfig(strands)
			cfg.MemWords = 1 << 16
			m := New(cfg)
			per := b.N/strands + 1
			step := cfg.Quantum + 1 // every advance crosses the yield threshold
			b.ReportAllocs()
			b.ResetTimer()
			m.Run(func(s *Strand) {
				for i := 0; i < per; i++ {
					s.Advance(step)
				}
			})
		})
	}
}

// BenchmarkSchedulerHandoffStepped is the continuation-driver variant of
// BenchmarkSchedulerHandoff: quantum-saturating advances driven by
// Machine.RunStepped, where a handoff is a step-function return plus a
// heap pick instead of a goroutine park + wake. Each advance charges
// exactly one quantum (an op overrunning by more than a full quantum can
// never fit a fresh grant, and the driver's undo-and-re-run discipline
// would re-run it forever), so in steady state every grant completes one
// or two advances before the next one trips the yield — ns/op is
// dominated by one heap handoff, and the ratio to the coroutine variant
// is the per-handoff cost retired by the continuation scheduler.
func BenchmarkSchedulerHandoffStepped(b *testing.B) {
	for _, strands := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("strands=%d", strands), func(b *testing.B) {
			cfg := DefaultConfig(strands)
			cfg.MemWords = 1 << 16
			m := New(cfg)
			per := b.N/strands + 1
			step := cfg.Quantum // saturate the grant: yield on every following advance
			b.ReportAllocs()
			b.ResetTimer()
			m.RunStepped(func(s *Strand) StepFn {
				i := 0
				return func() bool {
					for i < per {
						s.Advance(step)
						if s.YieldPending() {
							return false
						}
						i++
					}
					return true
				}
			})
		})
	}
}

// ---- Plain loads and stores ----

// benchMachine1 builds a single-strand machine with a small memory.
func benchMachine1() *Machine {
	cfg := DefaultConfig(1)
	cfg.MemWords = 1 << 20
	return New(cfg)
}

// BenchmarkLoadL1Hit is the simplest possible hot path: a warm load
// (TLB hit, L1 hit, no conflicts).
func BenchmarkLoadL1Hit(b *testing.B) {
	m := benchMachine1()
	a := m.Mem().AllocLines(WordsPerLine)
	b.ReportAllocs()
	b.ResetTimer()
	m.Run(func(s *Strand) {
		s.Load(a) // warm
		for i := 0; i < b.N; i++ {
			s.Load(a)
		}
	})
}

// BenchmarkLoadTLBChurn strides loads over more pages than the main DTLB
// holds: every access walks and fills, stressing translation end to end.
func BenchmarkLoadTLBChurn(b *testing.B) {
	m := benchMachine1()
	const pages = 600 // > MainDTLB (512)
	arena := m.Mem().Alloc(pages*PageWords, PageWords)
	b.ReportAllocs()
	b.ResetTimer()
	m.Run(func(s *Strand) {
		for i := 0; i < b.N; i++ {
			s.Load(arena + Addr((i%pages)*PageWords))
		}
	})
}

// BenchmarkStoreL1Hit is the warm store path (translation + ownership).
func BenchmarkStoreL1Hit(b *testing.B) {
	m := benchMachine1()
	a := m.Mem().AllocLines(WordsPerLine)
	b.ReportAllocs()
	b.ResetTimer()
	m.Run(func(s *Strand) {
		s.Store(a, 0) // warm
		for i := 0; i < b.N; i++ {
			s.Store(a, Word(i))
		}
	})
}

// ---- Transactions ----

// BenchmarkTxCommit measures a small read-write transaction (4 loads,
// 4 stores, commit) on warm lines.
func BenchmarkTxCommit(b *testing.B) {
	m := benchMachine1()
	a := m.Mem().AllocLines(8 * WordsPerLine)
	b.ReportAllocs()
	b.ResetTimer()
	m.Run(func(s *Strand) {
		for i := 0; i < 8; i++ { // warm TLB + caches + write permission
			s.CAS(a+Addr(i*WordsPerLine), 0, 0)
		}
		committed := 0
		for i := 0; i < b.N; i++ {
			s.TxBegin()
			ok := true
			for k := 0; k < 4 && ok; k++ {
				_, ok = s.TxLoad(a + Addr(k*WordsPerLine))
			}
			for k := 4; k < 8 && ok; k++ {
				ok = s.TxStore(a+Addr(k*WordsPerLine), Word(i))
			}
			if ok && s.TxCommit() {
				committed++
			}
		}
		if committed == 0 && b.N > 8 {
			b.Error("no transaction ever committed")
		}
	})
}

// BenchmarkTxAbort measures the abort path (begin, one load, explicit
// abort trap, CPS read).
func BenchmarkTxAbort(b *testing.B) {
	m := benchMachine1()
	a := m.Mem().AllocLines(WordsPerLine)
	b.ReportAllocs()
	b.ResetTimer()
	m.Run(func(s *Strand) {
		s.Load(a)
		for i := 0; i < b.N; i++ {
			s.TxBegin()
			if _, ok := s.TxLoad(a); ok {
				s.TxAbortTrap()
			}
			_ = s.CPS()
		}
	})
}

// BenchmarkTxLoadSameLineRun measures a run of transactional loads that
// stay within one cache line: after the first full-path load validates
// the line, every subsequent load takes the per-strand last-line fast
// path (tag check + LRU refresh + hit latency), skipping translation,
// coherence-directory probes and store-queue checks entirely. This is
// the batched-coherence case the data-structure kernels hit on every
// multi-word node visit.
func BenchmarkTxLoadSameLineRun(b *testing.B) {
	m := benchMachine1()
	a := m.Mem().AllocLines(WordsPerLine)
	b.ReportAllocs()
	b.ResetTimer()
	m.Run(func(s *Strand) {
		s.Load(a) // warm translation + L1
		i := 0
		for i < b.N {
			s.TxBegin()
			ok := true
			for k := 0; ok && k < 4096 && i < b.N; k++ {
				_, ok = s.TxLoad(a + Addr(i%WordsPerLine))
				i++
			}
			if ok {
				s.TxCommit()
			}
		}
	})
}

// BenchmarkTxLoadLineCrossingRun is the control for SameLineRun: each
// load targets a different line, so every access pays the full path —
// translation probe, L1 tag walk, coherence-directory read and mark.
// The ratio of the two is the isolated win of the same-line batching.
func BenchmarkTxLoadLineCrossingRun(b *testing.B) {
	m := benchMachine1()
	const lines = 8
	a := m.Mem().AllocLines(lines * WordsPerLine)
	b.ReportAllocs()
	b.ResetTimer()
	m.Run(func(s *Strand) {
		for i := 0; i < lines; i++ { // warm translation + L1
			s.Load(a + Addr(i*WordsPerLine))
		}
		i := 0
		for i < b.N {
			s.TxBegin()
			ok := true
			for k := 0; ok && k < 4096 && i < b.N; k++ {
				_, ok = s.TxLoad(a + Addr((i%lines)*WordsPerLine))
				i++
			}
			if ok {
				s.TxCommit()
			}
		}
	})
}

// BenchmarkTxLoadForwarding fills the store queue with stores to
// distinct lines, then loads each stored address back: every load must
// forward from the store queue. The linear-scan queue pays O(entries)
// per forwarded load.
func BenchmarkTxLoadForwarding(b *testing.B) {
	m := benchMachine1()
	const lines = 24 // fits two SSE banks of 16
	a := m.Mem().AllocLines(lines * WordsPerLine)
	b.ReportAllocs()
	b.ResetTimer()
	m.Run(func(s *Strand) {
		for i := 0; i < lines; i++ {
			s.CAS(a+Addr(i*WordsPerLine), 0, 0)
		}
		i := 0
		for i < b.N {
			s.TxBegin()
			ok := true
			for k := 0; k < lines && ok; k++ {
				ok = s.TxStore(a+Addr(k*WordsPerLine), Word(k))
			}
			for ok && i < b.N {
				_, ok = s.TxLoad(a + Addr((i%lines)*WordsPerLine))
				i++
			}
			if ok {
				s.TxCommit()
			}
		}
	})
}
