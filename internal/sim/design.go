package sim

import (
	"fmt"
	"math/bits"
)

// This file opens the HTM design space: the axes along which hardware
// transactional memories differ (version management, conflict detection,
// conflict resolution, eviction tolerance) lifted out of the hard-coded
// Rock behaviour into Config.HTM. The zero value of every knob selects
// exactly what the simulator always did — bit-for-bit, pinned by the
// golden cycle-identity digests — so the default machine still *is* Rock,
// and every non-default point is a neighbouring design the paper's
// evaluation can be replayed against. See docs/HTM-DESIGN.md for the
// semantics, the cycle-cost model and the CPS mapping of each point.

// VersionMgmt selects how transactional stores are versioned.
type VersionMgmt uint8

const (
	// VMLazy buffers transactional stores in the store queue and drains
	// them to memory at commit — Rock's design (Section 2), the default.
	// Write-set capacity is the store queue (ST|SIZ on overflow), commit
	// pays a per-store drain cost, and aborts discard the buffer for free.
	VMLazy VersionMgmt = iota
	// VMEager writes memory in place at each transactional store and
	// records the previous value in a per-transaction undo log (the
	// LogTM-style design). Each store pays Costs.LogWrite for the log
	// append; commit is constant-time (nothing to drain, no per-store
	// cost, no store-queue bank bound); an abort must restore the log in
	// reverse order, paying Costs.LogWrite per entry on top of the usual
	// AbortPenalty. Requires DetectEager: in-place speculative data must
	// never be visible to a conflicting access, so the conflict (and the
	// victim's rollback) has to happen at access time.
	VMEager
)

// ConflictDetection selects when conflicts between transactions surface.
type ConflictDetection uint8

const (
	// DetectEager detects conflicts at each access — Rock's design, the
	// default: a transactional store claims exclusive ownership
	// immediately, a transactional load broadcasts against active
	// writers. Losers are decided by the ConflictResolution knob.
	DetectEager ConflictDetection = iota
	// DetectLazy defers detection to commit (the TCC-style design):
	// transactional accesses only mark directory bits, and the committing
	// transaction's store drain dooms every other transaction holding a
	// written line marked (first committer wins — the Resolve knob must
	// stay at its default, which the commit drain implements naturally).
	// Doomed victims still report COH, but only after the committer's
	// whole block has run. Requires VMLazy.
	DetectLazy
)

// ConflictResolution selects who survives an eagerly detected conflict
// between a requesting transaction and an active holder.
type ConflictResolution uint8

const (
	// ResRequesterWins dooms the holder (COH) and lets the requester
	// proceed immediately — Rock's design, the default, and the source of
	// the Section 4 livelock that software backoff must defeat.
	ResRequesterWins ConflictResolution = iota
	// ResCommitterWins favours the transaction already holding the line:
	// the requester stalls one Costs.NackStall window (the holder may
	// commit or abort meanwhile), re-checks once, and self-aborts with
	// COH if the conflict persists. COH therefore flips meaning: it names
	// the requester that lost, not a victim doomed from outside, and
	// every COH abort already paid a hardware stall (see
	// policy.TuningForDesign). Non-transactional accesses still win
	// unconditionally — they cannot retry.
	ResCommitterWins
	// ResTimestamp arbitrates by age: the transaction that began earlier
	// wins (machine-wide begin sequence numbers, so arbitration is total
	// and livelock-free). Younger holders are doomed like requester-wins;
	// an older holder makes the requester stall-then-self-abort like
	// committer-wins.
	ResTimestamp
)

// HTMDesign selects the point in the HTM design space the machine
// implements. The zero value is Rock: lazy store-queue write buffering,
// eager requester-wins conflict detection, zero eviction tolerance.
type HTMDesign struct {
	VM      VersionMgmt
	Detect  ConflictDetection
	Resolve ConflictResolution
	// StickyLines bounds how many transactionally marked lines may be
	// displaced from the L1 per attempt without aborting: the directory
	// marks survive in a bounded "sticky" overflow set (cf. gem5's
	// allow_read_set_l1_cache_evictions + sticky-S states and the FORTH
	// limited-set HTM), each spill charging Costs.StickyEvict. 0 — the
	// default — aborts on the first displacement (CPS=LD, Rock);
	// displacements beyond the bound abort with CPS=LD|SIZ (the overflow
	// set itself filled). L2 back-invalidations still abort: only L1
	// capacity is tolerated.
	StickyLines int
}

// validate rejects incoherent design points loudly at machine
// construction; a silent fallback would sweep a design that does not
// exist.
func (d HTMDesign) validate() {
	if d.VM == VMEager && d.Detect == DetectLazy {
		panic("sim: HTMDesign{VM: VMEager, Detect: DetectLazy} is incoherent — " +
			"in-place speculative stores must detect conflicts at access time (use DetectEager)")
	}
	if d.Detect == DetectLazy && d.Resolve != ResRequesterWins {
		panic("sim: HTMDesign with DetectLazy arbitrates at commit (first committer wins); " +
			"leave Resolve at the default")
	}
	if d.StickyLines < 0 {
		panic(fmt.Sprintf("sim: HTMDesign.StickyLines must be >= 0, got %d", d.StickyLines))
	}
}

// DesignPointNames lists the named design points in sweep order; the
// first is always the Rock default.
func DesignPointNames() []string {
	return []string{"rock", "eagervm", "lazydet", "committer", "timestamp", "sticky"}
}

// DesignPoint returns a named HTM design point for the htmdesign sweep:
// "rock" (the all-default baseline), "eagervm" (undo-log version
// management), "lazydet" (validate-at-commit detection), "committer" and
// "timestamp" (alternative conflict resolution), and "sticky" (an
// 8-line eviction-tolerant overflow set). It panics on unknown names;
// design points are always requested from code.
func DesignPoint(name string) HTMDesign {
	switch name {
	case "rock":
		return HTMDesign{}
	case "eagervm":
		return HTMDesign{VM: VMEager}
	case "lazydet":
		return HTMDesign{Detect: DetectLazy}
	case "committer":
		return HTMDesign{Resolve: ResCommitterWins}
	case "timestamp":
		return HTMDesign{Resolve: ResTimestamp}
	case "sticky":
		return HTMDesign{StickyLines: 8}
	}
	panic(fmt.Sprintf("sim: unknown HTM design point %q (known: %v)", name, DesignPointNames()))
}

// ---- Conflict arbitration (non-default resolution) ----

// doomRemote dooms v's in-flight transaction for reason. Under eager
// version management the victim's undo log is unrolled immediately — the
// conflicting access is about to observe memory, so the victim's
// in-place speculative values must be gone before it proceeds — with the
// restore cost charged to the victim when its abort is delivered. Under
// the default lazy design it is exactly Strand.doom.
func (m *Machine) doomRemote(v *Strand, reason uint32) {
	if !v.tx.active {
		return
	}
	v.tx.doomed |= reason
	if m.vmEager {
		v.tx.rolledBack += v.tx.rollbackUndo(m.mem)
	}
}

// rollbackUndo restores memory from the undo log in reverse order (eager
// version management) and truncates the log, returning the number of
// entries restored. It is idempotent: a second call finds an empty log —
// which is how an abort delivered after a remote conflict already
// unrolled the log charges the restore cost exactly once (txnState.
// rolledBack carries the count across).
func (t *txnState) rollbackUndo(mem *Memory) int {
	n := len(t.storeAddrs)
	for i := n - 1; i >= 0; i-- {
		mem.words[t.storeAddrs[i]] = t.storeVals[i]
	}
	t.storeAddrs = t.storeAddrs[:0]
	t.storeVals = t.storeVals[:0]
	return n
}

// arbMask returns the conflicting holders a transactional access to line
// must arbitrate against: every active marker for a store, every active
// writer for a load.
func (s *Strand) arbMask(line int32, store bool) uint64 {
	lm := &s.m.mem.lines[line]
	if store {
		return lm.marked &^ s.bit
	}
	return lm.written & s.m.activeMask &^ s.bit
}

// resolveArb arbitrates a transactional access against active holders of
// line under committer-wins or timestamp resolution. It runs before the
// line is filled: the NACK stall below may yield the baton, so it must
// complete while the access holds no per-attempt L1 slot state. It
// reports false if the requester's transaction aborted.
func (s *Strand) resolveArb(line int32, store bool) bool {
	holders := s.arbMask(line, store)
	if holders == 0 {
		return true
	}
	if s.m.resolve == ResTimestamp {
		if holders = s.doomYounger(holders); holders == 0 {
			return true
		}
	}
	// The holder wins: stall one NACK window (an advance, so the baton may
	// pass and the holder may commit or abort meanwhile), then re-check
	// once. A conflict that persists aborts the requester with COH —
	// stalling again instead could deadlock two transactions holding each
	// other's lines.
	s.advance(s.m.cfg.Costs.NackStall)
	if s.checkDoom() {
		return false
	}
	holders = s.arbMask(line, store)
	if s.m.resolve == ResTimestamp {
		holders = s.doomYounger(holders)
	}
	if holders != 0 {
		s.txAbort(cohBit)
		return false
	}
	return true
}

// doomYounger dooms every strand in mask whose transaction began after
// this one (timestamp arbitration: the older transaction wins) and
// returns the mask of survivors — older holders, against whom the caller
// must lose.
func (s *Strand) doomYounger(mask uint64) uint64 {
	var older uint64
	for rest := mask; rest != 0; rest &= rest - 1 {
		v := s.m.strands[bits.TrailingZeros64(rest)]
		if v.tx.ts > s.tx.ts {
			s.m.doomRemote(v, cohBit)
		} else {
			older |= v.bit
		}
	}
	return older
}

// spillMarked handles the displacement of one of the strand's own marked
// lines from its L1 (the slot is already gone; the caller has cleared
// lm.present). Under a sticky-set design with budget remaining, the
// directory marks survive in the overflow set — conflict detection keeps
// working through the directory bits even though no cache copy exists —
// and the spill is absorbed. Otherwise the marks are dropped and the
// caller must abort/doom with evictAbortReason. Reports whether the
// eviction was absorbed.
func (s *Strand) spillMarked(lm *lineMeta) bool {
	if s.m.stickyCap > 0 && s.tx.sticky < s.m.stickyCap {
		s.tx.sticky++
		s.clock += s.m.cfg.Costs.StickyEvict
		return true
	}
	lm.marked &^= s.bit
	lm.written &^= s.bit
	return false
}

// evictAbortReason is the CPS value of a marked-line displacement the
// design did not absorb: LD under the default zero-tolerance design
// (the read set can no longer be tracked); LD|SIZ under a sticky design
// (the bounded overflow set itself filled).
func (s *Strand) evictAbortReason() uint32 {
	if s.m.stickyCap > 0 {
		return ldBit | sizBit
	}
	return ldBit
}
