// Package sim implements a deterministic discrete-event simulator of a
// Rock-like chip multiprocessor: up to 64 hardware strands with private L1
// caches, TLBs and branch predictors over a shared L2 and word-addressed
// memory, plus the checkpoint-based best-effort hardware transactional
// memory that the paper studies.
//
// Strands are coroutines scheduled cooperatively in virtual-time order: a
// baton is passed so that exactly one strand executes at any moment, and a
// strand yields the baton whenever its cycle clock runs more than a quantum
// ahead of the laggard. This gives three properties the experiments need:
// runs are bit-for-bit reproducible, there are no Go data races by
// construction, and 1–16-"thread" scaling curves are meaningful even on a
// single-core host because throughput is computed from simulated cycles,
// not wall time.
package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"iter"

	"rocktm/internal/obs"
)

// MaxStrands is the largest number of strands a machine supports (the
// coherence directory uses 64-bit presence masks). A Rock chip has 32.
const MaxStrands = 64

// DefaultMicroDTLB is the micro-DTLB size used both by DefaultConfig and by
// New's zero-value fallback. All of the paper-reconstruction experiments
// run with this value: it is large enough that micro-DTLB capacity misses
// are not the dominant ST cause in steady state, while a store to a freshly
// mapped page still misses it and needs the dummy-CAS warmup of Section
// 3.1. (Historically DefaultConfig said 64 while New's fallback said 8; the
// single constant removes that trap.)
const DefaultMicroDTLB = 64

// Mode selects the chip execution mode (Section 2 of the paper).
type Mode int

const (
	// SSE — Simultaneous Scout Execution — dedicates both hardware threads
	// of a core to one software thread: the store queue holds 32 entries
	// (two banks of 16) and the deferred queue is larger. All headline data
	// in the paper is taken in SSE mode.
	SSE Mode = iota
	// SE — Scout Execution — runs two software threads per core; each gets
	// a 16-entry store queue (two banks of 8), which makes transactional
	// stores overflow much sooner (the paper's Section 8.1 observes MSF
	// transactions failing with ST|SIZ in SE mode).
	SE
)

// Config describes a simulated machine. The zero value is not usable; call
// DefaultConfig and adjust.
type Config struct {
	// Strands is the number of hardware strands (software threads for our
	// purposes; in SSE mode each occupies a whole core).
	Strands int
	// MemWords sizes simulated memory, in 64-bit words.
	MemWords int
	// Mode selects SSE (default) or SE execution.
	Mode Mode
	// Seed makes runs reproducible; every strand derives its RNG from it.
	Seed uint64
	// Quantum is the scheduling granularity in cycles: a strand yields once
	// it runs this far ahead of the slowest runnable strand.
	Quantum int64
	// MaxCycles aborts the run (panic) if any strand's clock exceeds it;
	// it is a guard against virtual-time livelock in tests. 0 disables.
	MaxCycles int64

	// Costs is the cycle-cost table.
	Costs Costs

	// L1Sets and L1Ways shape each strand's L1 (default 128×4 = 32 KB).
	L1Sets, L1Ways int
	// L2Sets and L2Ways shape the shared L2 (default 4096×8 = 2 MB).
	L2Sets, L2Ways int
	// MicroDTLB, MainDTLB and ITLB are the translation-buffer sizes.
	MicroDTLB, MainDTLB, ITLB int

	// StoreQueuePerBank is the per-bank store-queue capacity; there are two
	// banks selected by a line-address bit. 0 means mode default (16 in
	// SSE, 8 in SE).
	StoreQueuePerBank int
	// DeferredQueue is the capacity of the deferred-instruction queue;
	// loads that miss the L1 inside a transaction defer their dependents,
	// and overflow aborts with CPS=SIZ. 0 means mode default (32 SSE/16 SE).
	DeferredQueue int
	// DeferPerMiss is how many deferred-queue entries each in-transaction
	// L1 miss consumes.
	DeferPerMiss int

	// CTIAbortProb is the probability that a mispredicted branch inside a
	// transaction aborts it (CPS=CTI).
	CTIAbortProb float64
	// UCTIAbortProb is the probability that a branch issued while the load
	// feeding its predicate is still outstanding aborts the transaction
	// with CPS=UCTI (possibly with a misleading companion bit).
	UCTIAbortProb float64
	// StoreAfterMissProb is the probability that a transactional store
	// whose address depends on an immediately preceding L1-missing load
	// aborts with CPS=ST ("store address unavailable due to an outstanding
	// load miss", Section 3.1).
	StoreAfterMissProb float64
	// ExogProb is the probability that intervening code runs between an
	// abort and the CPS read, replacing the register contents with EXOG.
	ExogProb float64
	// InterruptEvery delivers an asynchronous interrupt to each strand
	// every so many cycles; a transaction in flight aborts with CPS=ASYNC.
	// 0 disables.
	InterruptEvery int64

	// Faults configures deterministic fault injection (see FaultPlan). The
	// zero value injects nothing and leaves every RNG stream untouched, so
	// fault-free runs are bit-for-bit identical to pre-fault-injection
	// builds.
	Faults FaultPlan

	// HTM selects the point in the HTM design space the machine implements
	// (version management, conflict detection/resolution, set-eviction
	// tolerance — see HTMDesign and docs/HTM-DESIGN.md). The zero value is
	// Rock's design and is bit-for-bit identical to builds that predate the
	// knob, pinned by the golden cycle-identity digests.
	HTM HTMDesign
}

// DefaultConfig returns a Rock-flavoured configuration for n strands.
func DefaultConfig(n int) Config {
	return Config{
		Strands:            n,
		MemWords:           1 << 22, // 32 MB
		Mode:               SSE,
		Seed:               1,
		Quantum:            64,
		Costs:              DefaultCosts(),
		L1Sets:             128,
		L1Ways:             4,
		L2Sets:             4096,
		L2Ways:             8,
		MicroDTLB:          DefaultMicroDTLB,
		MainDTLB:           512,
		ITLB:               64,
		DeferPerMiss:       4,
		CTIAbortProb:       0.05,
		UCTIAbortProb:      0.15,
		StoreAfterMissProb: 0.3,
	}
}

// Digest returns a short content hash of the full configuration — every
// field that can change simulated behaviour, including the cost table.
// The experiment runner folds it into cache keys so a result computed
// under one machine configuration is never served for another.
func (c Config) Digest() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%#v", c)))
	return hex.EncodeToString(h[:8])
}

func (c *Config) storeQueuePerBank() int {
	if c.StoreQueuePerBank > 0 {
		return c.StoreQueuePerBank
	}
	if c.Mode == SE {
		return 8
	}
	return 16
}

func (c *Config) deferredQueue() int {
	if c.DeferredQueue > 0 {
		return c.DeferredQueue
	}
	if c.Mode == SE {
		return 16
	}
	return 32
}

// Machine is one simulated chip: shared memory, shared L2, and a set of
// strands driven in virtual-time order.
type Machine struct {
	cfg Config
	mem *Memory
	l2  *l2Cache

	strands []*Strand

	trc *obs.Tracer
	win obs.EventSink

	// Mode-dependent queue capacities, resolved once at construction so
	// the transaction hot paths never re-branch on cfg.Mode.
	sqPerBank int
	defQueue  int

	// HTM design point, resolved from cfg.HTM at construction for the same
	// reason. All four are their zero values under the default Rock design,
	// and every non-default branch in the transaction paths is gated on
	// them.
	vmEager   bool
	detLazy   bool
	resolve   ConflictResolution
	stickyCap int
	// txSeq issues machine-wide transaction begin timestamps for
	// ResTimestamp arbitration. It advances on every TxBegin regardless of
	// design (host state only — no cycles, no RNG draws), so flipping the
	// Resolve knob never perturbs the RNG streams.
	txSeq uint64

	// Load-conflict doom broadcast, one bit per strand. activeMask mirrors
	// each strand's tx.active flag (set at TxBegin, cleared at commit and
	// abort), so loadConflict can doom every conflicting writer with a
	// single mask operation: cohDoom |= written & activeMask &^ self.
	// Victims fold their bit into the CPS reasons (as COH) at their next
	// checkDoom delivery point, exactly as per-strand dooming did.
	cohDoom    uint64
	activeMask uint64

	// Scheduler state; only Run's driver goroutine touches it.
	//
	// parked is a binary min-heap of parked, not-done strands keyed
	// (clock, id) — the same total order the old O(strands) minParked scan
	// imposed (strict < with ascending iteration = lowest id wins ties).
	// Exactly one strand runs at a time and a parked strand's clock never
	// changes, so the only operations are push and pop-min: handoffs are
	// O(log strands) and the hot maybeYield check is a single compare
	// against the running strand's cached yield deadline.
	parked  []heapNode
	running bool
}

// requirePow2 validates that a geometry parameter is a power of two — the
// cache set indexes and the free-slot bitmaps rely on mask arithmetic.
func requirePow2(field string, v int) {
	if v <= 0 || v&(v-1) != 0 {
		panic(fmt.Sprintf("sim: %s must be a power of two for mask indexing, got %d (round up to %d)",
			field, v, nextPow2(v)))
	}
}

// nextPow2 returns the smallest power of two >= v (for the panic hint).
func nextPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// New builds a machine. It panics on nonsensical configurations; machines
// are always constructed from code, not external input.
func New(cfg Config) *Machine {
	if cfg.Strands <= 0 || cfg.Strands > MaxStrands {
		panic(fmt.Sprintf("sim: Strands must be in [1,%d], got %d", MaxStrands, cfg.Strands))
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 64
	}
	if cfg.Costs.FreqGHz == 0 {
		cfg.Costs = DefaultCosts()
	}
	if cfg.L1Sets == 0 {
		cfg.L1Sets, cfg.L1Ways = 128, 4
	}
	if cfg.L2Sets == 0 {
		cfg.L2Sets, cfg.L2Ways = 4096, 8
	}
	if cfg.MicroDTLB == 0 {
		cfg.MicroDTLB = DefaultMicroDTLB
	}
	if cfg.MainDTLB == 0 {
		cfg.MainDTLB = 512
	}
	if cfg.ITLB == 0 {
		cfg.ITLB = 64
	}
	if cfg.DeferPerMiss == 0 {
		cfg.DeferPerMiss = 4
	}
	if cfg.MemWords == 0 {
		cfg.MemWords = 1 << 22
	}
	// The set indexes and TLB free-slot bitmaps use mask arithmetic, which
	// is only equivalent to the original modulo indexing for power-of-two
	// geometries. Every real machine (and the paper's Rock) is a power of
	// two anyway, so reject anything else loudly instead of simulating a
	// machine subtly different from the one asked for.
	requirePow2("L1Sets", cfg.L1Sets)
	requirePow2("L2Sets", cfg.L2Sets)
	requirePow2("MicroDTLB", cfg.MicroDTLB)
	requirePow2("MainDTLB", cfg.MainDTLB)
	requirePow2("ITLB", cfg.ITLB)
	cfg.HTM.validate()
	m := &Machine{
		cfg:       cfg,
		mem:       newMemory(cfg.MemWords),
		l2:        newL2(cfg.L2Sets, cfg.L2Ways),
		sqPerBank: cfg.storeQueuePerBank(),
		defQueue:  cfg.deferredQueue(),
		vmEager:   cfg.HTM.VM == VMEager,
		detLazy:   cfg.HTM.Detect == DetectLazy,
		resolve:   cfg.HTM.Resolve,
		stickyCap: cfg.HTM.StickyLines,
	}
	// Capacity-squeeze faults override the mode-resolved queue capacities.
	if q := cfg.Faults.SqueezeStoreQueue; q > 0 {
		m.sqPerBank = q
	}
	if q := cfg.Faults.SqueezeDeferredQueue; q > 0 {
		m.defQueue = q
	}
	m.strands = make([]*Strand, cfg.Strands)
	m.parked = make([]heapNode, 0, cfg.Strands)
	for i := range m.strands {
		m.strands[i] = newStrand(m, i)
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Mem returns the simulated memory, for setup (Alloc/Poke) and validation
// (Peek) outside timed runs.
func (m *Machine) Mem() *Memory { return m.mem }

// Recycle donates the machine's simulated-memory backing arrays to a
// process-wide pool so the next machine's construction scrubs a prefix
// instead of allocating and zeroing tens of megabytes from scratch. Call it
// only after the machine's last use (including Peek-based validation):
// afterwards the simulated memory reads as zero and must not be written.
// Recycling is a host-side allocation strategy only — it never changes what
// a simulation computes.
func (m *Machine) Recycle() { m.mem.recycle() }

// Strand returns strand i for pre-run configuration (it must not be driven
// outside Run).
func (m *Machine) Strand(i int) *Strand { return m.strands[i] }

// AttachTracer points every strand's trace hook at t (nil detaches).
// Attaching a tracer does not change a run's virtual-time behaviour in any
// way; it only records what happened.
func (m *Machine) AttachTracer(t *obs.Tracer) {
	m.trc = t
	for _, s := range m.strands {
		s.trc = t
	}
}

// StartTrace attaches a fresh tracer with the given per-strand ring
// capacity (<=0 selects the obs default) and returns it.
func (m *Machine) StartTrace(perStrandCap int) *obs.Tracer {
	t := obs.NewTracer(len(m.strands), perStrandCap)
	t.SetFreqGHz(m.cfg.Costs.FreqGHz)
	m.AttachTracer(t)
	return t
}

// Tracer returns the attached tracer, or nil.
func (m *Machine) Tracer() *obs.Tracer { return m.trc }

// AttachEventSink points every strand's trace hook at the streaming sink
// (nil detaches). Like AttachTracer it cannot change a run's virtual-time
// behaviour; a sink and a tracer may be attached simultaneously.
func (m *Machine) AttachEventSink(k obs.EventSink) {
	m.win = k
	for _, s := range m.strands {
		s.win = k
	}
}

// EventSink returns the attached streaming sink, or nil.
func (m *Machine) EventSink() obs.EventSink { return m.win }

// PublishMetrics registers every strand's event counters with the unified
// metrics registry under the "sim" subsystem, keyed by strand.
func (m *Machine) PublishMetrics(reg *obs.Registry) {
	for _, s := range m.strands {
		s := s
		reg.RegisterStrand("sim", s.id, func() obs.Sample { return s.stats.Sample() })
	}
}

// Run executes body(strand) on every strand concurrently in virtual time
// and returns once all bodies have returned. A strand runs only while it
// holds the baton, so bodies may freely share simulated memory. Run may be
// called repeatedly; strand clocks, caches and predictors persist across
// calls (use a fresh Machine for an independent experiment).
//
// Each strand body runs on a coroutine (iter.Pull), and this driver loop
// resumes whichever parked strand has the lowest (clock, id) — the same
// handoff decisions the old strand-to-strand channel baton made, executed
// as direct goroutine switches instead of park/wake round trips through
// the Go scheduler (~5x cheaper per handoff on a single-core host). A body
// panic (e.g. the MaxCycles livelock guard) propagates out of Run on the
// caller's goroutine; iter.Pull likewise forwards runtime.Goexit (t.Fatal
// inside a body), so Run never deadlocks on a dead strand.
func (m *Machine) Run(body func(*Strand)) {
	if m.running {
		panic("sim: Run re-entered")
	}
	m.running = true
	m.parked = m.parked[:0]
	for _, s := range m.strands {
		s.parked = true
		m.heapPush(s)
		s.resume, s.cancel = iter.Pull(func(yield func(struct{}) bool) {
			s.yield = yield
			body(s)
		})
	}
	// Hand the baton to the strand with the lowest clock; keep handing it
	// to the laggard until every body has returned.
	c := m.heapPop()
	for {
		c.parked = false
		m.grant(c)
		if _, yielded := c.resume(); yielded {
			// c's body called yieldBaton: park it, resume the laggard.
			// heapReplaceMin(c) is the pop-then-push of the old handoff
			// fused into one sift-down.
			c.parked = true
			c = m.heapReplaceMin(c)
			continue
		}
		// c's body returned: retire its coroutine and move on.
		c.cancel()
		c.yield = nil
		if len(m.parked) == 0 {
			break
		}
		c = m.heapPop()
	}
	m.running = false
}

// CanRunStepped reports whether this machine's HTM design point supports
// the continuation driver. Requester-loses arbitration (committer-wins,
// timestamp) stalls a NACKed requester *inside* the interrupted memory
// operation (resolveArb) — a second advance mid-operation that RunStepped's
// re-invoke-from-entry contract cannot resume — so those design points stay
// on the coroutine driver.
func (m *Machine) CanRunStepped() bool { return m.resolve == ResRequesterWins }

// StepFn is one strand's continuation body under RunStepped: each call runs
// the strand forward until it either finishes (return true) or crosses its
// yield deadline (return false with Strand.YieldPending() set). A step body
// that pauses must re-invoke the interrupted simulated operation when next
// called — the driver has undone the operation's cycle charge, so re-running
// it from its advance reproduces the coroutine driver's timing exactly.
type StepFn func() bool

// RunStepped executes a continuation-machine body on every strand
// concurrently in virtual time — the same scheduling contract as Run (one
// baton, lowest (clock, id) first, identical handoff decisions and clocks,
// pinned by the differential golden tests) with no goroutine switch per
// handoff: a strand that runs a full quantum ahead records a pending yield,
// its current operation bails out before any side effect, and control
// returns to this loop through ordinary returns.
//
// start is called once per strand to build its continuation; it must not
// perform simulated work (construct sessions and drivers only). Only step
// bodies whose yield points all surface through YieldPending-aware
// operations may run under this driver; arbitrary bodies stay on Run, the
// general authoring surface.
func (m *Machine) RunStepped(start func(*Strand) StepFn) {
	if m.running {
		panic("sim: Run re-entered")
	}
	m.running = true
	m.parked = m.parked[:0]
	for _, s := range m.strands {
		s.parked = true
		s.stepped = true
		m.heapPush(s)
		clk := s.clock
		s.stepFn = start(s)
		if s.clock != clk {
			panic("sim: RunStepped start callback performed simulated work")
		}
	}
	c := m.heapPop()
	for {
		c.parked = false
		m.grant(c)
		if c.chargeDebt != 0 {
			// Undo the charge of the operation the pending yield interrupted;
			// the step body re-invokes that operation from its advance, so
			// the clock it resumes at — and every heap decision that follows
			// — is bit-identical to a coroutine resume.
			c.clock -= c.chargeDebt
			c.chargeDebt = 0
		}
		c.yieldPending = false
		if !c.stepFn() {
			if !c.yieldPending {
				panic("sim: step body paused without a pending yield")
			}
			c.parked = true
			c = m.heapReplaceMin(c)
			continue
		}
		if c.yieldPending {
			panic("sim: step body finished with a pending yield")
		}
		c.stepped = false
		c.stepFn = nil
		if len(m.parked) == 0 {
			break
		}
		c = m.heapPop()
	}
	m.running = false
}

// yieldSentinel is the cached yield deadline when no handoff can ever be
// needed (no parked strand exists): far beyond any reachable clock.
const yieldSentinel = int64(1) << 62

// grant computes and caches s's yield deadline as it receives the baton:
// the clock at which it will have run a full quantum ahead of the laggard.
// Nothing can change the heap while s runs, so the deadline stays valid
// until s itself parks, finishes, or pops a strand — making the per-advance
// scheduling check a single compare.
func (m *Machine) grant(s *Strand) {
	if len(m.parked) == 0 {
		// No parked strand ⇔ runnable <= 1: never yield.
		s.yieldLimit = yieldSentinel
	} else {
		s.yieldLimit = int64(m.parked[0].key>>heapIDBits) + m.cfg.Quantum
	}
	s.recomputeLimit()
}

// heapNode is one parked strand with its ordering key packed into a
// single uint64: clock<<6 | id. Because id < MaxStrands = 64 fits in the
// low 6 bits and clocks are non-negative, unsigned comparison of packed
// keys is exactly the (clock, id) lexicographic order of the original
// linear minParked scan — and sift operations compare inline integers
// instead of chasing two *Strand pointers per step.
type heapNode struct {
	key uint64
	s   *Strand
}

// heapKey packs s's current (clock, id) ordering key.
func heapKey(s *Strand) uint64 {
	return uint64(s.clock)<<heapIDBits | uint64(s.id)
}

// heapIDBits is the width of the id field in a packed heap key;
// 1<<heapIDBits must be >= MaxStrands.
const heapIDBits = 6

// heapPush parks s into the scheduler heap.
func (m *Machine) heapPush(s *Strand) {
	h := append(m.parked, heapNode{heapKey(s), s})
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[i].key >= h[p].key {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	m.parked = h
}

// heapReplaceMin atomically pops the minimum strand and parks s in its
// place with a single sift-down — the yield handoff in one heap operation.
// Because (clock, id) is a strict total order, the sequence of future pops
// and the identity of parked[0] depend only on the heap's *contents*, not
// its internal layout, so replace-min is observably identical to the
// pop-then-push it replaces.
func (m *Machine) heapReplaceMin(s *Strand) *Strand {
	h := m.parked
	n := len(h)
	top := h[0].s
	h[0] = heapNode{heapKey(s), s}
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h[l].key < h[least].key {
			least = l
		}
		if r < n && h[r].key < h[least].key {
			least = r
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return top
}

// heapPop removes and returns the parked strand with the lowest
// (clock, id). It must only be called when one exists.
func (m *Machine) heapPop() *Strand {
	h := m.parked
	n := len(h) - 1
	if n < 0 {
		panic("sim: no parked strand")
	}
	top := h[0].s
	h[0] = h[n]
	h[n] = heapNode{}
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h[l].key < h[least].key {
			least = l
		}
		if r < n && h[r].key < h[least].key {
			least = r
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	m.parked = h
	return top
}

// MaxClock returns the largest strand clock — the elapsed virtual time of
// the run so far, in cycles.
func (m *Machine) MaxClock() int64 {
	var max int64
	for _, s := range m.strands {
		if s.clock > max {
			max = s.clock
		}
	}
	return max
}

// Seconds converts cycles to simulated seconds at the configured frequency.
func (m *Machine) Seconds(cycles int64) float64 {
	return float64(cycles) / (m.cfg.Costs.FreqGHz * 1e9)
}

// ElapsedSeconds returns MaxClock in simulated seconds.
func (m *Machine) ElapsedSeconds() float64 { return m.Seconds(m.MaxClock()) }
