package sim

// u32map is a tiny open-addressing hash map from uint32 keys to int32
// values, specialised for the transaction store queue: clearing is O(1)
// (an epoch bump invalidates every entry), probes are allocation-free,
// and the table only grows — never shrinks — so steady-state transactions
// reuse one warm allocation forever.
//
// It exists because TxLoad's read-own-writes forwarding and TxStore's
// line-coalescing check were O(store-queue) linear scans executed on
// every transactional memory operation.
type u32map struct {
	keys  []uint32
	vals  []int32
	epoch []uint32
	cur   uint32 // current epoch; entries with epoch != cur are empty
	mask  uint32
	used  int
}

func newU32Map() *u32map {
	const initial = 64 // > 2x the SSE store-queue line capacity
	return &u32map{
		keys:  make([]uint32, initial),
		vals:  make([]int32, initial),
		epoch: make([]uint32, initial),
		cur:   1,
		mask:  initial - 1,
	}
}

// reset empties the map in O(1) by advancing the epoch.
func (m *u32map) reset() {
	m.used = 0
	m.cur++
	if m.cur == 0 { // epoch wrapped: stale entries would look live
		for i := range m.epoch {
			m.epoch[i] = 0
		}
		m.cur = 1
	}
}

func (m *u32map) hash(k uint32) uint32 {
	return (k * 2654435761) & m.mask
}

// get returns the value stored for k in the current epoch.
func (m *u32map) get(k uint32) (int32, bool) {
	for i := m.hash(k); ; i = (i + 1) & m.mask {
		if m.epoch[i] != m.cur {
			return 0, false
		}
		if m.keys[i] == k {
			return m.vals[i], true
		}
	}
}

// put inserts or overwrites k's value for the current epoch.
func (m *u32map) put(k uint32, v int32) {
	for i := m.hash(k); ; i = (i + 1) & m.mask {
		if m.epoch[i] != m.cur {
			m.keys[i] = k
			m.vals[i] = v
			m.epoch[i] = m.cur
			m.used++
			if 2*m.used >= len(m.keys) {
				m.grow()
			}
			return
		}
		if m.keys[i] == k {
			m.vals[i] = v
			return
		}
	}
}

// grow doubles the table, re-inserting only current-epoch entries.
func (m *u32map) grow() {
	old := *m
	n := 2 * len(old.keys)
	m.keys = make([]uint32, n)
	m.vals = make([]int32, n)
	m.epoch = make([]uint32, n)
	m.mask = uint32(n - 1)
	m.used = 0
	for i, e := range old.epoch {
		if e == old.cur {
			m.put(old.keys[i], old.vals[i])
		}
	}
}
