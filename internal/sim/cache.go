package sim

// l1Cache models a strand's 4-way set-associative L1 data cache. Rock's
// 32 KB, 64-byte-line L1 has 128 sets of 4 ways; transactional read-set
// tracking lives here: a transactionally marked line that gets displaced
// aborts the transaction with CPS=LD, and five loads mapping to one 4-way
// set can never all be marked at once (the "cache set test" of Section 3).
//
// Sets are powers of two (enforced by sim.New), so set selection is a mask
// instead of a modulo, and access resolves hit/victim in one pass over the
// ways instead of the old lookup-then-scan double pass. Victim choice is
// bit-identical to the original: the *first* invalid way by index wins,
// then the least-recently-used unmarked way, then the least-recently-used
// marked way (ages are unique monotonic ticks, so LRU ties cannot occur).
// l1Slot is one L1 way: tag, transactional mark and LRU timestamp packed
// into 16 bytes, so a whole 4-way set occupies a single 64-byte host cache
// line — an access touches one line where the old parallel tag/age/marked
// arrays touched three.
type l1Slot struct {
	tag    int32 // -1 = invalid
	marked bool
	age    int64 // LRU timestamp (unique monotonic tick)
}

type l1Cache struct {
	sets    int
	ways    int
	setMask int32
	slots   []l1Slot // sets*ways entries
	tick    int64
}

func newL1(sets, ways int) *l1Cache {
	c := &l1Cache{
		sets:    sets,
		ways:    ways,
		setMask: int32(sets - 1),
		slots:   make([]l1Slot, sets*ways),
	}
	for i := range c.slots {
		c.slots[i].tag = -1
	}
	return c
}

// setBase returns the first slot of line's set.
func (c *l1Cache) setBase(line int32) int {
	return int(line&c.setMask) * c.ways
}

// lookup returns the slot index holding line, or -1.
func (c *l1Cache) lookup(line int32) int {
	base := c.setBase(line)
	set := c.slots[base : base+c.ways]
	for w := range set {
		if set[w].tag == line {
			return base + w
		}
	}
	return -1
}

// touch probes line, refreshing its LRU timestamp on a hit, and returns
// the slot index holding it or -1. It advances the LRU tick whether or not
// the probe hits — exactly as the fused access did — so a following
// fillVictim must NOT advance it again. touch is small enough to inline,
// which keeps the L1-hit path (the overwhelmingly common case) free of any
// function-call overhead in Strand.fill.
func (c *l1Cache) touch(line int32) int {
	c.tick++
	base := int(line&c.setMask) * c.ways
	set := c.slots[base : base+c.ways]
	for w := range set {
		if set[w].tag == line {
			set[w].age = c.tick
			return base + w
		}
	}
	return -1
}

// fillVictim installs line after a touch miss (the tick was already
// advanced by touch), returning the displaced line (-1 if a way was free),
// whether it was transactionally marked, and the slot now holding line.
//
// On a miss with all ways transactionally marked, the LRU *marked* way is
// displaced — that is the mechanism behind LD aborts: the hardware cannot
// keep the read set pinned. Victim preference: first invalid way by index,
// else LRU unmarked, else LRU marked.
func (c *l1Cache) fillVictim(line int32) (evicted int32, evictedMark bool, idx int) {
	base := c.setBase(line)
	set := c.slots[base : base+c.ways]
	var firstInvalid, bestUnmarked, bestMarked = -1, -1, -1
	for w := range set {
		s := &set[w]
		if s.tag == -1 {
			if firstInvalid == -1 {
				firstInvalid = w
			}
			continue
		}
		if !s.marked {
			if bestUnmarked == -1 || s.age < set[bestUnmarked].age {
				bestUnmarked = w
			}
		} else if bestMarked == -1 || s.age < set[bestMarked].age {
			bestMarked = w
		}
	}
	victim, victimMarked := firstInvalid, false
	if victim == -1 {
		if bestUnmarked >= 0 {
			victim = bestUnmarked
		} else {
			victim, victimMarked = bestMarked, true
		}
	}
	v := &set[victim]
	evicted = v.tag
	evictedMark = victimMarked && evicted != -1
	v.tag = line
	v.age = c.tick
	v.marked = false
	return evicted, evictedMark, base + victim
}

// access touches line, filling it on a miss (touch + fillVictim fused; the
// hot machine path calls the two halves directly so the hit half inlines).
func (c *l1Cache) access(line int32) (hit bool, evicted int32, evictedMark bool, idx int) {
	if i := c.touch(line); i >= 0 {
		return true, -1, false, i
	}
	evicted, evictedMark, idx = c.fillVictim(line)
	return false, evicted, evictedMark, idx
}

// invalidate drops line if present, returning (wasPresent, wasMarked).
func (c *l1Cache) invalidate(line int32) (bool, bool) {
	if i := c.lookup(line); i >= 0 {
		m := c.slots[i].marked
		c.slots[i].tag = -1
		c.slots[i].marked = false
		return true, m
	}
	return false, false
}

// mark flags slot idx as transactionally marked.
func (c *l1Cache) mark(idx int) { c.slots[idx].marked = true }

// clearMark removes the transactional mark from line if present.
func (c *l1Cache) clearMark(line int32) {
	if i := c.lookup(line); i >= 0 {
		c.slots[i].marked = false
	}
}

// markedCountInSet returns how many ways of line's set are marked. Used by
// the failure-analysis profiler (Section 6.1 reports the maximum number of
// read-set lines mapping to a single L1 set).
func (c *l1Cache) markedCountInSet(line int32) int {
	base := c.setBase(line)
	set := c.slots[base : base+c.ways]
	n := 0
	for w := range set {
		if set[w].marked && set[w].tag != -1 {
			n++
		}
	}
	return n
}

// l2Cache models the shared, inclusive second-level cache. Evicting a line
// from L2 back-invalidates every L1 copy; if one of those copies was
// transactionally marked, the owning transaction aborts with CPS=COH — the
// surprising single-threaded "coherence" failures of Section 3's cache set
// test (the OS idle loop on a sibling strand displacing L2 lines).
//
// Like the L1, set selection is a mask. The victim preference reproduces
// the original scan exactly — note that it differs from the L1's: the
// *last* invalid way by index wins (the old loop kept overwriting the
// victim with each invalid way it passed), else the LRU way.
// l2Slot packs one L2 way's tag and LRU timestamp (16 bytes), for the
// same single-pass, cache-line-friendly layout as the L1.
type l2Slot struct {
	tag int32 // -1 = invalid
	age int64
}

type l2Cache struct {
	sets    int
	ways    int
	setMask int32
	slots   []l2Slot
	tick    int64
}

func newL2(sets, ways int) *l2Cache {
	c := &l2Cache{
		sets:    sets,
		ways:    ways,
		setMask: int32(sets - 1),
		slots:   make([]l2Slot, sets*ways),
	}
	for i := range c.slots {
		c.slots[i].tag = -1
	}
	return c
}

// access touches line, returning whether it hit and which line (if any) was
// evicted to make room.
func (c *l2Cache) access(line int32) (hit bool, evicted int32) {
	c.tick++
	base := int(line&c.setMask) * c.ways
	set := c.slots[base : base+c.ways]
	victim := 0
	for w := range set {
		s := &set[w]
		if s.tag == line {
			s.age = c.tick
			return true, -1
		}
		if s.tag == -1 {
			victim = w // last invalid way wins, as in the original scan
		} else if set[victim].tag != -1 && s.age < set[victim].age {
			victim = w
		}
	}
	v := &set[victim]
	evicted = v.tag
	v.tag = line
	v.age = c.tick
	return false, evicted
}
