package sim

// l1Cache models a strand's 4-way set-associative L1 data cache. Rock's
// 32 KB, 64-byte-line L1 has 128 sets of 4 ways; transactional read-set
// tracking lives here: a transactionally marked line that gets displaced
// aborts the transaction with CPS=LD, and five loads mapping to one 4-way
// set can never all be marked at once (the "cache set test" of Section 3).
type l1Cache struct {
	sets   int
	ways   int
	tags   []int32 // sets*ways entries; -1 = invalid
	age    []int64 // LRU timestamps
	marked []bool
	tick   int64
}

func newL1(sets, ways int) *l1Cache {
	c := &l1Cache{
		sets:   sets,
		ways:   ways,
		tags:   make([]int32, sets*ways),
		age:    make([]int64, sets*ways),
		marked: make([]bool, sets*ways),
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// lookup returns the way index holding line, or -1.
func (c *l1Cache) lookup(line int32) int {
	base := (int(line) % c.sets) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			return base + w
		}
	}
	return -1
}

// access touches line, filling it on a miss. It returns:
//
//	hit          — whether the line was already present,
//	evicted      — the line displaced to make room (-1 if none),
//	evictedMark  — whether the displaced line was transactionally marked,
//	idx          — the slot now holding the line.
//
// On a miss with all ways transactionally marked, the LRU *marked* way is
// displaced — that is the mechanism behind LD aborts: the hardware cannot
// keep the read set pinned.
func (c *l1Cache) access(line int32) (hit bool, evicted int32, evictedMark bool, idx int) {
	c.tick++
	if i := c.lookup(line); i >= 0 {
		c.age[i] = c.tick
		return true, -1, false, i
	}
	base := (int(line) % c.sets) * c.ways
	victim := base
	victimMarked := true
	// Prefer the LRU unmarked way; fall back to the LRU marked way.
	var bestUnmarked, bestMarked = -1, -1
	for w := base; w < base+c.ways; w++ {
		if c.tags[w] == -1 {
			bestUnmarked = w
			c.age[w] = 0
			break
		}
		if !c.marked[w] {
			if bestUnmarked == -1 || c.age[w] < c.age[bestUnmarked] {
				bestUnmarked = w
			}
		} else if bestMarked == -1 || c.age[w] < c.age[bestMarked] {
			bestMarked = w
		}
	}
	if bestUnmarked >= 0 {
		victim, victimMarked = bestUnmarked, false
	} else {
		victim, victimMarked = bestMarked, true
	}
	evicted = c.tags[victim]
	evictedMark = victimMarked && evicted != -1
	c.tags[victim] = line
	c.age[victim] = c.tick
	c.marked[victim] = false
	return false, evicted, evictedMark, victim
}

// invalidate drops line if present, returning (wasPresent, wasMarked).
func (c *l1Cache) invalidate(line int32) (bool, bool) {
	if i := c.lookup(line); i >= 0 {
		m := c.marked[i]
		c.tags[i] = -1
		c.marked[i] = false
		return true, m
	}
	return false, false
}

// mark flags slot idx as transactionally marked.
func (c *l1Cache) mark(idx int) { c.marked[idx] = true }

// clearMark removes the transactional mark from line if present.
func (c *l1Cache) clearMark(line int32) {
	if i := c.lookup(line); i >= 0 {
		c.marked[i] = false
	}
}

// markedCountInSet returns how many ways of line's set are marked. Used by
// the failure-analysis profiler (Section 6.1 reports the maximum number of
// read-set lines mapping to a single L1 set).
func (c *l1Cache) markedCountInSet(line int32) int {
	base := (int(line) % c.sets) * c.ways
	n := 0
	for w := base; w < base+c.ways; w++ {
		if c.marked[w] && c.tags[w] != -1 {
			n++
		}
	}
	return n
}

// l2Cache models the shared, inclusive second-level cache. Evicting a line
// from L2 back-invalidates every L1 copy; if one of those copies was
// transactionally marked, the owning transaction aborts with CPS=COH — the
// surprising single-threaded "coherence" failures of Section 3's cache set
// test (the OS idle loop on a sibling strand displacing L2 lines).
type l2Cache struct {
	sets int
	ways int
	tags []int32
	age  []int64
	tick int64
}

func newL2(sets, ways int) *l2Cache {
	c := &l2Cache{
		sets: sets,
		ways: ways,
		tags: make([]int32, sets*ways),
		age:  make([]int64, sets*ways),
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// access touches line, returning whether it hit and which line (if any) was
// evicted to make room.
func (c *l2Cache) access(line int32) (hit bool, evicted int32) {
	c.tick++
	base := (int(line) % c.sets) * c.ways
	victim := base
	for w := base; w < base+c.ways; w++ {
		if c.tags[w] == line {
			c.age[w] = c.tick
			return true, -1
		}
		if c.tags[w] == -1 {
			victim = w
			c.age[victim] = 0
		} else if c.age[w] < c.age[victim] {
			victim = w
		}
	}
	evicted = c.tags[victim]
	c.tags[victim] = line
	c.age[victim] = c.tick
	return false, evicted
}
