package sim

import "testing"

// This file is the differential pin of the continuation driver: the golden
// identity workload (golden_test.go) transcribed op-for-op into an explicit
// continuation state machine and run under Machine.RunStepped against the
// same digest matrix. Same heap decisions, same clocks, same RNG draws —
// byte-identical digests — or the step driver is wrong.
//
// The transcription follows the step-body discipline the driver demands:
//   - after every yieldable operation, check YieldPending and return false
//     without committing the operation's results (they are meaningless) or
//     advancing the machine's state index, so the re-invoked body re-runs
//     exactly that operation;
//   - every RNG draw or host-side mutation that precedes a yieldable
//     operation lives in its own guarded state, so it fires exactly once.

// goldenStepBody is goldenBody as a continuation machine. st is the state
// index within the current iteration's case; k is the inner loop counter;
// both reset when i advances.
func goldenStepBody(s *Strand, mem *Memory, arena, shared Addr, codePage int32) StepFn {
	id := s.ID()
	var (
		i, k, st int
		ok       bool
		v        Word
		addr     Addr
		val      Word
		isLoad   bool
		rtaken   bool
	)
	return func() bool {
		for i < 300 {
			switch i % 10 {
			case 0: // main-DTLB churn
				for k < 6 {
					pg := (i*37 + k*113 + id*59) % goldenArenaPages
					s.Load(arena + Addr(pg*PageWords) + Addr((i*7+k)%PageWords))
					if s.YieldPending() {
						return false
					}
					k++
				}
			case 1: // shared-line coherence traffic + predictor training
				a := shared + Addr(((i*5+id)%64)*WordsPerLine)
				if st == 0 {
					s.Store(a, Word(i*3+id))
					if s.YieldPending() {
						return false
					}
					st = 1
				}
				if st == 1 {
					s.CAS(a, 0, Word(i))
					if s.YieldPending() {
						return false
					}
					st = 2
				}
				if st == 2 {
					s.Add(a, 1)
					if s.YieldPending() {
						return false
					}
					st = 3
				}
				s.Branch(uint32(1000+i%17), (i+id)%3 == 0)
				if s.YieldPending() {
					return false
				}
			case 2: // read-write transaction with store-queue forwarding
				if st == 0 {
					s.TxBegin()
					if s.YieldPending() {
						return false
					}
					ok = true
					st = 1
				}
				for ok && k < 5 {
					a := shared + Addr(((i+k*3+id)%64)*WordsPerLine)
					if st == 1 {
						v2, ok2 := s.TxLoad(a)
						if s.YieldPending() {
							return false
						}
						v, ok = v2, ok2
						if !ok {
							break
						}
						st = 2
					}
					if st == 2 {
						ok2 := s.TxStore(a, v+1)
						if s.YieldPending() {
							return false
						}
						ok = ok2
						if !ok {
							break
						}
						st = 3
					}
					_, ok2 := s.TxLoad(a) // must forward from the store queue
					if s.YieldPending() {
						return false
					}
					ok = ok2
					st = 1
					k++
				}
				if ok {
					s.TxCommit()
					if s.YieldPending() {
						return false
					}
				}
			case 3: // wide write set
				if st == 0 {
					s.TxBegin()
					if s.YieldPending() {
						return false
					}
					ok = true
					st = 1
				}
				for ok && k < 20 {
					ok2 := s.TxStore(shared+Addr(k*WordsPerLine), Word(k))
					if s.YieldPending() {
						return false
					}
					ok = ok2
					k++
				}
				if ok {
					s.TxCommit()
					if s.YieldPending() {
						return false
					}
				}
			case 4: // long read set + UCTI branch
				if st == 0 {
					s.TxBegin()
					if s.YieldPending() {
						return false
					}
					ok = true
					st = 1
				}
				if st == 1 {
					for ok && k < 12 {
						pg := (i*11 + k*211 + id*31) % goldenArenaPages
						_, ok2 := s.TxLoad(arena + Addr(pg*PageWords) + Addr(k%PageWords))
						if s.YieldPending() {
							return false
						}
						ok = ok2
						k++
					}
					st = 2
				}
				if st == 2 {
					if ok {
						ok2 := s.TxBranch(uint32(2000+i%13), i%2 == 0, true)
						if s.YieldPending() {
							return false
						}
						ok = ok2
					}
					st = 3
				}
				if ok {
					s.TxCommit()
					if s.YieldPending() {
						return false
					}
				}
			case 5: // unsupported-instruction aborts
				if st == 0 {
					s.TxBegin()
					if s.YieldPending() {
						return false
					}
					st = 1
				}
				if st == 1 {
					t := s.TxTrap(i%29 == 0)
					if s.YieldPending() {
						return false
					}
					if t {
						st = 2
					} else {
						st = 9
					}
				}
				if st == 2 {
					t := s.TxExec(codePage)
					if s.YieldPending() {
						return false
					}
					if t {
						st = 3
					} else {
						st = 9
					}
				}
				if st == 3 {
					switch i % 3 {
					case 0:
						s.TxSaveRestore()
						if s.YieldPending() {
							return false
						}
						st = 9
					case 1:
						s.TxDiv()
						if s.YieldPending() {
							return false
						}
						st = 9
					default:
						s.TxStackWrite()
						if s.YieldPending() {
							return false
						}
						st = 4
					}
				}
				if st == 4 {
					s.TxAbortTrap()
					if s.YieldPending() {
						return false
					}
				}
			case 6: // OS events: remap, TLB flush, code fetch
				if st == 0 {
					// Host-side OS events cannot yield; their own state keeps
					// them from replaying if a later operation does.
					if id == 0 && i%60 == 6 {
						mem.Remap(arena, 40*PageWords)
					}
					if (i+id)%90 == 16 {
						s.FlushTLBs()
					}
					st = 1
				}
				if st == 1 {
					s.Exec(codePage)
					if s.YieldPending() {
						return false
					}
					st = 2
				}
				s.Load(arena + Addr((i%goldenArenaPages)*PageWords))
				if s.YieldPending() {
					return false
				}
			case 7: // transactional touch of possibly-remapped pages
				pg := (i*3 + id) % 40
				if st == 0 {
					s.TxBegin()
					if s.YieldPending() {
						return false
					}
					st = 1
				}
				if st == 1 {
					_, ok2 := s.TxLoad(arena + Addr(pg*PageWords))
					if s.YieldPending() {
						return false
					}
					if ok2 {
						st = 2
					} else {
						st = 9
					}
				}
				if st == 2 {
					ok2 := s.TxStore(arena+Addr(pg*PageWords), Word(i))
					if s.YieldPending() {
						return false
					}
					if ok2 {
						st = 3
					} else {
						st = 9
					}
				}
				if st == 3 {
					s.TxCommit()
					if s.YieldPending() {
						return false
					}
				}
			case 8: // pure compute + data-dependent branch
				if st == 0 {
					s.Advance(int64(10 + i%7))
					if s.YieldPending() {
						return false
					}
					st = 1
				}
				if st == 1 {
					rtaken = s.Rand()%4 != 0
					st = 2
				}
				s.Branch(uint32(i%23), rtaken)
				if s.YieldPending() {
					return false
				}
			default: // strand-RNG-driven mix
				if st == 0 {
					if s.RandIntn(2) == 0 {
						isLoad = true
						addr = shared + Addr(s.RandIntn(64)*WordsPerLine)
					} else {
						isLoad = false
						addr = shared + Addr(s.RandIntn(64)*WordsPerLine)
						val = s.Rand()
					}
					st = 1
				}
				if isLoad {
					s.Load(addr)
				} else {
					s.Store(addr, val)
				}
				if s.YieldPending() {
					return false
				}
			}
			k, st = 0, 0
			i++
		}
		return true
	}
}

// goldenStepRun is goldenRun driven by the continuation machine.
func goldenStepRun(c goldenCase) (maxClock int64, digest string) {
	cfg := goldenConfig(c)
	m := New(cfg)
	mem := m.Mem()
	arena := mem.Alloc(goldenArenaPages*PageWords, PageWords)
	shared := mem.AllocLines(64 * WordsPerLine)
	code := mem.Alloc(PageWords, PageWords)
	codePage := PageOf(code)

	m.RunStepped(func(s *Strand) StepFn {
		return goldenStepBody(s, mem, arena, shared, codePage)
	})

	return m.MaxClock(), goldenFold(m, cfg)
}

// TestGoldenStepDriverIdentity runs the continuation-machine transcription
// of the golden workload under RunStepped across the full identity matrix
// and requires the exact digests the coroutine driver pins: the step driver
// must make the same handoff decisions at the same clocks with the same
// randomness, byte for byte.
func TestGoldenStepDriverIdentity(t *testing.T) {
	for _, c := range goldenMatrix {
		maxClock, digest := goldenStepRun(c)
		if maxClock != c.maxClock || digest != c.digest {
			t.Errorf("%s: step driver got (maxClock=%d, digest=%s), pinned (maxClock=%d, digest=%s)",
				c.name, maxClock, digest, c.maxClock, c.digest)
		}
	}
}

// TestRunSteppedRejectsSimWorkInStart pins the start-callback contract:
// constructing continuations must not advance simulated time.
func TestRunSteppedRejectsSimWorkInStart(t *testing.T) {
	m := New(DefaultConfig(2))
	defer func() {
		if recover() == nil {
			t.Fatal("RunStepped accepted a start callback that performed simulated work")
		}
	}()
	m.RunStepped(func(s *Strand) StepFn {
		s.Advance(1)
		return func() bool { return true }
	})
}
