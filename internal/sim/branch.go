package sim

// branchPredictor is a gshare predictor: a table of 2-bit saturating
// counters indexed by the branch PC xor-folded with global history. Data-
// dependent branches — walking a red-black tree, extract-min on a heap —
// mispredict often, and on Rock a mispredicted branch inside a transaction
// can abort it (CPS=CTI). The predictor state persists across transaction
// attempts, which both helps retries (the predictor learns) and is a source
// of the probe effects the paper describes (fail-path code perturbing
// predictor state).
type branchPredictor struct {
	table   []uint8
	history uint32
	mask    uint32
}

const branchTableBits = 12

func newBranchPredictor() *branchPredictor {
	return &branchPredictor{
		table: make([]uint8, 1<<branchTableBits),
		mask:  1<<branchTableBits - 1,
	}
}

// predict records the outcome of the branch at pc and reports whether the
// prediction was wrong. The two outcome arms are fully split (rather than
// computing the prediction up front and comparing) so the function fits the
// compiler's inlining budget: it is the single hottest call in tree and
// list walks, where call overhead rivals the table update itself. Both
// forms compute the identical counter update, history shift, and
// mispredict verdict.
func (b *branchPredictor) predict(pc uint32, taken bool) bool {
	idx := (pc ^ b.history) & b.mask
	ctr := b.table[idx]
	if taken {
		if ctr < 3 {
			b.table[idx] = ctr + 1
		}
		b.history = (b.history<<1 | 1) & b.mask
		return ctr < 2
	}
	if ctr > 0 {
		b.table[idx] = ctr - 1
	}
	b.history = (b.history << 1) & b.mask
	return ctr >= 2
}
