package sim

import "fmt"

// FaultPlan configures deterministic fault injection: seeded adversarial
// events that stress a TM system's retry policy by manufacturing the abort
// causes the paper catalogues in Table 1, without changing the workload.
//
// Faults are drawn from a dedicated per-strand RNG stream (seeded from the
// machine seed, the plan's Seed and the strand ID) that is only created
// when the plan enables at least one probabilistic fault — so a machine
// with a zero FaultPlan is bit-for-bit identical to one built before fault
// injection existed, and enabling one fault class never perturbs the draws
// of another run's main RNG stream.
//
// Every fault fires through the simulator's real abort machinery (doom
// bits, micro-DTLB misses, queue-capacity checks), so the CPS values a
// policy observes under injection are the same values the organic versions
// of those events produce.
type FaultPlan struct {
	// Seed perturbs the fault RNG stream independently of the machine
	// seed, so experiments can vary the fault schedule while holding the
	// workload schedule fixed (or vice versa).
	Seed uint64

	// InterruptProb is the per-transactional-access probability of a
	// spurious asynchronous interrupt dooming the in-flight transaction
	// with CPS=ASYNC — the "interrupts, TLB misses, etc." background noise
	// of Section 3 made adversarial.
	InterruptProb float64
	// TLBShootdownProb is the per-transactional-store probability that the
	// store's page is evicted from the micro-DTLB just before translation
	// (an adversarial shootdown racing the store). The store then misses
	// and aborts with CPS=ST through the normal Section 3.1 path; because
	// the failing access re-warms the mapping, a retry succeeds — exactly
	// the transient the paper's dummy-CAS warmup exists to avoid.
	TLBShootdownProb float64
	// InvalidateProb is the per-transactional-access probability that an
	// adversary claims exclusive ownership of a line the transaction has
	// marked, dooming it with CPS=COH (requester-wins, with the requester
	// played by the fault injector). Fires only once the attempt has
	// marked at least one line.
	InvalidateProb float64
	// EvictMarkedProb is the per-transactional-access probability that a
	// randomly chosen marked line of the attempt is displaced from the
	// strand's own L1 (an adversarial capacity/conflict eviction). Under
	// the default zero-tolerance design the transaction dooms with CPS=LD;
	// under a sticky-set design (Config.HTM.StickyLines > 0) the spill is
	// absorbed until the overflow bound, after which it dooms with
	// CPS=LD|SIZ — the knob exists precisely to exercise that axis.
	EvictMarkedProb float64

	// SqueezeStoreQueue, when nonzero, overrides the per-bank store-queue
	// capacity downward (or upward) regardless of mode — a capacity
	// squeeze that manufactures ST|SIZ overflows the way SE mode does in
	// Section 8.1, but tunable.
	SqueezeStoreQueue int
	// SqueezeDeferredQueue, when nonzero, overrides the deferred-queue
	// capacity, manufacturing SIZ aborts from load misses.
	SqueezeDeferredQueue int
}

// probabilistic reports whether any per-access fault dice need rolling
// (capacity squeezes are static overrides and need no RNG).
func (f FaultPlan) probabilistic() bool {
	return f.InterruptProb > 0 || f.TLBShootdownProb > 0 || f.InvalidateProb > 0 ||
		f.EvictMarkedProb > 0
}

// Enabled reports whether the plan injects anything at all.
func (f FaultPlan) Enabled() bool {
	return f.probabilistic() || f.SqueezeStoreQueue > 0 || f.SqueezeDeferredQueue > 0
}

// faultInjector is the per-strand fault state: the plan plus a private RNG
// stream. It exists only when the plan has a probabilistic component, so
// the hot-path hooks reduce to one nil check when faults are off.
type faultInjector struct {
	plan FaultPlan
	rng  rng
}

// newFaultInjector builds a strand's injector, or returns nil when the
// plan rolls no dice. The RNG stream is decorrelated from the strand's
// main stream by distinct odd multipliers.
func newFaultInjector(cfg *Config, id int) *faultInjector {
	f := cfg.Faults
	if !f.probabilistic() {
		return nil
	}
	return &faultInjector{
		plan: f,
		rng: newRNG(cfg.Seed*0xbf58476d1ce4e5b9 +
			f.Seed*0x94d049bb133111eb +
			uint64(id)*0x2545f4914f6cdd1d + 1),
	}
}

// onTxAccess rolls the per-access fault dice for the strand's in-flight
// transaction: a spurious interrupt dooms it with ASYNC; an adversarial
// invalidation of a marked line dooms it with COH. Dooming (rather than
// aborting inline) delivers the failure at the access's own checkDoom,
// the same delivery path organic asynchronous events use.
func (f *faultInjector) onTxAccess(s *Strand) {
	p := &f.plan
	if p.InterruptProb > 0 && f.rng.Chance(p.InterruptProb) {
		s.doom(asyncBit)
	}
	if p.InvalidateProb > 0 && len(s.tx.marked) > 0 && f.rng.Chance(p.InvalidateProb) {
		s.doom(cohBit)
	}
	if p.EvictMarkedProb > 0 && len(s.tx.marked) > 0 && f.rng.Chance(p.EvictMarkedProb) {
		f.evictMarked(s)
	}
}

// evictMarked displaces one randomly chosen marked line of the in-flight
// attempt from the strand's own L1, exercising the set-eviction-tolerance
// axis: the displacement flows through the same spillMarked decision the
// organic fillMiss path uses, so a sticky design absorbs it (until the
// bound) and the default design dooms with the same reason an organic
// capacity eviction produces. Doomed (not aborted inline), so delivery
// happens at the access's own checkDoom like every asynchronous event.
func (f *faultInjector) evictMarked(s *Strand) {
	line := s.tx.marked[f.rng.Intn(len(s.tx.marked))]
	wasPresent, _ := s.l1.invalidate(line)
	if !wasPresent {
		// Already absent from the L1 (e.g. an earlier spill made it
		// sticky); nothing to displace.
		return
	}
	lm := &s.m.mem.lines[line]
	lm.present &^= s.bit
	if !s.spillMarked(lm) {
		s.doom(s.evictAbortReason())
	}
}

// onTxStorePage models a TLB shootdown racing a transactional store: the
// page's micro-DTLB entry is evicted just before translation, so the
// store misses and aborts with CPS=ST through the normal path (which also
// re-warms the mapping from the main DTLB, so retries succeed).
func (f *faultInjector) onTxStorePage(s *Strand, page int32) {
	if f.plan.TLBShootdownProb > 0 && f.rng.Chance(f.plan.TLBShootdownProb) {
		s.mmu.micro.evict(page)
	}
}

// FaultProfileNames lists the named fault profiles in experiment order;
// the first is always the no-fault baseline.
func FaultProfileNames() []string {
	return []string{"none", "interrupts", "tlb", "inval", "evict", "squeeze"}
}

// FaultProfile returns a named fault plan for the policy-ablation
// experiments: "none" (baseline), "interrupts" (spurious ASYNC),
// "tlb" (micro-DTLB shootdowns on stores), "inval" (adversarial COH
// invalidations), "evict" (adversarial displacement of marked lines from
// the attempt's own L1 — LD dooms under the default design, absorbed up
// to the sticky bound under Config.HTM.StickyLines) and "squeeze"
// (store/deferred queue capacity squeeze).
// It panics on unknown names; profiles are always requested from code.
func FaultProfile(name string) FaultPlan {
	switch name {
	case "none":
		return FaultPlan{}
	case "interrupts":
		return FaultPlan{InterruptProb: 0.02}
	case "tlb":
		return FaultPlan{TLBShootdownProb: 0.35}
	case "inval":
		return FaultPlan{InvalidateProb: 0.02}
	case "evict":
		return FaultPlan{EvictMarkedProb: 0.02}
	case "squeeze":
		return FaultPlan{SqueezeStoreQueue: 4, SqueezeDeferredQueue: 8}
	}
	panic(fmt.Sprintf("sim: unknown fault profile %q (known: %v)", name, FaultProfileNames()))
}
