package sim

import "testing"

// TestMicroDTLBDefaultsConsistent guards against the configuration drift
// where DefaultConfig advertised a 64-entry micro-DTLB while New's
// zero-value fallback silently installed an 8-entry one: a hand-rolled
// Config that left MicroDTLB unset simulated a machine with 8x the
// store-TLB pressure (and thus wildly more ST-flagged transaction
// failures) than the documented default. Both paths must agree.
// TestConfigDigest pins the properties the experiment runner's cache
// keys depend on: the digest is stable for equal configs and changes
// when any behaviour-relevant field changes — including cost-table
// entries, which live in a nested struct.
func TestConfigDigest(t *testing.T) {
	base := DefaultConfig(4)
	if base.Digest() != DefaultConfig(4).Digest() {
		t.Fatal("equal configs produced different digests")
	}
	mutations := map[string]func(*Config){
		"strands":  func(c *Config) { c.Strands = 8 },
		"memwords": func(c *Config) { c.MemWords = 1 << 23 },
		"mode":     func(c *Config) { c.Mode = SE },
		"seed":     func(c *Config) { c.Seed = 7 },
		"quantum":  func(c *Config) { c.Quantum = 8 },
		"l1sets":   func(c *Config) { c.L1Sets = 256 },
		"sq/bank":  func(c *Config) { c.StoreQueuePerBank = 4 },
		"cost":     func(c *Config) { c.Costs.L2Hit = 99 },
		"ucti":     func(c *Config) { c.UCTIAbortProb = 0.99 },
	}
	for name, mutate := range mutations {
		c := DefaultConfig(4)
		mutate(&c)
		if c.Digest() == base.Digest() {
			t.Errorf("changing %s did not change the config digest", name)
		}
	}
}

func TestMicroDTLBDefaultsConsistent(t *testing.T) {
	def := DefaultConfig(1)
	if def.MicroDTLB != DefaultMicroDTLB {
		t.Errorf("DefaultConfig.MicroDTLB = %d, want DefaultMicroDTLB (%d)", def.MicroDTLB, DefaultMicroDTLB)
	}
	m := New(Config{Strands: 1, MemWords: 1 << 16})
	if got := m.Config().MicroDTLB; got != DefaultMicroDTLB {
		t.Errorf("New zero-value fallback MicroDTLB = %d, want DefaultMicroDTLB (%d)", got, DefaultMicroDTLB)
	}
	if m.Config().MicroDTLB != def.MicroDTLB {
		t.Errorf("New fallback (%d) and DefaultConfig (%d) disagree", m.Config().MicroDTLB, def.MicroDTLB)
	}
}
