package sim

import "testing"

// TestMicroDTLBDefaultsConsistent guards against the configuration drift
// where DefaultConfig advertised a 64-entry micro-DTLB while New's
// zero-value fallback silently installed an 8-entry one: a hand-rolled
// Config that left MicroDTLB unset simulated a machine with 8x the
// store-TLB pressure (and thus wildly more ST-flagged transaction
// failures) than the documented default. Both paths must agree.
func TestMicroDTLBDefaultsConsistent(t *testing.T) {
	def := DefaultConfig(1)
	if def.MicroDTLB != DefaultMicroDTLB {
		t.Errorf("DefaultConfig.MicroDTLB = %d, want DefaultMicroDTLB (%d)", def.MicroDTLB, DefaultMicroDTLB)
	}
	m := New(Config{Strands: 1, MemWords: 1 << 16})
	if got := m.Config().MicroDTLB; got != DefaultMicroDTLB {
		t.Errorf("New zero-value fallback MicroDTLB = %d, want DefaultMicroDTLB (%d)", got, DefaultMicroDTLB)
	}
	if m.Config().MicroDTLB != def.MicroDTLB {
		t.Errorf("New fallback (%d) and DefaultConfig (%d) disagree", m.Config().MicroDTLB, def.MicroDTLB)
	}
}
