package sim

import (
	"strings"
	"testing"
)

// TestMicroDTLBDefaultsConsistent guards against the configuration drift
// where DefaultConfig advertised a 64-entry micro-DTLB while New's
// zero-value fallback silently installed an 8-entry one: a hand-rolled
// Config that left MicroDTLB unset simulated a machine with 8x the
// store-TLB pressure (and thus wildly more ST-flagged transaction
// failures) than the documented default. Both paths must agree.
// TestConfigDigest pins the properties the experiment runner's cache
// keys depend on: the digest is stable for equal configs and changes
// when any behaviour-relevant field changes — including cost-table
// entries, which live in a nested struct.
func TestConfigDigest(t *testing.T) {
	base := DefaultConfig(4)
	if base.Digest() != DefaultConfig(4).Digest() {
		t.Fatal("equal configs produced different digests")
	}
	mutations := map[string]func(*Config){
		"strands":  func(c *Config) { c.Strands = 8 },
		"memwords": func(c *Config) { c.MemWords = 1 << 23 },
		"mode":     func(c *Config) { c.Mode = SE },
		"seed":     func(c *Config) { c.Seed = 7 },
		"quantum":  func(c *Config) { c.Quantum = 8 },
		"l1sets":   func(c *Config) { c.L1Sets = 256 },
		"sq/bank":  func(c *Config) { c.StoreQueuePerBank = 4 },
		"cost":     func(c *Config) { c.Costs.L2Hit = 99 },
		"ucti":     func(c *Config) { c.UCTIAbortProb = 0.99 },
		// The HTM design axes must key the cache: serving a Rock result
		// for an eager-VM config (or vice versa) would silently corrupt
		// every htmdesign sweep.
		"htm/vm":      func(c *Config) { c.HTM.VM = VMEager },
		"htm/detect":  func(c *Config) { c.HTM.Detect = DetectLazy },
		"htm/resolve": func(c *Config) { c.HTM.Resolve = ResCommitterWins },
		"htm/sticky":  func(c *Config) { c.HTM.StickyLines = 8 },
		"cost/nack":   func(c *Config) { c.Costs.NackStall = 99 },
	}
	for name, mutate := range mutations {
		c := DefaultConfig(4)
		mutate(&c)
		if c.Digest() == base.Digest() {
			t.Errorf("changing %s did not change the config digest", name)
		}
	}
}

// TestNewRejectsNonPowerOfTwoGeometry pins the loud-failure contract the
// mask-indexing fast paths depend on: every cache/TLB geometry parameter
// must be a power of two, and the panic message must name the offending
// field, the bad value, and the next power of two to round up to.
func TestNewRejectsNonPowerOfTwoGeometry(t *testing.T) {
	cases := []struct {
		field   string
		mutate  func(*Config)
		wantMsg string
	}{
		{"L1Sets", func(c *Config) { c.L1Sets = 100 },
			"L1Sets must be a power of two for mask indexing, got 100 (round up to 128)"},
		{"L2Sets", func(c *Config) { c.L2Sets = 5000 },
			"L2Sets must be a power of two for mask indexing, got 5000 (round up to 8192)"},
		{"MicroDTLB", func(c *Config) { c.MicroDTLB = 48 },
			"MicroDTLB must be a power of two for mask indexing, got 48 (round up to 64)"},
		{"MainDTLB", func(c *Config) { c.MainDTLB = 513 },
			"MainDTLB must be a power of two for mask indexing, got 513 (round up to 1024)"},
		{"ITLB", func(c *Config) { c.ITLB = -8 },
			"ITLB must be a power of two for mask indexing, got -8"},
	}
	for _, tc := range cases {
		t.Run(tc.field, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("New accepted non-power-of-two %s", tc.field)
				}
				msg, ok := r.(string)
				if !ok {
					t.Fatalf("panic value %v (%T), want string", r, r)
				}
				if !strings.Contains(msg, tc.wantMsg) {
					t.Fatalf("panic %q does not contain %q", msg, tc.wantMsg)
				}
			}()
			cfg := DefaultConfig(1)
			cfg.MemWords = 1 << 16
			tc.mutate(&cfg)
			New(cfg)
		})
	}
}

// TestNewAcceptsPowerOfTwoGeometry is the positive half: a non-default but
// valid power-of-two geometry constructs fine.
func TestNewAcceptsPowerOfTwoGeometry(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.MemWords = 1 << 16
	cfg.L1Sets, cfg.L2Sets = 256, 8192
	cfg.MicroDTLB, cfg.MainDTLB, cfg.ITLB = 32, 1024, 128
	m := New(cfg)
	if m.Config().L1Sets != 256 {
		t.Fatalf("config not honoured: L1Sets = %d", m.Config().L1Sets)
	}
}

func TestMicroDTLBDefaultsConsistent(t *testing.T) {
	def := DefaultConfig(1)
	if def.MicroDTLB != DefaultMicroDTLB {
		t.Errorf("DefaultConfig.MicroDTLB = %d, want DefaultMicroDTLB (%d)", def.MicroDTLB, DefaultMicroDTLB)
	}
	m := New(Config{Strands: 1, MemWords: 1 << 16})
	if got := m.Config().MicroDTLB; got != DefaultMicroDTLB {
		t.Errorf("New zero-value fallback MicroDTLB = %d, want DefaultMicroDTLB (%d)", got, DefaultMicroDTLB)
	}
	if m.Config().MicroDTLB != def.MicroDTLB {
		t.Errorf("New fallback (%d) and DefaultConfig (%d) disagree", m.Config().MicroDTLB, def.MicroDTLB)
	}
}
