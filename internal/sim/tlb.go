package sim

import "math/bits"

// tlbEntry is one TLB slot. The fields a probe touches (page, gen) share a
// cache line with the intrusive LRU links so a hit costs one indexed load.
type tlbEntry struct {
	page int32  // -1 = free
	gen  uint32 // page generation at fill time
	next int32  // next-more-recently-used slot (-1 at head)
	prev int32  // next-less-recently-used slot (-1 at tail)
}

// tlb is a fully associative, LRU translation buffer with generation
// checking: entries become stale when the OS remaps the page (Memory.Remap
// bumps the page generation), which is how "re-mmap the memory ... has the
// effect of removing any TLB mappings" (Section 3) is modelled.
//
// The implementation is O(1) per probe and per fill, but is constrained to
// reproduce the original linear-scan implementation's decisions *exactly*
// (pinned by TestGoldenCycleIdentity):
//
//   - a page→slot index replaces the O(entries) probe scan;
//   - an intrusive doubly-linked list keeps exact LRU order. The old code
//     stamped a monotonic tick into age[slot] on every touch and evicted
//     the minimum-age slot; ticks were unique, so min-age is precisely the
//     list tail;
//   - a free-slot bitmap reproduces the old "first invalid slot by index"
//     victim preference (find-first-set = lowest index), which matters
//     because stale-generation probes punch holes at arbitrary indexes.
type tlb struct {
	n      int
	ent    []tlbEntry
	head   int32    // most recently used slot, -1 when empty
	tail   int32    // least recently used slot, -1 when empty
	slotOf []int32  // page -> slot+1 (0 = not resident); grown on demand
	free   []uint64 // bitmap of free slots
	nfree  int
}

func newTLB(entries int) *tlb {
	t := &tlb{}
	t.init(entries)
	return t
}

func (t *tlb) init(entries int) {
	t.n = entries
	t.ent = make([]tlbEntry, entries)
	t.head = -1
	t.tail = -1
	t.free = make([]uint64, (entries+63)/64)
	for i := range t.ent {
		t.ent[i].page = -1
	}
	t.setAllFree()
}

// reserve pre-sizes the page→slot index so the hot path never grows it.
func (t *tlb) reserve(pages int) {
	if pages > len(t.slotOf) {
		grown := make([]int32, pages)
		copy(grown, t.slotOf)
		t.slotOf = grown
	}
}

func (t *tlb) setAllFree() {
	for i := range t.free {
		t.free[i] = ^uint64(0)
	}
	// Mask off the bits beyond the last slot so firstFree never returns one.
	if rem := t.n % 64; rem != 0 {
		t.free[len(t.free)-1] = (1 << uint(rem)) - 1
	}
	t.nfree = t.n
}

// firstFree returns the lowest-index free slot; the caller guarantees one
// exists. This is the old implementation's "first pageOf[i] == -1 wins"
// victim preference.
func (t *tlb) firstFree() int32 {
	for w, word := range t.free {
		if word != 0 {
			return int32(w*64 + bits.TrailingZeros64(word))
		}
	}
	panic("sim: tlb.firstFree on full TLB")
}

// ---- intrusive LRU list (head = MRU, tail = LRU) ----

func (t *tlb) unlink(s int32) {
	e := &t.ent[s]
	if e.prev >= 0 {
		t.ent[e.prev].next = e.next
	} else {
		t.tail = e.next
	}
	if e.next >= 0 {
		t.ent[e.next].prev = e.prev
	} else {
		t.head = e.prev
	}
}

func (t *tlb) pushMRU(s int32) {
	e := &t.ent[s]
	e.prev = t.head
	e.next = -1
	if t.head >= 0 {
		t.ent[t.head].next = s
	} else {
		t.tail = s
	}
	t.head = s
}

// moveToFront unlinks s — which the caller guarantees is resident and not
// already the head — and reinstalls it as MRU. This is unlink+pushMRU with
// the branches those guarantees make impossible removed.
func (t *tlb) moveToFront(s int32) {
	e := &t.ent[s]
	t.ent[e.next].prev = e.prev // e.next >= 0: s is not the head
	if e.prev >= 0 {
		t.ent[e.prev].next = e.next
	} else {
		t.tail = e.next
	}
	e.prev = t.head
	e.next = -1
	t.ent[t.head].next = s // head >= 0: the list holds at least s
	t.head = s
}

// slot returns the resident slot for page, or -1.
func (t *tlb) slot(page int32) int32 {
	if int(page) >= len(t.slotOf) {
		return -1
	}
	return t.slotOf[page] - 1
}

// drop frees the slot holding page (stale generation or flush).
func (t *tlb) drop(s int32) {
	t.slotOf[t.ent[s].page] = 0
	t.ent[s].page = -1
	t.unlink(s)
	t.free[s/64] |= 1 << uint(s%64)
	t.nfree++
}

// evict drops page's mapping if resident (the fault injector's TLB
// shootdown); a non-resident page is a no-op.
func (t *tlb) evict(page int32) {
	if s := t.slot(page); s >= 0 {
		t.drop(s)
	}
}

// lookup reports whether a current-generation mapping for page is present.
// The common cases — the probed page is the most or second-most recently
// used, which covers code alternating between a data structure's page and
// a metadata page — are answered without the slot-index probe. A head hit
// needs no LRU maintenance; a second-position hit performs exactly the
// unlink+pushMRU that lookupSlow would, so both fast paths leave the TLB
// in the identical state.
func (t *tlb) lookup(page int32, gen uint32) bool {
	if h := t.head; h >= 0 {
		e := &t.ent[h]
		if e.page == page && e.gen == gen {
			return true
		}
		if s := e.prev; s >= 0 {
			if e2 := &t.ent[s]; e2.page == page && e2.gen == gen {
				t.moveToFront(s)
				return true
			}
		}
	}
	return t.lookupSlow(page, gen)
}

func (t *tlb) lookupSlow(page int32, gen uint32) bool {
	s := t.slot(page)
	if s < 0 {
		return false
	}
	if t.ent[s].gen == gen {
		if t.head != s {
			t.moveToFront(s)
		}
		return true
	}
	// Stale mapping: drop it.
	t.drop(s)
	return false
}

// fill installs a mapping for page, evicting the LRU entry if needed.
func (t *tlb) fill(page int32, gen uint32) {
	if s := t.slot(page); s >= 0 {
		// Already resident (never reached from the machine paths, which
		// probe before filling): refresh in place.
		t.ent[s].gen = gen
		if t.head != s {
			t.moveToFront(s)
		}
		return
	}
	var victim int32
	if t.nfree > 0 {
		victim = t.firstFree()
		t.free[victim/64] &^= 1 << uint(victim%64)
		t.nfree--
	} else {
		victim = t.tail
		t.slotOf[t.ent[victim].page] = 0
		t.unlink(victim)
	}
	if int(page) >= len(t.slotOf) {
		t.reserve(int(page) + 1)
	}
	t.ent[victim].page = page
	t.ent[victim].gen = gen
	t.slotOf[page] = victim + 1
	t.pushMRU(victim)
}

// flush drops every entry (used on simulated context switches).
func (t *tlb) flush() {
	for s := t.head; s >= 0; s = t.ent[s].prev {
		t.slotOf[t.ent[s].page] = 0
		t.ent[s].page = -1
	}
	t.head, t.tail = -1, -1
	t.setAllFree()
}

// mmu bundles a strand's translation state: a small micro-DTLB backed by a
// larger main DTLB, plus an instruction TLB. Rock fails a transactional
// store that misses the micro-DTLB (CPS=ST); because the failing access
// generates an MMU request, the mapping is established from the higher
// levels and a retry succeeds — unless no mapping exists at any level, in
// which case only software TLB warmup (the "dummy CAS" idiom) helps.
// The three TLBs are embedded by value (and mmu itself is embedded by
// value in Strand), so a translation probe is one indexed load off the
// strand rather than a pointer chase per level.
type mmu struct {
	micro tlb
	main  tlb
	itlb  tlb
}

func (u *mmu) init(microEntries, mainEntries, itlbEntries int) {
	u.micro.init(microEntries)
	u.main.init(mainEntries)
	u.itlb.init(itlbEntries)
}

// reserve pre-sizes every TLB's page index for a machine with the given
// page count, keeping slotOf growth off the hot path.
func (u *mmu) reserve(pages int) {
	u.micro.reserve(pages)
	u.main.reserve(pages)
	u.itlb.reserve(pages)
}
