package sim

// tlb is a fully associative, LRU translation buffer with generation
// checking: entries become stale when the OS remaps the page (Memory.Remap
// bumps the page generation), which is how "re-mmap the memory ... has the
// effect of removing any TLB mappings" (Section 3) is modelled.
type tlb struct {
	entries int
	pageOf  []int32
	genOf   []uint32
	age     []int64
	tick    int64
}

func newTLB(entries int) *tlb {
	t := &tlb{
		entries: entries,
		pageOf:  make([]int32, entries),
		genOf:   make([]uint32, entries),
		age:     make([]int64, entries),
	}
	for i := range t.pageOf {
		t.pageOf[i] = -1
	}
	return t
}

// lookup reports whether a current-generation mapping for page is present.
func (t *tlb) lookup(page int32, gen uint32) bool {
	t.tick++
	for i := 0; i < t.entries; i++ {
		if t.pageOf[i] == page {
			if t.genOf[i] == gen {
				t.age[i] = t.tick
				return true
			}
			// Stale mapping: drop it.
			t.pageOf[i] = -1
			return false
		}
	}
	return false
}

// fill installs a mapping for page, evicting the LRU entry if needed.
func (t *tlb) fill(page int32, gen uint32) {
	t.tick++
	victim := 0
	for i := 0; i < t.entries; i++ {
		if t.pageOf[i] == page || t.pageOf[i] == -1 {
			victim = i
			break
		}
		if t.age[i] < t.age[victim] {
			victim = i
		}
	}
	t.pageOf[victim] = page
	t.genOf[victim] = gen
	t.age[victim] = t.tick
}

// flush drops every entry (used on simulated context switches).
func (t *tlb) flush() {
	for i := range t.pageOf {
		t.pageOf[i] = -1
	}
}

// mmu bundles a strand's translation state: a small micro-DTLB backed by a
// larger main DTLB, plus an instruction TLB. Rock fails a transactional
// store that misses the micro-DTLB (CPS=ST); because the failing access
// generates an MMU request, the mapping is established from the higher
// levels and a retry succeeds — unless no mapping exists at any level, in
// which case only software TLB warmup (the "dummy CAS" idiom) helps.
type mmu struct {
	micro *tlb
	main  *tlb
	itlb  *tlb
}

func newMMU(microEntries, mainEntries, itlbEntries int) *mmu {
	return &mmu{
		micro: newTLB(microEntries),
		main:  newTLB(mainEntries),
		itlb:  newTLB(itlbEntries),
	}
}
