package sim

import (
	"rocktm/internal/cps"
	"rocktm/internal/obs"
)

// CPS bit values used inside the simulator core; they are numerically
// identical to the cps package's bits (asserted by tests) but kept as plain
// uint32 so the hot paths stay allocation- and conversion-free.
const (
	exogBit  = uint32(cps.EXOG)
	cohBit   = uint32(cps.COH)
	tccBit   = uint32(cps.TCC)
	instBit  = uint32(cps.INST)
	precBit  = uint32(cps.PREC)
	asyncBit = uint32(cps.ASYNC)
	sizBit   = uint32(cps.SIZ)
	ldBit    = uint32(cps.LD)
	stBit    = uint32(cps.ST)
	ctiBit   = uint32(cps.CTI)
	fpBit    = uint32(cps.FP)
	uctiBit  = uint32(cps.UCTI)
)

// txnState is the per-strand checkpoint state of an in-flight hardware
// transaction.
type txnState struct {
	active bool
	doomed uint32 // pending failure reasons, delivered at next instruction
	cpsReg uint32 // CPS register: reasons for the most recent failure

	marked []int32 // lines transactionally marked in this attempt

	storeAddrs []Addr
	storeVals  []Word
	bankCount  [2]int

	// fwd indexes storeAddrs by address (latest entry wins) so TxLoad's
	// read-own-writes forwarding is O(1) instead of a queue scan; lineSet
	// holds the distinct lines in the store queue (entries coalesce at
	// line granularity) so TxStore's bank-occupancy check is O(1) too.
	// Both clear in O(1) via epoch bump at TxBegin.
	fwd     *u32map
	lineSet *u32map

	deferred       int
	lastLoadMissed bool

	// Same-line fast path for TxLoad: the line validated by the previous
	// full-path TxLoad of this attempt, its L1 slot, and the page
	// generation observed then. A repeat load of the same line (runs of
	// field accesses on one node) can skip translation, the fill scan, the
	// mark and the conflict broadcast — see TxLoad for the invariants.
	lastLine int32
	lastIdx  int32
	lastGen  uint32

	reads, writes int
	upgrades      int // lines read first, written later
	stackWrites   int

	// Non-default HTM design state (Config.HTM); all three stay zero under
	// the Rock default. sticky counts marked-line displacements absorbed by
	// the sticky overflow set this attempt; rolledBack counts undo-log
	// entries a remote conflict already restored under eager version
	// management (their LogWrite cost is charged when the abort is
	// delivered); ts is the machine-wide begin sequence number timestamp
	// arbitration orders transactions by.
	sticky     int
	rolledBack int
	ts         uint64
}

// TxBegin takes a register checkpoint and enters transactional execution
// (the chkpt instruction). Nesting is not supported — Rock flattens by
// failing, we panic because it is a programming error in this codebase.
func (s *Strand) TxBegin() {
	if s.tx.active {
		panic("sim: nested TxBegin")
	}
	s.advance(s.m.cfg.Costs.Chkpt)
	if s.yieldPending {
		return
	}
	t := &s.tx
	t.active = true
	t.doomed = 0
	t.marked = t.marked[:0]
	t.storeAddrs = t.storeAddrs[:0]
	t.storeVals = t.storeVals[:0]
	t.fwd.reset()
	t.lineSet.reset()
	t.bankCount[0], t.bankCount[1] = 0, 0
	t.deferred = 0
	t.lastLoadMissed = false
	t.lastLine = -1
	t.sticky = 0
	t.rolledBack = 0
	// The begin timestamp advances on every attempt regardless of design:
	// it is host state only (no cycles, no RNG draws), so the Resolve knob
	// never perturbs the default design's streams.
	t.ts = s.m.txSeq
	s.m.txSeq++
	// Transactional translations move the micro-DTLB head, so the
	// non-transactional same-line cache cannot survive the transaction.
	s.ntLine = -1
	t.reads, t.writes, t.upgrades, t.stackWrites = 0, 0, 0, 0
	s.m.activeMask |= s.bit
	s.m.cohDoom &^= s.bit
	s.stats.TxBegins++
	if s.trc != nil {
		s.trc.Record(s.id, s.clock, obs.EvTxBegin, 0)
	}
	if s.win != nil {
		s.win.SinkEvent(s.id, s.clock, obs.EvTxBegin, 0)
	}
}

// TxActive reports whether a transaction is in flight.
func (s *Strand) TxActive() bool { return s.tx.active }

// CPS returns the Checkpoint Status register: the reason bits of the most
// recent transaction failure. With a nonzero ExogProb, intervening code may
// have invalidated the register, in which case EXOG is reported instead —
// exactly the smattering of EXOG the paper sees in every test.
func (s *Strand) CPS() cps.Bits {
	if s.tx.cpsReg != 0 && s.m.cfg.ExogProb > 0 && s.rng.Chance(s.m.cfg.ExogProb) {
		return cps.EXOG
	}
	return cps.Bits(s.tx.cpsReg)
}

// txAbort rolls back the in-flight transaction for the given reasons:
// speculative stores are discarded, transactional marks are cleared, and
// the CPS register is loaded. Any pending doom reasons are folded in.
func (s *Strand) txAbort(reason uint32) {
	t := &s.tx
	reason |= t.doomed
	t.doomed = 0
	if s.m.cohDoom&s.bit != 0 {
		// A load-conflict broadcast (loadConflict's single mask op) doomed
		// us since the last delivery point; fold it in as COH, exactly as
		// the per-strand doom call used to.
		reason |= cohBit
		s.m.cohDoom &^= s.bit
	}
	s.m.activeMask &^= s.bit
	t.cpsReg = reason
	// Eager version management: restore memory from the undo log (a remote
	// conflict may have already unrolled part or all of it — rolledBack —
	// in which case only the restore *cost* remains to be charged here).
	var rolled int
	if s.m.vmEager {
		rolled = t.rollbackUndo(s.m.mem) + t.rolledBack
		t.rolledBack = 0
	}
	if s.trc != nil {
		s.trc.Record(s.id, s.clock, obs.EvTxAbort, uint64(reason))
	}
	if s.win != nil {
		s.win.SinkEvent(s.id, s.clock, obs.EvTxAbort, uint64(reason))
	}
	for _, line := range t.marked {
		s.m.mem.lines[line].marked &^= s.bit
		s.m.mem.lines[line].written &^= s.bit
		s.l1.clearMark(line)
	}
	t.marked = t.marked[:0]
	t.storeAddrs = t.storeAddrs[:0]
	t.storeVals = t.storeVals[:0]
	t.active = false
	s.stats.TxAborts++
	// A small seeded jitter on the flush penalty models pipeline-timing
	// variability; without it, symmetric transactions retrying in lockstep
	// can doom each other in a perfectly periodic ring forever, which even
	// Rock's "requester wins" policy does not quite manage.
	s.clock += s.m.cfg.Costs.AbortPenalty + int64(rolled)*s.m.cfg.Costs.LogWrite + int64(s.rng.Next()&7)
}

// TxAbortTrap executes an always-taken trap instruction, the software
// convention for explicitly aborting a transaction (ta %xcc, %g0 + 15);
// the CPS register reports TCC.
func (s *Strand) TxAbortTrap() {
	if !s.tx.active {
		panic("sim: TxAbortTrap outside transaction")
	}
	s.advance(s.m.cfg.Costs.Op)
	if s.yieldPending {
		return
	}
	s.txAbort(tccBit)
}

// checkDoom delivers any pending asynchronous failure — per-strand doom
// reasons or a bit in the machine-wide load-conflict broadcast mask. It
// reports whether the transaction was aborted.
func (s *Strand) checkDoom() bool {
	if s.tx.doomed != 0 || s.m.cohDoom&s.bit != 0 {
		s.txAbort(0)
		return true
	}
	return false
}

// TxLoad performs a transactional load. It returns ok=false if the load
// aborted the transaction (the caller must unwind to the fail address).
func (s *Strand) TxLoad(a Addr) (w Word, ok bool) {
	if !s.tx.active {
		panic("sim: TxLoad outside transaction")
	}
	s.advance(s.m.cfg.Costs.Op)
	if s.yieldPending {
		return 0, false
	}
	s.stats.Loads++
	if s.flt != nil {
		s.flt.onTxAccess(s) // injected ASYNC/COH dooms, delivered below
	}
	if s.checkDoom() {
		return 0, false
	}
	t := &s.tx
	line := LineOf(a)
	p := PageOf(a)

	// Same-line fast path: a repeat load of the line the previous
	// full-path TxLoad validated. The intact slot tag proves no store
	// invalidated or displaced the line since then (a marked line cannot
	// leave the L1 without dooming or aborting us), so: the page is still
	// at the micro-DTLB head (a head hit mutates nothing), the line is
	// still marked (marking again is a no-op), and every writer bit in the
	// directory entry predates the install and was already doomed by its
	// conflict broadcast. An empty store queue rules out forwarding, and a
	// hit cannot change the deferred count or doom anybody, so the only
	// state the slow path would touch is the L1 LRU tick, the age stamp
	// and the hit latency — replicated here exactly.
	if line == t.lastLine && len(t.storeAddrs) == 0 &&
		s.l1.slots[t.lastIdx].tag == line &&
		s.m.mem.pages[p].gen == t.lastGen {
		c := s.l1
		c.tick++
		c.slots[t.lastIdx].age = c.tick
		s.clock += s.m.cfg.Costs.L1Hit
		t.lastLoadMissed = false
		t.reads++
		return s.m.mem.words[a], true
	}

	pg := &s.m.mem.pages[p]
	// Translation: a load whose page has no hardware-walkable mapping takes
	// a precise exception, aborting with LD|PREC (Section 3, "tlb misses").
	// (As in translateLoad, the old code re-probed the micro TLB after a
	// hit at either level; the re-probe never mutates state, so the split
	// below is state-identical.)
	if !s.mmu.micro.lookup(p, pg.gen) {
		if !s.mmu.main.lookup(p, pg.gen) {
			if !pg.walkable {
				s.txAbort(ldBit | precBit)
				return 0, false
			}
			s.clock += s.m.cfg.Costs.TLBWalk
			s.stats.TLBWalks++
			s.mmu.main.fill(p, pg.gen)
		}
		s.mmu.micro.fill(p, pg.gen)
	}

	// Read-own-writes: forward from the store queue if present (fwd maps
	// each address to its latest queue entry, so this matches the old
	// backwards scan's youngest-store-wins exactly). Under eager version
	// management fwd is never populated — own writes are already in memory
	// — so the probe falls through to the ordinary read.
	if len(t.storeAddrs) > 0 {
		if i, ok := t.fwd.get(uint32(a)); ok {
			s.clock += s.m.cfg.Costs.L1Hit
			t.lastLoadMissed = false
			t.reads++
			return t.storeVals[i], true
		}
	}

	// Committer-wins / timestamp resolution arbitrates against active
	// writers before the line is filled (the NACK stall may yield the
	// baton, so it must run while this access holds no L1 slot state).
	if s.m.resolve != ResRequesterWins && !s.resolveArb(line, false) {
		return 0, false
	}

	hit, evictedMarked, idx := s.fill(line)
	if evictedMarked {
		// A transactionally marked line left the L1 and the design did not
		// absorb it into a sticky overflow set: the read set can no longer
		// be tracked (CPS=LD; LD|SIZ when a sticky set itself overflowed).
		s.txAbort(s.evictAbortReason())
		return 0, false
	}
	if !hit {
		t.deferred += s.m.cfg.DeferPerMiss
		if t.deferred > s.m.defQueue {
			// Too many instructions deferred waiting on cache fills
			// (CPS=SIZ). The fill above already happened, so a retry
			// finds the data closer — the effect behind "additional
			// retries served to bring needed data into the cache"
			// (Section 6).
			s.txAbort(sizBit)
			return 0, false
		}
		// Only a miss can doom us mid-access (the fill's L2 eviction may
		// back-invalidate a line we hold marked); on a hit nothing ran
		// since the checkDoom above.
		if s.checkDoom() {
			return 0, false
		}
	}
	// Mark the line and broadcast the load conflict off one directory
	// deref (fill guarantees idx holds the line — see fill). Under lazy
	// detection there is no broadcast: the conflict surfaces when a
	// committer's drain invalidates this mark.
	lm := &s.m.mem.lines[line]
	if lm.marked&s.bit == 0 {
		lm.marked |= s.bit
		t.marked = append(t.marked, line)
	}
	s.l1.mark(idx)
	if !s.m.detLazy {
		s.loadConflict(lm)
	}
	t.lastLine, t.lastIdx, t.lastGen = line, int32(idx), pg.gen
	t.lastLoadMissed = !hit
	t.reads++
	return s.m.mem.words[a], true
}

// TxStore performs a transactional store: the value is gated in the store
// queue until commit. It returns false if the store aborted the
// transaction.
func (s *Strand) TxStore(a Addr, w Word) bool {
	if !s.tx.active {
		panic("sim: TxStore outside transaction")
	}
	s.advance(s.m.cfg.Costs.Op)
	if s.yieldPending {
		return false
	}
	s.stats.Stores++
	if s.flt != nil {
		s.flt.onTxAccess(s) // injected ASYNC/COH dooms, delivered below
	}
	if s.checkDoom() {
		return false
	}
	t := &s.tx
	p := PageOf(a)
	pg := &s.m.mem.pages[p]
	if s.flt != nil {
		// An injected TLB shootdown evicts p's micro-DTLB entry here, so
		// the translation check below misses and aborts with ST organically.
		s.flt.onTxStorePage(s, p)
	}

	// Micro-DTLB check. A miss aborts with CPS=ST; the failing access
	// generates an MMU request, so if a higher-level mapping exists the
	// micro-TLB is warmed and a retry succeeds. If no mapping exists at
	// all, only software warmup (dummy CAS) will help (Section 3.1).
	if !s.mmu.micro.lookup(p, pg.gen) {
		if pg.walkable {
			if !s.mmu.main.lookup(p, pg.gen) {
				s.mmu.main.fill(p, pg.gen)
			}
			s.mmu.micro.fill(p, pg.gen)
		}
		s.txAbort(stBit)
		return false
	}
	if !pg.writable {
		// No write permission; the OS cannot run inside a transaction.
		s.txAbort(stBit)
		return false
	}

	// A store whose address depends on an outstanding load miss also
	// reports ST (Section 3.1); the line request is already in flight, so
	// retries usually succeed.
	if t.lastLoadMissed && s.rng.Chance(s.m.cfg.StoreAfterMissProb) {
		t.lastLoadMissed = false
		s.txAbort(stBit)
		return false
	}
	t.lastLoadMissed = false

	line := LineOf(a)
	// Committer-wins / timestamp resolution arbitrates against every
	// active marker before the line is filled (see TxLoad).
	if s.m.resolve != ResRequesterWins && !s.resolveArb(line, true) {
		return false
	}
	// Stores are gated in the store queue, so a store miss does not defer
	// dependent instructions the way a load miss does; it only pays the
	// ownership-request latency.
	hit, evictedMarked, idx := s.fill(line)
	if evictedMarked {
		s.txAbort(s.evictAbortReason())
		return false
	}
	// As in TxLoad, only a miss (whose L2 eviction may back-invalidate a
	// marked line of ours) can doom us since the entry checkDoom.
	if !hit && s.checkDoom() {
		return false
	}

	// Store queue: entries coalesce at cache-line granularity (which is
	// why the paper's overflow test stores to 33 *different* lines), and
	// two banks are selected by a line-address bit; per-bank overflow
	// aborts with ST|SIZ (the Section 3 "overflow" test). Eager version
	// management bypasses the store queue entirely — its write-set bound
	// is the undo log, which this model does not cap.
	if !s.m.vmEager {
		if _, seen := t.lineSet.get(uint32(line)); !seen {
			t.lineSet.put(uint32(line), 0)
			bank := int(line & 1)
			t.bankCount[bank]++
			if t.bankCount[bank] > s.m.sqPerBank {
				s.txAbort(stBit | sizBit)
				return false
			}
		}
	}

	// Mark, record the write and request exclusive ownership off one
	// directory deref (fill guarantees idx holds the line).
	lm := &s.m.mem.lines[line]
	if lm.marked&s.bit != 0 && lm.written&s.bit == 0 {
		t.upgrades++
	}
	if lm.marked&s.bit == 0 {
		lm.marked |= s.bit
		t.marked = append(t.marked, line)
	}
	s.l1.mark(idx)
	lm.written |= s.bit

	// Eager detection: demand exclusive ownership now. Under the default
	// requester-wins resolution this dooms every other transaction that
	// has the line marked; under committer-wins/timestamp the arbitration
	// above already cleared (or lost to) every transactional holder, so
	// this only strips non-transactional copies. Lazy detection defers the
	// ownership request to the commit drain.
	if !s.m.detLazy {
		s.storeInvalidate(line, lm)
	}

	if s.m.vmEager {
		// Eager version management: write memory in place, logging the
		// previous value for rollback. Every store appends an entry (no
		// coalescing — the log is a sequential record).
		s.clock += s.m.cfg.Costs.LogWrite
		t.storeAddrs = append(t.storeAddrs, a)
		t.storeVals = append(t.storeVals, s.m.mem.words[a])
		s.m.mem.words[a] = w
	} else {
		t.storeAddrs = append(t.storeAddrs, a)
		t.storeVals = append(t.storeVals, w)
		t.fwd.put(uint32(a), int32(len(t.storeVals)-1))
	}
	t.writes++
	return true
}

// TxBranch models a conditional branch inside the transaction. If the
// predicate depends on the immediately preceding load and that load missed,
// the branch may execute before the load resolves, aborting with CPS=UCTI
// (the R2 bit added after the authors' R1 feedback). An ordinary
// mispredicted branch may abort with CPS=CTI. Returns false on abort.
func (s *Strand) TxBranch(pc uint32, taken bool, dependsOnLoad bool) bool {
	if !s.tx.active {
		panic("sim: TxBranch outside transaction")
	}
	s.advance(s.m.cfg.Costs.Op)
	if s.yieldPending {
		return false
	}
	if s.checkDoom() {
		return false
	}
	t := &s.tx
	if dependsOnLoad && t.lastLoadMissed && s.rng.Chance(s.m.cfg.UCTIAbortProb) {
		t.lastLoadMissed = false
		// Misspeculation past an unresolved branch: the CPS may carry a
		// misleading companion reason (the very problem UCTI was added to
		// flag); we occasionally set INST to model it.
		reason := uctiBit
		if s.rng.Chance(0.25) {
			reason |= instBit
		}
		s.bp.predict(pc, taken) // predictor still trains
		s.txAbort(reason)
		return false
	}
	t.lastLoadMissed = false
	if s.bp.predict(pc, taken) {
		s.stats.Mispredicts++
		s.clock += s.m.cfg.Costs.Mispredict
		if s.rng.Chance(s.m.cfg.CTIAbortProb) {
			s.txAbort(ctiBit)
			return false
		}
	}
	return true
}

// TxSaveRestore models a function call's register-window save/restore pair,
// which Rock does not support inside transactions: the transaction fails
// with CPS=INST (Sections 3 and 7).
func (s *Strand) TxSaveRestore() bool {
	if !s.tx.active {
		panic("sim: TxSaveRestore outside transaction")
	}
	s.advance(s.m.cfg.Costs.Op)
	if s.yieldPending {
		return false
	}
	s.txAbort(instBit)
	return false
}

// TxUnsupported models any other instruction unsupported in transactions.
func (s *Strand) TxUnsupported() bool {
	s.advance(s.m.cfg.Costs.Op)
	if s.yieldPending {
		return false
	}
	s.txAbort(instBit)
	return false
}

// TxDiv models a divide instruction, unsupported inside transactions
// (CPS=FP) — the reason the Java Hashtable benchmark factored a divide out
// of its hash function (Section 7.2).
func (s *Strand) TxDiv() bool {
	s.advance(s.m.cfg.Costs.Op)
	if s.yieldPending {
		return false
	}
	s.txAbort(fpBit)
	return false
}

// TxTrap models a conditional trap: if taken the transaction aborts with
// CPS=TCC; if not taken execution continues.
func (s *Strand) TxTrap(taken bool) bool {
	s.advance(s.m.cfg.Costs.Op)
	if s.yieldPending {
		return false
	}
	if taken {
		s.txAbort(tccBit)
		return false
	}
	return true
}

// TxExec models executing code on the given page inside the transaction; an
// ITLB miss takes a precise exception (CPS=PREC).
func (s *Strand) TxExec(codePage int32) bool {
	s.advance(s.m.cfg.Costs.Op)
	if s.yieldPending {
		return false
	}
	if s.checkDoom() {
		return false
	}
	pg := &s.m.mem.pages[codePage]
	if !s.mmu.itlb.lookup(codePage, pg.gen) {
		s.txAbort(precBit)
		return false
	}
	return true
}

// TxStackWrite models a store to the thread's stack inside the transaction
// (counted for Section 6.1 profiling; it consumes no store-queue entry in
// this model, a documented divergence).
func (s *Strand) TxStackWrite() {
	s.advance(s.m.cfg.Costs.Op)
	if s.yieldPending {
		return
	}
	s.tx.stackWrites++
}

// TxCommit attempts to commit: the gated stores drain to memory atomically.
// It reports whether the transaction committed; on false the CPS register
// holds the failure reasons.
func (s *Strand) TxCommit() bool {
	if !s.tx.active {
		panic("sim: TxCommit outside transaction")
	}
	t := &s.tx
	commitCost := s.m.cfg.Costs.CommitBase
	if !s.m.vmEager {
		// Eager version management commits in constant time — the data is
		// already in place; only the lazy designs pay the per-store drain.
		commitCost += int64(len(t.storeAddrs)) * s.m.cfg.Costs.CommitPerStore
	}
	s.advance(commitCost)
	if s.yieldPending {
		return false
	}
	if s.checkDoom() {
		return false
	}
	drained := len(t.storeAddrs)
	if !s.m.vmEager {
		// Drain the store queue. Under lazy conflict detection this drain
		// *is* the arbitration: each storeInvalidate dooms every other
		// transaction holding the line marked, so the first committer wins
		// and its victims see COH at their next delivery point.
		for i, a := range t.storeAddrs {
			line := LineOf(a)
			s.storeInvalidate(line, &s.m.mem.lines[line])
			s.m.mem.words[a] = t.storeVals[i]
		}
	}
	for _, line := range t.marked {
		s.m.mem.lines[line].marked &^= s.bit
		s.m.mem.lines[line].written &^= s.bit
		s.l1.clearMark(line)
	}
	t.marked = t.marked[:0]
	t.storeAddrs = t.storeAddrs[:0]
	t.storeVals = t.storeVals[:0]
	t.active = false
	s.m.activeMask &^= s.bit
	t.cpsReg = 0
	s.stats.TxCommits++
	if s.trc != nil {
		s.trc.Record(s.id, s.clock, obs.EvTxCommit, uint64(drained))
	}
	if s.win != nil {
		s.win.SinkEvent(s.id, s.clock, obs.EvTxCommit, uint64(drained))
	}
	return true
}

// ---- Profiling accessors (Section 6.1 failure analysis) ----

// TxReadSetLines returns the cache lines currently transactionally marked
// (read or written) by the in-flight or just-committed attempt. The slice
// is a copy.
func (s *Strand) TxReadSetLines() []int32 {
	out := make([]int32, len(s.tx.marked))
	copy(out, s.tx.marked)
	return out
}

// TxWriteAddrs returns the addresses in the store queue (a copy).
func (s *Strand) TxWriteAddrs() []Addr {
	out := make([]Addr, len(s.tx.storeAddrs))
	copy(out, s.tx.storeAddrs)
	return out
}

// TxCounts returns (reads, writes, upgrades, stackWrites) for the current
// attempt.
func (s *Strand) TxCounts() (reads, writes, upgrades, stackWrites int) {
	return s.tx.reads, s.tx.writes, s.tx.upgrades, s.tx.stackWrites
}

// MarkedInSet returns how many ways of the L1 set that line maps to are
// currently transactionally marked.
func (s *Strand) MarkedInSet(line int32) int { return s.l1.markedCountInSet(line) }

// L1Sets returns the number of L1 sets (for profiling tools).
func (s *Strand) L1Sets() int { return s.l1.sets }
