package sim

import (
	"fmt"
	"sync"
)

// Word is the unit of simulated storage: a 64-bit value. Pointers within
// simulated memory are stored as words holding the target Addr; Addr 0 plays
// the role of the null pointer (the allocator never hands out address 0).
type Word = uint64

// Addr is a word-granularity simulated address.
type Addr uint32

// Geometry of the simulated memory system.
const (
	// WordsPerLine is the number of 64-bit words per 64-byte cache line.
	WordsPerLine = 8
	// LineShift converts a word address to a line number.
	LineShift = 3
	// PageWords is the number of words per 8 KB page.
	PageWords = 1024
	// PageShift converts a word address to a page number.
	PageShift = 10
)

// LineOf returns the cache-line number containing address a.
func LineOf(a Addr) int32 { return int32(a >> LineShift) }

// PageOf returns the page number containing address a.
func PageOf(a Addr) int32 { return int32(a >> PageShift) }

// lineMeta is the coherence-directory entry for one cache line.
//
// present is a bitmask (by strand ID) of L1 caches currently holding the
// line; marked is the subset that holds it *transactionally marked*. A store
// by any strand invalidates the line everywhere else and — per Rock's
// "requester wins" policy — dooms every transaction that had it marked.
type lineMeta struct {
	present uint64
	marked  uint64
	written uint64
}

// pageMeta is the simulated OS view of one page.
type pageMeta struct {
	mapped   bool // address range handed out by the allocator
	walkable bool // mapping present in the page tables (hardware-walkable)
	writable bool // write permission established (first write fault taken)
	gen      uint32
}

// Memory is the shared simulated memory: a flat array of words plus the
// coherence directory and the OS page map. All mutation happens under the
// machine's baton (exactly one strand executes at a time), so no locking is
// required.
//
// The word array and the coherence directory are backed lazily: they only
// grow (geometrically) to cover the high-water mark of the bump allocator,
// never to the full configured size. Experiments routinely configure tens
// of megabytes of simulated memory and touch a fraction of it, and zeroing
// ~45 MB of backing store per simulated machine dominated the cost of
// small experiment cells. Untouched simulated memory still reads as zero
// (Peek bounds-checks), so this is invisible to simulated code.
type Memory struct {
	limit int    // configured capacity, in words (Alloc fails beyond this)
	words []Word // grows lazily towards limit
	lines []lineMeta
	pages []pageMeta
	next  Addr // bump allocator cursor
}

// memBacking is a retired Memory's backing store, cached process-wide for
// the next Machine. dirty is the former len of words (the allocator's
// high-water mark); everything beyond it was never written and is still
// pristine zero from the original make, so a new owner only has to scrub
// the dirty prefix instead of zeroing (and geometrically re-zeroing and
// copying) a fresh array. Experiment sweeps build hundreds of short-lived
// machines with near-identical footprints, and this recycling is what keeps
// their construction cost at one memclr of the touched range.
type memBacking struct {
	words []Word
	lines []lineMeta
	dirty int
}

var backingPool sync.Pool

func newMemory(words int) *Memory {
	if words < PageWords {
		words = PageWords
	}
	// Round up to whole pages.
	words = (words + PageWords - 1) &^ (PageWords - 1)
	m := &Memory{
		limit: words,
		pages: make([]pageMeta, words/PageWords),
		next:  WordsPerLine, // skip line 0 so Addr 0 stays "null"
	}
	if b, _ := backingPool.Get().(*memBacking); b != nil && b.dirty <= words {
		// Scrubbing the dirty prefix costs at most what zeroing this
		// machine's full configured size would; a backing dirtier than that
		// (from a much larger experiment) is cheaper to drop than to scrub.
		clear(b.words[:b.dirty])
		clear(b.lines[:(b.dirty+WordsPerLine-1)/WordsPerLine])
		n := cap(b.words)
		if ln := cap(b.lines) * WordsPerLine; ln < n {
			n = ln
		}
		if n > words {
			n = words
		}
		n &^= PageWords - 1
		if n >= PageWords {
			m.words = b.words[:n]
			m.lines = b.lines[:n/WordsPerLine]
			return m
		}
	}
	m.ensure(PageWords)
	return m
}

// recycle surrenders the backing arrays to the process-wide pool. The Memory
// must not be written afterwards; reads see zeros (the empty-backing bounds
// checks treat everything as untouched).
//
// The dirty mark is the allocator's high-water mark, not the backing's
// grown length: simulated stores, coherence-directory traffic and Pokes
// are all confined to handed-out addresses (every write path bounds itself
// to mapped pages below next), while geometric growth can leave the
// backing up to twice that size — scrubbing only the truly written prefix
// halves the next owner's memclr.
func (m *Memory) recycle() {
	if len(m.words) == 0 {
		return
	}
	dirty := (int(m.next) + WordsPerLine - 1) &^ (WordsPerLine - 1)
	if dirty > len(m.words) {
		dirty = len(m.words)
	}
	backingPool.Put(&memBacking{words: m.words, lines: m.lines, dirty: dirty})
	m.words, m.lines = nil, nil
}

// ensure grows the word array and coherence directory to cover at least n
// words (whole pages, geometric growth, capped at the configured size).
func (m *Memory) ensure(n int) {
	if n <= len(m.words) {
		return
	}
	grown := len(m.words) * 2
	if grown < n {
		grown = n
	}
	if grown > m.limit {
		grown = m.limit
	}
	grown = (grown + PageWords - 1) &^ (PageWords - 1)
	words := make([]Word, grown)
	copy(words, m.words)
	m.words = words
	lines := make([]lineMeta, grown/WordsPerLine)
	copy(lines, m.lines)
	m.lines = lines
}

// Size returns the number of words of simulated memory.
func (m *Memory) Size() int { return m.limit }

// PageCount returns the number of simulated pages.
func (m *Memory) PageCount() int { return len(m.pages) }

// Alloc hands out n words aligned to align words (align must be a power of
// two; 0 or 1 means word alignment). The returned range is mapped, walkable
// and writable — equivalent to memory that the process has already touched.
// Alloc panics if the simulated memory is exhausted; experiments size their
// machines up front.
func (m *Memory) Alloc(n int, align int) Addr {
	if n <= 0 {
		panic("sim: Alloc of non-positive size")
	}
	if align <= 1 {
		align = 1
	}
	a := (m.next + Addr(align) - 1) &^ (Addr(align) - 1)
	if int(a)+n > m.limit {
		panic(fmt.Sprintf("sim: out of simulated memory (want %d words at %d, have %d)", n, a, m.limit))
	}
	m.next = a + Addr(n)
	m.ensure(int(m.next))
	for p := PageOf(a); p <= PageOf(a+Addr(n)-1); p++ {
		m.pages[p].mapped = true
		m.pages[p].walkable = true
		m.pages[p].writable = true
	}
	return a
}

// AllocLines allocates n words starting on a cache-line boundary.
func (m *Memory) AllocLines(n int) Addr { return m.Alloc(n, WordsPerLine) }

// Remap simulates munmap+mmap of the pages covering [a, a+n): the range
// stays allocated but its page-table presence and write permission are
// revoked and all TLB entries for it become stale. A subsequent
// non-transactional touch takes a page fault and re-establishes the mapping;
// a transactional access aborts (LD|PREC for loads, ST for stores) as
// described in Section 3 of the paper.
func (m *Memory) Remap(a Addr, n int) {
	for p := PageOf(a); p <= PageOf(a+Addr(n)-1); p++ {
		m.pages[p].walkable = false
		m.pages[p].writable = false
		m.pages[p].gen++
	}
}

// Poke writes a word directly, bypassing cost accounting, caches and
// coherence. It is intended for test setup and data-structure
// prepopulation before a timed run starts.
func (m *Memory) Poke(a Addr, w Word) {
	m.ensure(int(a) + 1)
	m.words[a] = w
}

// Peek reads a word directly, bypassing cost accounting and caches. It is
// intended for validation after a run completes. Words beyond the lazy
// backing's high-water mark have never been written and read as zero.
func (m *Memory) Peek(a Addr) Word {
	if int(a) >= len(m.words) {
		return 0
	}
	return m.words[a]
}

// PokeRange fills [a, a+len(ws)) directly.
func (m *Memory) PokeRange(a Addr, ws []Word) {
	m.ensure(int(a) + len(ws))
	copy(m.words[a:int(a)+len(ws)], ws)
}
