// Package jvm models the slice of a JVM that Section 7.2's experiments
// depend on: object monitors (the synchronized keyword) that a TLE-enabled
// JVM elides using best-effort hardware transactions, guided by the CPS
// register; and a JIT compiler whose inlining decisions determine whether
// the code inside a monitor contains function calls — the save/restore
// pairs that doom Rock transactions (the paper's HashMap anecdote).
package jvm

import (
	"rocktm/internal/core"
	"rocktm/internal/locktm"
	"rocktm/internal/sim"
	"rocktm/internal/tle"
)

// JVM is one virtual machine instance: a TLE engine shared by all monitors
// plus a global switch corresponding to enabling the feature.
type JVM struct {
	engine *tle.System
	// Elide enables lock elision for contended monitors. When false,
	// synchronized blocks always acquire their monitor — but if EmitTLE is
	// set the dispatch overhead of the emitted elision code is still paid,
	// the "code bloat" configuration the paper measures with VolanoMark.
	Elide bool
	// EmitTLE models whether the JIT emitted the elision code paths at all.
	EmitTLE bool
}

// New builds a JVM for machine m with the CPS-guided elision policy.
func New(m *sim.Machine, pol tle.Policy) *JVM {
	// The engine's own lock is unused (monitors carry theirs); it exists to
	// satisfy construction.
	engine := tle.New("jvm-tle", tle.SpinAdapter{L: locktm.NewSpinLock(m.Mem())}, pol)
	return &JVM{engine: engine, Elide: true, EmitTLE: true}
}

// Stats returns the cumulative elision statistics across all monitors.
func (j *JVM) Stats() *core.Stats { return j.engine.Stats() }

// SetThrottle installs an adaptive concurrency limiter on the JVM's
// elision engine (the Section 7.2 future-work extension).
func (j *JVM) SetThrottle(th *tle.Throttle) { j.engine.SetThrottle(th) }

// Monitor is one object's lock.
type Monitor struct {
	lock *locktm.SpinLock
}

// NewMonitor allocates a monitor.
func (j *JVM) NewMonitor(m *sim.Machine) *Monitor {
	return &Monitor{lock: locktm.NewSpinLock(m.Mem())}
}

// Synchronized executes body as a synchronized block on mon. With elision
// enabled the block is attempted as a hardware transaction first; otherwise
// the monitor is acquired outright.
func (j *JVM) Synchronized(s *sim.Strand, mon *Monitor, body func(core.Ctx)) {
	if j.EmitTLE {
		// The emitted elision path costs a little code-cache and register
		// pressure even when the feature is off (Section 7.2 measures ~3%
		// on VolanoMark).
		s.Advance(3)
	}
	if j.EmitTLE && j.Elide {
		j.engine.Execute(s, tle.SpinAdapter{L: mon.lock}, body, false)
		return
	}
	mon.lock.Acquire(s)
	body(core.Raw{S: s})
	mon.lock.Release(s)
	st := j.engine.Stats()
	st.Ops++
	st.LockAcquires++
}

// CallSite models one JIT call site. While the callee is inlined the
// synchronized body is call-free; once the JIT recompiles and outlines it,
// every execution performs a real call — and inside an elided transaction
// that save/restore aborts with CPS=INST, sending the block to the lock
// (the HashMap put regression of Section 7.2).
type CallSite struct {
	// OutlineAfter is the invocation count at which the JIT revisits its
	// decision and outlines the callee; 0 keeps it inlined forever.
	OutlineAfter int
	invocations  int
}

// Invoke declares one execution of the call site within ctx.
func (cs *CallSite) Invoke(c core.Ctx) {
	cs.invocations++
	if cs.OutlineAfter > 0 && cs.invocations > cs.OutlineAfter {
		c.Call()
	}
}

// Outlined reports whether the site has been outlined yet.
func (cs *CallSite) Outlined() bool {
	return cs.OutlineAfter > 0 && cs.invocations > cs.OutlineAfter
}
