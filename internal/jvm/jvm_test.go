package jvm

import (
	"testing"

	"rocktm/internal/core"
	"rocktm/internal/sim"
	"rocktm/internal/tle"
)

func newMachine(strands int) *sim.Machine {
	cfg := sim.DefaultConfig(strands)
	cfg.MemWords = 1 << 19
	cfg.MaxCycles = 1 << 42
	return sim.New(cfg)
}

func TestSynchronizedExcludes(t *testing.T) {
	const threads, per = 4, 150
	m := newMachine(threads)
	vm := New(m, tle.DefaultPolicy())
	mon := vm.NewMonitor(m)
	a := m.Mem().AllocLines(8)
	m.Run(func(s *sim.Strand) {
		for i := 0; i < per; i++ {
			vm.Synchronized(s, mon, func(c core.Ctx) {
				c.Store(a, c.Load(a)+1)
			})
		}
	})
	if got := m.Mem().Peek(a); got != threads*per {
		t.Fatalf("counter = %d, want %d", got, threads*per)
	}
}

func TestElisionTogglesCount(t *testing.T) {
	for _, elide := range []bool{true, false} {
		m := newMachine(1)
		vm := New(m, tle.DefaultPolicy())
		vm.Elide = elide
		mon := vm.NewMonitor(m)
		a := m.Mem().AllocLines(8)
		m.Run(func(s *sim.Strand) {
			for i := 0; i < 20; i++ {
				vm.Synchronized(s, mon, func(c core.Ctx) { c.Store(a, 1) })
			}
		})
		st := vm.Stats()
		if elide && st.HWCommits != 20 {
			t.Errorf("elide=true: hw commits = %d, want 20", st.HWCommits)
		}
		if !elide && (st.HWCommits != 0 || st.LockAcquires != 20) {
			t.Errorf("elide=false: hw=%d lock=%d, want 0/20", st.HWCommits, st.LockAcquires)
		}
	}
}

func TestCallSiteOutlinesAfterThreshold(t *testing.T) {
	m := newMachine(1)
	cs := &CallSite{OutlineAfter: 3}
	m.Run(func(s *sim.Strand) {
		c := core.Raw{S: s}
		for i := 0; i < 3; i++ {
			cs.Invoke(c)
			if cs.Outlined() {
				t.Fatalf("outlined after only %d invocations", i+1)
			}
		}
		cs.Invoke(c)
		if !cs.Outlined() {
			t.Fatal("not outlined past the threshold")
		}
	})
	// OutlineAfter == 0 never outlines.
	cs2 := &CallSite{}
	m2 := newMachine(1)
	m2.Run(func(s *sim.Strand) {
		c := core.Raw{S: s}
		for i := 0; i < 100; i++ {
			cs2.Invoke(c)
		}
	})
	if cs2.Outlined() {
		t.Fatal("zero-threshold site outlined")
	}
}

func TestDistinctMonitorsDoNotSerialize(t *testing.T) {
	// Two strands on two monitors under plain locking must never contend:
	// lock acquisitions succeed without dooming each other's work.
	m := newMachine(2)
	vm := New(m, tle.DefaultPolicy())
	vm.Elide = false
	mons := []*Monitor{vm.NewMonitor(m), vm.NewMonitor(m)}
	addrs := []sim.Addr{m.Mem().AllocLines(8), m.Mem().AllocLines(8)}
	m.Run(func(s *sim.Strand) {
		mon, a := mons[s.ID()], addrs[s.ID()]
		for i := 0; i < 100; i++ {
			vm.Synchronized(s, mon, func(c core.Ctx) {
				c.Store(a, c.Load(a)+1)
			})
		}
	})
	for i, a := range addrs {
		if got := m.Mem().Peek(a); got != 100 {
			t.Fatalf("monitor %d counter = %d, want 100", i, got)
		}
	}
}
