package counter

import (
	"testing"

	"rocktm/internal/cps"
	"rocktm/internal/sim"
)

func newMachine(strands int) *sim.Machine {
	cfg := sim.DefaultConfig(strands)
	cfg.MemWords = 1 << 16
	cfg.Quantum = 8
	cfg.MaxCycles = 1 << 44
	return sim.New(cfg)
}

func TestAllMethodsExact(t *testing.T) {
	for _, method := range []Method{CAS, CASBackoff, HTM, HTMBackoff} {
		const threads, per = 4, 150
		m := newMachine(threads)
		ctr := New(m)
		m.Run(func(s *sim.Strand) {
			for i := 0; i < per; i++ {
				ctr.Inc(s, method)
			}
		})
		if got := ctr.Value(m.Mem()); got != threads*per {
			t.Errorf("%s: counter = %d, want %d", method.Name(), got, threads*per)
		}
	}
}

func TestHTMConflictsReportCOH(t *testing.T) {
	const threads, per = 8, 100
	m := newMachine(threads)
	ctr := New(m)
	m.Run(func(s *sim.Strand) {
		for i := 0; i < per; i++ {
			ctr.Inc(s, HTM)
		}
	})
	st := ctr.Stats()
	if st.HWAttempts <= uint64(threads*per) {
		t.Errorf("no retries under contention: attempts=%d", st.HWAttempts)
	}
	if st.CPSHist.BitCount(cps.COH) == 0 {
		t.Error("contended counter recorded no COH failures")
	}
}

func TestBackoffReducesAborts(t *testing.T) {
	run := func(method Method) uint64 {
		const threads, per = 8, 120
		m := newMachine(threads)
		ctr := New(m)
		m.Run(func(s *sim.Strand) {
			for i := 0; i < per; i++ {
				ctr.Inc(s, method)
			}
		})
		st := ctr.Stats()
		return st.HWAttempts - st.HWCommits
	}
	plain := run(HTM)
	withBackoff := run(HTMBackoff)
	if withBackoff >= plain {
		t.Errorf("backoff did not reduce failed attempts: %d vs %d", withBackoff, plain)
	}
}

func TestMethodNames(t *testing.T) {
	names := map[Method]string{
		CAS: "cas", CASBackoff: "cas+backoff", HTM: "htm", HTMBackoff: "htm+backoff",
	}
	for m, want := range names {
		if m.Name() != want {
			t.Errorf("%v.Name() = %q, want %q", int(m), m.Name(), want)
		}
	}
	if Method(99).Name() != "?" {
		t.Error("unknown method name")
	}
}
