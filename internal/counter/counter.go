// Package counter implements the Section 4 experiment: a single shared
// counter incremented by every thread, comparing CAS-based and HTM-based
// implementations, each with and without backoff. The HTM-without-backoff
// variant exhibits the near-livelock the paper attributes to Rock's
// "requester wins" conflict policy: two transactions storing to the same
// line keep dooming each other the moment either issues its store.
package counter

import (
	"rocktm/internal/core"
	"rocktm/internal/cps"
	"rocktm/internal/rock"
	"rocktm/internal/sim"
)

// Method selects an increment implementation.
type Method int

// The four methods of the experiment.
const (
	CAS Method = iota
	CASBackoff
	HTM
	HTMBackoff
)

// Name returns the method's label in experiment output.
func (m Method) Name() string {
	switch m {
	case CAS:
		return "cas"
	case CASBackoff:
		return "cas+backoff"
	case HTM:
		return "htm"
	case HTMBackoff:
		return "htm+backoff"
	}
	return "?"
}

// Counter is a shared counter on its own cache line.
type Counter struct {
	addr  sim.Addr
	stats *core.Stats
}

// New allocates the counter.
func New(m *sim.Machine) *Counter {
	return &Counter{addr: m.Mem().AllocLines(sim.WordsPerLine), stats: core.NewStats()}
}

// Value returns the current count (validation helper).
func (c *Counter) Value(mem *sim.Memory) sim.Word { return mem.Peek(c.addr) }

// Stats returns cumulative attempt statistics.
func (c *Counter) Stats() *core.Stats { return c.stats }

// Inc increments the counter once using the given method.
func (c *Counter) Inc(s *sim.Strand, m Method) {
	switch m {
	case CAS, CASBackoff:
		for attempt := 0; ; attempt++ {
			old := s.Load(c.addr)
			if _, ok := s.CAS(c.addr, old, old+1); ok {
				c.stats.Ops++
				return
			}
			if m == CASBackoff {
				core.Backoff(s, attempt)
			}
		}
	case HTM, HTMBackoff:
		c.stats.HWBlocks++
		for attempt := 0; ; attempt++ {
			c.stats.HWAttempts++
			ok, st := rock.Try(s, func(t rock.Txn) {
				t.Store(c.addr, t.Load(c.addr)+1)
			})
			if ok {
				c.stats.HWCommits++
				c.stats.Ops++
				return
			}
			c.stats.RecordFailure(st)
			if m == HTMBackoff && st.Has(cps.COH) {
				core.Backoff(s, attempt)
			}
		}
	}
}
