// Continuation-machine execution (sim.RunStepped) for PhTM: the phase
// probe, the uninstrumented hardware attempt loop (rock.StepTry with the
// software-straggler guard), the straggler wait spin and the software
// phase's announce/run/withdraw/drift sequence all become explicit
// continuation states. Operation sequences are op-for-op identical to the
// coroutine path.
package phtm

import (
	"rocktm/internal/core"
	"rocktm/internal/obs"
	"rocktm/internal/policy"
	"rocktm/internal/rock"
	"rocktm/internal/sim"
)

// phStep phases.
const (
	phStart uint8 = iota
	phAttemptTop
	phTry
	phDelay
	phWaitCount
	phWaitMode
	phWaitBack
	phWaitPost
	phTrigger
	phSWEnter
	phSWBody
	phSWExit
	phSWMode
	phSWModeCAS
)

// phStep is one PhTM atomic block as a continuation machine.
type phStep struct {
	p    *System
	s    *sim.Strand
	body func(core.Ctx)
	ro   bool
	run  func()
	ctx  core.Ctx // rock.StepCtx, boxed once (a two-word ctx allocates per conversion)

	phase uint8
	eng   policy.Engine
	try   rock.StepTry
	log   core.OpLog
	back  core.StepBackoff
	wback core.StepBackoff

	nextAct  policy.Action
	delayAtt int
	spin     int
	mode     sim.Word
	sub      core.StepBlock
}

// Step implements core.StepBlock.
func (b *phStep) Step() bool {
	p, s, st := b.p, b.s, b.p.stats
	for {
		switch b.phase {
		case phStart:
			w := s.Load(p.swMode)
			if s.YieldPending() {
				return false
			}
			if w == 0 {
				st.HWBlocks++
				b.eng = policy.Start(p.pol, 0)
				b.phase = phAttemptTop
			} else {
				b.phase = phSWEnter
			}
		case phAttemptTop:
			st.HWAttempts++
			b.try.Arm(p.swCount, true)
			b.phase = phTry
		case phTry:
			done, committed, c := b.try.Step()
			if !done {
				return false
			}
			if committed {
				st.HWCommits++
				st.Ops++
				b.eng.OnCommit()
				return true
			}
			st.RecordFailure(c)
			act, delayAtt, delay := b.eng.DecideFailure(c)
			b.nextAct, b.delayAtt = act, delayAtt
			if delay {
				b.phase = phDelay
			} else {
				b.dispatchAct()
			}
		case phDelay:
			if !b.back.Step(s, b.delayAtt) {
				return false
			}
			b.dispatchAct()
		case phWaitCount:
			w := s.Load(p.swCount)
			if s.YieldPending() {
				return false
			}
			if w == 0 {
				b.phase = phWaitPost
			} else {
				b.phase = phWaitMode
			}
		case phWaitMode:
			w := s.Load(p.swMode)
			if s.YieldPending() {
				return false
			}
			if w != 0 {
				b.phase = phWaitPost
			} else {
				b.phase = phWaitBack
			}
		case phWaitBack:
			if !b.wback.Step(s, b.spin) {
				return false
			}
			b.spin++
			b.phase = phWaitCount
		case phWaitPost:
			w := s.Load(p.swMode)
			if s.YieldPending() {
				return false
			}
			if w != 0 || b.eng.Exhausted() {
				b.eng.OnFallback()
				b.phase = phTrigger
			} else {
				b.phase = phAttemptTop
			}
		case phTrigger:
			s.Store(p.swMode, p.cfg.SWHold)
			if s.YieldPending() {
				return false
			}
			s.TraceEvent(obs.EvModeSoftware, uint64(p.cfg.SWHold))
			s.TraceEvent(obs.EvFallback, 0)
			b.phase = phSWEnter
		case phSWEnter:
			s.Add(p.swCount, 1)
			if s.YieldPending() {
				return false
			}
			b.sub = p.back.(core.StepSystem).StepAtomic(s, b.body, b.ro)
			b.phase = phSWBody
		case phSWBody:
			if !b.sub.Step() {
				return false
			}
			b.phase = phSWExit
		case phSWExit:
			s.Add(p.swCount, ^sim.Word(0))
			if s.YieldPending() {
				return false
			}
			b.phase = phSWMode
		case phSWMode:
			mode := s.Load(p.swMode)
			if s.YieldPending() {
				return false
			}
			if mode > 0 {
				b.mode = mode
				b.phase = phSWModeCAS
			} else {
				return true
			}
		default: // phSWModeCAS
			_, ok := s.CAS(p.swMode, b.mode, b.mode-1)
			if s.YieldPending() {
				return false
			}
			if ok && b.mode == 1 {
				s.TraceEvent(obs.EvModeHardware, 0)
			}
			return true
		}
	}
}

// dispatchAct routes a policy verdict to its phase, mirroring the
// coroutine loop: Wait enters the software-straggler spin, Fallback
// triggers the software phase, anything else retries.
func (b *phStep) dispatchAct() {
	switch b.nextAct {
	case policy.Wait:
		b.spin = 0
		b.phase = phWaitCount
	case policy.Fallback:
		b.eng.OnFallback()
		b.phase = phTrigger
	default:
		b.phase = phAttemptTop
	}
}

// CanStep implements core.StepCapable: stepping needs a back end whose
// blocks step.
func (p *System) CanStep() bool { return core.CanStep(p.back) }

// StepAtomic implements core.StepSystem.
func (p *System) StepAtomic(s *sim.Strand, body func(core.Ctx), ro bool) core.StepBlock {
	b := p.steps.Get(s.ID())
	if b.run == nil {
		b.p, b.s = p, s
		b.ctx = rock.StepCtx{T: rock.On(s), Log: &b.log}
		b.run = func() { b.body(b.ctx) }
		b.try.Init(s, &b.log, b.run)
	}
	b.body, b.ro = body, ro
	b.phase = phStart
	return b
}

var _ core.StepSystem = (*System)(nil)
var _ core.StepCapable = (*System)(nil)
