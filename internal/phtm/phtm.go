// Package phtm implements Phased Transactional Memory (Lev, Moir, Nussbaum
// — TRANSACT 2007): the system as a whole is either in a HARDWARE phase, in
// which atomic blocks run as *uninstrumented* best-effort hardware
// transactions (they only read the count of active software transactions,
// so the fast path is nearly as cheap as raw HTM), or in a SOFTWARE phase,
// in which blocks run on the STM back end. A block whose hardware attempts
// keep failing flips the system into the software phase; after a number of
// software commits the system drifts back to hardware.
//
// Because a hardware transaction's first act is to read the
// software-transaction count, any software transaction beginning mid-flight
// dooms it through plain coherence — phase changes need no fences or
// handshakes.
//
// Retry intelligence lives in the shared internal/policy engine: the
// default is the paper's Section 6.1 heuristics (policy "paper" with
// PhTM's tuning), and SetPolicy swaps in any registered policy. The one
// PhTM-specific rule is the explicit TCC abort — it means software
// transactions are still draining, so the engine's Wait verdict is
// served here by spinning until the stragglers finish (or the whole
// system flips to the software phase under us).
package phtm

import (
	"rocktm/internal/core"
	"rocktm/internal/obs"
	"rocktm/internal/policy"
	"rocktm/internal/rock"
	"rocktm/internal/sim"
	"rocktm/internal/stm"
)

// Config tunes the policy.
type Config struct {
	// MaxFailures is the failure score at which a block triggers the switch
	// to the software phase. The paper's Section 6 analysis shows raising
	// it lets retries warm the cache and commit transactions that a low
	// budget would have sent to software.
	MaxFailures float64
	// UCTIWeight is the score of a UCTI-flagged failure.
	UCTIWeight float64
	// SWHold is how many software commits the software phase lasts before
	// the system drifts back to the hardware phase.
	SWHold sim.Word
}

// DefaultConfig returns the policy used in the experiments. The numeric
// knobs are the shared internal/policy defaults.
func DefaultConfig() Config {
	return Config{
		MaxFailures: policy.DefaultBudget,
		UCTIWeight:  policy.DefaultUCTIWeight,
		SWHold:      16,
	}
}

// Tuning maps the config onto the shared policy-engine knobs — exported
// so experiments can build alternative policies (policy.MustNew) with
// PhTM's system-correct tuning. PhTM's hardware path is uninstrumented,
// so a TCC abort can only be the software-straggler check firing: it is
// handled by waiting (Wait, zero charge), and a UCTI retry goes back
// immediately (no backoff) because the failure carries no evidence of
// contention.
func (c Config) Tuning() policy.Tuning {
	return policy.Tuning{
		Budget:      c.MaxFailures,
		UCTIWeight:  c.UCTIWeight,
		UCTIBackoff: false,
		GiveUp:      policy.DefaultGiveUp,
		BackoffOn:   policy.DefaultBackoffOn,
		TCCAction:   policy.Wait,
		TCCWeight:   0,
	}
}

// System is a PhTM instance over an STM back end.
type System struct {
	name    string
	back    stm.STM
	cfg     Config
	pol     policy.Policy
	swMode  sim.Addr // software-phase countdown; 0 = hardware phase
	swCount sim.Addr // active software transactions
	stats   *core.Stats
	steps   core.PerStrand[phStep]
}

// New builds a PhTM system over machine m and back end back.
func New(m *sim.Machine, back stm.STM, cfg Config) *System {
	return &System{
		name:    "phtm",
		back:    back,
		cfg:     cfg,
		pol:     policy.MustNew("paper", cfg.Tuning()),
		swMode:  m.Mem().AllocLines(sim.WordsPerLine),
		swCount: m.Mem().AllocLines(sim.WordsPerLine),
		stats:   core.NewStats(),
	}
}

// Name implements core.System.
func (p *System) Name() string { return p.name }

// SetName overrides the reported name ("phtm-tl2").
func (p *System) SetName(n string) { p.name = n }

// SetPolicy replaces the retry policy driving the hardware attempts (the
// default is "paper" with this system's tuning). The policy's Wait
// verdict is always served by the software-straggler spin.
func (p *System) SetPolicy(pol policy.Policy) { p.pol = pol }

// Stats implements core.System: a merged snapshot of hardware-path and
// back-end counters.
func (p *System) Stats() *core.Stats {
	out := core.NewStats()
	out.Merge(p.stats)
	out.Merge(p.back.Stats())
	return out
}

// Atomic implements core.System.
func (p *System) Atomic(s *sim.Strand, body func(core.Ctx)) {
	st := p.stats
	if s.Load(p.swMode) == 0 {
		st.HWBlocks++
		// Bind the hardware attempt once per block, not once per retry, so
		// the failure loop allocates nothing.
		hwBody := func(tx rock.Txn) {
			if tx.Load(p.swCount) != 0 {
				tx.Abort() // software stragglers still draining
			}
			body(rock.Ctx{T: tx})
		}
		eng := policy.Start(p.pol, 0)
	attempts:
		for {
			st.HWAttempts++
			ok, c := rock.Try(s, hwBody)
			if ok {
				st.HWCommits++
				st.Ops++
				eng.OnCommit()
				return
			}
			st.RecordFailure(c)
			switch eng.OnFailure(s, c) {
			case policy.Fallback:
				break attempts
			case policy.Wait:
				// The explicit abort: software transactions are still
				// active. That is not this block's fault — wait for the
				// stragglers to drain rather than burning the failure
				// budget (unless the whole system moved to the software
				// phase under us).
				for spin := 0; s.Load(p.swCount) != 0 && s.Load(p.swMode) == 0; spin++ {
					core.Backoff(s, spin)
				}
				if s.Load(p.swMode) != 0 || eng.Exhausted() {
					break attempts // phase moved under us
				}
			}
		}
		eng.OnFallback()
		// Trigger the software phase.
		s.Store(p.swMode, p.cfg.SWHold)
		s.TraceEvent(obs.EvModeSoftware, uint64(p.cfg.SWHold))
		s.TraceEvent(obs.EvFallback, 0)
	}
	// Software phase: announce, run on the STM, withdraw, and drift the
	// phase back toward hardware.
	s.Add(p.swCount, 1)
	p.back.Atomic(s, body)
	s.Add(p.swCount, ^sim.Word(0))
	if mode := s.Load(p.swMode); mode > 0 {
		if _, ok := s.CAS(p.swMode, mode, mode-1); ok && mode == 1 {
			// This commit completed the software hold: the system has
			// drifted back into the hardware phase.
			s.TraceEvent(obs.EvModeHardware, 0)
		}
	}
}

// AtomicRO implements core.System.
func (p *System) AtomicRO(s *sim.Strand, body func(core.Ctx)) { p.Atomic(s, body) }
