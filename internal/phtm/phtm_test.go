package phtm

import (
	"testing"

	"rocktm/internal/core"
	"rocktm/internal/sim"
	"rocktm/internal/stm/sky"
)

func newMachine(strands int) *sim.Machine {
	cfg := sim.DefaultConfig(strands)
	cfg.MemWords = 1 << 21
	cfg.MaxCycles = 1 << 42
	return sim.New(cfg)
}

func TestHardwarePhaseByDefault(t *testing.T) {
	m := newMachine(1)
	sys := New(m, sky.New(m), DefaultConfig())
	a := m.Mem().AllocLines(8)
	m.Run(func(s *sim.Strand) {
		for i := 0; i < 100; i++ {
			sys.Atomic(s, func(c core.Ctx) { c.Store(a, c.Load(a)+1) })
		}
	})
	st := sys.Stats()
	if st.HWCommits != 100 || st.SWCommits != 0 {
		t.Fatalf("hw=%d sw=%d, want 100/0", st.HWCommits, st.SWCommits)
	}
}

func TestUnsupportedBlockSwitchesPhaseAndDrainsBack(t *testing.T) {
	m := newMachine(1)
	cfg := DefaultConfig()
	cfg.SWHold = 4
	sys := New(m, sky.New(m), cfg)
	a := m.Mem().AllocLines(8)
	m.Run(func(s *sim.Strand) {
		// A block with a function call can never commit in hardware: it
		// must trigger the software phase.
		sys.Atomic(s, func(c core.Ctx) {
			c.Call()
			c.Store(a, c.Load(a)+1)
		})
		if m.Mem().Peek(sys.swMode) == 0 {
			t.Error("software phase not triggered")
		}
		// SWHold plain blocks drain the phase back to hardware.
		for i := 0; i < int(cfg.SWHold); i++ {
			sys.Atomic(s, func(c core.Ctx) { c.Store(a, c.Load(a)+1) })
		}
		if m.Mem().Peek(sys.swMode) != 0 {
			t.Errorf("software phase did not drain: mode=%d", m.Mem().Peek(sys.swMode))
		}
		// And the next block runs in hardware again.
		before := sys.Stats().HWCommits
		sys.Atomic(s, func(c core.Ctx) { c.Store(a, c.Load(a)+1) })
		if sys.Stats().HWCommits != before+1 {
			t.Error("did not return to the hardware phase")
		}
	})
	if got := m.Mem().Peek(a); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
}

func TestHardwareAbortsWhileSoftwareActive(t *testing.T) {
	// Strand 1 holds a software transaction open; strand 0's hardware
	// attempts must observe swCount != 0 and wait, never committing a
	// conflicting result.
	m := newMachine(2)
	sys := New(m, sky.New(m), DefaultConfig())
	a := m.Mem().AllocLines(8)
	m.Run(func(s *sim.Strand) {
		if s.ID() == 1 {
			// Force this strand into the software path via an unsupported
			// instruction, and dwell inside it.
			sys.Atomic(s, func(c core.Ctx) {
				c.Call()
				c.Store(a, c.Load(a)+100)
				c.Strand().Advance(4000)
			})
		} else {
			s.Advance(1500)
			sys.Atomic(s, func(c core.Ctx) { c.Store(a, c.Load(a)+1) })
		}
	})
	if got := m.Mem().Peek(a); got != 101 {
		t.Fatalf("value = %d, want 101 (both updates exactly once)", got)
	}
}

func TestNameOverride(t *testing.T) {
	m := newMachine(1)
	sys := New(m, sky.New(m), DefaultConfig())
	if sys.Name() != "phtm" {
		t.Errorf("default name %q", sys.Name())
	}
	sys.SetName("phtm-tl2")
	if sys.Name() != "phtm-tl2" {
		t.Errorf("renamed to %q", sys.Name())
	}
}
