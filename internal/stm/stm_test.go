package stm

import (
	"testing"

	"rocktm/internal/core"
	"rocktm/internal/sim"
)

func TestRunAttemptConvertsAbort(t *testing.T) {
	if ok := RunAttempt(func(core.Ctx) { Abort() }, nil); ok {
		t.Fatal("aborted attempt reported success")
	}
	if ok := RunAttempt(func(core.Ctx) {}, nil); !ok {
		t.Fatal("clean attempt reported failure")
	}
}

func TestRunAttemptPropagatesForeignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic swallowed")
		}
	}()
	RunAttempt(func(core.Ctx) { panic("bug") }, nil)
}

func TestOrecTableRejectsBadSizes(t *testing.T) {
	cfg := sim.DefaultConfig(1)
	cfg.MemWords = 1 << 16
	m := sim.New(cfg)
	for _, n := range []int{0, -4, 3, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("size %d accepted", n)
				}
			}()
			NewOrecTable(m.Mem(), n)
		}()
	}
}

func TestOrecIndexAndBaseAgree(t *testing.T) {
	cfg := sim.DefaultConfig(1)
	cfg.MemWords = 1 << 16
	m := sim.New(cfg)
	tbl := NewOrecTable(m.Mem(), 256)
	for _, a := range []sim.Addr{0, 7, 8, 4096, 65535} {
		if tbl.OrecOf(a) != tbl.Base()+sim.Addr(tbl.Index(a)) {
			t.Fatalf("OrecOf/Index disagree at %d", a)
		}
	}
}
