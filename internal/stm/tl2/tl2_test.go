package tl2

import (
	"testing"

	"rocktm/internal/core"
	"rocktm/internal/sim"
	"rocktm/internal/stm"
)

func newMachine(strands int) *sim.Machine {
	cfg := sim.DefaultConfig(strands)
	cfg.MemWords = 1 << 21
	cfg.MaxCycles = 1 << 42
	return sim.New(cfg)
}

func TestReadOwnWrites(t *testing.T) {
	m := newMachine(1)
	sys := New(m)
	a := m.Mem().AllocLines(8)
	m.Run(func(s *sim.Strand) {
		sys.Atomic(s, func(c core.Ctx) {
			c.Store(a, 11)
			if got := c.Load(a); got != 11 {
				t.Errorf("read-own-write = %d, want 11", got)
			}
			c.Store(a, 12)
			if got := c.Load(a); got != 12 {
				t.Errorf("second read-own-write = %d, want 12", got)
			}
		})
	})
	if m.Mem().Peek(a) != 12 {
		t.Fatal("commit did not apply last write")
	}
}

func TestWritesInvisibleUntilCommit(t *testing.T) {
	// Strand 0 holds a transaction open over a long Advance; strand 1 must
	// not see its buffered write, then must see it after commit.
	m := newMachine(2)
	sys := New(m)
	a := m.Mem().AllocLines(8)
	saw := make([]sim.Word, 0, 4)
	m.Run(func(s *sim.Strand) {
		if s.ID() == 0 {
			sys.Atomic(s, func(c core.Ctx) {
				c.Store(a, 77)
				c.Strand().Advance(5000)
			})
		} else {
			s.Advance(2000)
			saw = append(saw, s.Load(a)) // mid-transaction
			s.Advance(8000)
			saw = append(saw, s.Load(a)) // after commit
		}
	})
	if len(saw) != 2 || saw[0] != 0 || saw[1] != 77 {
		t.Fatalf("observed %v, want [0 77]", saw)
	}
}

func TestClockAdvancesPerWriterCommit(t *testing.T) {
	m := newMachine(1)
	sys := New(m)
	a := m.Mem().AllocLines(8)
	m.Run(func(s *sim.Strand) {
		before := m.Mem().Peek(sys.clock)
		for i := 0; i < 5; i++ {
			sys.Atomic(s, func(c core.Ctx) { c.Store(a, sim.Word(i)) })
		}
		// Read-only transactions must not bump the clock.
		sys.Atomic(s, func(c core.Ctx) { c.Load(a) })
		after := m.Mem().Peek(sys.clock)
		if after-before != 5 {
			t.Errorf("clock advanced by %d, want 5", after-before)
		}
	})
}

func TestOrecSharedPerLine(t *testing.T) {
	m := newMachine(1)
	tbl := stm.NewOrecTable(m.Mem(), 1<<10)
	a := sim.Addr(4096)
	if tbl.OrecOf(a) != tbl.OrecOf(a+sim.WordsPerLine-1) {
		t.Error("words of one line map to different orecs")
	}
	if tbl.OrecOf(a) == tbl.OrecOf(a+sim.WordsPerLine) {
		t.Error("adjacent lines share an orec (table too small for test)")
	}
	if tbl.Size() != 1<<10 {
		t.Errorf("Size = %d", tbl.Size())
	}
}

func TestLockedVersionEncoding(t *testing.T) {
	v := stm.MakeOrec(41)
	if stm.Locked(v) {
		t.Error("fresh orec locked")
	}
	if stm.Version(v) != 41 {
		t.Errorf("version = %d", stm.Version(v))
	}
	if !stm.Locked(v | stm.LockBit) {
		t.Error("lock bit not detected")
	}
}

func TestAbortUnwindsOnlyAttempt(t *testing.T) {
	m := newMachine(1)
	sys := New(m)
	a := m.Mem().AllocLines(8)
	attempts := 0
	m.Run(func(s *sim.Strand) {
		sys.Atomic(s, func(c core.Ctx) {
			attempts++
			if attempts == 1 {
				stm.Abort() // explicit software retry
			}
			c.Store(a, 5)
		})
	})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if m.Mem().Peek(a) != 5 {
		t.Fatal("retried transaction did not commit")
	}
}
