// Continuation-machine execution (sim.RunStepped) for TL2: the retry loop,
// the commit protocol's lock/validate/apply/release loops and the failure
// cleanup become explicit state machines, and the read/write barriers
// journal their simulated operations so a yield-interrupted body re-runs
// against its OpLog. Operation sequences are op-for-op identical to the
// coroutine path.
package tl2

import (
	"rocktm/internal/core"
	"rocktm/internal/obs"
	"rocktm/internal/sim"
	"rocktm/internal/stm"
)

// tl2Step phases.
const (
	tlBegin uint8 = iota
	tlBody
	tlCommit
	tlRelease
	tlBackoff
)

// Commit sub-machine states.
const (
	cmLockScan uint8 = iota
	cmLockLoad
	cmLockCAS
	cmClock
	cmValidate
	cmApply
	cmReleaseNew
)

// tl2Step is one TL2 atomic block as a continuation machine.
type tl2Step struct {
	y    *System
	c    *Txn
	s    *sim.Strand
	body func(core.Ctx)
	log  core.OpLog
	back core.StepBackoff

	phase   uint8
	attempt int

	// commit sub-machine
	cst uint8
	ci  int
	co  sim.Word
	wv  sim.Word

	// failure-cleanup index
	ri int
}

// Step implements core.StepBlock.
func (b *tl2Step) Step() bool {
	y, c, s := b.y, b.c, b.s
	for {
		switch b.phase {
		case tlBegin:
			w := s.Load(y.clock)
			if s.YieldPending() {
				return false
			}
			c.rv = w
			c.lockOrecs = c.lockOrecs[:0]
			c.lockPrev = c.lockPrev[:0]
			b.log.Reset()
			b.phase = tlBody
		case tlBody:
			c.readOrecs = c.readOrecs[:0]
			c.writeAddrs = c.writeAddrs[:0]
			c.writeVals = c.writeVals[:0]
			b.log.Rewind()
			ok, yielded := stm.RunStepAttempt(b.body, c, &b.log)
			if yielded {
				return false
			}
			if !ok {
				b.ri = 0
				b.phase = tlRelease
				continue
			}
			b.cst, b.ci = cmLockScan, 0
			b.phase = tlCommit
		case tlCommit:
			done, committed := b.stepCommit()
			if !done {
				return false
			}
			if committed {
				y.stats.Ops++
				y.stats.SWCommits++
				s.TraceEvent(obs.EvSWCommit, 0)
				return true
			}
			b.ri = 0
			b.phase = tlRelease
		case tlRelease:
			for b.ri < len(c.lockOrecs) {
				s.Store(c.lockOrecs[b.ri], c.lockPrev[b.ri])
				if s.YieldPending() {
					return false
				}
				b.ri++
			}
			c.lockOrecs = c.lockOrecs[:0]
			c.lockPrev = c.lockPrev[:0]
			y.stats.SWAborts++
			s.TraceEvent(obs.EvSWAbort, 0)
			b.phase = tlBackoff
		default: // tlBackoff
			if !b.back.Step(s, b.attempt) {
				return false
			}
			b.attempt++
			b.phase = tlBegin
		}
	}
}

// stepCommit advances Txn.commit as a continuation machine; done=false
// means the strand must yield. Once done, committed mirrors commit().
func (b *tl2Step) stepCommit() (done, committed bool) {
	c, s := b.c, b.s
	for {
		switch b.cst {
		case cmLockScan:
			if len(c.writeAddrs) == 0 {
				return true, true // read-only fast path
			}
			if b.ci >= len(c.writeAddrs) {
				b.cst = cmClock
				continue
			}
			orec := c.sys.orecs.OrecOf(c.writeAddrs[b.ci])
			if c.ownsOrec(orec) {
				b.ci++
				continue
			}
			b.cst = cmLockLoad
		case cmLockLoad:
			orec := c.sys.orecs.OrecOf(c.writeAddrs[b.ci])
			o := s.Load(orec)
			if s.YieldPending() {
				return false, false
			}
			if stm.Locked(o) || stm.Version(o) > c.rv {
				return true, false
			}
			b.co = o
			b.cst = cmLockCAS
		case cmLockCAS:
			orec := c.sys.orecs.OrecOf(c.writeAddrs[b.ci])
			_, ok := s.CAS(orec, b.co, b.co|stm.LockBit)
			if s.YieldPending() {
				return false, false
			}
			if !ok {
				return true, false
			}
			c.lockOrecs = append(c.lockOrecs, orec)
			c.lockPrev = append(c.lockPrev, b.co)
			b.ci++
			b.cst = cmLockScan
		case cmClock:
			wv := s.Add(c.sys.clock, 1)
			if s.YieldPending() {
				return false, false
			}
			b.wv = wv
			b.ci = 0
			if wv != c.rv+1 {
				b.cst = cmValidate
			} else {
				b.cst = cmApply
			}
		case cmValidate:
			for b.ci < len(c.readOrecs) {
				o := s.Load(c.readOrecs[b.ci])
				if s.YieldPending() {
					return false, false
				}
				if stm.Locked(o) && !c.ownsOrec(c.readOrecs[b.ci]) {
					return true, false
				}
				if !stm.Locked(o) && stm.Version(o) > c.rv {
					return true, false
				}
				b.ci++
			}
			b.ci = 0
			b.cst = cmApply
		case cmApply:
			for b.ci < len(c.writeAddrs) {
				s.Store(c.writeAddrs[b.ci], c.writeVals[b.ci])
				if s.YieldPending() {
					return false, false
				}
				b.ci++
			}
			b.ci = 0
			b.cst = cmReleaseNew
		default: // cmReleaseNew
			for b.ci < len(c.lockOrecs) {
				s.Store(c.lockOrecs[b.ci], stm.MakeOrec(b.wv))
				if s.YieldPending() {
					return false, false
				}
				b.ci++
			}
			c.lockOrecs = c.lockOrecs[:0]
			c.lockPrev = c.lockPrev[:0]
			return true, true
		}
	}
}

// StepAtomic implements core.StepSystem.
func (y *System) StepAtomic(s *sim.Strand, body func(core.Ctx), _ bool) core.StepBlock {
	b := y.steps.Get(s.ID())
	if b.c == nil {
		b.y, b.s = y, s
		b.c = y.ctxFor(s)
	}
	b.c.log = &b.log
	b.body = body
	b.phase = tlBegin
	b.attempt = 0
	return b
}

var _ core.StepSystem = (*System)(nil)
