// Package tl2 implements the TL2 software transactional memory of Dice,
// Shalev and Shavit (DISC 2006), the state-of-the-art STM the paper
// benchmarks against ("stm-tl2", "phtm-tl2"): a global version clock,
// per-line versioned-lock ownership records, invisible readers with
// commit-time validation, and commit-time write locking.
package tl2

import (
	"rocktm/internal/core"
	"rocktm/internal/obs"
	"rocktm/internal/sim"
	"rocktm/internal/stm"
)

// bookkeepCost approximates the thread-local read-/write-set logging cost
// of one STM barrier, in cycles (the logs themselves are cache-hot
// thread-local memory, so they are charged as compute rather than simulated
// traffic).
const bookkeepCost = 2

// maxWaitSpins bounds how long a committer waits for nothing — TL2 never
// waits; it aborts on any locked orec it encounters.

// System is a TL2 instance: orec table and global clock in simulated
// memory.
type System struct {
	name  string
	orecs stm.OrecTable
	clock sim.Addr
	stats *core.Stats
	byID  []*Txn
	steps core.PerStrand[tl2Step]
}

// New builds a TL2 system for machine m with the default orec-table size.
func New(m *sim.Machine) *System { return NewSized(m, stm.DefaultOrecs) }

// NewSized builds a TL2 system with n orecs.
func NewSized(m *sim.Machine, n int) *System {
	sys := &System{
		name:  "stm-tl2",
		orecs: stm.NewOrecTable(m.Mem(), n),
		clock: m.Mem().AllocLines(sim.WordsPerLine),
		stats: core.NewStats(),
		byID:  make([]*Txn, m.Config().Strands),
	}
	return sys
}

// Name implements core.System.
func (y *System) Name() string { return y.name }

// SetName overrides the reported name (hybrids relabel their back end).
func (y *System) SetName(n string) { y.name = n }

// Stats implements core.System.
func (y *System) Stats() *core.Stats { return y.stats }

// Txn is the per-strand transaction descriptor.
type Txn struct {
	sys *System
	s   *sim.Strand
	rv  sim.Word

	// log journals the barriers' simulated operations under the
	// continuation driver (nil on the coroutine path). A system must not
	// mix drivers within one machine run.
	log *core.OpLog

	readOrecs  []sim.Addr
	writeAddrs []sim.Addr
	writeVals  []sim.Word

	lockOrecs []sim.Addr
	lockPrev  []sim.Word
}

func (y *System) ctxFor(s *sim.Strand) *Txn {
	c := y.byID[s.ID()]
	if c == nil {
		c = &Txn{sys: y, s: s}
		y.byID[s.ID()] = c
	}
	return c
}

// Atomic implements core.System: it runs body as software transactions
// until one commits.
func (y *System) Atomic(s *sim.Strand, body func(core.Ctx)) {
	c := y.ctxFor(s)
	c.log = nil // coroutine path never journals
	for attempt := 0; ; attempt++ {
		c.begin()
		ok := stm.RunAttempt(body, c)
		if ok && c.commit() {
			y.stats.Ops++
			y.stats.SWCommits++
			s.TraceEvent(obs.EvSWCommit, 0)
			return
		}
		c.releaseLocks(false)
		y.stats.SWAborts++
		s.TraceEvent(obs.EvSWAbort, 0)
		core.Backoff(s, attempt)
	}
}

// AtomicRO implements core.System.
func (y *System) AtomicRO(s *sim.Strand, body func(core.Ctx)) { y.Atomic(s, body) }

func (c *Txn) begin() {
	c.rv = c.s.Load(c.sys.clock)
	c.readOrecs = c.readOrecs[:0]
	c.writeAddrs = c.writeAddrs[:0]
	c.writeVals = c.writeVals[:0]
	c.lockOrecs = c.lockOrecs[:0]
	c.lockPrev = c.lockPrev[:0]
}

// Load implements core.Ctx: read the value, post-validate its orec against
// the read version, log the orec.
func (c *Txn) Load(a sim.Addr) sim.Word {
	// Read-own-writes.
	for i := len(c.writeAddrs) - 1; i >= 0; i-- {
		if c.writeAddrs[i] == a {
			c.adv(bookkeepCost)
			return c.writeVals[i]
		}
	}
	// The TL2 read barrier samples the orec before AND after reading the
	// data: the pre-sample rejects in-progress writers, the post-sample
	// rejects writers that completed mid-read. Version ≤ rv alone is not
	// enough — a write serialized before our snapshot may have *applied*
	// after we loaded the data.
	orec := c.sys.orecs.OrecOf(a)
	o1 := c.ld(orec)
	if stm.Locked(o1) || stm.Version(o1) > c.rv {
		stm.Abort()
	}
	val := c.ld(a)
	o2 := c.ld(orec)
	if o2 != o1 {
		stm.Abort()
	}
	c.readOrecs = append(c.readOrecs, orec)
	c.adv(bookkeepCost)
	return val
}

// ld, adv and br route a barrier's simulated operations through the
// OpLog under the continuation driver, straight to the strand otherwise.
func (c *Txn) ld(a sim.Addr) sim.Word {
	if c.log != nil {
		return c.log.Load(c.s, a)
	}
	return c.s.Load(a)
}

func (c *Txn) adv(n int64) {
	if c.log != nil {
		c.log.Advance(c.s, n)
		return
	}
	c.s.Advance(n)
}

func (c *Txn) br(pc uint32, taken bool) {
	if c.log != nil {
		c.log.Branch(c.s, pc, taken)
		return
	}
	c.s.Branch(pc, taken)
}

// Store implements core.Ctx: buffer the write until commit.
func (c *Txn) Store(a sim.Addr, w sim.Word) {
	c.writeAddrs = append(c.writeAddrs, a)
	c.writeVals = append(c.writeVals, w)
	c.adv(bookkeepCost + 1)
}

// Branch implements core.Ctx (outside a hardware transaction a mispredict
// just costs cycles).
func (c *Txn) Branch(pc uint32, taken bool, _ bool) { c.br(pc, taken) }

// Div implements core.Ctx.
func (c *Txn) Div() { c.adv(core.DivCost) }

// Call implements core.Ctx.
func (c *Txn) Call() { c.adv(core.CallCost) }

// Strand implements core.Ctx.
func (c *Txn) Strand() *sim.Strand { return c.s }

func (c *Txn) ownsOrec(orec sim.Addr) bool {
	for _, o := range c.lockOrecs {
		if o == orec {
			return true
		}
	}
	return false
}

// commit runs the TL2 commit protocol: lock the write set's orecs, bump the
// global clock, validate the read set, apply the writes, release with the
// new version.
func (c *Txn) commit() bool {
	s := c.s
	// Read-only fast path.
	if len(c.writeAddrs) == 0 {
		return true
	}
	// Acquire write locks (deduplicated; abort on any contention).
	for _, a := range c.writeAddrs {
		orec := c.sys.orecs.OrecOf(a)
		if c.ownsOrec(orec) {
			continue
		}
		o := s.Load(orec)
		if stm.Locked(o) {
			return false
		}
		// The version must not postdate our snapshot: this also covers
		// locations we both read and write, which validation below would
		// otherwise skip as owned-by-us.
		if stm.Version(o) > c.rv {
			return false
		}
		if _, ok := s.CAS(orec, o, o|stm.LockBit); !ok {
			return false
		}
		c.lockOrecs = append(c.lockOrecs, orec)
		c.lockPrev = append(c.lockPrev, o)
	}
	wv := s.Add(c.sys.clock, 1)
	// Validate the read set (skippable when nothing committed in between).
	if wv != c.rv+1 {
		for _, orec := range c.readOrecs {
			o := s.Load(orec)
			if stm.Locked(o) && !c.ownsOrec(orec) {
				return false
			}
			if !stm.Locked(o) && stm.Version(o) > c.rv {
				return false
			}
		}
	}
	// Apply the write set and release the locks at the new version.
	for i, a := range c.writeAddrs {
		s.Store(a, c.writeVals[i])
	}
	for _, orec := range c.lockOrecs {
		s.Store(orec, stm.MakeOrec(wv))
	}
	c.lockOrecs = c.lockOrecs[:0]
	c.lockPrev = c.lockPrev[:0]
	return true
}

// releaseLocks restores the previous orec values after a failed commit.
// The committed flag distinguishes cleanup paths; on success locks were
// already released at the new version.
func (c *Txn) releaseLocks(committed bool) {
	if committed {
		return
	}
	for i, orec := range c.lockOrecs {
		c.s.Store(orec, c.lockPrev[i])
	}
	c.lockOrecs = c.lockOrecs[:0]
	c.lockPrev = c.lockPrev[:0]
}
