// Continuation-machine execution (sim.RunStepped) for SkySTM: the retry
// loop, the commit protocol (orec locking, reader draining with its backoff
// spins, apply, release) and the announcement-withdrawal cleanup become
// explicit state machines, and the barriers journal their simulated
// operations so a yield-interrupted body re-runs against its OpLog.
// Operation sequences are op-for-op identical to the coroutine path.
package sky

import (
	"rocktm/internal/core"
	"rocktm/internal/obs"
	"rocktm/internal/sim"
	"rocktm/internal/stm"
)

// skyStep phases.
const (
	skBody uint8 = iota
	skCommit
	skCleanup
	skBackoff
)

// Commit sub-machine states.
const (
	scLockScan uint8 = iota
	scLockLoad
	scLockCAS
	scDrainTop
	scDrainSum
	scDrainBack
	scApply
	scRelease
)

// Cleanup sub-machine states.
const (
	clRestore uint8 = iota
	clWithdraw
)

// skyStep is one Sky atomic block as a continuation machine.
type skyStep struct {
	y    *System
	c    *Txn
	s    *sim.Strand
	body func(core.Ctx)
	log  core.OpLog
	back core.StepBackoff

	phase   uint8
	attempt int
	fresh   bool // begin's host resets still owed before the next body run

	// commit sub-machine
	cst   uint8
	ci    int
	co    sim.Word
	di    int
	sh    int
	total sim.Word
	spin  int
	dback core.StepBackoff

	// cleanup sub-machine
	clSt   uint8
	ri     int
	failed bool
}

// Step implements core.StepBlock.
func (b *skyStep) Step() bool {
	y, c, s := b.y, b.c, b.s
	for {
		switch b.phase {
		case skBody:
			if b.fresh {
				c.lockOrecs = c.lockOrecs[:0]
				c.lockPrev = c.lockPrev[:0]
				b.log.Reset()
				b.fresh = false
			}
			c.readIdx = c.readIdx[:0]
			c.writeAddrs = c.writeAddrs[:0]
			c.writeVals = c.writeVals[:0]
			b.log.Rewind()
			ok, yielded := stm.RunStepAttempt(b.body, c, &b.log)
			if yielded {
				return false
			}
			if !ok {
				b.armCleanup(true)
				continue
			}
			b.cst, b.ci = scLockScan, 0
			b.phase = skCommit
		case skCommit:
			done, committed := b.stepCommit()
			if !done {
				return false
			}
			b.armCleanup(!committed)
		case skCleanup:
			if !b.stepCleanup() {
				return false
			}
			if b.failed {
				y.stats.SWAborts++
				s.TraceEvent(obs.EvSWAbort, 0)
				b.phase = skBackoff
				continue
			}
			y.stats.Ops++
			y.stats.SWCommits++
			s.TraceEvent(obs.EvSWCommit, 0)
			return true
		default: // skBackoff
			if !b.back.Step(s, b.attempt) {
				return false
			}
			b.attempt++
			b.fresh = true
			b.phase = skBody
		}
	}
}

// armCleanup enters the cleanup phase for a failed or committed attempt.
func (b *skyStep) armCleanup(failed bool) {
	b.failed = failed
	b.clSt, b.ri = clRestore, 0
	if !failed {
		b.clSt = clWithdraw
	}
	b.phase = skCleanup
}

// stepCommit advances Txn.commit as a continuation machine; false means
// the strand must yield. Once done, committed mirrors commit().
func (b *skyStep) stepCommit() (done, committed bool) {
	c, s := b.c, b.s
	for {
		switch b.cst {
		case scLockScan:
			if len(c.writeAddrs) == 0 {
				return true, true
			}
			if b.ci >= len(c.writeAddrs) {
				b.di = 0
				b.cst = scDrainTop
				continue
			}
			orec := c.sys.orecs.OrecOf(c.writeAddrs[b.ci])
			if c.ownsOrec(orec) {
				b.ci++
				continue
			}
			b.cst = scLockLoad
		case scLockLoad:
			orec := c.sys.orecs.OrecOf(c.writeAddrs[b.ci])
			o := s.Load(orec)
			if s.YieldPending() {
				return false, false
			}
			if stm.Locked(o) {
				return true, false
			}
			b.co = o
			b.cst = scLockCAS
		case scLockCAS:
			orec := c.sys.orecs.OrecOf(c.writeAddrs[b.ci])
			_, ok := s.CAS(orec, b.co, b.co|stm.LockBit)
			if s.YieldPending() {
				return false, false
			}
			if !ok {
				return true, false
			}
			c.lockOrecs = append(c.lockOrecs, orec)
			c.lockPrev = append(c.lockPrev, b.co)
			b.ci++
			b.cst = scLockScan
		case scDrainTop:
			if b.di >= len(c.lockOrecs) {
				b.ci = 0
				b.cst = scApply
				continue
			}
			b.spin, b.total, b.sh = 0, 0, 0
			b.cst = scDrainSum
		case scDrainSum:
			idx := uint32(c.lockOrecs[b.di] - c.sys.orecs.Base())
			for b.sh < readerShards {
				w := s.Load(c.sys.readers[b.sh] + sim.Addr(idx))
				if s.YieldPending() {
					return false, false
				}
				b.total += w
				b.sh++
			}
			self := sim.Word(0)
			if c.announced(idx) {
				self = 1
			}
			if b.total <= self {
				b.di++
				b.cst = scDrainTop
				continue
			}
			if b.spin >= drainSpins {
				return true, false
			}
			b.cst = scDrainBack
		case scDrainBack:
			if !b.dback.Step(s, b.spin) {
				return false, false
			}
			b.spin++
			b.total, b.sh = 0, 0
			b.cst = scDrainSum
		case scApply:
			for b.ci < len(c.writeAddrs) {
				s.Store(c.writeAddrs[b.ci], c.writeVals[b.ci])
				if s.YieldPending() {
					return false, false
				}
				b.ci++
			}
			b.ci = 0
			b.cst = scRelease
		default: // scRelease
			for b.ci < len(c.lockOrecs) {
				s.Store(c.lockOrecs[b.ci], stm.MakeOrec(stm.Version(c.lockPrev[b.ci])+1))
				if s.YieldPending() {
					return false, false
				}
				b.ci++
			}
			c.lockOrecs = c.lockOrecs[:0]
			c.lockPrev = c.lockPrev[:0]
			return true, true
		}
	}
}

// stepCleanup advances Txn.cleanup as a continuation machine; false means
// the strand must yield.
func (b *skyStep) stepCleanup() bool {
	c, s := b.c, b.s
	for {
		switch b.clSt {
		case clRestore:
			for b.ri < len(c.lockOrecs) {
				s.Store(c.lockOrecs[b.ri], c.lockPrev[b.ri])
				if s.YieldPending() {
					return false
				}
				b.ri++
			}
			c.lockOrecs = c.lockOrecs[:0]
			c.lockPrev = c.lockPrev[:0]
			b.ri = 0
			b.clSt = clWithdraw
		default: // clWithdraw
			for b.ri < len(c.readIdx) {
				s.Add(c.sys.shardAddr(c.readIdx[b.ri], s.ID()), ^sim.Word(0))
				if s.YieldPending() {
					return false
				}
				b.ri++
			}
			c.readIdx = c.readIdx[:0]
			return true
		}
	}
}

// StepAtomic implements core.StepSystem.
func (y *System) StepAtomic(s *sim.Strand, body func(core.Ctx), _ bool) core.StepBlock {
	b := y.steps.Get(s.ID())
	if b.c == nil {
		b.y, b.s = y, s
		b.c = y.ctxFor(s)
	}
	b.c.log = &b.log
	b.body = body
	b.phase = skBody
	b.fresh = true
	b.attempt = 0
	return b
}

var _ core.StepSystem = (*System)(nil)
