package sky

import (
	"testing"

	"rocktm/internal/core"
	"rocktm/internal/rock"
	"rocktm/internal/sim"
)

func newMachine(strands int) *sim.Machine {
	cfg := sim.DefaultConfig(strands)
	cfg.MemWords = 1 << 21
	cfg.MaxCycles = 1 << 42
	return sim.New(cfg)
}

func TestReaderAnnouncementsDrain(t *testing.T) {
	m := newMachine(1)
	sys := New(m)
	a := m.Mem().AllocLines(8)
	idx := sys.orecs.Index(a)
	m.Run(func(s *sim.Strand) {
		sys.Atomic(s, func(c core.Ctx) { c.Load(a) })
		// After commit every shard count must be back to zero.
		var total sim.Word
		for sh := 0; sh < readerShards; sh++ {
			total += m.Mem().Peek(sys.readers[sh] + sim.Addr(idx))
		}
		if total != 0 {
			t.Errorf("reader announcements leaked: %d", total)
		}
	})
}

func TestWriterWaitsForReader(t *testing.T) {
	// Strand 0 reads a and dwells inside its transaction; strand 1 tries to
	// commit a write to a meanwhile. The writer must not apply while the
	// reader is announced, so the reader's second load must equal its first.
	m := newMachine(2)
	sys := New(m)
	a := m.Mem().AllocLines(8)
	torn := false
	m.Run(func(s *sim.Strand) {
		if s.ID() == 0 {
			sys.Atomic(s, func(c core.Ctx) {
				v1 := c.Load(a)
				c.Strand().Advance(4000)
				if c.Load(a) != v1 {
					torn = true
				}
			})
		} else {
			s.Advance(1000)
			sys.Atomic(s, func(c core.Ctx) { c.Store(a, 99) })
		}
	})
	if torn {
		t.Fatal("writer applied under an announced reader")
	}
	if m.Mem().Peek(a) != 99 {
		t.Fatal("writer never committed")
	}
}

func TestHWCtxConflictsWithSoftwareWriter(t *testing.T) {
	// A software transaction holds a's orec (mid-commit dwell via body
	// re-execution) while a hardware transaction probes it through HWCtx:
	// the hardware attempt must abort rather than read.
	m := newMachine(2)
	sys := New(m)
	a := m.Mem().AllocLines(8)
	var hwOK, hwRan bool
	m.Run(func(s *sim.Strand) {
		if s.ID() == 0 {
			sys.Atomic(s, func(c core.Ctx) {
				c.Store(a, 5)
				c.Strand().Advance(3000) // keep the txn window open
			})
		} else {
			s.Advance(1000)
			hwRan = true
			hwOK, _ = rock.Try(s, func(tx rock.Txn) {
				h := sys.HWCtx(tx)
				h.Store(a, 7)
				tx.Advance(5000) // overlap the software commit
			})
		}
	})
	if !hwRan {
		t.Fatal("hardware attempt never ran")
	}
	// Either the hardware txn aborted (software won) or it committed fully
	// before the software commit (then the final value is 5). Both are
	// serializable; what must never happen is a mix.
	final := m.Mem().Peek(a)
	if hwOK && final != 5 && final != 7 {
		t.Fatalf("final value %d not a serializable outcome", final)
	}
	if final != 5 && final != 7 {
		t.Fatalf("final value %d from neither writer", final)
	}
}

func TestShardTablesStaggered(t *testing.T) {
	m := newMachine(1)
	sys := New(m)
	// The four shard entries of one orec must not all land in the same L1
	// set (that aliasing made HyTM hardware stores blow a 4-way set).
	const l1Sets = 128
	idx := uint32(5)
	sets := map[int32]bool{}
	for sh := 0; sh < readerShards; sh++ {
		line := sim.LineOf(sys.readers[sh] + sim.Addr(idx))
		sets[line%l1Sets] = true
	}
	if len(sets) < 3 {
		t.Errorf("shards of one orec alias into %d L1 sets", len(sets))
	}
}
