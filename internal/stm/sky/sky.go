// Package sky implements a SkySTM-flavoured software transactional memory
// (Lev, Luchangco, Marathe, Moir, Nussbaum, Olszewski 2008), the authors'
// own scalable STM and the default back end in the paper's "hytm", "phtm"
// and "stm" curves.
//
// Its defining property here is *semi-visible readers*: a reader announces
// itself on an ownership record (in SkySTM via a scalable SNZI counter,
// modelled here as per-strand-group counter shards on distinct cache
// lines), and a writer acquires the orec and then waits for announced
// readers to drain before touching data. That costs readers an atomic
// update per first touch of an orec — which is why it trails TL2's
// invisible readers on read-heavy microbenchmarks — but it is exactly what
// lets a *hardware* transaction detect software readers access-by-access,
// making this STM HyTM-capable (stm.HybridSTM).
package sky

import (
	"rocktm/internal/core"
	"rocktm/internal/obs"
	"rocktm/internal/rock"
	"rocktm/internal/sim"
	"rocktm/internal/stm"
)

const (
	// readerShards is the number of counter shards per orec (the SNZI-fanout
	// stand-in). Each shard table lives in its own region so shards of one
	// orec land on different cache lines.
	readerShards = 4
	// bookkeepCost approximates thread-local logging per barrier, in cycles.
	bookkeepCost = 2
	// drainSpins bounds how many backoff rounds a committing writer waits
	// for announced readers before giving up and aborting itself.
	drainSpins = 32
)

// System is a Sky instance.
type System struct {
	name    string
	orecs   stm.OrecTable
	readers [readerShards]sim.Addr // shard tables, each orecs.Size() words
	stats   *core.Stats
	byID    []*Txn
	hwByID  []core.Ctx // per-strand pre-boxed *HW (see HWCtx)
	steps   core.PerStrand[skyStep]
}

// New builds a Sky system for machine m with the default orec-table size.
func New(m *sim.Machine) *System { return NewSized(m, stm.DefaultOrecs) }

// NewSized builds a Sky system with n orecs.
func NewSized(m *sim.Machine, n int) *System {
	sys := &System{
		name:   "stm",
		orecs:  stm.NewOrecTable(m.Mem(), n),
		stats:  core.NewStats(),
		byID:   make([]*Txn, m.Config().Strands),
		hwByID: make([]core.Ctx, m.Config().Strands),
	}
	for i := range sys.readers {
		// Stagger the shard tables so the shards of one orec land in
		// different L1 sets (equal power-of-two table sizes would alias
		// them all into the same set, and a HyTM hardware store probing
		// all four would blow a 4-way set immediately).
		m.Mem().AllocLines((2*i + 1) * 13 * sim.WordsPerLine)
		sys.readers[i] = m.Mem().AllocLines(n)
	}
	return sys
}

var _ stm.HybridSTM = (*System)(nil)

// Name implements core.System.
func (y *System) Name() string { return y.name }

// SetName overrides the reported name (hybrids relabel their back end).
func (y *System) SetName(n string) { y.name = n }

// Stats implements core.System.
func (y *System) Stats() *core.Stats { return y.stats }

func (y *System) shardAddr(idx uint32, strand int) sim.Addr {
	return y.readers[strand%readerShards] + sim.Addr(idx)
}

// Txn is the per-strand transaction descriptor.
type Txn struct {
	sys *System
	s   *sim.Strand

	// log journals the barriers' simulated operations under the
	// continuation driver (nil on the coroutine path). A system must not
	// mix drivers within one machine run.
	log *core.OpLog

	readIdx    []uint32 // orec indices announced by this transaction
	writeAddrs []sim.Addr
	writeVals  []sim.Word
	lockOrecs  []sim.Addr
	lockPrev   []sim.Word
}

func (y *System) ctxFor(s *sim.Strand) *Txn {
	c := y.byID[s.ID()]
	if c == nil {
		c = &Txn{sys: y, s: s}
		y.byID[s.ID()] = c
	}
	return c
}

// Atomic implements core.System.
func (y *System) Atomic(s *sim.Strand, body func(core.Ctx)) {
	c := y.ctxFor(s)
	c.log = nil // coroutine path never journals
	for attempt := 0; ; attempt++ {
		c.begin()
		ok := stm.RunAttempt(body, c)
		if ok && c.commit() {
			c.cleanup(false)
			y.stats.Ops++
			y.stats.SWCommits++
			s.TraceEvent(obs.EvSWCommit, 0)
			return
		}
		c.cleanup(true)
		y.stats.SWAborts++
		s.TraceEvent(obs.EvSWAbort, 0)
		core.Backoff(s, attempt)
	}
}

// AtomicRO implements core.System.
func (y *System) AtomicRO(s *sim.Strand, body func(core.Ctx)) { y.Atomic(s, body) }

func (c *Txn) begin() {
	c.readIdx = c.readIdx[:0]
	c.writeAddrs = c.writeAddrs[:0]
	c.writeVals = c.writeVals[:0]
	c.lockOrecs = c.lockOrecs[:0]
	c.lockPrev = c.lockPrev[:0]
}

func (c *Txn) announced(idx uint32) bool {
	for _, r := range c.readIdx {
		if r == idx {
			return true
		}
	}
	return false
}

// Load implements core.Ctx: announce readership of the orec (first touch
// only), verify no writer holds it, then read.
func (c *Txn) Load(a sim.Addr) sim.Word {
	for i := len(c.writeAddrs) - 1; i >= 0; i-- {
		if c.writeAddrs[i] == a {
			c.adv(bookkeepCost)
			return c.writeVals[i]
		}
	}
	idx := c.sys.orecs.Index(a)
	if !c.announced(idx) {
		c.add(c.sys.shardAddr(idx, c.s.ID()), 1)
		c.readIdx = append(c.readIdx, idx)
	}
	orec := c.sys.orecs.OrecOf(a)
	if stm.Locked(c.ld(orec)) && !c.ownsOrec(orec) {
		stm.Abort()
	}
	c.adv(bookkeepCost)
	return c.ld(a)
}

// ld, add, adv and br route a barrier's simulated operations through the
// OpLog under the continuation driver, straight to the strand otherwise.
func (c *Txn) ld(a sim.Addr) sim.Word {
	if c.log != nil {
		return c.log.Load(c.s, a)
	}
	return c.s.Load(a)
}

func (c *Txn) add(a sim.Addr, delta sim.Word) {
	if c.log != nil {
		c.log.Add(c.s, a, delta)
		return
	}
	c.s.Add(a, delta)
}

func (c *Txn) adv(n int64) {
	if c.log != nil {
		c.log.Advance(c.s, n)
		return
	}
	c.s.Advance(n)
}

func (c *Txn) br(pc uint32, taken bool) {
	if c.log != nil {
		c.log.Branch(c.s, pc, taken)
		return
	}
	c.s.Branch(pc, taken)
}

// Store implements core.Ctx: buffer until commit.
func (c *Txn) Store(a sim.Addr, w sim.Word) {
	c.writeAddrs = append(c.writeAddrs, a)
	c.writeVals = append(c.writeVals, w)
	c.adv(bookkeepCost + 1)
}

// Branch implements core.Ctx.
func (c *Txn) Branch(pc uint32, taken bool, _ bool) { c.br(pc, taken) }

// Div implements core.Ctx.
func (c *Txn) Div() { c.adv(core.DivCost) }

// Call implements core.Ctx.
func (c *Txn) Call() { c.adv(core.CallCost) }

// Strand implements core.Ctx.
func (c *Txn) Strand() *sim.Strand { return c.s }

func (c *Txn) ownsOrec(orec sim.Addr) bool {
	for _, o := range c.lockOrecs {
		if o == orec {
			return true
		}
	}
	return false
}

// commit acquires every write orec, drains announced readers, applies the
// writes and releases. Because writers wait out readers, readers need no
// commit-time validation: a location once announced cannot change under
// the reader.
func (c *Txn) commit() bool {
	s := c.s
	if len(c.writeAddrs) == 0 {
		return true
	}
	for _, a := range c.writeAddrs {
		orec := c.sys.orecs.OrecOf(a)
		if c.ownsOrec(orec) {
			continue
		}
		o := s.Load(orec)
		if stm.Locked(o) {
			return false
		}
		if _, ok := s.CAS(orec, o, o|stm.LockBit); !ok {
			return false
		}
		c.lockOrecs = append(c.lockOrecs, orec)
		c.lockPrev = append(c.lockPrev, o)
	}
	// Drain announced readers on every acquired orec (discounting our own
	// announcement).
	for _, orec := range c.lockOrecs {
		idx := uint32(orec - c.sys.orecs.Base())
		self := sim.Word(0)
		if c.announced(idx) {
			self = 1
		}
		for spin := 0; ; spin++ {
			total := sim.Word(0)
			for sh := 0; sh < readerShards; sh++ {
				total += s.Load(c.sys.readers[sh] + sim.Addr(idx))
			}
			if total <= self {
				break
			}
			if spin >= drainSpins {
				return false
			}
			core.Backoff(s, spin)
		}
	}
	for i, a := range c.writeAddrs {
		s.Store(a, c.writeVals[i])
	}
	for i, orec := range c.lockOrecs {
		s.Store(orec, stm.MakeOrec(stm.Version(c.lockPrev[i])+1))
	}
	c.lockOrecs = c.lockOrecs[:0]
	c.lockPrev = c.lockPrev[:0]
	return true
}

// cleanup withdraws reader announcements and, after a failed attempt,
// restores any orecs still held.
func (c *Txn) cleanup(failed bool) {
	if failed {
		for i, orec := range c.lockOrecs {
			c.s.Store(orec, c.lockPrev[i])
		}
		c.lockOrecs = c.lockOrecs[:0]
		c.lockPrev = c.lockPrev[:0]
	}
	for _, idx := range c.readIdx {
		c.s.Add(c.sys.shardAddr(idx, c.s.ID()), ^sim.Word(0))
	}
	c.readIdx = c.readIdx[:0]
}

// ---- HyTM hardware-path instrumentation ----

// HW is the instrumented hardware context: each access checks the
// corresponding orec (and, for stores, the reader shards) inside the
// hardware transaction, so software-side acquisitions and announcements
// doom it through ordinary coherence.
type HW struct {
	sys *System
	t   rock.Txn

	// log journals the instrumented accesses under the continuation driver
	// (nil on the coroutine path); the hybrid's step machine sets it.
	log *core.OpLog
}

// HWCtx implements stm.HybridSTM. The rock.Txn value is fully determined by
// the strand, so the boxed *HW is built once per strand and cached: the
// hybrid's retry loop re-fetches it allocation-free on every attempt.
func (y *System) HWCtx(t rock.Txn) core.Ctx {
	c := y.hwFor(t)
	c.log = nil // coroutine path never journals
	return c
}

// StepHWCtx implements stm.StepHybridSTM: the instrumented hardware
// context with its accesses journaled in log for continuation-machine
// body re-runs.
func (y *System) StepHWCtx(t rock.Txn, log *core.OpLog) core.Ctx {
	c := y.hwFor(t)
	c.log = log
	return c
}

func (y *System) hwFor(t rock.Txn) *HW {
	id := t.Strand().ID()
	c := y.hwByID[id]
	if c == nil {
		c = &HW{sys: y, t: t}
		y.hwByID[id] = c
	}
	return c.(*HW)
}

// tld is the journaled transactional load of the instrumented context:
// routed through rock.StepCtx under the continuation driver (replay served
// from the log, yield interruptions bail it), through rock.Txn otherwise.
func (h *HW) tld(a sim.Addr) sim.Word {
	if h.log == nil {
		return h.t.Load(a)
	}
	return rock.StepCtx{T: h.t, Log: h.log}.Load(a)
}

// tst is the journaled transactional store.
func (h *HW) tst(a sim.Addr, w sim.Word) {
	if h.log == nil {
		h.t.Store(a, w)
		return
	}
	rock.StepCtx{T: h.t, Log: h.log}.Store(a, w)
}

// tbr is the journaled transactional branch.
func (h *HW) tbr(pc uint32, taken bool, dependsOnLoad bool) {
	if h.log == nil {
		h.t.Branch(pc, taken, dependsOnLoad)
		return
	}
	rock.StepCtx{T: h.t, Log: h.log}.Branch(pc, taken, dependsOnLoad)
}

// tabort raises the explicit conflict abort. Under the continuation driver
// it may return normally — when the trap was interrupted by a pending
// yield (log bailed; the poisoned body unwinds by ordinary returns) — so
// callers must tolerate falling through.
func (h *HW) tabort() {
	if h.log == nil {
		h.t.Abort()
		return
	}
	rock.StepCtx{T: h.t, Log: h.log}.Abort()
}

// Load implements core.Ctx.
func (h *HW) Load(a sim.Addr) sim.Word {
	if stm.Locked(h.tld(h.sys.orecs.OrecOf(a))) {
		h.tabort()
	}
	return h.tld(a)
}

// Store implements core.Ctx: a hardware store must see no software writer
// *or reader* on the line.
func (h *HW) Store(a sim.Addr, w sim.Word) {
	if stm.Locked(h.tld(h.sys.orecs.OrecOf(a))) {
		h.tabort()
	}
	idx := h.sys.orecs.Index(a)
	for sh := 0; sh < readerShards; sh++ {
		if h.tld(h.sys.readers[sh]+sim.Addr(idx)) != 0 {
			h.tabort()
		}
	}
	h.tst(a, w)
}

// Branch implements core.Ctx.
func (h *HW) Branch(pc uint32, taken bool, dependsOnLoad bool) {
	h.tbr(pc, taken, dependsOnLoad)
}

// Div implements core.Ctx.
func (h *HW) Div() { h.t.Div() }

// Call implements core.Ctx.
func (h *HW) Call() { h.t.Call() }

// Strand implements core.Ctx.
func (h *HW) Strand() *sim.Strand { return h.t.Strand() }
