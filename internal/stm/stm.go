// Package stm holds the infrastructure shared by the software transactional
// memories: the ownership-record (orec) table, and the interfaces through
// which the HyTM and PhTM hybrids compose with an STM back end.
//
// Orecs live in *simulated* memory. That single decision is what makes the
// hybrids work the way the paper's do: a hardware transaction that loads an
// orec has it in its read set, so a software transaction acquiring that
// orec dooms the hardware transaction through plain cache coherence — no
// extra mechanism required.
package stm

import (
	"rocktm/internal/core"
	"rocktm/internal/rock"
	"rocktm/internal/sim"
)

// DefaultOrecs is the default ownership-table size. The paper notes its
// ownership table is "very large" so that distinct cache lines essentially
// never share an orec; 2^16 entries plays that role at our scales.
const DefaultOrecs = 1 << 16

// OrecTable maps cache lines to ownership records. Each orec is one word:
// version<<1 | writeLocked.
type OrecTable struct {
	base sim.Addr
	mask uint32
}

// NewOrecTable allocates a table of n orecs (n must be a power of two).
func NewOrecTable(mem *sim.Memory, n int) OrecTable {
	if n <= 0 || n&(n-1) != 0 {
		panic("stm: orec table size must be a positive power of two")
	}
	return OrecTable{base: mem.AllocLines(n), mask: uint32(n - 1)}
}

// OrecOf returns the address of the orec covering address a. Every address
// on one cache line maps to the same orec.
func (t OrecTable) OrecOf(a sim.Addr) sim.Addr {
	return t.base + sim.Addr(uint32(sim.LineOf(a))&t.mask)
}

// Index returns the orec index covering address a (for parallel tables such
// as reader counts).
func (t OrecTable) Index(a sim.Addr) uint32 {
	return uint32(sim.LineOf(a)) & t.mask
}

// Size returns the number of orecs.
func (t OrecTable) Size() int { return int(t.mask) + 1 }

// Base returns the address of orec 0 (orec index = address - Base).
func (t OrecTable) Base() sim.Addr { return t.base }

const (
	// LockBit marks an orec as write-locked.
	LockBit sim.Word = 1
)

// Locked reports whether orec value o is write-locked.
func Locked(o sim.Word) bool { return o&LockBit != 0 }

// Version extracts the version number from orec value o.
func Version(o sim.Word) sim.Word { return o >> 1 }

// MakeOrec builds an orec value from a version number.
func MakeOrec(version sim.Word) sim.Word { return version << 1 }

// STM is a software TM that can run standalone as a core.System.
type STM interface {
	core.System
}

// HybridSTM is an STM whose metadata a best-effort hardware transaction can
// check access-by-access, enabling HyTM: HWCtx returns an instrumented
// hardware execution context that aborts (explicit TCC trap) on any
// conflict with concurrent software transactions. Of the two STMs here only
// SkySTM supports this — hardware stores must be able to see software
// *readers*, which requires (semi-)visible reader metadata.
type HybridSTM interface {
	STM
	HWCtx(t rock.Txn) core.Ctx
}

// StepHybridSTM is a HybridSTM that can also run under the continuation
// driver: its atomic blocks step (core.StepSystem) and its instrumented
// hardware context can journal its accesses for body re-runs.
type StepHybridSTM interface {
	HybridSTM
	core.StepSystem
	StepHWCtx(t rock.Txn, log *core.OpLog) core.Ctx
}

// retrySignal unwinds an aborted software transaction attempt.
type retrySignal struct{}

// Abort unwinds the current software transaction attempt; the enclosing
// Atomic retries it.
func Abort() {
	panic(retrySignal{})
}

// RunAttempt executes body(c), converting an stm.Abort unwind into a false
// return. Body and context are passed separately (rather than pre-bound in a
// closure) so the per-attempt retry loops in the STMs allocate nothing.
func RunAttempt(body func(core.Ctx), c core.Ctx) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isRetry := r.(retrySignal); !isRetry {
				panic(r)
			}
			ok = false
		}
	}()
	body(c)
	return true
}

// RunStepAttempt is RunAttempt under the continuation driver: a body
// interrupted by a pending yield bails its OpLog and returns normally, so
// the attempt machine can yield and re-run the body against the journal.
// A bailed log overrides everything else — any abort raised by the
// poisoned remainder of the body is an artifact of the bail, not a real
// outcome (the re-run decides). The recover keeps stm.Abort working and
// core.YieldSignal as a backstop for unjournaled yield unwinds.
func RunStepAttempt(body func(core.Ctx), c core.Ctx, l *core.OpLog) (ok, yielded bool) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case retrySignal:
			ok = false
		case core.YieldSignal:
			yielded = true
		default:
			panic(r)
		}
		if l.Bailed() {
			ok, yielded = false, true
		}
	}()
	body(c)
	ok = true
	return
}
