package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"

	"rocktm/internal/sim"
)

// collect runs the compiled workload on a fresh machine and returns each
// strand's (op, key) sequence. The callback does no simulated work, so the
// only state the driver touches is the strand RNG (and, when open-loop,
// the strand clock via Advance) — the pure generator behaviour under test.
func collect(t *testing.T, c *Compiled, strands, n int, seed uint64) [][][2]uint64 {
	t.Helper()
	cfg := sim.DefaultConfig(strands)
	cfg.MemWords = 1 << 16
	cfg.Seed = seed
	cfg.MaxCycles = 1 << 40
	m := sim.New(cfg)
	out := make([][][2]uint64, strands)
	m.Run(func(s *sim.Strand) {
		d := c.Driver(s, nil)
		d.Run(n, func(_, op int, key uint64) {
			out[s.ID()] = append(out[s.ID()], [2]uint64{uint64(op), key})
		})
	})
	return out
}

// digest hashes a sequence set for compact cross-run comparison.
func digest(seqs [][][2]uint64) string {
	h := sha256.New()
	var buf [16]byte
	for _, seq := range seqs {
		for _, e := range seq {
			binary.LittleEndian.PutUint64(buf[:8], e[0])
			binary.LittleEndian.PutUint64(buf[8:], e[1])
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Generators are seed-stable (same seed, same machine shape => identical
// sequences) and seed-sensitive, for every key distribution.
func TestGeneratorSeedStability(t *testing.T) {
	specs := map[string]Spec{
		"uniform":  KVSpec(Uniform(256), 30),
		"zipf":     KVSpec(Zipfian(4096, 0.99), 30),
		"hotspot":  KVSpec(Hotspot(1024, 0.1, 90), 30),
		"openloop": {Ops: KVMix(30), Roll: 100, Keys: Uniform(256), Arrival: Arrival{MeanGap: 200, Seed: 9}},
	}
	for name, sp := range specs {
		c := MustCompile(sp)
		a := digest(collect(t, c, 2, 300, 1))
		b := digest(collect(t, c, 2, 300, 1))
		if a != b {
			t.Errorf("%s: same seed produced different sequences (%s vs %s)", name, a, b)
		}
		if other := digest(collect(t, c, 2, 300, 2)); other == a {
			t.Errorf("%s: seeds 1 and 2 produced identical sequences", name)
		}
	}
}

// Per-strand streams are mutually independent: strand 0's sequence in a
// 2-strand machine equals strand 0's sequence alone, and differs from
// strand 1's.
func TestGeneratorPerStrandIndependence(t *testing.T) {
	c := MustCompile(KVSpec(Zipfian(1024, 0.9), 50))
	two := collect(t, c, 2, 200, 1)
	one := collect(t, c, 1, 200, 1)
	if digest(two[:1]) != digest(one) {
		t.Error("strand 0's stream depends on the number of strands")
	}
	if digest(two[:1]) == digest(two[1:]) {
		t.Error("strands 0 and 1 share a stream")
	}
}

// Turning on open-loop arrivals must not change which ops and keys are
// drawn: the arrival process runs on its own splitmix64 stream, never the
// strand RNG. (Latency and timing change; the op/key sequence cannot.)
func TestOpenLoopDoesNotPerturbOpStream(t *testing.T) {
	closed := Spec{Ops: KVMix(30), Roll: 100, Keys: Uniform(256)}
	open := closed
	open.Arrival = Arrival{MeanGap: 700, Seed: 42}
	a := digest(collect(t, MustCompile(closed), 2, 400, 1))
	b := digest(collect(t, MustCompile(open), 2, 400, 1))
	if a != b {
		t.Fatalf("open-loop arrivals perturbed the op/key stream: %s vs %s", a, b)
	}
}

// The open-loop arrival process advances the strand clock (idle gaps) and
// different arrival seeds give different schedules.
func TestOpenLoopAdvancesClock(t *testing.T) {
	run := func(arrSeed uint64) int64 {
		sp := Spec{Ops: KVMix(100), Roll: 100, Keys: Uniform(16),
			Arrival: Arrival{MeanGap: 300, Seed: arrSeed}}
		cfg := sim.DefaultConfig(1)
		cfg.MemWords = 1 << 16
		cfg.Seed = 1
		cfg.MaxCycles = 1 << 40
		m := sim.New(cfg)
		var clock int64
		m.Run(func(s *sim.Strand) {
			d := MustCompile(sp).Driver(s, nil)
			d.Run(200, func(_, _ int, _ uint64) {})
			clock = s.Clock()
		})
		return clock
	}
	c1 := run(1)
	if c1 < 200 { // 200 ops with mean gap 300 must consume simulated time
		t.Fatalf("open-loop run advanced the clock only %d cycles", c1)
	}
	if c2 := run(2); c2 == c1 {
		t.Error("different arrival seeds produced identical schedules")
	}
}

// The zipfian generator is Gray et al.'s: rank 0 is the hottest key, the
// frequency ordering follows rank for the head of the distribution, and
// all draws stay in range.
func TestZipfianShape(t *testing.T) {
	const n = 1024
	c := MustCompile(Spec{Ops: []Op{{Name: "get"}}, Keys: Zipfian(n, 0.99)})
	seqs := collect(t, c, 1, 20000, 1)
	counts := make([]int, n)
	for _, e := range seqs[0] {
		if e[1] >= n {
			t.Fatalf("zipf key %d out of range", e[1])
		}
		counts[e[1]]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[10] {
		t.Errorf("zipf head not ordered: c0=%d c1=%d c10=%d", counts[0], counts[1], counts[10])
	}
	// With theta=0.99 over 1024 keys, rank 0 alone draws ~13% of accesses.
	if frac := float64(counts[0]) / 20000; frac < 0.05 {
		t.Errorf("hottest key drew only %.1f%% of accesses", 100*frac)
	}
}

// zipf draw: the precomputed-constant path is pure float math on u; pin
// the edge behaviour (u=0 -> rank 0, u near 1 stays in range, monotone in
// u).
func TestZipfDrawEdges(t *testing.T) {
	z := newZipf(1000, 0.9)
	if got := z.draw(0); got != 0 {
		t.Errorf("draw(0) = %d, want 0", got)
	}
	prev := -1
	for _, u := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.999999} {
		k := z.draw(u)
		if k < 0 || k >= 1000 {
			t.Fatalf("draw(%g) = %d out of range", u, k)
		}
		if k < prev {
			t.Fatalf("draw not monotone in u at %g: %d < %d", u, k, prev)
		}
		prev = k
	}
}

// The hotspot distribution sends ~HotPct of draws to the hot prefix.
func TestHotspotFractions(t *testing.T) {
	const n, hotPct = 1000, 80
	keys := Hotspot(n, 0.1, hotPct)
	c := MustCompile(Spec{Ops: []Op{{Name: "get"}}, Keys: keys})
	seqs := collect(t, c, 1, 20000, 1)
	hotN := int(math.Ceil(0.1 * n))
	hot := 0
	for _, e := range seqs[0] {
		if e[1] >= n {
			t.Fatalf("hotspot key %d out of range", e[1])
		}
		if int(e[1]) < hotN {
			hot++
		}
	}
	frac := 100 * float64(hot) / float64(len(seqs[0]))
	if frac < hotPct-3 || frac > hotPct+3 {
		t.Errorf("hot fraction %.1f%%, want ~%d%%", frac, hotPct)
	}
}

// The steady-state per-operation driver path (key draw, op roll, arrival
// bookkeeping, latency record) must allocate nothing: it runs inside every
// figure's timed loop.
func TestDriverSteadyStateAllocationFree(t *testing.T) {
	for name, sp := range map[string]Spec{
		"uniform-closed": KVSpec(Uniform(256), 30),
		"zipf-open":      {Ops: KVMix(30), Roll: 100, Keys: Zipfian(512, 0.9), Arrival: Arrival{MeanGap: 100, Seed: 3}},
	} {
		c := MustCompile(sp)
		cfg := sim.DefaultConfig(1)
		cfg.MemWords = 1 << 16
		cfg.Seed = 1
		cfg.MaxCycles = 1 << 44
		m := sim.New(cfg)
		m.Run(func(s *sim.Strand) {
			d := c.Driver(s, nil)
			sink := func(_, _ int, _ uint64) {}
			d.Run(10, sink) // warm up
			allocs := testing.AllocsPerRun(100, func() { d.Run(10, sink) })
			if allocs != 0 {
				t.Errorf("%s: driver allocates %v per 10 ops, want 0", name, allocs)
			}
		})
	}
}

// splitmix64 float01 stays in (0, 1] so ln(u) is always finite.
func TestPRNGFloat01Range(t *testing.T) {
	r := prng{state: 12345}
	for i := 0; i < 100000; i++ {
		u := r.float01()
		if !(u > 0 && u <= 1) {
			t.Fatalf("float01 = %g out of (0,1]", u)
		}
	}
}
