// Package workload is the declarative workload layer: every figure driver
// in internal/bench describes *what* its per-strand operation stream looks
// like — the operation mix, the key distribution, the prepopulation and
// the arrival process — as a workload.Spec, and runs it through one shared,
// allocation-free per-strand Driver instead of a hand-rolled loop.
//
// Two disciplines make the layer safe to adopt under the repository's
// byte-identity regime (see internal/bench/golden_test.go):
//
//   - RNG-sequence preservation: for the paper's closed-loop uniform
//     configurations the Driver consumes the strand's random stream in
//     exactly the order the legacy loops did (key draw, then op roll — or
//     roll first where the original drew in that order), so every
//     pre-existing golden figure digest is unchanged.
//   - Stream separation: the open-loop arrival process draws from a
//     dedicated per-strand splitmix64 stream, never from the strand's
//     simulator RNG, so enabling open-loop arrivals cannot perturb the
//     op/key sequence of an otherwise-identical closed-loop run.
//
// New dimensions (zipfian/hotspot skew, open-loop arrivals) are plain Spec
// fields; they render through Keys.String/Arrival.String into
// runner.Spec.Params so the content-addressed result cache keys them.
package workload

import (
	"fmt"
	"math"
)

// Dist selects a key distribution.
type Dist uint8

const (
	// KeyNone draws no keys at all (counter increments, queue ops).
	KeyNone Dist = iota
	// KeyUniform draws uniformly from [Offset, Offset+Range).
	KeyUniform
	// KeyZipfian draws from [Offset, Offset+Range) with Zipf parameter
	// Theta in (0,1): rank-0 keys are hottest (Gray et al.'s generator,
	// the same family YCSB uses).
	KeyZipfian
	// KeyHotspot sends HotPct percent of accesses to the first
	// ceil(HotFrac*Range) keys and the rest to the remainder, all
	// uniformly within each region.
	KeyHotspot
)

// Keys describes the key distribution of a Spec.
type Keys struct {
	Dist   Dist
	Range  int
	Offset uint64
	// Theta is the zipfian skew parameter, in (0,1); larger is more skewed.
	Theta float64
	// HotFrac is the hotspot fraction of the keyspace, in (0,1).
	HotFrac float64
	// HotPct is the percentage of accesses sent to the hot region.
	HotPct int
}

// Uniform draws keys uniformly from [0, r).
func Uniform(r int) Keys { return Keys{Dist: KeyUniform, Range: r} }

// UniformOffset draws keys uniformly from [off, off+r).
func UniformOffset(r int, off uint64) Keys {
	return Keys{Dist: KeyUniform, Range: r, Offset: off}
}

// Zipfian draws keys zipf-distributed over [0, r) with parameter theta.
func Zipfian(r int, theta float64) Keys {
	return Keys{Dist: KeyZipfian, Range: r, Theta: theta}
}

// Hotspot sends hotPct% of accesses to the first ceil(hotFrac*r) keys.
func Hotspot(r int, hotFrac float64, hotPct int) Keys {
	return Keys{Dist: KeyHotspot, Range: r, HotFrac: hotFrac, HotPct: hotPct}
}

// String renders the distribution canonically for cache keys and labels.
func (k Keys) String() string {
	switch k.Dist {
	case KeyNone:
		return "none"
	case KeyUniform:
		if k.Offset != 0 {
			return fmt.Sprintf("uniform:%d+%d", k.Range, k.Offset)
		}
		return fmt.Sprintf("uniform:%d", k.Range)
	case KeyZipfian:
		return fmt.Sprintf("zipf:%d:%g", k.Range, k.Theta)
	case KeyHotspot:
		return fmt.Sprintf("hot:%d:%g:%d", k.Range, k.HotFrac, k.HotPct)
	}
	return "invalid"
}

// Op is one operation class of a mix. Weight is in units of the Spec's
// Roll denominator; ops are selected by cumulative threshold in slice
// order, reproducing the legacy `switch { case r < a: ... case r < b: }`
// drivers exactly.
type Op struct {
	Name   string
	Weight int
	// NoKey marks an op that draws no key. Only meaningful under
	// OpThenKey ordering (the conditional key draw of the chat workload);
	// under KeyThenOp the single up-front key draw is shared by all ops.
	NoKey bool
}

// Order fixes the relative order of the key draw and the op roll, because
// the legacy drivers disagree and the RNG call sequence must be preserved.
type Order uint8

const (
	// KeyThenOp draws the key first, then rolls the op — the kv drivers.
	KeyThenOp Order = iota
	// OpThenKey rolls the op first, then draws the key (skipped for NoKey
	// ops) — the vector and chat drivers.
	OpThenKey
)

// Shape selects the time-varying envelope of an open-loop arrival
// process. The zero value is a constant rate (the PR-5 process); the
// diurnal and flash-crowd shapes modulate the instantaneous rate as a
// function of the arrival clock, which is how a service tier sees load
// curves and traffic spikes rather than a flat offered rate.
type Shape uint8

const (
	// ShapeConstant is a flat rate: exponential gaps with mean MeanGap.
	ShapeConstant Shape = iota
	// ShapeDiurnal modulates the rate sinusoidally with period Period
	// cycles and relative amplitude Amplitude in [0,1): the instantaneous
	// rate is base*(1 + Amplitude*sin(2*pi*t/Period)), a day/night curve
	// compressed into simulated time.
	ShapeDiurnal
	// ShapeFlashCrowd multiplies the rate by BurstFactor during the window
	// [BurstAt, BurstAt+BurstLen) cycles — a flash crowd slamming into an
	// otherwise steady service.
	ShapeFlashCrowd
)

// Arrival describes the arrival process. The zero value is closed-loop:
// each operation starts the instant the previous one finishes, exactly the
// paper's drivers. A positive MeanGap switches to an open-loop process
// with exponentially distributed inter-arrival gaps (mean MeanGap cycles)
// drawn from a dedicated seeded stream; operations that arrive while the
// strand is still busy queue, and their measured latency includes the
// queueing delay — the property that exposes tail collapse under load.
// Shape layers a time-varying envelope (diurnal curve, flash crowd) over
// the base rate; gaps are drawn exponential with mean MeanGap divided by
// the envelope's instantaneous rate factor at the previous arrival time.
type Arrival struct {
	// MeanGap is the mean inter-arrival gap in simulated cycles
	// (0 = closed loop).
	MeanGap float64
	// Seed seeds the per-strand inter-arrival streams (folded with the
	// strand ID, so strands are mutually independent). Ignored when
	// closed-loop.
	Seed uint64
	// Shape selects the rate envelope (constant, diurnal, flash crowd).
	Shape Shape
	// Period and Amplitude parameterize ShapeDiurnal.
	Period    float64
	Amplitude float64
	// BurstAt, BurstLen and BurstFactor parameterize ShapeFlashCrowd.
	BurstAt, BurstLen float64
	BurstFactor       float64
}

// Diurnal is an open-loop arrival with a sinusoidal rate envelope.
func Diurnal(meanGap float64, seed uint64, period, amplitude float64) Arrival {
	return Arrival{MeanGap: meanGap, Seed: seed, Shape: ShapeDiurnal, Period: period, Amplitude: amplitude}
}

// FlashCrowd is an open-loop arrival whose rate multiplies by factor
// during [at, at+length) cycles.
func FlashCrowd(meanGap float64, seed uint64, at, length, factor float64) Arrival {
	return Arrival{MeanGap: meanGap, Seed: seed, Shape: ShapeFlashCrowd, BurstAt: at, BurstLen: length, BurstFactor: factor}
}

// String renders the arrival process canonically for cache keys. The
// constant-shape form is byte-identical to the pre-shape rendering, so
// existing cache entries for plain open-loop cells still key identically.
func (a Arrival) String() string {
	if a.MeanGap <= 0 {
		return "closed"
	}
	switch a.Shape {
	case ShapeDiurnal:
		return fmt.Sprintf("diurnal:%g:%d:%g:%g", a.MeanGap, a.Seed, a.Period, a.Amplitude)
	case ShapeFlashCrowd:
		return fmt.Sprintf("flash:%g:%d:%g:%g:%g", a.MeanGap, a.Seed, a.BurstAt, a.BurstLen, a.BurstFactor)
	}
	return fmt.Sprintf("open:%g:%d", a.MeanGap, a.Seed)
}

// rateFactor is the envelope's instantaneous rate multiplier at arrival
// clock t. It is ≥ some positive floor for every valid Arrival, so the
// derived mean gap MeanGap/rateFactor stays finite.
func (a Arrival) rateFactor(t int64) float64 {
	switch a.Shape {
	case ShapeDiurnal:
		return 1 + a.Amplitude*math.Sin(2*math.Pi*float64(t)/a.Period)
	case ShapeFlashCrowd:
		ft := float64(t)
		if ft >= a.BurstAt && ft < a.BurstAt+a.BurstLen {
			return a.BurstFactor
		}
	}
	return 1
}

// validate checks the shape parameters of an open-loop arrival.
func (a Arrival) validate() error {
	if a.MeanGap < 0 {
		return fmt.Errorf("workload: negative arrival MeanGap")
	}
	if a.MeanGap == 0 {
		return nil
	}
	switch a.Shape {
	case ShapeConstant:
	case ShapeDiurnal:
		if a.Period <= 0 {
			return fmt.Errorf("workload: diurnal arrival needs Period > 0")
		}
		if !(a.Amplitude >= 0 && a.Amplitude < 1) {
			return fmt.Errorf("workload: diurnal Amplitude must be in [0,1), got %g", a.Amplitude)
		}
	case ShapeFlashCrowd:
		if a.BurstFactor <= 0 {
			return fmt.Errorf("workload: flash-crowd BurstFactor must be > 0, got %g", a.BurstFactor)
		}
		if a.BurstLen < 0 {
			return fmt.Errorf("workload: negative flash-crowd BurstLen")
		}
	default:
		return fmt.Errorf("workload: unknown arrival shape %d", a.Shape)
	}
	return nil
}

// Spec declaratively describes one per-strand operation stream.
type Spec struct {
	// Ops is the operation mix, selected by cumulative weight in slice
	// order. A single op with Roll == 0 draws no op roll at all (the
	// counter and divide drivers).
	Ops []Op
	// Roll is the op-roll denominator (the legacy drivers' RandIntn
	// argument: 100, 10, 3, 2). Weights must sum to Roll.
	Roll int
	// Keys is the key distribution.
	Keys Keys
	// Order is the key-draw/op-roll order.
	Order Order
	// Arrival is the arrival process (zero value: closed loop).
	Arrival Arrival
}

// KVMix returns the paper drivers' canonical lookup/insert/delete split
// out of 100: lookups get pctLookup, inserts (100-pctLookup)/2 — integer
// division — and deletes the remainder. When the non-lookup share is odd,
// the extra point goes to deletes, exactly the legacy
// `r < pctLookup+(100-pctLookup)/2` threshold arithmetic. OpLookup,
// OpInsert and OpDelete index the result.
func KVMix(pctLookup int) []Op {
	ins := (100 - pctLookup) / 2
	return []Op{
		{Name: "lookup", Weight: pctLookup},
		{Name: "insert", Weight: ins},
		{Name: "delete", Weight: 100 - pctLookup - ins},
	}
}

// Indices into KVMix's result.
const (
	OpLookup = 0
	OpInsert = 1
	OpDelete = 2
)

// KVSpec is the standard key-value workload: keys drawn first (from any
// distribution), then the KVMix roll out of 100 — the shape of every
// Figure 1/2 driver.
func KVSpec(keys Keys, pctLookup int) Spec {
	return Spec{Ops: KVMix(pctLookup), Roll: 100, Keys: keys}
}

// TenthsMix returns the Java-benchmark put/get/remove split out of 10
// (Figure 3(b)'s 2:6:2-style mixes). OpPut, OpGet and OpRemove index it.
func TenthsMix(put, get int) []Op {
	return []Op{
		{Name: "put", Weight: put},
		{Name: "get", Weight: get},
		{Name: "remove", Weight: 10 - put - get},
	}
}

// Indices into TenthsMix's result.
const (
	OpPut    = 0
	OpGet    = 1
	OpRemove = 2
)

// Validate reports whether the spec is well-formed.
func (sp Spec) Validate() error {
	if len(sp.Ops) == 0 {
		return fmt.Errorf("workload: spec has no ops")
	}
	if sp.Roll == 0 {
		if len(sp.Ops) != 1 {
			return fmt.Errorf("workload: Roll=0 requires exactly one op, got %d", len(sp.Ops))
		}
	} else {
		sum := 0
		for _, op := range sp.Ops {
			if op.Weight < 0 {
				return fmt.Errorf("workload: op %q has negative weight", op.Name)
			}
			sum += op.Weight
		}
		if sum != sp.Roll {
			return fmt.Errorf("workload: op weights sum to %d, want Roll=%d", sum, sp.Roll)
		}
	}
	k := sp.Keys
	switch k.Dist {
	case KeyNone:
	case KeyUniform:
		if k.Range <= 0 {
			return fmt.Errorf("workload: uniform keys need Range > 0")
		}
	case KeyZipfian:
		if k.Range < 2 {
			return fmt.Errorf("workload: zipfian keys need Range >= 2")
		}
		if !(k.Theta > 0 && k.Theta < 1) {
			return fmt.Errorf("workload: zipfian Theta must be in (0,1), got %g", k.Theta)
		}
	case KeyHotspot:
		if k.Range < 2 {
			return fmt.Errorf("workload: hotspot keys need Range >= 2")
		}
		if !(k.HotFrac > 0 && k.HotFrac < 1) {
			return fmt.Errorf("workload: hotspot HotFrac must be in (0,1), got %g", k.HotFrac)
		}
		if k.HotPct < 0 || k.HotPct > 100 {
			return fmt.Errorf("workload: hotspot HotPct must be in [0,100], got %d", k.HotPct)
		}
	default:
		return fmt.Errorf("workload: unknown key distribution %d", k.Dist)
	}
	return sp.Arrival.validate()
}

// Compiled is the validated, immutable execution form of a Spec: the
// cumulative op thresholds and the zipfian constants are precomputed once
// and shared read-only by every strand's Driver.
type Compiled struct {
	ops     []Op
	cum     []int
	roll    int
	order   Order
	keys    Keys
	hotN    int
	zipf    zipfParams
	arrival Arrival
	meanGap float64
	arrSeed uint64
}

// Compile validates and precomputes a Spec.
func (sp Spec) Compile() (*Compiled, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{
		ops:     append([]Op(nil), sp.Ops...),
		roll:    sp.Roll,
		order:   sp.Order,
		keys:    sp.Keys,
		arrival: sp.Arrival,
		meanGap: sp.Arrival.MeanGap,
		arrSeed: sp.Arrival.Seed,
	}
	if sp.Roll > 0 {
		c.cum = make([]int, len(sp.Ops))
		sum := 0
		for i, op := range sp.Ops {
			sum += op.Weight
			c.cum[i] = sum
		}
	}
	switch sp.Keys.Dist {
	case KeyZipfian:
		c.zipf = newZipf(sp.Keys.Range, sp.Keys.Theta)
	case KeyHotspot:
		c.hotN = int(math.Ceil(sp.Keys.HotFrac * float64(sp.Keys.Range)))
		if c.hotN < 1 {
			c.hotN = 1
		}
		if c.hotN >= sp.Keys.Range {
			c.hotN = sp.Keys.Range - 1
		}
	}
	return c, nil
}

// MustCompile is Compile for statically known specs.
func MustCompile(sp Spec) *Compiled {
	c, err := sp.Compile()
	if err != nil {
		panic(err)
	}
	return c
}

// Ops returns the compiled op mix (read-only).
func (c *Compiled) Ops() []Op { return c.ops }

// PrepopHalf returns every second key in [0, keyRange) in ascending order —
// the paper's standard "half full" prepopulation for hash tables.
func PrepopHalf(keyRange int) []uint64 {
	keys := make([]uint64, 0, (keyRange+1)/2)
	for k := 0; k < keyRange; k += 2 {
		keys = append(keys, uint64(k))
	}
	return keys
}

// PrepopHalfShuffled returns the same keys in a deterministic
// xorshift-shuffled order. Prepopulating a red-black tree in ascending
// order is pathological in a way the paper's random workloads are not:
// with sequential node allocation the tree's upper spine lands on node
// indices 2^k-1, aliasing the whole hot path into one L1 set.
func PrepopHalfShuffled(keyRange int, seed uint64) []uint64 {
	keys := PrepopHalf(keyRange)
	state := seed
	for i := len(keys) - 1; i > 0; i-- {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		j := int(state % uint64(i+1))
		keys[i], keys[j] = keys[j], keys[i]
	}
	return keys
}
