package workload

import (
	"math"

	"rocktm/internal/obs"
	"rocktm/internal/sim"
)

// prng is a splitmix64 stream for the open-loop arrival process. It is
// deliberately separate from the strand's simulator RNG: an open-loop run
// consumes exactly the same strand-RNG sequence as its closed-loop twin,
// so turning arrivals on cannot change which keys and ops are drawn (the
// same stream-separation discipline sim's fault injector uses).
type prng struct{ state uint64 }

func (r *prng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float01 returns a uniform float64 in (0, 1] (never 0, so ln(u) is finite).
func (r *prng) float01() float64 {
	return (float64(r.next()>>11) + 1) / (1 << 53)
}

// arrivalSeed folds the spec seed with the strand ID the same way
// sim.newStrand folds the machine seed, so per-strand streams are
// mutually independent and seed-stable.
func arrivalSeed(seed uint64, strand int) uint64 {
	return seed*0x9e3779b9 + uint64(strand)*0x85ebca77 + 1
}

// Driver executes a compiled workload on one strand. Create one per strand
// per run via Compiled.Driver; the steady-state per-operation path (key
// draw, op roll, arrival bookkeeping, latency record) allocates nothing.
type Driver struct {
	c     *Compiled
	s     *sim.Strand
	lat   *obs.LatencyRecorder
	ws    obs.LatencySink
	arr   prng
	tNext int64
}

// Driver binds the compiled workload to a strand. lat may be nil (no
// latency capture). The recorder may be shared by all strands of a run:
// the machine baton serializes strand execution, so a single histogram is
// race-free and merges for free.
func (c *Compiled) Driver(s *sim.Strand, lat *obs.LatencyRecorder) Driver {
	d := Driver{c: c, s: s, lat: lat}
	if c.meanGap > 0 {
		d.arr = prng{state: arrivalSeed(c.arrSeed, s.ID())}
		d.tNext = s.Clock()
	}
	return d
}

// Observe additionally streams each operation's (completion cycle,
// latency) pair into ws — the windowed timeseries recorder — alongside
// the run-wide histogram. nil detaches. Observation cannot perturb the
// run: the sink call happens after the operation completes and follows
// the same no-cycles/no-randomness contract as the latency recorder.
func (d *Driver) Observe(ws obs.LatencySink) { d.ws = ws }

// Run executes n operations, invoking do(i, op, key) for each: i is the
// iteration index (the legacy loops' loop variable), op indexes the spec's
// Ops slice, and key is the drawn key (0 for keyless ops). Per-operation
// latency — begin to completion in simulated cycles, including every
// hardware retry, backoff and fallback inside the op, and, for open-loop
// arrivals, any queueing delay — is recorded into the attached recorder.
func (d *Driver) Run(n int, do func(i, op int, key uint64)) {
	open := d.c.meanGap > 0
	for i := 0; i < n; i++ {
		start := d.s.Clock()
		if open {
			d.tNext += d.gap()
			if d.tNext > start {
				// The strand is idle until the next arrival.
				d.s.Advance(d.tNext - start)
			}
			// Latency is measured from the *arrival* time: when the strand
			// is running behind, the op waited in queue and that delay is
			// part of its latency.
			start = d.tNext
		}
		op, key := d.next()
		do(i, op, key)
		if d.lat != nil {
			d.lat.Record(d.s.Clock() - start)
		}
		if d.ws != nil {
			d.ws.RecordLatencyAt(d.s.Clock(), d.s.Clock()-start)
		}
	}
}

// gap draws one exponential inter-arrival gap (min 1 cycle). The mean is
// the spec's MeanGap divided by the shape envelope's rate factor at the
// previous arrival time; a constant shape divides by exactly 1, so the
// draw (one stream consumption, same formula) is bit-identical to the
// pre-shape generator.
func (d *Driver) gap() int64 {
	return drawGap(&d.c.arrival, &d.arr, d.tNext)
}

// drawGap is the one shared inter-arrival draw (Driver and Source).
func drawGap(a *Arrival, r *prng, at int64) int64 {
	g := -(a.MeanGap / a.rateFactor(at)) * math.Log(r.float01())
	if g < 1 {
		return 1
	}
	return int64(g)
}

// next draws the next (op, key) pair in the spec's declared RNG order.
func (d *Driver) next() (op int, key uint64) {
	if d.c.order == KeyThenOp {
		key = d.key()
		op = d.roll()
		return op, key
	}
	op = d.roll()
	if !d.c.ops[op].NoKey {
		key = d.key()
	}
	return op, key
}

// roll selects an op by cumulative weight, consuming one RandIntn(Roll)
// from the strand RNG — or nothing at all for single-op no-roll specs,
// matching the legacy drivers that never rolled.
func (d *Driver) roll() int {
	if d.c.roll == 0 {
		return 0
	}
	r := d.s.RandIntn(d.c.roll)
	for i, cum := range d.c.cum {
		if r < cum {
			return i
		}
	}
	return len(d.c.cum) - 1
}

// key draws one key from the spec's distribution.
func (d *Driver) key() uint64 {
	k := &d.c.keys
	switch k.Dist {
	case KeyUniform:
		return k.Offset + uint64(d.s.RandIntn(k.Range))
	case KeyZipfian:
		// One 64-bit draw, mapped through the precomputed constants.
		u := float64(d.s.Rand()>>11) / (1 << 53)
		return k.Offset + uint64(d.c.zipf.draw(u))
	case KeyHotspot:
		// Two draws: the region roll, then the in-region index — both from
		// the strand RNG so the stream stays strand-deterministic.
		if d.s.RandIntn(100) < k.HotPct {
			return k.Offset + uint64(d.s.RandIntn(d.c.hotN))
		}
		return k.Offset + uint64(d.c.hotN) + uint64(d.s.RandIntn(k.Range-d.c.hotN))
	}
	return 0 // KeyNone
}
